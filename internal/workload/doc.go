// Package workload — benchmark catalogue.
//
// The eleven primary (large/irregular) benchmarks mirror the paper's
// Figs 2–23 suite:
//
//	pageRank       RMAT graph; sequential row pointers, irregular rank
//	               gathers over 256 B vertex records, one write per vertex
//	graphColoring  label propagation over neighbor colors, always writes
//	connectedComp  label propagation, writes when the label changes
//	degreeCentr    row-pointer streaming plus a property write (regular)
//	DFS            depth-first visit order, neighbor visited-flag probes
//	BFS            breadth-first visit order, same probe structure
//	triangleCount  per-edge adjacency-list intersection, read-dominated
//	shortestPath   Bellman-Ford-style relaxation, ~20% neighbor writes
//	canneal        simulated-annealing swap pattern: page-dwelling random
//	               reads, dependent pointer chases, 30% writes
//	omnetpp        event-queue pattern: hot heap + drifting random window
//	mcf            network simplex: arc-array streams + random node access,
//	               the most memory-intensive of the suite
//
// The fifteen regular benchmarks stand in for the paper's Fig 24
// SPEC CPU 2017 / PARSEC 3.0 set (blackscholes … x264_s): streaming and
// cache-resident mixtures with high compute density, where EMCC's
// speculative counter fetches should be rare and harmless.
//
// Three locality mechanisms make the synthetic streams behave like the
// real applications where it matters to this paper:
//
//  1. page-grain spatial dwell — consecutive misses share an 8 KB counter
//     block, producing MC counter-cache hits (Fig 6's 65% mean);
//  2. counter-block-neighborhood gathers — distinct data blocks inside a
//     recently-touched vertex span, misses that hit on-chip counters;
//  3. dependent chases — address chains that serialise the core, making
//     canneal/omnetpp/mcf latency-bound the way the paper's are.
package workload
