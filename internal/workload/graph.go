package workload

// The graph substrate: an RMAT power-law graph in CSR form, with a
// simulated memory layout (row-pointer array, adjacency array, and four
// 8-byte-per-vertex property arrays) that the kernels below walk the way
// graphBIG's kernels walk theirs — sequential row pointers, bursty
// adjacency scans, and irregular property-array accesses keyed by neighbor
// IDs, which is exactly the pattern that defeats counter caches (Sec. III).

type graph struct {
	v      int
	rowPtr []uint32
	adj    []uint32

	// Simulated memory layout (byte offsets from the graph's base).
	rowPtrBase uint64
	adjBase    uint64
	propBase   [4]uint64
	footprint  int64

	// propStride is the simulated per-vertex property size. 128 B models
	// the fat vertex records of graph frameworks and sizes the gather
	// footprint (and therefore the counter working set) realistically —
	// simulated addresses cost no host memory.

	bfsOrder []uint32 // computed on demand
	dfsOrder []uint32
}

// buildGraph generates a deterministic RMAT graph (a=0.57 b=0.19 c=0.19,
// the Graph500 parameters) with vertices*avgDegree directed edges.
// propStride is the simulated per-vertex property record size in bytes.
const propStride = 256

// graphCache shares built graphs (and their traversal orders) across
// simulator instances; RMAT construction at default scale is expensive.
// The simulators are single-threaded by design, so no locking.
var graphCache = map[[3]uint64]*graph{}

func cachedGraph(vertices, avgDegree int, seed uint64) *graph {
	key := [3]uint64{uint64(vertices), uint64(avgDegree), seed}
	if g := graphCache[key]; g != nil {
		return g
	}
	g := buildGraph(vertices, avgDegree, seed)
	graphCache[key] = g
	return g
}

func buildGraph(vertices, avgDegree int, seed uint64) *graph {
	if vertices <= 0 || vertices&(vertices-1) != 0 {
		panic("workload: graph vertices must be a positive power of two")
	}
	r := newRNG(seed)
	levels := 0
	for 1<<levels < vertices {
		levels++
	}
	e := vertices * avgDegree
	srcs := make([]uint32, 0, e)
	dsts := make([]uint32, 0, e)
	// Quadrant thresholds on 16-bit slices of one rng draw (four levels
	// per draw) keep construction fast at default scale.
	const thA, thB, thC = 37355, 49807, 62259 // 0.57, +0.19, +0.19 of 65536
	for i := 0; i < e; i++ {
		var s, d uint32
		var bits uint64
		for l := 0; l < levels; l++ {
			if l%4 == 0 {
				bits = r.next()
			}
			p := uint32(bits & 0xffff)
			bits >>= 16
			switch {
			case p < thA: // quadrant a
			case p < thB: // b
				d |= 1 << uint(l)
			case p < thC: // c
				s |= 1 << uint(l)
			default: // d
				s |= 1 << uint(l)
				d |= 1 << uint(l)
			}
		}
		if s == d {
			d = uint32((int(d) + 1) % vertices)
		}
		srcs = append(srcs, s)
		dsts = append(dsts, d)
	}
	// Counting sort into CSR.
	g := &graph{v: vertices}
	g.rowPtr = make([]uint32, vertices+1)
	for _, s := range srcs {
		g.rowPtr[s+1]++
	}
	for i := 1; i <= vertices; i++ {
		g.rowPtr[i] += g.rowPtr[i-1]
	}
	g.adj = make([]uint32, e)
	cursor := make([]uint32, vertices)
	copy(cursor, g.rowPtr[:vertices])
	for i, s := range srcs {
		g.adj[cursor[s]] = dsts[i]
		cursor[s]++
	}
	g.layout()
	return g
}

// layout assigns byte offsets to each array region, 64 B aligned.
func (g *graph) layout() {
	align := func(x uint64) uint64 { return (x + 63) &^ 63 }
	cur := uint64(0)
	g.rowPtrBase = cur
	cur = align(cur + uint64(4*(g.v+1)))
	g.adjBase = cur
	cur = align(cur + uint64(4*len(g.adj)))
	for i := range g.propBase {
		g.propBase[i] = cur
		cur = align(cur + uint64(propStride*g.v))
	}
	g.footprint = int64(cur)
}

func (g *graph) degree(v uint32) int { return int(g.rowPtr[v+1] - g.rowPtr[v]) }

// addrRowPtr, addrAdj and addrProp translate structure indices to byte
// addresses in the simulated layout.
func (g *graph) addrRowPtr(v uint32) uint64 { return g.rowPtrBase + 4*uint64(v) }
func (g *graph) addrAdj(i uint32) uint64    { return g.adjBase + 4*uint64(i) }
func (g *graph) addrProp(k int, v uint32) uint64 {
	return g.propBase[k] + propStride*uint64(v)
}

// orderBFS computes (once) a BFS visit order with restarts.
func (g *graph) orderBFS() []uint32 {
	if g.bfsOrder != nil {
		return g.bfsOrder
	}
	order := make([]uint32, 0, g.v)
	seen := make([]bool, g.v)
	queue := make([]uint32, 0, g.v)
	for root := 0; root < g.v; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], uint32(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
				u := g.adj[i]
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	g.bfsOrder = order
	return order
}

// orderDFS computes (once) a DFS visit order with restarts.
func (g *graph) orderDFS() []uint32 {
	if g.dfsOrder != nil {
		return g.dfsOrder
	}
	order := make([]uint32, 0, g.v)
	seen := make([]bool, g.v)
	stack := make([]uint32, 0, 1024)
	for root := 0; root < g.v; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack[:0], uint32(root))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
				u := g.adj[i]
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	g.dfsOrder = order
	return order
}

// kernelFunc emits the accesses for one unit of work (typically one vertex)
// into out. State lives in the generator.
type kernelFunc func(s *graphGen, out *[]Access)

// graphKernels maps benchmark names to kernel behaviours.
var graphKernels = map[string]kernelFunc{
	"pageRank":      kernPageRank,
	"graphColoring": kernLabelProp(1, 1.0), // color prop, always writes
	"connectedComp": kernLabelProp(2, 0.5), // label prop, writes when changed
	"degreeCentr":   kernDegree,
	"BFS":           kernTraversal(func(g *graph) []uint32 { return g.orderBFS() }),
	"DFS":           kernTraversal(func(g *graph) []uint32 { return g.orderDFS() }),
	"triangleCount": kernTriangle,
	"shortestPath":  kernSSSP,
}

// graphGen walks one vertex partition of the shared graph with a kernel.
type graphGen struct {
	name   string
	kern   kernelFunc
	g      *graph
	r      *rng
	lo, hi uint32 // partition [lo, hi)
	cursor uint32
	buf    []Access
	pos    int

	// recent is a ring of recently gathered vertices. Real graph kernels
	// re-touch hot vertices far more often than a uniform pass suggests
	// (frontier overlap, hub neighborhoods, convergence checks); gathers
	// re-target a recent vertex with probability pLocal, which is what
	// gives counter accesses the temporal locality the paper's Fig 6
	// hit rates imply.
	recent    [64]uint32
	recentLen int
	recentPos int
}

// pTemporal is the probability a gather re-touches a recently gathered
// vertex exactly (hits in the data caches; models frontier overlap and hot
// hubs). pSpatial is the probability it lands elsewhere in a recent
// vertex's counter-block neighborhood (usually a data-cache miss that hits
// in the counter caches). The remainder are raw far gathers.
const (
	pTemporal = 0.40
	pSpatial  = 0.38
)

// ctrNeighborhood is the vertex span one counter block covers: a Morphable
// block protects 8 KB = 64 vertices of 128 B records. Community-ordered
// real graphs put most of a vertex's neighbors within such spans.
const ctrNeighborhood = 64

// gatherTarget applies spatio-temporal locality to a gather of vertex u:
// with probability pLocal the gather lands near a recently touched vertex —
// usually a *different* vertex (and so a different data block that can miss
// in every cache) but inside the same counter block's coverage. That is the
// kind of locality that produces counter-cache hits at the MC without
// being filtered out by the data caches (Fig 6).
func (s *graphGen) gatherTarget(u uint32) uint32 {
	if s.recentLen > 0 {
		p := s.r.float()
		switch {
		case p < pTemporal:
			u = s.recent[s.r.intn(s.recentLen)]
		case p < pTemporal+pSpatial:
			base := s.recent[s.r.intn(s.recentLen)]
			delta := uint32(s.r.intn(ctrNeighborhood))
			u = (base &^ (ctrNeighborhood - 1)) + delta
			if int(u) >= s.g.v {
				u = base
			}
		}
	}
	s.recent[s.recentPos] = u
	s.recentPos = (s.recentPos + 1) % len(s.recent)
	if s.recentLen < len(s.recent) {
		s.recentLen++
	}
	return u
}

func newGraphGen(name string, kern kernelFunc, g *graph, core, cores int, seed uint64) *graphGen {
	per := g.v / cores
	lo := uint32(core * per)
	hi := uint32((core + 1) * per)
	if core == cores-1 {
		hi = uint32(g.v)
	}
	return &graphGen{name: name, kern: kern, g: g, r: newRNG(seed), lo: lo, hi: hi, cursor: lo}
}

func (s *graphGen) Name() string     { return s.name }
func (s *graphGen) Footprint() int64 { return s.g.footprint }

func (s *graphGen) Next() Access {
	for s.pos >= len(s.buf) {
		s.buf = s.buf[:0]
		s.pos = 0
		s.kern(s, &s.buf)
		s.advance()
	}
	a := s.buf[s.pos]
	s.pos++
	return a
}

// advance moves to the next vertex in the partition, wrapping (a new
// "iteration" of the kernel) indefinitely.
func (s *graphGen) advance() {
	s.cursor++
	if s.cursor >= s.hi {
		s.cursor = s.lo
	}
}

// ---- Kernels ----

// kernPageRank: sequential row pointers, irregular neighbor-rank gathers,
// one write per vertex. The classic counter-cache killer.
func kernPageRank(s *graphGen, out *[]Access) {
	g, v := s.g, s.cursor
	*out = append(*out,
		Access{Addr: g.addrRowPtr(v), NonMem: 2},
		Access{Addr: g.addrRowPtr(v + 1), NonMem: 1},
	)
	for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
		u := s.gatherTarget(g.adj[i])
		*out = append(*out,
			Access{Addr: g.addrAdj(i), NonMem: 1},
			Access{Addr: g.addrProp(0, u), NonMem: 14},
		)
	}
	*out = append(*out, Access{Addr: g.addrProp(1, v), Write: true, NonMem: 6})
}

// kernLabelProp builds graphColoring / connectedComp: gather neighbor
// labels from property array k, write own with probability pWrite.
func kernLabelProp(prop int, pWrite float64) kernelFunc {
	return func(s *graphGen, out *[]Access) {
		g, v := s.g, s.cursor
		*out = append(*out, Access{Addr: g.addrRowPtr(v), NonMem: 2})
		for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
			u := s.gatherTarget(g.adj[i])
			*out = append(*out,
				Access{Addr: g.addrAdj(i), NonMem: 1},
				Access{Addr: g.addrProp(prop, u), NonMem: 14},
			)
		}
		if s.r.float() < pWrite {
			*out = append(*out, Access{Addr: g.addrProp(prop, v), Write: true, NonMem: 2})
		}
	}
}

// kernDegree: degree centrality — row-pointer streaming plus a property
// write; regular compared to the gather kernels.
func kernDegree(s *graphGen, out *[]Access) {
	g, v := s.g, s.cursor
	*out = append(*out,
		Access{Addr: g.addrRowPtr(v), NonMem: 3},
		Access{Addr: g.addrRowPtr(v + 1), NonMem: 1},
		Access{Addr: g.addrProp(3, v), Write: true, NonMem: 2},
	)
}

// kernTraversal builds BFS/DFS: vertices visited in traversal order, each
// visit scanning its adjacency burst and probing the visited flags of its
// neighbors (irregular), marking newly discovered ones (writes).
func kernTraversal(orderOf func(*graph) []uint32) kernelFunc {
	return func(s *graphGen, out *[]Access) {
		g := s.g
		order := orderOf(g)
		// The cursor indexes the traversal order, partitioned like
		// vertices are.
		v := order[s.cursor%uint32(len(order))]
		*out = append(*out, Access{Addr: g.addrRowPtr(v), NonMem: 2})
		deg := g.degree(v)
		writeP := 0.0
		if deg > 0 {
			writeP = 1.0 / float64(deg) * 4 // a few discoveries per visit
		}
		for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
			u := s.gatherTarget(g.adj[i])
			*out = append(*out,
				Access{Addr: g.addrAdj(i), NonMem: 1},
				Access{Addr: g.addrProp(2, u), NonMem: 12},
			)
			if s.r.float() < writeP {
				*out = append(*out, Access{Addr: g.addrProp(2, u), Write: true, NonMem: 1})
			}
		}
	}
}

// kernTriangle: triangle counting — for each vertex, intersect its
// adjacency list with each neighbor's (two concurrent sequential scans at
// unrelated offsets). Read-dominated, heavy adjacency traffic.
func kernTriangle(s *graphGen, out *[]Access) {
	g, v := s.g, s.cursor
	*out = append(*out, Access{Addr: g.addrRowPtr(v), NonMem: 2})
	deg := g.degree(v)
	// Cap per-vertex work so hub vertices do not monopolise the stream.
	limit := g.rowPtr[v] + uint32(minInt(deg, 8))
	for i := g.rowPtr[v]; i < limit; i++ {
		u := g.adj[i]
		*out = append(*out,
			Access{Addr: g.addrAdj(i), NonMem: 1},
			Access{Addr: g.addrRowPtr(u), NonMem: 1},
		)
		uLimit := g.rowPtr[u] + uint32(minInt(g.degree(u), 8))
		for j := g.rowPtr[u]; j < uLimit; j++ {
			*out = append(*out, Access{Addr: g.addrAdj(j), NonMem: 2})
		}
	}
}

// kernSSSP: Bellman-Ford-style relaxation — read own distance, gather
// neighbor distances, relax (write) a fraction of them.
func kernSSSP(s *graphGen, out *[]Access) {
	g, v := s.g, s.cursor
	*out = append(*out,
		Access{Addr: g.addrRowPtr(v), NonMem: 2},
		Access{Addr: g.addrProp(0, v), NonMem: 1},
	)
	for i := g.rowPtr[v]; i < g.rowPtr[v+1]; i++ {
		u := s.gatherTarget(g.adj[i])
		*out = append(*out,
			Access{Addr: g.addrAdj(i), NonMem: 1},
			Access{Addr: g.addrProp(0, u), NonMem: 12},
		)
		if s.r.float() < 0.2 {
			*out = append(*out, Access{Addr: g.addrProp(0, u), Write: true, NonMem: 1})
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
