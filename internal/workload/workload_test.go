package workload

import (
	"testing"
	"testing/quick"
)

func TestNamesComplete(t *testing.T) {
	if got := len(PrimaryNames()); got != 11 {
		t.Fatalf("primary benchmarks = %d, want 11", got)
	}
	if got := len(RegularNames()); got != 15 {
		t.Fatalf("regular benchmarks = %d, want 15", got)
	}
	if got := len(AllNames()); got != 26 {
		t.Fatalf("all benchmarks = %d, want 26", got)
	}
	if !IsPrimary("canneal") || IsPrimary("blackscholes") {
		t.Fatal("IsPrimary misclassifies")
	}
}

func TestEveryBenchmarkGenerates(t *testing.T) {
	sc := TestScale()
	for _, name := range AllNames() {
		gens, err := NewSet(name, 4, 1, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(gens) != 4 {
			t.Fatalf("%s: %d generators", name, len(gens))
		}
		space, err := SpaceBytes(name, 4, sc)
		if err != nil {
			t.Fatalf("%s: SpaceBytes: %v", name, err)
		}
		for c, g := range gens {
			if g.Name() != name {
				t.Fatalf("%s: generator named %q", name, g.Name())
			}
			for i := 0; i < 2000; i++ {
				a := g.Next()
				if a.Addr >= uint64(space) {
					t.Fatalf("%s core %d: address %#x beyond space %#x", name, c, a.Addr, space)
				}
				if a.NonMem < 0 {
					t.Fatalf("%s: negative NonMem", name)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"canneal", "pageRank", "mcf", "blackscholes"} {
		g1, err := NewSet(name, 2, 7, TestScale())
		if err != nil {
			t.Fatal(err)
		}
		g2, err := NewSet(name, 2, 7, TestScale())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			a, b := g1[0].Next(), g2[0].Next()
			if a != b {
				t.Fatalf("%s: streams diverged at %d: %+v vs %+v", name, i, a, b)
			}
		}
	}
}

func TestSeedsChangeStreams(t *testing.T) {
	a, _ := NewSet("canneal", 1, 1, TestScale())
	b, _ := NewSet("canneal", 1, 2, TestScale())
	same := 0
	for i := 0; i < 1000; i++ {
		if a[0].Next().Addr == b[0].Next().Addr {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestMultiprogrammedInstancesDisjoint(t *testing.T) {
	sc := TestScale()
	gens, _ := NewSet("canneal", 4, 1, sc)
	region := perCoreRegion("canneal", sc)
	for c, g := range gens {
		lo := uint64(c) * uint64(region)
		hi := lo + uint64(region)
		for i := 0; i < 2000; i++ {
			a := g.Next().Addr
			if a < lo || a >= hi {
				t.Fatalf("core %d address %#x outside [%#x,%#x)", c, a, lo, hi)
			}
		}
	}
}

func TestGraphKernelsShareFootprint(t *testing.T) {
	gens, _ := NewSet("BFS", 4, 1, TestScale())
	if TotalFootprint(gens) != gens[0].Footprint() {
		t.Fatal("graph kernels should share one footprint")
	}
	sgens, _ := NewSet("mcf", 4, 1, TestScale())
	if TotalFootprint(sgens) <= sgens[0].Footprint() {
		t.Fatal("multiprogrammed footprints should stack")
	}
}

func TestChaseAccessesAreDependent(t *testing.T) {
	gens, _ := NewSet("canneal", 1, 1, TestScale())
	deps := 0
	for i := 0; i < 20000; i++ {
		if gens[0].Next().Dep {
			deps++
		}
	}
	if deps == 0 {
		t.Fatal("canneal produced no dependent (pointer-chase) accesses")
	}
}

func TestWritesPresent(t *testing.T) {
	for _, name := range []string{"canneal", "pageRank", "bwaves_s"} {
		gens, _ := NewSet(name, 1, 1, TestScale())
		writes := 0
		for i := 0; i < 20000; i++ {
			if gens[0].Next().Write {
				writes++
			}
		}
		if writes == 0 {
			t.Fatalf("%s produced no writes", name)
		}
	}
}

func TestUnknownBenchmarkErrors(t *testing.T) {
	if _, err := NewSet("nosuch", 4, 1, TestScale()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := SpaceBytes("nosuch", 4, TestScale()); err == nil {
		t.Fatal("unknown benchmark accepted by SpaceBytes")
	}
	if _, err := NewSet("canneal", 0, 1, TestScale()); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestSpaceBytesCoversGraphLayout(t *testing.T) {
	sc := TestScale()
	g := buildGraph(sc.GraphVertices, sc.GraphAvgDegree, 123)
	want, err := SpaceBytes("pageRank", 4, sc)
	if err != nil {
		t.Fatal(err)
	}
	if g.footprint != want {
		t.Fatalf("analytic space %d != layout footprint %d", want, g.footprint)
	}
}

func TestRMATDeterministicAndSkewed(t *testing.T) {
	g1 := buildGraph(1<<10, 8, 5)
	g2 := buildGraph(1<<10, 8, 5)
	for i := range g1.rowPtr {
		if g1.rowPtr[i] != g2.rowPtr[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
	// Power-law-ish: the max degree should far exceed the average.
	maxDeg := 0
	for v := uint32(0); v < uint32(g1.v); v++ {
		if d := g1.degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8*4 {
		t.Fatalf("max degree %d too uniform for RMAT", maxDeg)
	}
}

func TestTraversalOrdersCoverAllVertices(t *testing.T) {
	g := buildGraph(1<<10, 8, 5)
	for _, order := range [][]uint32{g.orderBFS(), g.orderDFS()} {
		if len(order) != g.v {
			t.Fatalf("order covers %d of %d vertices", len(order), g.v)
		}
		seen := make([]bool, g.v)
		for _, v := range order {
			if seen[v] {
				t.Fatal("vertex visited twice")
			}
			seen[v] = true
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := newRNG(42)
	f := func(n uint16) bool {
		m := int(n%100) + 1
		v := r.intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// float stays in [0,1).
	for i := 0; i < 10000; i++ {
		if v := r.float(); v < 0 || v >= 1 {
			t.Fatalf("float out of range: %v", v)
		}
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]uint32{5, 1, 5, 3, 1})
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("sortedUnique = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedUnique = %v", got)
		}
	}
}

func TestComposeSummaries(t *testing.T) {
	sc := TestScale()
	// Irregular benchmarks touch far more unique blocks than regular
	// ones at equal reference counts.
	can, err := Compose("canneal", 1, 50_000, sc)
	if err != nil {
		t.Fatal(err)
	}
	exch, err := Compose("exchange2_s", 1, 50_000, sc)
	if err != nil {
		t.Fatal(err)
	}
	if can.UniqueBlk <= exch.UniqueBlk {
		t.Fatalf("canneal unique blocks (%d) not above exchange2_s (%d)", can.UniqueBlk, exch.UniqueBlk)
	}
	if can.WriteFrac <= 0 || can.WriteFrac >= 1 {
		t.Fatalf("canneal write fraction %v out of range", can.WriteFrac)
	}
	if can.DepFrac == 0 {
		t.Fatal("canneal has no dependent accesses")
	}
	if exch.DepFrac != 0 {
		t.Fatal("exchange2_s should not chase pointers")
	}
	if len(can.String()) == 0 {
		t.Fatal("empty composition string")
	}
	if _, err := Compose("nosuch", 1, 10, sc); err == nil {
		t.Fatal("unknown benchmark composed")
	}
	if _, err := Compose("canneal", 1, 0, sc); err == nil {
		t.Fatal("zero-length composition accepted")
	}
}

// TestCoRunMix pins the "+"-separated co-run frontend: round-robin part
// assignment, stacked disjoint regions, SpaceBytes agreement, and the
// graph-kernel/unknown-part rejections.
func TestCoRunMix(t *testing.T) {
	sc := TestScale()
	gens, err := NewSet("mcf+canneal", 4, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	wantName := []string{"mcf", "canneal", "mcf", "canneal"}
	var lo uint64
	for c, g := range gens {
		if g.Name() != wantName[c] {
			t.Fatalf("core %d runs %q, want %q", c, g.Name(), wantName[c])
		}
		hi := lo + uint64(perCoreRegion(g.Name(), sc))
		for i := 0; i < 2000; i++ {
			a := g.Next().Addr
			if a < lo || a >= hi {
				t.Fatalf("core %d address %#x outside its region [%#x,%#x)", c, a, lo, hi)
			}
		}
		lo = hi
	}
	space, err := SpaceBytes("mcf+canneal", 4, sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*perCoreRegion("mcf", sc) + 2*perCoreRegion("canneal", sc); space != want {
		t.Fatalf("SpaceBytes = %d, want %d", space, want)
	}

	if _, err := NewSet("mcf+BFS", 2, 1, sc); err == nil {
		t.Error("NewSet accepted a graph kernel in a co-run mix")
	}
	if _, err := NewSet("mcf+nosuch", 2, 1, sc); err == nil {
		t.Error("NewSet accepted an unknown mix part")
	}
	if _, err := SpaceBytes("mcf+nosuch", 2, sc); err == nil {
		t.Error("SpaceBytes accepted an unknown mix part")
	}
}
