package workload

import "fmt"

// Scalar (non-graph) benchmarks are modelled as parameterised mixtures of
// four access behaviours over a per-core footprint:
//
//   - stream:  sequential walk (unit-stride array sweeps)
//   - random:  uniform references over the whole footprint
//   - chase:   dependent pointer chasing (hash-chain; Dep=true)
//   - hot:     references confined to a small cache-resident region
//
// The mixture weights, write ratio, footprint and compute density (NonMem)
// are chosen per benchmark to land each one in the regime the paper
// reports: canneal/mcf/omnetpp are large and irregular (high counter miss,
// Figs 6/15), the SPEC/PARSEC set of Fig 24 is cache-friendly or streaming
// (negligible useless counter accesses).
type scalarSpec struct {
	footprint   func(sc Scale) int64
	hotBytes    int64
	pStream     float64
	pRandom     float64
	pChase      float64 // remainder after stream+random+chase is hot
	writeFrac   float64
	nonMemMean  int
	strideBytes uint64
	// pLocal is the fraction of random accesses confined to a slowly
	// drifting window (temporal locality of real working sets); it is
	// the lever that sets counter-cache hit rates (Figs 6/7).
	pLocal     float64
	localBytes int64
}

var scalarSpecs = map[string]scalarSpec{
	// -- the three large/irregular non-graph benchmarks (primary set) --
	"canneal": {
		footprint: func(sc Scale) int64 { return sc.IrregularBytes * 3 / 8 },
		hotBytes:  1 << 20,
		pStream:   0.12, pRandom: 0.08, pChase: 0.10,
		writeFrac: 0.30, nonMemMean: 14, strideBytes: 64,
		pLocal: 0.55, localBytes: 32 << 20,
	},
	"omnetpp": {
		footprint: func(sc Scale) int64 { return sc.IrregularBytes / 4 },
		hotBytes:  8 << 20,
		pStream:   0.15, pRandom: 0.14, pChase: 0.08,
		writeFrac: 0.35, nonMemMean: 12, strideBytes: 64,
		pLocal: 0.60, localBytes: 16 << 20,
	},
	"mcf": {
		footprint: func(sc Scale) int64 { return sc.IrregularBytes / 2 },
		hotBytes:  2 << 20,
		pStream:   0.28, pRandom: 0.22, pChase: 0.12,
		writeFrac: 0.25, nonMemMean: 6, strideBytes: 64,
		pLocal: 0.60, localBytes: 16 << 20,
	},

	// -- the Fig 24 SPEC/PARSEC regular set --
	"blackscholes": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  512 << 10,
		pStream:   0.60, pRandom: 0.02, pChase: 0,
		writeFrac: 0.30, nonMemMean: 20, strideBytes: 8,
	},
	"bodytrack": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes / 2 },
		hotBytes:  2 << 20,
		pStream:   0.30, pRandom: 0.08, pChase: 0,
		writeFrac: 0.25, nonMemMean: 12, strideBytes: 8,
	},
	"ferret": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  1 << 20,
		pStream:   0.45, pRandom: 0.10, pChase: 0,
		writeFrac: 0.20, nonMemMean: 10, strideBytes: 16,
	},
	"freqmine": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  4 << 20,
		pStream:   0.20, pRandom: 0.12, pChase: 0.08,
		writeFrac: 0.25, nonMemMean: 8, strideBytes: 8,
	},
	"streamcluster": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes * 2 },
		hotBytes:  256 << 10,
		pStream:   0.80, pRandom: 0.03, pChase: 0,
		writeFrac: 0.10, nonMemMean: 6, strideBytes: 8,
	},
	"x264": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  1 << 20,
		pStream:   0.55, pRandom: 0.05, pChase: 0,
		writeFrac: 0.30, nonMemMean: 8, strideBytes: 64,
	},
	"facesim": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes * 2 },
		hotBytes:  2 << 20,
		pStream:   0.50, pRandom: 0.08, pChase: 0,
		writeFrac: 0.35, nonMemMean: 10, strideBytes: 8,
	},
	"fluidanimate": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  1 << 20,
		pStream:   0.45, pRandom: 0.15, pChase: 0,
		writeFrac: 0.40, nonMemMean: 8, strideBytes: 8,
	},
	"bwaves_s": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes * 3 },
		hotBytes:  512 << 10,
		pStream:   0.75, pRandom: 0.02, pChase: 0,
		writeFrac: 0.40, nonMemMean: 6, strideBytes: 8,
	},
	"exchange2_s": {
		footprint: func(sc Scale) int64 { return 512 << 10 },
		hotBytes:  256 << 10,
		pStream:   0.10, pRandom: 0, pChase: 0,
		writeFrac: 0.30, nonMemMean: 15, strideBytes: 8,
	},
	"perlbench_s": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes / 2 },
		hotBytes:  2 << 20,
		pStream:   0.15, pRandom: 0.10, pChase: 0.05,
		writeFrac: 0.30, nonMemMean: 10, strideBytes: 8,
	},
	"cactuBSSN_s": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes * 2 },
		hotBytes:  1 << 20,
		pStream:   0.65, pRandom: 0.05, pChase: 0,
		writeFrac: 0.35, nonMemMean: 8, strideBytes: 8,
	},
	"deepsjeng_s": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes / 3 },
		hotBytes:  4 << 20,
		pStream:   0.05, pRandom: 0.15, pChase: 0,
		writeFrac: 0.25, nonMemMean: 12, strideBytes: 8,
	},
	"leela_s": {
		footprint: func(sc Scale) int64 { return 4 << 20 },
		hotBytes:  1 << 20,
		pStream:   0.05, pRandom: 0.08, pChase: 0,
		writeFrac: 0.20, nonMemMean: 14, strideBytes: 8,
	},
	"x264_s": {
		footprint: func(sc Scale) int64 { return sc.RegularBytes },
		hotBytes:  1 << 20,
		pStream:   0.55, pRandom: 0.06, pChase: 0,
		writeFrac: 0.30, nonMemMean: 9, strideBytes: 64,
	},
}

// perCoreRegion reports the address space reserved per core instance for a
// multiprogrammed scalar benchmark (footprint rounded up to 64 MB so
// instances never overlap).
func perCoreRegion(name string, sc Scale) int64 {
	spec, ok := scalarSpecs[name]
	if !ok {
		return 0
	}
	fp := spec.footprint(sc)
	const gran = 64 << 20
	return (fp + gran - 1) / gran * gran
}

// scalarGen realises one scalar benchmark instance.
type scalarGen struct {
	name      string
	spec      scalarSpec
	base      uint64
	footprint int64
	r         *rng

	streamPos uint64
	chasePos  uint64
	localBase uint64
	localCnt  int
}

func newScalarGen(name string, base uint64, seed uint64, sc Scale) (*scalarGen, error) {
	spec, ok := scalarSpecs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	fp := spec.footprint(sc)
	if spec.hotBytes > fp {
		spec.hotBytes = fp
	}
	g := &scalarGen{name: name, spec: spec, base: base, footprint: fp, r: newRNG(seed)}
	g.chasePos = g.r.next() % uint64(fp)
	return g, nil
}

func (g *scalarGen) Name() string     { return g.name }
func (g *scalarGen) Footprint() int64 { return g.footprint }

func (g *scalarGen) Next() Access {
	sp := &g.spec
	p := g.r.float()
	write := g.r.float() < sp.writeFrac
	nonMem := g.nonMem()
	switch {
	case p < sp.pStream:
		g.streamPos += sp.strideBytes
		if g.streamPos >= uint64(g.footprint) {
			g.streamPos = 0
		}
		return Access{Addr: g.base + g.streamPos, Write: write, NonMem: nonMem}
	case p < sp.pStream+sp.pRandom:
		// Far-random references are read-mostly: scattered stores are
		// rarer than scattered loads in real irregular heaps, and this
		// keeps EMCC's counter invalidations at the Fig 23 scale.
		off := g.randomOffset()
		return Access{Addr: g.base + off, Write: write && g.r.float() < 0.3, NonMem: nonMem}
	case p < sp.pStream+sp.pRandom+sp.pChase:
		// Hash-chain walk: the next address depends on the current
		// one, so the access is serialised behind its predecessor.
		g.chasePos = (g.chasePos*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d) % uint64(g.footprint)
		return Access{Addr: g.base + g.chasePos, Write: false, NonMem: nonMem, Dep: true}
	default:
		off := g.r.next() % uint64(g.spec.hotBytes)
		return Access{Addr: g.base + off, Write: write, NonMem: nonMem}
	}
}

// randomOffset draws a footprint-wide or locality-window offset per the
// spec's pLocal split. Window accesses dwell on one 8 KB page for a burst
// of references before moving on — the page-grain spatial locality of real
// heaps that makes consecutive cache misses share one counter block (and
// thereby produces the counter-cache hit rates of Figs 6/7).
func (g *scalarGen) randomOffset() uint64 {
	sp := &g.spec
	if sp.pLocal > 0 && g.r.float() < sp.pLocal {
		g.localCnt++
		if g.localCnt%4096 == 0 {
			g.localBase = (g.localBase + uint64(sp.localBytes)/4) % uint64(g.footprint)
		}
		const pageBytes = 8 << 10
		const dwell = 16 // references per page visit
		pages := uint64(sp.localBytes) / pageBytes
		page := (uint64(g.localCnt)/dwell + g.r.next()%3) % pages
		off := g.localBase + page*pageBytes + g.r.next()%pageBytes
		return off % uint64(g.footprint)
	}
	return g.r.next() % uint64(g.footprint)
}

// nonMem draws a non-memory instruction count around the spec mean.
func (g *scalarGen) nonMem() int {
	m := g.spec.nonMemMean
	if m <= 1 {
		return m
	}
	// Uniform in [m/2, 3m/2] keeps the mean with cheap variance.
	return m/2 + g.r.intn(m+1)
}
