package workload

import "fmt"

// Composition summarises a generated stream: the knobs a reader needs to
// sanity-check a benchmark's behaviour without replaying it through a
// simulator (used by tests and the tracer's info output).
type Composition struct {
	Refs        int64
	WriteFrac   float64
	DepFrac     float64
	MeanNonMem  float64
	UniqueBlk   int64
	TouchedByte int64 // upper bound of touched addresses
}

// Compose samples n references from a fresh instance of the benchmark and
// summarises them.
func Compose(name string, seed uint64, n int64, sc Scale) (Composition, error) {
	gens, err := NewSet(name, 1, seed, sc)
	if err != nil {
		return Composition{}, err
	}
	g := gens[0]
	var c Composition
	var nonMem int64
	blocks := make(map[uint64]struct{})
	var writes, deps int64
	var maxAddr uint64
	for i := int64(0); i < n; i++ {
		a := g.Next()
		if a.Write {
			writes++
		}
		if a.Dep {
			deps++
		}
		nonMem += int64(a.NonMem)
		blocks[a.Addr>>6] = struct{}{}
		if a.Addr > maxAddr {
			maxAddr = a.Addr
		}
	}
	if n == 0 {
		return Composition{}, fmt.Errorf("workload: cannot compose over zero references")
	}
	c.Refs = n
	c.WriteFrac = float64(writes) / float64(n)
	c.DepFrac = float64(deps) / float64(n)
	c.MeanNonMem = float64(nonMem) / float64(n)
	c.UniqueBlk = int64(len(blocks))
	c.TouchedByte = int64(maxAddr) + 64
	return c, nil
}

// String implements fmt.Stringer.
func (c Composition) String() string {
	return fmt.Sprintf("refs=%d writes=%.1f%% deps=%.1f%% nonmem=%.1f unique-blocks=%d touched<=%dMB",
		c.Refs, 100*c.WriteFrac, 100*c.DepFrac, c.MeanNonMem, c.UniqueBlk, c.TouchedByte>>20)
}
