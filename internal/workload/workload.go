// Package workload synthesises the memory reference streams of the paper's
// benchmarks. The real studies run graphBIG (on an LDBC Facebook-like
// graph), SPEC CPU 2017 and PARSEC 3.0 binaries; none are available here,
// so each benchmark is replaced by a generator reproducing the property
// that matters to the evaluation — its memory access *pattern*: footprint,
// irregularity, reuse, read/write mix and memory intensity (see DESIGN.md,
// substitutions table).
//
// Streams are deterministic functions of (benchmark, core, seed, Scale);
// identical configurations replay identical traces.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Access is one memory reference preceded by NonMem non-memory
// instructions (the core model retires those at issue width).
type Access struct {
	Addr   uint64
	Write  bool
	NonMem int
	// Dep marks a dependent access (pointer chase): the core may not
	// issue it until its previous memory access completed. This is what
	// makes canneal/mcf/omnetpp latency-sensitive rather than merely
	// bandwidth-hungry.
	Dep bool
}

// Generator produces an unbounded, deterministic access stream. Sims pull
// as many references as their run length requires.
type Generator interface {
	// Name is the benchmark label used in figures.
	Name() string
	// Next returns the next access.
	Next() Access
	// Footprint reports the simulated data bytes this stream touches.
	Footprint() int64
}

// Scale sizes the synthetic workloads. The paper's runs use hundreds of GB
// footprints and billions of instructions; these defaults keep single-run
// times laptop-scale while preserving the footprint-vs-cache-size regimes
// (footprints far exceed the 8 MB LLC; counter working sets around or above
// the 128 KB counter cache and competitive with LLC space).
type Scale struct {
	// GraphVertices and GraphAvgDegree shape the RMAT graph substrate.
	GraphVertices  int
	GraphAvgDegree int
	// IrregularBytes sizes canneal/omnetpp/mcf-style footprints per core.
	IrregularBytes int64
	// RegularBytes sizes the streaming/regular (Fig 24) footprints.
	RegularBytes int64
}

// DefaultScale is used by the figure harness.
func DefaultScale() Scale {
	return Scale{
		GraphVertices:  1 << 22,
		GraphAvgDegree: 8,
		IrregularBytes: 256 << 20,
		RegularBytes:   24 << 20,
	}
}

// TestScale is a miniature scale for unit tests.
func TestScale() Scale {
	return Scale{
		GraphVertices:  1 << 12,
		GraphAvgDegree: 8,
		IrregularBytes: 4 << 20,
		RegularBytes:   1 << 20,
	}
}

// Primary benchmarks: the 11 large/irregular workloads of Figs 2-23
// (graphBIG kernels plus canneal, omnetpp, mcf).
var primaryNames = []string{
	"pageRank", "graphColoring", "connectedComp", "degreeCentr",
	"DFS", "BFS", "triangleCount", "shortestPath",
	"canneal", "omnetpp", "mcf",
}

// Regular benchmarks: the SPEC/PARSEC set of Fig 24.
var regularNames = []string{
	"blackscholes", "bodytrack", "ferret", "freqmine", "streamcluster",
	"x264", "facesim", "fluidanimate", "bwaves_s", "exchange2_s",
	"perlbench_s", "cactuBSSN_s", "deepsjeng_s", "leela_s", "x264_s",
}

// PrimaryNames lists the 11 large/irregular benchmarks in figure order.
func PrimaryNames() []string { return append([]string(nil), primaryNames...) }

// RegularNames lists the Fig 24 SPEC/PARSEC benchmarks in figure order.
func RegularNames() []string { return append([]string(nil), regularNames...) }

// AllNames lists every benchmark, primary set first.
func AllNames() []string { return append(PrimaryNames(), RegularNames()...) }

// IsPrimary reports whether name belongs to the 11-benchmark set.
func IsPrimary(name string) bool {
	for _, n := range primaryNames {
		if n == name {
			return true
		}
	}
	return false
}

// NewSet builds one generator per core for the named benchmark. Graph
// kernels share one graph (multithreaded, as the paper runs graphBIG) with
// each core traversing its own vertex partition; all other benchmarks are
// multiprogrammed — per-core instances at disjoint address offsets
// (Sec. V: "four instances of the same benchmark").
//
// A "+"-separated mix ("mcf+canneal") is the co-run frontend: core c runs
// part c mod len(parts), each instance at a stacked offset so co-runners
// never share data and interfere only through the shared LLC slices and
// DRAM. Mixes are scalar-only — a graph kernel's footprint is one shared
// graph, which has no per-core region to stack.
func NewSet(name string, cores int, seed uint64, sc Scale) ([]Generator, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("workload: cores must be positive, got %d", cores)
	}
	if parts := strings.Split(name, "+"); len(parts) > 1 {
		gens := make([]Generator, cores)
		var offset uint64
		for c := 0; c < cores; c++ {
			part := parts[c%len(parts)]
			region, err := mixRegion(part, sc)
			if err != nil {
				return nil, err
			}
			g, err := newScalarGen(part, offset, seed+uint64(c)*0x79b9, sc)
			if err != nil {
				return nil, err
			}
			gens[c] = g
			offset += uint64(region)
		}
		return gens, nil
	}
	gens := make([]Generator, cores)
	if kern, ok := graphKernels[name]; ok {
		g := cachedGraph(sc.GraphVertices, sc.GraphAvgDegree, seed)
		for c := 0; c < cores; c++ {
			gens[c] = newGraphGen(name, kern, g, c, cores, seed+uint64(c)*0x9e37)
		}
		return gens, nil
	}
	for c := 0; c < cores; c++ {
		offset := uint64(c) * uint64(perCoreRegion(name, sc))
		g, err := newScalarGen(name, offset, seed+uint64(c)*0x79b9, sc)
		if err != nil {
			return nil, err
		}
		gens[c] = g
	}
	return gens, nil
}

// mixRegion reports one co-run instance's address region, rejecting the
// benchmarks a mix cannot stack.
func mixRegion(part string, sc Scale) (int64, error) {
	if _, ok := graphKernels[part]; ok {
		return 0, fmt.Errorf("workload: graph kernel %q cannot join a co-run mix (its footprint is one shared graph, not a per-core region)", part)
	}
	region := perCoreRegion(part, sc)
	if region == 0 {
		return 0, fmt.Errorf("workload: unknown benchmark %q", part)
	}
	return region, nil
}

// TotalFootprint reports the combined footprint of a generator set.
func TotalFootprint(gens []Generator) int64 {
	if len(gens) == 0 {
		return 0
	}
	// Graph kernels share their footprint; scalar benchmarks stack.
	if _, shared := graphKernels[gens[0].Name()]; shared {
		return gens[0].Footprint()
	}
	var total int64
	for _, g := range gens {
		total += g.Footprint()
	}
	return total
}

// SpaceBytes reports how much simulated physical data space a benchmark
// needs for `cores` instances: the upper bound of every address any
// generator can emit, 64 B-block aligned.
func SpaceBytes(name string, cores int, sc Scale) (int64, error) {
	if parts := strings.Split(name, "+"); len(parts) > 1 {
		var total int64
		for c := 0; c < cores; c++ {
			region, err := mixRegion(parts[c%len(parts)], sc)
			if err != nil {
				return 0, err
			}
			total += region
		}
		return total, nil
	}
	if _, ok := graphKernels[name]; ok {
		// Mirror graph.layout() analytically: row pointers, adjacency,
		// four 8 B property arrays, each 64 B aligned.
		align := func(x int64) int64 { return (x + 63) &^ 63 }
		v := int64(sc.GraphVertices)
		e := v * int64(sc.GraphAvgDegree)
		return align(4*(v+1)) + align(4*e) + 4*align(propStride*v), nil
	}
	region := perCoreRegion(name, sc)
	if region == 0 {
		return 0, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return int64(cores) * region, nil
}

// rng is a splitmix64 PRNG: tiny, fast and stable across Go versions so
// traces never drift between releases.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// sortedUnique sorts and dedupes a slice in place, returning the prefix.
func sortedUnique(xs []uint32) []uint32 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:0]
	var last uint32
	for i, x := range xs {
		if i == 0 || x != last {
			out = append(out, x)
			last = x
		}
	}
	return out
}
