package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// tiny builds a 2-set, 2-way cache (256 B): block index parity selects the
// set.
func tiny() *Cache { return New("t", 256, 2) }

func TestHitAfterInsert(t *testing.T) {
	c := tiny()
	c.Insert(4, false, addr.KindData)
	if !c.Lookup(4) {
		t.Fatal("miss after insert")
	}
	if c.Lookup(6) {
		t.Fatal("hit on never-inserted block")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Set 0 holds even blocks; fill both ways then touch 0 so 2 is LRU.
	c.Insert(0, false, addr.KindData)
	c.Insert(2, false, addr.KindData)
	c.Lookup(0)
	v, ok := c.Insert(4, false, addr.KindData)
	if !ok || v.Block != 2 {
		t.Fatalf("victim = %+v ok=%v, want block 2", v, ok)
	}
	if !c.Lookup(0) || !c.Lookup(4) || c.Lookup(2) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := tiny()
	c.Insert(0, true, addr.KindData)
	if _, ok := c.Insert(0, false, addr.KindData); ok {
		t.Fatal("re-insert produced a victim")
	}
	c.Insert(2, false, addr.KindData)
	c.Insert(4, false, addr.KindData) // evicts LRU: 0
	v, _ := c.Insert(6, false, addr.KindData)
	_ = v
	// The dirty bit must have survived the merge: whichever eviction
	// removed block 0 must have reported dirty.
}

func TestDirtyVictimReported(t *testing.T) {
	c := tiny()
	c.Insert(0, true, addr.KindData)
	c.Insert(2, false, addr.KindData)
	v, ok := c.Insert(4, false, addr.KindData)
	if !ok || v.Block != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
}

func TestMarkDirty(t *testing.T) {
	c := tiny()
	if c.MarkDirty(0) {
		t.Fatal("marked a non-resident block dirty")
	}
	c.Insert(0, false, addr.KindData)
	if !c.MarkDirty(0) {
		t.Fatal("failed to mark resident block")
	}
	c.Insert(2, false, addr.KindData)
	v, _ := c.Insert(4, false, addr.KindData)
	if v.Block != 0 || !v.Dirty {
		t.Fatalf("dirty mark lost: victim %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Insert(0, true, addr.KindCounter)
	v, ok := c.Invalidate(0)
	if !ok || !v.Dirty || v.Kind != addr.KindCounter {
		t.Fatalf("invalidate = %+v ok=%v", v, ok)
	}
	if c.Lookup(0) {
		t.Fatal("block still resident after invalidate")
	}
	if _, ok := c.Invalidate(0); ok {
		t.Fatal("double invalidate reported residency")
	}
}

func TestMarkUsedTracksUselessness(t *testing.T) {
	c := tiny()
	c.Insert(0, false, addr.KindCounter)
	c.Insert(2, false, addr.KindData)
	c.MarkUsed(0)
	c.Lookup(2)
	v, _ := c.Insert(4, false, addr.KindData) // evicts 0 (LRU)
	if v.Block != 0 || !v.WasUsed {
		t.Fatalf("used flag lost: %+v", v)
	}
}

func TestKindCounting(t *testing.T) {
	c := New("k", 1024, 4)
	c.Insert(0, false, addr.KindData)
	c.Insert(1, false, addr.KindCounter)
	c.Insert(2, false, addr.KindTree)
	if c.KindCount(addr.KindData) != 1 || c.KindCount(addr.KindCounter) != 1 || c.KindCount(addr.KindTree) != 1 {
		t.Fatal("kind counts wrong after inserts")
	}
	c.Invalidate(1)
	if c.KindCount(addr.KindCounter) != 0 {
		t.Fatal("kind count wrong after invalidate")
	}
}

// TestCounterCapIsHardPartition: with a cap, counter occupancy never
// exceeds it, and counter inserts never evict data once the cap is hit.
func TestCounterCapIsHardPartition(t *testing.T) {
	c := New("cap", 4096, 4) // 64 lines, 16 sets
	c.SetCounterCap(4 * 64)  // 4 counter lines max
	// Fill with data.
	for i := uint64(0); i < 64; i++ {
		c.Insert(i, false, addr.KindData)
	}
	dataEvictions := 0
	for i := uint64(1000); i < 1100; i++ {
		if v, ok := c.Insert(i, false, addr.KindCounter); ok && v.Kind == addr.KindData {
			dataEvictions++
		}
		if got := c.KindCount(addr.KindCounter); got > 4 {
			t.Fatalf("counter occupancy %d exceeds cap 4", got)
		}
	}
	if dataEvictions > 4 {
		t.Fatalf("counters displaced %d data lines, cap allows at most 4", dataEvictions)
	}
}

func TestOccupancy(t *testing.T) {
	c := tiny()
	if c.Occupancy() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Insert(0, false, addr.KindData)
	c.Insert(1, false, addr.KindData)
	if c.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", c.Occupancy())
	}
}

// TestLookupConsistencyProperty: after inserting a set of blocks into a
// large-enough cache, every one of them hits.
func TestLookupConsistencyProperty(t *testing.T) {
	f := func(blocks []uint64) bool {
		if len(blocks) > 16 {
			blocks = blocks[:16]
		}
		c := New("p", 64*64, 64) // fully associative, 64 lines
		for _, b := range blocks {
			c.Insert(b, false, addr.KindData)
		}
		for _, b := range blocks {
			if !c.Lookup(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New("x", 0, 4) },
		func() { New("x", 192, 4) }, // 3 blocks not divisible by 4 ways
		func() { New("x", 64, 2) },  // zero sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			fn()
		}()
	}
}
