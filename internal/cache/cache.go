// Package cache provides the functional set-associative cache model used
// for every cache in the hierarchy (L1, L2, LLC slices, the MC's counter
// cache). Caches here are tag stores: hit/miss/eviction/invalidation logic
// with LRU replacement, block-kind accounting and the per-kind occupancy
// cap EMCC imposes on counters in L2 (Sec. V: "EMCC only caches 32KB worth
// of counters in L2"). All timing lives in the hierarchy model.
package cache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/inv"
)

// line is one cache way.
type line struct {
	tag     uint64 // block index (full address >> 6); sets are by index bits
	valid   bool
	dirty   bool
	kind    addr.Kind
	lastUse uint64 // LRU stamp
	// usedForLLCMiss supports the Fig 11 accounting: a counter block
	// speculatively fetched into L2 was "useless" if it is evicted
	// without ever serving a data miss that also missed in LLC.
	usedForLLCMiss bool
}

// Victim describes an evicted block.
type Victim struct {
	Block uint64
	Dirty bool
	Kind  addr.Kind
	// WasUsed is the usedForLLCMiss flag at eviction (Fig 11 stat).
	WasUsed bool
}

// Cache is a set-associative tag store. Not safe for concurrent use: the
// simulator is single-threaded by design.
type Cache struct {
	name    string
	sets    uint64
	ways    int
	lines   []line // sets*ways, set-major
	stamp   uint64
	kindCnt map[addr.Kind]int

	// ctrCapLines, when positive, caps how many lines may hold
	// counter-kind blocks; inserting past the cap evicts the LRU
	// counter line instead of the global LRU (EMCC's 32 KB rule).
	ctrCapLines int

	// rec is the owning run's invariant recorder (never nil; defaults to
	// the process-wide recorder until SetRecorder rebinds it).
	rec *inv.Recorder
}

// New builds a cache of capacityBytes with the given associativity over
// 64 B blocks. Capacity must divide evenly into sets.
func New(name string, capacityBytes int64, ways int) *Cache {
	if capacityBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %dB/%d-way", name, capacityBytes, ways))
	}
	blocks := capacityBytes / addr.BlockBytes
	if blocks%int64(ways) != 0 {
		panic(fmt.Sprintf("cache %s: %d blocks not divisible by %d ways", name, blocks, ways))
	}
	sets := uint64(blocks) / uint64(ways)
	if sets == 0 {
		panic(fmt.Sprintf("cache %s: zero sets", name))
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		lines:   make([]line, sets*uint64(ways)),
		kindCnt: make(map[addr.Kind]int),
		rec:     inv.Default(),
	}
}

// NewSets builds a cache with an explicit set count (the sliced-LLC shards
// carry uneven set shares, so their geometry is given in sets, not bytes).
func NewSets(name string, sets uint64, ways int) *Cache {
	if sets == 0 || ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %d sets/%d-way", name, sets, ways))
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		lines:   make([]line, sets*uint64(ways)),
		kindCnt: make(map[addr.Kind]int),
		rec:     inv.Default(),
	}
}

// SplitSets partitions total sets across n shards: total/n each, with the
// remainder spread over the first shards and a floor of one set — the one
// canonical split the timing and functional LLC slicings must share so
// their contents stay comparable.
func SplitSets(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	base, rem := total/uint64(n), int(total%uint64(n))
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return out
}

// SetRecorder binds the owning run's invariant recorder (nil rebinds the
// default). Call at construction time, before any traffic.
func (c *Cache) SetRecorder(r *inv.Recorder) { c.rec = inv.Or(r) }

// SetCounterCap caps counter-kind occupancy to capBytes worth of lines.
func (c *Cache) SetCounterCap(capBytes int64) {
	c.ctrCapLines = int(capBytes / addr.BlockBytes)
}

// Name reports the cache's label.
func (c *Cache) Name() string { return c.name }

// Ways reports associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets reports the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// KindCount reports how many lines currently hold blocks of kind k.
func (c *Cache) KindCount(k addr.Kind) int { return c.kindCnt[k] }

func (c *Cache) set(block uint64) []line {
	s := block % c.sets
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// Lookup probes for a block, updating LRU on hit.
func (c *Cache) Lookup(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			c.stamp++
			set[i].lastUse = c.stamp
			return true
		}
	}
	return false
}

// Peek probes without updating LRU.
func (c *Cache) Peek(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit of a resident block; reports residency.
func (c *Cache) MarkDirty(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// MarkUsed flags a resident counter block as having served an LLC data
// miss (Fig 11 accounting); reports residency.
func (c *Cache) MarkUsed(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].usedForLLCMiss = true
			return true
		}
	}
	return false
}

// Insert places a block, evicting if needed, and returns the victim (ok
// reports whether a valid block was displaced). Inserting a block that is
// already resident refreshes its LRU/dirty state instead.
//
// When a counter cap is configured and the cache is at it, a counter
// insertion replaces the LRU counter of its set; if the set holds no
// counter, the insertion is dropped — the budget is a hard partition, so
// counters can never displace more data than the cap allows (Sec. V).
func (c *Cache) Insert(block uint64, dirty bool, kind addr.Kind) (Victim, bool) {
	set := c.set(block)
	c.stamp++
	// Already resident?
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lastUse = c.stamp
			set[i].dirty = set[i].dirty || dirty
			return Victim{}, false
		}
	}
	victimIdx := c.pickVictim(set, kind)
	if victimIdx < 0 {
		return Victim{}, false // counter insert dropped at cap
	}
	v := set[victimIdx]
	var out Victim
	evicted := false
	if v.valid {
		out = Victim{Block: v.tag, Dirty: v.dirty, Kind: v.kind, WasUsed: v.usedForLLCMiss}
		evicted = true
		c.kindCnt[v.kind]--
	}
	set[victimIdx] = line{tag: block, valid: true, dirty: dirty, kind: kind, lastUse: c.stamp}
	c.kindCnt[kind]++
	if c.rec.On() {
		c.checkSet(set, block)
	}
	return out, evicted
}

// checkSet validates the per-set invariants after a mutation: a block is
// resident in at most one way, LRU stamps never run ahead of the global
// stamp, and counter occupancy respects the configured cap. O(ways), gated.
func (c *Cache) checkSet(set []line, block uint64) {
	rec := c.rec
	if !rec.On() {
		return
	}
	seen := 0
	for i := range set {
		if !set[i].valid {
			continue
		}
		if set[i].tag == block {
			seen++
		}
		if set[i].lastUse > c.stamp {
			rec.Failf("cache", "%s: line lastUse %d ahead of global stamp %d", c.name, set[i].lastUse, c.stamp)
		}
	}
	if seen > 1 {
		rec.Failf("cache", "%s: block %#x resident in %d ways of one set", c.name, block, seen)
	}
	if c.ctrCapLines > 0 && c.kindCnt[addr.KindCounter] > c.ctrCapLines {
		rec.Failf("cache", "%s: %d counter lines exceed cap %d", c.name, c.kindCnt[addr.KindCounter], c.ctrCapLines)
	}
}

// CheckConsistency fully rescans the tag store and cross-checks the
// per-kind occupancy ledger, the counter cap and intra-set tag uniqueness.
// O(capacity): the verification harness calls it after a run; it is not for
// per-access use.
func (c *Cache) CheckConsistency() error {
	recount := make(map[addr.Kind]int)
	for s := uint64(0); s < c.sets; s++ {
		set := c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
		tags := make(map[uint64]int)
		for i := range set {
			if !set[i].valid {
				continue
			}
			recount[set[i].kind]++
			tags[set[i].tag]++
			if set[i].tag%c.sets != s {
				return fmt.Errorf("cache %s: block %#x stored in set %d, maps to set %d", c.name, set[i].tag, s, set[i].tag%c.sets)
			}
			if set[i].lastUse > c.stamp {
				return fmt.Errorf("cache %s: line lastUse %d ahead of global stamp %d", c.name, set[i].lastUse, c.stamp)
			}
		}
		for tag, n := range tags {
			if n > 1 {
				return fmt.Errorf("cache %s: block %#x resident in %d ways of set %d", c.name, tag, n, s)
			}
		}
	}
	for k, n := range recount {
		if c.kindCnt[k] != n {
			return fmt.Errorf("cache %s: kind %v ledger says %d lines, tag store holds %d", c.name, k, c.kindCnt[k], n)
		}
	}
	for k, n := range c.kindCnt {
		if n != recount[k] {
			return fmt.Errorf("cache %s: kind %v ledger says %d lines, tag store holds %d", c.name, k, n, recount[k])
		}
	}
	if c.ctrCapLines > 0 && c.kindCnt[addr.KindCounter] > c.ctrCapLines {
		return fmt.Errorf("cache %s: %d counter lines exceed cap %d", c.name, c.kindCnt[addr.KindCounter], c.ctrCapLines)
	}
	return nil
}

// pickVictim chooses the way to replace: an invalid way first; otherwise,
// if inserting a counter at the counter cap, the LRU *counter* way in this
// set — or no way at all (-1, insert dropped) when the set has none;
// otherwise global LRU.
func (c *Cache) pickVictim(set []line, kind addr.Kind) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.ctrCapLines > 0 && kind == addr.KindCounter && c.kindCnt[addr.KindCounter] >= c.ctrCapLines {
		best := -1
		for i := range set {
			if set[i].kind == addr.KindCounter && (best < 0 || set[i].lastUse < set[best].lastUse) {
				best = i
			}
		}
		return best
	}
	best := 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[best].lastUse {
			best = i
		}
	}
	return best
}

// Invalidate removes a block; reports whether it was resident and returns
// its pre-invalidation state (for writeback-on-invalidate policies and the
// Fig 23 accounting).
func (c *Cache) Invalidate(block uint64) (Victim, bool) {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			v := Victim{Block: set[i].tag, Dirty: set[i].dirty, Kind: set[i].kind, WasUsed: set[i].usedForLLCMiss}
			if rec := c.rec; rec.On() && c.kindCnt[set[i].kind] <= 0 {
				rec.Failf("cache", "%s: invalidating %v block %#x with non-positive kind ledger %d", c.name, set[i].kind, block, c.kindCnt[set[i].kind])
			}
			c.kindCnt[set[i].kind]--
			set[i] = line{}
			return v, true
		}
	}
	return Victim{}, false
}

// Occupancy reports the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
