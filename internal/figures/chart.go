package figures

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FprintChart renders the table with ASCII bars for percentage columns —
// a terminal-friendly approximation of the paper's bar charts. Cells that
// do not parse as percentages render as plain text.
func (t *Table) FprintChart(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)

	// Find the maximum percentage to scale bars.
	maxPct := 0.0
	for _, r := range t.Rows {
		for _, cell := range r[1:] {
			if v, ok := parsePct(cell); ok && v > maxPct {
				maxPct = v
			}
		}
	}
	if maxPct <= 0 {
		t.Fprint(w)
		return
	}
	const width = 40
	labelW := 0
	for _, r := range t.Rows {
		if len(r[0]) > labelW {
			labelW = len(r[0])
		}
	}
	for ci := 1; ci < len(t.Header); ci++ {
		fmt.Fprintf(w, "-- %s\n", t.Header[ci])
		for _, r := range t.Rows {
			if ci >= len(r) {
				continue
			}
			v, ok := parsePct(r[ci])
			if !ok {
				if r[ci] != "" {
					fmt.Fprintf(w, "%-*s  %s\n", labelW, r[0], r[ci])
				}
				continue
			}
			bar := int(v / maxPct * width)
			if bar < 0 {
				bar = 0
			}
			fmt.Fprintf(w, "%-*s  %-*s %6.1f%%\n", labelW, r[0], width, strings.Repeat("█", bar), v)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// parsePct parses "12.3%" into 12.3.
func parsePct(s string) (float64, bool) {
	if !strings.HasSuffix(s, "%") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
