// Package figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each FigN function
// declares the simulations it needs — functional (Pintool-style) runs for
// the counting figures, timing (gem5-style) runs for the performance
// figures — and returns a printable Table with the same rows/series the
// paper plots.
//
// The harness works in two phases (DESIGN.md §9). A *planning* pass runs
// each figure builder with a no-op scenario store so every simulation the
// builder touches is declared up front as an internal/run Scenario, keyed
// by its content hash — figures that share configurations (16/17/15,
// 21/22, …) deduplicate by construction. The *execute* phase then runs the
// deduplicated scenario set across a worker pool (Workers), optionally
// backed by a persistent result cache (Cache), before the builders run
// again for real against the collected outcomes. Tables are byte-identical
// at any worker count.
package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// Table is one regenerated figure/table.
type Table struct {
	ID     string // e.g. "fig16"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first); notes become
// trailing comment-style rows prefixed with '#'.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Harness owns run sizing, the scenario plan and the collected outcomes.
type Harness struct {
	// Quick shrinks run lengths for smoke testing; shapes get noisier.
	Quick bool
	Seed  uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// ScaleOverride and RefsOverride, when set, replace the built-in
	// sizing entirely (unit tests run figures at miniature scale).
	ScaleOverride *workload.Scale
	RefsOverride  int64
	// Workers is the executor pool width (cmd flag -j): 0 = GOMAXPROCS,
	// 1 = serial in declaration order. Tables are byte-identical at any
	// value; only wall-clock time changes.
	Workers int
	// Cache, when non-nil, persists scenario outcomes on disk (cmd flag
	// -cache) so an unchanged scenario is never simulated twice across
	// processes.
	Cache *run.Cache

	planning bool
	plan     *run.Plan
	outcomes map[string]*run.Outcome
	report   run.Report
}

// tsimRun is a timing outcome as the figure builders consume it.
type tsimRun struct {
	res tsim.Result
	st  stats.Snapshot
}

// NewHarness builds a harness.
func NewHarness(quick bool) *Harness {
	return &Harness{
		Quick:    quick,
		Seed:     1,
		outcomes: make(map[string]*run.Outcome),
	}
}

// Report summarises all executor activity on behalf of this harness:
// simulations executed vs outcomes served from the persistent cache.
func (h *Harness) Report() run.Report { return h.report }

func (h *Harness) frefs() (warm, refs int64) {
	if h.RefsOverride > 0 {
		return h.RefsOverride / 2, h.RefsOverride
	}
	if h.Quick {
		return 1_000_000, 2_000_000
	}
	return 3_000_000, 6_000_000
}

func (h *Harness) trefs() (warm, refs int64) {
	if h.RefsOverride > 0 {
		return h.RefsOverride / 2, h.RefsOverride / 4
	}
	if h.Quick {
		return 1_000_000, 250_000
	}
	return 2_500_000, 800_000
}

// system mutators, named like Fig 16's legend.
func applySystem(cfg *config.Config, system string) {
	switch system {
	case "non-secure":
		cfg.Counter = config.CtrNone
		cfg.CountersInLLC = false
		cfg.EMCC = false
	case "mono":
		cfg.Counter = config.CtrMono
	case "sc64":
		cfg.Counter = config.CtrSC64
	case "morphable":
		cfg.Counter = config.CtrMorphable
	case "morphable+nollc":
		cfg.Counter = config.CtrMorphable
		cfg.CountersInLLC = false
	case "emcc":
		cfg.Counter = config.CtrMorphable
		cfg.EMCC = true
	case "bipbip":
		cfg.Counter = config.CtrBipBip
		cfg.CountersInLLC = false
	case "insram":
		cfg.Counter = config.CtrInSRAM
		cfg.CountersInLLC = false
	default:
		panic("figures: unknown system " + system)
	}
}

// scenario resolves one simulation description into a content-keyed
// run.Scenario: the system and any sweep mutation are applied to the
// default configuration here, so the scenario hashes (and executes) as
// pure data. variant is a log label only — it never keys anything.
func (h *Harness) scenario(mode run.Mode, bench, system, variant string, mutate func(*config.Config)) run.Scenario {
	cfg := config.Default()
	applySystem(&cfg, system)
	if mutate != nil {
		mutate(&cfg)
	}
	var warm, refs int64
	if mode == run.Functional {
		warm, refs = h.frefs()
	} else {
		warm, refs = h.trefs()
	}
	label := system
	if variant != "" && variant != "base" {
		label += "/" + variant
	}
	return run.Scenario{
		Mode: mode, Benchmark: bench, Config: cfg,
		Seed: h.Seed, Refs: refs, Warmup: warm, Scale: h.scale(),
		Label: fmt.Sprintf("%-14s %s", bench, label),
	}
}

// outcome is the single scenario store. In the planning pass it declares
// the scenario into the plan and returns a placeholder (builders' tables
// are discarded); in the build pass it returns the executed outcome. A
// scenario the planning pass somehow missed is resolved inline — a
// correctness backstop, not an expected path.
func (h *Harness) outcome(sc run.Scenario) *run.Outcome {
	key := sc.Key()
	if h.planning {
		if _, ok := h.outcomes[key]; !ok {
			h.plan.Add(sc)
		}
		return &run.Outcome{Timing: &tsim.Result{}}
	}
	if o := h.outcomes[key]; o != nil {
		return o
	}
	o, executed, err := run.Resolve(&sc, h.Cache)
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	if executed {
		h.report.Executed++
	} else {
		h.report.Cached++
	}
	h.outcomes[key] = o
	return o
}

// functional declares or fetches a functional simulation, identified
// purely by its content hash — call sites that resolve to the same
// configuration share one run, mutation or not.
func (h *Harness) functional(bench, system string, mutate func(*config.Config)) stats.Snapshot {
	return h.outcome(h.scenario(run.Functional, bench, system, "", mutate)).Stats
}

// timing declares or fetches a timing simulation. variant labels the sweep
// point in progress logs.
func (h *Harness) timing(bench, system, variant string, mutate func(*config.Config)) tsimRun {
	o := h.outcome(h.scenario(run.Timing, bench, system, variant, mutate))
	return tsimRun{res: *o.Timing, st: o.Stats}
}

// prepare runs the given figure builders in planning mode to collect their
// scenario declarations, then executes the deduplicated set across the
// worker pool and stores the outcomes for the real build pass.
func (h *Harness) prepare(builds ...func(*Harness) *Table) {
	h.planning = true
	h.plan = run.NewPlan()
	for _, b := range builds {
		b(h)
	}
	h.planning = false
	if h.plan.Len() == 0 {
		return
	}
	outs, rep, err := run.Execute(h.plan, run.Options{
		Workers: h.Workers, Cache: h.Cache, Log: h.Log,
	})
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	for k, o := range outs {
		h.outcomes[k] = o
	}
	h.report.Executed += rep.Executed
	h.report.Cached += rep.Cached
}

func (h *Harness) scale() workload.Scale {
	if h.ScaleOverride != nil {
		return *h.ScaleOverride
	}
	if h.Quick {
		sc := workload.DefaultScale()
		sc.GraphVertices = 1 << 19
		sc.IrregularBytes = 64 << 20
		return sc
	}
	return workload.DefaultScale()
}

// primary returns the 11-benchmark list.
func primary() []string { return workload.PrimaryNames() }

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func ns(x float64) string  { return fmt.Sprintf("%.1f", x) }
func ratio(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// ---- Counting figures (functional simulator) ----

// Fig2 reports DRAM traffic overhead with and without caching counters in
// LLC, split into read and write overhead, normalised to DRAM data traffic.
func (h *Harness) Fig2() *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "DRAM traffic overhead normalized to normal data traffic",
		Header: []string{"benchmark", "w/o-read", "w/o-write", "w/o-total", "w-read", "w-write", "w-total"},
		Notes: []string{
			"paper: caching counters in LLC reduces mean total overhead from 105% to 59%",
		},
	}
	var meanW, meanWo []float64
	for _, b := range primary() {
		row := []string{b}
		var totals [2]float64
		for i, system := range []string{"morphable+nollc", "morphable"} {
			st := h.functional(b, system, nil)
			data := st.Counter(stats.FsimDRAMDataRead) + st.Counter(stats.FsimDRAMDataWrite)
			ovf := st.Counter(stats.FsimDRAMOvfL0) + st.Counter(stats.FsimDRAMOvfHi)
			rd := ratio(st.Counter(stats.FsimDRAMCtrRead)+ovf/2, data)
			wr := ratio(st.Counter(stats.FsimDRAMCtrWrite)+ovf/2, data)
			row = append(row, pct(rd), pct(wr), pct(rd+wr))
			totals[i] = rd + wr
		}
		meanWo = append(meanWo, totals[0])
		meanW = append(meanW, totals[1])
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"mean", "", "", pct(stats.Mean(meanWo)), "", "", pct(stats.Mean(meanW))})
	return t
}

// counterMix produces the Fig 6/7 classification under a given LLC size.
func (h *Harness) counterMix(id, title string, llcBytes int64) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "mc-hit", "llc-hit", "llc-miss"},
	}
	var mcs, hits, misses []float64
	for _, b := range primary() {
		st := h.functional(b, "morphable", func(c *config.Config) { c.L3Bytes = llcBytes })
		reads := st.Counter(stats.FsimDRAMDataRead)
		mc := ratio(st.Counter(stats.FsimCtrMCHit), reads)
		hit := ratio(st.Counter(stats.FsimCtrLLCHit), reads)
		miss := ratio(st.Counter(stats.FsimCtrLLCMiss), reads)
		mcs, hits, misses = append(mcs, mc), append(hits, hit), append(misses, miss)
		t.Rows = append(t.Rows, []string{b, pct(mc), pct(hit), pct(miss)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(mcs)), pct(stats.Mean(hits)), pct(stats.Mean(misses))})
	return t
}

// Fig6 is the counter hit/miss split with 2 MB/core of LLC.
func (h *Harness) Fig6() *Table {
	t := h.counterMix("fig6", "Counter hits/misses per DRAM data read (2MB/core LLC)", 8<<20)
	t.Notes = append(t.Notes, "paper mean: 65% MC hit / 15% LLC hit / 19% LLC miss")
	return t
}

// Fig7 is the same with 12 MB/core.
func (h *Harness) Fig7() *Table {
	t := h.counterMix("fig7", "Counter hits/misses per DRAM data read (12MB/core LLC)", 48<<20)
	t.Notes = append(t.Notes, "paper mean: 67% MC hit / 18% LLC hit / 14% LLC miss")
	return t
}

// Fig11 reports useless counter accesses to LLC under EMCC.
func (h *Harness) Fig11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Useless counter accesses to LLC under EMCC / L2 data misses",
		Header: []string{"benchmark", "useless"},
		Notes:  []string{"paper mean: 3.2%"},
	}
	var vals []float64
	for _, b := range primary() {
		st := h.functional(b, "emcc", nil)
		v := ratio(st.Counter(stats.EmccUseless), st.Counter(stats.FsimL2DataMiss))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// Fig12 compares total counter accesses to LLC under EMCC and the serial
// baseline, normalised to L2 data misses.
func (h *Harness) Fig12() *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Total counter accesses to LLC / L2 data misses",
		Header: []string{"benchmark", "baseline", "emcc"},
		Notes:  []string{"paper mean: baseline 31.4%, EMCC 35.6% (+4.2%)"},
	}
	var base, em []float64
	for _, b := range primary() {
		bst := h.functional(b, "morphable", nil)
		est := h.functional(b, "emcc", nil)
		bv := ratio(bst.Counter(stats.FsimCtrLLCLookup), bst.Counter(stats.FsimL2DataMiss))
		ev := ratio(est.Counter(stats.FsimCtrLLCLookup), est.Counter(stats.FsimL2DataMiss))
		base, em = append(base, bv), append(em, ev)
		t.Rows = append(t.Rows, []string{b, pct(bv), pct(ev)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(base)), pct(stats.Mean(em))})
	return t
}

// Fig23 reports counter-block invalidations in L2 under EMCC.
func (h *Harness) Fig23() *Table {
	t := &Table{
		ID:     "fig23",
		Title:  "Counter-block invalidations in L2 / counter insertions into L2",
		Header: []string{"benchmark", "invalidated"},
		Notes:  []string{"paper mean: 1.7%"},
	}
	var vals []float64
	for _, b := range primary() {
		st := h.functional(b, "emcc", nil)
		v := ratio(st.Counter(stats.EmccInvalidations), st.Counter(stats.EmccCtrInserted))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// Fig24 reports useless counter accesses for the SPEC/PARSEC regular set.
func (h *Harness) Fig24() *Table {
	t := &Table{
		ID:     "fig24",
		Title:  "Useless counter accesses (SPEC/PARSEC set) / L2 data misses",
		Header: []string{"benchmark", "useless"},
		Notes:  []string{"paper mean: 1%"},
	}
	var vals []float64
	for _, b := range workload.RegularNames() {
		st := h.functional(b, "emcc", nil)
		v := ratio(st.Counter(stats.EmccUseless), st.Counter(stats.FsimL2DataMiss))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// ---- Performance figures (timing simulator) ----

// Fig15 reports the DRAM bandwidth-utilisation breakdown under Morphable.
func (h *Harness) Fig15() *Table {
	t := &Table{
		ID:     "fig15",
		Title:  "DRAM bandwidth utilisation breakdown under Morphable Counters",
		Header: []string{"benchmark", "data", "counters", "ovf-l0", "ovf-hi", "total"},
	}
	for _, b := range primary() {
		r := h.timing(b, "morphable", "base", nil)
		bf := r.res.BusyFraction
		total := bf[dram.TrafficData] + bf[dram.TrafficCounter] + bf[dram.TrafficOverflowL0] + bf[dram.TrafficOverflowHi]
		t.Rows = append(t.Rows, []string{
			b, pct(bf[dram.TrafficData]), pct(bf[dram.TrafficCounter]),
			pct(bf[dram.TrafficOverflowL0]), pct(bf[dram.TrafficOverflowHi]), pct(total),
		})
	}
	return t
}

// perfOf reports normalised performance (non-secure time / system time).
func (h *Harness) perfOf(bench, system, variant string, mutate func(*config.Config)) float64 {
	base := h.timing(bench, "non-secure", "base", nil)
	r := h.timing(bench, system, variant, mutate)
	if r.res.SimulatedTime == 0 {
		return 0
	}
	return float64(base.res.SimulatedTime) / float64(r.res.SimulatedTime)
}

// Fig16 reports performance of SC-64, Morphable and EMCC normalised to the
// non-secure system.
func (h *Harness) Fig16() *Table {
	t := &Table{
		ID:     "fig16",
		Title:  "Performance normalised to non-secure memory",
		Header: []string{"benchmark", "sc64", "morphable", "emcc", "emcc-vs-morphable"},
		Notes:  []string{"paper: EMCC +7% mean over Morphable; canneal max +12.5%"},
	}
	var sc, mo, em, gain []float64
	for _, b := range primary() {
		s := h.perfOf(b, "sc64", "base", nil)
		m := h.perfOf(b, "morphable", "base", nil)
		e := h.perfOf(b, "emcc", "base", nil)
		g := 0.0
		if m > 0 {
			g = e/m - 1
		}
		sc, mo, em, gain = append(sc, s), append(mo, m), append(em, e), append(gain, g)
		t.Rows = append(t.Rows, []string{b, pct(s), pct(m), pct(e), pct(g)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(sc)), pct(stats.Mean(mo)), pct(stats.Mean(em)), pct(stats.Mean(gain))})
	return t
}

// Design5 compares all five secure-memory designs — the paper's SC-64,
// Morphable and EMCC plus the two counter-free alternatives from related
// work (a BipBipCache-style tweakable block cipher in the cache controller
// and a Sealer-style in-SRAM AES at the MC) — normalised to the non-secure
// system. Not a paper figure, so it carries no expectations; it extends
// Fig 16's comparison with the ROADMAP's alternative-design axis.
func (h *Harness) Design5() *Table {
	t := &Table{
		ID:     "design5",
		Title:  "Five secure-memory designs normalised to non-secure memory",
		Header: []string{"benchmark", "sc64", "morphable", "emcc", "bipbip", "insram"},
		Notes: []string{
			"bipbip: counter-free tweakable cipher at L2, fixed latency per fill, zero counter traffic",
			"insram: direct in-SRAM AES at the MC, latency from SRAM geometry, zero counter traffic",
		},
	}
	systems := []string{"sc64", "morphable", "emcc", "bipbip", "insram"}
	cols := make([][]float64, len(systems))
	for _, b := range primary() {
		row := []string{b}
		for i, sys := range systems {
			v := h.perfOf(b, sys, "base", nil)
			cols[i] = append(cols[i], v)
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean"}
	for _, c := range cols {
		mean = append(mean, pct(stats.Mean(c)))
	}
	t.Rows = append(t.Rows, mean)
	return t
}

// Fig17 reports mean L2 data-read miss latency per system.
func (h *Harness) Fig17() *Table {
	t := &Table{
		ID:     "fig17",
		Title:  "Average L2 miss latency (ns)",
		Header: []string{"benchmark", "non-secure", "sc64", "morphable", "emcc"},
		Notes:  []string{"paper: EMCC saves ~5 ns mean over Morphable"},
	}
	for _, b := range primary() {
		t.Rows = append(t.Rows, []string{
			b,
			ns(h.timing(b, "non-secure", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "sc64", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "morphable", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "emcc", "base", nil).res.L2MissLatencyNS),
		})
	}
	return t
}

// Fig18 sweeps AES latency: EMCC benefit over Morphable at 14/20/25 ns.
func (h *Harness) Fig18() *Table {
	t := &Table{
		ID:     "fig18",
		Title:  "EMCC improvement over Morphable vs AES latency",
		Header: []string{"benchmark", "14ns", "20ns", "25ns"},
		Notes:  []string{"paper mean: 7% at 14ns rising to 9% at 25ns"},
	}
	lats := []float64{14, 20, 25}
	means := make([]float64, len(lats))
	for _, b := range primary() {
		row := []string{b}
		for i, l := range lats {
			lat := l
			// 14 ns is the Table I default, so that sweep point hashes to
			// the same scenario as the Fig 16/17 base runs and dedups.
			variant := fmt.Sprintf("aes%d", int(l))
			mut := func(c *config.Config) { c.AESLatency = sim.NS(lat) }
			mo := h.timing(b, "morphable", variant, mut)
			em := h.timing(b, "emcc", variant, mut)
			g := float64(mo.res.SimulatedTime)/float64(em.res.SimulatedTime) - 1
			means[i] += g / float64(len(primary()))
			row = append(row, pct(g))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig19 sweeps the fraction of AES units moved to the L2s, reporting the
// share of DRAM data reads decrypted and verified at L2.
func (h *Harness) Fig19() *Table {
	t := &Table{
		ID:     "fig19",
		Title:  "DRAM data reads decrypted/verified at L2 vs AES fraction moved",
		Header: []string{"benchmark", "20%", "40%", "50%", "80%"},
		Notes:  []string{"paper: 76.3% mean at 50%; mcf only ~50% (AES bandwidth spikes)"},
	}
	fracs := []float64{0.2, 0.4, 0.5, 0.8}
	means := make([]float64, len(fracs))
	for _, b := range primary() {
		row := []string{b}
		for i, f := range fracs {
			frac := f
			r := h.timing(b, "emcc", fmt.Sprintf("frac%d", int(f*100)),
				func(c *config.Config) { c.EMCCAESFraction = frac })
			means[i] += r.res.DecryptAtL2Frac / float64(len(primary()))
			row = append(row, pct(r.res.DecryptAtL2Frac))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig20 sweeps the MC counter cache size.
func (h *Harness) Fig20() *Table {
	t := &Table{
		ID:     "fig20",
		Title:  "EMCC benefit over Morphable vs MC counter cache size",
		Header: []string{"benchmark", "128KB", "256KB", "512KB"},
		Notes:  []string{"paper: benefit decreases by <1% with bigger counter caches"},
	}
	sizes := []int64{128 << 10, 256 << 10, 512 << 10}
	means := make([]float64, len(sizes))
	for _, b := range primary() {
		row := []string{b}
		for i, szv := range sizes {
			sz := szv
			variant := fmt.Sprintf("ctr%dk", sz>>10)
			mut := func(c *config.Config) { c.CtrCacheBytes = sz }
			mo := h.timing(b, "morphable", variant, mut)
			em := h.timing(b, "emcc", variant, mut)
			g := float64(mo.res.SimulatedTime)/float64(em.res.SimulatedTime) - 1
			means[i] += g / float64(len(primary()))
			row = append(row, pct(g))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig21 compares the EMCC benefit under 1 and 8 DRAM channels.
func (h *Harness) Fig21() *Table {
	t := &Table{
		ID:     "fig21",
		Title:  "EMCC benefit over Morphable: 1 vs 8 DRAM channels",
		Header: []string{"benchmark", "1-channel", "8-channel"},
		Notes:  []string{"paper: benefit increases under 8 channels (faster data exposes counter latency)"},
	}
	var m1, m8 []float64
	for _, b := range primary() {
		mo1 := h.timing(b, "morphable", "base", nil)
		em1 := h.timing(b, "emcc", "base", nil)
		mo8 := h.timing(b, "morphable", "ch8", func(c *config.Config) { c.Channels = 8 })
		em8 := h.timing(b, "emcc", "ch8", func(c *config.Config) { c.Channels = 8 })
		g1 := float64(mo1.res.SimulatedTime)/float64(em1.res.SimulatedTime) - 1
		g8 := float64(mo8.res.SimulatedTime)/float64(em8.res.SimulatedTime) - 1
		m1, m8 = append(m1, g1), append(m8, g8)
		t.Rows = append(t.Rows, []string{b, pct(g1), pct(g8)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(m1)), pct(stats.Mean(m8))})
	return t
}

// Fig22 reports DRAM queuing delays by access type under EMCC (geometric
// mean across benchmarks), for 1 and 8 channels.
func (h *Harness) Fig22() *Table {
	t := &Table{
		ID:     "fig22",
		Title:  "DRAM queuing delay under EMCC (ns, geo-mean across benchmarks)",
		Header: []string{"channels", "ctr-read", "data-read", "ctr-write", "data-write"},
		Notes:  []string{"paper: delays shrink with channels; writes queue longer than reads"},
	}
	for _, chv := range []int{1, 8} {
		chn := chv
		var cr, dr, cw, dw []float64
		for _, b := range primary() {
			r := h.timing(b, "emcc", fmt.Sprintf("ch%d", chn),
				func(c *config.Config) { c.Channels = chn })
			cr = append(cr, r.st.AccumMean(stats.DramQDelayCtrRead))
			dr = append(dr, r.st.AccumMean(stats.DramQDelayDataRead))
			cw = append(cw, r.st.AccumMean(stats.DramQDelayCtrWrite))
			dw = append(dw, r.st.AccumMean(stats.DramQDelayDataWrite))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", chn),
			ns(stats.GeoMean(cr)), ns(stats.GeoMean(dr)),
			ns(stats.GeoMean(cw)), ns(stats.GeoMean(dw)),
		})
	}
	return t
}
