// Package figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each FigN function
// runs the simulations it needs — functional (Pintool-style) runs for the
// counting figures, timing (gem5-style) runs for the performance figures —
// and returns a printable Table with the same rows/series the paper plots.
//
// Runs are memoised per Harness so figures that share configurations
// (16/17/15, 21/22, …) reuse each other's simulations.
package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/emcc"
	"repro/internal/fsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// Table is one regenerated figure/table.
type Table struct {
	ID     string // e.g. "fig16"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first); notes become
// trailing comment-style rows prefixed with '#'.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Harness owns run sizing and the memoised results.
type Harness struct {
	// Quick shrinks run lengths for smoke testing; shapes get noisier.
	Quick bool
	Seed  uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// ScaleOverride and RefsOverride, when set, replace the built-in
	// sizing entirely (unit tests run figures at miniature scale).
	ScaleOverride *workload.Scale
	RefsOverride  int64

	fruns map[string]*fsim.Sim
	truns map[string]tsimRun
}

type tsimRun struct {
	res tsim.Result
	st  *stats.Set
}

// NewHarness builds a harness.
func NewHarness(quick bool) *Harness {
	return &Harness{
		Quick: quick,
		Seed:  1,
		fruns: make(map[string]*fsim.Sim),
		truns: make(map[string]tsimRun),
	}
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

func (h *Harness) frefs() (warm, refs int64) {
	if h.RefsOverride > 0 {
		return h.RefsOverride / 2, h.RefsOverride
	}
	if h.Quick {
		return 1_000_000, 2_000_000
	}
	return 3_000_000, 6_000_000
}

func (h *Harness) trefs() (warm, refs int64) {
	if h.RefsOverride > 0 {
		return h.RefsOverride / 2, h.RefsOverride / 4
	}
	if h.Quick {
		return 1_000_000, 250_000
	}
	return 2_500_000, 800_000
}

// system mutators, named like Fig 16's legend.
func applySystem(cfg *config.Config, system string) {
	switch system {
	case "non-secure":
		cfg.Counter = config.CtrNone
		cfg.CountersInLLC = false
		cfg.EMCC = false
	case "mono":
		cfg.Counter = config.CtrMono
	case "sc64":
		cfg.Counter = config.CtrSC64
	case "morphable":
		cfg.Counter = config.CtrMorphable
	case "morphable+nollc":
		cfg.Counter = config.CtrMorphable
		cfg.CountersInLLC = false
	case "emcc":
		cfg.Counter = config.CtrMorphable
		cfg.EMCC = true
	default:
		panic("figures: unknown system " + system)
	}
}

// functional runs a memoised functional simulation.
func (h *Harness) functional(bench, system string, mutate func(*config.Config)) *fsim.Sim {
	key := fmt.Sprintf("f/%s/%s/%v", bench, system, mutate == nil)
	if mutate != nil {
		// Mutating callers must uniquify their key themselves via
		// keyed wrappers below; this generic path handles nil only.
		panic("figures: use a keyed functional variant for mutations")
	}
	if s := h.fruns[key]; s != nil {
		return s
	}
	return h.functionalKeyed(key, bench, system, nil)
}

// functionalKeyed runs a memoised functional simulation under an explicit
// cache key (for callers that mutate the config).
func (h *Harness) functionalKeyed(key, bench, system string, mutate func(*config.Config)) *fsim.Sim {
	if s := h.fruns[key]; s != nil {
		return s
	}
	cfg := config.Default()
	applySystem(&cfg, system)
	if mutate != nil {
		mutate(&cfg)
	}
	warm, refs := h.frefs()
	h.logf("functional %-14s %-16s (%dM refs)", bench, system, refs/1e6)
	s, err := fsim.New(&cfg, fsim.Options{
		Benchmark: bench, Seed: h.Seed, Refs: refs, Warmup: warm,
		Scale: h.scale(),
	})
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	s.Run()
	h.fruns[key] = s
	return s
}

// timing runs a memoised timing simulation.
func (h *Harness) timing(bench, system, variant string, mutate func(*config.Config)) tsimRun {
	key := fmt.Sprintf("t/%s/%s/%s", bench, system, variant)
	if r, ok := h.truns[key]; ok {
		return r
	}
	cfg := config.Default()
	applySystem(&cfg, system)
	if mutate != nil {
		mutate(&cfg)
	}
	warm, refs := h.trefs()
	h.logf("timing     %-14s %-16s %-12s (%dk refs)", bench, system, variant, refs/1e3)
	s, err := tsim.New(&cfg, tsim.Options{
		Benchmark: bench, Seed: h.Seed, Refs: refs, Warmup: warm,
		Scale: h.scale(),
	})
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	res := s.Run()
	r := tsimRun{res: res, st: s.Stats()}
	h.truns[key] = r
	return r
}

func (h *Harness) scale() workload.Scale {
	if h.ScaleOverride != nil {
		return *h.ScaleOverride
	}
	if h.Quick {
		sc := workload.DefaultScale()
		sc.GraphVertices = 1 << 19
		sc.IrregularBytes = 64 << 20
		return sc
	}
	return workload.DefaultScale()
}

// primary returns the 11-benchmark list.
func primary() []string { return workload.PrimaryNames() }

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func ns(x float64) string  { return fmt.Sprintf("%.1f", x) }
func ratio(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// ---- Counting figures (functional simulator) ----

// Fig2 reports DRAM traffic overhead with and without caching counters in
// LLC, split into read and write overhead, normalised to DRAM data traffic.
func (h *Harness) Fig2() *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "DRAM traffic overhead normalized to normal data traffic",
		Header: []string{"benchmark", "w/o-read", "w/o-write", "w/o-total", "w-read", "w-write", "w-total"},
		Notes: []string{
			"paper: caching counters in LLC reduces mean total overhead from 105% to 59%",
		},
	}
	var meanW, meanWo []float64
	for _, b := range primary() {
		row := []string{b}
		var totals [2]float64
		for i, system := range []string{"morphable+nollc", "morphable"} {
			s := h.functional(b, system, nil)
			st := s.Stats()
			data := st.Counter(fsim.MetricDRAMDataRead) + st.Counter(fsim.MetricDRAMDataWrite)
			ovf := st.Counter(fsim.MetricDRAMOvfL0) + st.Counter(fsim.MetricDRAMOvfHi)
			rd := ratio(st.Counter(fsim.MetricDRAMCtrRead)+ovf/2, data)
			wr := ratio(st.Counter(fsim.MetricDRAMCtrWrite)+ovf/2, data)
			row = append(row, pct(rd), pct(wr), pct(rd+wr))
			totals[i] = rd + wr
		}
		meanWo = append(meanWo, totals[0])
		meanW = append(meanW, totals[1])
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"mean", "", "", pct(stats.Mean(meanWo)), "", "", pct(stats.Mean(meanW))})
	return t
}

// counterMix produces the Fig 6/7 classification under a given LLC size.
func (h *Harness) counterMix(id, title string, llcBytes int64) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "mc-hit", "llc-hit", "llc-miss"},
	}
	var mcs, hits, misses []float64
	for _, b := range primary() {
		key := fmt.Sprintf("f/%s/morphable/llc=%d", b, llcBytes)
		s := h.functionalKeyed(key, b, "morphable", func(c *config.Config) { c.L3Bytes = llcBytes })
		st := s.Stats()
		reads := st.Counter(fsim.MetricDRAMDataRead)
		mc := ratio(st.Counter(fsim.MetricCtrMCHit), reads)
		hit := ratio(st.Counter(fsim.MetricCtrLLCHit), reads)
		miss := ratio(st.Counter(fsim.MetricCtrLLCMiss), reads)
		mcs, hits, misses = append(mcs, mc), append(hits, hit), append(misses, miss)
		t.Rows = append(t.Rows, []string{b, pct(mc), pct(hit), pct(miss)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(mcs)), pct(stats.Mean(hits)), pct(stats.Mean(misses))})
	return t
}

// Fig6 is the counter hit/miss split with 2 MB/core of LLC.
func (h *Harness) Fig6() *Table {
	t := h.counterMix("fig6", "Counter hits/misses per DRAM data read (2MB/core LLC)", 8<<20)
	t.Notes = append(t.Notes, "paper mean: 65% MC hit / 15% LLC hit / 19% LLC miss")
	return t
}

// Fig7 is the same with 12 MB/core.
func (h *Harness) Fig7() *Table {
	t := h.counterMix("fig7", "Counter hits/misses per DRAM data read (12MB/core LLC)", 48<<20)
	t.Notes = append(t.Notes, "paper mean: 67% MC hit / 18% LLC hit / 14% LLC miss")
	return t
}

// Fig11 reports useless counter accesses to LLC under EMCC.
func (h *Harness) Fig11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Useless counter accesses to LLC under EMCC / L2 data misses",
		Header: []string{"benchmark", "useless"},
		Notes:  []string{"paper mean: 3.2%"},
	}
	var vals []float64
	for _, b := range primary() {
		st := h.functional(b, "emcc", nil).Stats()
		v := ratio(st.Counter(emcc.MetricUseless), st.Counter(fsim.MetricL2DataMiss))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// Fig12 compares total counter accesses to LLC under EMCC and the serial
// baseline, normalised to L2 data misses.
func (h *Harness) Fig12() *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Total counter accesses to LLC / L2 data misses",
		Header: []string{"benchmark", "baseline", "emcc"},
		Notes:  []string{"paper mean: baseline 31.4%, EMCC 35.6% (+4.2%)"},
	}
	var base, em []float64
	for _, b := range primary() {
		bst := h.functional(b, "morphable", nil).Stats()
		est := h.functional(b, "emcc", nil).Stats()
		bv := ratio(bst.Counter(fsim.MetricCtrLLCLookup), bst.Counter(fsim.MetricL2DataMiss))
		ev := ratio(est.Counter(fsim.MetricCtrLLCLookup), est.Counter(fsim.MetricL2DataMiss))
		base, em = append(base, bv), append(em, ev)
		t.Rows = append(t.Rows, []string{b, pct(bv), pct(ev)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(base)), pct(stats.Mean(em))})
	return t
}

// Fig23 reports counter-block invalidations in L2 under EMCC.
func (h *Harness) Fig23() *Table {
	t := &Table{
		ID:     "fig23",
		Title:  "Counter-block invalidations in L2 / counter insertions into L2",
		Header: []string{"benchmark", "invalidated"},
		Notes:  []string{"paper mean: 1.7%"},
	}
	var vals []float64
	for _, b := range primary() {
		st := h.functional(b, "emcc", nil).Stats()
		v := ratio(st.Counter(emcc.MetricInvalidations), st.Counter(emcc.MetricCtrInserted))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// Fig24 reports useless counter accesses for the SPEC/PARSEC regular set.
func (h *Harness) Fig24() *Table {
	t := &Table{
		ID:     "fig24",
		Title:  "Useless counter accesses (SPEC/PARSEC set) / L2 data misses",
		Header: []string{"benchmark", "useless"},
		Notes:  []string{"paper mean: 1%"},
	}
	var vals []float64
	for _, b := range workload.RegularNames() {
		st := h.functional(b, "emcc", nil).Stats()
		v := ratio(st.Counter(emcc.MetricUseless), st.Counter(fsim.MetricL2DataMiss))
		vals = append(vals, v)
		t.Rows = append(t.Rows, []string{b, pct(v)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(vals))})
	return t
}

// ---- Performance figures (timing simulator) ----

// Fig15 reports the DRAM bandwidth-utilisation breakdown under Morphable.
func (h *Harness) Fig15() *Table {
	t := &Table{
		ID:     "fig15",
		Title:  "DRAM bandwidth utilisation breakdown under Morphable Counters",
		Header: []string{"benchmark", "data", "counters", "ovf-l0", "ovf-hi", "total"},
	}
	for _, b := range primary() {
		r := h.timing(b, "morphable", "base", nil)
		bf := r.res.BusyFraction
		total := bf[dram.TrafficData] + bf[dram.TrafficCounter] + bf[dram.TrafficOverflowL0] + bf[dram.TrafficOverflowHi]
		t.Rows = append(t.Rows, []string{
			b, pct(bf[dram.TrafficData]), pct(bf[dram.TrafficCounter]),
			pct(bf[dram.TrafficOverflowL0]), pct(bf[dram.TrafficOverflowHi]), pct(total),
		})
	}
	return t
}

// perfOf reports normalised performance (non-secure time / system time).
func (h *Harness) perfOf(bench, system, variant string, mutate func(*config.Config)) float64 {
	base := h.timing(bench, "non-secure", "base", nil)
	r := h.timing(bench, system, variant, mutate)
	if r.res.SimulatedTime == 0 {
		return 0
	}
	return float64(base.res.SimulatedTime) / float64(r.res.SimulatedTime)
}

// Fig16 reports performance of SC-64, Morphable and EMCC normalised to the
// non-secure system.
func (h *Harness) Fig16() *Table {
	t := &Table{
		ID:     "fig16",
		Title:  "Performance normalised to non-secure memory",
		Header: []string{"benchmark", "sc64", "morphable", "emcc", "emcc-vs-morphable"},
		Notes:  []string{"paper: EMCC +7% mean over Morphable; canneal max +12.5%"},
	}
	var sc, mo, em, gain []float64
	for _, b := range primary() {
		s := h.perfOf(b, "sc64", "base", nil)
		m := h.perfOf(b, "morphable", "base", nil)
		e := h.perfOf(b, "emcc", "base", nil)
		g := 0.0
		if m > 0 {
			g = e/m - 1
		}
		sc, mo, em, gain = append(sc, s), append(mo, m), append(em, e), append(gain, g)
		t.Rows = append(t.Rows, []string{b, pct(s), pct(m), pct(e), pct(g)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(sc)), pct(stats.Mean(mo)), pct(stats.Mean(em)), pct(stats.Mean(gain))})
	return t
}

// Fig17 reports mean L2 data-read miss latency per system.
func (h *Harness) Fig17() *Table {
	t := &Table{
		ID:     "fig17",
		Title:  "Average L2 miss latency (ns)",
		Header: []string{"benchmark", "non-secure", "sc64", "morphable", "emcc"},
		Notes:  []string{"paper: EMCC saves ~5 ns mean over Morphable"},
	}
	for _, b := range primary() {
		t.Rows = append(t.Rows, []string{
			b,
			ns(h.timing(b, "non-secure", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "sc64", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "morphable", "base", nil).res.L2MissLatencyNS),
			ns(h.timing(b, "emcc", "base", nil).res.L2MissLatencyNS),
		})
	}
	return t
}

// Fig18 sweeps AES latency: EMCC benefit over Morphable at 14/20/25 ns.
func (h *Harness) Fig18() *Table {
	t := &Table{
		ID:     "fig18",
		Title:  "EMCC improvement over Morphable vs AES latency",
		Header: []string{"benchmark", "14ns", "20ns", "25ns"},
		Notes:  []string{"paper mean: 7% at 14ns rising to 9% at 25ns"},
	}
	lats := []float64{14, 20, 25}
	means := make([]float64, len(lats))
	for _, b := range primary() {
		row := []string{b}
		for i, l := range lats {
			lat := l
			variant := fmt.Sprintf("aes%d", int(l))
			mut := func(c *config.Config) { c.AESLatency = sim.NS(lat) }
			var mo, em tsimRun
			if int(l) == 14 {
				mo = h.timing(b, "morphable", "base", nil)
				em = h.timing(b, "emcc", "base", nil)
			} else {
				mo = h.timing(b, "morphable", variant, mut)
				em = h.timing(b, "emcc", variant, mut)
			}
			g := float64(mo.res.SimulatedTime)/float64(em.res.SimulatedTime) - 1
			means[i] += g / float64(len(primary()))
			row = append(row, pct(g))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig19 sweeps the fraction of AES units moved to the L2s, reporting the
// share of DRAM data reads decrypted and verified at L2.
func (h *Harness) Fig19() *Table {
	t := &Table{
		ID:     "fig19",
		Title:  "DRAM data reads decrypted/verified at L2 vs AES fraction moved",
		Header: []string{"benchmark", "20%", "40%", "50%", "80%"},
		Notes:  []string{"paper: 76.3% mean at 50%; mcf only ~50% (AES bandwidth spikes)"},
	}
	fracs := []float64{0.2, 0.4, 0.5, 0.8}
	means := make([]float64, len(fracs))
	for _, b := range primary() {
		row := []string{b}
		for i, f := range fracs {
			frac := f
			var r tsimRun
			if f == 0.5 {
				r = h.timing(b, "emcc", "base", nil)
			} else {
				r = h.timing(b, "emcc", fmt.Sprintf("frac%d", int(f*100)),
					func(c *config.Config) { c.EMCCAESFraction = frac })
			}
			means[i] += r.res.DecryptAtL2Frac / float64(len(primary()))
			row = append(row, pct(r.res.DecryptAtL2Frac))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig20 sweeps the MC counter cache size.
func (h *Harness) Fig20() *Table {
	t := &Table{
		ID:     "fig20",
		Title:  "EMCC benefit over Morphable vs MC counter cache size",
		Header: []string{"benchmark", "128KB", "256KB", "512KB"},
		Notes:  []string{"paper: benefit decreases by <1% with bigger counter caches"},
	}
	sizes := []int64{128 << 10, 256 << 10, 512 << 10}
	means := make([]float64, len(sizes))
	for _, b := range primary() {
		row := []string{b}
		for i, szv := range sizes {
			sz := szv
			var mo, em tsimRun
			if sz == 128<<10 {
				mo = h.timing(b, "morphable", "base", nil)
				em = h.timing(b, "emcc", "base", nil)
			} else {
				variant := fmt.Sprintf("ctr%dk", sz>>10)
				mut := func(c *config.Config) { c.CtrCacheBytes = sz }
				mo = h.timing(b, "morphable", variant, mut)
				em = h.timing(b, "emcc", variant, mut)
			}
			g := float64(mo.res.SimulatedTime)/float64(em.res.SimulatedTime) - 1
			means[i] += g / float64(len(primary()))
			row = append(row, pct(g))
		}
		t.Rows = append(t.Rows, row)
	}
	mrow := []string{"mean"}
	for _, m := range means {
		mrow = append(mrow, pct(m))
	}
	t.Rows = append(t.Rows, mrow)
	return t
}

// Fig21 compares the EMCC benefit under 1 and 8 DRAM channels.
func (h *Harness) Fig21() *Table {
	t := &Table{
		ID:     "fig21",
		Title:  "EMCC benefit over Morphable: 1 vs 8 DRAM channels",
		Header: []string{"benchmark", "1-channel", "8-channel"},
		Notes:  []string{"paper: benefit increases under 8 channels (faster data exposes counter latency)"},
	}
	var m1, m8 []float64
	for _, b := range primary() {
		mo1 := h.timing(b, "morphable", "base", nil)
		em1 := h.timing(b, "emcc", "base", nil)
		mo8 := h.timing(b, "morphable", "ch8", func(c *config.Config) { c.Channels = 8 })
		em8 := h.timing(b, "emcc", "ch8", func(c *config.Config) { c.Channels = 8 })
		g1 := float64(mo1.res.SimulatedTime)/float64(em1.res.SimulatedTime) - 1
		g8 := float64(mo8.res.SimulatedTime)/float64(em8.res.SimulatedTime) - 1
		m1, m8 = append(m1, g1), append(m8, g8)
		t.Rows = append(t.Rows, []string{b, pct(g1), pct(g8)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(stats.Mean(m1)), pct(stats.Mean(m8))})
	return t
}

// Fig22 reports DRAM queuing delays by access type under EMCC (geometric
// mean across benchmarks), for 1 and 8 channels.
func (h *Harness) Fig22() *Table {
	t := &Table{
		ID:     "fig22",
		Title:  "DRAM queuing delay under EMCC (ns, geo-mean across benchmarks)",
		Header: []string{"channels", "ctr-read", "data-read", "ctr-write", "data-write"},
		Notes:  []string{"paper: delays shrink with channels; writes queue longer than reads"},
	}
	for _, chv := range []int{1, 8} {
		chn := chv
		var cr, dr, cw, dw []float64
		for _, b := range primary() {
			var r tsimRun
			if chn == 1 {
				r = h.timing(b, "emcc", "base", nil)
			} else {
				r = h.timing(b, "emcc", "ch8", func(c *config.Config) { c.Channels = 8 })
			}
			cr = append(cr, r.st.Accum("dram/qdelay/counter/read").Mean())
			dr = append(dr, r.st.Accum("dram/qdelay/data/read").Mean())
			cw = append(cw, r.st.Accum("dram/qdelay/counter/write").Mean())
			dw = append(dw, r.st.Accum("dram/qdelay/data/write").Mean())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", chn),
			ns(stats.GeoMean(cr)), ns(stats.GeoMean(dr)),
			ns(stats.GeoMean(cw)), ns(stats.GeoMean(dw)),
		})
	}
	return t
}
