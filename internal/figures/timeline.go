package figures

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
)

// This file regenerates the latency-anatomy figures: the NoC measurements
// (Figs 3, 4) and the secure-memory-access timelines (Figs 5, 8, 10, 13,
// 14). Timelines are computed analytically from the configuration — the
// same way the paper draws them — using mean NoC latencies from the mesh.

// Fig3 reports the distribution of LLC hit latency over all (core, slice)
// pairs of the mesh.
func (h *Harness) Fig3() *Table {
	cfg := config.Default()
	mesh := noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay)
	t := &Table{
		ID:     "fig3",
		Title:  "Distribution of LLC hit latency (ns)",
		Header: []string{"latency-ns", "share"},
		Notes:  []string{"paper: 16-29 ns, mean 23 ns on a Xeon W-3175X"},
	}
	counts := map[int]int{}
	total := 0
	var sum float64
	base := cfg.L1Latency + cfg.L2Latency + cfg.L3TagLatency + cfg.L3DataLatency
	for c := 0; c < mesh.CoreTiles(); c++ {
		src := mesh.CoreTile(c)
		for s := 0; s < mesh.CoreTiles(); s++ {
			dst := mesh.CoreTile(s)
			lat := base + mesh.RoundTrip(src, dst)
			nsLat := int(lat.Nanoseconds() + 0.5)
			counts[nsLat]++
			total++
			sum += lat.Nanoseconds()
		}
	}
	min, max := 1<<30, 0
	for k := range counts {
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	for k := min; k <= max; k++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f%%", 100*float64(counts[k])/float64(total)),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", fmt.Sprintf("%.1f ns", sum/float64(total))})
	return t
}

// Fig4 renders the NoC route of one L2 miss: core -> home slice -> MC.
func (h *Harness) Fig4() *Table {
	cfg := config.Default()
	mesh := noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay)
	const core, block = 0, 0x1234567
	route := mesh.RouteTrace(core, block)
	t := &Table{
		ID:     "fig4",
		Title:  "NoC route for an L2 miss (request path)",
		Header: []string{"step", "tile"},
	}
	for i, n := range route {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i), fmt.Sprintf("tile %d", int(n))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("core %d -> slice of block %#x -> home MC; %d tiles visited", core, block, len(route)),
		fmt.Sprintf("mean one-way tile latency: %.1f ns (paper: 7.5 ns)",
			mesh.MeanOneWay(mesh.CoreTile(0)).Nanoseconds()))
	return t
}

// span is one bar of a timeline.
type span struct {
	name       string
	start, end sim.Time
}

// timeline accumulates spans; respond is the completion time.
type timeline struct {
	label string
	spans []span
}

func (tl *timeline) add(name string, start, dur sim.Time) sim.Time {
	tl.spans = append(tl.spans, span{name, start, start + dur})
	return start + dur
}

func (tl *timeline) done() sim.Time {
	var end sim.Time
	for _, s := range tl.spans {
		if s.end > end {
			end = s.end
		}
	}
	return end
}

func (tl *timeline) rows(out *Table) {
	for _, s := range tl.spans {
		out.Rows = append(out.Rows, []string{
			tl.label, s.name,
			fmt.Sprintf("%.1f", s.start.Nanoseconds()),
			fmt.Sprintf("%.1f", s.end.Nanoseconds()),
		})
	}
	out.Rows = append(out.Rows, []string{tl.label, "RESPONSE", "", fmt.Sprintf("%.1f", tl.done().Nanoseconds())})
}

// latencies bundles the analytic building blocks.
type latencies struct {
	oneWay   sim.Time // mean tile-to-tile traversal
	llcTag   sim.Time
	llcData  sim.Time
	ctrCache sim.Time
	decode   sim.Time
	aes      sim.Time
	xor      sim.Time
	rowHit   sim.Time
	rowMiss  sim.Time
	l2       sim.Time
	j        sim.Time // EMCC serial L2 counter lookup delay
	payload  sim.Time // 'M': counter payload transfer penalty
}

func defaultLatencies() latencies {
	cfg := config.Default()
	return latenciesFor(&cfg)
}

// latenciesFor derives the analytic building blocks from an arbitrary
// configuration, so the timelines (and the verification harness's
// metamorphic properties over them) respond to config changes.
func latenciesFor(cfg *config.Config) latencies {
	mesh := noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay)
	return latencies{
		oneWay:   mesh.MeanOneWay(mesh.CoreTile(0)),
		llcTag:   cfg.L3TagLatency,
		llcData:  cfg.L3DataLatency,
		ctrCache: cfg.CtrCacheLatency,
		decode:   cfg.CtrDecodeLatency,
		aes:      cfg.AESLatency,
		xor:      sim.NS(1),
		rowHit:   cfg.TCL + cfg.BurstLatency,
		rowMiss:  cfg.TRCD + cfg.TCL + cfg.BurstLatency,
		l2:       cfg.L2Latency,
		j:        cfg.EMCCLookupDelay,
		payload:  sim.NS(1),
	}
}

// TimelineModel exposes the analytic secure-memory-access timeline
// endpoints (the response times the Fig 10/13 timelines end at) as
// functions of a configuration. internal/check sweeps configurations
// through it to assert metamorphic properties — e.g. EMCC never responds
// later than the baseline on counter-hit timelines.
type TimelineModel struct{ l latencies }

// NewTimelineModel derives the model from cfg.
func NewTimelineModel(cfg *config.Config) TimelineModel {
	return TimelineModel{l: latenciesFor(cfg)}
}

// Slack is the single xor/compute step (1 ns) by which EMCC's extra final
// verify may trail the baseline when the DRAM access dominates both
// systems and neither counter path matters.
func (m TimelineModel) Slack() sim.Time { return m.l.xor }

// CounterHitLLC reports the baseline and EMCC response times for an L2
// data miss whose counter hits in the LLC (the Fig 13 regime; rowHit
// selects the DRAM row state). Times are measured from the L2 miss.
func (m TimelineModel) CounterHitLLC(rowHit bool) (baseline, emcc sim.Time) {
	l := m.l
	toMC := l.oneWay + l.llcTag + l.oneWay
	dramAccess := l.rowMiss
	if rowHit {
		dramAccess = l.rowHit
	}
	dd := toMC + dramAccess
	cBase := toMC + l.ctrCache + 2*l.oneWay + l.llcTag + l.llcData + l.payload + l.decode + l.aes
	baseline = maxT(cBase, dd) + 2*l.oneWay + l.xor
	cipher := dd + 2*l.oneWay + l.xor
	cEm := l.j + 2*l.oneWay + l.llcTag + l.llcData + l.payload + l.decode + l.aes
	emcc = maxT(cEm, cipher) + l.xor
	return baseline, emcc
}

// CounterMissLLC reports the baseline and EMCC response times for an L2
// data miss whose counter misses everywhere on chip (the Fig 10 regime;
// DRAM row miss). Times are measured from the L2 miss.
func (m TimelineModel) CounterMissLLC() (baseline, emcc sim.Time) {
	l := m.l
	toMC := l.oneWay + l.llcTag + l.oneWay
	back := 2*l.oneWay + l.xor
	dd := toMC + l.rowMiss
	cBase := toMC + l.ctrCache + 2*l.oneWay + l.llcTag + l.rowMiss + l.decode + l.aes
	baseline = maxT(cBase, dd) + back
	cEm := l.j + l.oneWay + l.llcTag + l.oneWay + l.ctrCache + l.rowMiss + l.decode + l.aes
	emcc = maxT(cEm, dd) + back
	return baseline, emcc
}

// Fig5: Secure Memory Access Latency under counter miss in all caches, with
// and without caching counters in LLC. Clock starts when the MC receives
// the data request.
func (h *Harness) Fig5() *Table {
	l := defaultLatencies()
	t := &Table{
		ID:     "fig5",
		Title:  "Timeline: counter miss in caches (from MC receiving request; row miss)",
		Header: []string{"system", "segment", "start-ns", "end-ns"},
		Notes:  []string{"paper: caching counters in LLC adds ~19 ns Direct LLC Latency"},
	}
	directLLC := 2*l.oneWay + l.llcTag + l.llcData

	without := &timeline{label: "w/o-ctr-in-llc"}
	without.add("data: DRAM (row miss)", 0, l.rowMiss)
	c := without.add("ctr: MC counter cache (miss)", 0, l.ctrCache)
	c = without.add("ctr: DRAM (row miss)", c, l.rowMiss)
	c = without.add("ctr: decode+AES", c, l.decode+l.aes)
	without.add("xor+verify", maxT(c, l.rowMiss), l.xor)
	without.rows(t)

	with := &timeline{label: "w/-ctr-in-llc"}
	with.add("data: DRAM (row miss)", 0, l.rowMiss)
	c = with.add("ctr: MC counter cache (miss)", 0, l.ctrCache)
	c = with.add("ctr: LLC access (miss)", c, directLLC)
	c = with.add("ctr: DRAM (row miss)", c, l.rowMiss)
	c = with.add("ctr: decode+AES", c, l.decode+l.aes)
	with.add("xor+verify", maxT(c, l.rowMiss), l.xor)
	with.rows(t)

	t.Notes = append(t.Notes, fmt.Sprintf("overhead of caching counters in LLC: %.1f ns (paper: 19 ns)",
		(with.done()-without.done()).Nanoseconds()))
	return t
}

// Fig8: counter hit — in MC's cache vs in LLC.
func (h *Harness) Fig8() *Table {
	l := defaultLatencies()
	t := &Table{
		ID:     "fig8",
		Title:  "Timeline: counter hit (from MC receiving request; row miss)",
		Header: []string{"system", "segment", "start-ns", "end-ns"},
		Notes:  []string{"paper: counter hit in LLC adds ~8 ns vs hit in MC's cache"},
	}
	directLLC := 2*l.oneWay + l.llcTag + l.llcData + l.payload

	mcHit := &timeline{label: "ctr-hit-in-mc"}
	mcHit.add("data: DRAM (row miss)", 0, l.rowMiss)
	c := mcHit.add("ctr: MC counter cache (hit)", 0, l.ctrCache)
	c = mcHit.add("ctr: decode+AES", c, l.decode+l.aes)
	mcHit.add("xor+verify", maxT(c, l.rowMiss), l.xor)
	mcHit.rows(t)

	llcHit := &timeline{label: "ctr-hit-in-llc"}
	llcHit.add("data: DRAM (row miss)", 0, l.rowMiss)
	c = llcHit.add("ctr: MC counter cache (miss)", 0, l.ctrCache)
	c = llcHit.add("ctr: LLC access (hit)", c, directLLC)
	c = llcHit.add("ctr: decode+AES", c, l.decode+l.aes)
	llcHit.add("xor+verify", maxT(c, l.rowMiss), l.xor)
	llcHit.rows(t)

	t.Notes = append(t.Notes, fmt.Sprintf("overhead of counter hit in LLC: %.1f ns (paper: 8 ns)",
		(llcHit.done()-mcHit.done()).Nanoseconds()))
	return t
}

// Fig10: EMCC vs baseline under counter miss in LLC (row miss), end to end
// from the L2 miss.
func (h *Harness) Fig10() *Table {
	l := defaultLatencies()
	t := &Table{
		ID:     "fig10",
		Title:  "Timeline: EMCC vs baseline, counter miss in LLC (from L2 miss; row miss)",
		Header: []string{"system", "segment", "start-ns", "end-ns"},
	}
	toMC := l.oneWay + l.llcTag + l.oneWay // L2 -> slice -> (tag miss) -> MC
	back := 2*l.oneWay + l.xor             // MC -> slice -> L2

	base := &timeline{label: "baseline"}
	d := base.add("data: L2->LLC->MC", 0, toMC)
	dd := base.add("data: DRAM (row miss)", d, l.rowMiss)
	c := base.add("ctr: MC counter cache (miss)", d, l.ctrCache)
	c = base.add("ctr: LLC access (miss)", c, 2*l.oneWay+l.llcTag)
	c = base.add("ctr: DRAM (row miss)", c, l.rowMiss)
	c = base.add("ctr: decode+AES", c, l.decode+l.aes)
	fin := base.add("respond to L2", maxT(c, dd), back)
	_ = fin
	base.rows(t)

	em := &timeline{label: "emcc"}
	d = em.add("data: L2->LLC->MC", 0, toMC)
	dd = em.add("data: DRAM (row miss)", d, l.rowMiss)
	c = em.add("ctr: J + L2->LLC (miss) -> MC", 0, l.j+l.oneWay+l.llcTag+l.oneWay)
	c = em.add("ctr: MC counter cache (miss)", c, l.ctrCache)
	c = em.add("ctr: DRAM (row miss)", c, l.rowMiss)
	c = em.add("ctr: decode+AES", c, l.decode+l.aes)
	em.add("respond to L2 (tagged verified)", maxT(c, dd), back)
	em.rows(t)

	t.Notes = append(t.Notes, fmt.Sprintf("EMCC responds %.1f ns earlier (paper: 16 ns)",
		(base.done()-em.done()).Nanoseconds()))
	return t
}

// Fig13: EMCC vs baseline under counter hit in LLC (row hit).
func (h *Harness) Fig13() *Table {
	l := defaultLatencies()
	t := &Table{
		ID:     "fig13",
		Title:  "Timeline: EMCC vs baseline, counter hit in LLC (from L2 miss; row hit)",
		Header: []string{"system", "segment", "start-ns", "end-ns"},
	}
	toMC := l.oneWay + l.llcTag + l.oneWay

	base := &timeline{label: "baseline"}
	d := base.add("data: L2->LLC->MC", 0, toMC)
	dd := base.add("data: DRAM (row hit)", d, l.rowHit)
	c := base.add("ctr: MC counter cache (miss)", d, l.ctrCache)
	c = base.add("ctr: LLC access (hit, 'L'+'M')", c, 2*l.oneWay+l.llcTag+l.llcData+l.payload)
	c = base.add("ctr: decode+AES", c, l.decode+l.aes)
	base.add("respond to L2", maxT(c, dd), 2*l.oneWay+l.xor)
	base.rows(t)

	em := &timeline{label: "emcc"}
	d = em.add("data: L2->LLC->MC", 0, toMC)
	dd = em.add("data: DRAM (row hit)", d, l.rowHit)
	cipher := em.add("data: MC->LLC->L2 (cipher + MAC^dot)", dd, 2*l.oneWay+l.xor)
	c = em.add("ctr: J + L2->LLC (hit) -> L2", 0, l.j+2*l.oneWay+l.llcTag+l.llcData+l.payload)
	c = em.add("ctr: decode+AES at L2", c, l.decode+l.aes)
	em.add("finish at L2 (xor+verify)", maxT(c, cipher), l.xor)
	em.rows(t)

	t.Notes = append(t.Notes, fmt.Sprintf("EMCC responds %.1f ns earlier (AES overlaps the data's NoC travel)",
		(base.done()-em.done()).Nanoseconds()))
	return t
}

// Fig14: as Fig13 but with XPT LLC-miss prediction and a DRAM row miss.
func (h *Harness) Fig14() *Table {
	l := defaultLatencies()
	t := &Table{
		ID:     "fig14",
		Title:  "Timeline: EMCC vs baseline with XPT prediction (row miss, counter hit in LLC)",
		Header: []string{"system", "segment", "start-ns", "end-ns"},
	}
	confirm := l.oneWay + l.llcTag + l.oneWay // when the real miss reaches MC

	base := &timeline{label: "baseline+xpt"}
	d := base.add("data: XPT L2->MC", 0, l.oneWay)
	dd := base.add("data: DRAM (row miss)", d, l.rowMiss)
	c := base.add("ctr: wait confirmed miss", 0, confirm)
	c = base.add("ctr: MC counter cache (miss)", c, l.ctrCache)
	c = base.add("ctr: LLC access (hit)", c, 2*l.oneWay+l.llcTag+l.llcData+l.payload)
	c = base.add("ctr: decode+AES", c, l.decode+l.aes)
	base.add("respond to L2", maxT(c, dd), 2*l.oneWay+l.xor)
	base.rows(t)

	em := &timeline{label: "emcc+xpt"}
	d = em.add("data: XPT L2->MC", 0, l.oneWay)
	dd = em.add("data: DRAM (row miss)", d, l.rowMiss)
	cipher := em.add("data: MC->LLC->L2 (cipher + MAC^dot)", dd, 2*l.oneWay+l.xor)
	c = em.add("ctr: J + L2->LLC (hit) -> L2", 0, l.j+2*l.oneWay+l.llcTag+l.llcData+l.payload)
	c = em.add("ctr: decode+AES at L2", c, l.decode+l.aes)
	em.add("finish at L2 (xor+verify)", maxT(c, cipher), l.xor)
	em.rows(t)

	t.Notes = append(t.Notes, fmt.Sprintf("EMCC responds %.1f ns earlier (paper: 22 ns)",
		(base.done()-em.done()).Nanoseconds()))
	return t
}

// Table1 prints the simulated microarchitecture parameters.
func (h *Harness) Table1() *Table {
	cfg := config.Default()
	t := &Table{
		ID:     "table1",
		Title:  "Primary microarchitecture parameters (Table I)",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("CPU", fmt.Sprintf("X86-like, %d cores, %.1f GHz, %d-wide OoO, %d-entry ROB",
		cfg.Cores, cfg.CoreClockGHz, cfg.IssueWidth, cfg.ROBEntries))
	add("L1 cache", fmt.Sprintf("%d KB, %d-way, %.0f ns", cfg.L1Bytes>>10, cfg.L1Ways, cfg.L1Latency.Nanoseconds()))
	add("L2 cache", fmt.Sprintf("%d MB, %d-way, %.0f ns", cfg.L2Bytes>>20, cfg.L2Ways, cfg.L2Latency.Nanoseconds()))
	add("L3 cache", fmt.Sprintf("%d MB, %d-way, tag %.0f ns + data %.0f ns + NoC", cfg.L3Bytes>>20, cfg.L3Ways,
		cfg.L3TagLatency.Nanoseconds(), cfg.L3DataLatency.Nanoseconds()))
	add("Counter cache in MC", fmt.Sprintf("%d KB, %d-way, %.0f ns", cfg.CtrCacheBytes>>10, cfg.CtrCacheWays, cfg.CtrCacheLatency.Nanoseconds()))
	add("Morphable decode", fmt.Sprintf("%.0f ns", cfg.CtrDecodeLatency.Nanoseconds()))
	add("AES-128 latency", fmt.Sprintf("%.0f ns", cfg.AESLatency.Nanoseconds()))
	add("AES peak bandwidth", fmt.Sprintf("%.1fG ops/s", cfg.AESPeakOpsPerSec/1e9))
	add("NoC", fmt.Sprintf("%dx%d mesh, %.1f ns/hop + %.1f ns fixed", cfg.MeshCols, cfg.MeshRows,
		cfg.NoCHopLatency.Nanoseconds(), cfg.NoCBaseOneWay.Nanoseconds()))
	add("Memory", fmt.Sprintf("%d GB DDR4, %d channel(s), %d ranks x %d banks",
		cfg.MemoryBytes>>30, cfg.Channels, cfg.Ranks, cfg.BanksPerRank))
	add("tCL/tRCD/tRP", fmt.Sprintf("%.2f ns each", cfg.TCL.Nanoseconds()))
	add("tRFC", fmt.Sprintf("%.0f ns", cfg.TRFC.Nanoseconds()))
	add("Row buffer policy", fmt.Sprintf("open page, %.0f ns timeout", cfg.RowTimeout.Nanoseconds()))
	add("Read/Write queues", fmt.Sprintf("%d entries each", cfg.ReadQueueCap))
	add("Scheduling", fmt.Sprintf("FR-FCFS capped at %d row hits", cfg.FRFCFSCap))
	add("Mapping", "XOR-based (Skylake-like); channel bits 8..")
	return t
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
