package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4,5"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d: %q", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `3,"4,5"` {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "# note") {
		t.Fatalf("note row = %q", lines[3])
	}
}

func TestFprintChart(t *testing.T) {
	tab := &Table{
		ID:     "c",
		Title:  "chart demo",
		Header: []string{"benchmark", "metric"},
		Rows:   [][]string{{"a", "50.0%"}, {"b", "100.0%"}, {"c", "plain"}},
	}
	var buf bytes.Buffer
	tab.FprintChart(&buf)
	out := buf.String()
	if !strings.Contains(out, "█") {
		t.Fatalf("no bars rendered: %q", out)
	}
	if !strings.Contains(out, "plain") {
		t.Fatal("non-percentage cell dropped")
	}
	// A table without percentages falls back to plain rendering.
	plain := &Table{ID: "p", Title: "t", Header: []string{"k", "v"}, Rows: [][]string{{"x", "1"}}}
	buf.Reset()
	plain.FprintChart(&buf)
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("fallback rendering lost rows")
	}
}
