package figures

import "repro/internal/config"

// Ablation quantifies the design choices DESIGN.md calls out, on the two
// benchmarks with the most counter traffic: EMCC with each mechanism
// removed, as performance relative to the Morphable baseline.
//
//   - no-aes-gate:   start AES at L2 immediately (LLC hits waste bandwidth)
//   - no-offload:    never offload to the MC (L2 AES queues grow unbounded)
//   - dynamic-off:   the Sec. IV-F intensity monitor (should be neutral on
//     memory-intensive workloads — it must not misfire)
//   - +prefetch:     Table I's degree-2 L2 stride prefetcher on top of EMCC
func (h *Harness) Ablation() *Table {
	t := &Table{
		ID:     "ablation",
		Title:  "EMCC design-choice ablations (performance vs Morphable)",
		Header: []string{"benchmark", "emcc", "no-aes-gate", "no-offload", "dynamic-off", "+prefetch"},
		Notes: []string{
			"each column is time(morphable)/time(variant) - 1; higher is better",
		},
	}
	variants := []struct {
		name string
		mut  func(*config.Config)
	}{
		{"base", nil},
		{"nogate", func(c *config.Config) { c.EMCCDisableAESGate = true }},
		{"nooffload", func(c *config.Config) { c.EMCCDisableOffload = true }},
		{"dynoff", func(c *config.Config) { c.EMCCDynamicOff = true }},
		{"prefetch", func(c *config.Config) { c.PrefetchL2Degree = 2 }},
	}
	for _, b := range []string{"canneal", "pageRank", "mcf"} {
		mo := h.timing(b, "morphable", "base", nil)
		row := []string{b}
		for _, v := range variants {
			em := h.timing(b, "emcc", v.name, v.mut)
			g := float64(mo.res.SimulatedTime)/float64(em.res.SimulatedTime) - 1
			row = append(row, pct(g))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
