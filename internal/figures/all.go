package figures

// All enumerates every reproducible figure/table in paper order.
func (h *Harness) All() []*Table {
	return []*Table{
		h.Table1(),
		h.Fig2(), h.Fig3(), h.Fig4(), h.Fig5(), h.Fig6(), h.Fig7(),
		h.Fig8(), h.Fig10(), h.Fig11(), h.Fig12(), h.Fig13(), h.Fig14(),
		h.Fig15(), h.Fig16(), h.Fig17(), h.Fig18(), h.Fig19(), h.Fig20(),
		h.Fig21(), h.Fig22(), h.Fig23(), h.Fig24(), h.Ablation(),
	}
}

// ByID resolves a figure by its identifier ("fig16", "table1", ...);
// ok=false for unknown ids.
func (h *Harness) ByID(id string) (*Table, bool) {
	switch id {
	case "table1":
		return h.Table1(), true
	case "fig2":
		return h.Fig2(), true
	case "fig3":
		return h.Fig3(), true
	case "fig4":
		return h.Fig4(), true
	case "fig5":
		return h.Fig5(), true
	case "fig6":
		return h.Fig6(), true
	case "fig7":
		return h.Fig7(), true
	case "fig8":
		return h.Fig8(), true
	case "fig10":
		return h.Fig10(), true
	case "fig11":
		return h.Fig11(), true
	case "fig12":
		return h.Fig12(), true
	case "fig13":
		return h.Fig13(), true
	case "fig14":
		return h.Fig14(), true
	case "fig15":
		return h.Fig15(), true
	case "fig16":
		return h.Fig16(), true
	case "fig17":
		return h.Fig17(), true
	case "fig18":
		return h.Fig18(), true
	case "fig19":
		return h.Fig19(), true
	case "fig20":
		return h.Fig20(), true
	case "fig21":
		return h.Fig21(), true
	case "fig22":
		return h.Fig22(), true
	case "fig23":
		return h.Fig23(), true
	case "fig24":
		return h.Fig24(), true
	case "ablation":
		return h.Ablation(), true
	}
	return nil, false
}

// IDs lists every known figure identifier in paper order.
func IDs() []string {
	return []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "ablation",
	}
}
