package figures

// specs is the single registry of reproducible figures/tables, in paper
// order. IDs(), All() and ByID() all derive from it, so an entry added
// here is automatically enumerable, resolvable and planned.
var specs = []struct {
	id    string
	build func(*Harness) *Table
}{
	{"table1", (*Harness).Table1},
	{"fig2", (*Harness).Fig2},
	{"fig3", (*Harness).Fig3},
	{"fig4", (*Harness).Fig4},
	{"fig5", (*Harness).Fig5},
	{"fig6", (*Harness).Fig6},
	{"fig7", (*Harness).Fig7},
	{"fig8", (*Harness).Fig8},
	{"fig10", (*Harness).Fig10},
	{"fig11", (*Harness).Fig11},
	{"fig12", (*Harness).Fig12},
	{"fig13", (*Harness).Fig13},
	{"fig14", (*Harness).Fig14},
	{"fig15", (*Harness).Fig15},
	{"fig16", (*Harness).Fig16},
	{"fig17", (*Harness).Fig17},
	{"fig18", (*Harness).Fig18},
	{"fig19", (*Harness).Fig19},
	{"fig20", (*Harness).Fig20},
	{"fig21", (*Harness).Fig21},
	{"fig22", (*Harness).Fig22},
	{"fig23", (*Harness).Fig23},
	{"fig24", (*Harness).Fig24},
	{"design5", (*Harness).Design5},
	{"tails", (*Harness).TailLatency},
	{"ablation", (*Harness).Ablation},
}

// All regenerates every figure/table in paper order: one planning pass
// over all builders, one executor pass over the deduplicated scenario
// union, then every table built from the collected outcomes.
func (h *Harness) All() []*Table {
	builds := make([]func(*Harness) *Table, len(specs))
	for i, s := range specs {
		builds[i] = s.build
	}
	h.prepare(builds...)
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.build(h)
	}
	return out
}

// ByID resolves a figure by its identifier ("fig16", "table1", ...),
// planning and executing only that figure's scenarios; ok=false for
// unknown ids.
func (h *Harness) ByID(id string) (*Table, bool) {
	for _, s := range specs {
		if s.id == id {
			h.prepare(s.build)
			return s.build(h), true
		}
	}
	return nil, false
}

// IDs lists every known figure identifier in paper order.
func IDs() []string {
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.id
	}
	return ids
}
