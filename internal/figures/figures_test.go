package figures

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/run"
	"repro/internal/workload"
)

// Only the analytic figures run in unit tests; the simulation-backed ones
// are exercised by the benchmark harness (bench_test.go at the repo root).

func TestAnalyticFigureIDsResolve(t *testing.T) {
	h := NewHarness(true)
	for _, id := range []string{"table1", "fig3", "fig4", "fig5", "fig8", "fig10", "fig13", "fig14"} {
		tab, ok := h.ByID(id)
		if !ok {
			t.Fatalf("%s did not resolve", id)
		}
		if tab.ID != id || len(tab.Rows) == 0 {
			t.Fatalf("%s produced empty table", id)
		}
		var buf bytes.Buffer
		tab.Fprint(&buf)
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("%s rendering lacks its id", id)
		}
	}
}

func TestUnknownIDRejected(t *testing.T) {
	h := NewHarness(true)
	if _, ok := h.ByID("fig99"); ok {
		t.Fatal("unknown figure resolved")
	}
}

func TestIDsCoverEveryEvaluationFigure(t *testing.T) {
	ids := IDs()
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	// Figures 2..24 except 9 (architecture diagram, nothing to measure).
	for i := 2; i <= 24; i++ {
		if i == 9 {
			continue
		}
		if !want["fig"+strconv.Itoa(i)] {
			t.Errorf("fig%d missing from IDs()", i)
		}
	}
	if !want["table1"] {
		t.Error("table1 missing")
	}
}

// TestFig5OverheadMatchesPaper: the analytic timeline must reproduce the
// 19 ns Direct-LLC-Latency overhead the paper derives.
func TestFig5OverheadMatchesPaper(t *testing.T) {
	h := NewHarness(true)
	tab := h.Fig5()
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "overhead of caching counters in LLC") {
			found = true
			if !strings.Contains(n, "19.0 ns") {
				t.Fatalf("overhead drifted: %s", n)
			}
		}
	}
	if !found {
		t.Fatal("fig5 lacks its overhead note")
	}
}

// TestFig3MeanNear23 checks the NoC calibration end to end.
func TestFig3MeanNear23(t *testing.T) {
	h := NewHarness(true)
	tab := h.Fig3()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "mean" {
		t.Fatal("fig3 missing mean row")
	}
	mean, err := strconv.ParseFloat(strings.Fields(last[1])[0], 64)
	if err != nil {
		t.Fatalf("cannot parse mean %q: %v", last[1], err)
	}
	if mean < 21 || mean > 25 {
		t.Fatalf("LLC hit mean = %v ns, want ~23", mean)
	}
}

// TestTimelineFiguresFavourEMCC: Figs 10, 13 and 14 must all show EMCC
// responding earlier than the baseline.
func TestTimelineFiguresFavourEMCC(t *testing.T) {
	h := NewHarness(true)
	for _, id := range []string{"fig10", "fig13", "fig14"} {
		tab, _ := h.ByID(id)
		ok := false
		for _, n := range tab.Notes {
			if strings.Contains(n, "EMCC responds") && !strings.Contains(n, "-") {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%s does not show an EMCC win: %v", id, tab.Notes)
		}
	}
}

// microHarness runs simulation-backed figures at miniature scale so the
// figure plumbing (metric extraction, table assembly) is unit-testable.
func microHarness() *Harness {
	h := NewHarness(true)
	sc := workload.TestScale()
	h.ScaleOverride = &sc
	h.RefsOverride = 120_000
	return h
}

func TestFig16StructureAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().Fig16()
	if len(tab.Rows) != 12 { // 11 benchmarks + mean
		t.Fatalf("fig16 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != 5 {
			t.Fatalf("fig16 row %v has %d cells", r, len(r))
		}
		for _, cell := range r[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("fig16 cell %q not a percentage", cell)
			}
		}
	}
}

func TestDesign5StructureAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().Design5()
	if len(tab.Rows) != 12 { // 11 benchmarks + mean
		t.Fatalf("design5 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != 6 {
			t.Fatalf("design5 row %v has %d cells", r, len(r))
		}
		for _, cell := range r[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("design5 cell %q not a percentage", cell)
			}
		}
	}
	// Every secure design must cost something: normalised performance
	// strictly below 100% on the mean row (determinism makes this exact).
	mean := tab.Rows[len(tab.Rows)-1]
	for i, cell := range mean[1:] {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("mean cell %q: %v", cell, err)
		}
		if v >= 100 {
			t.Fatalf("%s mean normalised perf %.1f%% not below non-secure", tab.Header[i+1], v)
		}
	}
}

func TestFig11And23ShareRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	h := microHarness()
	h.Fig11()
	n := h.Report().Executed
	h.Fig23() // must reuse the same emcc functional runs
	if got := h.Report().Executed; got != n {
		t.Fatalf("fig23 re-ran functional sims: %d -> %d", n, got)
	}
}

func TestFig22Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().Fig22()
	if len(tab.Rows) != 2 {
		t.Fatalf("fig22 rows = %d, want 2 (1 and 8 channels)", len(tab.Rows))
	}
}

// TestByIDAndIDsAgree pins the registry: every enumerated id resolves to a
// table carrying that id, with no duplicates and no unreachable specs.
func TestByIDAndIDsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	ids := IDs()
	if len(ids) != len(specs) {
		t.Fatalf("IDs() lists %d ids, registry has %d specs", len(ids), len(specs))
	}
	seen := map[string]bool{}
	h := microHarness()
	h.RefsOverride = 8_000 // every figure runs; keep each sim tiny
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		tab, ok := h.ByID(id)
		if !ok {
			t.Errorf("id %q enumerated but does not resolve", id)
			continue
		}
		if tab.ID != id {
			t.Errorf("ByID(%q) produced table %q", id, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("id %q produced an empty table", id)
		}
	}
	for _, s := range specs {
		if !seen[s.id] {
			t.Errorf("spec %q not enumerated by IDs()", s.id)
		}
	}
}

// renderAll builds the given figures on h and renders them to one byte
// stream.
func renderAll(h *Harness, ids []string) string {
	var buf bytes.Buffer
	for _, id := range ids {
		tab, ok := h.ByID(id)
		if !ok {
			panic("unknown id " + id)
		}
		tab.Fprint(&buf)
	}
	return buf.String()
}

// TestParallelTablesMatchSerial pins the acceptance claim: -j N tables are
// byte-identical to -j 1.
func TestParallelTablesMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	ids := []string{"fig12", "fig16", "fig22"}
	serial := microHarness()
	serial.Workers = 1
	parallel := microHarness()
	parallel.Workers = 8
	a, b := renderAll(serial, ids), renderAll(parallel, ids)
	if a != b {
		t.Fatalf("serial and parallel tables differ:\n--- j=1\n%s\n--- j=8\n%s", a, b)
	}
	if serial.Report().Executed == 0 || serial.Report().Executed != parallel.Report().Executed {
		t.Fatalf("executed counts differ: %d vs %d", serial.Report().Executed, parallel.Report().Executed)
	}
}

// TestCacheSecondRunExecutesNothing pins the acceptance claim: a second
// cached run re-simulates nothing and reproduces the tables byte for byte.
func TestCacheSecondRunExecutesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	dir := t.TempDir()
	ids := []string{"fig11", "fig16"}

	cold, err := run.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := microHarness()
	h1.Cache = cold
	first := renderAll(h1, ids)
	if h1.Report().Executed == 0 {
		t.Fatal("cold run executed nothing")
	}

	warm, err := run.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := microHarness()
	h2.Cache = warm
	h2.Workers = 4
	second := renderAll(h2, ids)
	if n := h2.Report().Executed; n != 0 {
		t.Fatalf("cached run executed %d simulations, want 0", n)
	}
	if h2.Report().Cached == 0 {
		t.Fatal("cached run reports no cache hits")
	}
	if first != second {
		t.Fatalf("cached tables differ from cold tables:\n--- cold\n%s\n--- cached\n%s", first, second)
	}
}

// TestTailLatencyStructureAtMicroScale pins the percentile table's shape:
// every one of the five systems reports an end-to-end "request" row with
// monotone percentiles, plus at least one populated segment row.
func TestTailLatencyStructureAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().TailLatency()
	systems := map[string]struct{ request, segments int }{}
	for _, r := range tab.Rows {
		if len(r) != 7 {
			t.Fatalf("tails row %v has %d cells", r, len(r))
		}
		e := systems[r[0]]
		if r[1] == "request" {
			e.request++
			p50, _ := strconv.Atoi(r[3])
			p95, _ := strconv.Atoi(r[4])
			p99, _ := strconv.Atoi(r[5])
			max, _ := strconv.Atoi(r[6])
			if p50 > p95 || p95 > p99 || p99 > max || p50 <= 0 {
				t.Fatalf("%s request percentiles not monotone positive: %v", r[0], r)
			}
		} else {
			e.segments++
		}
		systems[r[0]] = e
	}
	for _, sys := range []string{"sc64", "morphable", "emcc", "bipbip", "insram"} {
		e := systems[sys]
		if e.request != 1 || e.segments == 0 {
			t.Fatalf("%s: %d request rows, %d segment rows", sys, e.request, e.segments)
		}
	}
}
