package figures

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// Only the analytic figures run in unit tests; the simulation-backed ones
// are exercised by the benchmark harness (bench_test.go at the repo root).

func TestAnalyticFigureIDsResolve(t *testing.T) {
	h := NewHarness(true)
	for _, id := range []string{"table1", "fig3", "fig4", "fig5", "fig8", "fig10", "fig13", "fig14"} {
		tab, ok := h.ByID(id)
		if !ok {
			t.Fatalf("%s did not resolve", id)
		}
		if tab.ID != id || len(tab.Rows) == 0 {
			t.Fatalf("%s produced empty table", id)
		}
		var buf bytes.Buffer
		tab.Fprint(&buf)
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("%s rendering lacks its id", id)
		}
	}
}

func TestUnknownIDRejected(t *testing.T) {
	h := NewHarness(true)
	if _, ok := h.ByID("fig99"); ok {
		t.Fatal("unknown figure resolved")
	}
}

func TestIDsCoverEveryEvaluationFigure(t *testing.T) {
	ids := IDs()
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	// Figures 2..24 except 9 (architecture diagram, nothing to measure).
	for i := 2; i <= 24; i++ {
		if i == 9 {
			continue
		}
		if !want["fig"+strconv.Itoa(i)] {
			t.Errorf("fig%d missing from IDs()", i)
		}
	}
	if !want["table1"] {
		t.Error("table1 missing")
	}
}

// TestFig5OverheadMatchesPaper: the analytic timeline must reproduce the
// 19 ns Direct-LLC-Latency overhead the paper derives.
func TestFig5OverheadMatchesPaper(t *testing.T) {
	h := NewHarness(true)
	tab := h.Fig5()
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "overhead of caching counters in LLC") {
			found = true
			if !strings.Contains(n, "19.0 ns") {
				t.Fatalf("overhead drifted: %s", n)
			}
		}
	}
	if !found {
		t.Fatal("fig5 lacks its overhead note")
	}
}

// TestFig3MeanNear23 checks the NoC calibration end to end.
func TestFig3MeanNear23(t *testing.T) {
	h := NewHarness(true)
	tab := h.Fig3()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "mean" {
		t.Fatal("fig3 missing mean row")
	}
	mean, err := strconv.ParseFloat(strings.Fields(last[1])[0], 64)
	if err != nil {
		t.Fatalf("cannot parse mean %q: %v", last[1], err)
	}
	if mean < 21 || mean > 25 {
		t.Fatalf("LLC hit mean = %v ns, want ~23", mean)
	}
}

// TestTimelineFiguresFavourEMCC: Figs 10, 13 and 14 must all show EMCC
// responding earlier than the baseline.
func TestTimelineFiguresFavourEMCC(t *testing.T) {
	h := NewHarness(true)
	for _, id := range []string{"fig10", "fig13", "fig14"} {
		tab, _ := h.ByID(id)
		ok := false
		for _, n := range tab.Notes {
			if strings.Contains(n, "EMCC responds") && !strings.Contains(n, "-") {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%s does not show an EMCC win: %v", id, tab.Notes)
		}
	}
}

// microHarness runs simulation-backed figures at miniature scale so the
// figure plumbing (metric extraction, table assembly) is unit-testable.
func microHarness() *Harness {
	h := NewHarness(true)
	sc := workload.TestScale()
	h.ScaleOverride = &sc
	h.RefsOverride = 120_000
	return h
}

func TestFig16StructureAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().Fig16()
	if len(tab.Rows) != 12 { // 11 benchmarks + mean
		t.Fatalf("fig16 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != 5 {
			t.Fatalf("fig16 row %v has %d cells", r, len(r))
		}
		for _, cell := range r[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("fig16 cell %q not a percentage", cell)
			}
		}
	}
}

func TestFig11And23ShareRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	h := microHarness()
	h.Fig11()
	n := len(h.fruns)
	h.Fig23() // must reuse the same emcc functional runs
	if len(h.fruns) != n {
		t.Fatalf("fig23 re-ran functional sims: %d -> %d", n, len(h.fruns))
	}
}

func TestFig22Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := microHarness().Fig22()
	if len(tab.Rows) != 2 {
		t.Fatalf("fig22 rows = %d, want 2 (1 and 8 channels)", len(tab.Rows))
	}
}
