package figures

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/stats"
)

// timingTraced declares or fetches a traced timing simulation: identical to
// timing, except the scenario carries the Trace flag, so its outcome
// snapshot includes the obs per-segment latency histograms. Traced and
// untraced runs of the same configuration are distinct scenarios (the flag
// is part of the content key) — the tails figure never perturbs the
// outcomes the performance figures read.
func (h *Harness) timingTraced(bench, system, variant string, mutate func(*config.Config)) tsimRun {
	sc := h.scenario(run.Timing, bench, system, variant, mutate)
	sc.Trace = true
	o := h.outcome(sc)
	return tsimRun{res: *o.Timing, st: o.Stats}
}

// TailLatency reports the phase-resolved latency distribution of each
// secure-memory design: per system, the end-to-end request latency and
// every populated pipeline segment with p50/p95/p99/max read off the
// shared histogram geometry. Not a paper figure — the paper reports means;
// the tail view is what the eager-decryption argument is actually about
// (exposure that only helped the median would be a much weaker claim).
func (h *Harness) TailLatency() *Table {
	t := &Table{
		ID:     "tails",
		Title:  "Request and per-segment latency percentiles (canneal, ns)",
		Header: []string{"system", "lane", "n", "p50", "p95", "p99", "max"},
		Notes: []string{
			"percentiles from the fixed log-bucket histograms (internal/metrics), interpolated within buckets",
			"request = end-to-end traced latency; segments are per-span pipeline attribution",
			"exposed-per-decrypt counts every decrypted request (hidden decrypts as zeros); the exposed-decrypt segment counts only nonzero-exposure spans",
		},
	}
	systems := []string{"sc64", "morphable", "emcc", "bipbip", "insram"}
	const bench = "canneal"
	for _, sys := range systems {
		st := h.timingTraced(bench, sys, "base", nil).st
		lh := st.Hist(stats.ObsReqLatencyHist)
		t.Rows = append(t.Rows, []string{
			sys, "request", fmt.Sprint(lh.Count),
			fmt.Sprint(lh.Quantile(0.50)), fmt.Sprint(lh.Quantile(0.95)),
			fmt.Sprint(lh.Quantile(0.99)), fmt.Sprint(lh.Max),
		})
		for _, seg := range obs.Segments() {
			sh := st.Hist(obs.SegHistKey(seg)) //lint:dynamic-key per-segment family obs/hist/seg/<name>-ns
			if sh.Count == 0 {
				continue
			}
			t.Rows = append(t.Rows, []string{
				sys, seg.String(), fmt.Sprint(sh.Count),
				fmt.Sprint(sh.Quantile(0.50)), fmt.Sprint(sh.Quantile(0.95)),
				fmt.Sprint(sh.Quantile(0.99)), fmt.Sprint(sh.Max),
			})
		}
		// Distinct from the exposed-decrypt segment row above: the segment
		// histogram sees only spans with nonzero exposure, while this one
		// records every decrypted request — fully hidden decrypts count as
		// zeros, so its quantiles answer "how exposed is a typical decrypt".
		eh := st.Hist(stats.ObsExposedDecryptHist)
		if eh.Count > 0 {
			t.Rows = append(t.Rows, []string{
				sys, "exposed-per-decrypt", fmt.Sprint(eh.Count),
				fmt.Sprint(eh.Quantile(0.50)), fmt.Sprint(eh.Quantile(0.95)),
				fmt.Sprint(eh.Quantile(0.99)), fmt.Sprint(eh.Max),
			})
		}
	}
	return t
}
