package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestCounters(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("a", 4)
	if got := s.Counter("a"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestAccumulator(t *testing.T) {
	s := NewSet()
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe("lat", v)
	}
	a := s.Accum("lat")
	if a.Count != 4 || a.Mean() != 2.5 || a.Min != 1 || a.Max != 4 {
		t.Fatalf("accum = %+v mean=%v", a, a.Mean())
	}
	if s.Accum("missing").Mean() != 0 {
		t.Fatal("missing accum mean should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1, 5) // [10,15) in 5 buckets
	for _, v := range []float64{9, 10, 10.5, 12, 14.9, 15, 100} {
		h.Observe(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d, want 1 and 2", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 10 and 10.5
		t.Fatalf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
	if h.BucketLo(2) != 12 {
		t.Fatalf("bucketLo(2) = %v, want 12", h.BucketLo(2))
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7) > 1e-12 {
		t.Fatalf("fraction(0) = %v", got)
	}
}

func TestHistogramInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Observe("b", 1)
	s.Hist("c", 0, 1, 10).Observe(5)
	s.Reset()
	if s.Counter("a") != 0 || s.Accum("b").Count != 0 {
		t.Fatal("reset did not clear metrics")
	}
	if len(s.Names()) != 0 {
		t.Fatalf("names after reset: %v", s.Names())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, -5, 4, 9}); math.Abs(got-6) > 1e-9 {
		t.Fatalf("geomean with skips = %v, want 6", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
}

func TestDumpIncludesMetrics(t *testing.T) {
	s := NewSet()
	s.Inc("x/y")
	s.Observe("z", 2)
	d := s.Dump()
	if len(d) == 0 {
		t.Fatal("dump is empty")
	}
}

func TestSnapshotRoundTripsJSON(t *testing.T) {
	s := NewSet()
	s.Add("x", 7)
	s.Observe("y", 2.5)
	snap := s.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["x"] != 7 || back.Accums["y"].Mean != 2.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// Snapshot is a copy: mutating the set afterwards must not affect it.
	s.Add("x", 100)
	if snap.Counters["x"] != 7 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestSnapshotAccessorsMatchSet(t *testing.T) {
	s := NewSet()
	s.Add("hits", 41)
	s.Observe("lat", 3)
	s.Observe("lat", 5)
	snap := s.Snapshot()
	if snap.Counter("hits") != s.Counter("hits") {
		t.Fatalf("Counter mismatch: %d vs %d", snap.Counter("hits"), s.Counter("hits"))
	}
	if snap.AccumMean("lat") != s.Accum("lat").Mean() {
		t.Fatalf("AccumMean mismatch: %g vs %g", snap.AccumMean("lat"), s.Accum("lat").Mean())
	}
	if snap.Counter("absent") != 0 || snap.AccumMean("absent") != 0 {
		t.Fatal("absent metrics not zero")
	}
	var zero Snapshot
	if zero.Counter("x") != 0 || zero.AccumMean("x") != 0 {
		t.Fatal("zero-value snapshot accessors not zero")
	}
}

func TestSnapshotDumpSurvivesRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add("b/count", 3)
	s.Add("a/count", 1)
	s.Observe("c/lat", 7.5)
	snap := s.Snapshot()
	if s.Dump() != snap.Dump() {
		t.Fatal("live and snapshot dumps differ")
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dump() != snap.Dump() {
		t.Fatalf("dump changed across JSON round trip:\n%s\nvs\n%s", snap.Dump(), back.Dump())
	}
}
