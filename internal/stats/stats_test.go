package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestCounters(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("a", 4)
	if got := s.Counter("a"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestAccumulator(t *testing.T) {
	s := NewSet()
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe("lat", v)
	}
	a := s.Accum("lat")
	if a.Count != 4 || a.Mean() != 2.5 || a.Min != 1 || a.Max != 4 {
		t.Fatalf("accum = %+v mean=%v", a, a.Mean())
	}
	if s.Accum("missing").Mean() != 0 {
		t.Fatal("missing accum mean should be 0")
	}
}

func TestHistCells(t *testing.T) {
	s := NewSet()
	h := s.HistRef("lat")
	for _, v := range []int64{3, 40, 40, 5000} {
		h.Observe(v)
	}
	// HistRef returns the same cell; Hist reads it.
	if s.HistRef("lat") != h {
		t.Fatal("HistRef did not return the bound cell")
	}
	if got := s.Hist("lat").Count(); got != 4 {
		t.Fatalf("Hist count = %d, want 4", got)
	}
	if s.Hist("missing").Count() != 0 {
		t.Fatal("missing hist should read as empty")
	}
	// Bound-but-empty cells stay invisible; observed ones show up.
	s.HistRef("never-observed")
	names := s.Names()
	want := []string{"hist/lat"}
	if len(names) != 1 || names[0] != want[0] {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Observe("b", 1)
	s.HistRef("c").Observe(5)
	s.Reset()
	if s.Counter("a") != 0 || s.Accum("b").Count != 0 {
		t.Fatal("reset did not clear metrics")
	}
	if len(s.Names()) != 0 {
		t.Fatalf("names after reset: %v", s.Names())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, -5, 4, 9}); math.Abs(got-6) > 1e-9 {
		t.Fatalf("geomean with skips = %v, want 6", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
}

func TestDumpIncludesMetrics(t *testing.T) {
	s := NewSet()
	s.Inc("x/y")
	s.Observe("z", 2)
	d := s.Dump()
	if len(d) == 0 {
		t.Fatal("dump is empty")
	}
}

func TestSnapshotRoundTripsJSON(t *testing.T) {
	s := NewSet()
	s.Add("x", 7)
	s.Observe("y", 2.5)
	s.HistRef("h").Observe(100)
	snap := s.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["x"] != 7 || back.Accums["y"].Mean != 2.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Hist("h").Count != 1 || back.Hist("h").Quantile(0.5) != snap.Hist("h").Quantile(0.5) {
		t.Fatalf("histogram lost in round trip: %+v", back.Hists)
	}
	// Snapshot is a copy: mutating the set afterwards must not affect it.
	s.Add("x", 100)
	if snap.Counters["x"] != 7 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestSnapshotAccessorsMatchSet(t *testing.T) {
	s := NewSet()
	s.Add("hits", 41)
	s.Observe("lat", 3)
	s.Observe("lat", 5)
	snap := s.Snapshot()
	if snap.Counter("hits") != s.Counter("hits") {
		t.Fatalf("Counter mismatch: %d vs %d", snap.Counter("hits"), s.Counter("hits"))
	}
	if snap.AccumMean("lat") != s.Accum("lat").Mean() {
		t.Fatalf("AccumMean mismatch: %g vs %g", snap.AccumMean("lat"), s.Accum("lat").Mean())
	}
	if snap.Counter("absent") != 0 || snap.AccumMean("absent") != 0 {
		t.Fatal("absent metrics not zero")
	}
	var zero Snapshot
	if zero.Counter("x") != 0 || zero.AccumMean("x") != 0 {
		t.Fatal("zero-value snapshot accessors not zero")
	}
}

func TestSnapshotDumpSurvivesRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add("b/count", 3)
	s.Add("a/count", 1)
	s.Observe("c/lat", 7.5)
	s.HistRef("d/hist").Observe(42)
	snap := s.Snapshot()
	if s.Dump() != snap.Dump() {
		t.Fatal("live and snapshot dumps differ")
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dump() != snap.Dump() {
		t.Fatalf("dump changed across JSON round trip:\n%s\nvs\n%s", snap.Dump(), back.Dump())
	}
}
