package stats_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// TestKeyHygiene enforces the registry naming contract: every key is
// lowercase, slash-separated into non-empty [a-z0-9-] segments, and
// declared exactly once.
func TestKeyHygiene(t *testing.T) {
	keys := stats.Keys()
	if len(keys) == 0 {
		t.Fatal("empty registry")
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
		for _, seg := range strings.Split(k, "/") {
			if seg == "" {
				t.Errorf("key %q has an empty segment", k)
				continue
			}
			for _, r := range seg {
				if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
					t.Errorf("key %q: segment %q has character %q outside [a-z0-9-]", k, seg, r)
					break
				}
			}
		}
	}
}

// TestNoOrphanKeys cross-checks the registry against the linter's
// reference index: every registered key must be used somewhere outside
// the registry, or it is dead vocabulary that belongs deleted.
func TestNoOrphanKeys(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(root, "./...")
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	indexed := make(map[string]bool, len(res.Keys))
	for _, k := range res.Keys {
		indexed[k] = true
	}
	for _, k := range stats.Keys() {
		if !indexed[k] {
			t.Errorf("key %q in stats.Keys() but not discovered by the linter registry scan", k)
		}
	}
	for _, k := range res.Keys {
		if len(res.KeyIndex[k]) == 0 {
			t.Errorf("orphan key %q: registered but never referenced outside internal/stats", k)
		}
	}
}
