// Package stats collects the counters, accumulators and histograms that the
// evaluation figures are computed from. Every component in the simulator
// writes into a shared *Set; the figure harness reads the named metrics out
// at the end of a run.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Set is a named bag of metrics. The zero value is not usable; call NewSet.
//
// Counters are stored as heap cells (map[string]*int64) so hot paths can
// bind a cell once with CounterRef and bump it with a single pointer
// dereference instead of a map lookup per event; AccumRef does the same
// for accumulators. Cells bound by refs but never moved off zero are
// invisible to Snapshot/Names/Dump, so eager binding never perturbs
// golden output.
type Set struct {
	counters map[string]*int64
	accums   map[string]*Accumulator
	hists    map[string]*metrics.Hist
	prov     map[string]string
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*int64),
		accums:   make(map[string]*Accumulator),
		hists:    make(map[string]*metrics.Hist),
	}
}

// Reset clears every metric while keeping the set's identity, so
// components holding the pointer keep recording. Used at the
// warmup-to-measurement boundary. Cells handed out by CounterRef/AccumRef
// before a Reset go stale (they keep counting into the discarded
// generation); components caching refs must re-bind after Reset.
func (s *Set) Reset() {
	s.counters = make(map[string]*int64)
	s.accums = make(map[string]*Accumulator)
	s.hists = make(map[string]*metrics.Hist)
}

// SetProvenance attaches a run-provenance manifest (see internal/prov) to
// the set; it rides along into every Snapshot. Reset does not clear it —
// provenance describes the run, not the measurement window.
func (s *Set) SetProvenance(m map[string]string) { s.prov = m }

// Add increments the named counter by delta.
func (s *Set) Add(name string, delta int64) { *s.CounterRef(name) += delta }

// Inc increments the named counter by one.
func (s *Set) Inc(name string) { *s.CounterRef(name)++ }

// Counter reports the value of the named counter (zero if never touched).
func (s *Set) Counter(name string) int64 {
	if c := s.counters[name]; c != nil {
		return *c
	}
	return 0
}

// CounterRef returns the named counter's cell, creating it at zero. Hot
// paths bind the cell once and bump through the pointer; the cell is valid
// until the next Reset.
func (s *Set) CounterRef(name string) *int64 {
	c := s.counters[name]
	if c == nil {
		c = new(int64)
		s.counters[name] = c
	}
	return c
}

// Observe records a sample into the named accumulator.
func (s *Set) Observe(name string, v float64) { s.AccumRef(name).Observe(v) }

// AccumRef returns the named accumulator, creating an empty one. Hot paths
// bind it once and Observe through the pointer; it is valid until the next
// Reset. An accumulator that never receives a sample stays invisible to
// Snapshot and Names.
func (s *Set) AccumRef(name string) *Accumulator {
	a := s.accums[name]
	if a == nil {
		a = &Accumulator{Min: math.Inf(1), Max: math.Inf(-1)}
		s.accums[name] = a
	}
	return a
}

// Accum returns the named accumulator, or an empty one if never observed.
func (s *Set) Accum(name string) *Accumulator {
	if a := s.accums[name]; a != nil {
		return a
	}
	return &Accumulator{}
}

// HistRef returns the named histogram's cell, creating an empty one. Hot
// paths bind the cell once and Observe through the pointer (the same
// discipline as CounterRef/AccumRef); it is valid until the next Reset. A
// histogram that never receives a sample stays invisible to Snapshot and
// Names, so eager binding never perturbs golden output.
func (s *Set) HistRef(name string) *metrics.Hist {
	h := s.hists[name]
	if h == nil {
		h = &metrics.Hist{}
		s.hists[name] = h
	}
	return h
}

// Hist returns the named histogram, or an empty one if never observed.
func (s *Set) Hist(name string) *metrics.Hist {
	if h := s.hists[name]; h != nil {
		return h
	}
	return &metrics.Hist{}
}

// Merge folds every metric of o into s: counters add, accumulators and
// histograms combine. Cells left at zero by eager ref binding are
// skipped, so merging never materialises metrics o did not record. Each
// key folds into its own independent cell, so map iteration order cannot
// affect the result; callers merging several sets fix determinism by
// fixing the order of the Merge calls (the sharded DRAM folds its
// per-channel shards in channel order).
func (s *Set) Merge(o *Set) {
	for k, c := range o.counters {
		if *c != 0 {
			*s.CounterRef(k) += *c
		}
	}
	for k, a := range o.accums {
		if a.Count != 0 {
			s.AccumRef(k).Merge(a)
		}
	}
	for k, h := range o.hists {
		if h.Count() != 0 {
			s.HistRef(k).Merge(h)
		}
	}
}

// Names reports every metric name present, sorted, for debug dumps.
// Ref-bound cells that never recorded anything are omitted, matching
// Snapshot.
func (s *Set) Names() []string {
	var names []string
	for k, c := range s.counters {
		if *c != 0 {
			names = append(names, "counter/"+k)
		}
	}
	for k, a := range s.accums {
		if a.Count != 0 {
			names = append(names, "accum/"+k)
		}
	}
	for k, h := range s.hists {
		if h.Count() != 0 {
			names = append(names, "hist/"+k)
		}
	}
	sort.Strings(names)
	return names
}

// Dump formats every metric for human inspection. It goes through
// Snapshot, so a live Set and its round-tripped snapshot print
// byte-identically (cached and fresh runs are indistinguishable in logs).
func (s *Set) Dump() string { return s.Snapshot().Dump() }

// Accumulator tracks count/sum/min/max of a stream of float64 samples.
type Accumulator struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Observe records one sample.
func (a *Accumulator) Observe(v float64) {
	a.Count++
	a.Sum += v
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

// Merge folds another accumulator's samples into a.
func (a *Accumulator) Merge(o *Accumulator) {
	if o.Count == 0 {
		return
	}
	a.Count += o.Count
	a.Sum += o.Sum
	if o.Min < a.Min {
		a.Min = o.Min
	}
	if o.Max > a.Max {
		a.Max = o.Max
	}
}

// Mean reports the sample mean, or zero with no samples.
func (a *Accumulator) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// VisitCounters calls fn for every non-zero counter in ascending name
// order. Together with VisitHists it makes Set a metrics.Source, so a
// flight recorder can sample any Set without the metrics package knowing
// about this one.
func (s *Set) VisitCounters(fn func(name string, v int64)) {
	names := make([]string, 0, len(s.counters))
	for k, c := range s.counters {
		if *c != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fn(k, *s.counters[k])
	}
}

// VisitHists calls fn for every non-empty histogram in ascending name
// order (the other half of the metrics.Source contract).
func (s *Set) VisitHists(fn func(name string, h *metrics.Hist)) {
	names := make([]string, 0, len(s.hists))
	for k, h := range s.hists {
		if h.Count() != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fn(k, s.hists[k])
	}
}

// GeoMean computes the geometric mean of strictly positive values; zero or
// negative inputs are skipped (matching how the paper reports Fig 22).
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean computes the arithmetic mean of vs (zero for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Snapshot is a JSON-marshalable view of a Set.
type Snapshot struct {
	// Provenance is the run manifest (internal/prov), when the owning
	// tool attached one. Golden comparisons mask its volatile keys.
	Provenance map[string]string       `json:"provenance,omitempty"`
	Counters   map[string]int64        `json:"counters"`
	Accums     map[string]AccumSummary `json:"accumulators"`
	// Hists holds the log-bucketed latency histograms (internal/metrics),
	// trailing-zero-trimmed. Absent entirely when the run recorded none,
	// so snapshots from histogram-free runs keep their historical shape.
	Hists map[string]metrics.HistSnapshot `json:"histograms,omitempty"`
}

// AccumSummary is the JSON view of an Accumulator.
type AccumSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// StableJSON renders the snapshot as indented JSON. encoding/json sorts
// map keys, so two equal snapshots always produce byte-identical output —
// the determinism tests and golden files rely on that.
func (s Snapshot) StableJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Counter reports the named counter captured in the snapshot (zero if
// never touched), mirroring Set.Counter so the figure harness can read
// live and cached outcomes through one accessor.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// AccumMean reports the mean of the named accumulator captured in the
// snapshot (zero if never observed), mirroring Set.Accum(name).Mean().
func (s Snapshot) AccumMean(name string) float64 { return s.Accums[name].Mean }

// Hist reports the named histogram captured in the snapshot (an empty
// one if never observed), mirroring Set.Hist for cached outcomes.
func (s Snapshot) Hist(name string) metrics.HistSnapshot { return s.Hists[name] }

// Dump formats the snapshot for human inspection, one line per metric
// sorted by prefixed name (the historical Set.Dump layout).
func (s Snapshot) Dump() string {
	names := make([]string, 0, len(s.Counters)+len(s.Accums)+len(s.Hists))
	for k := range s.Counters {
		names = append(names, "counter/"+k)
	}
	for k := range s.Accums {
		names = append(names, "accum/"+k)
	}
	for k := range s.Hists {
		names = append(names, "hist/"+k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "counter/"):
			fmt.Fprintf(&b, "%-52s %d\n", n, s.Counters[strings.TrimPrefix(n, "counter/")])
		case strings.HasPrefix(n, "accum/"):
			a := s.Accums[strings.TrimPrefix(n, "accum/")]
			fmt.Fprintf(&b, "%-52s mean=%.3f n=%d min=%.3f max=%.3f\n", n, a.Mean, a.Count, a.Min, a.Max)
		case strings.HasPrefix(n, "hist/"):
			h := s.Hists[strings.TrimPrefix(n, "hist/")]
			fmt.Fprintf(&b, "%-52s n=%d p50=%d p95=%d p99=%d max=%d\n",
				n, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
		}
	}
	return b.String()
}

// Snapshot captures the current metrics for serialization.
func (s *Set) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]int64, len(s.counters)),
		Accums:   make(map[string]AccumSummary, len(s.accums)),
	}
	// Zero-valued cells exist only through CounterRef/AccumRef binding;
	// no recording path leaves a zero behind, so skipping them keeps
	// snapshots byte-identical to the pre-ref world (and keeps the ±Inf
	// sentinels of an unobserved accumulator out of the JSON).
	for k, v := range s.counters {
		if *v != 0 {
			snap.Counters[k] = *v
		}
	}
	for k, a := range s.accums {
		if a.Count != 0 {
			snap.Accums[k] = AccumSummary{Count: a.Count, Mean: a.Mean(), Min: a.Min, Max: a.Max}
		}
	}
	for k, h := range s.hists {
		if h.Count() != 0 {
			if snap.Hists == nil {
				snap.Hists = make(map[string]metrics.HistSnapshot)
			}
			snap.Hists[k] = h.Snapshot()
		}
	}
	if s.prov != nil {
		snap.Provenance = make(map[string]string, len(s.prov))
		for k, v := range s.prov {
			snap.Provenance[k] = v
		}
	}
	return snap
}
