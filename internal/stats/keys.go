// Central registry of every stats key the simulators and the evaluation
// harness share. A key is a lowercase, '/'-separated path whose first
// segment names the subsystem that owns it ("fsim", "tsim", "dram", ...).
//
// Contract (enforced by cmd/lint's statskey pass and by keys_test.go):
//
//   - Every name passed to Set.Add/Inc/Observe/Counter/Accum/Hist/HistRef
//     and to Snapshot.Counter/AccumMean/Hist must resolve, at compile time, to one of
//     the constants below. A key that is assembled at runtime (per-segment
//     or per-name families like "obs/seg/<segment>-ns") must carry a
//     `//lint:dynamic-key` annotation at the call site.
//   - Every constant declared in this file must be listed in registry and
//     referenced somewhere outside this package — an orphaned key means a
//     producer or consumer was deleted and the other side now silently
//     reads zeros.
//
// The differential harness (internal/check) compares fsim and tsim runs
// through these names; a typo'd key would make both sides report zero and
// the comparison pass vacuously. Keeping every literal here is what turns
// that failure mode into a compile-time/lint-time error.
package stats

// Functional-simulator (fsim) keys.
const (
	FsimDataRead      = "fsim/data-read"       // program loads
	FsimDataWrite     = "fsim/data-write"      // program stores
	FsimL2DataMiss    = "fsim/l2-data-miss"    // read+write misses at L2
	FsimLLCDataMiss   = "fsim/llc-data-miss"   // data misses at LLC
	FsimLLCDataAccess = "fsim/llc-data-access" // data lookups at LLC
	FsimDRAMDataRead  = "fsim/dram-data-read"
	FsimDRAMDataWrite = "fsim/dram-data-write"
	FsimDRAMCtrRead   = "fsim/dram-counter-read"
	FsimDRAMCtrWrite  = "fsim/dram-counter-write"
	FsimDRAMOvfL0     = "fsim/dram-overflow-l0"
	FsimDRAMOvfHi     = "fsim/dram-overflow-hi"
	FsimCtrMCHit      = "fsim/counter-mc-hit"   // per DRAM data read
	FsimCtrLLCHit     = "fsim/counter-llc-hit"  // per DRAM data read
	FsimCtrLLCMiss    = "fsim/counter-llc-miss" // per DRAM data read
	FsimCtrLLCLookup  = "fsim/counter-llc-lookup"
)

// EMCC policy keys, recorded by both simulators (the differential harness
// compares them by the same name on each side).
const (
	// EmccSpecFetch counts L2 counter misses that triggered the
	// speculative fetch-to-LLC.
	EmccSpecFetch = "emcc/l2-counter-fetch-to-llc"
	// EmccCtrInserted counts counter lines installed in L2.
	EmccCtrInserted = "emcc/counter-inserted-l2"
	// EmccUseless counts counter lines evicted or invalidated unused.
	EmccUseless = "emcc/useless-counter-access"
	// EmccInvalidations counts write-driven counter invalidations in L2.
	EmccInvalidations = "emcc/counter-invalidations-l2"
	// EmccDecryptAtL2/MC classify where a DRAM fill was decrypted.
	EmccDecryptAtL2 = "emcc/decrypt-at-l2"
	EmccDecryptAtMC = "emcc/decrypt-at-mc"
	// EmccOffloadQueue counts misses that carried the adaptive-offload bit.
	EmccOffloadQueue = "emcc/offload-aes-queue"
	// EmccL2CtrHit/Miss classify the serial L2 counter probe.
	EmccL2CtrHit  = "emcc/l2-counter-hit"
	EmccL2CtrMiss = "emcc/l2-counter-miss"
	// EmccDynamicOffMiss counts offload decisions taken on a dynamic
	// (monitor-driven) policy miss.
	EmccDynamicOffMiss = "emcc/dynamic-off-miss"
)

// Counter-free direct-cipher design keys (CtrBipBip / CtrInSRAM), recorded
// by both simulators under the same names so the differential harness can
// compare cipher-operation counts directly (the Emcc* pattern).
const (
	BipBipDecryptOps = "bipbip/decrypt-ops" // per DRAM data fill
	BipBipEncryptOps = "bipbip/encrypt-ops" // per data writeback
	InSRAMDecryptOps = "insram/decrypt-ops" // per DRAM data fill
	InSRAMEncryptOps = "insram/encrypt-ops" // per data writeback
)

// Timing-simulator (tsim) keys.
const (
	TsimLoad       = "tsim/load"
	TsimStore      = "tsim/store"
	TsimL2DataMiss = "tsim/l2-data-miss"
	TsimL2Prefetch = "tsim/l2-prefetch"

	TsimLLCDataAccess = "tsim/llc-data-access"
	TsimLLCDataMiss   = "tsim/llc-data-miss"

	// Aggregate LLC counter-probe classification (all probes, including
	// the MC's re-probes for offloads and tree recursion).
	TsimCtrLLCLookup = "tsim/ctr-llc-lookup"
	TsimCtrLLCHit    = "tsim/ctr-llc-hit"
	TsimCtrLLCMiss   = "tsim/ctr-llc-miss"
	// The speculative-probe subset (counterAccessFromL2 only), the part
	// structurally shared with fsim's model — see check.rulesFor.
	TsimCtrSpecLLCLookup = "tsim/ctr-spec-llc-lookup"
	TsimCtrSpecLLCHit    = "tsim/ctr-spec-llc-hit"
	TsimCtrSpecLLCMiss   = "tsim/ctr-spec-llc-miss"

	TsimCtrMissOnchip          = "tsim/ctr-miss-onchip"
	TsimMCDataFill             = "tsim/mc-data-fill"
	TsimMCRejectedWhileBlocked = "tsim/mc-rejected-while-blocked"
	TsimDRAMQueueFullRetry     = "tsim/dram-queue-full-retry"

	// Latency accumulators observe integer picoseconds (sim.Time values
	// verbatim): integer sums are exact and order-insensitive, which is
	// what lets the sharded engine merge per-domain stat shards in any
	// canonical order and still match the serial engine byte for byte.
	TsimCryptoExposureL2PS  = "tsim/crypto-exposure-l2-ps"
	TsimCryptoExposureMCPS  = "tsim/crypto-exposure-mc-ps"
	TsimL2ReadMissLatencyPS = "tsim/l2-read-miss-latency-ps"
)

// DRAM model keys. The qdelay/access families are indexed by request kind
// (data vs counter traffic) and direction; internal/dram holds lookup
// tables over these constants so the hot path never formats a key.
const (
	DramRowHit      = "dram/row-hit"
	DramRowClosed   = "dram/row-closed"
	DramRowConflict = "dram/row-conflict"

	DramQDelayDataRead   = "dram/qdelay/data/read"
	DramQDelayDataWrite  = "dram/qdelay/data/write"
	DramQDelayCtrRead    = "dram/qdelay/counter/read"
	DramQDelayCtrWrite   = "dram/qdelay/counter/write"
	DramQDelayOvfL0Read  = "dram/qdelay/overflow-l0/read"
	DramQDelayOvfL0Write = "dram/qdelay/overflow-l0/write"
	DramQDelayOvfHiRead  = "dram/qdelay/overflow-hi/read"
	DramQDelayOvfHiWrite = "dram/qdelay/overflow-hi/write"

	DramAccessDataRead   = "dram/access/data/read"
	DramAccessDataWrite  = "dram/access/data/write"
	DramAccessCtrRead    = "dram/access/counter/read"
	DramAccessCtrWrite   = "dram/access/counter/write"
	DramAccessOvfL0Read  = "dram/access/overflow-l0/read"
	DramAccessOvfL0Write = "dram/access/overflow-l0/write"
	DramAccessOvfHiRead  = "dram/access/overflow-hi/read"
	DramAccessOvfHiWrite = "dram/access/overflow-hi/write"
)

// Counter-overflow engine keys (internal/mc).
const (
	OverflowEvents        = "overflow/events"
	OverflowBlocks        = "overflow/blocks"
	OverflowBlockedEvents = "overflow/blocked-events"
)

// Per-request tracing aggregate keys (internal/obs). The per-segment
// family "obs/seg/<segment>-ns" and the user-named "obs/sample/<name>" /
// "obs/event/<name>" families are dynamic by design and stay out of the
// registry; their call sites carry //lint:dynamic-key.
const (
	ObsReqTraced  = "obs/req-traced"
	ObsReqStore   = "obs/req-store"
	ObsReqMerged  = "obs/req-merged"
	ObsReqLLCMiss = "obs/req-llc-miss"
	ObsReqOffload = "obs/req-offload"

	ObsReqLatencyNS        = "obs/req-latency-ns"
	ObsExposedDecryptNS    = "obs/exposed-decrypt-ns"
	ObsOverlappedDecryptNS = "obs/overlapped-decrypt-ns"

	ObsFlowL2Miss  = "obs/flow/l2-miss"
	ObsFlowLLCMiss = "obs/flow/llc-miss"

	ObsCtrSrcL2  = "obs/ctr-src/l2"
	ObsCtrSrcLLC = "obs/ctr-src/llc"
	ObsCtrSrcMC  = "obs/ctr-src/mc"

	ObsDecryptAtL2 = "obs/decrypt-at/l2"
	ObsDecryptAtMC = "obs/decrypt-at/mc"

	// Latency histograms (internal/metrics cells). The per-segment family
	// "obs/hist/seg/<segment>-ns" is dynamic like "obs/seg/<segment>-ns";
	// the two distributions every consumer reads by name are registered.
	ObsReqLatencyHist     = "obs/hist/req-latency-ns"
	ObsExposedDecryptHist = "obs/hist/exposed-decrypt-ns"
)

// Flight-recorder keys (internal/metrics.Recorder wired by tsim).
const (
	// FlightIntervals counts interval samples taken by the recorder.
	FlightIntervals = "flight/intervals"
	// FlightDropped counts intervals evicted from the bounded ring.
	FlightDropped = "flight/dropped"
)

// registry lists every key constant declared above, in declaration order.
// keys_test.go asserts the two stay in lockstep (and that each key obeys
// the naming rules); the statskey lint pass derives its registered set
// from the constant declarations themselves.
var registry = []string{
	FsimDataRead, FsimDataWrite, FsimL2DataMiss, FsimLLCDataMiss,
	FsimLLCDataAccess, FsimDRAMDataRead, FsimDRAMDataWrite,
	FsimDRAMCtrRead, FsimDRAMCtrWrite, FsimDRAMOvfL0, FsimDRAMOvfHi,
	FsimCtrMCHit, FsimCtrLLCHit, FsimCtrLLCMiss, FsimCtrLLCLookup,

	EmccSpecFetch, EmccCtrInserted, EmccUseless, EmccInvalidations,
	EmccDecryptAtL2, EmccDecryptAtMC, EmccOffloadQueue,
	EmccL2CtrHit, EmccL2CtrMiss, EmccDynamicOffMiss,

	BipBipDecryptOps, BipBipEncryptOps, InSRAMDecryptOps, InSRAMEncryptOps,

	TsimLoad, TsimStore, TsimL2DataMiss, TsimL2Prefetch,
	TsimLLCDataAccess, TsimLLCDataMiss,
	TsimCtrLLCLookup, TsimCtrLLCHit, TsimCtrLLCMiss,
	TsimCtrSpecLLCLookup, TsimCtrSpecLLCHit, TsimCtrSpecLLCMiss,
	TsimCtrMissOnchip, TsimMCDataFill, TsimMCRejectedWhileBlocked,
	TsimDRAMQueueFullRetry,
	TsimCryptoExposureL2PS, TsimCryptoExposureMCPS, TsimL2ReadMissLatencyPS,

	DramRowHit, DramRowClosed, DramRowConflict,
	DramQDelayDataRead, DramQDelayDataWrite,
	DramQDelayCtrRead, DramQDelayCtrWrite,
	DramQDelayOvfL0Read, DramQDelayOvfL0Write,
	DramQDelayOvfHiRead, DramQDelayOvfHiWrite,
	DramAccessDataRead, DramAccessDataWrite,
	DramAccessCtrRead, DramAccessCtrWrite,
	DramAccessOvfL0Read, DramAccessOvfL0Write,
	DramAccessOvfHiRead, DramAccessOvfHiWrite,

	OverflowEvents, OverflowBlocks, OverflowBlockedEvents,

	ObsReqTraced, ObsReqStore, ObsReqMerged, ObsReqLLCMiss, ObsReqOffload,
	ObsReqLatencyNS, ObsExposedDecryptNS, ObsOverlappedDecryptNS,
	ObsFlowL2Miss, ObsFlowLLCMiss,
	ObsCtrSrcL2, ObsCtrSrcLLC, ObsCtrSrcMC,
	ObsDecryptAtL2, ObsDecryptAtMC,
	ObsReqLatencyHist, ObsExposedDecryptHist,

	FlightIntervals, FlightDropped,
}

// Keys returns every registered stats key, in declaration order.
func Keys() []string {
	return append([]string(nil), registry...)
}
