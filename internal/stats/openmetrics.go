package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// WriteOpenMetrics renders the snapshot in the OpenMetrics / Prometheus
// text exposition format: counters as `<name>_total` counter families,
// accumulators as count/sum/min/max gauges, and histograms as cumulative
// `_bucket{le=...}` series over the shared metrics geometry. Metric names
// are the stats keys with '/' and '-' mapped to '_'. Output is sorted and
// byte-deterministic, ending with the `# EOF` terminator, so it can be
// golden-compared or served verbatim by a scrape endpoint.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder

	counterNames := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		counterNames = append(counterNames, k)
	}
	sort.Strings(counterNames)
	for _, k := range counterNames {
		n := openMetricsName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		fmt.Fprintf(&b, "%s_total %d\n", n, s.Counters[k])
	}

	accumNames := make([]string, 0, len(s.Accums))
	for k := range s.Accums {
		accumNames = append(accumNames, k)
	}
	sort.Strings(accumNames)
	for _, k := range accumNames {
		n := openMetricsName(k)
		a := s.Accums[k]
		fmt.Fprintf(&b, "# TYPE %s_count gauge\n%s_count %d\n", n, n, a.Count)
		fmt.Fprintf(&b, "# TYPE %s_mean gauge\n%s_mean %g\n", n, n, a.Mean)
		fmt.Fprintf(&b, "# TYPE %s_min gauge\n%s_min %g\n", n, n, a.Min)
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %g\n", n, n, a.Max)
	}

	histNames := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		histNames = append(histNames, k)
	}
	sort.Strings(histNames)
	for _, k := range histNames {
		n := openMetricsName(k)
		h := s.Hists[k]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			if c == 0 {
				continue
			}
			// Samples are integers, so the inclusive le bound of bucket i
			// is its exclusive upper bound minus one.
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, metrics.BucketUpper(i)-1, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_max %d\n", n, h.Max)
	}

	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// openMetricsName maps a stats key to a legal exposition metric name.
func openMetricsName(key string) string {
	return strings.NewReplacer("/", "_", "-", "_", ".", "_").Replace(key)
}
