package stats

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// Set must satisfy the flight-recorder source contract.
var _ metrics.Source = (*Set)(nil)

func TestVisitOrderIsSorted(t *testing.T) {
	s := NewSet()
	s.Add("z/one", 1)
	s.Add("a/two", 2)
	s.Add("m/zero", 0) // zero-valued: invisible
	s.HistRef("z/h").Observe(10)
	s.HistRef("a/h").Observe(20)
	s.HistRef("bound-empty") // never observed: invisible

	var counters, hists []string
	s.VisitCounters(func(name string, v int64) { counters = append(counters, name) })
	s.VisitHists(func(name string, h *metrics.Hist) { hists = append(hists, name) })
	if len(counters) != 2 || counters[0] != "a/two" || counters[1] != "z/one" {
		t.Fatalf("counter order: %v", counters)
	}
	if len(hists) != 2 || hists[0] != "a/h" || hists[1] != "z/h" {
		t.Fatalf("hist order: %v", hists)
	}
}

func TestFlightRecorderOverSet(t *testing.T) {
	s := NewSet()
	rec := metrics.NewRecorder(s, 8)
	s.Add("c", 3)
	s.HistRef("h").Observe(50)
	rec.Record(100)
	s.Add("c", 4)
	rec.Record(200)
	ivs := rec.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("%d intervals, want 2", len(ivs))
	}
	if ivs[0].Counters[0].Delta != 3 || ivs[1].Counters[0].Delta != 4 {
		t.Fatalf("counter deltas: %+v / %+v", ivs[0].Counters, ivs[1].Counters)
	}
	if len(ivs[0].Hists) != 1 || ivs[0].Hists[0].Sum != 50 {
		t.Fatalf("hist delta: %+v", ivs[0].Hists)
	}
	if len(ivs[1].Hists) != 0 {
		t.Fatalf("quiet hist interval not empty: %+v", ivs[1].Hists)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	s := NewSet()
	s.Add("tsim/load", 10)
	s.Observe("tsim/l2-read-miss-latency-ns", 120)
	s.HistRef("obs/hist/req-latency-ns").Observe(7)
	s.HistRef("obs/hist/req-latency-ns").Observe(100)

	var b bytes.Buffer
	if err := s.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tsim_load counter\n",
		"tsim_load_total 10\n",
		"tsim_l2_read_miss_latency_ns_count 1\n",
		"tsim_l2_read_miss_latency_ns_mean 120\n",
		"# TYPE obs_hist_req_latency_ns histogram\n",
		"obs_hist_req_latency_ns_bucket{le=\"7\"} 1\n",
		"obs_hist_req_latency_ns_bucket{le=\"+Inf\"} 2\n",
		"obs_hist_req_latency_ns_sum 107\n",
		"obs_hist_req_latency_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing OpenMetrics terminator:\n%s", out)
	}
	// The cumulative bucket for the second sample covers both.
	hi := metrics.BucketUpper(metrics.BucketIndex(100)) - 1
	if !strings.Contains(out, "obs_hist_req_latency_ns_bucket{le=\""+itoa(hi)+"\"} 2\n") {
		t.Fatalf("missing cumulative bucket at le=%d:\n%s", hi, out)
	}

	// Determinism: two renders are byte-identical.
	var b2 bytes.Buffer
	if err := s.Snapshot().WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("OpenMetrics output not deterministic")
	}
}

func itoa(v int64) string {
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkFlightRecordSet(b *testing.B) {
	s := NewSet()
	for i := 0; i < 60; i++ {
		s.Add(Keys()[i%len(Keys())], int64(i+1))
	}
	s.HistRef(ObsReqLatencyHist).Observe(100)
	s.HistRef(ObsExposedDecryptHist).Observe(40)
	rec := metrics.NewRecorder(s, 1024)
	bump := s.CounterRef(TsimLoad)
	h := s.HistRef(ObsReqLatencyHist)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*bump++
		h.Observe(int64(i) & 0x3ff)
		rec.Record(int64(i))
	}
}
