// Package addr defines the simulated physical address map. DRAM holds three
// kinds of 64 B blocks: application data, counter blocks, and integrity-tree
// nodes (counters-of-counters). Per-block MACs are co-located with data
// (Sec. V) and therefore need no address space or traffic of their own.
//
// Layout (block-granular, low to high):
//
//	[0, dataBlocks)                       data
//	[ctrBase, ctrBase+ctrBlocks)          level-0 counter blocks
//	[treeBase[1], ...)                    level-1 tree nodes, then level 2, …
//
// Each level-k node covers `coverage` level-(k-1) blocks, mirroring how
// split-counter designs scale tree arity with counter-block coverage
// (Sec. II "Improving Counter Hit Rate").
package addr

import "fmt"

// BlockShift is log2 of the 64 B block size.
const BlockShift = 6

// BlockBytes is the block size in bytes.
const BlockBytes = 1 << BlockShift

// Kind classifies a physical block.
type Kind int

const (
	// KindData is an application data block.
	KindData Kind = iota
	// KindCounter is a level-0 counter block (protects data).
	KindCounter
	// KindTree is an integrity-tree node (level >= 1).
	KindTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCounter:
		return "counter"
	case KindTree:
		return "tree"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Space is the physical address map for one secure-memory domain.
type Space struct {
	dataBlocks uint64
	coverage   uint64
	// levelBase[k] is the block index of the first level-k metadata
	// block; levelBase[0] is the counter region. levelCount[k] is the
	// number of blocks at that level. The last level has exactly one
	// block: the tree root (pinned on-chip, never fetched).
	levelBase  []uint64
	levelCount []uint64
	totalBlks  uint64
}

// NewSpace builds the map for dataBytes of protected memory with the given
// counter coverage (data blocks per counter block). coverage == 0 builds a
// data-only space (non-secure configuration).
func NewSpace(dataBytes int64, coverage int) *Space {
	if dataBytes <= 0 || dataBytes%BlockBytes != 0 {
		panic(fmt.Sprintf("addr: dataBytes must be a positive multiple of %d, got %d", BlockBytes, dataBytes))
	}
	s := &Space{dataBlocks: uint64(dataBytes) / BlockBytes}
	if coverage <= 0 {
		s.totalBlks = s.dataBlocks
		return s
	}
	s.coverage = uint64(coverage)
	next := s.dataBlocks
	count := s.dataBlocks
	for {
		count = (count + s.coverage - 1) / s.coverage
		s.levelBase = append(s.levelBase, next)
		s.levelCount = append(s.levelCount, count)
		next += count
		if count <= 1 {
			break
		}
	}
	s.totalBlks = next
	return s
}

// DataBlocks reports the number of data blocks.
func (s *Space) DataBlocks() uint64 { return s.dataBlocks }

// TotalBlocks reports data + metadata blocks.
func (s *Space) TotalBlocks() uint64 { return s.totalBlks }

// Levels reports the number of metadata levels including the root
// (0 for a non-secure space).
func (s *Space) Levels() int { return len(s.levelBase) }

// BlockOf converts a byte address to a block index.
func BlockOf(byteAddr uint64) uint64 { return byteAddr >> BlockShift }

// AddrOf converts a block index to its base byte address.
func AddrOf(block uint64) uint64 { return block << BlockShift }

// Kind classifies a block index.
func (s *Space) Kind(block uint64) Kind {
	switch {
	case block < s.dataBlocks:
		return KindData
	case len(s.levelBase) > 0 && block < s.levelBase[0]+s.levelCount[0]:
		return KindCounter
	default:
		return KindTree
	}
}

// Level reports the metadata level of a block: -1 for data, 0 for counter
// blocks, 1+ for tree nodes.
func (s *Space) Level(block uint64) int {
	if block < s.dataBlocks {
		return -1
	}
	for k := range s.levelBase {
		if block < s.levelBase[k]+s.levelCount[k] {
			return k
		}
	}
	panic(fmt.Sprintf("addr: block %#x outside space", block))
}

// CounterBlockOf reports the level-0 counter block protecting a data block.
func (s *Space) CounterBlockOf(dataBlock uint64) uint64 {
	if dataBlock >= s.dataBlocks {
		panic(fmt.Sprintf("addr: %#x is not a data block", dataBlock))
	}
	if s.coverage == 0 {
		panic("addr: space has no counters")
	}
	return s.levelBase[0] + dataBlock/s.coverage
}

// ParentOf reports the metadata block protecting the given block, and false
// when the block is the tree root (which is protected by on-chip state).
// Works for data blocks (returns the counter block) and metadata blocks
// (returns the next tree level).
func (s *Space) ParentOf(block uint64) (uint64, bool) {
	lvl := s.Level(block)
	if lvl == -1 {
		return s.CounterBlockOf(block), true
	}
	if lvl+1 >= len(s.levelBase) {
		return 0, false // root
	}
	idx := block - s.levelBase[lvl]
	return s.levelBase[lvl+1] + idx/s.coverage, true
}

// Ancestors returns the chain of metadata blocks protecting the given block,
// nearest first, excluding the block itself, up to and including the root.
func (s *Space) Ancestors(block uint64) []uint64 {
	var out []uint64
	cur := block
	for {
		p, ok := s.ParentOf(cur)
		if !ok {
			return out
		}
		out = append(out, p)
		cur = p
	}
}

// CoveredRange reports the range [first, first+n) of child blocks a
// metadata block protects: data blocks for a level-0 counter block, lower
// tree level otherwise. Used to size overflow re-encryption work.
func (s *Space) CoveredRange(metaBlock uint64) (first uint64, n uint64) {
	lvl := s.Level(metaBlock)
	if lvl < 0 {
		panic("addr: CoveredRange of a data block")
	}
	idx := metaBlock - s.levelBase[lvl]
	if lvl == 0 {
		first = idx * s.coverage
		n = s.coverage
		if first+n > s.dataBlocks {
			n = s.dataBlocks - first
		}
		return first, n
	}
	childBase := s.levelBase[lvl-1]
	childCount := s.levelCount[lvl-1]
	first = childBase + idx*s.coverage
	n = s.coverage
	if idx*s.coverage+n > childCount {
		n = childCount - idx*s.coverage
	}
	return first, n
}
