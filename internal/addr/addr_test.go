package addr

import (
	"testing"
	"testing/quick"
)

func TestSpaceGeometryMorphableCoverage(t *testing.T) {
	// 1 MiB of data, Morphable coverage 128: 16384 data blocks,
	// 128 counter blocks, 1 level-1 node (root).
	s := NewSpace(1<<20, 128)
	if got := s.DataBlocks(); got != 16384 {
		t.Fatalf("data blocks = %d, want 16384", got)
	}
	if got := s.Levels(); got != 2 {
		t.Fatalf("levels = %d, want 2 (counters + root)", got)
	}
	if got := s.TotalBlocks(); got != 16384+128+1 {
		t.Fatalf("total blocks = %d, want %d", got, 16384+128+1)
	}
}

func TestKindClassification(t *testing.T) {
	s := NewSpace(1<<20, 128)
	if k := s.Kind(0); k != KindData {
		t.Fatalf("block 0 kind = %v", k)
	}
	if k := s.Kind(16384); k != KindCounter {
		t.Fatalf("first counter block kind = %v", k)
	}
	if k := s.Kind(16384 + 128); k != KindTree {
		t.Fatalf("root kind = %v", k)
	}
}

func TestLevelOf(t *testing.T) {
	s := NewSpace(1<<20, 128)
	if l := s.Level(5); l != -1 {
		t.Fatalf("data level = %d", l)
	}
	if l := s.Level(16384); l != 0 {
		t.Fatalf("counter level = %d", l)
	}
	if l := s.Level(16384 + 128); l != 1 {
		t.Fatalf("root level = %d", l)
	}
}

func TestCounterBlockOf(t *testing.T) {
	s := NewSpace(1<<20, 128)
	if cb := s.CounterBlockOf(0); cb != 16384 {
		t.Fatalf("counter of block 0 = %d", cb)
	}
	if cb := s.CounterBlockOf(127); cb != 16384 {
		t.Fatal("blocks 0..127 must share one counter block")
	}
	if cb := s.CounterBlockOf(128); cb != 16385 {
		t.Fatalf("counter of block 128 = %d", cb)
	}
}

// TestParentChainTerminatesAtRoot: every block's ancestor chain must be
// strictly ascending and end at the root.
func TestParentChainTerminatesAtRoot(t *testing.T) {
	s := NewSpace(8<<20, 64) // multiple tree levels
	f := func(seed uint32) bool {
		blk := uint64(seed) % s.DataBlocks()
		anc := s.Ancestors(blk)
		if len(anc) != s.Levels() {
			return false
		}
		prev := blk
		for _, a := range anc {
			if a <= prev || s.Level(a) != s.Level(prev)+1 {
				return false
			}
			prev = a
		}
		_, more := s.ParentOf(anc[len(anc)-1])
		return !more // last ancestor is the root
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCoveredRangeRoundTrip: a metadata block covers exactly the children
// that name it as parent.
func TestCoveredRangeRoundTrip(t *testing.T) {
	s := NewSpace(4<<20, 128)
	for lvl0 := s.DataBlocks(); lvl0 < s.TotalBlocks(); lvl0++ {
		first, n := s.CoveredRange(lvl0)
		for i := uint64(0); i < n; i++ {
			p, ok := s.ParentOf(first + i)
			if !ok || p != lvl0 {
				t.Fatalf("child %d of %d has parent %d (ok=%v)", first+i, lvl0, p, ok)
			}
		}
	}
}

func TestBlockAddrConversions(t *testing.T) {
	if BlockOf(0x1040) != 0x41 {
		t.Fatal("BlockOf broken")
	}
	if AddrOf(0x41) != 0x1040 {
		t.Fatal("AddrOf broken")
	}
}

func TestNonSecureSpaceHasNoMetadata(t *testing.T) {
	s := NewSpace(1<<20, 0)
	if s.Levels() != 0 || s.TotalBlocks() != s.DataBlocks() {
		t.Fatal("coverage 0 should produce a data-only space")
	}
}

func TestDRAMMapperDeterministicAndInRange(t *testing.T) {
	m := NewDRAMMapper(2, 8, 16, 8<<10)
	f := func(block uint64) bool {
		l1 := m.Map(block)
		l2 := m.Map(block)
		if l1 != l2 {
			return false
		}
		return l1.Channel >= 0 && l1.Channel < 2 &&
			l1.Rank >= 0 && l1.Rank < 8 &&
			l1.Bank >= 0 && l1.Bank < 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMMapperChannelBits(t *testing.T) {
	// Paper Sec. VI-D: under 8 channels, address bits 8..10 select the
	// channel. Block index bits 2..4.
	m := NewDRAMMapper(8, 8, 16, 8<<10)
	for blk := uint64(0); blk < 64; blk++ {
		want := int((blk >> 2) & 7)
		if got := m.Map(blk).Channel; got != want {
			t.Fatalf("block %d channel = %d, want %d", blk, got, want)
		}
	}
}

func TestDRAMMapperSequentialBlocksShareRow(t *testing.T) {
	m := NewDRAMMapper(1, 8, 16, 8<<10)
	base := m.Map(0)
	for blk := uint64(1); blk < 8<<10/64; blk++ {
		l := m.Map(blk)
		if l.Row != base.Row || m.BankID(l) != m.BankID(base) {
			t.Fatalf("block %d left the row: %+v vs %+v", blk, l, base)
		}
	}
	if next := m.Map(8 << 10 / 64); m.BankID(next) == m.BankID(base) && next.Row == base.Row {
		t.Fatal("row boundary not respected")
	}
}

func TestDRAMMapperSpreadsBanks(t *testing.T) {
	m := NewDRAMMapper(1, 8, 16, 8<<10)
	seen := map[int]bool{}
	rowBlocks := uint64(8 << 10 / 64)
	for i := uint64(0); i < 128; i++ {
		seen[m.BankID(m.Map(i*rowBlocks))] = true
	}
	if len(seen) < 64 {
		t.Fatalf("rows map to only %d banks of 128", len(seen))
	}
}

func TestDRAMMapperRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two geometry did not panic")
		}
	}()
	NewDRAMMapper(3, 8, 16, 8<<10)
}
