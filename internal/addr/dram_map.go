package addr

import (
	"fmt"
	"math/bits"
)

// Loc identifies where a block lives in DRAM.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
}

// DRAMMapper translates physical block addresses to DRAM coordinates with
// the XOR-based (Skylake-like, Table I) mapping: channel bits come from
// address bits 8.. (the 3-bit channel ID of Sec. VI-D under 8 channels) and
// the bank index is permuted by XORing with low row bits, which spreads
// row-conflicting streams across banks.
type DRAMMapper struct {
	channels  int
	ranks     int
	banks     int
	rowBlocks uint64 // blocks per row

	chShift  uint // in block-index bits: byte bits 8.. == block bits 2..
	chBits   uint
	colBits  uint
	bankBits uint
}

// NewDRAMMapper builds a mapper. channels, ranks, banksPerRank and
// rowBytes/64 must all be powers of two.
func NewDRAMMapper(channels, ranks, banksPerRank int, rowBytes int64) *DRAMMapper {
	m := &DRAMMapper{
		channels:  channels,
		ranks:     ranks,
		banks:     banksPerRank,
		rowBlocks: uint64(rowBytes) / BlockBytes,
		chShift:   2, // byte address bits 8..: block index bits 2..
	}
	for _, v := range []int{channels, ranks, banksPerRank, int(m.rowBlocks)} {
		if v <= 0 || v&(v-1) != 0 {
			panic(fmt.Sprintf("addr: DRAM geometry values must be powers of two, got %d", v))
		}
	}
	m.chBits = uint(bits.TrailingZeros(uint(channels)))
	m.colBits = uint(bits.TrailingZeros64(m.rowBlocks))
	m.bankBits = uint(bits.TrailingZeros(uint(ranks * banksPerRank)))
	return m
}

// Channels reports the configured channel count.
func (m *DRAMMapper) Channels() int { return m.channels }

// BanksPerChannel reports ranks*banksPerRank.
func (m *DRAMMapper) BanksPerChannel() int { return m.ranks * m.banks }

// Map locates a block index in DRAM.
func (m *DRAMMapper) Map(block uint64) Loc {
	// Channel from block bits [chShift, chShift+chBits).
	ch := 0
	rest := block
	if m.chBits > 0 {
		ch = int((block >> m.chShift) & (uint64(m.channels) - 1))
		low := block & ((1 << m.chShift) - 1)
		high := block >> (m.chShift + m.chBits)
		rest = low | high<<m.chShift
	}
	// Column (within-row) bits are the lowest of the per-channel index so
	// sequential blocks stream within one row.
	row := rest >> (m.colBits + m.bankBits)
	bank := (rest >> m.colBits) & ((1 << m.bankBits) - 1)
	// Permutation-based bank indexing: XOR with the low row bits.
	bank ^= row & ((1 << m.bankBits) - 1)
	return Loc{
		Channel: ch,
		Rank:    int(bank) / m.banks,
		Bank:    int(bank) % m.banks,
		Row:     row,
	}
}

// BankID flattens (rank, bank) into one per-channel bank index.
func (m *DRAMMapper) BankID(l Loc) int { return l.Rank*m.banks + l.Bank }
