// Package dram is the DDR4 timing model (Table I): per-channel read/write
// queues, banks with open rows, FR-FCFS-capped scheduling, a 500 ns
// open-page timeout policy, write draining (writebacks are deprioritised
// relative to reads, Fig 22), and periodic refresh. Requests complete via
// callback; per-traffic-kind queuing delays and bus-busy time feed Figs 15
// and 22.
package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/inv"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TrafficKind classifies a DRAM request for the bandwidth/queuing-delay
// breakdowns of Figs 15 and 22.
type TrafficKind int

const (
	// TrafficData is a normal data block access.
	TrafficData TrafficKind = iota
	// TrafficCounter is a counter or tree block access.
	TrafficCounter
	// TrafficOverflowL0 is level-0 split-counter overflow re-encryption.
	TrafficOverflowL0
	// TrafficOverflowHi is level-1-and-above overflow re-encryption.
	TrafficOverflowHi
	numTrafficKinds
)

// String implements fmt.Stringer.
func (k TrafficKind) String() string {
	switch k {
	case TrafficData:
		return "data"
	case TrafficCounter:
		return "counter"
	case TrafficOverflowL0:
		return "overflow-l0"
	case TrafficOverflowHi:
		return "overflow-hi"
	}
	return fmt.Sprintf("TrafficKind(%d)", int(k))
}

// qdelayKeys and accessKeys map (traffic kind, direction) to the
// registered stats keys, so the hot path selects a key with two array
// indexes instead of formatting one per access. Index 0 is read, 1 write.
var (
	qdelayKeys = [numTrafficKinds][2]string{
		TrafficData:       {stats.DramQDelayDataRead, stats.DramQDelayDataWrite},
		TrafficCounter:    {stats.DramQDelayCtrRead, stats.DramQDelayCtrWrite},
		TrafficOverflowL0: {stats.DramQDelayOvfL0Read, stats.DramQDelayOvfL0Write},
		TrafficOverflowHi: {stats.DramQDelayOvfHiRead, stats.DramQDelayOvfHiWrite},
	}
	accessKeys = [numTrafficKinds][2]string{
		TrafficData:       {stats.DramAccessDataRead, stats.DramAccessDataWrite},
		TrafficCounter:    {stats.DramAccessCtrRead, stats.DramAccessCtrWrite},
		TrafficOverflowL0: {stats.DramAccessOvfL0Read, stats.DramAccessOvfL0Write},
		TrafficOverflowHi: {stats.DramAccessOvfHiRead, stats.DramAccessOvfHiWrite},
	}
)

// Request is one 64 B DRAM access. Callers may build one directly, or —
// on hot paths — obtain a pooled one from NewRequest, which the device
// recycles after the access completes.
type Request struct {
	Block uint64
	Write bool
	Kind  TrafficKind
	// Done is called when the access completes on the DRAM pins (data
	// available for reads, burst written for writes). May be nil.
	Done func(at sim.Time)
	// Obs, when non-nil, is the memory request's trace context: issue()
	// attributes the queue wait and bank service to it (internal/obs).
	Obs *obs.Req

	enqueued sim.Time
	finishAt sim.Time // completion time carried into the finish event
	owner    *DRAM    // non-nil for pooled requests (NewRequest)
	free     *Request // freelist link
	// dst is the accepted request's home channel, stamped by Enqueue so
	// the finish callback recovers it from the one event argument without
	// re-mapping.
	dst *channel
}

// DRAM is the multi-channel memory device.
type DRAM struct {
	eng    *sim.Engine
	st     *stats.Set
	rec    *inv.Recorder
	mapper *addr.DRAMMapper
	cfg    dramTiming
	chans  []*channel
	// sharded is set by Shard: channels then live in sim.Domains and the
	// hub side talks to them only through lookahead links.
	sharded bool
	// freeReq pools Requests handed out by NewRequest. Allocation and
	// recycling stay hub-side even when sharded (completions are delivered
	// back to the hub before recycling), so a plain freelist suffices and
	// stays deterministic.
	freeReq *Request
}

// sched is the scheduling seam a channel runs against: the device engine
// in the monolithic configuration, the channel's sim.Domain when sharded.
// Both satisfy it with pointer receivers bound once at construction, so
// the indirection allocates nothing on the event path.
type sched interface {
	Now() sim.Time
	AtCallLate(t sim.Time, key int32, fn func(any), arg any)
}

type dramTiming struct {
	tCL, tRCD, tRP sim.Time
	tRFC, tREFI    sim.Time
	burst          sim.Time
	rowTimeout     sim.Time
	readCap        int
	writeCap       int
	drainHigh      int
	drainLow       int
	frfcfsCap      int
}

// New builds the DRAM device from the system config.
func New(eng *sim.Engine, st *stats.Set, cfg *config.Config) *DRAM {
	m := addr.NewDRAMMapper(cfg.Channels, cfg.Ranks, cfg.BanksPerRank, cfg.RowBytes)
	d := &DRAM{
		eng:    eng,
		st:     st,
		rec:    eng.Recorder(),
		mapper: m,
		cfg: dramTiming{
			tCL: cfg.TCL, tRCD: cfg.TRCD, tRP: cfg.TRP,
			tRFC: cfg.TRFC, tREFI: cfg.TREFI,
			burst:      cfg.BurstLatency,
			rowTimeout: cfg.RowTimeout,
			readCap:    cfg.ReadQueueCap,
			writeCap:   cfg.WriteQueueCap,
			drainHigh:  int(float64(cfg.WriteQueueCap) * cfg.WriteDrainHigh),
			drainLow:   int(float64(cfg.WriteQueueCap) * cfg.WriteDrainLow),
			frfcfsCap:  cfg.FRFCFSCap,
		},
	}
	for i := 0; i < cfg.Channels; i++ {
		d.chans = append(d.chans, newChannel(d, i, m.BanksPerChannel()))
	}
	return d
}

// Mapper exposes the address-to-geometry mapping.
func (d *DRAM) Mapper() *addr.DRAMMapper { return d.mapper }

// NewRequest returns a pooled request. After a successful Enqueue the
// device owns it and recycles it once the access completes (after Done
// fires, or at issue when Done is nil). If Enqueue reports false the
// caller keeps ownership: retry Enqueue with the same request, or return
// it with Recycle.
func (d *DRAM) NewRequest(block uint64, write bool, kind TrafficKind, done func(at sim.Time), ob *obs.Req) *Request {
	r := d.freeReq
	if r == nil {
		r = &Request{owner: d}
	} else {
		d.freeReq = r.free
		r.free = nil
	}
	r.Block, r.Write, r.Kind, r.Done, r.Obs = block, write, kind, done, ob
	r.enqueued, r.finishAt = 0, 0
	return r
}

// Recycle returns an un-enqueued pooled request to the freelist. Only for
// requests from NewRequest whose Enqueue reported false and that the
// caller abandons.
func (d *DRAM) Recycle(r *Request) {
	if r.owner != d {
		return
	}
	r.Done, r.Obs = nil, nil
	r.free = d.freeReq
	d.freeReq = r
}

// QueuePressure reports the read-slot fill fraction of the block's home
// channel — the MC's overflow engine uses it to throttle re-encryption
// work (Sec. V) and the hierarchy uses it for backpressure. Both engines
// judge pressure by the outstanding-request count (accepted, not yet
// finished on the pins), which is a pure function of enqueue and finish
// events and therefore identical serial and sharded.
func (d *DRAM) QueuePressure(block uint64) float64 {
	ch := d.chans[d.mapper.Map(block).Channel]
	return float64(ch.occ[0]) / float64(d.cfg.readCap)
}

// Enqueue submits a request. It reports false when the target channel has
// no free slot; the caller must retry later (the MC models Sec. V's
// rejection of LLC requests during overflow pressure with this signal).
//
// Admission is judged against the channel's outstanding-request count: a
// slot is taken here and released by the finish event when the access
// completes on the pins. That count evolves identically in the serial and
// sharded engines (both see the same enqueue and finish instants), so
// admission decisions — including at the capacity boundary — are engine-
// independent. In sharded mode the accepted request is handed to the
// channel's domain over the zero-latency arrival link.
func (d *DRAM) Enqueue(r *Request) bool {
	loc := d.mapper.Map(r.Block)
	ch := d.chans[loc.Channel]
	dir := 0
	cap := d.cfg.readCap
	if r.Write {
		dir, cap = 1, d.cfg.writeCap
	}
	if ch.occ[dir] >= cap {
		return false
	}
	ch.occ[dir]++
	r.dst = ch
	// The queue append is deferred to a late-class arrival event keyed
	// above the channel's finish and kick keys. Enqueue's callers span
	// both event classes (ordinary retries, late-keyed seam deliveries),
	// so appending synchronously would make a same-instant schedule
	// pass's view of the queue depend on the caller's class — which the
	// cross-domain arrival link cannot reproduce. A fixed (time, key)
	// position for every arrival keeps the serial and sharded schedules
	// byte-identical regardless of who enqueues.
	if ch.dom != nil {
		ch.in.SendLate(d.eng.Now(), ch.arrivalKey(), dramArriveCB, r)
		return true
	}
	ch.es.AtCallLate(d.eng.Now(), ch.arrivalKey(), dramArriveCB, r)
	return true
}

// arrivalKey is the late-class tie key of the channel's deferred queue
// appends: after its finish events (key id) and scheduler passes (key
// channels+id) at the same instant. The whole DRAM key range stays below
// the tsim seam key space (see tsim's seamKeyBase).
func (ch *channel) arrivalKey() int32 { return int32(2*len(ch.d.chans) + ch.id) }

// dramArriveCB runs in the channel's scheduling context when an accepted
// request's arrival event fires: the deferred half of Enqueue.
func dramArriveCB(x any) {
	r := x.(*Request)
	ch := r.dst
	r.enqueued = ch.es.Now()
	if r.Write {
		ch.writeQ = append(ch.writeQ, r)
	} else {
		ch.readQ = append(ch.readQ, r)
	}
	ch.kick()
}

// dramFinishCB runs hub-side when an access completes on the pins: it
// releases the request's channel slot, recycles pooled requests (the
// freelist is hub-owned), and delivers Done. It is scheduled in the late
// class keyed by channel id in both engines — an explicit (time, key)
// position instead of scheduling history — which is what lets the
// barrier-synchronized sharded run reproduce the serial event order
// exactly. Pooled requests recycle before Done runs, so the callback may
// immediately re-enqueue.
func dramFinishCB(x any) {
	r := x.(*Request)
	ch := r.dst
	dir := 0
	if r.Write {
		dir = 1
	}
	ch.occ[dir]--
	if rec := ch.d.rec; rec.On() && ch.occ[dir] < 0 {
		rec.Failf("dram", "ch%d outstanding count went negative (dir %d)", ch.id, dir)
	}
	done, at := r.Done, r.finishAt
	if d := r.owner; d != nil {
		d.Recycle(r)
	}
	if done != nil {
		done(at)
	}
}

// QueueDepths reports the total outstanding read and write requests
// across channels (accepted, not yet finished on the pins) — the tracer's
// periodic sampler plots these over time.
func (d *DRAM) QueueDepths() (reads, writes int) {
	for _, ch := range d.chans {
		reads += ch.occ[0]
		writes += ch.occ[1]
	}
	return reads, writes
}

// BusyFraction reports the fraction of simulated time [since, now] the
// channel data bus spent on each traffic kind (Fig 15), summed over
// channels and normalised by per-channel peak.
func (d *DRAM) BusyFraction(since, now sim.Time) map[TrafficKind]float64 {
	out := make(map[TrafficKind]float64, numTrafficKinds)
	window := float64(now-since) * float64(len(d.chans))
	if window <= 0 {
		return out
	}
	for _, ch := range d.chans {
		for k, t := range ch.busyTime {
			out[TrafficKind(k)] += float64(t) / window
		}
	}
	return out
}

// Shard moves the device's channels off the hub engine into `domains`
// partitions of sh, assigned round-robin. Each domain gets one arrival
// link (hub → domain, zero latency: Enqueue hands off within the same
// picosecond) and one completion link (domain → hub, one burst of
// lookahead: the earliest a just-issued request can have any hub-visible
// effect). Channels in a domain share its links and record into private
// stats shards; call MergeShardStats once the run drains. Call between
// New and sh.Finalize, before any traffic.
func (d *DRAM) Shard(sh *sim.Shard, domains int) {
	if domains < 1 {
		domains = 1
	}
	if domains > len(d.chans) {
		domains = len(d.chans)
	}
	hub := sh.Hub()
	d.sharded = true
	doms := make([]*sim.Domain, domains)
	ins := make([]*sim.Link, domains)
	outs := make([]*sim.Link, domains)
	for i := range doms {
		doms[i] = sh.AddDomain(fmt.Sprintf("dram%d", i))
		ins[i] = sh.Connect(hub, doms[i], 0)
		outs[i] = sh.Connect(doms[i], hub, d.cfg.burst)
	}
	for i, ch := range d.chans {
		g := i % domains
		ch.dom, ch.in, ch.out = doms[g], ins[g], outs[g]
		ch.es = doms[g]
		ch.st = stats.NewSet()
	}
}

// MergeShardStats folds every channel's private stats shard into the
// device's shared set, in channel order. With whole-nanosecond queue
// delays the accumulator float sums are exact, so the merged totals are
// byte-identical to the monolithic device recording the same accesses.
func (d *DRAM) MergeShardStats() {
	if !d.sharded {
		return
	}
	for _, ch := range d.chans {
		d.st.Merge(ch.st)
	}
}

// channel owns one data bus and a bank array.
type channel struct {
	d  *DRAM
	id int
	// es is the channel's scheduler: the device engine in the monolithic
	// configuration, the channel's domain when sharded.
	es sched
	// st is the stats set issue() records into: the device's shared set
	// monolithically, a private shard set when the channel lives in a
	// domain (folded back in channel order by MergeShardStats).
	st *stats.Set
	// dom/in/out wire a sharded channel to its domain and the hub.
	dom *sim.Domain
	in  *sim.Link // hub → domain: request arrivals (zero latency)
	out *sim.Link // domain → hub: credits and completions (burst latency)
	// occ is the hub-side occupancy mirror ([read, write]) that Enqueue
	// admits against in sharded mode.
	occ     [2]int
	banks   []bank
	readQ   []*Request
	writeQ  []*Request
	busFree sim.Time
	// draining is the write-drain mode latch.
	draining bool
	// rowStreak counts consecutive row-hit issues for FR-FCFS capping.
	rowStreak   int
	streakBank  int
	nextRefresh sim.Time
	// pending marks whether a scheduler wakeup is already queued.
	pending  bool
	busyTime [numTrafficKinds]sim.Time
	hs       chanStats
}

// chanStats caches the stats cells issue() records into, replacing five
// map lookups per access with pointer bumps. Binding is lazy — at the
// first issue after construction — because the owning simulation may
// Reset the stats set at its warmup boundary (tsim does), which would
// strand cells bound any earlier; no DRAM traffic is issued during a
// functional warmup, so first-issue is always on the measured side.
type chanStats struct {
	bound                          bool
	rowHit, rowClosed, rowConflict *int64
	qdelay                         [numTrafficKinds][2]*stats.Accumulator
	qdhist                         [numTrafficKinds][2]*metrics.Hist
	access                         [numTrafficKinds][2]*int64
}

func (ch *channel) bindHot() {
	st := ch.st
	ch.hs.rowHit = st.CounterRef(stats.DramRowHit)
	ch.hs.rowClosed = st.CounterRef(stats.DramRowClosed)
	ch.hs.rowConflict = st.CounterRef(stats.DramRowConflict)
	for k := 0; k < int(numTrafficKinds); k++ {
		for dir := 0; dir < 2; dir++ {
			qname := qdelayKeys[k][dir]
			ch.hs.qdelay[k][dir] = st.AccumRef(qname)                //lint:dynamic-key selected from the registered qdelayKeys table
			ch.hs.qdhist[k][dir] = st.HistRef(qname)                 //lint:dynamic-key selected from the registered qdelayKeys table
			ch.hs.access[k][dir] = st.CounterRef(accessKeys[k][dir]) //lint:dynamic-key selected from the registered accessKeys table
		}
	}
	ch.hs.bound = true
}

type bank struct {
	openRow    uint64
	rowValid   bool
	lastAccess sim.Time
	freeAt     sim.Time
}

func newChannel(d *DRAM, id, banks int) *channel {
	return &channel{
		d:           d,
		id:          id,
		es:          d.eng,
		st:          d.st,
		banks:       make([]bank, banks),
		nextRefresh: d.cfg.tREFI,
		streakBank:  -1,
	}
}

// kick ensures a scheduling pass is queued at time `at` (or now).
func (ch *channel) kick() { ch.kickAt(ch.es.Now()) }

func (ch *channel) kickAt(at sim.Time) {
	if ch.pending {
		return
	}
	ch.pending = true
	if now := ch.es.Now(); at < now {
		at = now
	}
	// The scheduler pass runs in the late class so it observes a
	// timestamp's complete arrival state: its decisions then do not depend
	// on how enqueues at the same instant interleaved with the kick — the
	// property that keeps serial and sharded runs identical. Keys above the
	// channel range put kicks after every same-time finish (whose Done may
	// re-enqueue), mirroring the sharded engine where hub finishes always
	// complete before a domain's events at the same timestamp run.
	ch.es.AtCallLate(at, int32(len(ch.d.chans)+ch.id), channelScheduleCB, ch)
}

// channelScheduleCB is the prebound form of channel.schedule: taking the
// method value ch.schedule allocated once per wakeup.
func channelScheduleCB(x any) { x.(*channel).schedule() }

// schedule issues at most one request whose bank is ready, then re-arms.
// Banks overlap their ACT/CAS latencies; only the data-bus bursts
// serialise, so issuing one request per burst slot sustains the channel's
// peak bandwidth.
func (ch *channel) schedule() {
	ch.pending = false
	now := ch.es.Now()
	// Lazy refresh: when the refresh deadline has passed, stall the
	// whole channel for tRFC.
	if now >= ch.nextRefresh {
		stallEnd := now + ch.d.cfg.tRFC
		if ch.busFree < stallEnd {
			ch.busFree = stallEnd
		}
		for i := range ch.banks {
			if ch.banks[i].freeAt < stallEnd {
				ch.banks[i].freeAt = stallEnd
			}
			ch.banks[i].rowValid = false // refresh closes rows
		}
		// Refreshes that fell due while the channel idled happened
		// without contention; charge one tRFC and catch the
		// schedule up so a long-idle channel does not stack stalls.
		for ch.nextRefresh <= now {
			ch.nextRefresh += ch.d.cfg.tREFI
		}
		ch.kickAt(stallEnd)
		return
	}

	q := ch.pickQueue()
	if q == nil {
		return // idle: Enqueue will kick us
	}
	idx, ready := ch.pickRequest(*q)
	if !ready {
		// Every queued request's bank is busy: wake when the earliest
		// frees (or the next refresh, whichever first).
		wake := ch.nextRefresh
		for _, r := range *q {
			loc := ch.d.mapper.Map(r.Block)
			if f := ch.banks[ch.d.mapper.BankID(loc)].freeAt; f < wake {
				wake = f
			}
		}
		ch.kickAt(wake)
		return
	}
	r := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	ch.issue(r)
	if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
		// One burst per slot caps the issue rate at peak bandwidth.
		ch.kickAt(now + ch.d.cfg.burst)
	}
}

// pickQueue applies the write-drain policy: serve reads unless the write
// queue is above the high watermark (enter drain) or reads are empty;
// leave drain below the low watermark.
func (ch *channel) pickQueue() *[]*Request {
	if ch.draining && len(ch.writeQ) <= ch.d.cfg.drainLow {
		ch.draining = false
	}
	if !ch.draining && len(ch.writeQ) >= ch.d.cfg.drainHigh {
		ch.draining = true
	}
	switch {
	case ch.draining && len(ch.writeQ) > 0:
		return &ch.writeQ
	case len(ch.readQ) > 0:
		return &ch.readQ
	case len(ch.writeQ) > 0:
		return &ch.writeQ
	}
	return nil
}

// pickRequest implements FR-FCFS-capped over bank-ready requests: first
// ready row hit, unless that bank's hit streak exceeded the cap; otherwise
// the oldest ready request. ready=false when every request's bank is busy.
func (ch *channel) pickRequest(q []*Request) (int, bool) {
	now := ch.es.Now()
	oldest := -1
	for i, r := range q {
		loc := ch.d.mapper.Map(r.Block)
		bankID := ch.d.mapper.BankID(loc)
		b := &ch.banks[bankID]
		if b.freeAt > now {
			continue
		}
		if ch.rowHit(b, loc.Row, now) {
			if !(ch.streakBank == bankID && ch.rowStreak >= ch.d.cfg.frfcfsCap) {
				return i, true
			}
		}
		if oldest < 0 || r.enqueued < q[oldest].enqueued {
			oldest = i
		}
	}
	return oldest, oldest >= 0
}

func (ch *channel) rowHit(b *bank, row uint64, now sim.Time) bool {
	return b.rowValid && b.openRow == row && now-b.lastAccess <= ch.d.cfg.rowTimeout
}

// issue performs the access timing for one request.
func (ch *channel) issue(r *Request) {
	if !ch.hs.bound {
		ch.bindHot()
	}
	now := ch.es.Now()
	loc := ch.d.mapper.Map(r.Block)
	bankID := ch.d.mapper.BankID(loc)
	b := &ch.banks[bankID]

	start := now
	var access sim.Time
	switch {
	case ch.rowHit(b, loc.Row, now):
		access = ch.d.cfg.tCL
		*ch.hs.rowHit++
		if ch.streakBank == bankID {
			ch.rowStreak++
		} else {
			ch.streakBank, ch.rowStreak = bankID, 1
		}
	case !b.rowValid || now-b.lastAccess > ch.d.cfg.rowTimeout:
		// Row closed by the timeout policy (or never opened):
		// activate + CAS.
		access = ch.d.cfg.tRCD + ch.d.cfg.tCL
		*ch.hs.rowClosed++
		ch.streakBank, ch.rowStreak = bankID, 0
	default:
		// Row conflict: precharge + activate + CAS.
		access = ch.d.cfg.tRP + ch.d.cfg.tRCD + ch.d.cfg.tCL
		*ch.hs.rowConflict++
		ch.streakBank, ch.rowStreak = bankID, 0
	}
	dataAt := start + access
	// The data bus serialises bursts across banks.
	if dataAt < ch.busFree {
		dataAt = ch.busFree
	}
	finish := dataAt + ch.d.cfg.burst

	if rec := ch.d.rec; rec.On() {
		if start < r.enqueued {
			rec.Failf("dram", "ch%d request issued at %d ps before its enqueue at %d ps", ch.id, start, r.enqueued)
		}
		if finish <= start {
			rec.Failf("dram", "ch%d access finishes at %d ps, not after its start at %d ps", ch.id, finish, start)
		}
		if finish < ch.busFree {
			rec.Failf("dram", "ch%d data bus moved backwards: finish %d ps < busFree %d ps", ch.id, finish, ch.busFree)
		}
		if finish < b.freeAt {
			rec.Failf("dram", "ch%d bank %d freeAt moved backwards: %d ps -> %d ps", ch.id, bankID, b.freeAt, finish)
		}
	}

	b.openRow, b.rowValid = loc.Row, true
	b.lastAccess = finish
	b.freeAt = finish
	ch.busFree = finish
	ch.busyTime[r.Kind] += ch.d.cfg.burst

	dir := 0
	if r.Write {
		dir = 1
	}
	// Whole-nanosecond queue delays keep accumulator sums exact in
	// float64 (integer-valued additions are associative), so per-channel
	// shard sets merge to byte-identical totals regardless of how issue
	// order interleaved across channels.
	qdelay := float64(int64(start-r.enqueued) / 1000)
	ch.hs.qdelay[r.Kind][dir].Observe(qdelay)
	// Per-request delay distribution (shared internal/metrics geometry)
	// for the stochastic-dominance check and the flight recorder: means
	// can mask tail regressions, the CDF cannot.
	ch.hs.qdhist[r.Kind][dir].Observe(int64(start-r.enqueued) / 1000)
	*ch.hs.access[r.Kind][dir]++
	r.Obs.AddSpan(obs.SegDRAMQueue, r.enqueued, start)
	r.Obs.AddSpan(obs.SegDRAMService, start, finish)

	// One finish event per access, hub-side, late class keyed by channel:
	// it releases the channel slot, recycles, and delivers Done. finish is
	// always > now + burst (access latency precedes the burst), so the
	// completion link's one-burst lookahead is respected.
	r.finishAt = finish
	if ch.dom != nil {
		ch.out.SendLate(finish, int32(ch.id), dramFinishCB, r)
		return
	}
	ch.es.AtCallLate(finish, int32(ch.id), dramFinishCB, r)
}
