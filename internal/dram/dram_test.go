package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func testDRAM() (*sim.Engine, *stats.Set, *DRAM, *config.Config) {
	eng := sim.New()
	st := stats.NewSet()
	cfg := config.Default()
	d := New(eng, st, &cfg)
	return eng, st, d, &cfg
}

// read issues a read and returns its completion time after draining.
func read(t *testing.T, eng *sim.Engine, d *DRAM, block uint64, at sim.Time) sim.Time {
	t.Helper()
	var done sim.Time
	eng.At(at, func() {
		ok := d.Enqueue(&Request{Block: block, Kind: TrafficData, Done: func(c sim.Time) { done = c }})
		if !ok {
			t.Fatal("enqueue rejected")
		}
	})
	eng.Run()
	if done == 0 {
		t.Fatal("read never completed")
	}
	return done
}

func TestColdReadPaysActivatePlusCAS(t *testing.T) {
	eng, _, d, cfg := testDRAM()
	done := read(t, eng, d, 0, 0)
	want := cfg.TRCD + cfg.TCL + cfg.BurstLatency
	if done != want {
		t.Fatalf("cold read = %v ns, want %v ns", done.Nanoseconds(), want.Nanoseconds())
	}
}

func TestRowHitIsFaster(t *testing.T) {
	eng, _, d, cfg := testDRAM()
	first := read(t, eng, d, 0, 0)
	second := read(t, eng, d, 1, first+1) // same row
	lat := second - (first + 1)
	want := cfg.TCL + cfg.BurstLatency
	if lat != want {
		t.Fatalf("row hit = %v ns, want %v ns", lat.Nanoseconds(), want.Nanoseconds())
	}
}

func TestRowTimeoutClosesRow(t *testing.T) {
	eng, _, d, cfg := testDRAM()
	first := read(t, eng, d, 0, 0)
	// Well past the 500 ns timeout: row closed, but no conflict precharge.
	second := read(t, eng, d, 1, first+cfg.RowTimeout*3)
	lat := second - (first + cfg.RowTimeout*3)
	want := cfg.TRCD + cfg.TCL + cfg.BurstLatency
	if lat != want {
		t.Fatalf("post-timeout read = %v ns, want %v ns", lat.Nanoseconds(), want.Nanoseconds())
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	eng, _, d, cfg := testDRAM()
	// Find a second block on the same bank but a different row.
	base := d.Mapper().Map(0)
	conflict := uint64(0)
	for b := uint64(1); b < 1<<22; b++ {
		l := d.Mapper().Map(b)
		if d.Mapper().BankID(l) == d.Mapper().BankID(base) && l.Channel == base.Channel && l.Row != base.Row {
			conflict = b
			break
		}
	}
	if conflict == 0 {
		t.Fatal("no conflicting block found")
	}
	first := read(t, eng, d, 0, 0)
	second := read(t, eng, d, conflict, first+1)
	lat := second - (first + 1)
	want := cfg.TRP + cfg.TRCD + cfg.TCL + cfg.BurstLatency
	if lat != want {
		t.Fatalf("conflict read = %v ns, want %v ns", lat.Nanoseconds(), want.Nanoseconds())
	}
}

func TestBankParallelismBeatsSerialisation(t *testing.T) {
	eng, _, d, _ := testDRAM()
	// 16 cold reads to different banks: with overlapped banks the last
	// completion should be far sooner than 16 serial accesses.
	rowBlocks := uint64(8 << 10 / 64)
	var last sim.Time
	n := 0
	eng.At(0, func() {
		for i := uint64(0); i < 16; i++ {
			d.Enqueue(&Request{Block: i * rowBlocks * 7, Kind: TrafficData, Done: func(c sim.Time) {
				n++
				if c > last {
					last = c
				}
			}})
		}
	})
	eng.Run()
	if n != 16 {
		t.Fatalf("completed %d reads, want 16", n)
	}
	serial := 16 * sim.NS(30)
	if last >= serial {
		t.Fatalf("16 overlapped reads took %v ns (serial would be %v ns)", last.Nanoseconds(), serial.Nanoseconds())
	}
}

func TestWritesAreDeprioritised(t *testing.T) {
	eng, st, d, _ := testDRAM()
	eng.At(0, func() {
		for i := uint64(0); i < 20; i++ {
			d.Enqueue(&Request{Block: i, Write: true, Kind: TrafficData})
			d.Enqueue(&Request{Block: 1 << 20 / 64 * i, Kind: TrafficData})
		}
	})
	eng.Run()
	rd := st.Accum("dram/qdelay/data/read").Mean()
	wr := st.Accum("dram/qdelay/data/write").Mean()
	if wr <= rd {
		t.Fatalf("write qdelay %.1f <= read qdelay %.1f; writes should wait", wr, rd)
	}
}

func TestQueueCapRejects(t *testing.T) {
	eng, _, d, cfg := testDRAM()
	rejected := false
	eng.At(0, func() {
		for i := 0; i < cfg.ReadQueueCap+10; i++ {
			if !d.Enqueue(&Request{Block: uint64(i), Kind: TrafficData}) {
				rejected = true
			}
		}
	})
	eng.RunUntil(1) // only the enqueue event
	if !rejected {
		t.Fatal("overfull read queue accepted everything")
	}
	eng.Run()
}

func TestBusyFractionAccumulates(t *testing.T) {
	eng, _, d, _ := testDRAM()
	end := read(t, eng, d, 0, 0)
	bf := d.BusyFraction(0, end)
	if bf[TrafficData] <= 0 {
		t.Fatal("no data bus time recorded")
	}
	if bf[TrafficCounter] != 0 {
		t.Fatal("phantom counter traffic")
	}
}

func TestQueuePressure(t *testing.T) {
	eng, _, d, _ := testDRAM()
	if d.QueuePressure(0) != 0 {
		t.Fatal("fresh DRAM reports pressure")
	}
	eng.At(0, func() {
		for i := 0; i < 64; i++ {
			d.Enqueue(&Request{Block: uint64(i), Kind: TrafficData})
		}
		if d.QueuePressure(0) == 0 {
			t.Error("pressure not visible while queued")
		}
	})
	eng.Run()
}

func TestRefreshEventuallyStallsBank(t *testing.T) {
	eng, st, d, cfg := testDRAM()
	// Issue reads spread over several refresh intervals; the run must
	// complete and the clock must pass multiple tREFI periods.
	n := 0
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * cfg.TREFI
		eng.At(at, func() {
			d.Enqueue(&Request{Block: 0, Kind: TrafficData, Done: func(sim.Time) { n++ }})
		})
	}
	eng.Run()
	if n != 10 {
		t.Fatalf("completed %d reads across refreshes, want 10", n)
	}
	_ = st
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng, _, d, _ := testDRAM()
		var last sim.Time
		eng.At(0, func() {
			for i := uint64(0); i < 50; i++ {
				d.Enqueue(&Request{Block: i * 977, Kind: TrafficData, Done: func(c sim.Time) { last = c }})
			}
		})
		eng.Run()
		return last
	}
	if run() != run() {
		t.Fatal("identical schedules diverged")
	}
}

func TestRowStateAccounting(t *testing.T) {
	eng, st, d, cfg := testDRAM()
	first := read(t, eng, d, 0, 0)
	second := read(t, eng, d, 1, first+1)       // hit
	read(t, eng, d, 2, second+cfg.RowTimeout*3) // closed by timeout
	if st.Counter("dram/row-hit") != 1 {
		t.Fatalf("row hits = %d, want 1", st.Counter("dram/row-hit"))
	}
	if st.Counter("dram/row-closed") != 2 { // cold open + post-timeout
		t.Fatalf("row closed = %d, want 2", st.Counter("dram/row-closed"))
	}
}
