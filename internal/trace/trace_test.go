package trace

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/fsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "demo", 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	in := []struct {
		core int
		a    workload.Access
	}{
		{0, workload.Access{Addr: 0x1000, NonMem: 3}},
		{1, workload.Access{Addr: 0x2000, Write: true, NonMem: 1}},
		{0, workload.Access{Addr: 0x1040, Dep: true, NonMem: 0}},
		{1, workload.Access{Addr: 0x1fc0, NonMem: 7}},
	}
	for _, r := range in {
		if err := w.Append(r.core, r.a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.Cores != 2 || tr.Footprint != 1<<20 {
		t.Fatalf("header = %+v", tr)
	}
	if len(tr.PerCore[0]) != 2 || len(tr.PerCore[1]) != 2 {
		t.Fatalf("per-core counts: %d/%d", len(tr.PerCore[0]), len(tr.PerCore[1]))
	}
	if tr.PerCore[0][1] != in[2].a {
		t.Fatalf("record mismatch: %+v vs %+v", tr.PerCore[0][1], in[2].a)
	}
	if tr.PerCore[1][1] != in[3].a {
		t.Fatalf("record mismatch: %+v vs %+v", tr.PerCore[1][1], in[3].a)
	}
}

func TestRecordMatchesGenerator(t *testing.T) {
	var buf bytes.Buffer
	const refs = 4000
	n, err := Record(&buf, "canneal", 2, 7, refs, workload.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if n != refs {
		t.Fatalf("recorded %d refs, want %d", n, refs)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replay must equal a fresh generator with the same seed.
	fresh, _ := workload.NewSet("canneal", 2, 7, workload.TestScale())
	gens, err := tr.Generators()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < refs/2; i++ {
		for c := 0; c < 2; c++ {
			want := fresh[c].Next()
			got := gens[c].Next()
			if got != want {
				t.Fatalf("core %d ref %d: %+v != %+v", c, i, got, want)
			}
		}
	}
}

func TestReplayLoops(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "loop", 1, 1<<12)
	w.Append(0, workload.Access{Addr: 0x40})
	w.Append(0, workload.Access{Addr: 0x80})
	w.Close()
	tr, _ := Read(&buf)
	gens, _ := tr.Generators()
	a1 := gens[0].Next()
	gens[0].Next()
	a3 := gens[0].Next() // wrapped
	if a1 != a3 {
		t.Fatalf("replay did not loop: %+v vs %+v", a1, a3)
	}
}

func TestTraceDrivesFunctionalSim(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, "canneal", 4, 1, 40_000, workload.TestScale()); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := tr.Generators()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	s, err := fsim.New(&cfg, fsim.Options{
		Cores: 4, Refs: 40_000,
		Generators: gens, DataBytes: tr.Footprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Stats().Counter(stats.FsimDataRead) == 0 {
		t.Fatal("trace replay produced no accesses")
	}

	// The replay must match the synthetic original exactly.
	direct, err := fsim.New(&cfg, fsim.Options{
		Benchmark: "canneal", Cores: 4, Seed: 1, Refs: 40_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	direct.Run()
	for _, m := range []string{stats.FsimL2DataMiss, stats.FsimDRAMDataRead, stats.FsimDRAMCtrRead} {
		if a, b := s.Stats().Counter(m), direct.Stats().Counter(m); a != b {
			t.Fatalf("%s: trace %d != synthetic %d", m, a, b)
		}
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, "x", 0, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
	w, _ := NewWriter(&buf, "x", 1, 1)
	if err := w.Append(5, workload.Access{}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	w.Close()
	if err := w.Append(0, workload.Access{}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 1, 1<<12)
	w.Append(0, workload.Access{Addr: 0x40, NonMem: 3})
	w.Close()
	full := buf.Bytes()
	// Chop mid-record (after magic+header): decoding must error, not
	// hang or fabricate records.
	for cut := len(full) - 1; cut > len(full)-3; cut-- {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRecordUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, "nosuch", 2, 1, 100, workload.TestScale()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestEmptyCoreStreamCannotReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x", 2, 1<<12)
	w.Append(0, workload.Access{Addr: 0x40})
	w.Close() // core 1 never got an access
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Generators(); err == nil {
		t.Fatal("empty core stream replayed")
	}
}
