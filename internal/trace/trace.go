// Package trace records and replays memory-reference traces. Synthetic
// workloads are deterministic, but a recorded trace pins an experiment's
// input completely — it can be shared, diffed, and replayed on any
// simulator configuration (the Pin-trace workflow of the paper's Sec. III).
//
// The format is a compact binary stream: a header (magic, version,
// benchmark name, core count, footprint) followed by one varint-encoded
// record per access. Addresses are zigzag-delta encoded per core, so
// streaming workloads cost ~3 bytes per reference.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/workload"
)

const (
	magic   = "EMCCTRC1"
	version = 1
)

// flag bits in each record.
const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// Writer streams accesses into a trace.
type Writer struct {
	w        *bufio.Writer
	cores    int
	lastAddr []uint64
	count    int64
	closed   bool
}

// NewWriter writes the header for a trace of `cores` interleaved streams.
func NewWriter(w io.Writer, name string, cores int, footprint int64) (*Writer, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("trace: cores must be positive, got %d", cores)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, version)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(cores))
	hdr = binary.AppendUvarint(hdr, uint64(footprint))
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cores: cores, lastAddr: make([]uint64, cores)}, nil
}

// Append records one access of core `core`.
func (t *Writer) Append(core int, a workload.Access) error {
	if t.closed {
		return errors.New("trace: writer closed")
	}
	if core < 0 || core >= t.cores {
		return fmt.Errorf("trace: core %d out of range [0,%d)", core, t.cores)
	}
	var rec []byte
	rec = binary.AppendUvarint(rec, uint64(core))
	var flags byte
	if a.Write {
		flags |= flagWrite
	}
	if a.Dep {
		flags |= flagDep
	}
	rec = append(rec, flags)
	delta := int64(a.Addr) - int64(t.lastAddr[core])
	rec = binary.AppendVarint(rec, delta)
	rec = binary.AppendUvarint(rec, uint64(a.NonMem))
	t.lastAddr[core] = a.Addr
	t.count++
	_, err := t.w.Write(rec)
	return err
}

// Count reports records appended so far.
func (t *Writer) Count() int64 { return t.count }

// Close flushes the trace. The Writer is unusable afterwards.
func (t *Writer) Close() error {
	t.closed = true
	return t.w.Flush()
}

// Trace is a fully loaded trace.
type Trace struct {
	Name      string
	Cores     int
	Footprint int64
	// PerCore holds each core's access stream.
	PerCore [][]workload.Access
}

// Read loads a complete trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	cores, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if cores == 0 || cores > 1024 {
		return nil, fmt.Errorf("trace: unreasonable core count %d", cores)
	}
	footprint, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		Name:      string(nameBuf),
		Cores:     int(cores),
		Footprint: int64(footprint),
		PerCore:   make([][]workload.Access, cores),
	}
	last := make([]uint64, cores)
	for {
		core, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		if core >= cores {
			return nil, fmt.Errorf("trace: core %d out of range", core)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		nonMem, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		addr := uint64(int64(last[core]) + delta)
		last[core] = addr
		tr.PerCore[core] = append(tr.PerCore[core], workload.Access{
			Addr:   addr,
			Write:  flags&flagWrite != 0,
			Dep:    flags&flagDep != 0,
			NonMem: int(nonMem),
		})
	}
}

// Generators returns one replaying generator per core. Streams loop when
// exhausted (matching the synthetic generators' unbounded contract); a
// trace with an empty per-core stream cannot be replayed.
func (t *Trace) Generators() ([]workload.Generator, error) {
	gens := make([]workload.Generator, t.Cores)
	for c := range gens {
		if len(t.PerCore[c]) == 0 {
			return nil, fmt.Errorf("trace: core %d has no accesses", c)
		}
		gens[c] = &replayer{name: t.Name, accesses: t.PerCore[c], footprint: t.Footprint}
	}
	return gens, nil
}

// replayer is a looping workload.Generator over a recorded stream.
type replayer struct {
	name      string
	accesses  []workload.Access
	footprint int64
	pos       int
}

func (r *replayer) Name() string     { return r.name }
func (r *replayer) Footprint() int64 { return r.footprint }

func (r *replayer) Next() workload.Access {
	a := r.accesses[r.pos]
	r.pos++
	if r.pos == len(r.accesses) {
		r.pos = 0
	}
	return a
}

// Record captures `refs` references (round-robin across cores) from a
// synthetic benchmark into w.
func Record(w io.Writer, bench string, cores int, seed uint64, refs int64, sc workload.Scale) (int64, error) {
	gens, err := workload.NewSet(bench, cores, seed, sc)
	if err != nil {
		return 0, err
	}
	space, err := workload.SpaceBytes(bench, cores, sc)
	if err != nil {
		return 0, err
	}
	tw, err := NewWriter(w, bench, cores, space)
	if err != nil {
		return 0, err
	}
	perCore := refs / int64(cores)
	for i := int64(0); i < perCore; i++ {
		for c := range gens {
			if err := tw.Append(c, gens[c].Next()); err != nil {
				return tw.Count(), err
			}
		}
	}
	return tw.Count(), tw.Close()
}
