package trace

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzRead feeds arbitrary bytes to the trace parser: it must reject or
// accept cleanly, never panic, never produce out-of-range records.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "seed", 2, 1<<16)
	w.Append(0, workload.Access{Addr: 0x1000, NonMem: 2})
	w.Append(1, workload.Access{Addr: 0x2000, Write: true})
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("EMCCTRC1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.Cores <= 0 || tr.Cores > 1024 {
			t.Fatalf("accepted unreasonable core count %d", tr.Cores)
		}
		for c, pc := range tr.PerCore {
			if c >= tr.Cores {
				t.Fatal("per-core slice larger than core count")
			}
			_ = pc
		}
	})
}
