package crypto

import (
	"bytes"
	"testing"
)

// FuzzEngineRoundTrip: for arbitrary plaintext/address/counter, encryption
// must invert and the MAC must verify — and stop verifying under any
// single-byte corruption the fuzzer finds.
func FuzzEngineRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"), uint64(0x1000), uint64(7), uint8(0))
	f.Add(bytes.Repeat([]byte{0}, 64), uint64(0), uint64(0), uint8(63))
	e := NewEngine([]byte("fuzzing master k"))
	f.Fuzz(func(t *testing.T, plain []byte, a uint64, counter uint64, corrupt uint8) {
		if len(plain) < BlockBytes {
			return
		}
		plain = plain[:BlockBytes]
		var ct, pt [BlockBytes]byte
		e.Encrypt(ct[:], plain, a, counter)
		e.Decrypt(pt[:], ct[:], a, counter)
		if !bytes.Equal(pt[:], plain) {
			t.Fatal("round trip failed")
		}
		mac := e.MAC(ct[:], a, counter)
		if !e.Verify(ct[:], a, counter, mac) {
			t.Fatal("fresh MAC rejected")
		}
		mut := ct
		mut[int(corrupt)%BlockBytes] ^= 0x80
		if e.Verify(mut[:], a, counter, mac) {
			t.Fatalf("corruption at byte %d accepted", int(corrupt)%BlockBytes)
		}
	})
}

// FuzzAESKnownInverse: Decrypt(Encrypt(x)) == x for arbitrary blocks.
func FuzzAESKnownInverse(f *testing.F) {
	f.Add([]byte("16 bytes please!"))
	a := NewAES([]byte("fuzz-fuzz-fuzz-!"))
	f.Fuzz(func(t *testing.T, block []byte) {
		if len(block) < 16 {
			return
		}
		block = block[:16]
		var ct, pt [16]byte
		a.Encrypt(ct[:], block)
		a.Decrypt(pt[:], ct[:])
		if !bytes.Equal(pt[:], block) {
			t.Fatal("AES not invertible")
		}
	})
}
