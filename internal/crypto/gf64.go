package crypto

import "math/bits"

// GF(2^64) arithmetic for the MAC dot product of Figure 1b. Elements are
// uint64 polynomials; multiplication reduces modulo the standard primitive
// polynomial x^64 + x^4 + x^3 + x + 1 (0x1B tail).

// gf64ReductionTail is the low part of the reduction polynomial.
const gf64ReductionTail uint64 = 0x1b

// GF64Mul multiplies two GF(2^64) elements.
func GF64Mul(a, b uint64) uint64 {
	// Carry-less multiply into a 128-bit product, then reduce. The
	// product is built 1 bit of b at a time; 64 iterations on uint64s is
	// plenty fast for the functional layer.
	var hi, lo uint64
	for i := 0; i < 64; i++ {
		if b&(1<<uint(i)) != 0 {
			lo ^= a << uint(i)
			if i > 0 {
				hi ^= a >> uint(64-i)
			}
		}
	}
	return gf64Reduce(hi, lo)
}

// gf64Reduce folds a 128-bit carry-less product into GF(2^64).
func gf64Reduce(hi, lo uint64) uint64 {
	// x^64 = x^4 + x^3 + x + 1 (mod p). Folding the high word once can
	// itself overflow by at most 4 bits, so fold twice.
	for hi != 0 {
		t := hi
		hi = 0
		// t * (x^4 + x^3 + x + 1)
		lo ^= t ^ (t << 1) ^ (t << 3) ^ (t << 4)
		hi ^= (t >> 63) ^ (t >> 61) ^ (t >> 60)
	}
	return lo
}

// GF64DotProduct computes sum_i(words[i] * keys[i]) in GF(2^64). The two
// slices must be the same length; the panic guards a programming error, not
// runtime input.
func GF64DotProduct(words, keys []uint64) uint64 {
	if len(words) != len(keys) {
		panic("crypto: dot product length mismatch")
	}
	var acc uint64
	for i := range words {
		acc ^= GF64Mul(words[i], keys[i])
	}
	return acc
}

// gf64MulSlow is a reference bit-by-bit shift-and-reduce multiply used by
// tests to cross-check GF64Mul.
func gf64MulSlow(a, b uint64) uint64 {
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&(1<<63) != 0
		a <<= 1
		if carry {
			a ^= gf64ReductionTail
		}
		b >>= 1
	}
	return p
}

// onesCount is referenced by property tests checking linearity.
func onesCount(x uint64) int { return bits.OnesCount64(x) }
