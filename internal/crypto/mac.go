package crypto

import "encoding/binary"

// BlockBytes is the memory block granularity everything operates on.
const BlockBytes = 64

// WordsPerBlock is the number of 8-byte words in a block (the MAC dot
// product operates word-wise, Fig 1b).
const WordsPerBlock = BlockBytes / 8

// OTPsPerBlock is the number of 16-byte AES one-time pads needed to
// encrypt/decrypt one 64-byte block (Fig 1a).
const OTPsPerBlock = BlockBytes / 16

// MACBits is the size of the per-block MAC (Sec. II: 56-bit).
const MACBits = 56

// macMask truncates a 64-bit value to MACBits.
const macMask = (uint64(1) << MACBits) - 1

// Engine holds the secrets and cipher for one secure-memory domain: an AES
// key for OTP/MAC generation and the eight GF(2^64) dot-product keys.
type Engine struct {
	cipher  *AES
	dotKeys [WordsPerBlock]uint64
}

// NewEngine derives an engine from a 16-byte master key. The dot-product
// keys are derived by encrypting fixed labels so that the whole engine is
// reproducible from one secret.
func NewEngine(key []byte) *Engine {
	e := &Engine{cipher: NewAES(key)}
	var in, out [16]byte
	for i := 0; i < WordsPerBlock; i++ {
		binary.LittleEndian.PutUint64(in[:8], uint64(i)+1)
		copy(in[8:], "dotkey--")
		e.cipher.Encrypt(out[:], in[:])
		k := binary.LittleEndian.Uint64(out[:8])
		if k == 0 {
			k = 1 // a zero dot key would void that word's contribution
		}
		e.dotKeys[i] = k
	}
	return e
}

// otpInput packs µ, block address, word index and counter into the 16-byte
// AES input of Fig 1a. µ distinguishes OTP inputs from MAC inputs so the
// same (address, counter) pair never produces colliding pads.
func otpInput(dst *[16]byte, mu uint16, addr uint64, word uint8, counter uint64) {
	binary.LittleEndian.PutUint16(dst[0:2], mu)
	binary.LittleEndian.PutUint64(dst[2:10], addr)
	dst[10] = word
	// 40 counter bits here plus 16 more below exceed any counter the
	// simulator can reach; the packing mirrors the 128-bit input layout.
	binary.LittleEndian.PutUint32(dst[11:15], uint32(counter))
	dst[15] = byte(counter >> 32)
}

const (
	muOTP uint16 = 0x4f54 // "OT"
	muMAC uint16 = 0x4d41 // "MA"
)

// OTP computes the four 16-byte one-time pads for a block identified by
// (addr, counter) and writes them concatenated into dst (64 bytes).
func (e *Engine) OTP(dst []byte, addr, counter uint64) {
	if len(dst) < BlockBytes {
		panic("crypto: OTP destination too small")
	}
	var in [16]byte
	for w := 0; w < OTPsPerBlock; w++ {
		otpInput(&in, muOTP, addr, uint8(w), counter)
		e.cipher.Encrypt(dst[16*w:16*w+16], in[:])
	}
}

// Encrypt XORs a 64-byte plaintext block with the (addr, counter) pad,
// producing ciphertext in dst. dst and src may alias. Decryption is the
// same operation (counter-mode symmetry).
func (e *Engine) Encrypt(dst, src []byte, addr, counter uint64) {
	var pad [BlockBytes]byte
	e.OTP(pad[:], addr, counter)
	for i := 0; i < BlockBytes; i++ {
		dst[i] = src[i] ^ pad[i]
	}
}

// Decrypt recovers plaintext from ciphertext; identical to Encrypt.
func (e *Engine) Decrypt(dst, src []byte, addr, counter uint64) {
	e.Encrypt(dst, src, addr, counter)
}

// macAES computes the counter-only AES half of the MAC (the dashed box of
// Fig 1b), truncated to MACBits.
func (e *Engine) macAES(addr, counter uint64) uint64 {
	var in, out [16]byte
	otpInput(&in, muMAC, addr, 0xff, counter)
	e.cipher.Encrypt(out[:], in[:])
	// "XOR and Truncate": fold the 128-bit result to 64 then truncate.
	v := binary.LittleEndian.Uint64(out[:8]) ^ binary.LittleEndian.Uint64(out[8:])
	return v & macMask
}

// DotProduct computes the GF(2^64) dot product of a 64-byte block with the
// secret keys, truncated to MACBits. Per Sec. IV-D the MAC is computed over
// *ciphertext* so the MC can produce the dot product without decrypting.
func (e *Engine) DotProduct(block []byte) uint64 {
	if len(block) < BlockBytes {
		panic("crypto: block too small for dot product")
	}
	var words [WordsPerBlock]uint64
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(block[8*i : 8*i+8])
	}
	return GF64DotProduct(words[:], e.dotKeys[:]) & macMask
}

// MAC computes the full 56-bit MAC for a ciphertext block: AES(µ, addr,
// counter) XOR dotProduct(ciphertext) (Fig 1b).
func (e *Engine) MAC(ciphertext []byte, addr, counter uint64) uint64 {
	return e.macAES(addr, counter) ^ e.DotProduct(ciphertext)
}

// Verify checks a fetched ciphertext block against its stored MAC.
func (e *Engine) Verify(ciphertext []byte, addr, counter, mac uint64) bool {
	return e.MAC(ciphertext, addr, counter) == mac&macMask
}

// EmbeddedCheck is what the MC sends to L2 under EMCC: MAC ⊕ dot product.
// L2 verifies by comparing it against its locally computed AES half
// (Sec. IV-D), never needing the dot-product keys or the data plaintext.
func (e *Engine) EmbeddedCheck(ciphertext []byte, mac uint64) uint64 {
	return (mac & macMask) ^ e.DotProduct(ciphertext)
}

// VerifyEmbedded is the L2-side check under EMCC: the embedded value must
// equal the locally computed counter-only AES half.
func (e *Engine) VerifyEmbedded(embedded, addr, counter uint64) bool {
	return embedded&macMask == e.macAES(addr, counter)
}
