package crypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestAESFIPS197Vector checks the appendix-B example of FIPS-197.
func TestAESFIPS197Vector(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	plain, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	want, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	a := NewAES(key)
	got := make([]byte, 16)
	a.Encrypt(got, plain)
	if !bytes.Equal(got, want) {
		t.Fatalf("AES encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 16)
	a.Decrypt(back, got)
	if !bytes.Equal(back, plain) {
		t.Fatalf("AES decrypt = %x, want %x", back, plain)
	}
}

// TestAESNISTVector checks the AESAVS KAT (key all zero).
func TestAESNISTVector(t *testing.T) {
	key := make([]byte, 16)
	plain, _ := hex.DecodeString("f34481ec3cc627bacd5dc3fb08f273e6")
	want, _ := hex.DecodeString("0336763e966d92595a567cc9ce537f5e")
	got := make([]byte, 16)
	NewAES(key).Encrypt(got, plain)
	if !bytes.Equal(got, want) {
		t.Fatalf("AES encrypt = %x, want %x", got, want)
	}
}

func TestAESRoundTripProperty(t *testing.T) {
	a := NewAES([]byte("0123456789abcdef"))
	f := func(block [16]byte) bool {
		var ct, pt [16]byte
		a.Encrypt(ct[:], block[:])
		a.Decrypt(pt[:], ct[:])
		return pt == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAESInPlace(t *testing.T) {
	a := NewAES([]byte("0123456789abcdef"))
	buf := []byte("16 bytes of data")
	orig := append([]byte(nil), buf...)
	a.Encrypt(buf, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("in-place encrypt did not change buffer")
	}
	a.Decrypt(buf, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestAESWrongKeySizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short key did not panic")
		}
	}()
	NewAES([]byte("short"))
}

func TestGF64MulMatchesReference(t *testing.T) {
	f := func(a, b uint64) bool { return GF64Mul(a, b) == gf64MulSlow(a, b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGF64FieldAxioms(t *testing.T) {
	comm := func(a, b uint64) bool { return GF64Mul(a, b) == GF64Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Fatalf("commutativity: %v", err)
	}
	distrib := func(a, b, c uint64) bool {
		return GF64Mul(a, b^c) == GF64Mul(a, b)^GF64Mul(a, c)
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Fatalf("distributivity: %v", err)
	}
	assoc := func(a, b, c uint64) bool {
		return GF64Mul(GF64Mul(a, b), c) == GF64Mul(a, GF64Mul(b, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("associativity: %v", err)
	}
}

func TestGF64Identity(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 0xdeadbeef, ^uint64(0)} {
		if GF64Mul(v, 1) != v {
			t.Fatalf("v*1 != v for %#x", v)
		}
		if GF64Mul(v, 0) != 0 {
			t.Fatalf("v*0 != 0 for %#x", v)
		}
	}
}

func TestDotProductLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	GF64DotProduct([]uint64{1}, []uint64{1, 2})
}

func TestEngineEncryptDecryptProperty(t *testing.T) {
	e := NewEngine([]byte("a 16-byte master"))
	f := func(block [BlockBytes]byte, addrSeed uint32, counter uint32) bool {
		addr := uint64(addrSeed) << 6
		var ct, pt [BlockBytes]byte
		e.Encrypt(ct[:], block[:], addr, uint64(counter))
		e.Decrypt(pt[:], ct[:], addr, uint64(counter))
		return pt == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOTPDependsOnAddressAndCounter(t *testing.T) {
	e := NewEngine([]byte("a 16-byte master"))
	var p1, p2, p3 [BlockBytes]byte
	e.OTP(p1[:], 0x1000, 7)
	e.OTP(p2[:], 0x1040, 7) // different address
	e.OTP(p3[:], 0x1000, 8) // different counter
	if p1 == p2 {
		t.Fatal("OTP identical across addresses")
	}
	if p1 == p3 {
		t.Fatal("OTP identical across counters — pad reuse!")
	}
}

func TestMACDetectsCorruption(t *testing.T) {
	e := NewEngine([]byte("a 16-byte master"))
	block := bytes.Repeat([]byte{0xab}, BlockBytes)
	const addr, counter = 0x2000, 42
	mac := e.MAC(block, addr, counter)
	if !e.Verify(block, addr, counter, mac) {
		t.Fatal("fresh MAC does not verify")
	}
	// Any single-bit flip must invalidate the MAC.
	for _, bit := range []int{0, 7, 100, 511} {
		mut := append([]byte(nil), block...)
		mut[bit/8] ^= 1 << uint(bit%8)
		if e.Verify(mut, addr, counter, mac) {
			t.Fatalf("bit flip %d not detected", bit)
		}
	}
	if e.Verify(block, addr, counter+1, mac) {
		t.Fatal("wrong counter accepted — replay possible")
	}
	if e.Verify(block, addr+64, counter, mac) {
		t.Fatal("wrong address accepted — relocation possible")
	}
}

// TestEmbeddedCheckEquivalence: the EMCC split verification (Sec. IV-D)
// must accept exactly what full MAC verification accepts.
func TestEmbeddedCheckEquivalence(t *testing.T) {
	e := NewEngine([]byte("a 16-byte master"))
	f := func(block [BlockBytes]byte, addrSeed uint16, counter uint16, flip bool) bool {
		addr := uint64(addrSeed) << 6
		mac := e.MAC(block[:], addr, uint64(counter))
		if flip {
			mac ^= 1
		}
		full := e.Verify(block[:], addr, uint64(counter), mac)
		embedded := e.VerifyEmbedded(e.EmbeddedCheck(block[:], mac), addr, uint64(counter))
		return full == embedded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMACIs56Bits(t *testing.T) {
	e := NewEngine([]byte("a 16-byte master"))
	block := make([]byte, BlockBytes)
	for i := uint64(0); i < 32; i++ {
		if m := e.MAC(block, i<<6, i); m>>MACBits != 0 {
			t.Fatalf("MAC %#x exceeds %d bits", m, MACBits)
		}
	}
}

func TestOnesCountHelper(t *testing.T) {
	if onesCount(0b1011) != 3 {
		t.Fatal("onesCount broken")
	}
}
