package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// Source is the view a Recorder samples: something holding named counters
// and histograms that it can visit in ascending name order. stats.Set
// implements it. Deterministic visitation order is part of the contract —
// the recorder's dumps are compared byte-for-byte across runs.
type Source interface {
	// VisitCounters calls fn for every non-zero counter, ascending by name.
	VisitCounters(fn func(name string, v int64))
	// VisitHists calls fn for every non-empty histogram, ascending by name.
	VisitHists(fn func(name string, h *Hist))
}

// Delta is one counter's change over an interval.
type Delta struct {
	Name  string `json:"name"`
	Delta int64  `json:"delta"`
}

// HistDelta is one histogram's change over an interval: how many samples
// arrived and their summed value (mean-per-interval = Sum/Count).
type HistDelta struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
}

// Interval is one flight-recorder sample: every counter and histogram
// delta (non-zero only) between the previous Record call and this one.
type Interval struct {
	Index    int64       `json:"index"` // 0-based interval number since recording began
	At       int64       `json:"at"`    // timestamp passed to Record (picoseconds in tsim)
	Counters []Delta     `json:"counters,omitempty"`
	Hists    []HistDelta `json:"histograms,omitempty"`
}

// Recorder is the interval flight recorder: each Record call diffs the
// source against the previous sample and appends the delta interval to a
// bounded ring. When the ring is full the oldest interval is dropped
// (drop-oldest keeps the most recent flight history, which is what you
// want when inspecting how a run ended). Deterministic by construction:
// the intervals depend only on the source's state at each Record call.
type Recorder struct {
	src     Source
	cap     int
	ivs     []Interval // oldest first; len ≤ cap
	next    int64      // index of the next interval
	dropped int64
	prevC   map[string]int64
	prevH   map[string]HistDelta // cumulative count/sum at last sample
}

// NewRecorder builds a flight recorder over src holding at most capacity
// intervals (minimum 1).
func NewRecorder(src Source, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{
		src:   src,
		cap:   capacity,
		prevC: make(map[string]int64),
		prevH: make(map[string]HistDelta),
	}
}

// Record samples the source at timestamp at, appending one interval of
// deltas since the previous call (or since recording began). It reports
// whether an old interval was dropped to make room.
func (r *Recorder) Record(at int64) (droppedOne bool) {
	iv := Interval{Index: r.next, At: at}
	r.next++
	r.src.VisitCounters(func(name string, v int64) {
		if d := v - r.prevC[name]; d != 0 {
			iv.Counters = append(iv.Counters, Delta{Name: name, Delta: d})
		}
		r.prevC[name] = v
	})
	r.src.VisitHists(func(name string, h *Hist) {
		prev := r.prevH[name]
		cur := HistDelta{Name: name, Count: h.Count(), Sum: h.Sum()}
		if d := (HistDelta{Name: name, Count: cur.Count - prev.Count, Sum: cur.Sum - prev.Sum}); d.Count != 0 || d.Sum != 0 {
			iv.Hists = append(iv.Hists, d)
		}
		r.prevH[name] = cur
	})
	if len(r.ivs) == r.cap {
		copy(r.ivs, r.ivs[1:])
		r.ivs = r.ivs[:len(r.ivs)-1]
		r.dropped++
		droppedOne = true
	}
	r.ivs = append(r.ivs, iv)
	return droppedOne
}

// Intervals returns the retained intervals, oldest first.
func (r *Recorder) Intervals() []Interval { return r.ivs }

// Dropped reports how many intervals were evicted from the ring.
func (r *Recorder) Dropped() int64 { return r.dropped }

// WriteCSV writes the retained intervals as CSV with a fixed header:
//
//	interval,at,kind,name,delta,dsum
//
// Counter rows use kind "counter" with an empty dsum column; histogram
// rows use kind "hist" with delta=sample count and dsum=summed value.
// Output is byte-deterministic for a fixed recording.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "interval,at,kind,name,delta,dsum\n"); err != nil {
		return err
	}
	for _, iv := range r.ivs {
		for _, c := range iv.Counters {
			if _, err := fmt.Fprintf(w, "%d,%d,counter,%s,%d,\n", iv.Index, iv.At, c.Name, c.Delta); err != nil {
				return err
			}
		}
		for _, h := range iv.Hists {
			if _, err := fmt.Fprintf(w, "%d,%d,hist,%s,%d,%d\n", iv.Index, iv.At, h.Name, h.Count, h.Sum); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the retained intervals (and the drop count) as
// indented JSON, byte-deterministic for a fixed recording.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Dropped   int64      `json:"dropped"`
		Intervals []Interval `json:"intervals"`
	}{Dropped: r.dropped, Intervals: r.ivs}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
