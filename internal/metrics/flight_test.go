package metrics

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// fakeSource is a deterministic in-memory Source for recorder tests.
type fakeSource struct {
	counters map[string]int64
	hists    map[string]*Hist
}

func newFakeSource() *fakeSource {
	return &fakeSource{counters: map[string]int64{}, hists: map[string]*Hist{}}
}

func (s *fakeSource) VisitCounters(fn func(string, int64)) {
	names := make([]string, 0, len(s.counters))
	for k, v := range s.counters {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fn(k, s.counters[k])
	}
}

func (s *fakeSource) VisitHists(fn func(string, *Hist)) {
	names := make([]string, 0, len(s.hists))
	for k, h := range s.hists {
		if h.Count() != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fn(k, s.hists[k])
	}
}

func (s *fakeSource) hist(name string) *Hist {
	h, ok := s.hists[name]
	if !ok {
		h = &Hist{}
		s.hists[name] = h
	}
	return h
}

func TestRecorderDeltas(t *testing.T) {
	src := newFakeSource()
	rec := NewRecorder(src, 16)

	src.counters["a"] = 5
	src.hist("h").Observe(100)
	rec.Record(1000)

	src.counters["a"] = 12
	src.counters["b"] = 3
	src.hist("h").Observe(200)
	src.hist("h").Observe(300)
	rec.Record(2000)

	// Quiet interval: no deltas at all.
	rec.Record(3000)

	ivs := rec.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	iv0 := ivs[0]
	if iv0.Index != 0 || iv0.At != 1000 {
		t.Fatalf("interval 0 header: %+v", iv0)
	}
	if len(iv0.Counters) != 1 || iv0.Counters[0] != (Delta{Name: "a", Delta: 5}) {
		t.Fatalf("interval 0 counters: %+v", iv0.Counters)
	}
	if len(iv0.Hists) != 1 || iv0.Hists[0] != (HistDelta{Name: "h", Count: 1, Sum: 100}) {
		t.Fatalf("interval 0 hists: %+v", iv0.Hists)
	}
	iv1 := ivs[1]
	if len(iv1.Counters) != 2 || iv1.Counters[0] != (Delta{Name: "a", Delta: 7}) || iv1.Counters[1] != (Delta{Name: "b", Delta: 3}) {
		t.Fatalf("interval 1 counters: %+v", iv1.Counters)
	}
	if len(iv1.Hists) != 1 || iv1.Hists[0] != (HistDelta{Name: "h", Count: 2, Sum: 500}) {
		t.Fatalf("interval 1 hists: %+v", iv1.Hists)
	}
	if len(ivs[2].Counters) != 0 || len(ivs[2].Hists) != 0 {
		t.Fatalf("quiet interval should be empty: %+v", ivs[2])
	}
}

func TestRecorderBoundedRing(t *testing.T) {
	src := newFakeSource()
	rec := NewRecorder(src, 3)
	for i := 0; i < 10; i++ {
		src.counters["c"]++
		dropped := rec.Record(int64(i))
		if want := i >= 3; dropped != want {
			t.Fatalf("record %d: dropped=%v, want %v", i, dropped, want)
		}
	}
	ivs := rec.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(ivs))
	}
	// Oldest dropped: the survivors are the last three intervals.
	if ivs[0].Index != 7 || ivs[2].Index != 9 {
		t.Fatalf("survivor indices %d..%d, want 7..9", ivs[0].Index, ivs[2].Index)
	}
	if rec.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", rec.Dropped())
	}
}

func TestRecorderDumpDeterminism(t *testing.T) {
	record := func() *Recorder {
		src := newFakeSource()
		rec := NewRecorder(src, 8)
		for i := 0; i < 5; i++ {
			src.counters["x"] += int64(i)
			src.counters["y"] += 2
			src.hist("lat").Observe(int64(i) * 50)
			rec.Record(int64(i) * 1000)
		}
		return rec
	}
	var csv1, csv2, js1, js2 bytes.Buffer
	r1, r2 := record(), record()
	if err := r1.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if err := r1.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Fatal("CSV dumps differ across identical recordings")
	}
	if !bytes.Equal(js1.Bytes(), js2.Bytes()) {
		t.Fatal("JSON dumps differ across identical recordings")
	}
	if !strings.HasPrefix(csv1.String(), "interval,at,kind,name,delta,dsum\n") {
		t.Fatalf("CSV header: %q", strings.SplitN(csv1.String(), "\n", 2)[0])
	}
	// Spot-check one row shape.
	if !strings.Contains(csv1.String(), "1,1000,counter,x,1,\n") {
		t.Fatalf("CSV missing expected counter row:\n%s", csv1.String())
	}
	if !strings.Contains(csv1.String(), ",hist,lat,1,") {
		t.Fatalf("CSV missing expected hist row:\n%s", csv1.String())
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	src := newFakeSource()
	for i := 0; i < 100; i++ {
		src.counters[string(rune('a'+i%26))+string(rune('a'+i/26))] = int64(i)
	}
	for i := 0; i < 16; i++ {
		src.hist("h" + string(rune('a'+i))).Observe(int64(i) * 100)
	}
	rec := NewRecorder(src, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := range src.counters {
			src.counters[k]++
		}
		rec.Record(int64(i))
	}
}
