package metrics

import (
	"bytes"
	"testing"
)

// FuzzHistDecodeMerge throws arbitrary bytes at the histogram decoder.
// Anything that decodes must be internally consistent: canonical
// re-encoding, merge-with-self doubling, and monotone quantiles bounded
// by the maximum.
func FuzzHistDecodeMerge(f *testing.F) {
	// Seed corpus: valid encodings across the geometry's regimes.
	var empty Hist
	f.Add(empty.AppendBinary(nil))
	var exact Hist
	for v := int64(0); v < 32; v++ {
		exact.Observe(v)
	}
	f.Add(exact.AppendBinary(nil))
	var logRange Hist
	for v := int64(1); v < 1<<20; v *= 3 {
		logRange.Observe(v)
	}
	f.Add(logRange.AppendBinary(nil))
	var clamped Hist
	clamped.Observe(histCeiling + 999)
	clamped.Observe(1 << 40)
	f.Add(clamped.AppendBinary(nil))
	// And a few invalid shapes so the fuzzer starts near the edges.
	f.Add([]byte{})
	f.Add([]byte{histCodecVersion})
	f.Add([]byte{99, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHist(data)
		if err != nil {
			return
		}
		// Canonical: decode → encode reproduces the input bytes exactly.
		enc := h.AppendBinary(nil)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data, enc)
		}
		// Quantiles are monotone and bounded by max.
		prev := int64(-1)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("quantile regression at q=%g: %d after %d", q, v, prev)
			}
			if v > h.Max() {
				t.Fatalf("quantile %g = %d above max %d", q, v, h.Max())
			}
			prev = v
		}
		// Merge with a copy of itself: counts and sums double, max holds,
		// and the merged encoding still decodes cleanly.
		cp := *h
		cp.Merge(h)
		if cp.Count() != 2*h.Count() || cp.Sum() != 2*h.Sum() || cp.Max() != h.Max() {
			t.Fatalf("self-merge arithmetic off: %+v vs %+v", cp.Snapshot(), h.Snapshot())
		}
		if _, err := DecodeHist(cp.AppendBinary(nil)); err != nil {
			t.Fatalf("self-merge produced undecodable histogram: %v", err)
		}
	})
}
