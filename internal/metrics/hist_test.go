package metrics

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// The exact range: bucket i holds only value i.
	for v := int64(0); v < linearBuckets; v++ {
		if got := BucketIndex(v); got != int(v) {
			t.Fatalf("BucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Every bucket's bounds contain exactly the values that map to it.
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketLo(i), BucketUpper(i)
		if hi <= lo {
			t.Fatalf("bucket %d: upper %d ≤ lo %d", i, hi, lo)
		}
		if i > 0 && lo != BucketUpper(i-1) {
			t.Fatalf("bucket %d: lo %d ≠ previous upper %d", i, lo, BucketUpper(i-1))
		}
		for _, v := range []int64{lo, hi - 1} {
			want := i
			if got := BucketIndex(v); got != want {
				t.Fatalf("BucketIndex(%d) = %d, want bucket %d [%d,%d)", v, got, want, lo, hi)
			}
		}
	}
	// The top bucket clamps everything at and beyond the ceiling.
	if BucketUpper(NumBuckets-1) != histCeiling {
		t.Fatalf("top bucket upper = %d, want %d", BucketUpper(NumBuckets-1), histCeiling)
	}
	for _, v := range []int64{histCeiling, histCeiling + 1, 1 << 40, 1<<62 + 12345} {
		if got := BucketIndex(v); got != NumBuckets-1 {
			t.Fatalf("BucketIndex(%d) = %d, want clamp to %d", v, got, NumBuckets-1)
		}
	}
	// Negative values clamp to zero.
	if BucketIndex(-5) != 0 {
		t.Fatalf("BucketIndex(-5) = %d, want 0", BucketIndex(-5))
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Above the exact range the half-octave buckets keep relative width
	// (upper-lo)/lo at most 50% (i.e. quantile error ≤ ~33% of the value).
	for i := linearBuckets; i < NumBuckets; i++ {
		lo, hi := BucketLo(i), BucketUpper(i)
		if float64(hi-lo)/float64(lo) > 0.5+1e-9 {
			t.Fatalf("bucket %d [%d,%d): relative width %.3f > 0.5", i, lo, hi, float64(hi-lo)/float64(lo))
		}
	}
}

func TestObserveAndQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 100 samples of exact values 0..99: exact buckets up to 31, then log.
	for v := int64(0); v < 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 99*100/2 || h.Max() != 99 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	// p10 lands in the exact range: 10th sample is value 9.
	if got := h.Quantile(0.10); got != 9 {
		t.Fatalf("p10 = %d, want 9", got)
	}
	// p100 is the exact max, not a bucket bound.
	if got := h.Quantile(1.0); got != 99 {
		t.Fatalf("p100 = %d, want 99", got)
	}
	// Monotone across the quantile grid, bounded by max.
	qs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	prev := int64(-1)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g gives %d after %d", q, v, prev)
		}
		if v > h.Max() {
			t.Fatalf("quantile %g = %d exceeds max %d", q, v, h.Max())
		}
		prev = v
	}
	// A quantile estimate never undershoots the true value's bucket lower
	// bound: for a point mass everything collapses to the exact value range.
	var p Hist
	for i := 0; i < 1000; i++ {
		p.Observe(70_000)
	}
	lo, hi := BucketLo(BucketIndex(70_000)), BucketUpper(BucketIndex(70_000))
	if got := p.Quantile(0.5); got < lo || got >= hi {
		t.Fatalf("point-mass p50 = %d outside bucket [%d,%d)", got, lo, hi)
	}
	if got := p.Quantile(0.99); got != p.Quantile(0.5) {
		t.Fatalf("point mass quantiles differ: %d vs %d", got, p.Quantile(0.5))
	}
}

func TestNegativeObserveClamps(t *testing.T) {
	var h Hist
	h.Observe(-100)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 || h.Bucket(0) != 1 {
		t.Fatalf("negative sample should clamp to 0: %+v", h.Snapshot())
	}
}

// TestMergeEqualsUnsharded is the sharding property: observing a stream
// into K shard histograms and merging them is identical — bucket for
// bucket, and on every derived statistic — to observing the whole stream
// into one histogram.
func TestMergeEqualsUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shards = 5
	var whole Hist
	var parts [shards]Hist
	for i := 0; i < 20_000; i++ {
		// Mix of regimes: exact range, mid log range, clamp range.
		var v int64
		switch rng.Intn(3) {
		case 0:
			v = rng.Int63n(32)
		case 1:
			v = rng.Int63n(1 << 20)
		default:
			v = histCeiling + rng.Int63n(1<<30)
		}
		whole.Observe(v)
		parts[rng.Intn(shards)].Observe(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatalf("merged shards differ from unsharded:\nmerged %+v\nwhole  %+v", merged.Snapshot(), whole.Snapshot())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%g differs after merge", q)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h Hist
		n := rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(histCeiling * 2))
		}
		enc := h.AppendBinary(nil)
		dec, err := DecodeHist(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if *dec != h {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		// Canonical: re-encoding is byte-identical.
		if !bytes.Equal(dec.AppendBinary(nil), enc) {
			t.Fatalf("trial %d: re-encode not canonical", trial)
		}
	}
	// Empty histogram round-trips too.
	var empty Hist
	dec, err := DecodeHist(empty.AppendBinary(nil))
	if err != nil || dec.Count() != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	var h Hist
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 17)
	}
	valid := h.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, valid[1:]...),
		"truncated":   valid[:len(valid)-1],
		"trailing":    append(append([]byte{}, valid...), 0),
		"count mismatch": func() []byte {
			// Bump the count varint (byte 1 on a small histogram).
			b := append([]byte{}, valid...)
			b[1]++
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := DecodeHist(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestSnapshotTrimsAndQuantiles(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(40)
	s := h.Snapshot()
	want := BucketIndex(40) + 1
	if len(s.Buckets) != want {
		t.Fatalf("snapshot kept %d buckets, want %d", len(s.Buckets), want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if s.Quantile(q) != h.Quantile(q) {
			t.Fatalf("snapshot quantile %g = %d, hist says %d", q, s.Quantile(q), h.Quantile(q))
		}
	}
	if s.Mean() != h.Mean() {
		t.Fatalf("snapshot mean %g ≠ %g", s.Mean(), h.Mean())
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestObserveAllocFree(t *testing.T) {
	var h Hist
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
	var o Hist
	o.Observe(7)
	if allocs := testing.AllocsPerRun(1000, func() { h.Merge(&o) }); allocs != 0 {
		t.Fatalf("Merge allocates %v per call, want 0", allocs)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}

func BenchmarkHistMerge(b *testing.B) {
	var h, o Hist
	for i := int64(0); i < 1000; i++ {
		o.Observe(i * 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Merge(&o)
	}
}

func BenchmarkHistQuantile(b *testing.B) {
	var h Hist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		h.Observe(rng.Int63n(1 << 21))
	}
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += h.Quantile(0.99)
	}
	_ = sink
}
