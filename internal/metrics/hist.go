// Package metrics holds the first-class telemetry primitives the
// simulators record distributions and time series into: a fixed-geometry
// log-bucketed latency histogram (hist.go) and an interval flight recorder
// (flight.go). The package is a leaf — it imports nothing from the rest of
// the repository — so internal/stats can embed histogram cells the same
// way it embeds counter cells, and every layer above (obs, dram, tsim,
// figures, check) shares one bucket geometry instead of ad-hoc arrays.
//
// The histogram is built for the hot path: observing a sample is a handful
// of integer operations into a fixed [NumBuckets]int64 array, allocation-
// free and deterministic. Quantiles interpolate within the holding bucket
// (midpoint convention, clamped to the exact maximum), so estimates get
// sub-bucket resolution while p50 ≤ p95 ≤ p99 ≤ max holds by construction.
package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// NumBuckets is the fixed bucket count of every Hist.
const NumBuckets = 64

// Bucket geometry: values are non-negative integers (nanoseconds
// throughout this repository). The first linearBuckets buckets are exact —
// bucket i holds only the value i — covering the sub-32 ns regime where
// cache-hit latencies live. Above that, each power-of-two octave splits
// into two sub-buckets (a pow-2-ish log scale with ≤ 25% relative error),
// up to the maxExp octave; everything at or beyond 2^(maxExp+1) clamps
// into the last bucket, whose true extent is recovered from the exact Max.
const (
	linearBuckets = 32
	firstExp      = 5  // 2^firstExp == linearBuckets
	maxExp        = 20 // last full octave; bucket 63 ends at 2^21
)

// histCeiling is the exclusive upper bound of the second-to-last boundary:
// values below it land in a genuine sub-bucket, values at or above clamp.
const histCeiling = int64(1) << (maxExp + 1) // 2 097 152 ns ≈ 2.1 ms

// Hist is a fixed-geometry log-bucketed histogram of non-negative int64
// samples. The zero value is ready to use. It is not safe for concurrent
// writers (the simulators are single-threaded per stats.Set, like every
// other metric cell).
type Hist struct {
	count   int64
	sum     int64
	max     int64
	buckets [NumBuckets]int64
}

// BucketIndex maps a sample to its bucket. Negative samples clamp to 0
// (latencies cannot be negative; a clamped zero keeps the hot path
// branch-light instead of panicking mid-simulation).
func BucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < linearBuckets {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // k >= firstExp
	if k > maxExp {
		return NumBuckets - 1
	}
	sub := (v >> uint(k-1)) & 1
	return linearBuckets + (k-firstExp)*2 + int(sub)
}

// BucketLo reports the inclusive lower bound of bucket i.
func BucketLo(i int) int64 {
	if i < linearBuckets {
		return int64(i)
	}
	k := firstExp + (i-linearBuckets)/2
	sub := int64((i - linearBuckets) % 2)
	return int64(1)<<uint(k) + sub<<uint(k-1)
}

// BucketUpper reports the exclusive upper bound of bucket i. The last
// bucket additionally holds every clamped sample ≥ its nominal bound, so
// its reported quantile is always clamped to the exact Max.
func BucketUpper(i int) int64 {
	if i < linearBuckets {
		return int64(i) + 1
	}
	k := firstExp + (i-linearBuckets)/2
	return BucketLo(i) + int64(1)<<uint(k-1)
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[BucketIndex(v)]++
}

// Count reports the number of samples observed.
func (h *Hist) Count() int64 { return h.count }

// Sum reports the sum of all observed samples.
func (h *Hist) Sum() int64 { return h.sum }

// Max reports the largest observed sample (zero with no samples).
func (h *Hist) Max() int64 { return h.max }

// Bucket reports the sample count of bucket i.
func (h *Hist) Bucket(i int) int64 { return h.buckets[i] }

// Mean reports the sample mean, or zero with no samples.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile reports the q-quantile (0 < q ≤ 1), locating the q·count-th
// sample's bucket and interpolating its position inside it under the
// assumption of uniformly spread samples (midpoint convention), clamped to
// the exact maximum. Interpolated positions increase with the rank, bucket
// bounds increase with the index, and the clamp is monotone, so Quantile
// is non-decreasing in q; the top rank short-circuits to the recorded
// maximum, so Quantile(1) == Max exactly. In the exact sub-bucket range
// the interpolation collapses to the precise sample value.
func (h *Hist) Quantile(q float64) int64 {
	return quantile(h.count, h.max, h.buckets[:], q)
}

// Merge folds o into h element-wise: counts and sums add, the maxima
// combine. Merging shard histograms is exactly equivalent to observing the
// union stream into one histogram (the property test pins this).
func (h *Hist) Merge(o *Hist) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset clears the histogram in place.
func (h *Hist) Reset() { *h = Hist{} }

// quantile is the shared walk for Hist and HistSnapshot. buckets may be
// trailing-zero-trimmed.
func quantile(count, max int64, buckets []int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= count {
		// The top-ranked sample is the maximum itself — no estimate needed.
		return max
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			// The rank-th sample is the j-th (1-based) of c samples in
			// bucket [lo, hi). Place it at the midpoint of its 1/c slice;
			// for the exact sub-32 buckets (width 1) this floors back to
			// the precise value.
			lo := BucketLo(i)
			width := BucketUpper(i) - lo
			j := rank - (cum - c)
			v := lo + int64(float64(width)*(float64(j)-0.5)/float64(c))
			if v > max {
				return max
			}
			return v
		}
	}
	return max
}

// HistSnapshot is the serializable view of a Hist: the same data with the
// trailing zero buckets trimmed, as it rides inside stats.Snapshot (and
// therefore the scenario result cache).
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	n := NumBuckets
	for n > 0 && h.buckets[n-1] == 0 {
		n--
	}
	s := HistSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	if n > 0 {
		s.Buckets = append([]int64(nil), h.buckets[:n]...)
	}
	return s
}

// Mean reports the sample mean, or zero with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile mirrors Hist.Quantile on the serialized form.
func (s HistSnapshot) Quantile(q float64) int64 {
	return quantile(s.Count, s.Max, s.Buckets, q)
}

// histCodecVersion tags the binary encoding.
const histCodecVersion = 1

// AppendBinary appends the canonical binary encoding of h to b: a version
// byte, then count/sum/max as uvarints, then the trailing-zero-trimmed
// bucket prefix (length plus one uvarint per bucket). The encoding is
// canonical — Decode of a valid stream re-encodes byte-identically.
func (h *Hist) AppendBinary(b []byte) []byte {
	b = append(b, histCodecVersion)
	b = binary.AppendUvarint(b, uint64(h.count))
	b = binary.AppendUvarint(b, uint64(h.sum))
	b = binary.AppendUvarint(b, uint64(h.max))
	n := NumBuckets
	for n > 0 && h.buckets[n-1] == 0 {
		n--
	}
	b = binary.AppendUvarint(b, uint64(n))
	for _, c := range h.buckets[:n] {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return b
}

// DecodeHist parses a binary-encoded histogram, validating every internal
// invariant: well-formed varints with no trailing garbage, bucket counts
// that sum to the sample count, a maximum that is consistent with the
// populated buckets, and canonical trimming. Merging decoded histograms
// is therefore always safe.
func DecodeHist(b []byte) (*Hist, error) {
	if len(b) == 0 || b[0] != histCodecVersion {
		return nil, fmt.Errorf("metrics: bad histogram version")
	}
	b = b[1:]
	next := func() (int64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > math.MaxInt64 {
			return 0, fmt.Errorf("metrics: truncated or oversized varint")
		}
		b = b[n:]
		return int64(v), nil
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	sum, err := next()
	if err != nil {
		return nil, err
	}
	max, err := next()
	if err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	if n > NumBuckets {
		return nil, fmt.Errorf("metrics: %d buckets exceeds geometry (%d)", n, NumBuckets)
	}
	h := &Hist{count: count, sum: sum, max: max}
	var bucketSum int64
	for i := int64(0); i < n; i++ {
		c, err := next()
		if err != nil {
			return nil, err
		}
		h.buckets[i] = c
		bucketSum += c
		if bucketSum < 0 {
			return nil, fmt.Errorf("metrics: bucket counts overflow")
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("metrics: %d trailing bytes", len(b))
	}
	if n > 0 && h.buckets[n-1] == 0 {
		return nil, fmt.Errorf("metrics: non-canonical trailing zero bucket")
	}
	if bucketSum != count {
		return nil, fmt.Errorf("metrics: bucket counts sum to %d, count says %d", bucketSum, count)
	}
	if count == 0 {
		if sum != 0 || max != 0 {
			return nil, fmt.Errorf("metrics: empty histogram with sum=%d max=%d", sum, max)
		}
		return h, nil
	}
	if h.buckets[BucketIndex(max)] == 0 {
		return nil, fmt.Errorf("metrics: max %d falls in an empty bucket", max)
	}
	top := int(n) - 1
	if max < BucketLo(top) {
		return nil, fmt.Errorf("metrics: max %d below populated bucket %d", max, top)
	}
	if sum < max {
		return nil, fmt.Errorf("metrics: sum %d below max %d", sum, max)
	}
	if max > 0 && count <= math.MaxInt64/max && sum > count*max {
		return nil, fmt.Errorf("metrics: sum %d exceeds count×max", sum)
	}
	return h, nil
}
