// Package ctr implements the three counter organisations the paper
// evaluates: monolithic 56-bit counters, SC-64 split counters [ISCA'06] and
// Morphable Counters [MICRO'18]. An Organisation tracks the real write
// counter of every block (functionally — the values feed the crypto layer)
// and reports overflow events, whose page re-encryption traffic the
// memory-controller model turns into DRAM requests (Sec. V "Baselines").
package ctr

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
)

// Overflow describes the consequence of one counter increment.
type Overflow struct {
	// Happened is true when the increment could not be represented and
	// the counter block was rebased.
	Happened bool
	// ReencryptBlocks is how many covered 64 B blocks must be read,
	// re-encrypted under the new counters, and written back.
	ReencryptBlocks int
	// Level is the metadata level the overflow occurred at (0 = data
	// counters; Fig 15 splits level-0 from higher-level overflow).
	Level int
}

// Organisation is one counter design. Block identity is a *counter block
// index* (any uint64 key — the caller uses physical block indices of the
// counter region); child identity is the offset of the protected block
// within the counter block [0, Coverage()).
type Organisation interface {
	// Name labels the design as in the paper's legends.
	Name() string
	// Coverage reports data blocks protected per 64 B counter block.
	Coverage() int
	// DecodeLatency is the extra latency to extract a counter value from
	// a fetched counter block (3 ns for Morphable, Sec. V).
	DecodeLatency() sim.Time
	// Counter reports the current write counter for child `off` of
	// counter block `blk`. Never-written blocks report 0.
	Counter(blk uint64, off int) uint64
	// Increment bumps the write counter for child `off` of counter block
	// `blk` at metadata level `level`, returning overflow consequences.
	Increment(blk uint64, off int, level int) Overflow
}

// New builds the organisation selected by the config.
func New(d config.CounterDesign) Organisation {
	switch d {
	case config.CtrMono:
		return newMono()
	case config.CtrSC64:
		return newSC64()
	case config.CtrMorphable:
		return newMorphable()
	}
	panic(fmt.Sprintf("ctr: no organisation for %v", d))
}

// ---- Monolithic: eight independent 56-bit counters per block ----

type mono struct {
	blocks map[uint64]*[8]uint64
}

func newMono() *mono { return &mono{blocks: make(map[uint64]*[8]uint64)} }

func (m *mono) Name() string            { return "mono" }
func (m *mono) Coverage() int           { return 8 }
func (m *mono) DecodeLatency() sim.Time { return 0 }

func (m *mono) Counter(blk uint64, off int) uint64 {
	if b := m.blocks[blk]; b != nil {
		return b[off]
	}
	return 0
}

func (m *mono) Increment(blk uint64, off int, level int) Overflow {
	b := m.blocks[blk]
	if b == nil {
		b = new([8]uint64)
		m.blocks[blk] = b
	}
	b[off]++
	// 2^56 writes to one block is unreachable in simulation; monolithic
	// counters never overflow here, matching the paper's treatment.
	return Overflow{}
}

// ---- SC-64: one major + 64 x 7-bit minors per block ----

type sc64Block struct {
	major  uint64
	minors [64]uint8
}

type sc64 struct {
	blocks map[uint64]*sc64Block
}

func newSC64() *sc64 { return &sc64{blocks: make(map[uint64]*sc64Block)} }

func (s *sc64) Name() string            { return "sc64" }
func (s *sc64) Coverage() int           { return 64 }
func (s *sc64) DecodeLatency() sim.Time { return 0 }

// counterValue packs (major, minor) into one 64-bit value that is unique
// per write, as counter-mode security requires: minors are < 2^32 and every
// rebase advances the major past the largest minor it retires.
func counterValue(major uint64, minor uint64) uint64 { return major<<32 | minor }

func (s *sc64) Counter(blk uint64, off int) uint64 {
	if b := s.blocks[blk]; b != nil {
		return counterValue(b.major, uint64(b.minors[off]))
	}
	return 0
}

const sc64MinorMax = 1<<7 - 1

func (s *sc64) Increment(blk uint64, off int, level int) Overflow {
	b := s.blocks[blk]
	if b == nil {
		b = &sc64Block{}
		s.blocks[blk] = b
	}
	if b.minors[off] < sc64MinorMax {
		b.minors[off]++
		return Overflow{}
	}
	// Minor overflow: rebase the whole block. All covered blocks now have
	// a new counter (major+1, 0) and must be re-encrypted — an entire
	// 4 KB page of traffic (Sec. V).
	b.major++
	for i := range b.minors {
		b.minors[i] = 0
	}
	return Overflow{Happened: true, ReencryptBlocks: 64, Level: level}
}

// blockCount is exposed for tests.
func (s *sc64) blockCount() int { return len(s.blocks) }
