package ctr

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// SerializedBytes is the canonical on-"DRAM" image size of a counter block.
const SerializedBytes = 64

// Serializer is implemented by organisations that can produce a canonical
// 64-byte image of a counter block, used by the integrity tree to MAC
// counter blocks themselves. All three organisations implement it.
type Serializer interface {
	Serialize(blk uint64, dst *[SerializedBytes]byte)
}

func (m *mono) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	for i := range dst {
		dst[i] = 0
	}
	b := m.blocks[blk]
	if b == nil {
		return
	}
	for i, v := range b {
		binary.LittleEndian.PutUint64(dst[8*i:8*i+8], v)
	}
}

func (s *sc64) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	for i := range dst {
		dst[i] = 0
	}
	b := s.blocks[blk]
	if b == nil {
		return
	}
	binary.LittleEndian.PutUint64(dst[:8], b.major)
	// 64 7-bit minors pack exactly into the remaining 56 bytes.
	bitPos := 64
	for _, v := range b.minors {
		putBits(dst, bitPos, uint64(v), 7)
		bitPos += 7
	}
}

func (m *morphable) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	b := m.blocks[blk]
	if b == nil {
		b = &morphBlock{}
	}
	if !EncodeMorphable(b.major, &b.minors, dst) {
		// Increment rebases the moment a state stops being representable,
		// so a stored block can never reach here.
		panic("ctr: morphable block in unrepresentable state")
	}
}

// Morphable image layout (bit-exact and decodable, mirroring the morphing
// formats of Morphable Counters [MICRO'18]):
//
//	bytes [0:8)   major counter, little-endian
//	byte  8       format tag: 0 = uniform, else w = minor width in bits
//	uniform:      128 minors at 3 bits each in bytes [9:57)
//	ZCC (tag=w):  128-bit presence bitmap in bytes [9:25), then one w-bit
//	              field per set bitmap bit in bytes [25:57), k*w <= 256
//
// Trailing bits are zero. Images are canonical: DecodeMorphable rejects any
// image EncodeMorphable would not produce, so encode∘decode and
// decode∘encode are both identities (the fuzz target asserts this).
const (
	morphTagOff     = 8
	morphUniformOff = 9  // 48 bytes of 3-bit minors
	morphBitmapOff  = 9  // 16-byte presence bitmap (ZCC)
	morphPayloadOff = 25 // packed non-zero minors (ZCC)
)

// EncodeMorphable writes the canonical image of a morphable counter block.
// It reports false — leaving dst zeroed — when the minor population fits no
// format (the caller must have rebased first).
func EncodeMorphable(major uint64, minors *[128]uint32, dst *[SerializedBytes]byte) bool {
	for i := range dst {
		dst[i] = 0
	}
	var nz int
	var maxv uint32
	for _, v := range minors {
		if v != 0 {
			nz++
			if v > maxv {
				maxv = v
			}
		}
	}
	if maxv >= 1<<uniformBits {
		if nz*bits.Len32(maxv) > zccPayloadBits {
			return false
		}
	}
	binary.LittleEndian.PutUint64(dst[:8], major)
	if maxv < 1<<uniformBits {
		pos := morphUniformOff * 8
		for _, v := range minors {
			putBits(dst, pos, uint64(v), uniformBits)
			pos += uniformBits
		}
		return true
	}
	w := bits.Len32(maxv)
	dst[morphTagOff] = byte(w)
	pos := morphPayloadOff * 8
	for i, v := range minors {
		if v == 0 {
			continue
		}
		dst[morphBitmapOff+i/8] |= 1 << uint(i%8)
		putBits(dst, pos, uint64(v), w)
		pos += w
	}
	return true
}

// DecodeMorphable parses a canonical morphable image back into its major
// counter and minor vector, rejecting malformed or non-canonical images.
func DecodeMorphable(src *[SerializedBytes]byte) (major uint64, minors [128]uint32, err error) {
	major = binary.LittleEndian.Uint64(src[:8])
	tag := int(src[morphTagOff])
	if tag == 0 {
		pos := morphUniformOff * 8
		var maxv uint32
		for i := range minors {
			minors[i] = uint32(getBits(src, pos, uniformBits))
			if minors[i] > maxv {
				maxv = minors[i]
			}
			pos += uniformBits
		}
		if !zeroBitsFrom(src, pos) {
			return 0, [128]uint32{}, fmt.Errorf("ctr: uniform morphable image has non-zero padding")
		}
		return major, minors, nil
	}
	if tag < uniformBits+1 || tag > 32 {
		return 0, [128]uint32{}, fmt.Errorf("ctr: invalid morphable format tag %d", tag)
	}
	w := tag
	pos := morphPayloadOff * 8
	var k int
	var maxv uint32
	for i := range minors {
		if src[morphBitmapOff+i/8]&(1<<uint(i%8)) == 0 {
			continue
		}
		k++
		if k*w > zccPayloadBits {
			return 0, [128]uint32{}, fmt.Errorf("ctr: ZCC image overflows payload: %d minors at %d bits", k, w)
		}
		v := uint32(getBits(src, pos, w))
		pos += w
		if v == 0 {
			return 0, [128]uint32{}, fmt.Errorf("ctr: ZCC image encodes a zero minor")
		}
		minors[i] = v
		if v > maxv {
			maxv = v
		}
	}
	if bits.Len32(maxv) != w {
		return 0, [128]uint32{}, fmt.Errorf("ctr: non-canonical ZCC width %d for max minor %d", w, maxv)
	}
	if !zeroBitsFrom(src, pos) {
		return 0, [128]uint32{}, fmt.Errorf("ctr: ZCC morphable image has non-zero padding")
	}
	return major, minors, nil
}

// putBits writes the low `n` bits of v into dst starting at bit position
// pos (little-endian bit order within bytes).
func putBits(dst *[SerializedBytes]byte, pos int, v uint64, n int) {
	for i := 0; i < n; i++ {
		if v&(1<<uint(i)) != 0 {
			p := pos + i
			dst[p/8] |= 1 << uint(p%8)
		}
	}
}

// getBits reads n bits starting at bit position pos (inverse of putBits).
func getBits(src *[SerializedBytes]byte, pos, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		p := pos + i
		if src[p/8]&(1<<uint(p%8)) != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// zeroBitsFrom reports whether every bit from position pos to the end of
// the image is zero (canonical padding).
func zeroBitsFrom(src *[SerializedBytes]byte, pos int) bool {
	for p := pos; p < SerializedBytes*8; p++ {
		if src[p/8]&(1<<uint(p%8)) != 0 {
			return false
		}
	}
	return true
}
