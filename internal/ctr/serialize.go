package ctr

import "encoding/binary"

// SerializedBytes is the canonical on-"DRAM" image size of a counter block.
const SerializedBytes = 64

// Serializer is implemented by organisations that can produce a canonical
// 64-byte image of a counter block, used by the integrity tree to MAC
// counter blocks themselves. All three organisations implement it.
type Serializer interface {
	Serialize(blk uint64, dst *[SerializedBytes]byte)
}

func (m *mono) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	for i := range dst {
		dst[i] = 0
	}
	b := m.blocks[blk]
	if b == nil {
		return
	}
	for i, v := range b {
		binary.LittleEndian.PutUint64(dst[8*i:8*i+8], v)
	}
}

func (s *sc64) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	for i := range dst {
		dst[i] = 0
	}
	b := s.blocks[blk]
	if b == nil {
		return
	}
	binary.LittleEndian.PutUint64(dst[:8], b.major)
	// 64 7-bit minors pack exactly into the remaining 56 bytes.
	bitPos := 64
	for _, v := range b.minors {
		putBits(dst, bitPos, uint64(v), 7)
		bitPos += 7
	}
}

func (m *morphable) Serialize(blk uint64, dst *[SerializedBytes]byte) {
	for i := range dst {
		dst[i] = 0
	}
	b := m.blocks[blk]
	if b == nil {
		return
	}
	binary.LittleEndian.PutUint64(dst[:8], b.major)
	// The hardware block stores minors in a morphing format; the
	// functional image just needs to be a deterministic, injective-in-
	// practice digest of the minor vector. Mix each minor into the 56
	// remaining bytes with a multiplicative hash so any change to any
	// minor changes the image.
	const mult = 0x9e3779b97f4a7c15
	var acc [7]uint64
	for i, v := range b.minors {
		h := (uint64(v) + uint64(i)*mult + 1) * mult
		acc[i%7] ^= h
	}
	for i, v := range acc {
		binary.LittleEndian.PutUint64(dst[8+8*i:16+8*i], v)
	}
}

// putBits writes the low `n` bits of v into dst starting at bit position
// pos (little-endian bit order within bytes).
func putBits(dst *[SerializedBytes]byte, pos int, v uint64, n int) {
	for i := 0; i < n; i++ {
		if v&(1<<uint(i)) != 0 {
			p := pos + i
			dst[p/8] |= 1 << uint(p%8)
		}
	}
}
