package ctr

import (
	"math/bits"

	"repro/internal/sim"
)

// Morphable Counters [MICRO'18] pack 128 minor counters into one 64 B block
// by morphing between formats:
//
//   - a uniform format: all 128 minors at 3 bits each (384 payload bits),
//   - zero-counter-compression (ZCC) formats: a 128-bit presence bitmap
//     plus k non-zero minors of width w, with k*w <= 256 payload bits.
//     w=7 -> k=36, w=6 -> k=42, w=5 -> k=51 — exactly the "variable and
//     non-power-of-2 (e.g., 36, 42, 51)" slot counts the paper cites when
//     motivating the 3 ns decode latency.
//
// When an increment makes the live minors unrepresentable in every format,
// the block rebases: the major counter advances, minors reset, and all 128
// covered blocks (two 4 KB pages) must be re-encrypted.
type morphable struct {
	blocks map[uint64]*morphBlock
}

type morphBlock struct {
	major  uint64
	minors [128]uint32
}

func newMorphable() *morphable { return &morphable{blocks: make(map[uint64]*morphBlock)} }

func (m *morphable) Name() string            { return "morphable" }
func (m *morphable) Coverage() int           { return 128 }
func (m *morphable) DecodeLatency() sim.Time { return sim.NS(3) }

func (m *morphable) Counter(blk uint64, off int) uint64 {
	if b := m.blocks[blk]; b != nil {
		return counterValue(b.major, uint64(b.minors[off]))
	}
	return 0
}

// zccPayloadBits is the budget for non-zero minors in ZCC formats
// (512-bit block minus the presence bitmap minus major/format metadata).
const zccPayloadBits = 256

// uniformBits is the minor width in the uniform format.
const uniformBits = 3

// representable reports whether the minor population fits some format.
func representable(minors *[128]uint32) bool {
	var nz, maxv int
	for _, v := range minors {
		if v != 0 {
			nz++
			if int(v) > maxv {
				maxv = int(v)
			}
		}
	}
	if maxv < 1<<uniformBits {
		return true // uniform 3-bit format holds everything
	}
	w := bits.Len32(uint32(maxv))
	// ZCC: k slots of width w must cover all non-zero minors.
	return nz*w <= zccPayloadBits
}

func (m *morphable) Increment(blk uint64, off int, level int) Overflow {
	b := m.blocks[blk]
	if b == nil {
		b = &morphBlock{}
		m.blocks[blk] = b
	}
	b.minors[off]++
	if representable(&b.minors) {
		return Overflow{}
	}
	// Rebase: advance the major counter past every minor so that
	// (major', 0) is strictly greater than any previously used
	// (major, minor) pair — counters must never repeat.
	var maxv uint32
	for _, v := range b.minors {
		if v > maxv {
			maxv = v
		}
	}
	b.major += uint64(maxv) + 1
	for i := range b.minors {
		b.minors[i] = 0
	}
	return Overflow{Happened: true, ReencryptBlocks: 128, Level: level}
}
