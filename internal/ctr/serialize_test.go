package ctr

import (
	"testing"
)

// TestMorphableEncodeDecodeLossless drives a morphable organisation through
// uniform, ZCC and rebase regimes and checks the image round-trips exactly
// at every step.
func TestMorphableEncodeDecodeLossless(t *testing.T) {
	m := newMorphable()
	const blk = 7
	check := func(step string) {
		t.Helper()
		b := m.blocks[blk]
		if b == nil {
			b = &morphBlock{}
		}
		var img [SerializedBytes]byte
		m.Serialize(blk, &img)
		major, minors, err := DecodeMorphable(&img)
		if err != nil {
			t.Fatalf("%s: decode failed: %v", step, err)
		}
		if major != b.major || minors != b.minors {
			t.Fatalf("%s: round trip lost state: got major=%d, want %d", step, major, b.major)
		}
		var re [SerializedBytes]byte
		if !EncodeMorphable(major, &minors, &re) {
			t.Fatalf("%s: re-encode rejected decoded state", step)
		}
		if re != img {
			t.Fatalf("%s: re-encode is not byte-identical", step)
		}
	}

	check("empty")
	// Uniform regime: every minor small.
	for off := 0; off < 128; off++ {
		m.Increment(blk, off, 0)
	}
	check("uniform")
	// Push one minor into ZCC territory (width > 3).
	for i := 0; i < 40; i++ {
		m.Increment(blk, 3, 0)
	}
	check("zcc")
	// Spread non-zero minors across offsets until the ZCC slot budget
	// bursts and the block rebases, checking throughout.
	rebased := false
	for i := 0; i < 100000 && !rebased; i++ {
		ov := m.Increment(blk, i%128, 0)
		rebased = ov.Happened
		if i%13 == 0 {
			check("hammer")
		}
	}
	if !rebased {
		t.Fatal("expected a rebase")
	}
	check("post-rebase")
}

// TestDecodeMorphableRejectsMalformed pins the validation rules.
func TestDecodeMorphableRejectsMalformed(t *testing.T) {
	var img [SerializedBytes]byte
	minors := [128]uint32{0: 9, 5: 12}
	if !EncodeMorphable(42, &minors, &img) {
		t.Fatal("encode rejected representable state")
	}

	cases := []struct {
		name   string
		mutate func(*[SerializedBytes]byte)
	}{
		{"bad-tag", func(b *[SerializedBytes]byte) { b[morphTagOff] = 33 }},
		{"uniform-tag-under-zcc", func(b *[SerializedBytes]byte) { b[morphTagOff] = 1 }},
		{"padding-dirty", func(b *[SerializedBytes]byte) { b[SerializedBytes-1] = 0xff }},
		{"non-canonical-width", func(b *[SerializedBytes]byte) { b[morphTagOff] = 5 }},
		{"phantom-minor", func(b *[SerializedBytes]byte) { b[morphBitmapOff+15] |= 0x80 }},
	}
	for _, tc := range cases {
		mut := img
		tc.mutate(&mut)
		if _, _, err := DecodeMorphable(&mut); err == nil {
			t.Errorf("%s: malformed image accepted", tc.name)
		}
	}
}

// TestEncodeMorphableRejectsUnrepresentable: too many wide minors fit no
// format; Encode must refuse rather than truncate.
func TestEncodeMorphableRejectsUnrepresentable(t *testing.T) {
	var minors [128]uint32
	for i := range minors {
		minors[i] = 8 // 128 non-zero minors at width 4 = 512 > 256 bits
	}
	var img [SerializedBytes]byte
	if EncodeMorphable(1, &minors, &img) {
		t.Fatal("encode accepted unrepresentable state")
	}
	if representable(&minors) {
		t.Fatal("representable disagrees with EncodeMorphable")
	}
}

// FuzzMorphableImageRoundTrip: any image DecodeMorphable accepts must
// re-encode byte-identically (decode∘encode identity on the canonical
// image set), and the decoded state must be representable.
func FuzzMorphableImageRoundTrip(f *testing.F) {
	// Seed with canonical images from live blocks in each regime.
	m := newMorphable()
	for i := 0; i < 300; i++ {
		m.Increment(1, i%128, 0)
		m.Increment(1, 2, 0)
	}
	var seed [SerializedBytes]byte
	m.Serialize(1, &seed)
	f.Add(seed[:])
	f.Add(make([]byte, SerializedBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < SerializedBytes {
			return
		}
		var img [SerializedBytes]byte
		copy(img[:], data)
		major, minors, err := DecodeMorphable(&img)
		if err != nil {
			return // malformed input cleanly rejected
		}
		if !representable(&minors) {
			t.Fatal("decode accepted an unrepresentable minor population")
		}
		var re [SerializedBytes]byte
		if !EncodeMorphable(major, &minors, &re) {
			t.Fatal("re-encode rejected decoded state")
		}
		if re != img {
			t.Fatalf("decode->encode not lossless:\n in %x\nout %x", img, re)
		}
	})
}

// FuzzMorphableStateRoundTrip: arbitrary (major, minors) states, clamped to
// representable populations, must survive encode->decode unchanged
// (encode∘decode identity on the representable state set).
func FuzzMorphableStateRoundTrip(f *testing.F) {
	f.Add(uint64(3), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(0), []byte{})
	f.Add(^uint64(0), []byte{0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, major uint64, raw []byte) {
		var minors [128]uint32
		for i := 0; i+1 < len(raw) && i/2 < len(minors); i += 2 {
			minors[i/2] = uint32(raw[i]) | uint32(raw[i+1])<<8
		}
		if !representable(&minors) {
			// Clamp to the uniform format, always representable.
			for i := range minors {
				minors[i] &= (1 << uniformBits) - 1
			}
		}
		var img [SerializedBytes]byte
		if !EncodeMorphable(major, &minors, &img) {
			t.Fatal("encode rejected representable state")
		}
		gotMajor, gotMinors, err := DecodeMorphable(&img)
		if err != nil {
			t.Fatalf("decode rejected canonical image: %v", err)
		}
		if gotMajor != major || gotMinors != minors {
			t.Fatal("encode->decode lost state")
		}
	})
}
