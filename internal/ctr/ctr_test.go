package ctr

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func orgs() map[string]Organisation {
	return map[string]Organisation{
		"mono":      New(config.CtrMono),
		"sc64":      New(config.CtrSC64),
		"morphable": New(config.CtrMorphable),
	}
}

func TestCoverageMatchesPaper(t *testing.T) {
	want := map[string]int{"mono": 8, "sc64": 64, "morphable": 128}
	for name, o := range orgs() {
		if o.Coverage() != want[name] {
			t.Errorf("%s coverage = %d, want %d", name, o.Coverage(), want[name])
		}
	}
}

func TestFreshCountersAreZero(t *testing.T) {
	for name, o := range orgs() {
		if o.Counter(12, 3) != 0 {
			t.Errorf("%s fresh counter not zero", name)
		}
	}
}

func TestIncrementAdvancesOnlyTarget(t *testing.T) {
	for name, o := range orgs() {
		o.Increment(5, 2, 0)
		if o.Counter(5, 2) == 0 {
			t.Errorf("%s counter did not advance", name)
		}
		if o.Counter(5, 3) != 0 {
			t.Errorf("%s neighbouring counter advanced", name)
		}
		if o.Counter(6, 2) != 0 {
			t.Errorf("%s other block's counter advanced", name)
		}
	}
}

// TestCounterValuesNeverRepeat is the central security invariant: across
// any sequence of increments (including overflow rebases), the counter
// values a single block observes must be strictly increasing.
func TestCounterValuesNeverRepeat(t *testing.T) {
	for name, o := range orgs() {
		o := o
		last := map[int]uint64{}
		// Hammer a few offsets unevenly to force rebases in the split
		// designs.
		for i := 0; i < 5000; i++ {
			off := i % 3
			if i%7 == 0 {
				off = 1
			}
			o.Increment(9, off, 0)
			v := o.Counter(9, off)
			if v <= last[off] {
				t.Fatalf("%s: counter for offset %d went %d -> %d", name, off, last[off], v)
			}
			last[off] = v
		}
	}
}

func TestSC64OverflowAt128thWrite(t *testing.T) {
	o := New(config.CtrSC64)
	for i := 0; i < 127; i++ {
		if ov := o.Increment(1, 0, 0); ov.Happened {
			t.Fatalf("overflow after only %d increments", i+1)
		}
	}
	ov := o.Increment(1, 0, 0)
	if !ov.Happened {
		t.Fatal("128th increment of a 7-bit minor must overflow")
	}
	if ov.ReencryptBlocks != 64 {
		t.Fatalf("sc64 overflow re-encrypts %d blocks, want 64", ov.ReencryptBlocks)
	}
	if ov.Level != 0 {
		t.Fatalf("overflow level = %d, want 0", ov.Level)
	}
	// After the rebase the counter is still larger than before.
	if o.Counter(1, 0) <= 127 {
		t.Fatalf("post-rebase counter %d not above pre-rebase values", o.Counter(1, 0))
	}
}

func TestMorphableUniformSmallCountersNeverOverflow(t *testing.T) {
	o := New(config.CtrMorphable)
	// All 128 minors at up to 7 (3 bits) fit the uniform format.
	for off := 0; off < 128; off++ {
		for i := 0; i < 7; i++ {
			if ov := o.Increment(2, off, 0); ov.Happened {
				t.Fatalf("uniform 3-bit population overflowed at off=%d i=%d", off, i)
			}
		}
	}
}

func TestMorphableZCCHoldsFewLargeCounters(t *testing.T) {
	o := New(config.CtrMorphable)
	// One hot counter can grow far beyond 3 bits: ZCC formats hold it.
	for i := 0; i < 4000; i++ {
		if ov := o.Increment(3, 5, 0); ov.Happened {
			t.Fatalf("single hot counter overflowed at %d", i)
		}
	}
}

func TestMorphableOverflowsWhenUnrepresentable(t *testing.T) {
	o := New(config.CtrMorphable)
	// Drive many minors above the uniform width until no ZCC format
	// fits: 64 non-zero 4-bit minors exceed nz*w <= 256 at w=4.
	overflowed := false
	for off := 0; off < 128 && !overflowed; off++ {
		for i := 0; i < 9; i++ {
			if ov := o.Increment(4, off, 0); ov.Happened {
				overflowed = true
				if ov.ReencryptBlocks != 128 {
					t.Fatalf("morphable overflow re-encrypts %d, want 128", ov.ReencryptBlocks)
				}
				break
			}
		}
	}
	if !overflowed {
		t.Fatal("wide minor population never overflowed")
	}
}

func TestSerializeChangesWithState(t *testing.T) {
	for name, o := range orgs() {
		ser, ok := o.(Serializer)
		if !ok {
			t.Fatalf("%s does not serialize", name)
		}
		var before, after [SerializedBytes]byte
		ser.Serialize(7, &before)
		o.Increment(7, 1, 0)
		ser.Serialize(7, &after)
		if before == after {
			t.Errorf("%s serialization unchanged after increment", name)
		}
		// Untouched blocks serialize to zero.
		var fresh [SerializedBytes]byte
		ser.Serialize(1234, &before)
		if before != fresh {
			t.Errorf("%s fresh block serializes non-zero", name)
		}
	}
}

func TestDecodeLatencyOnlyForMorphable(t *testing.T) {
	if New(config.CtrMono).DecodeLatency() != 0 {
		t.Error("mono should decode instantly")
	}
	if New(config.CtrMorphable).DecodeLatency() == 0 {
		t.Error("morphable decode must cost time (Sec. V: 3 ns)")
	}
}

func TestRepresentableProperty(t *testing.T) {
	// representable must be monotone: zeroing any minor never makes a
	// representable block unrepresentable.
	f := func(seed [16]uint8, idx uint8) bool {
		var m [128]uint32
		for i, v := range seed {
			m[i*8] = uint32(v)
		}
		if !representable(&m) {
			return true // premise not met
		}
		m[int(idx)%128] = 0
		return representable(&m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CtrNone did not panic")
		}
	}()
	New(config.CtrNone)
}
