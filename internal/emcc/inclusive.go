package emcc

// Sec. IV-F extends EMCC to inclusive cache hierarchies. The LLC must cache
// every DRAM fill to preserve inclusivity, but under EMCC those fills are
// still ciphertext (decryption happens at L2). Two bits of bookkeeping make
// that safe:
//
//   - each LLC line carries an "encrypted & unverified" bit: set when a
//     DRAM fill is cached, cleared whenever the LLC receives a copy from an
//     L2 (L2 copies are always decrypted and verified);
//   - each L2 line carries a "clean-writeback" bit: set when the L2
//     decrypted a block whose LLC copy is still ciphertext, so evicting the
//     block in clean state must still push the plaintext down (like the
//     clean writebacks of non-inclusive hierarchies).
//
// InclusiveTracker implements exactly that bookkeeping; the timing
// simulator targets the paper's primary (non-inclusive) hierarchy, so this
// state machine is exercised by unit tests rather than timing runs (see
// DESIGN.md §6).
type InclusiveTracker struct {
	llcUnverified map[uint64]bool
	l2CleanWB     map[uint64]bool
}

// NewInclusiveTracker builds an empty tracker.
func NewInclusiveTracker() *InclusiveTracker {
	return &InclusiveTracker{
		llcUnverified: make(map[uint64]bool),
		l2CleanWB:     make(map[uint64]bool),
	}
}

// FillFromDRAM records a DRAM fill cached in the LLC for inclusivity: the
// copy is ciphertext, encrypted & unverified.
func (t *InclusiveTracker) FillFromDRAM(block uint64) {
	t.llcUnverified[block] = true
}

// LLCUnverified reports whether the LLC's copy is still ciphertext.
func (t *InclusiveTracker) LLCUnverified(block uint64) bool {
	return t.llcUnverified[block]
}

// ServeL2Miss decides how an L2 miss that hits in LLC is satisfied: from
// the LLC directly when its copy is plaintext, else from an owning/sharing
// L2 (fromL2 = true). In the latter case the LLC keeps its ciphertext copy
// and bit until some L2 supplies a verified copy.
func (t *InclusiveTracker) ServeL2Miss(block uint64) (fromL2 bool) {
	return t.llcUnverified[block]
}

// L2Decrypted records that an L2 decrypted and verified `block` whose LLC
// copy is still ciphertext: the L2 must remember to perform a clean
// writeback if it evicts the block clean.
func (t *InclusiveTracker) L2Decrypted(block uint64) {
	if t.llcUnverified[block] {
		t.l2CleanWB[block] = true
	}
}

// LLCReceivesCopyFromL2 records the LLC obtaining a (necessarily verified)
// copy from an L2 for any reason: both bits reset.
func (t *InclusiveTracker) LLCReceivesCopyFromL2(block uint64) {
	delete(t.llcUnverified, block)
	delete(t.l2CleanWB, block)
}

// L2Evict reports whether evicting `block` from L2 in clean state must
// still write the plaintext down to the LLC, and updates the bits as the
// writeback lands.
func (t *InclusiveTracker) L2Evict(block uint64, dirty bool) (writeback bool) {
	need := dirty || t.l2CleanWB[block]
	if need {
		t.LLCReceivesCopyFromL2(block)
	}
	return need
}

// LLCEvict clears all state for a block leaving the LLC (inclusive
// hierarchies also back-invalidate L2s; the caller handles that).
func (t *InclusiveTracker) LLCEvict(block uint64) {
	delete(t.llcUnverified, block)
	delete(t.l2CleanWB, block)
}

// IntensityMonitor implements Sec. IV-F's dynamic EMCC control for
// non-memory-intensive applications: an L2 periodically compares how many
// of its misses were satisfied by DRAM against how many requests it
// received, and turns EMCC off (offloading all cryptography back to the MC)
// when the application is not memory-intensive — saving L2 space and
// energy where EMCC cannot help.
type IntensityMonitor struct {
	// Window is the sampling period in L2 requests.
	Window int64
	// MinDRAMPerK is the DRAM-fills-per-thousand-requests threshold
	// below which EMCC turns off for the next window.
	MinDRAMPerK int64

	// OnTransition, when non-nil, is called whenever a window boundary
	// flips the enabled state (observability hook: the timing simulator
	// emits a trace event so EMCC on/off phases are visible on the
	// timeline).
	OnTransition func(enabled bool)

	requests int64
	dramHits int64
	enabled  bool
}

// NewIntensityMonitor builds a monitor with the paper's framing: an
// application with fewer than one memory access per thousand instructions
// is not memory-intensive. Expressed per L2 request, the default threshold
// is 10 DRAM fills per thousand L2 requests over 8k-request windows (small
// enough to react within a phase, large enough to be stable).
func NewIntensityMonitor() *IntensityMonitor {
	return &IntensityMonitor{Window: 8 << 10, MinDRAMPerK: 10, enabled: true}
}

// Enabled reports whether EMCC is currently on.
func (m *IntensityMonitor) Enabled() bool { return m.enabled }

// OnRequest records one L2 request (hit or miss), rolling the window.
func (m *IntensityMonitor) OnRequest() {
	m.requests++
	if m.requests >= m.Window {
		perK := m.dramHits * 1000 / m.requests
		was := m.enabled
		m.enabled = perK >= m.MinDRAMPerK
		m.requests, m.dramHits = 0, 0
		if m.enabled != was && m.OnTransition != nil {
			m.OnTransition(m.enabled)
		}
	}
}

// OnDRAMFill records one L2 miss that DRAM (not the LLC) satisfied.
func (m *IntensityMonitor) OnDRAMFill() { m.dramHits++ }
