package emcc

import "testing"

func TestInclusiveDRAMFillIsUnverified(t *testing.T) {
	tr := NewInclusiveTracker()
	tr.FillFromDRAM(42)
	if !tr.LLCUnverified(42) {
		t.Fatal("DRAM fill not marked encrypted & unverified")
	}
	if !tr.ServeL2Miss(42) {
		t.Fatal("L2 miss on a ciphertext LLC copy must be served from an L2")
	}
}

func TestInclusiveL2CopyClearsBit(t *testing.T) {
	tr := NewInclusiveTracker()
	tr.FillFromDRAM(42)
	tr.LLCReceivesCopyFromL2(42)
	if tr.LLCUnverified(42) {
		t.Fatal("bit not reset after receiving a verified copy")
	}
	if tr.ServeL2Miss(42) {
		t.Fatal("plaintext LLC copy should serve misses directly")
	}
}

func TestInclusiveCleanWritebackBit(t *testing.T) {
	tr := NewInclusiveTracker()
	tr.FillFromDRAM(7)
	tr.L2Decrypted(7)
	// Clean eviction must still push plaintext down.
	if !tr.L2Evict(7, false) {
		t.Fatal("clean eviction skipped the required clean writeback")
	}
	// The writeback delivered a verified copy to the LLC.
	if tr.LLCUnverified(7) {
		t.Fatal("LLC copy still marked ciphertext after clean writeback")
	}
	// A second eviction (block re-fetched, still-verified LLC copy) does
	// not need the clean writeback.
	if tr.L2Evict(7, false) {
		t.Fatal("clean writeback repeated unnecessarily")
	}
}

func TestInclusiveDirtyEvictAlwaysWritesBack(t *testing.T) {
	tr := NewInclusiveTracker()
	if !tr.L2Evict(9, true) {
		t.Fatal("dirty eviction must write back")
	}
}

func TestInclusiveNoCleanWBWithoutCiphertextCopy(t *testing.T) {
	tr := NewInclusiveTracker()
	// The LLC copy was never ciphertext: decryption at L2 (e.g. of a
	// block another L2 supplied) sets no bookkeeping.
	tr.L2Decrypted(11)
	if tr.L2Evict(11, false) {
		t.Fatal("clean writeback without a ciphertext LLC copy")
	}
}

func TestInclusiveLLCEvictClearsState(t *testing.T) {
	tr := NewInclusiveTracker()
	tr.FillFromDRAM(5)
	tr.L2Decrypted(5)
	tr.LLCEvict(5)
	if tr.LLCUnverified(5) || tr.L2Evict(5, false) {
		t.Fatal("state survived LLC eviction")
	}
}

func TestIntensityMonitorStaysOnForIntenseApps(t *testing.T) {
	m := NewIntensityMonitor()
	m.Window = 1000
	for i := 0; i < 5000; i++ {
		m.OnRequest()
		if i%20 == 0 { // 50 DRAM fills per thousand requests
			m.OnDRAMFill()
		}
	}
	if !m.Enabled() {
		t.Fatal("EMCC turned off for a memory-intensive app")
	}
}

func TestIntensityMonitorTurnsOffForCacheResidentApps(t *testing.T) {
	m := NewIntensityMonitor()
	m.Window = 1000
	for i := 0; i < 1000; i++ {
		m.OnRequest() // zero DRAM fills
	}
	if m.Enabled() {
		t.Fatal("EMCC stayed on for a cache-resident app")
	}
}

func TestIntensityMonitorRecovers(t *testing.T) {
	m := NewIntensityMonitor()
	m.Window = 1000
	for i := 0; i < 1000; i++ {
		m.OnRequest()
	}
	if m.Enabled() {
		t.Fatal("should be off after an idle window")
	}
	// A memory-intensive phase turns it back on at the window boundary.
	for i := 0; i < 1000; i++ {
		m.OnRequest()
		m.OnDRAMFill()
	}
	if !m.Enabled() {
		t.Fatal("EMCC did not re-enable after an intense window")
	}
}
