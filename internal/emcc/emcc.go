// Package emcc encodes the decision rules of Eager Memory Cryptography in
// Caches (Sec. IV) — the paper's contribution — in a form shared by the
// functional (Pintool-style) and timing (gem5-style) simulators:
//
//   - Serial counter lookup in L2 only after a data read miss (never for
//     writebacks), delayed by 'J' spare-cycle latency (Sec. IV-C).
//   - Speculative parallel counter fetch to LLC when the counter also
//     misses in L2, with the 32 KB occupancy cap.
//   - AES start gating: L2 waits one LLC-hit latency before starting AES so
//     LLC hits never waste AES bandwidth (Sec. IV-D).
//   - Adaptive offload: when the L2 AES queue delay exceeds the latency
//     EMCC could save, the decision bit in the miss request sends
//     decryption/verification back to the MC (Sec. IV-D).
//   - MC-side handling whenever the data's counter missed on-chip
//     (L2+LLC): the MC decrypts/verifies and tags the response (Sec. IV-D).
//   - Counter-block invalidation in L2 when the MC updates a counter while
//     serving a writeback (Sec. IV-C, Fig 23).
package emcc

import (
	"repro/internal/config"
	"repro/internal/inv"
	"repro/internal/noc"
	"repro/internal/sim"
)

// The metric vocabulary both simulators share for EMCC events lives in
// the central key registry (internal/stats/keys.go, the Emcc* constants)
// so figures and the differential harness read one set of names.

// Policy holds the tuned decision parameters.
type Policy struct {
	// LookupDelay is 'J' (Fig 10): spare-cycle delay of the serial
	// counter lookup in L2 after a data miss.
	LookupDelay sim.Time
	// LLCHitWait gates AES start: only when the data response has not
	// returned within this window does L2 commit AES bandwidth. Set to
	// the expected LLC hit round trip.
	LLCHitWait sim.Time
	// OffloadThreshold is the AES queue delay above which decryption is
	// offloaded back to the MC: queuing longer than the latency EMCC
	// could save (roughly the MC-to-L2 response travel time) is a loss.
	OffloadThreshold sim.Time
	// L2CounterCap bounds counter bytes resident in L2 (32 KB, Sec. V).
	L2CounterCap int64
	// OffloadDisabled removes the adaptive offload (ablation).
	OffloadDisabled bool
}

// NewPolicy derives the policy from the configuration and mesh geometry,
// recording any gated validation failures on the process-wide recorder.
func NewPolicy(cfg *config.Config, mesh *noc.Mesh) Policy {
	return NewPolicyRec(cfg, mesh, nil)
}

// NewPolicyRec is NewPolicy with the validation checks bound to the given
// run's invariant recorder (nil falls back to the process-wide default).
func NewPolicyRec(cfg *config.Config, mesh *noc.Mesh, rec *inv.Recorder) Policy {
	rec = inv.Or(rec)
	// Expected LLC hit RTT from an L2: two mean one-way traversals plus
	// the slice's tag+data lookup.
	meanOneWay := mesh.MeanOneWay(mesh.CoreTile(0))
	llcHit := 2*meanOneWay + cfg.L3TagLatency + cfg.L3DataLatency
	// The latency EMCC saves by computing at L2 is roughly the response
	// travel time MC -> slice -> L2 (two mean traversals): AES overlaps
	// with the data crossing the NoC instead of serialising at the MC.
	save := 2 * meanOneWay
	if cfg.EMCCDisableAESGate {
		llcHit = 0
	}
	p := Policy{
		LookupDelay:      cfg.EMCCLookupDelay,
		LLCHitWait:       llcHit,
		OffloadThreshold: save,
		L2CounterCap:     cfg.EMCCL2CounterBytes,
		OffloadDisabled:  cfg.EMCCDisableOffload,
	}
	// A policy with negative waits or a non-positive counter budget would
	// schedule events in the past or starve the L2 of counters entirely.
	if rec.On() {
		if p.LookupDelay < 0 || p.LLCHitWait < 0 || p.OffloadThreshold < 0 {
			rec.Failf("emcc", "negative policy delay: lookup=%d llc-wait=%d offload=%d", p.LookupDelay, p.LLCHitWait, p.OffloadThreshold)
		}
		if p.L2CounterCap <= 0 {
			rec.Failf("emcc", "non-positive L2 counter budget %d bytes", p.L2CounterCap)
		}
	}
	return p
}

// ShouldOffload reports whether a new L2 miss should carry the offload
// decision bit given the current L2 AES pool queue delay.
func (p Policy) ShouldOffload(aesQueueDelay sim.Time) bool {
	if p.OffloadDisabled {
		return false
	}
	return aesQueueDelay > p.OffloadThreshold
}

// AESOpsPerRead is the AES work to decrypt and verify one 64 B read: four
// OTPs plus one MAC AES (Sec. V).
const AESOpsPerRead = 5

// AESOpsPerWrite is the AES work to encrypt and re-MAC one 64 B writeback
// (Sec. V).
const AESOpsPerWrite = 8
