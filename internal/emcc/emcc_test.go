package emcc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
)

func testPolicy() Policy {
	cfg := config.Default()
	mesh := noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay)
	return NewPolicy(&cfg, mesh)
}

func TestPolicyDerivation(t *testing.T) {
	p := testPolicy()
	if p.LookupDelay <= 0 {
		t.Fatal("lookup delay J must be positive")
	}
	// The AES gate approximates one LLC hit round trip (~17 ns with the
	// Table I mesh).
	if w := p.LLCHitWait.Nanoseconds(); w < 12 || w > 22 {
		t.Fatalf("LLCHitWait = %.1f ns, want ~17", w)
	}
	// Offload threshold approximates the recoverable response travel.
	if o := p.OffloadThreshold.Nanoseconds(); o < 8 || o > 20 {
		t.Fatalf("OffloadThreshold = %.1f ns, want ~13", o)
	}
	if p.L2CounterCap != 32<<10 {
		t.Fatalf("L2 counter cap = %d, want 32 KiB", p.L2CounterCap)
	}
}

func TestShouldOffload(t *testing.T) {
	p := testPolicy()
	if p.ShouldOffload(0) {
		t.Fatal("idle AES pool should never offload")
	}
	if !p.ShouldOffload(p.OffloadThreshold + sim.NS(1)) {
		t.Fatal("deep AES queue should offload")
	}
}

func TestAESOpCountsMatchSectionV(t *testing.T) {
	// Sec. V: "each memory read calls for five AES calculations ...
	// each memory writeback calls for eight".
	if AESOpsPerRead != 5 {
		t.Fatalf("read ops = %d, want 5", AESOpsPerRead)
	}
	if AESOpsPerWrite != 8 {
		t.Fatalf("write ops = %d, want 8", AESOpsPerWrite)
	}
}
