// Package fsim is the functional cache-model simulator — the equivalent of
// the paper's Pintool methodology (Sec. III): it replays reference streams
// through the L1/L2/LLC hierarchy, the MC's counter cache and the counter
// organisation, counting hits, misses, DRAM traffic, overflow traffic and
// the EMCC-specific events. No timing is modelled; this is what produces
// Figs 2, 6, 7, 11, 12, 23 and 24.
package fsim

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/emcc"
	"repro/internal/inv"
	"repro/internal/mc"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options selects the fsim configuration beyond config.Config.
type Options struct {
	Benchmark string
	Cores     int
	Seed      uint64
	Refs      int64 // memory references to replay (total across cores)
	// Warmup references are replayed before Refs with statistics
	// discarded afterwards — the equivalent of the paper's cache- and
	// counter-warming phases (Sec. V).
	Warmup int64
	Scale  workload.Scale
	// Generators, when non-nil, replaces the synthetic benchmark with
	// caller-provided streams (e.g. a recorded trace, internal/trace);
	// DataBytes must then bound every address they emit.
	Generators []workload.Generator
	DataBytes  int64
	// Recorder, when non-nil, receives this run's invariant violations
	// instead of the process-wide default recorder — concurrent runs in one
	// process each keep their own ledger.
	Recorder *inv.Recorder
}

// Sim is one functional simulation instance.
type Sim struct {
	cfg  *config.Config
	opt  Options
	st   *stats.Set
	l1   []*cache.Cache
	l2   []*cache.Cache
	mesh *noc.Mesh
	llc  []*cache.Cache // per-slice shards, mesh.SliceIndexOf geometry
	home *mc.Home
	pol  emcc.Policy
	gens []workload.Generator

	trc      *obs.Tracer // nil = tracing disabled
	warming  bool
	refsSeen int64 // measured references replayed (pseudo-time for flow events)
}

// New builds a functional simulation. cfg.Counter selects the secure-memory
// design; cfg.CountersInLLC / cfg.EMCC select the architecture.
func New(cfg *config.Config, opt Options) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Cores == 0 {
		opt.Cores = cfg.Cores
	}
	if opt.Scale == (workload.Scale{}) {
		opt.Scale = workload.DefaultScale()
	}
	gens := opt.Generators
	dataBytes := opt.DataBytes
	if gens == nil {
		var err error
		gens, err = workload.NewSet(opt.Benchmark, opt.Cores, opt.Seed, opt.Scale)
		if err != nil {
			return nil, err
		}
		dataBytes, err = workload.SpaceBytes(opt.Benchmark, opt.Cores, opt.Scale)
		if err != nil {
			return nil, err
		}
	} else {
		if len(gens) != opt.Cores {
			return nil, fmt.Errorf("%s: %d generators for %d cores", "sim", len(gens), opt.Cores)
		}
		if dataBytes <= 0 {
			return nil, fmt.Errorf("sim: DataBytes required with custom generators")
		}
	}
	rec := inv.Or(opt.Recorder)
	s := &Sim{
		cfg:  cfg,
		opt:  opt,
		st:   stats.NewSet(),
		mesh: noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay),
		gens: gens,
	}
	// The LLC splits into per-tile slices exactly like tsim's (same
	// SliceIndexOf hash, same SplitSets share), so the functional and
	// timing models warm identical cache contents.
	totalSets := uint64(cfg.L3Bytes/addr.BlockBytes) / uint64(cfg.L3Ways)
	split := cache.SplitSets(totalSets, s.mesh.CoreTiles())
	for j, sets := range split {
		g := cache.NewSets(fmt.Sprintf("llc.%d", j), sets, cfg.L3Ways)
		g.SetRecorder(rec)
		s.llc = append(s.llc, g)
	}
	for c := 0; c < opt.Cores; c++ {
		l1 := cache.New(fmt.Sprintf("l1.%d", c), cfg.L1Bytes, cfg.L1Ways)
		l1.SetRecorder(rec)
		s.l1 = append(s.l1, l1)
		l2 := cache.New(fmt.Sprintf("l2.%d", c), cfg.L2Bytes, cfg.L2Ways)
		l2.SetRecorder(rec)
		if cfg.EMCC {
			l2.SetCounterCap(cfg.EMCCL2CounterBytes)
		}
		s.l2 = append(s.l2, l2)
	}
	// Only counter-backed designs build the metadata home; the counter-free
	// direct-cipher designs (CtrBipBip, CtrInSRAM) have no counters, tree or
	// metadata cache to model.
	if cfg.Counter.HasCounters() {
		s.home = mc.NewHome(cfg, dataBytes)
		s.home.SetRecorder(rec)
	}
	s.pol = emcc.Policy{L2CounterCap: cfg.EMCCL2CounterBytes}
	return s, nil
}

// Stats exposes the collected metrics.
func (s *Sim) Stats() *stats.Set { return s.st }

// SetTracer attaches a tracer. fsim has no clock, so misses are recorded
// as flow events stamped with the reference index; warmup is never traced.
func (s *Sim) SetTracer(t *obs.Tracer) { s.trc = t }

// Space exposes the address map (nil for non-secure runs).
func (s *Sim) Space() *addr.Space {
	if s.home == nil {
		return nil
	}
	return s.home.Space
}

// Run replays the warmup (discarding statistics) and then opt.Refs
// references, round-robin across cores.
func (s *Sim) Run() {
	s.warming = true
	s.replay(s.opt.Warmup)
	s.warming = false
	s.st.Reset()
	s.replay(s.opt.Refs)
}

func (s *Sim) replay(refs int64) {
	perCore := refs / int64(len(s.gens))
	for i := int64(0); i < perCore; i++ {
		for c := range s.gens {
			s.access(c, s.gens[c].Next())
		}
	}
}

// access replays one reference through the hierarchy.
func (s *Sim) access(core int, a workload.Access) {
	block := addr.BlockOf(a.Addr)
	if !s.warming {
		s.refsSeen++
	}
	if a.Write {
		s.st.Inc(stats.FsimDataWrite)
	} else {
		s.st.Inc(stats.FsimDataRead)
	}

	// L1.
	if s.l1[core].Lookup(block) {
		if a.Write {
			s.l1[core].MarkDirty(block)
		}
		return
	}
	// L2.
	if s.l2[core].Lookup(block) {
		s.fillL1(core, block, a.Write)
		return
	}
	// L2 data miss: this is where EMCC engages (Sec. IV-C).
	s.st.Inc(stats.FsimL2DataMiss)
	if s.cfg.EMCC {
		s.emccCounterProbe(core, block)
	}

	// LLC.
	s.st.Inc(stats.FsimLLCDataAccess)
	if s.llcOf(block).Lookup(block) {
		if s.trc != nil && !s.warming {
			s.trc.Flow(core, block, a.Write, false, s.refsSeen)
		}
		// Non-inclusive victim-cache style: promote to L2.
		s.fillL2(core, block, false)
		s.fillL1(core, block, a.Write)
		return
	}
	s.st.Inc(stats.FsimLLCDataMiss)
	if s.trc != nil && !s.warming {
		s.trc.Flow(core, block, a.Write, true, s.refsSeen)
	}

	// DRAM data read, with its counter access (counter-backed designs) or
	// a direct-cipher decryption (counter-free designs).
	s.st.Inc(stats.FsimDRAMDataRead)
	if s.home != nil {
		s.counterForDataRead(core, block)
	} else {
		s.directDecrypt()
	}
	s.fillL2(core, block, false)
	s.fillL1(core, block, a.Write)
}

// fillL1 inserts into L1, spilling dirty victims into L2.
func (s *Sim) fillL1(core int, block uint64, dirty bool) {
	v, ok := s.l1[core].Insert(block, dirty, addr.KindData)
	if ok && v.Dirty {
		if !s.l2[core].MarkDirty(v.Block) {
			s.fillL2(core, v.Block, true)
		}
	}
}

// fillL2 inserts into L2 (non-inclusive first-level fill from DRAM),
// spilling victims into the LLC.
func (s *Sim) fillL2(core int, block uint64, dirty bool) {
	v, ok := s.l2[core].Insert(block, dirty, addr.KindData)
	if !ok {
		return
	}
	if v.Kind == addr.KindCounter {
		// An EMCC-cached counter block leaves L2; if it never served
		// an LLC data miss its speculative fetch was useless (Fig 11).
		if !v.WasUsed {
			s.st.Inc(stats.EmccUseless)
		}
		return // counters are clean in L2; LLC already has its copy path
	}
	s.insertLLC(v.Block, v.Dirty, v.Kind)
}

// llcOf maps a block to its home LLC slice.
func (s *Sim) llcOf(block uint64) *cache.Cache { return s.llc[s.mesh.SliceIndexOf(block)] }

// insertLLC inserts into the LLC, handling writebacks of dirty victims.
func (s *Sim) insertLLC(block uint64, dirty bool, kind addr.Kind) {
	v, ok := s.llcOf(block).Insert(block, dirty, kind)
	if !ok || !v.Dirty {
		return
	}
	switch v.Kind {
	case addr.KindData:
		s.writebackData(v.Block)
	default:
		s.writebackMeta(v.Block)
	}
}
