package fsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestCountersInLLCReducesDRAMCounterTraffic(t *testing.T) {
	// A small LLC forces counter re-fetches so the second-level counter
	// cache effect is visible at test scale.
	shrink := func(c *config.Config) { c.L3Bytes = 1 << 20; c.CtrCacheBytes = 8 << 10 }
	with := run(t, shrink, "canneal", 400_000)
	without := run(t, func(c *config.Config) { shrink(c); c.CountersInLLC = false }, "canneal", 400_000)
	w := with.Stats().Counter(stats.FsimDRAMCtrRead)
	wo := without.Stats().Counter(stats.FsimDRAMCtrRead)
	if w >= wo {
		t.Fatalf("LLC counter caching did not reduce counter reads: %d vs %d", w, wo)
	}
}

func TestWritebacksGenerateCounterWrites(t *testing.T) {
	s := run(t, func(c *config.Config) {
		c.L3Bytes = 512 << 10
		c.L2Bytes = 128 << 10
		c.L1Bytes = 16 << 10
		c.CtrCacheBytes = 8 << 10 // force dirty counters out to LLC and DRAM
	}, "canneal", 800_000)
	st := s.Stats()
	if st.Counter(stats.FsimDRAMDataWrite) == 0 {
		t.Fatal("no data writebacks reached DRAM")
	}
	if st.Counter(stats.FsimDRAMCtrWrite) == 0 {
		t.Fatal("no counter writebacks reached DRAM")
	}
}

func TestSC64OverflowsMoreThanMorphable(t *testing.T) {
	// SC-64's 7-bit minors overflow long before Morphable's formats give
	// up under the same write stream.
	small := func(c *config.Config) { c.L3Bytes = 512 << 10; c.L2Bytes = 128 << 10; c.L1Bytes = 16 << 10 }
	sc := run(t, func(c *config.Config) { small(c); c.Counter = config.CtrSC64 }, "canneal", 600_000)
	mo := run(t, small, "canneal", 600_000)
	scOvf := sc.Stats().Counter(stats.FsimDRAMOvfL0)
	moOvf := mo.Stats().Counter(stats.FsimDRAMOvfL0)
	if scOvf == 0 {
		t.Skip("no SC-64 overflow at this scale")
	}
	if moOvf > scOvf {
		t.Fatalf("morphable overflowed more than sc64: %d vs %d", moOvf, scOvf)
	}
}

func TestEMCCUselessRateIsSmall(t *testing.T) {
	s := run(t, func(c *config.Config) { c.EMCC = true }, "pageRank", 600_000)
	st := s.Stats()
	useless := float64(st.Counter(stats.EmccUseless))
	misses := float64(st.Counter(stats.FsimL2DataMiss))
	if misses == 0 {
		t.Fatal("no L2 misses")
	}
	if frac := useless / misses; frac > 0.25 {
		t.Fatalf("useless counter accesses %.1f%% of L2 misses; paper reports ~3%%", 100*frac)
	}
}

func TestEMCCInvalidationsTracked(t *testing.T) {
	s := run(t, func(c *config.Config) { c.EMCC = true }, "canneal", 600_000)
	st := s.Stats()
	if st.Counter(stats.EmccCtrInserted) == 0 {
		t.Fatal("no counters inserted into L2")
	}
	inval := st.Counter(stats.EmccInvalidations)
	if inval == 0 {
		t.Skip("no invalidations at this scale")
	}
	if inval > st.Counter(stats.EmccCtrInserted) {
		t.Fatal("more invalidations than insertions")
	}
}

func TestWarmupIsExcludedFromStats(t *testing.T) {
	cfg := config.Default()
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Seed: 9, Refs: 100_000, Warmup: 100_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	reads := s.Stats().Counter(stats.FsimDataRead) + s.Stats().Counter(stats.FsimDataWrite)
	if reads != 100_000 {
		t.Fatalf("measured refs = %d, want exactly Refs (warmup excluded)", reads)
	}
}

func TestRegularBenchmarksHaveLowMissRates(t *testing.T) {
	// The Fig 24 set must be far more cache-friendly than the primary
	// set, or the Fig 24 "useless ~1%" shape cannot hold.
	reg := run(t, func(c *config.Config) {}, "exchange2_s", 300_000)
	irr := run(t, func(c *config.Config) {}, "canneal", 300_000)
	regMiss := float64(reg.Stats().Counter(stats.FsimL2DataMiss)) / 300_000
	irrMiss := float64(irr.Stats().Counter(stats.FsimL2DataMiss)) / 300_000
	if regMiss >= irrMiss {
		t.Fatalf("exchange2_s misses (%.3f) not below canneal (%.3f)", regMiss, irrMiss)
	}
}

func TestSpaceExposedOnlyWhenSecure(t *testing.T) {
	sec := run(t, func(c *config.Config) {}, "canneal", 10_000)
	if sec.Space() == nil {
		t.Fatal("secure run has no space")
	}
	non := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 10_000)
	if non.Space() != nil {
		t.Fatal("non-secure run exposes a space")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 0
	if _, err := New(&cfg, Options{Benchmark: "canneal"}); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = config.Default()
	if _, err := New(&cfg, Options{Benchmark: "nosuch", Refs: 1}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestInvariantsAcrossConfigs replays a small trace through randomised
// configurations and checks the structural invariants that every run must
// satisfy, whatever the parameters.
func TestInvariantsAcrossConfigs(t *testing.T) {
	type knobs struct {
		design config.CounterDesign
		emcc   bool
		inLLC  bool
		llcKB  int64
		ctrKB  int64
		bench  string
	}
	cases := []knobs{
		{config.CtrMono, false, true, 1024, 32, "canneal"},
		{config.CtrMono, false, false, 512, 16, "mcf"},
		{config.CtrSC64, false, true, 2048, 64, "pageRank"},
		{config.CtrSC64, false, false, 1024, 128, "omnetpp"},
		{config.CtrMorphable, true, true, 512, 32, "BFS"},
		{config.CtrMorphable, true, true, 4096, 256, "canneal"},
		{config.CtrMorphable, false, true, 8192, 128, "triangleCount"},
		{config.CtrNone, false, false, 2048, 128, "DFS"},
	}
	for i, k := range cases {
		cfg := config.Default()
		cfg.Counter = k.design
		cfg.EMCC = k.emcc
		cfg.CountersInLLC = k.inLLC
		cfg.L3Bytes = k.llcKB << 10
		cfg.CtrCacheBytes = k.ctrKB << 10
		s, err := New(&cfg, Options{
			Benchmark: k.bench, Seed: uint64(i) + 1, Refs: 120_000,
			Warmup: 60_000, Scale: workload.TestScale(),
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		s.Run()
		st := s.Stats()

		// Accesses conserved.
		if st.Counter(stats.FsimDataRead)+st.Counter(stats.FsimDataWrite) != 120_000 {
			t.Fatalf("case %d: refs not conserved", i)
		}
		// The miss funnel can only narrow.
		l2 := st.Counter(stats.FsimL2DataMiss)
		llc := st.Counter(stats.FsimLLCDataMiss)
		dram := st.Counter(stats.FsimDRAMDataRead)
		if llc > l2 || dram > llc {
			t.Fatalf("case %d: funnel widened: l2=%d llc=%d dram=%d", i, l2, llc, dram)
		}
		// LLC lookups equal L2 misses.
		if st.Counter(stats.FsimLLCDataAccess) != l2 {
			t.Fatalf("case %d: llc accesses %d != l2 misses %d", i, st.Counter(stats.FsimLLCDataAccess), l2)
		}
		switch {
		case k.design == config.CtrNone:
			if st.Counter(stats.FsimDRAMCtrRead)+st.Counter(stats.FsimDRAMCtrWrite) != 0 {
				t.Fatalf("case %d: non-secure counter traffic", i)
			}
		case !k.emcc:
			// Classification must cover every DRAM data read.
			sum := st.Counter(stats.FsimCtrMCHit) + st.Counter(stats.FsimCtrLLCHit) + st.Counter(stats.FsimCtrLLCMiss)
			if k.inLLC && sum != dram {
				t.Fatalf("case %d: classification %d != dram reads %d", i, sum, dram)
			}
		default:
			// EMCC: every L2 miss probes exactly once.
			probes := st.Counter(stats.EmccL2CtrHit) + st.Counter(stats.EmccL2CtrMiss)
			if probes != l2 {
				t.Fatalf("case %d: probes %d != l2 misses %d", i, probes, l2)
			}
			if st.Counter(stats.EmccSpecFetch) != st.Counter(stats.EmccL2CtrMiss) {
				t.Fatalf("case %d: spec fetches != probe misses", i)
			}
		}
	}
}
