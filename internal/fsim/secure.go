package fsim

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/stats"
)

// This file is the secure-memory side of the functional simulator: counter
// placement/classification, the EMCC L2 counter path, metadata movement
// between the MC's cache, the LLC and DRAM, and writeback counter updates
// with overflow and invalidation.

// emccCounterProbe is the Sec. IV-C flow after an L2 data miss: serially
// look up the data's counter in L2; on miss, speculatively fetch it from
// the LLC in parallel with the data access; when it misses in LLC too, the
// MC takes over (fetching, verifying, and tagging the data response) and
// returns the counter block to both LLC and L2 for future misses.
//
// The speculative LLC probe classifies its own hit/miss (the same
// ctr-llc-hit/ctr-llc-miss split tsim's counterAccessFromL2 counts, so the
// differential harness can compare the LLC split under EMCC), and the
// on-chip-miss handoff skips the LLC re-probe — the probe just missed.
func (s *Sim) emccCounterProbe(core int, dataBlock uint64) {
	cb := s.home.CounterBlockOf(dataBlock)
	if s.l2[core].Lookup(cb) {
		s.st.Inc(stats.EmccL2CtrHit)
		return
	}
	s.st.Inc(stats.EmccL2CtrMiss)
	s.st.Inc(stats.EmccSpecFetch)
	s.st.Inc(stats.FsimCtrLLCLookup)
	if s.llcOf(cb).Lookup(cb) {
		s.st.Inc(stats.FsimCtrLLCHit)
		s.insertCtrIntoL2(core, cb)
		return
	}
	s.st.Inc(stats.FsimCtrLLCMiss)
	// Counter missed on-chip: MC resolves it (possibly from its own
	// cache, else DRAM + tree verification) and supplies LLC and L2.
	s.fetchMeta(cb, true)
	s.insertLLC(cb, false, addr.KindCounter)
	s.insertCtrIntoL2(core, cb)
}

// insertCtrIntoL2 caches a counter block in L2 under the 32 KB cap,
// accounting Fig 11's useless-fetch tracking on eviction.
func (s *Sim) insertCtrIntoL2(core int, cb uint64) {
	s.st.Inc(stats.EmccCtrInserted)
	v, ok := s.l2[core].Insert(cb, false, addr.KindCounter)
	if !ok {
		return
	}
	if v.Kind == addr.KindCounter {
		if !v.WasUsed {
			s.st.Inc(stats.EmccUseless)
		}
		return
	}
	if v.Dirty {
		s.insertLLC(v.Block, true, v.Kind)
	}
}

// counterForDataRead resolves the counter for a data block being read from
// DRAM and classifies where it was found (Figs 6/7).
func (s *Sim) counterForDataRead(core int, dataBlock uint64) {
	cb := s.home.CounterBlockOf(dataBlock)
	if s.cfg.EMCC {
		// The counter was already obtained by the L2-side probe; this
		// data miss in LLC proves that fetch useful (Fig 11).
		s.l2[core].MarkUsed(cb)
		return
	}
	if s.home.LookupMeta(cb) {
		s.st.Inc(stats.FsimCtrMCHit)
		return
	}
	if s.cfg.CountersInLLC {
		s.st.Inc(stats.FsimCtrLLCLookup)
		if s.llcOf(cb).Lookup(cb) {
			s.st.Inc(stats.FsimCtrLLCHit)
			s.moveMetaToMC(cb)
			return
		}
		s.st.Inc(stats.FsimCtrLLCMiss)
	}
	// The probe (if any) just missed: go straight to DRAM + verification.
	s.fetchMeta(cb, true)
}

// fetchMeta obtains a metadata block at the MC, wherever it currently is,
// counting the traffic it generates. DRAM-sourced blocks are verified,
// which requires their parent chain on-chip (recursive fetch). skipLLC is
// set when the caller already probed (and missed) the LLC for mb, so the
// probe is neither repeated nor double-counted. Secondary probes here count
// only ctr-llc-lookups: the hit/miss classification metrics keep their
// per-primary-probe semantics (one per DRAM data read in the baseline, one
// per speculative fetch under EMCC), which is what Figs 6/7 and the
// differential rules consume.
func (s *Sim) fetchMeta(mb uint64, skipLLC bool) {
	if s.home.LookupMeta(mb) {
		return
	}
	if s.cfg.CountersInLLC && !skipLLC {
		s.st.Inc(stats.FsimCtrLLCLookup)
		if s.llcOf(mb).Lookup(mb) {
			s.moveMetaToMC(mb)
			return
		}
	}
	s.st.Inc(stats.FsimDRAMCtrRead)
	if p, ok := s.home.Space.ParentOf(mb); ok {
		s.fetchMeta(p, false)
	}
	s.moveMetaToMC(mb)
}

// moveMetaToMC fills a metadata block into the MC's private cache. Every
// displaced metadata block — clean or dirty — spills into the LLC: that is
// what makes the LLC a second-level counter cache in prior designs
// (Sec. II "Improving Counter Hit Rate").
func (s *Sim) moveMetaToMC(mb uint64) {
	v, ok := s.home.InsertMeta(mb, false)
	if ok {
		s.spillMetaVictim(v.Block, v.Dirty)
	}
}

// spillMetaVictim places an evicted MC metadata block in the LLC (or, when
// counters are not cached in LLC, writes it back if dirty).
func (s *Sim) spillMetaVictim(mb uint64, dirty bool) {
	if s.cfg.CountersInLLC {
		s.insertLLC(mb, dirty, s.home.Space.Kind(mb))
		return
	}
	if dirty {
		s.writebackMeta(mb)
	}
}

// writebackMeta is a metadata block reaching DRAM: one counter write plus
// the write-counter update of the block itself (its parent counter).
func (s *Sim) writebackMeta(mb uint64) {
	s.st.Inc(stats.FsimDRAMCtrWrite)
	s.bumpCounter(mb)
}

// directDecrypt accounts one per-block cipher operation for the
// counter-free designs on a DRAM data fill (no counter to resolve, no
// metadata traffic — just the block cipher itself).
func (s *Sim) directDecrypt() {
	switch s.cfg.Counter {
	case config.CtrBipBip:
		s.st.Inc(stats.BipBipDecryptOps)
	case config.CtrInSRAM:
		s.st.Inc(stats.InSRAMDecryptOps)
	}
}

// directEncrypt is directDecrypt's writeback counterpart.
func (s *Sim) directEncrypt() {
	switch s.cfg.Counter {
	case config.CtrBipBip:
		s.st.Inc(stats.BipBipEncryptOps)
	case config.CtrInSRAM:
		s.st.Inc(stats.InSRAMEncryptOps)
	}
}

// writebackData is a dirty data block reaching DRAM: one data write, the
// block's counter update, and — under EMCC — invalidation of the counter
// block's L2 copies (Sec. IV-C, Fig 23).
func (s *Sim) writebackData(db uint64) {
	s.st.Inc(stats.FsimDRAMDataWrite)
	if s.home == nil {
		s.directEncrypt()
		return
	}
	s.bumpCounter(db)
	if s.cfg.EMCC {
		s.invalidateL2Counters(s.home.CounterBlockOf(db))
	}
}

// bumpCounter advances the write counter protecting `block`, fetching the
// owning counter block to the MC first and accounting overflow traffic.
func (s *Sim) bumpCounter(block uint64) {
	parent, ok := s.home.Space.ParentOf(block)
	if !ok {
		return // root: on-chip counter only
	}
	s.fetchMeta(parent, false)
	ov := s.home.IncrementCounterOf(block)
	s.home.MarkMetaDirty(parent)
	if !ov.Happened {
		return
	}
	// Rebase re-encryption: each covered block is read and rewritten.
	traffic := int64(2 * ov.ReencryptBlocks)
	if ov.Level == 0 {
		s.st.Add(stats.FsimDRAMOvfL0, traffic)
	} else {
		s.st.Add(stats.FsimDRAMOvfHi, traffic)
	}
	// The rebase changed every counter in the block: EMCC must
	// invalidate stale L2 copies.
	if s.cfg.EMCC {
		s.invalidateL2Counters(parent)
	}
}

// invalidateL2Counters removes a counter block from every L2 after the MC
// updated it, counting Fig 23 invalidations (and Fig 11 uselessness when
// the copy never served an LLC miss).
func (s *Sim) invalidateL2Counters(cb uint64) {
	for _, l2 := range s.l2 {
		if v, ok := l2.Invalidate(cb); ok {
			s.st.Inc(stats.EmccInvalidations)
			if !v.WasUsed {
				s.st.Inc(stats.EmccUseless)
			}
		}
	}
}
