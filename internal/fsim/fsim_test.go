package fsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/emcc"
	"repro/internal/workload"
)

func run(t *testing.T, mutate func(*config.Config), bench string, refs int64) *Sim {
	t.Helper()
	cfg := config.Default()
	mutate(&cfg)
	s, err := New(&cfg, Options{
		Benchmark: bench,
		Seed:      42,
		Refs:      refs,
		Scale:     workload.TestScale(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run()
	return s
}

func TestNonSecureBaselineCounts(t *testing.T) {
	s := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 200_000)
	st := s.Stats()
	reads := st.Counter(MetricDataRead)
	writes := st.Counter(MetricDataWrite)
	if reads+writes != 200_000 {
		t.Fatalf("replayed %d refs, want 200000", reads+writes)
	}
	if st.Counter(MetricDRAMDataRead) == 0 {
		t.Fatal("canneal at test scale should miss to DRAM")
	}
	if st.Counter(MetricDRAMCtrRead) != 0 {
		t.Fatal("non-secure run must not generate counter traffic")
	}
}

func TestBaselineCounterClassificationAddsUp(t *testing.T) {
	s := run(t, func(c *config.Config) {}, "canneal", 200_000)
	st := s.Stats()
	dramReads := st.Counter(MetricDRAMDataRead)
	classified := st.Counter(MetricCtrMCHit) + st.Counter(MetricCtrLLCHit) + st.Counter(MetricCtrLLCMiss)
	if dramReads == 0 {
		t.Fatal("expected DRAM data reads")
	}
	if classified != dramReads {
		t.Fatalf("counter classification %d != DRAM data reads %d", classified, dramReads)
	}
}

func TestEMCCGeneratesCounterActivity(t *testing.T) {
	s := run(t, func(c *config.Config) { c.EMCC = true }, "pageRank", 200_000)
	st := s.Stats()
	if st.Counter(emcc.MetricL2CtrHit)+st.Counter(emcc.MetricL2CtrMiss) != st.Counter(MetricL2DataMiss) {
		t.Fatalf("every L2 data miss must probe the counter: hits %d + misses %d != L2 misses %d",
			st.Counter(emcc.MetricL2CtrHit), st.Counter(emcc.MetricL2CtrMiss), st.Counter(MetricL2DataMiss))
	}
	if st.Counter(emcc.MetricCtrInserted) == 0 {
		t.Fatal("EMCC should insert counters into L2")
	}
}
