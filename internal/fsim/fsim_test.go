package fsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(t *testing.T, mutate func(*config.Config), bench string, refs int64) *Sim {
	t.Helper()
	cfg := config.Default()
	mutate(&cfg)
	s, err := New(&cfg, Options{
		Benchmark: bench,
		Seed:      42,
		Refs:      refs,
		Scale:     workload.TestScale(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run()
	return s
}

func TestNonSecureBaselineCounts(t *testing.T) {
	s := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 200_000)
	st := s.Stats()
	reads := st.Counter(stats.FsimDataRead)
	writes := st.Counter(stats.FsimDataWrite)
	if reads+writes != 200_000 {
		t.Fatalf("replayed %d refs, want 200000", reads+writes)
	}
	if st.Counter(stats.FsimDRAMDataRead) == 0 {
		t.Fatal("canneal at test scale should miss to DRAM")
	}
	if st.Counter(stats.FsimDRAMCtrRead) != 0 {
		t.Fatal("non-secure run must not generate counter traffic")
	}
}

func TestBaselineCounterClassificationAddsUp(t *testing.T) {
	s := run(t, func(c *config.Config) {}, "canneal", 200_000)
	st := s.Stats()
	dramReads := st.Counter(stats.FsimDRAMDataRead)
	classified := st.Counter(stats.FsimCtrMCHit) + st.Counter(stats.FsimCtrLLCHit) + st.Counter(stats.FsimCtrLLCMiss)
	if dramReads == 0 {
		t.Fatal("expected DRAM data reads")
	}
	if classified != dramReads {
		t.Fatalf("counter classification %d != DRAM data reads %d", classified, dramReads)
	}
}

func TestEMCCGeneratesCounterActivity(t *testing.T) {
	s := run(t, func(c *config.Config) { c.EMCC = true }, "pageRank", 200_000)
	st := s.Stats()
	if st.Counter(stats.EmccL2CtrHit)+st.Counter(stats.EmccL2CtrMiss) != st.Counter(stats.FsimL2DataMiss) {
		t.Fatalf("every L2 data miss must probe the counter: hits %d + misses %d != L2 misses %d",
			st.Counter(stats.EmccL2CtrHit), st.Counter(stats.EmccL2CtrMiss), st.Counter(stats.FsimL2DataMiss))
	}
	if st.Counter(stats.EmccCtrInserted) == 0 {
		t.Fatal("EMCC should insert counters into L2")
	}
}
