// Package analysis is the project's static-analysis driver (cmd/lint): a
// standard-library-only (go/parser, go/types — no x/tools) framework that
// type-checks every package in the module and runs the project-specific
// passes enforcing the conventions the evaluation stack rests on:
//
//   - statskey: every name passed to a stats.Set / stats.Snapshot metric
//     method must resolve at compile time to a constant registered in
//     internal/stats/keys.go (typo'd keys silently compare zeros in the
//     differential harness). Dynamic key families are opted out per call
//     site with //lint:dynamic-key.
//   - detlint: packages that produce golden or byte-compared output must
//     not consult wall time (time.Now), the global math/rand source, or
//     emit output while iterating a map (iteration order is random).
//   - invgate: inv.Failf / inv.Fail call sites must be dominated by an
//     inv.On() check so production runs pay one branch per site.
//   - obsnil: direct method calls on a possibly-nil *obs.Tracer are only
//     legal on the documented nil-safe set (tracerNilSafe in
//     internal/obs).
//
// Findings print as "file:line: [pass] message" and any finding makes the
// driver exit non-zero. A finding is suppressed by a
// "//lint:ignore <pass> <reason>" comment on the same line or the line
// above.
package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// File is the module-relative path of the offending file.
	File string
	// Line is the 1-based line of the offending node.
	Line int
	// Pass names the pass that produced the finding.
	Pass string
	// Msg describes the violation.
	Msg string
}

// String renders the canonical "file:line: [pass] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Pass, f.Msg)
}

// Ref is one source reference to a registered stats key.
type Ref struct {
	File string
	Line int
}

// Result is the outcome of one driver run.
type Result struct {
	// Findings is sorted by file, line, pass; suppressed findings are
	// already removed.
	Findings []Finding
	// Keys lists the registered stats keys (sorted) discovered in
	// internal/stats/keys.go.
	Keys []string
	// KeyIndex maps each registered key to its references outside the
	// stats package: uses of the registry constant anywhere, plus
	// constant key arguments at metric call sites. A registered key with
	// no references is an orphan (see keys_test.go).
	KeyIndex map[string][]Ref
}

// pass is one analysis over a single package, with module-wide context.
type pass interface {
	name() string
	run(ctx *context, pkg *Package)
}

// modulePass is one analysis over the whole module at once — the
// interprocedural passes, which reason over the shared call graph and
// filter their own reporting to pattern-selected packages.
type modulePass interface {
	name() string
	runModule(ctx *context)
}

// per-package passes in reporting order.
func allPasses() []pass {
	return []pass{statskey{}, detlint{}, obsnil{}}
}

// interprocedural passes, run once after the per-package passes.
func allModulePasses() []modulePass {
	return []modulePass{invgate{}, shardsafe{}, allocpin{}}
}

// Passes lists the pass names the driver runs, in order.
func Passes() []string {
	var names []string
	for _, p := range allPasses() {
		names = append(names, p.name())
	}
	for _, p := range allModulePasses() {
		names = append(names, p.name())
	}
	return names
}

// context carries module-wide state shared by the passes.
type context struct {
	mod *Module

	// registry: key value -> declaration position; keyConsts: the
	// *types.Const objects declared in keys.go, for use-indexing.
	registry  map[string]token.Position
	keyConsts map[types.Object]string
	statsPkg  *Package

	// nilSafe is the obsnil allow-list read from internal/obs.
	nilSafe map[string]bool
	obsPkg  *Package

	// suppress: file -> line -> pass name -> the marker granting the
	// suppression (tracked so markers that never fire become findings).
	suppress map[string]map[int]map[string]*ignoreMarker
	// markers lists every well-formed //lint:ignore marker in collection
	// order, for the unused-suppression audit after all passes ran.
	markers []*ignoreMarker
	// dynamicKey: file -> lines annotated //lint:dynamic-key.
	dynamicKey map[string]map[int]bool

	// graph is the whole-module call graph shared by the interprocedural
	// passes (invgate, shardsafe, allocpin).
	graph *CallGraph
	// escapes is the compiler's escape-analysis fact set (allocpin).
	escapes *escapeSet

	// patterns is the package selection for this run; findings are only
	// reported for matching packages.
	patterns []string

	findings []Finding
	keyIndex map[string][]Ref
}

// ignoreMarker is one well-formed //lint:ignore <pass> <reason> comment.
type ignoreMarker struct {
	file string // module-relative file of the marker
	line int
	pass string
	rel  string // module-relative package dir, for pattern filtering
	used bool   // set when the marker suppresses at least one finding
}

// reportf records a finding at pos unless suppressed.
func (ctx *context) reportf(pass string, pos token.Pos, format string, args ...interface{}) {
	p := ctx.mod.Fset.Position(pos)
	ctx.reportAt(pass, p.Filename, p.Line, format, args...)
}

// reportAt records a finding by file and line unless suppressed — the
// position-free form for facts that come from outside the AST (allocpin's
// compiler diagnostics).
func (ctx *context) reportAt(pass, file string, line int, format string, args ...interface{}) {
	if lines := ctx.suppress[file]; lines != nil {
		if m := lines[line][pass]; m != nil {
			m.used = true
			return
		}
		if m := lines[line-1][pass]; m != nil {
			m.used = true
			return
		}
	}
	ctx.findings = append(ctx.findings, Finding{
		File: file, Line: line, Pass: pass, Msg: fmt.Sprintf(format, args...),
	})
}

// dynamicKeyAllowed reports whether pos sits on (or just under) a
// //lint:dynamic-key annotation.
func (ctx *context) dynamicKeyAllowed(pos token.Pos) bool {
	p := ctx.mod.Fset.Position(pos)
	lines := ctx.dynamicKey[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}

// addKeyRef records one reference to a registered key.
func (ctx *context) addKeyRef(key string, pos token.Pos) {
	p := ctx.mod.Fset.Position(pos)
	ctx.keyIndex[key] = append(ctx.keyIndex[key], Ref{File: p.Filename, Line: p.Line})
}

// pathIs reports whether the import path is the module-relative package
// rel (e.g. "internal/stats"), in this module or any fixture module.
func pathIs(importPath, rel string) bool {
	return importPath == rel || strings.HasSuffix(importPath, "/"+rel)
}

// Run loads the module rooted at root (its go.mod directory), runs every
// pass over the packages selected by patterns ("./..." when empty) and
// returns the surviving findings plus the stats-key index. An error means
// the module could not be loaded or type-checked — findings are the
// linter's output, errors are the driver's failure.
func Run(root string, patterns ...string) (*Result, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ctx := &context{
		mod:        mod,
		patterns:   patterns,
		registry:   make(map[string]token.Position),
		keyConsts:  make(map[types.Object]string),
		nilSafe:    make(map[string]bool),
		suppress:   make(map[string]map[int]map[string]*ignoreMarker),
		dynamicKey: make(map[string]map[int]bool),
		keyIndex:   make(map[string][]Ref),
	}
	ctx.collectAnnotations()
	ctx.collectRegistry()
	ctx.collectNilSafe()
	ctx.indexKeyUses()
	ctx.graph = buildCallGraph(mod)
	ctx.escapes, err = loadEscapes(root)
	if err != nil {
		return nil, fmt.Errorf("escape analysis: %w", err)
	}

	for _, pkg := range mod.Pkgs {
		if !matchAny(pkg.Rel, patterns) {
			continue
		}
		for _, p := range allPasses() {
			p.run(ctx, pkg)
		}
	}
	for _, p := range allModulePasses() {
		p.runModule(ctx)
	}
	ctx.auditSuppressions()

	sort.Slice(ctx.findings, func(i, j int) bool {
		a, b := ctx.findings[i], ctx.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Pass < b.Pass
	})
	res := &Result{Findings: ctx.findings, KeyIndex: ctx.keyIndex}
	for k := range ctx.registry {
		res.Keys = append(res.Keys, k)
	}
	sort.Strings(res.Keys)
	return res, nil
}

// matchAny reports whether the module-relative package dir matches any
// pattern. Supported forms: "./..." (everything), "./dir/..." (subtree),
// "./dir" (exact), with or without the leading "./".
func matchAny(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}

// collectAnnotations scans every comment for //lint:ignore and
// //lint:dynamic-key markers. A marker covers its own line and the next
// one, so both end-of-line and stand-alone placements work.
func (ctx *context) collectAnnotations() {
	for _, pkg := range ctx.mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					switch {
					case strings.HasPrefix(text, "lint:ignore"):
						ctx.addIgnore(pkg, c, strings.TrimPrefix(text, "lint:ignore"))
					case strings.HasPrefix(text, "lint:dynamic-key"):
						p := ctx.mod.Fset.Position(c.Pos())
						lines := ctx.dynamicKey[p.Filename]
						if lines == nil {
							lines = make(map[int]bool)
							ctx.dynamicKey[p.Filename] = lines
						}
						lines[p.Line] = true
					}
				}
			}
		}
	}
}

// addIgnore parses the "<pass> <reason>" tail of a //lint:ignore comment.
// A malformed marker is itself a finding (in pattern-selected packages):
// a suppression without a pass and a reason suppresses nothing and
// documents nothing.
func (ctx *context) addIgnore(pkg *Package, c *ast.Comment, rest string) {
	fields := strings.Fields(rest)
	p := ctx.mod.Fset.Position(c.Pos())
	if len(fields) < 2 {
		if matchAny(pkg.Rel, ctx.patterns) {
			ctx.findings = append(ctx.findings, Finding{
				File: p.Filename, Line: p.Line, Pass: "lint",
				Msg: "malformed suppression: want //lint:ignore <pass> <reason>",
			})
		}
		return
	}
	lines := ctx.suppress[p.Filename]
	if lines == nil {
		lines = make(map[int]map[string]*ignoreMarker)
		ctx.suppress[p.Filename] = lines
	}
	if lines[p.Line] == nil {
		lines[p.Line] = make(map[string]*ignoreMarker)
	}
	m := &ignoreMarker{file: p.Filename, line: p.Line, pass: fields[0], rel: pkg.Rel}
	lines[p.Line][fields[0]] = m
	ctx.markers = append(ctx.markers, m)
}

// auditSuppressions reports every well-formed marker that suppressed
// nothing: a stale suppression hides future regressions and documents a
// violation that no longer exists. Runs after every pass has finished.
func (ctx *context) auditSuppressions() {
	for _, m := range ctx.markers {
		if m.used || !matchAny(m.rel, ctx.patterns) {
			continue
		}
		ctx.findings = append(ctx.findings, Finding{
			File: m.file, Line: m.line, Pass: "lint",
			Msg: fmt.Sprintf("unused suppression: no %s finding here — remove the //lint:ignore or restore the violation it documented", m.pass),
		})
	}
}

// collectRegistry reads the stats-key registry: every string constant
// declared in keys.go of the module's internal/stats package.
func (ctx *context) collectRegistry() {
	for _, pkg := range ctx.mod.Pkgs {
		if !pathIs(pkg.Path, "internal/stats") {
			continue
		}
		ctx.statsPkg = pkg
		for _, f := range pkg.Files {
			pos := ctx.mod.Fset.Position(f.Pos())
			if !strings.HasSuffix(pos.Filename, "keys.go") {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || obj.Val().Kind() != constant.String {
							continue
						}
						key := constant.StringVal(obj.Val())
						ctx.registry[key] = ctx.mod.Fset.Position(name.Pos())
						ctx.keyConsts[obj] = key
					}
				}
			}
		}
		return
	}
}

// collectNilSafe reads the documented nil-safe Tracer method set from the
// tracerNilSafe map literal in internal/obs.
func (ctx *context) collectNilSafe() {
	for _, pkg := range ctx.mod.Pkgs {
		if !pathIs(pkg.Path, "internal/obs") {
			continue
		}
		ctx.obsPkg = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "tracerNilSafe" || len(vs.Values) != 1 {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							ctx.nilSafe[strings.Trim(lit.Value, `"`)] = true
						}
					}
				}
			}
		}
		return
	}
}

// indexKeyUses records every use of a registry constant outside the
// stats package itself (the registry slice in keys.go must not count as
// a reference, or orphaned keys could never be detected).
func (ctx *context) indexKeyUses() {
	for _, pkg := range ctx.mod.Pkgs {
		if pkg == ctx.statsPkg {
			continue
		}
		for id, obj := range pkg.Info.Uses {
			if key, ok := ctx.keyConsts[obj]; ok {
				ctx.addKeyRef(key, id.Pos())
			}
		}
	}
}

// walkStack traverses every file of pkg, calling fn with each node and
// the stack of its ancestors (outermost first, not including n).
func walkStack(pkg *Package, fn func(n ast.Node, stack []ast.Node)) {
	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// funcObj resolves the called function/method object of a call, through
// package qualifiers and method selections alike. Returns nil for calls
// of function-typed values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
