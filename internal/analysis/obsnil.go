package analysis

import (
	"go/ast"
	"go/types"
)

// obsnil enforces the nil-tracer discipline of internal/obs: a disabled
// tracer is a nil *obs.Tracer, so instrumentation sites may only call the
// methods documented nil-safe (the tracerNilSafe declaration in
// internal/obs). A direct call to any other method would panic the first
// time tracing is disabled — which is the default — so the pass flags it
// at compile time instead.
type obsnil struct{}

func (obsnil) name() string { return "obsnil" }

func (obsnil) run(ctx *context, pkg *Package) {
	if pkg == ctx.obsPkg || ctx.obsPkg == nil {
		// Inside obs the receiver is already proven non-nil by the
		// public entry points; the discipline binds external callers.
		return
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isTracerReceiver(info, sel) || ctx.nilSafe[sel.Sel.Name] {
				return true
			}
			ctx.reportf("obsnil", call.Pos(),
				"(*obs.Tracer).%s is outside the documented nil-safe set; a disabled (nil) tracer would panic here (guard the receiver or extend tracerNilSafe in internal/obs)",
				sel.Sel.Name)
			return true
		})
	}
}

// isTracerReceiver reports whether sel selects a method on obs.Tracer.
func isTracerReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tracer" && obj.Pkg() != nil && pathIs(obj.Pkg().Path(), "internal/obs")
}
