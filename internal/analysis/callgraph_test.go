package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

var (
	cgOnce  sync.Once
	cgGraph *CallGraph
	cgErr   error
)

// fixtureGraph loads the fixture module and builds its call graph once
// per test binary.
func fixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	cgOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("testdata", "module"))
		if err != nil {
			cgErr = err
			return
		}
		mod, err := LoadModule(root)
		if err != nil {
			cgErr = err
			return
		}
		cgGraph = buildCallGraph(mod)
	})
	if cgErr != nil {
		t.Fatal(cgErr)
	}
	return cgGraph
}

// TestCallGraphCallbackEdge pins the prebound-callback edge shape: a
// function passed to Domain.AtCall gets an EdgeCallback In edge from the
// registering function, with Via naming the registration method.
func TestCallGraphCallbackEdge(t *testing.T) {
	g := fixtureGraph(t)
	n := g.NodeByName("shardbad.tickCB")
	if n == nil {
		t.Fatal("no node shardbad.tickCB")
	}
	found := false
	for _, e := range n.In {
		if e.Kind != EdgeCallback || e.Caller == nil || e.Caller.Name != "shardbad.Setup" || e.Via == nil {
			continue
		}
		if g.nodeName(e.Via) == "(internal/sim.Domain).AtCall" {
			found = true
		}
	}
	if !found {
		t.Error("no EdgeCallback from shardbad.Setup into shardbad.tickCB via (internal/sim.Domain).AtCall")
	}
}

// TestCallGraphInterfaceDispatch pins method-set dispatch through the
// registration seam: bootCB is registered only via the local sched
// interface, which a *sim.Domain satisfies, so shardRoots must include
// it; the pinned hub-only dramFinishCB rides a Link but must be
// excluded.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := fixtureGraph(t)
	roots := map[string]bool{}
	for _, r := range shardRoots(g) {
		roots[r.Name] = true
	}
	if !roots["shardbad.bootCB"] {
		t.Errorf("shardRoots misses shardbad.bootCB (interface-seam registration); got %v", roots)
	}
	if roots["internal/dram.dramFinishCB"] {
		t.Error("shardRoots includes the pinned hub-only internal/dram.dramFinishCB")
	}
}

// TestCallGraphCycleTermination pins termination on mutual recursion:
// reachability from cycle.Ping must close over both nodes and return.
func TestCallGraphCycleTermination(t *testing.T) {
	g := fixtureGraph(t)
	ping := g.NodeByName("cycle.Ping")
	pong := g.NodeByName("cycle.pong")
	if ping == nil || pong == nil {
		t.Fatal("cycle nodes missing")
	}
	reach := g.Reachable([]*CGNode{ping}, nil)
	if !reach[pong] || !reach[ping] {
		t.Error("reachability from cycle.Ping does not close over the cycle")
	}
	path := g.PathFrom([]*CGNode{ping}, pong, nil)
	if len(path) != 2 || path[0] != "cycle.Ping" || path[1] != "cycle.pong" {
		t.Errorf("PathFrom(Ping, pong) = %v, want [cycle.Ping cycle.pong]", path)
	}
}

// TestCallGraphHotRoots pins the allocpin root set: registered callbacks
// and the hotRootPins table seed it; binding-time helpers (.bindHot) are
// roots so their callees are covered, and pinned-cold roots stay out.
func TestCallGraphHotRoots(t *testing.T) {
	g := fixtureGraph(t)
	roots := map[string]bool{}
	for _, r := range hotRoots(g) {
		roots[r.Name] = true
	}
	for _, want := range []string{
		"(internal/metrics.Hist).Observe", // hotRootPins entry
		"allocbad.reqCB",                  // Engine.AtCall registration
		"allocbad.closureCB",              // AtCallLate registration
		"(allocgood.ctl).bindHot",         // .bindHot suffix
	} {
		if !roots[want] {
			t.Errorf("hotRoots misses %s", want)
		}
	}
	if roots["allocgood.coldPath"] {
		t.Error("hotRoots includes the unregistered allocgood.coldPath")
	}
}

// TestCallGraphUnguardedReach pins the interprocedural guard analysis:
// checkDeep (guarded by its only caller) is outside the unguarded set,
// checkUnsafe (reached bare through Leak) is inside it.
func TestCallGraphUnguardedReach(t *testing.T) {
	g := fixtureGraph(t)
	unguarded := g.unguardedReach()
	deep := g.NodeByName("invflow.checkDeep")
	unsafe := g.NodeByName("invflow.checkUnsafe")
	if deep == nil || unsafe == nil {
		t.Fatal("invflow nodes missing")
	}
	if unguarded[deep] {
		t.Error("checkDeep is in the unguarded set despite its only caller guarding")
	}
	if !unguarded[unsafe] {
		t.Error("checkUnsafe escaped the unguarded set despite the bare path through Leak")
	}
}
