package analysis

import (
	"go/ast"
	"go/types"
)

// detlint guards the determinism contract of the packages whose output is
// golden-compared or asserted byte-identical across -j/-parallel runs
// (PR 2/3): no wall-clock reads, no global math/rand source, and no
// output emitted while ranging over a map (iteration order is random; the
// established pattern is collect keys, sort, then iterate the slice).
type detlint struct{}

func (detlint) name() string { return "detlint" }

// detPackages are the module-relative packages that produce golden or
// byte-compared output.
var detPackages = []string{
	"internal/stats",
	"internal/figures",
	"internal/run",
	"internal/check",
	"internal/obs",
	"internal/prov",
}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// draw from the shared global source. Constructors like New, NewSource
// and NewZipf build independently seeded generators and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "N": true, "Uint32N": true, "Uint64N": true, "Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func (detlint) run(ctx *context, pkg *Package) {
	target := false
	for _, rel := range detPackages {
		if pathIs(pkg.Path, rel) {
			target = true
			break
		}
	}
	if !target {
		return
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := info.Uses[n.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if obj.Name() == "Now" {
						ctx.reportf("detlint", n.Pos(),
							"time.Now in a deterministic-output package (golden/compared output must not depend on wall time)")
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[obj.Name()] && isPackageLevel(obj) {
						ctx.reportf("detlint", n.Pos(),
							"package-level math/rand draws from the global source; use a locally seeded *rand.Rand")
					}
				}
			case *ast.RangeStmt:
				if !isMapRange(info, n) {
					return true
				}
				if out := firstOutputCall(info, n.Body); out != nil {
					ctx.reportf("detlint", n.Pos(),
						"iteration over a map reaches output (%s at line %d) without an intervening sort; collect and sort the keys first",
						outputCallName(out), ctx.mod.Fset.Position(out.Pos()).Line)
				} else if out := nestedMapRangeOutput(info, n.Body); out != nil {
					// The body's only output sits inside a nested map
					// range. That inner range gets its own finding, but
					// the outer order leaks through it just the same —
					// report both, so suppressing the inner one cannot
					// silently bless the outer (ROADMAP refinement).
					ctx.reportf("detlint", n.Pos(),
						"iteration over a map reaches output (%s at line %d) only through a nested map iteration; the outer order is nondeterministic too — sort the keys at every level",
						outputCallName(out), ctx.mod.Fset.Position(out.Pos()).Line)
				}
			}
			return true
		})
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// firstOutputCall finds a call in body that emits formatted output: the
// fmt print family writing to a stream, or a Write* method (io.Writer,
// strings.Builder, bytes.Buffer, ...). Nested map ranges are skipped —
// they are reported on their own.
func firstOutputCall(info *types.Info, body *ast.BlockStmt) (found *ast.CallExpr) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok && isMapRange(info, r) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isOutputCall(info, call) {
			found = call
			return false
		}
		return true
	})
	return found
}

// nestedMapRangeOutput finds an output call that firstOutputCall skipped
// because it sits inside a nested map range: the first such call under any
// directly nested map iteration, however deep.
func nestedMapRangeOutput(info *types.Info, body *ast.BlockStmt) (found *ast.CallExpr) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok && isMapRange(info, r) {
			found = anyOutputCall(info, r.Body)
			return false
		}
		return true
	})
	return found
}

// anyOutputCall finds the first output call anywhere in body, without the
// nested-map-range exclusion of firstOutputCall.
func anyOutputCall(info *types.Info, body *ast.BlockStmt) (found *ast.CallExpr) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isOutputCall(info, call) {
			found = call
			return false
		}
		return true
	})
	return found
}

// outputWriteMethods are method names that append to an output sink.
var outputWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtPrintFuncs are the fmt functions that emit to a stream. The Sprint
// family builds values instead of emitting, so it is not flagged on its
// own — a sorted emit site downstream is still enforced wherever the
// built string is printed.
var fmtPrintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && fmtPrintFuncs[obj.Name()] {
		return true
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal && outputWriteMethods[obj.Name()] {
		return true
	}
	return false
}

// outputCallName renders the callee for the diagnostic.
func outputCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "call"
}
