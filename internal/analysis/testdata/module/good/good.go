// Package good pins the negative cases: nothing in this file may ever
// produce a finding. Each function mirrors one accepted form.
package good

import (
	"fixture/internal/inv"
	"fixture/internal/obs"
	"fixture/internal/stats"
)

// keyTable shows the registry-constant-table idiom the real module uses
// in internal/dram and internal/obs.
var keyTable = [...]string{stats.KeyTable, stats.KeyGood}

// Registered uses a registry constant directly.
func Registered(s *stats.Set) {
	s.Inc(stats.KeyGood)
}

// AnnotatedDynamic selects from a table of registry constants and says
// so.
func AnnotatedDynamic(s *stats.Set, i int) {
	//lint:dynamic-key selected from the registered keyTable
	s.Add(keyTable[i], 1)
}

// Suppressed documents why an off-registry literal is acceptable here.
func Suppressed(s *stats.Set) {
	//lint:ignore statskey fixture pin for the suppression path
	s.Inc("fixture/not-in-registry")
}

// BlockGuard wraps the failure in an inv.On() block.
func BlockGuard(n int) {
	if inv.On() {
		if n < 0 {
			inv.Failf("good", "negative %d", n)
		}
	}
}

// CondGuard folds the gate into an && chain.
func CondGuard(n int) {
	if inv.On() && n < 0 {
		inv.Failf("good", "negative %d", n)
	}
}

// HoistedGuard binds inv.On() to a local first.
func HoistedGuard(n int) {
	check := inv.On()
	if check && n < 0 {
		inv.Fail("good", "negative")
	}
}

// EarlyReturn bails out of checking up front.
func EarlyReturn(n int) {
	if !inv.On() {
		return
	}
	if n < 0 {
		inv.Failf("good", "negative %d", n)
	}
}

// NilSafe calls only documented nil-safe tracer methods.
func NilSafe(t *obs.Tracer) bool {
	return t.Enabled()
}

// GuardedTracer may call anything once non-nil is established — via the
// obsnil suppression, since flow analysis is out of scope for the pass.
func GuardedTracer(t *obs.Tracer) {
	if t != nil {
		//lint:ignore obsnil receiver proven non-nil by the guard above
		t.Record()
	}
}

// RegisteredRefs binds cached cells through the ref accessors with
// registry constants — the hot-path idiom the real tsim/dram use.
func RegisteredRefs(s *stats.Set) (*int64, *stats.Accum) {
	return s.CounterRef(stats.KeyGood), s.AccumRef(stats.KeyTable)
}

// histTable mirrors the per-segment histogram-key table idiom the real
// internal/obs and internal/dram use for their dynamic families.
var histTable = [...]string{stats.KeyTable, stats.KeyGood}

// RegisteredHist binds and reads histogram cells with registry
// constants, plus the annotated table selection.
func RegisteredHist(s *stats.Set, i int) *stats.Hist {
	_ = s.Hist(stats.KeyGood)
	//lint:dynamic-key selected from the registered histTable
	return s.HistRef(histTable[i])
}

// MethodBlockGuard gates the recorder-method form on the recorder's
// own On.
func MethodBlockGuard(r *inv.Recorder, n int) {
	if r.On() {
		if n < 0 {
			r.Failf("good", "negative %d", n)
		}
	}
}

// MethodCondGuard folds the recorder gate into an && chain.
func MethodCondGuard(r *inv.Recorder, n int) {
	if r.On() && n < 0 {
		r.Fail("good", "negative")
	}
}

// MethodHoistedGuard binds the recorder's On() result to a local first
// — the `rec := x.rec; if rec.On()` idiom the real hot paths use.
func MethodHoistedGuard(r *inv.Recorder, n int) {
	check := r.On()
	if check && n < 0 {
		r.Failf("good", "negative %d", n)
	}
}

// MethodEarlyReturn bails out of checking up front on the recorder.
func MethodEarlyReturn(r *inv.Recorder, n int) {
	if !r.On() {
		return
	}
	if n < 0 {
		r.Failf("good", "negative %d", n)
	}
}
