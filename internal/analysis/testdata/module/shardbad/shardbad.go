// Package shardbad pins the shardsafe positives: every rule of
// DESIGN.md §14 violated once from domain-reachable code, plus the
// interprocedural and interface-registration variants.
package shardbad

import (
	"fixture/internal/obs"
	"fixture/internal/sim"
)

// hits, deliveries and boots are package-level: writing them from a
// domain callback breaks shard parity (rule a).
var (
	hits       int64
	deliveries int64
	boots      int64
)

// Setup registers the domain callbacks the positives hang off.
func Setup(d *sim.Domain, l *sim.Link) {
	d.AtCall(0, tickCB, nil)
	d.AtCall(0, chainCB, nil)
	d.AtCall(0, escapeCB, nil)
	d.AtCall(0, traceCB, nil)
	l.Send(0, tickCB, nil)
}

// hub is the engine a domain callback must not schedule on directly.
var hub *sim.Engine

// tickCB writes package-level state from domain context: rule (a).
func tickCB(x any) {
	hits++
}

// chainCB is clean itself; the helper it calls is not — the finding
// lands in the helper with the call path in the diagnostic.
func chainCB(x any) {
	bump()
}

func bump() {
	deliveries = deliveries + 1
}

// escapeCB schedules directly on the hub engine from domain context,
// bypassing Link delivery across the seam: rule (b).
func escapeCB(x any) {
	hub.AtCall(1, tickCB, nil)
}

// traceCB calls serial-only internal/obs from domain context: rule (d).
// The nil-safe receiver forms are exempt (see shardgood's reqCB); the
// package-level call is not.
func traceCB(x any) {
	var t *obs.Tracer
	if t.Enabled() && obs.Active() {
		return
	}
}

// sched is the seam interface the Domain satisfies — the fixture mirror
// of dram's sched seam. Registering through it must root the callback
// exactly like registering on the Domain directly.
type sched interface {
	AtCall(t sim.Time, fn func(any), arg any)
}

// SetupSeam registers bootCB through the interface, not the Domain.
func SetupSeam(s sched) {
	s.AtCall(0, bootCB, nil)
}

// bootCB writes package-level state; reached only via the interface
// registration: rule (a) through method-set dispatch.
func bootCB(x any) {
	boots++
}
