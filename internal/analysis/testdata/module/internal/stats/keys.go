// Package stats is the fixture's stand-in for the real internal/stats:
// just enough surface for the analysis passes to latch onto. The string
// constants in this file form the registry the statskey pass checks
// against, exactly as in the real module.
package stats

// Registered keys.
const (
	KeyGood    = "fixture/good"
	KeyTable   = "fixture/table"
	KeyIgnored = "fixture/ignored"
	KeyOrphan  = "fixture/orphan"
)
