package stats

// Set mirrors the metric surface of the real stats.Set. The method
// bodies pass key parameters through to each other; the statskey pass
// skips this package for exactly that reason.
type Set struct{ c map[string]int64 }

// NewSet returns an empty set.
func NewSet() *Set { return &Set{c: make(map[string]int64)} }

// Add accumulates delta under name.
func (s *Set) Add(name string, delta int64) { s.c[name] += delta }

// Inc is Add(name, 1).
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Observe records one sample (fixture: counted only).
func (s *Set) Observe(name string, v float64) { s.Inc(name) }

// Counter reads an accumulated count.
func (s *Set) Counter(name string) int64 { return s.c[name] }

// Accum is a minimal stand-in for the real accumulator cell.
type Accum struct{ Count int64 }

// CounterRef mirrors the real cached-cell accessor (fixture: a copy).
func (s *Set) CounterRef(name string) *int64 {
	v := s.c[name]
	return &v
}

// AccumRef mirrors the real accumulator-cell accessor.
func (s *Set) AccumRef(name string) *Accum { return &Accum{Count: s.c[name]} }

// Hist is a minimal stand-in for the real histogram cell.
type Hist struct{ Count int64 }

// HistRef mirrors the real cached histogram-cell accessor.
func (s *Set) HistRef(name string) *Hist { return &Hist{Count: s.c[name]} }

// Hist reads a histogram (fixture: count only).
func (s *Set) Hist(name string) *Hist { return &Hist{Count: s.c[name]} }
