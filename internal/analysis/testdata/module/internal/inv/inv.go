// Package inv is the fixture's stand-in for the real internal/inv.
package inv

var enabled = true

// On reports whether invariant checking is enabled.
func On() bool { return enabled }

// Failf reports an invariant violation.
func Failf(component, format string, args ...any) {}

// Fail reports an invariant violation with a fixed message.
func Fail(component, message string) {}

// Recorder is the fixture's stand-in for the real per-run recorder.
type Recorder struct{}

// On reports whether this recorder records violations.
func (r *Recorder) On() bool { return enabled }

// Failf reports an invariant violation on this recorder.
func (r *Recorder) Failf(component, format string, args ...any) {}

// Fail reports a fixed-message violation on this recorder.
func (r *Recorder) Fail(component, message string) {}
