// Package sim is the fixture's stand-in for the real event engine: the
// scheduling surface the interprocedural passes key on (receiver names
// and method names), with just enough body for the compiler's escape
// analysis to treat registered callbacks like the real engine does
// (retained, therefore escaping).
package sim

// Time mirrors the real engine's clock type.
type Time int64

type scheduled struct {
	t   Time
	fn  func(any)
	arg any
}

// Engine is the hub scheduler.
type Engine struct {
	now Time
	q   []scheduled
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules a closure-form event (setup-time convenience).
func (e *Engine) At(t Time, fn func()) { e.q = append(e.q, scheduled{t: t}) }

// AtCall schedules a prebound callback.
func (e *Engine) AtCall(t Time, fn func(any), arg any) {
	e.q = append(e.q, scheduled{t, fn, arg})
}

// AtCallLate schedules a prebound callback in the late class.
func (e *Engine) AtCallLate(t Time, key int32, fn func(any), arg any) {
	e.q = append(e.q, scheduled{t, fn, arg})
}

// After schedules a closure-form event relative to now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AfterCall schedules a prebound callback relative to now.
func (e *Engine) AfterCall(d Time, fn func(any), arg any) { e.AtCall(e.now+d, fn, arg) }

// Every schedules a periodic closure.
func (e *Engine) Every(period Time, fn func(now Time)) {}

// Domain is one shard of the lookahead-synchronized engine.
type Domain struct {
	e *Engine
}

// At schedules a closure-form event on the domain.
func (d *Domain) At(t Time, fn func()) { d.e.At(t, fn) }

// AtCall schedules a prebound callback on the domain.
func (d *Domain) AtCall(t Time, fn func(any), arg any) { d.e.AtCall(t, fn, arg) }

// AtCallLate schedules a prebound late-class callback on the domain.
func (d *Domain) AtCallLate(t Time, key int32, fn func(any), arg any) {
	d.e.AtCallLate(t, key, fn, arg)
}

// AfterCall schedules a prebound callback relative to the domain clock.
func (d *Domain) AfterCall(dt Time, fn func(any), arg any) { d.e.AfterCall(dt, fn, arg) }

// Link is a cross-domain delivery seam.
type Link struct {
	q []scheduled
}

// Send delivers an ordinary-class event across the seam.
func (l *Link) Send(at Time, fn func(any), arg any) {
	l.q = append(l.q, scheduled{at, fn, arg})
}

// SendLate delivers a late-class (merge-ordered) event across the seam.
func (l *Link) SendLate(at Time, key int32, fn func(any), arg any) {
	l.q = append(l.q, scheduled{at, fn, arg})
}
