// Package figures exercises detlint: its module-relative path makes it
// one of the deterministic-output packages.
package figures

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock: one detlint finding.
func Stamp() string {
	return time.Now().String()
}

// Jitter draws from the global math/rand source: one detlint finding.
func Jitter() int {
	return rand.Intn(3)
}

// DumpUnsorted emits output while ranging a map: one detlint finding.
func DumpUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// DumpSorted is the blessed pattern — collect, sort, then emit. No
// finding: the emitting loop ranges a slice, not the map.
func DumpSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Roll uses a locally seeded generator, which is legal.
func Roll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// DumpNestedUnsorted reaches output only through a nested map range: two
// detlint findings — the nested-iteration one on the outer range, and
// the standard one on the inner.
func DumpNestedUnsorted(m map[string]map[string]int) {
	for k, inner := range m {
		for k2, v := range inner {
			fmt.Println(k, k2, v)
		}
	}
}

// SumNested only accumulates through the nested ranges — no output
// anywhere, so no finding at either level.
func SumNested(m map[string]map[string]int) int {
	total := 0
	for _, inner := range m {
		for _, v := range inner {
			total += v
		}
	}
	return total
}
