// Package dram is the fixture's stand-in for the real DRAM model's seam
// discipline: dramFinishCB rides the completion link but is pinned
// hub-only (shardHubOnly), so its package-level write — a certain
// shardsafe finding anywhere domain-reachable — stays clean here.
package dram

import "fixture/internal/sim"

// finished counts completions; hub-owned, written only by the pinned
// hub-side callback below.
var finished int64

// DRAM owns the completion link back to the hub.
type DRAM struct {
	out *sim.Link
}

// dramFinishCB runs hub-side by construction (delivered over out to the
// hub domain); the shardHubOnly pin keeps shardsafe out of its body.
func dramFinishCB(x any) {
	finished++
}

// Finish delivers the completion to the hub in the late class.
func (d *DRAM) Finish(at sim.Time, r any) {
	d.out.SendLate(at, 0, dramFinishCB, r)
}
