// Package metrics is the fixture's stand-in for the real histogram
// package: Hist.Observe is a pinned allocpin hot root (hotRootPins), so
// it and everything it calls must stay allocation-free.
package metrics

// Hist is a fixed-geometry histogram.
type Hist struct {
	buckets [8]int64
}

// Observe records one sample; pinned 0-alloc in the real module.
func (h *Hist) Observe(v int64) { h.buckets[bucket(v)]++ }

// bucket is reachable from the pinned root: it must not allocate either.
func bucket(v int64) int {
	b := 0
	for v > 1 && b < 7 {
		v >>= 1
		b++
	}
	return b
}
