// Package obs is the fixture's stand-in for the real internal/obs.
package obs

// Tracer mirrors the real nil-able tracer: nil means tracing disabled.
type Tracer struct{ n int }

// tracerNilSafe is the documented nil-safe method set the obsnil pass
// reads, exactly as in the real package.
var tracerNilSafe = map[string]bool{
	"Enabled": true,
}

// Enabled is nil-safe.
func (t *Tracer) Enabled() bool { return t != nil }

// Record is NOT nil-safe: it dereferences the receiver.
func (t *Tracer) Record() { t.n++ }

// Req mirrors the real per-request trace context; all its methods are
// nil-safe by contract, so shardsafe rule (d) exempts them.
type Req struct{ n int }

// Mark is nil-safe, like every real Req method.
func (r *Req) Mark() {
	if r == nil {
		return
	}
	r.n++
}

// Active is a package-level function: never exempt from rule (d).
func Active() bool { return false }
