// Package cycle pins call-graph termination: mutual recursion must not
// hang construction, reachability, or path reconstruction.
package cycle

// Ping and pong call each other forever (statically).
func Ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	Ping(n - 1)
}
