// Package invflow pins the interprocedural invgate cases: a bare-Failf
// helper whose every caller guards (clean — the old intraprocedural pass
// flagged it), the same shape with an unguarded path (finding), and
// value uses of the fail functions (findings the old pass could not see).
package invflow

import "fixture/internal/inv"

// checkDeep keeps its Failf bare: its only caller crosses inv.On(), so
// the call-graph analysis accepts what a per-function analysis could
// not.
func checkDeep(n int) {
	if n < 0 {
		inv.Failf("invflow", "negative %d", n)
	}
}

// Audit is the only entry into checkDeep, and it guards.
func Audit(n int) {
	if inv.On() {
		checkDeep(n)
	}
}

// Leak reaches checkUnsafe with no guard on any path: the bare Failf
// inside is a finding even though Leak itself never mentions inv.
func Leak(n int) {
	checkUnsafe(n)
}

func checkUnsafe(n int) {
	if n < 0 {
		inv.Failf("invflow", "unguarded path %d", n)
	}
}

// Handler takes inv.Failf as a function value: always a finding — once
// the value escapes, no guard discipline can hold.
var Handler = inv.Failf

// Dispatch binds inv.Fail to a local and calls it: the binding is the
// finding (the call through the variable is invisible to a call-site
// analysis).
func Dispatch() {
	f := inv.Fail
	f("invflow", "via value")
}
