// Package bad pins the positive cases: each exported function below
// yields exactly one diagnostic from the pass named in its comment
// (Malformed yields two — see there).
package bad

import (
	"fixture/internal/inv"
	"fixture/internal/obs"
	"fixture/internal/stats"
)

// Unregistered passes a constant key missing from the registry: one
// statskey finding.
func Unregistered(s *stats.Set) {
	s.Inc("fixture/unregistered")
}

// Dynamic passes a runtime-assembled key with no annotation: one
// statskey finding.
func Dynamic(s *stats.Set, name string) {
	s.Add("fixture/"+name, 1)
}

// Unguarded calls inv.Failf with no inv.On() dominator: one invgate
// finding.
func Unguarded(n int) {
	inv.Failf("bad", "unguarded %d", n)
}

// UnguardedFail covers the non-formatting form: one invgate finding.
func UnguardedFail() {
	inv.Fail("bad", "unguarded")
}

// NotNilSafe calls a method outside the documented nil-safe set: one
// obsnil finding.
func NotNilSafe(t *obs.Tracer) {
	t.Record()
}

// Malformed carries a suppression with no reason: the marker itself is
// a "lint" finding, and because it suppresses nothing the statskey
// finding below survives too.
func Malformed(s *stats.Set) {
	//lint:ignore statskey
	s.Inc("fixture/also-unregistered")
}

// UnregisteredRef binds a cached cell under a key missing from the
// registry: one statskey finding.
func UnregisteredRef(s *stats.Set) *int64 {
	return s.CounterRef("fixture/unregistered-ref")
}

// UnregisteredHistRef binds a histogram cell under a key missing from
// the registry: one statskey finding.
func UnregisteredHistRef(s *stats.Set) *stats.Hist {
	return s.HistRef("fixture/unregistered-hist")
}

// UnguardedMethod calls the recorder-method form of Failf with no
// On() dominator: one invgate finding.
func UnguardedMethod(r *inv.Recorder, n int) {
	r.Failf("bad", "unguarded method %d", n)
}

// UnguardedMethodFail covers the recorder-method non-formatting form:
// one invgate finding.
func UnguardedMethodFail(r *inv.Recorder) {
	r.Fail("bad", "unguarded method")
}
