// Package allocgood pins the allocpin negatives: allocations the pinned
// hot path tolerates — binding-time (bindHot), guard-gated, terminal
// (panic), first-touch inside pinned-cold accessors — plus code no hot
// root reaches.
package allocgood

import (
	"fixture/internal/inv"
	"fixture/internal/sim"
	"fixture/internal/stats"
)

var sink any

// ctl binds its stats cell once and bumps through the pointer.
type ctl struct {
	set  *stats.Set
	cell *int64
}

// Setup binds and registers the negative-case callbacks.
func Setup(e *sim.Engine, s *stats.Set) {
	c := &ctl{set: s}
	c.bindHot()
	e.AtCall(0, c.tickCB, nil)
	e.AtCall(0, guardedCB, nil)
	e.AtCall(0, deadCB, nil)
	e.AtCall(0, lazyCB, c)
}

// bindHot allocates at binding time: the bindHot contract exempts its
// body even though tickCB makes it part of the measured warm path.
func (c *ctl) bindHot() {
	c.cell = c.set.CounterRef("fixture/good")
	sink = &ctl{}
}

// tickCB bumps the bound cell: genuinely 0-alloc.
func (c *ctl) tickCB(x any) {
	*c.cell++
}

// guardedCB allocates only under the invariant guard — debug-run cost,
// exempt as a cold region.
func guardedCB(x any) {
	if inv.On() {
		sink = &ctl{}
	}
}

// deadCB allocates only in the panic argument — terminal, exempt.
func deadCB(x any) {
	if x != nil {
		panic(&ctl{})
	}
}

// lazyCB uses the name-keyed stats form whose inlined first-touch cell
// allocation is pinned cold (allocpinCold): exempt at the call line.
func lazyCB(x any) {
	c := x.(*ctl)
	c.set.Inc("fixture/good")
}

// coldPath is unreachable from any hot root: its allocation is fine.
func coldPath() {
	sink = make([]int64, 4)
}
