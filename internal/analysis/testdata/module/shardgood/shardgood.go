// Package shardgood pins the shardsafe negatives: the sanctioned forms
// of domain-side work, which must produce no findings.
package shardgood

import (
	"fixture/internal/obs"
	"fixture/internal/sim"
)

// total is package-level but only written from plain (non-domain) code.
var total int64

// counterDom is run-owned domain state: writes through the receiver are
// the sanctioned form of rule (a).
type counterDom struct {
	d     *sim.Domain
	count int64
}

// Setup registers the negative-case callbacks.
func Setup(d *sim.Domain, l *sim.Link, e *sim.Engine) {
	c := &counterDom{d: d}
	d.AtCall(0, c.tickCB, nil)
	d.AtCall(0, localCB, nil)
	d.AtCall(0, relayCB, c)
	l.SendLate(0, 0, lateCB, nil)
	d.AtCall(0, hatchCB, e)
	d.AtCall(0, reqCB, nil)
}

// tickCB writes run-owned state, not a package-level var: clean.
func (c *counterDom) tickCB(x any) {
	c.count++
}

// localCB writes a local: clean.
func localCB(x any) {
	n := 0
	n++
	_ = n
}

// relayCB reschedules through the owning Domain — the sanctioned
// scheduling surface, unlike Engine (rule b's negative). It reschedules
// a prebound top-level callback: a method value here would allocate a
// closure per event and rightly trip allocpin.
func relayCB(x any) {
	c := x.(*counterDom)
	c.d.AtCall(1, localCB, nil)
	c.count++
}

// lateCB arrived over SendLate — the late class carries a merge key, so
// the registration itself is rule (c)'s negative.
func lateCB(x any) {
	c, ok := x.(*counterDom)
	if ok {
		c.count++
	}
}

// hatchCB schedules on the hub engine deliberately; the annotation
// documents why and suppresses the rule (b) finding.
func hatchCB(x any) {
	e := x.(*sim.Engine)
	//lint:ignore shardsafe fixture: documented hub-side scheduling exception
	e.AtCall(1, localCB, nil)
}

// reqCB touches the nil-safe tracing forms from domain context: every
// *obs.Req method and the tracerNilSafe *obs.Tracer methods no-op on the
// nil receivers a sharded run is guaranteed to have (Validate rejects
// tracing under Domains > 0), so rule (d) exempts them.
func reqCB(x any) {
	var r *obs.Req
	var t *obs.Tracer
	r.Mark()
	_ = t.Enabled()
}

// Tally writes the package-level var from plain serial code — never
// domain-reachable, so rule (a) does not apply.
func Tally(n int64) {
	total += n
}
