// Package suppress pins the suppression audit: a marker that suppresses
// a real finding is silent, a stale marker is itself a finding.
package suppress

import "fixture/internal/inv"

// Used documents a deliberate ungated failure: the marker suppresses the
// invgate finding and therefore passes the audit.
func Used() {
	//lint:ignore invgate fixture: deliberate ungated failure path
	inv.Failf("suppress", "deliberate")
}

// Stale carries a suppression with nothing left to suppress: the audit
// turns the marker itself into a finding.
func Stale() int {
	//lint:ignore invgate fixture: the violation this documented is gone
	return 1
}
