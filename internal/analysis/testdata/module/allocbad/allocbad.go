// Package allocbad pins the allocpin positives: heap allocations inside
// prebound event callbacks — escaping structs, interface boxing, moved
// locals, escaping closures — including the interprocedural and
// registered-literal variants.
package allocbad

import "fixture/internal/sim"

// sink and friends force the allocations below to escape.
var (
	sink   any
	sinkFn func()
	last   *int64
)

// payload is the per-event transient the positives allocate.
type payload struct {
	a, b, c int64
}

// Setup registers the hot callbacks.
func Setup(e *sim.Engine) {
	e.AtCall(0, reqCB, nil)
	e.AfterCall(0, boxCB, nil)
	e.AtCallLate(0, 0, chainCB, nil)
	e.AtCall(0, closureCB, nil)
	e.AtCall(0, statCB, nil)
}

// SetupInline registers a per-event literal that itself allocates: the
// finding lands inside the literal (its own graph node). The literal
// escaping at registration time is charged to SetupInline, which is not
// hot — binding-time cost, not per-event cost.
func SetupInline(e *sim.Engine) {
	e.AtCall(0, func(x any) {
		sink = new(payload)
	}, nil)
}

// reqCB allocates an escaping struct per event.
func reqCB(x any) {
	sink = &payload{}
}

// boxCB boxes a scalar into an interface per event.
func boxCB(x any) {
	v := int64(2)
	sink = v * 2
}

// chainCB is clean itself; its helper allocates — the finding lands in
// the helper with the call path in the diagnostic.
func chainCB(x any) {
	grow()
}

func grow() {
	buf := make([]int64, 9)
	sink = buf
}

// closureCB builds an escaping closure per event: the closure-capture
// acceptance case. The "func literal escapes" fact re-attributes to the
// callback that built it.
func closureCB(x any) {
	n := 0
	sinkFn = func() { n++ }
}

// statCB retains the address of a local, moving it to the heap per
// event.
func statCB(x any) {
	v := int64(1)
	last = &v
}
