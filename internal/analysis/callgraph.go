package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the shared interprocedural layer: a whole-module call
// graph over the loaded, type-checked packages. The graph is deliberately
// conservative (it over-approximates "may call") so the passes built on it
// — the interprocedural invgate, shardsafe reachability, allocpin's hot-set
// join — can treat absence of a path as proof.
//
// Nodes are declared functions and methods (*types.Func) plus function
// literals (each FuncLit is its own node: a literal registered as an event
// callback runs on its own, not as part of its lexical parent). Edges:
//
//   - static: a direct call of a module function or method.
//   - interface: a call through an interface method; edges go to every
//     module method that could satisfy the dispatch (method-set match over
//     all named module types — the dram.sched seam resolves to both
//     (*sim.Engine).AtCallLate and (*sim.Domain).AtCallLate this way).
//   - indirect: a call of a function-typed value; edges go to every
//     address-taken module function with an identical signature (this is
//     how `ev.call(ev.arg)` in the engine reaches the prebound callbacks,
//     and how `r.Done(at)` reaches the completion handlers).
//   - callback: a function value passed as an argument to a call — the
//     "prebound callback" registration edge (Engine.AtCall(t, fn, arg)
//     creates caller → fn). The registration callee is recorded on the
//     edge so passes can ask *which* seam a callback was handed to.
//
// Every edge also records whether the call site is dominated by an
// inv.On() guard, which is what lets invgate reason about helpers that are
// only ever entered with invariants enabled.
type CallGraph struct {
	mod *Module

	// nodes by canonical name (see nodeName); iteration uses names, so
	// everything derived from the graph is deterministic.
	nodes map[string]*CGNode
	// byFunc resolves declared functions; byLit resolves literals.
	byFunc map[*types.Func]*CGNode
	byLit  map[*ast.FuncLit]*CGNode

	// indirect holds function-typed-value call sites awaiting pass-3
	// resolution against the address-taken set.
	indirect []indirectSite
}

// CGEdgeKind classifies how a call edge was resolved.
type CGEdgeKind int

// Edge kinds, in order of decreasing resolution confidence.
const (
	// EdgeStatic is a direct call of a known function or method.
	EdgeStatic CGEdgeKind = iota
	// EdgeInterface is a call through an interface method, resolved to a
	// concrete module method by method-set matching.
	EdgeInterface
	// EdgeIndirect is a call of a function-typed value, resolved to an
	// address-taken module function with an identical signature.
	EdgeIndirect
	// EdgeCallback is a registration edge: the callee was passed as a
	// function-value argument at the call site (prebound callbacks).
	EdgeCallback
)

// String implements fmt.Stringer.
func (k CGEdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeIndirect:
		return "indirect"
	case EdgeCallback:
		return "callback"
	}
	return fmt.Sprintf("CGEdgeKind(%d)", int(k))
}

// CGEdge is one directed call (or callback-registration) edge.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	Kind   CGEdgeKind
	// Pos is the call site.
	Pos token.Pos
	// Guarded reports whether the call site is dominated by an inv.On()
	// check (package form or recorder-method form).
	Guarded bool
	// Via, for EdgeCallback, is the function the callback was passed to
	// (e.g. (*sim.Engine).AtCall); nil otherwise. For EdgeInterface it is
	// the interface method the dispatch went through.
	Via *types.Func
}

// CGNode is one function, method or function literal.
type CGNode struct {
	// Name is the canonical identity: "internal/dram.dramFinishCB",
	// "(internal/sim.Engine).AtCall" (pointer receivers are spelled
	// without the star), or "<parent>$lit@line" for literals. Paths are
	// module-relative so fixture modules and the real module pin the same
	// names.
	Name string
	// Fn is the declared object; nil for function literals.
	Fn *types.Func
	// Decl is the declaration owning Fn (nil for literals).
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the defining package.
	Pkg *Package
	// Pos is the declaration position.
	Pos token.Pos
	// Sig is the node's signature (for indirect-call matching).
	Sig *types.Signature
	// Out and In are the edge lists (Out: this node calls; In: callers).
	Out []*CGEdge
	In  []*CGEdge
	// AddrTaken reports whether the function's value escapes a direct
	// call position: passed as an argument, assigned, stored in a
	// composite literal, returned, or captured any other way.
	AddrTaken bool
}

// String returns the node's canonical name.
func (n *CGNode) String() string { return n.Name }

// relPath strips the module prefix from an import path, so node names are
// module-relative ("internal/sim", not "repro/internal/sim").
func (g *CallGraph) relPath(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if path == g.mod.Path {
		return "main"
	}
	if rest, ok := strings.CutPrefix(path, g.mod.Path+"/"); ok {
		return rest
	}
	return path
}

// nodeName renders the canonical name of a declared function or method.
func (g *CallGraph) nodeName(fn *types.Func) string {
	rel := g.relPath(fn.Pkg())
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s.%s).%s", rel, named.Obj().Name(), fn.Name())
		}
	}
	return rel + "." + fn.Name()
}

// Node resolves a declared function to its graph node (nil if the
// function is not part of the module).
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn]
}

// NodeByName resolves a canonical name (see CGNode.Name) to its node.
func (g *CallGraph) NodeByName(name string) *CGNode { return g.nodes[name] }

// Nodes returns every node sorted by name (deterministic iteration).
func (g *CallGraph) Nodes() []*CGNode {
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*CGNode, len(names))
	for i, name := range names {
		out[i] = g.nodes[name]
	}
	return out
}

// Reachable computes the set of nodes reachable from roots over edges
// admitted by follow (nil follows every edge). Roots themselves are in
// the result. Traversal order is deterministic (name-sorted worklist) so
// anything derived from the result — including diagnostics — is stable.
func (g *CallGraph) Reachable(roots []*CGNode, follow func(*CGEdge) bool) map[*CGNode]bool {
	seen := make(map[*CGNode]bool)
	var queue []*CGNode
	push := func(n *CGNode) {
		if n != nil && !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	sorted := append([]*CGNode(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, r := range sorted {
		push(r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow == nil || follow(e) {
				push(e.Callee)
			}
		}
	}
	return seen
}

// PathFrom returns a name-chain from one of roots to target following
// admitted edges (inclusive of both ends), or nil if unreachable. BFS over
// name-sorted adjacency keeps the reported chain deterministic and short.
func (g *CallGraph) PathFrom(roots []*CGNode, target *CGNode, follow func(*CGEdge) bool) []string {
	parent := make(map[*CGNode]*CGNode)
	seen := make(map[*CGNode]bool)
	var queue []*CGNode
	sorted := append([]*CGNode(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, r := range sorted {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == target {
			var rev []string
			for at := n; at != nil; at = parent[at] {
				rev = append(rev, at.Name)
			}
			chain := make([]string, len(rev))
			for i := range rev {
				chain[i] = rev[len(rev)-1-i]
			}
			return chain
		}
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				parent[e.Callee] = n
				queue = append(queue, e.Callee)
			}
		}
	}
	return nil
}

// Body returns the node's function body (nil for synthetic nodes).
func (n *CGNode) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// enclosingNode maps the innermost enclosing function of a walk stack to
// its graph node (nil for package-level initializer expressions).
func (g *CallGraph) enclosingNode(pkg *Package, stack []ast.Node) *CGNode {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return g.byLit[f]
		case *ast.FuncDecl:
			if fn, _ := pkg.Info.Defs[f.Name].(*types.Func); fn != nil {
				return g.byFunc[fn]
			}
			return nil
		}
	}
	return nil
}

// buildCallGraph constructs the module call graph. It is built once per
// driver run and shared by every interprocedural pass.
func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		mod:    mod,
		nodes:  make(map[string]*CGNode),
		byFunc: make(map[*types.Func]*CGNode),
		byLit:  make(map[*ast.FuncLit]*CGNode),
	}

	// Pass 1: declare a node for every function, method and literal.
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.addFuncNode(fn, pkg).Decl = fd
			}
		}
	}
	// Literals get nodes while walking bodies in pass 2 (they need their
	// enclosing node's name).

	// Pass 2: edges. Each file is walked with an enclosing-function stack
	// so every call or function-value use is attributed to the node whose
	// body it sits in.
	for _, pkg := range mod.Pkgs {
		b := &cgBuilder{g: g, pkg: pkg, guards: collectGuardVars(pkg)}
		for _, f := range pkg.Files {
			b.file(f)
		}
	}

	// Pass 3: indirect-call resolution. Calls of function-typed values
	// resolve to every address-taken node with an identical signature.
	g.resolveIndirect()
	return g
}

// addFuncNode declares (or returns) the node for fn.
func (g *CallGraph) addFuncNode(fn *types.Func, pkg *Package) *CGNode {
	if n := g.byFunc[fn]; n != nil {
		return n
	}
	sig, _ := fn.Type().(*types.Signature)
	n := &CGNode{Name: g.nodeName(fn), Fn: fn, Pkg: pkg, Pos: fn.Pos(), Sig: sig}
	g.nodes[n.Name] = n
	g.byFunc[fn] = n
	return n
}

// addLitNode declares the node for a function literal inside parent.
func (g *CallGraph) addLitNode(lit *ast.FuncLit, parent *CGNode, pkg *Package) *CGNode {
	if n := g.byLit[lit]; n != nil {
		return n
	}
	line := g.mod.Fset.Position(lit.Pos()).Line
	base := "<pkg>"
	if parent != nil {
		base = parent.Name
	}
	name := fmt.Sprintf("%s$lit@%d", base, line)
	// Two literals on one line (rare): disambiguate by column.
	if _, taken := g.nodes[name]; taken {
		name = fmt.Sprintf("%s$lit@%d:%d", base, line, g.mod.Fset.Position(lit.Pos()).Column)
	}
	sig, _ := pkg.Info.Types[lit].Type.(*types.Signature)
	n := &CGNode{Name: name, Lit: lit, Pkg: pkg, Pos: lit.Pos(), Sig: sig}
	g.nodes[name] = n
	g.byLit[lit] = n
	return n
}

// addEdge records a call edge caller→callee.
func (g *CallGraph) addEdge(caller, callee *CGNode, kind CGEdgeKind, pos token.Pos, guarded bool, via *types.Func) {
	if caller == nil || callee == nil {
		return
	}
	e := &CGEdge{Caller: caller, Callee: callee, Kind: kind, Pos: pos, Guarded: guarded, Via: via}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// indirectSite is a pending call of a function-typed value.
type indirectSite struct {
	caller  *CGNode
	sig     *types.Signature
	pos     token.Pos
	guarded bool
}

// cgBuilder walks one package's files, attributing calls and function-value
// uses to enclosing nodes.
type cgBuilder struct {
	g      *CallGraph
	pkg    *Package
	guards map[types.Object]bool
}

// file walks one file with an explicit ancestor stack.
func (b *cgBuilder) file(f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Declare the literal's node eagerly so uses inside it
			// attribute correctly once the walk descends. A literal is
			// address-taken unless it sits directly in call position
			// ((func(){...})()).
			node := b.g.addLitNode(n, b.enclosing(stack), b.pkg)
			if !inCallPosition(n, stack) {
				node.AddrTaken = true
			}
		case *ast.CallExpr:
			b.call(n, stack)
		case *ast.Ident:
			b.identUse(n, stack)
		}
		stack = append(stack, n)
		return true
	})
}

// enclosing finds the node owning the innermost enclosing function body.
func (b *cgBuilder) enclosing(stack []ast.Node) *CGNode {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return b.g.addLitNode(f, nil, b.pkg) // already declared with parent
		case *ast.FuncDecl:
			if fn, _ := b.pkg.Info.Defs[f.Name].(*types.Func); fn != nil {
				return b.g.addFuncNode(fn, b.pkg)
			}
			return nil
		}
	}
	return nil
}

// call records the edges for one call expression.
func (b *cgBuilder) call(call *ast.CallExpr, stack []ast.Node) {
	caller := b.enclosing(stack)
	if caller == nil {
		// Package-level initializer expressions (var x = f()): attribute
		// to a synthetic per-package init node so reachability from roots
		// never has to wonder about them (they run before any event).
		caller = b.pkgInitNode()
	}
	guarded := guardedByOn(b.pkg.Info, b.guards, stack)
	info := b.pkg.Info

	// Direct call of a literal: (func(){...})().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		b.g.addEdge(caller, b.g.addLitNode(lit, caller, b.pkg), EdgeStatic, call.Pos(), guarded, nil)
		b.callbackArgs(caller, call, nil, guarded)
		return
	}

	fn := funcObj(info, call)
	switch {
	case fn == nil:
		// Function-typed value: conversion, field, local, parameter …
		// Resolved against the addr-taken set in pass 3. Type conversions
		// (T(x)) also land here; they have no signature and are dropped.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsValue() {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				b.pendingIndirect(caller, sig, call, guarded)
			}
		}
		b.callbackArgs(caller, call, nil, guarded)
	case isInterfaceMethod(fn):
		// Interface dispatch: edges to every module method that could
		// satisfy it.
		for _, impl := range b.g.implementers(fn) {
			b.g.addEdge(caller, impl, EdgeInterface, call.Pos(), guarded, fn)
		}
		b.callbackArgs(caller, call, fn, guarded)
	default:
		if callee := b.g.byFunc[fn]; callee != nil {
			b.g.addEdge(caller, callee, EdgeStatic, call.Pos(), guarded, nil)
		}
		b.callbackArgs(caller, call, fn, guarded)
	}
}

// pendingIndirect queues an indirect call site for pass-3 resolution.
func (b *cgBuilder) pendingIndirect(caller *CGNode, sig *types.Signature, call *ast.CallExpr, guarded bool) {
	b.g.indirect = append(b.g.indirect, indirectSite{caller: caller, sig: sig, pos: call.Pos(), guarded: guarded})
}

// callbackArgs adds registration edges for every function value passed as
// an argument: caller → callback, tagged with the receiving callee.
func (b *cgBuilder) callbackArgs(caller *CGNode, call *ast.CallExpr, via *types.Func, guarded bool) {
	for _, arg := range call.Args {
		if target := b.funcValue(arg, caller); target != nil {
			target.AddrTaken = true
			b.g.addEdge(caller, target, EdgeCallback, arg.Pos(), guarded, via)
		}
	}
}

// funcValue resolves an expression naming a module function value: a plain
// identifier, a package-qualified or method-value selector, or a literal.
// Literal arguments are declared on first sight — ast.Inspect visits the
// call before its arguments, so the byLit map alone would miss them.
func (b *cgBuilder) funcValue(e ast.Expr, caller *CGNode) *CGNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.addLitNode(e, caller, b.pkg)
	case *ast.Ident:
		if fn, _ := b.pkg.Info.Uses[e].(*types.Func); fn != nil {
			return b.g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, _ := b.pkg.Info.Uses[e.Sel].(*types.Func); fn != nil {
			return b.g.byFunc[fn]
		}
	}
	return nil
}

// identUse marks declared functions address-taken when their value is used
// outside the function position of a call (assignment, composite literal,
// return, argument). Every value-taking also gets a callback edge from the
// taking function, carrying the site's guard state — so unguarded-reach
// analysis sees `f := helper` the same way it sees a registration argument
// (the via tag stays nil: there is no receiving callee).
func (b *cgBuilder) identUse(id *ast.Ident, stack []ast.Node) {
	fn, _ := b.pkg.Info.Uses[id].(*types.Func)
	if fn == nil {
		return
	}
	node := b.g.byFunc[fn]
	if node == nil {
		return
	}
	if inCallPosition(id, stack) {
		return
	}
	node.AddrTaken = true
	caller := b.enclosing(stack)
	if caller == nil {
		caller = b.pkgInitNode() // package-level initializer value use
	}
	b.g.addEdge(caller, node, EdgeCallback, id.Pos(),
		guardedByOn(b.pkg.Info, b.guards, stack), nil)
}

// inCallPosition reports whether expr (possibly wrapped in the selector or
// parens directly above it on the stack) is the Fun of an enclosing call —
// i.e. a plain invocation rather than a value use.
func inCallPosition(expr ast.Expr, stack []ast.Node) bool {
	top := expr
	i := len(stack) - 1
	for ; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			// Only the Sel side continues the callable expression; an
			// ident on the X side (package qualifier, receiver) is never
			// itself the called value.
			if parent.Sel != top {
				return false
			}
			top = parent
			continue
		case *ast.ParenExpr:
			top = parent
			continue
		case *ast.CallExpr:
			return ast.Unparen(parent.Fun) == ast.Unparen(top)
		}
		return false
	}
	return false
}

// pkgInitNode returns the synthetic node that owns package-level
// initializer expressions of b.pkg.
func (b *cgBuilder) pkgInitNode() *CGNode {
	name := b.g.relPath(b.pkg.Types) + ".<init>"
	if n := b.g.nodes[name]; n != nil {
		return n
	}
	n := &CGNode{Name: name, Pkg: b.pkg}
	b.g.nodes[name] = n
	return n
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementers finds every module method that an interface-method call
// could dispatch to: methods with the interface method's name on a named
// module type (or its pointer) that implements the whole interface.
func (g *CallGraph) implementers(im *types.Func) []*CGNode {
	sig, _ := im.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []*CGNode
	seen := map[*CGNode]bool{}
	for _, pkg := range g.mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type = named
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, im.Pkg(), im.Name())
			m, _ := obj.(*types.Func)
			if m == nil {
				continue
			}
			if node := g.byFunc[m]; node != nil && !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// resolveIndirect adds EdgeIndirect edges from every pending
// function-typed-value call to the address-taken nodes whose signature
// matches the call's.
func (g *CallGraph) resolveIndirect() {
	if len(g.indirect) == 0 {
		return
	}
	// Candidate pool: addr-taken nodes, name-sorted for determinism.
	var pool []*CGNode
	for _, n := range g.Nodes() {
		if n.AddrTaken && n.Sig != nil {
			pool = append(pool, n)
		}
	}
	for i := range g.indirect {
		site := &g.indirect[i]
		for _, cand := range pool {
			if types.Identical(site.sig, stripRecv(cand.Sig)) {
				g.addEdge(site.caller, cand, EdgeIndirect, site.pos, site.guarded, nil)
			}
		}
	}
	g.indirect = nil
}

// stripRecv returns the receiver-free view of a signature, so a method
// value's signature compares equal to the function type it is used as.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig == nil || sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}
