package analysis

import (
	"go/ast"
	"go/types"
)

// invgate enforces the invariant-gating discipline of internal/inv: every
// inv.Failf / inv.Fail call must be dominated by an inv.On() check, so a
// production run pays exactly one predictable branch per check site and
// never evaluates the format arguments. The rule covers both the package
// functions and the per-run recorder's methods — rec.Failf resolves to the
// same internal/inv symbols, and rec.On() satisfies the guard the same way
// inv.On() does. Accepted guards:
//
//	if inv.On() && cond { inv.Failf(...) }          // condition guard
//	if inv.On() { ... inv.Failf(...) ... }          // block guard
//	on := inv.On(); ...; if on && cond { ... }      // hoisted guard
//	if !inv.On() { return }; ...; inv.Failf(...)    // early return
//	if rec := x.rec; rec.On() { rec.Failf(...) }    // recorder-method form
//
// The pass is interprocedural: a helper whose Failf sites are bare is
// still clean when every call path into the helper crosses an inv.On()
// guard — the call graph's unguarded-reach set (see unguardedReach)
// decides. inv.On() is time-invariant within a run, so a callback
// registered under a guard is guarded for its whole lifetime, which is
// why callback-registration edges carry the registration site's guard.
//
// Taking inv.Failf / inv.Fail as a function value is always a finding:
// once the value escapes, no static analysis can keep the invocation
// behind a guard.
//
// inv.Check is exempt: it is documented as the ungated cold-path form.
type invgate struct{}

func (invgate) name() string { return "invgate" }

func (invgate) runModule(ctx *context) {
	unguarded := ctx.graph.unguardedReach()
	for _, pkg := range ctx.mod.Pkgs {
		if pathIs(pkg.Path, "internal/inv") || !matchAny(pkg.Rel, ctx.patterns) {
			continue
		}
		info := pkg.Info
		guards := collectGuardVars(pkg)
		walkStack(pkg, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := funcObj(info, n)
				if !isInvFail(fn) {
					return
				}
				if guardedByOn(info, guards, stack) {
					return
				}
				// Bare at the site — clean only if every call path into
				// the enclosing function is itself guarded.
				if encl := ctx.graph.enclosingNode(pkg, stack); encl != nil && !unguarded[encl] {
					return
				}
				ctx.reportf("invgate", n.Pos(),
					"inv.%s is not dominated by an inv.On() check on any call path (guard the site or every caller with `if inv.On()` so disabled runs pay one branch)", fn.Name())
			case *ast.Ident:
				fn, _ := info.Uses[n].(*types.Func)
				if !isInvFail(fn) || inCallPosition(n, stack) {
					return
				}
				ctx.reportf("invgate", n.Pos(),
					"inv.%s taken as a function value escapes the inv.On() gating discipline (call it directly under a guard)", fn.Name())
			}
		})
	}
}

// isInvFail reports whether fn is internal/inv's Failf or Fail (package
// function or Recorder method).
func isInvFail(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathIs(fn.Pkg().Path(), "internal/inv") {
		return false
	}
	return fn.Name() == "Failf" || fn.Name() == "Fail"
}

// unguardedReach computes the set of functions reachable with invariants
// possibly disabled: entry points (nodes with no known callers — main,
// exported API, test-only helpers) plus everything reachable from them
// over unguarded edges. Indirect edges are not followed: invoking a
// function value is only possible after the value was taken, and the
// value-taking edge (kind callback) already carries the taking site's
// guard — inv.On() cannot change between registration and invocation.
func (g *CallGraph) unguardedReach() map[*CGNode]bool {
	var roots []*CGNode
	for _, n := range g.Nodes() {
		if len(n.In) == 0 {
			roots = append(roots, n)
		}
	}
	return g.Reachable(roots, func(e *CGEdge) bool {
		return e.Kind != EdgeIndirect && !e.Guarded
	})
}

// collectGuardVars finds local variables bound to an inv.On() result
// ("on := inv.On()" or "on := inv.On() && …").
func collectGuardVars(pkg *Package) map[types.Object]bool {
	guards := make(map[types.Object]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if !assertsOn(pkg.Info, nil, assign.Rhs[i]) {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					guards[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					guards[obj] = true
				}
			}
			return true
		})
	}
	return guards
}

// guardedByOn reports whether the node at the top of stack is dominated
// by an inv.On() check.
func guardedByOn(info *types.Info, guards map[types.Object]bool, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if ok {
			// Which branch holds the call?
			var branch ast.Node
			if i+1 < len(stack) {
				branch = stack[i+1]
			}
			if branch == ifStmt.Body && assertsOn(info, guards, ifStmt.Cond) {
				return true
			}
			if branch == ifStmt.Else && assertsOff(info, guards, ifStmt.Cond) {
				return true
			}
		}
		// Early-return dominance: a preceding `if !inv.On() { return }`
		// sibling in any enclosing block.
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok || i+1 >= len(stack) {
			continue
		}
		child := stack[i+1]
		for _, stmt := range block.List {
			if stmt == child {
				break
			}
			bail, ok := stmt.(*ast.IfStmt)
			if !ok || !assertsOff(info, guards, bail.Cond) {
				continue
			}
			if blockDiverts(bail.Body) {
				return true
			}
		}
	}
	return false
}

// assertsOn reports whether cond being true implies inv.On() returned
// true: the call itself, a guard variable, or an && chain containing
// either. Under || neither operand is implied, so it does not count.
func assertsOn(info *types.Info, guards map[types.Object]bool, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		fn := funcObj(info, e)
		return fn != nil && fn.Name() == "On" && fn.Pkg() != nil && pathIs(fn.Pkg().Path(), "internal/inv")
	case *ast.Ident:
		return guards != nil && guards[info.Uses[e]]
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return assertsOn(info, guards, e.X) || assertsOn(info, guards, e.Y)
		}
	}
	return false
}

// assertsOff reports whether cond being true implies inv.On() returned
// false. Only the straightforward negation forms `!inv.On()` and
// `!guard` qualify; composite conditions give no such guarantee.
func assertsOff(info *types.Info, guards map[types.Object]bool, cond ast.Expr) bool {
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "!" {
		return assertsOn(info, guards, u.X)
	}
	return false
}

// blockDiverts reports whether the block unconditionally leaves the
// enclosing function (return or panic as its final statement).
func blockDiverts(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
