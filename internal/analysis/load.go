package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the full import path ("repro/internal/tsim").
	Path string
	// Rel is the module-relative directory ("" for the module root).
	Rel   string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded, type-checked module.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
}

// PkgByRel returns the package at the module-relative directory, or nil.
func (m *Module) PkgByRel(rel string) *Package {
	for _, p := range m.Pkgs {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// LoadModule parses and type-checks every non-test package under root
// (the directory holding go.mod) using only the standard library: module
// packages are resolved from the parsed set, everything else is treated
// as standard library and type-checked from GOROOT source. Test files,
// testdata, vendor and nested modules are skipped — the linter's subject
// is the code that ships.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	pkgs := make(map[string]*Package) // by import path
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			if _, statErr := os.Stat(filepath.Join(path, "go.mod")); statErr == nil {
				return filepath.SkipDir // nested module
			}
		}
		files, err := parseDir(fset, root, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		imp := modPath
		if rel != "" {
			imp = modPath + "/" + rel
		}
		pkgs[imp] = &Package{Path: imp, Rel: rel, Dir: path, Files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	m := &Module{Root: root, Path: modPath, Fset: fset}
	checker := &moduleChecker{
		fset:    fset,
		modPath: modPath,
		pkgs:    pkgs,
		std:     importer.ForCompiler(fset, "source", nil),
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := checker.check(p, nil); err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkgs[p])
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// parseDir parses the non-test .go files of one directory. File names are
// recorded module-relative so every diagnostic position is stable no
// matter where the driver runs from.
func parseDir(fset *token.FileSet, root, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, filepath.ToSlash(rel), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleChecker type-checks module packages in dependency order, routing
// intra-module imports to the checked set and everything else to the
// standard-library source importer.
type moduleChecker struct {
	fset    *token.FileSet
	modPath string
	pkgs    map[string]*Package
	std     types.Importer
	stack   []string
}

// Import implements types.Importer for the packages the module imports.
func (c *moduleChecker) Import(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		if err := c.check(path, nil); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return c.std.Import(path)
}

// check type-checks one module package (idempotent, cycle-safe).
func (c *moduleChecker) check(path string, _ []string) error {
	p := c.pkgs[path]
	if p.Types != nil {
		return nil
	}
	for _, on := range c.stack {
		if on == path {
			return fmt.Errorf("import cycle through %s", path)
		}
	}
	c.stack = append(c.stack, path)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: c,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, c.fset, p.Files, info)
	if firstErr != nil {
		return fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", path, err)
	}
	p.Types = tpkg
	p.Info = info
	return nil
}
