package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// statskey enforces the stats-key registry contract: the name argument of
// every stats.Set / stats.Snapshot metric method must be a compile-time
// constant whose value is registered in internal/stats/keys.go. Keys
// assembled at runtime must be annotated //lint:dynamic-key at the call
// site. The registry is what keeps fsim, tsim, the figure harness and
// the differential checks reading and writing one vocabulary — an
// unregistered or typo'd key would make a comparison silently read zero.
type statskey struct{}

func (statskey) name() string { return "statskey" }

// keyMethods are the metric methods whose first argument is a key, on
// both *stats.Set and stats.Snapshot.
var keyMethods = map[string]bool{
	"Add":        true,
	"Inc":        true,
	"Observe":    true,
	"Counter":    true,
	"CounterRef": true,
	"Accum":      true,
	"AccumRef":   true,
	"AccumMean":  true,
	"Hist":       true,
	"HistRef":    true,
}

func (statskey) run(ctx *context, pkg *Package) {
	if pkg == ctx.statsPkg {
		// The stats package's own method bodies pass key parameters
		// through to each other; the contract binds its callers.
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !keyMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isStatsReceiver(pkg.Info, sel) {
				return true
			}
			arg := call.Args[0]
			tv := pkg.Info.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				if !ctx.dynamicKeyAllowed(arg.Pos()) {
					ctx.reportf("statskey", arg.Pos(),
						"stats key passed to %s does not resolve to a compile-time constant (register it in internal/stats/keys.go, or annotate the site //lint:dynamic-key if the family is dynamic by design)",
						sel.Sel.Name)
				}
				return true
			}
			key := constant.StringVal(tv.Value)
			if _, ok := ctx.registry[key]; !ok {
				if !ctx.dynamicKeyAllowed(arg.Pos()) {
					ctx.reportf("statskey", arg.Pos(),
						"unregistered stats key %q (declare it in internal/stats/keys.go)", key)
				}
				return true
			}
			ctx.addKeyRef(key, arg.Pos())
			return true
		})
	}
}

// isStatsReceiver reports whether sel selects a method on stats.Set or
// stats.Snapshot (of this module's internal/stats, or a fixture's).
func isStatsReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathIs(obj.Pkg().Path(), "internal/stats") {
		return false
	}
	return obj.Name() == "Set" || obj.Name() == "Snapshot"
}
