package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// allocpin turns AllocsPerRun regressions into lint findings: it joins the
// compiler's escape analysis (-gcflags=-m, see escapes.go) against the
// call graph and flags every heap allocation — escaping locals, escaping
// closures, interface boxing — inside a function transitively reachable
// from the pinned 0-alloc hot paths. The hot set is:
//
//   - every prebound event callback: a function value registered through
//     Engine/Domain AtCall/AfterCall/AtCallLate or delivered over
//     Link.Send/SendLate (including registrations through interfaces a
//     scheduler satisfies, like dram's sched seam);
//   - every bindHot method (the warm-Reset rebinding path measured inside
//     the AllocsPerRun loops);
//   - the pinned hotRootPins symbols (metrics.Hist.Observe).
//
// Allocations that cannot run on the steady-state path are exempt: code
// dominated by an inv.On() guard, arguments of panic and of inv.Failf /
// inv.Fail (both are terminal cold paths), the allocpinCold binding-time
// table, and anything behind //lint:ignore allocpin.
type allocpin struct{}

func (allocpin) name() string { return "allocpin" }

// hotRootPins names additional hot roots (module-relative node names)
// that are pinned by AllocsPerRun-style tests without being event
// callbacks. Each entry records which pin it mirrors.
var hotRootPins = map[string]string{
	"(internal/metrics.Hist).Observe": "0-alloc pinned by TestObserveAllocFree",
}

// allocpinCold exempts symbols whose allocations happen at binding time,
// not per event: the stats cell accessors allocate a cell on first use
// and return the cached cell on the warm path the pins measure.
var allocpinCold = map[string]string{
	"(internal/stats.Set).CounterRef": "allocates the cell once; warm lookups return the cached cell",
	"(internal/stats.Set).AccumRef":   "allocates the cell once; warm lookups return the cached cell",
	"(internal/stats.Set).HistRef":    "allocates the cell once; warm lookups return the cached cell",
	// The name-keyed convenience forms inline the *Ref accessors, so their
	// first-touch cell allocation surfaces at every Inc/Add/Observe call
	// site. Warm cells are cached; the pins measure the cached path.
	"(internal/stats.Set).Add":     "inlines CounterRef; the cell allocation is first-touch only",
	"(internal/stats.Set).Inc":     "inlines CounterRef; the cell allocation is first-touch only",
	"(internal/stats.Set).Observe": "inlines AccumRef; the cell allocation is first-touch only",
	// Pool refill accessors: they allocate only when the free list is
	// empty, and the pins ramp to the high-water mark before measuring.
	"(internal/tsim.core).getMiss":     "coreMiss pool refill; steady state recycles via putMiss",
	"(internal/tsim.l2Ctl).getReq":     "readReq pool refill; steady state recycles via putReq",
	"(internal/obs.Tracer).StartReq":   "Req freelist refill; TestTracedWithHistogramsSteadyStateZeroAllocs ramps the pool first",
	"(internal/obs.Tracer).bindHists":  "one-time lazy histogram-cell binding on the first aggregate",
	"(internal/obs.laneAlloc).acquire": "lane slot map grows to its high-water mark, then slots are reused",
}

// allocpinColdPrefix exempts whole types by node-name prefix, for sinks
// that are statically reachable from the hot path but nil unless an
// explicit diagnostic mode turns them on, or whole subsystems whose
// allocation budget is pinned by a different contract than the
// cache-resident 0-alloc loop.
var allocpinColdPrefix = map[string]string{
	"(internal/obs.chromeWriter).": "chrome export sink is nil unless a trace dump is requested; the pinned traced path never enters it",
	// The memory-controller miss leg allocates per DRAM-level transient
	// (pending lists, metadata-fetch waiters, continuation closures). The
	// cache-resident AllocsPerRun pins never enter it; its budget is the
	// baseline-relative bound in TestCounterFreeModesAddNoAllocsOverBaseline.
	"(internal/tsim.mcCtl).": "per-DRAM-transient miss leg; bounded by TestCounterFreeModesAddNoAllocsOverBaseline, not the cache-resident 0-alloc pin",
}

// allocpinColdRoots excludes registered callbacks from the hot-root set
// when their firing rate is epochal, not per-event — the AllocsPerRun
// pins never observe them.
var allocpinColdRoots = map[string]string{
	"internal/mc.overflowPumpCB": "counter-overflow repair pump; fires on rare overflow epochs, not per memory event",
}

// allocCold reports whether a node is exempt from hot traversal.
func allocCold(name string) bool {
	if allocpinCold[name] != "" {
		return true
	}
	for p := range allocpinColdPrefix {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func (a allocpin) runModule(ctx *context) {
	g := ctx.graph
	roots := hotRoots(g)
	if len(roots) == 0 || ctx.escapes == nil {
		return
	}
	follow := func(e *CGEdge) bool {
		if e.Guarded || e.Callee == nil {
			return false // inv-guarded edges are debug-run cold paths
		}
		if e.Kind == EdgeIndirect {
			// Indirect edges match by signature alone, which drags every
			// func(Time)-shaped symbol into the hot set. A function value
			// can only be invoked after it was bound somewhere, and the
			// binding produced a callback edge from the binding function
			// — so continuations bound on the hot path are still covered.
			return false
		}
		if allocCold(e.Callee.Name) {
			return false
		}
		if e.Callee.Pkg != nil && pathIs(e.Callee.Pkg.Path, "internal/inv") {
			return false // Failf/Fail bodies only run when a check fired
		}
		return true
	}
	hot := g.Reachable(roots, follow)

	// Index every function body by file so each escape fact lands on its
	// innermost enclosing node.
	files := make(map[string][]bodySpan)
	for _, n := range g.Nodes() {
		var first, last ast.Node
		switch {
		case n.Decl != nil:
			first, last = n.Decl, n.Decl
		case n.Lit != nil:
			first, last = n.Lit, n.Lit
		default:
			continue
		}
		p := ctx.mod.Fset.Position(first.Pos())
		files[p.Filename] = append(files[p.Filename],
			bodySpan{start: p.Line, end: ctx.mod.Fset.Position(last.End()).Line, n: n})
	}
	cold := coldRegions(ctx)

	var names []string
	for file := range files {
		names = append(names, file)
	}
	sort.Strings(names)
	for _, file := range names {
		spans := files[file]
		for _, fact := range ctx.escapes.factsIn(file) {
			n := attribute(spans, fact)
			if n == nil || !hot[n] || n.Pkg == nil || !matchAny(n.Pkg.Rel, ctx.patterns) {
				continue
			}
			// bindHot bodies are the designated binding-time allocators:
			// cell accessors inline into them, so their facts are the
			// binding allocations the pins already tolerate cold. The
			// allocpinCold symbols' own bodies are likewise the documented
			// refill/first-touch allocators.
			if strings.HasSuffix(n.Name, ".bindHot") || allocCold(n.Name) {
				continue
			}
			if inLineRanges(cold[file], fact.Line) {
				continue
			}
			path := strings.Join(g.PathFrom(roots, n, follow), " -> ")
			ctx.reportAt("allocpin", file, fact.Line,
				"heap allocation on the pinned 0-alloc hot path: %s (in %s; path: %s) — hoist it to binding time, pool it, or annotate why it cannot run per-event",
				fact.Msg, n.Name, path)
		}
	}
}

// bodySpan is one function body's line extent within a file.
type bodySpan struct {
	start, end int
	n          *CGNode
}

// attribute finds the node whose body owns a fact: the innermost span
// containing the line. A "func literal escapes to heap" fact sits on the
// literal's own first line, but the allocation belongs to the function
// that builds the closure, so it re-attributes one level out.
func attribute(spans []bodySpan, fact escapeFact) *CGNode {
	pick := func(skip *CGNode) *CGNode {
		var best *CGNode
		bestSize := int(^uint(0) >> 1)
		for _, s := range spans {
			if s.n == skip || fact.Line < s.start || fact.Line > s.end {
				continue
			}
			if size := s.end - s.start; size < bestSize ||
				(size == bestSize && best != nil && s.n.Name < best.Name) {
				best, bestSize = s.n, size
			}
		}
		return best
	}
	n := pick(nil)
	if n != nil && n.Lit != nil && strings.Contains(fact.Msg, "func literal") {
		if outer := pick(n); outer != nil {
			return outer
		}
	}
	return n
}

// lineRange is one [from, to] line span.
type lineRange struct{ from, to int }

func inLineRanges(rs []lineRange, line int) bool {
	for _, r := range rs {
		if line >= r.from && line <= r.to {
			return true
		}
	}
	return false
}

// coldRegions collects, per file, the line spans whose allocation facts
// do not count against the steady-state hot path: bodies of
// inv.On()-guarded ifs; the full extent of panic / inv.Failf / inv.Fail
// calls (argument evaluation included — both forms are terminal); and
// call sites of allocpinCold symbols, because the compiler inlines those
// accessors and re-attributes their first-touch allocation to the caller's
// line.
func coldRegions(ctx *context) map[string][]lineRange {
	out := make(map[string][]lineRange)
	add := func(n ast.Node) {
		p := ctx.mod.Fset.Position(n.Pos())
		out[p.Filename] = append(out[p.Filename],
			lineRange{from: p.Line, to: ctx.mod.Fset.Position(n.End()).Line})
	}
	for _, pkg := range ctx.mod.Pkgs {
		info := pkg.Info
		guards := collectGuardVars(pkg)
		walkStack(pkg, func(n ast.Node, _ []ast.Node) {
			switch n := n.(type) {
			case *ast.IfStmt:
				if assertsOn(info, guards, n.Cond) {
					add(n.Body)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
					add(n)
					return
				}
				fn := funcObj(info, n)
				if isInvFail(fn) {
					add(n)
					return
				}
				if fn != nil && allocCold(ctx.graph.nodeName(fn)) {
					add(n)
				}
			}
		})
	}
	return out
}

// hotRoots collects the pinned-hot-path entry points.
func hotRoots(g *CallGraph) []*CGNode {
	var roots []*CGNode
	for _, n := range g.Nodes() {
		if allocpinColdRoots[n.Name] != "" {
			continue
		}
		if strings.HasSuffix(n.Name, ".bindHot") || hotRootPins[n.Name] != "" {
			roots = append(roots, n)
			continue
		}
		for _, e := range n.In {
			if e.Kind == EdgeCallback && isHotReg(g, e.Via) {
				roots = append(roots, n)
				break
			}
		}
	}
	return roots
}

// isHotReg reports whether via registers a prebound steady-state callback.
func isHotReg(g *CallGraph, via *types.Func) bool {
	if via == nil {
		return false
	}
	if isEventReg(via) {
		return true
	}
	if isInterfaceMethod(via) {
		for _, impl := range g.implementers(via) {
			if impl.Fn != nil && isEventReg(impl.Fn) {
				return true
			}
		}
	}
	return false
}

// isEventReg reports whether fn is a prebound-callback scheduling method:
// the fn(any)+arg forms on Engine/Domain, or a Link send. The closure
// forms (At/After/Every) are setup-time conveniences, not per-event
// paths, and are deliberately not hot roots.
func isEventReg(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathIs(fn.Pkg().Path(), "internal/sim") {
		return false
	}
	switch receiverName(fn) {
	case "Engine", "Domain":
		switch fn.Name() {
		case "AtCall", "AfterCall", "AtCallLate":
			return true
		}
	case "Link":
		switch fn.Name() {
		case "Send", "SendLate":
			return true
		}
	}
	return false
}
