package analysis

import (
	"fmt"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// escapeFact is one heap-allocation fact from the compiler's escape
// analysis (-gcflags=-m): a value moved to the heap, an escaping closure,
// or an interface boxing at the recorded position.
type escapeFact struct {
	File string // module-relative slash path, matching Finding.File
	Line int
	Msg  string // the compiler's diagnostic, e.g. "func literal escapes to heap"
}

// escapeSet is the parsed fact set for one module, keyed by file.
type escapeSet struct {
	byFile map[string][]escapeFact
}

// factsIn returns the facts of one file in line order.
func (s *escapeSet) factsIn(file string) []escapeFact {
	if s == nil {
		return nil
	}
	return s.byFile[file]
}

// escapeLine matches one compiler diagnostic: "file.go:line:col: message".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// loadEscapes runs the compiler's escape analysis over the module rooted
// at root and keeps the heap-allocation facts. `go build -gcflags=-m`
// replays its diagnostics from the build cache, so repeated driver runs
// cost one cache probe, not one compile.
func loadEscapes(root string) (*escapeSet, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		tail := string(out)
		if len(tail) > 2048 {
			tail = tail[len(tail)-2048:]
		}
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, tail)
	}
	set := &escapeSet{byFile: make(map[string][]escapeFact)}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue // "# pkg" headers, blank lines
		}
		msg := m[4]
		if !keepEscape(msg) {
			continue
		}
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		file := strings.TrimPrefix(m[1], "./")
		set.byFile[file] = append(set.byFile[file], escapeFact{File: file, Line: ln, Msg: msg})
	}
	for _, facts := range set.byFile {
		sort.Slice(facts, func(i, j int) bool { return facts[i].Line < facts[j].Line })
	}
	return set, nil
}

// keepEscape keeps the diagnostics that mean a runtime heap allocation:
// "moved to heap: x", "x escapes to heap", "func literal escapes to
// heap". Inlining notes, "leaking param" (caller-side information) and
// explicit non-escapes are dropped.
func keepEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}
