package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// shardsafe enforces the DESIGN.md §14 parity discipline on every function
// that can execute inside a shard domain. The byte-identical guarantee of
// the conservative-parallel engine rests on three mechanical rules, and
// each one is checkable from the call graph:
//
//	(a) domain-reachable code must not write package-level state — per-run
//	    state lives on run-owned objects, or two domains racing on a
//	    global silently diverge from the serial engine;
//	(b) domain-reachable code must not schedule directly on *sim.Engine
//	    (At/AtCall/After/AfterCall/AtCallLate/Every) — crossing a seam
//	    without Link delivery skips the lookahead clamp and the barrier
//	    rounds. Scheduling through the owning *sim.Domain (or an interface
//	    satisfied by it, like dram's sched seam) is the sanctioned form;
//	(c) ordinary-class Link.Send has no late-class key, so merged delivery
//	    order at the seam is not byte-reproducible — cross-domain events
//	    use SendLate unless the zero-latency class is a documented,
//	    annotated exception;
//	(d) internal/obs (tracing) is serial-only — Config.Validate rejects
//	    tracing under Domains > 0 — so a call into it from
//	    domain-reachable code is either dead under sharding or a real
//	    race. Calls that are provably dead are exempt: every *obs.Req
//	    method is nil-safe by contract (obsnil's sibling discipline) and
//	    *obs.Tracer methods in the tracerNilSafe set no-op on the nil
//	    tracer a sharded run is guaranteed to have. Anything else — obs
//	    package functions, non-nil-safe Tracer methods — is flagged:
//	    annotate the site and say why, or move it hub-side.
//
// "Domain-reachable" starts from every callback registered through a
// *sim.Domain scheduling method or delivered over a *sim.Link, including
// registrations through interfaces that a Domain satisfies, minus the
// pinned shardHubOnly table below — functions that ride a Link but
// execute on the hub engine by construction.
type shardsafe struct{}

func (shardsafe) name() string { return "shardsafe" }

// shardHubOnly pins callback symbols (module-relative node names) that are
// registered at a seam but run hub-side only; reachability does not enter
// them. Every entry must say why it is hub-only — the table is the audit
// trail for the one place the pass trusts a human over the graph.
var shardHubOnly = map[string]string{
	// The DRAM completion leg: issue() sends dramFinishCB over ch.out,
	// whose destination is the hub domain, so the callback body (readReq
	// completion, r.done into tsim) executes on the serial side of the
	// barrier by construction (DESIGN.md §14).
	"internal/dram.dramFinishCB": "delivered over ch.out to the hub domain; executes serial-side",
	// The memory controller runs on the hub in every cut (topo.go): its
	// seam callbacks arrive over a slice's toHub link, whose destination
	// is the hub engine, so their bodies (counter machinery, overflow
	// engine, DRAM enqueue) execute serial-side by construction.
	"internal/tsim.mcDataReadConfCB":            "delivered over toHub to the hub; the MC lives on the hub in every cut",
	"internal/tsim.counterMissCB":               "delivered over toHub to the hub; the MC lives on the hub in every cut",
	"(internal/tsim.mcCtl).handleWBData":        "delivered over toHub to the hub; the MC lives on the hub in every cut",
	"(internal/tsim.mcCtl).handleWBMeta":        "delivered over toHub to the hub; the MC lives on the hub in every cut",
	"(internal/tsim.mcCtl).handleMetaProbeDone": "delivered over toHub to the hub; the MC lives on the hub in every cut",
	// XPT's forwarded miss: Validate rejects XPT under Domains > 0, so
	// this callback only ever runs on the serial engine.
	"internal/tsim.mcDataReadSpecCB": "XPT path; Validate rejects XPT with Domains > 0, so serial engine only",
	// Functional warmup writes back synchronously before the event
	// engines start; after warmup these run behind the pinned seam
	// callbacks above.
	"(internal/tsim.mcCtl).writebackData": "called during serial functional warmup or from hub-delivered writeback messages",
	"(internal/tsim.mcCtl).writebackMeta": "called during serial functional warmup or from hub-delivered writeback messages",
}

// engineSched is the *sim.Engine scheduling surface rule (b) forbids from
// domain context.
var engineSched = map[string]bool{
	"At": true, "AtCall": true, "After": true, "AfterCall": true,
	"AtCallLate": true, "Every": true,
}

func (sh shardsafe) runModule(ctx *context) {
	g := ctx.graph
	roots := shardRoots(g)
	if len(roots) == 0 {
		return // no domain seams in this module
	}
	reach := g.Reachable(roots, func(e *CGEdge) bool {
		return e.Callee == nil || shardHubOnly[e.Callee.Name] == ""
	})

	for _, n := range g.Nodes() {
		if !reach[n] || n.Body() == nil {
			continue
		}
		// The engine (internal/sim) is the trusted implementation of the
		// discipline and internal/obs is the subject of rule (d), not its
		// audience; neither is scanned.
		if pathIs(n.Pkg.Path, "internal/sim") || pathIs(n.Pkg.Path, "internal/obs") {
			continue
		}
		if !matchAny(n.Pkg.Rel, ctx.patterns) {
			continue
		}
		path := strings.Join(g.PathFrom(roots, n, func(e *CGEdge) bool {
			return e.Callee == nil || shardHubOnly[e.Callee.Name] == ""
		}), " -> ")
		sh.scanNode(ctx, n, path)
	}

	// Rule (c) is positional, not reachability-based: a Link only exists
	// at a seam, so every ordinary-class Send is audited wherever it is.
	sh.scanSends(ctx)
}

// scanNode applies rules (a), (b) and (d) to one domain-reachable body.
func (sh shardsafe) scanNode(ctx *context, n *CGNode, path string) {
	info := n.Pkg.Info
	walkNodeBody(n, func(node ast.Node, _ []ast.Node) {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				sh.checkWrite(ctx, info, lhs, n, path)
			}
		case *ast.IncDecStmt:
			sh.checkWrite(ctx, info, node.X, n, path)
		case *ast.CallExpr:
			fn := funcObj(info, node)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			if pathIs(fn.Pkg().Path(), "internal/sim") &&
				receiverName(fn) == "Engine" && engineSched[fn.Name()] {
				ctx.reportf("shardsafe", node.Pos(),
					"Engine.%s called from domain-reachable code (%s) bypasses Link delivery across the shard seam — schedule on the owning Domain or send over a Link (DESIGN.md §14); path: %s",
					fn.Name(), n.Name, path)
			}
			if pathIs(fn.Pkg().Path(), "internal/obs") && !obsDeadUnderSharding(ctx, fn) {
				ctx.reportf("shardsafe", node.Pos(),
					"serial-only internal/obs symbol %s called from domain-reachable code (%s) — tracing is rejected under Domains > 0, so annotate the dead nil-guarded site or move the call hub-side (DESIGN.md §14); path: %s",
					fn.Name(), n.Name, path)
			}
		}
	})
}

// obsDeadUnderSharding reports whether an internal/obs call is provably a
// no-op in a sharded run: Validate rejects tracing under Domains > 0, so
// the tracer is nil and every request context is nil — and both *obs.Req
// (all methods, by contract) and the tracerNilSafe subset of *obs.Tracer
// no-op on a nil receiver.
func obsDeadUnderSharding(ctx *context, fn *types.Func) bool {
	switch receiverName(fn) {
	case "Req":
		return true
	case "Tracer":
		return ctx.nilSafe[fn.Name()]
	}
	return false
}

// checkWrite flags an assignment target whose base resolves to a
// package-level variable.
func (sh shardsafe) checkWrite(ctx *context, info *types.Info, lhs ast.Expr, n *CGNode, path string) {
	v := baseVar(info, lhs)
	if v == nil || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, parameter or receiver
	}
	ctx.reportf("shardsafe", lhs.Pos(),
		"write to package-level var %s from domain-reachable code (%s) — per-run state must be run-owned for shard parity (DESIGN.md §14); path: %s",
		v.Name(), n.Name, path)
}

// scanSends applies rule (c): every ordinary-class Link.Send outside the
// engine itself.
func (sh shardsafe) scanSends(ctx *context) {
	for _, pkg := range ctx.mod.Pkgs {
		if pathIs(pkg.Path, "internal/sim") || !matchAny(pkg.Rel, ctx.patterns) {
			continue
		}
		info := pkg.Info
		walkStack(pkg, func(node ast.Node, _ []ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := funcObj(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Name() != "Send" {
				return
			}
			if !pathIs(fn.Pkg().Path(), "internal/sim") || receiverName(fn) != "Link" {
				return
			}
			ctx.reportf("shardsafe", call.Pos(),
				"ordinary-class Link.Send crosses a domain seam without a late-class key — use SendLate so merged delivery order is byte-identical (DESIGN.md §14), or annotate the deliberate exception")
		})
	}
}

// shardRoots collects every callback registered into a domain: targets of
// callback edges whose receiving callee is a *sim.Domain scheduling
// method, a *sim.Link send, or an interface method that a Domain
// satisfies. Pinned hub-only symbols are excluded.
func shardRoots(g *CallGraph) []*CGNode {
	var roots []*CGNode
	for _, n := range g.Nodes() {
		if shardHubOnly[n.Name] != "" {
			continue
		}
		for _, e := range n.In {
			if e.Kind == EdgeCallback && isShardReg(g, e.Via) {
				roots = append(roots, n)
				break
			}
		}
	}
	return roots
}

// isShardReg reports whether via is a registration point that can deliver
// the callback into a shard domain.
func isShardReg(g *CallGraph, via *types.Func) bool {
	if via == nil {
		return false
	}
	if isDomainSched(via) {
		return true
	}
	if isInterfaceMethod(via) {
		for _, impl := range g.implementers(via) {
			if impl.Fn != nil && isDomainSched(impl.Fn) {
				return true
			}
		}
	}
	return false
}

// isDomainSched reports whether fn is a *sim.Domain scheduling method or a
// *sim.Link send.
func isDomainSched(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathIs(fn.Pkg().Path(), "internal/sim") {
		return false
	}
	switch receiverName(fn) {
	case "Domain":
		switch fn.Name() {
		case "At", "AtCall", "AfterCall", "AtCallLate":
			return true
		}
	case "Link":
		switch fn.Name() {
		case "Send", "SendLate":
			return true
		}
	}
	return false
}

// receiverName returns the named type of fn's receiver ("" for plain
// functions and interface methods).
func receiverName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// baseVar resolves the variable an assignment target ultimately writes
// through: the base identifier of a chain of selections, indexes and
// dereferences, or the selected package-level var of a pkg.Var form.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			v, _ := info.Defs[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			// pkg.Var: the selected object is the variable. Anything
			// else (field chain) recurses on the receiver expression.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// walkNodeBody walks one graph node's body with an ancestor stack,
// without descending into nested function literals — each literal is its
// own node and is scanned if (and only if) it is itself reachable.
func walkNodeBody(n *CGNode, fn func(node ast.Node, stack []ast.Node)) {
	body := n.Body()
	if body == nil {
		return
	}
	var stack []ast.Node
	ast.Inspect(body, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		fn(node, stack)
		stack = append(stack, node)
		return true
	})
}
