package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRun lints the pinned fixture module once per test binary.
func fixtureRun(t *testing.T, patterns ...string) *Result {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, patterns...)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	return res
}

// TestFixtureFindings pins the exact diagnostic set of the fixture
// module: every positive case yields its one finding, and nothing in
// good/, the stub packages, or the blessed figures patterns leaks one.
func TestFixtureFindings(t *testing.T) {
	want := []string{
		`bad/bad.go:15: [statskey] unregistered stats key "fixture/unregistered" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:21: [statskey] stats key passed to Add does not resolve to a compile-time constant (register it in internal/stats/keys.go, or annotate the site //lint:dynamic-key if the family is dynamic by design)`,
		"bad/bad.go:27: [invgate] inv.Failf is not dominated by an inv.On() check (wrap the site in `if inv.On()` so disabled runs pay one branch)",
		"bad/bad.go:32: [invgate] inv.Fail is not dominated by an inv.On() check (wrap the site in `if inv.On()` so disabled runs pay one branch)",
		`bad/bad.go:38: [obsnil] (*obs.Tracer).Record is outside the documented nil-safe set; a disabled (nil) tracer would panic here (guard the receiver or extend tracerNilSafe in internal/obs)`,
		`bad/bad.go:45: [lint] malformed suppression: want //lint:ignore <pass> <reason>`,
		`bad/bad.go:46: [statskey] unregistered stats key "fixture/also-unregistered" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:52: [statskey] unregistered stats key "fixture/unregistered-ref" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:58: [statskey] unregistered stats key "fixture/unregistered-hist" (declare it in internal/stats/keys.go)`,
		"bad/bad.go:64: [invgate] inv.Failf is not dominated by an inv.On() check (wrap the site in `if inv.On()` so disabled runs pay one branch)",
		"bad/bad.go:70: [invgate] inv.Fail is not dominated by an inv.On() check (wrap the site in `if inv.On()` so disabled runs pay one branch)",
		`internal/figures/figures.go:14: [detlint] time.Now in a deterministic-output package (golden/compared output must not depend on wall time)`,
		`internal/figures/figures.go:19: [detlint] package-level math/rand draws from the global source; use a locally seeded *rand.Rand`,
		`internal/figures/figures.go:24: [detlint] iteration over a map reaches output (fmt.Println at line 25) without an intervening sort; collect and sort the keys first`,
		`internal/figures/figures.go:51: [detlint] iteration over a map reaches output (fmt.Println at line 53) only through a nested map iteration; the outer order is nondeterministic too — sort the keys at every level`,
		`internal/figures/figures.go:52: [detlint] iteration over a map reaches output (fmt.Println at line 53) without an intervening sort; collect and sort the keys first`,
	}
	res := fixtureRun(t)
	var got []string
	for _, f := range res.Findings {
		got = append(got, f.String())
	}
	if len(got) != len(want) {
		t.Fatalf("finding count = %d, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

// TestFixtureOneDiagnosticPerCase asserts the acceptance cases each
// yield exactly one diagnostic: an unregistered stats key, a time.Now in
// internal/figures, and an unguarded inv.Failf.
func TestFixtureOneDiagnosticPerCase(t *testing.T) {
	res := fixtureRun(t)
	cases := []struct {
		name  string
		match func(f Finding) bool
	}{
		{"unregistered key", func(f Finding) bool {
			return f.Pass == "statskey" && strings.Contains(f.Msg, `"fixture/unregistered"`)
		}},
		{"time.Now in figures", func(f Finding) bool {
			return f.Pass == "detlint" && f.File == "internal/figures/figures.go" && strings.Contains(f.Msg, "time.Now")
		}},
		{"unguarded inv.Failf", func(f Finding) bool {
			return f.Pass == "invgate" && strings.Contains(f.Msg, "inv.Failf") && f.Line == 27
		}},
		{"unguarded recorder-method Failf", func(f Finding) bool {
			return f.Pass == "invgate" && strings.Contains(f.Msg, "inv.Failf") && f.Line == 64
		}},
	}
	for _, c := range cases {
		n := 0
		for _, f := range res.Findings {
			if c.match(f) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: %d diagnostics, want exactly 1", c.name, n)
		}
	}
}

// TestFixturePatterns checks package-pattern selection: linting only
// ./bad must drop the figures findings and keep the bad ones.
func TestFixturePatterns(t *testing.T) {
	res := fixtureRun(t, "./bad")
	if len(res.Findings) == 0 {
		t.Fatal("no findings for ./bad")
	}
	for _, f := range res.Findings {
		if !strings.HasPrefix(f.File, "bad/") {
			t.Errorf("pattern ./bad leaked finding in %s", f.File)
		}
	}
	if res = fixtureRun(t, "./internal/..."); len(res.Findings) != 5 {
		t.Errorf("./internal/... yielded %d findings, want the 5 figures ones", len(res.Findings))
	}
}

// TestFixtureKeyIndex checks the registry/reference index: referenced
// keys index their use sites, and the deliberately unreferenced
// fixture/orphan key indexes nothing.
func TestFixtureKeyIndex(t *testing.T) {
	res := fixtureRun(t)
	wantKeys := []string{"fixture/good", "fixture/ignored", "fixture/orphan", "fixture/table"}
	if len(res.Keys) != len(wantKeys) {
		t.Fatalf("Keys = %v, want %v", res.Keys, wantKeys)
	}
	for i := range wantKeys {
		if res.Keys[i] != wantKeys[i] {
			t.Fatalf("Keys = %v, want %v", res.Keys, wantKeys)
		}
	}
	if len(res.KeyIndex["fixture/good"]) == 0 {
		t.Error("fixture/good has no references despite direct use in good/good.go")
	}
	if len(res.KeyIndex["fixture/table"]) == 0 {
		t.Error("fixture/table has no references despite the keyTable use")
	}
	if refs := res.KeyIndex["fixture/orphan"]; len(refs) != 0 {
		t.Errorf("fixture/orphan has %d references, want 0 (the registry itself must not count)", len(refs))
	}
}
