package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRun lints the pinned fixture module once per test binary.
func fixtureRun(t *testing.T, patterns ...string) *Result {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, patterns...)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	return res
}

// TestFixtureFindings pins the exact diagnostic set of the fixture
// module: every positive case yields its one finding, and nothing in
// good/, the stub packages, or the blessed figures patterns leaks one.
func TestFixtureFindings(t *testing.T) {
	const allocpinSuffix = " — hoist it to binding time, pool it, or annotate why it cannot run per-event"
	const invgateSuffix = " is not dominated by an inv.On() check on any call path (guard the site or every caller with `if inv.On()` so disabled runs pay one branch)"
	want := []string{
		"allocbad/allocbad.go:36: [allocpin] heap allocation on the pinned 0-alloc hot path: new(payload) escapes to heap (in allocbad.SetupInline$lit@35; path: allocbad.SetupInline$lit@35)" + allocpinSuffix,
		"allocbad/allocbad.go:42: [allocpin] heap allocation on the pinned 0-alloc hot path: &payload{} escapes to heap (in allocbad.reqCB; path: allocbad.reqCB)" + allocpinSuffix,
		"allocbad/allocbad.go:48: [allocpin] heap allocation on the pinned 0-alloc hot path: v * int64(2) escapes to heap (in allocbad.boxCB; path: allocbad.boxCB)" + allocpinSuffix,
		"allocbad/allocbad.go:54: [allocpin] heap allocation on the pinned 0-alloc hot path: buf escapes to heap (in allocbad.chainCB; path: allocbad.chainCB)" + allocpinSuffix,
		"allocbad/allocbad.go:54: [allocpin] heap allocation on the pinned 0-alloc hot path: make([]int64, 9) escapes to heap (in allocbad.chainCB; path: allocbad.chainCB)" + allocpinSuffix,
		"allocbad/allocbad.go:58: [allocpin] heap allocation on the pinned 0-alloc hot path: make([]int64, 9) escapes to heap (in allocbad.grow; path: allocbad.chainCB -> allocbad.grow)" + allocpinSuffix,
		"allocbad/allocbad.go:59: [allocpin] heap allocation on the pinned 0-alloc hot path: buf escapes to heap (in allocbad.grow; path: allocbad.chainCB -> allocbad.grow)" + allocpinSuffix,
		"allocbad/allocbad.go:66: [allocpin] heap allocation on the pinned 0-alloc hot path: moved to heap: n (in allocbad.closureCB; path: allocbad.closureCB)" + allocpinSuffix,
		"allocbad/allocbad.go:67: [allocpin] heap allocation on the pinned 0-alloc hot path: func literal escapes to heap (in allocbad.closureCB; path: allocbad.closureCB)" + allocpinSuffix,
		"allocbad/allocbad.go:73: [allocpin] heap allocation on the pinned 0-alloc hot path: moved to heap: v (in allocbad.statCB; path: allocbad.statCB)" + allocpinSuffix,
		`bad/bad.go:15: [statskey] unregistered stats key "fixture/unregistered" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:21: [statskey] stats key passed to Add does not resolve to a compile-time constant (register it in internal/stats/keys.go, or annotate the site //lint:dynamic-key if the family is dynamic by design)`,
		"bad/bad.go:27: [invgate] inv.Failf" + invgateSuffix,
		"bad/bad.go:32: [invgate] inv.Fail" + invgateSuffix,
		`bad/bad.go:38: [obsnil] (*obs.Tracer).Record is outside the documented nil-safe set; a disabled (nil) tracer would panic here (guard the receiver or extend tracerNilSafe in internal/obs)`,
		`bad/bad.go:45: [lint] malformed suppression: want //lint:ignore <pass> <reason>`,
		`bad/bad.go:46: [statskey] unregistered stats key "fixture/also-unregistered" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:52: [statskey] unregistered stats key "fixture/unregistered-ref" (declare it in internal/stats/keys.go)`,
		`bad/bad.go:58: [statskey] unregistered stats key "fixture/unregistered-hist" (declare it in internal/stats/keys.go)`,
		"bad/bad.go:64: [invgate] inv.Failf" + invgateSuffix,
		"bad/bad.go:70: [invgate] inv.Fail" + invgateSuffix,
		`internal/figures/figures.go:14: [detlint] time.Now in a deterministic-output package (golden/compared output must not depend on wall time)`,
		`internal/figures/figures.go:19: [detlint] package-level math/rand draws from the global source; use a locally seeded *rand.Rand`,
		`internal/figures/figures.go:24: [detlint] iteration over a map reaches output (fmt.Println at line 25) without an intervening sort; collect and sort the keys first`,
		`internal/figures/figures.go:51: [detlint] iteration over a map reaches output (fmt.Println at line 53) only through a nested map iteration; the outer order is nondeterministic too — sort the keys at every level`,
		`internal/figures/figures.go:52: [detlint] iteration over a map reaches output (fmt.Println at line 53) without an intervening sort; collect and sort the keys first`,
		"invflow/invflow.go:33: [invgate] inv.Failf" + invgateSuffix,
		`invflow/invflow.go:39: [invgate] inv.Failf taken as a function value escapes the inv.On() gating discipline (call it directly under a guard)`,
		`invflow/invflow.go:45: [invgate] inv.Fail taken as a function value escapes the inv.On() gating discipline (call it directly under a guard)`,
		`shardbad/shardbad.go:25: [shardsafe] ordinary-class Link.Send crosses a domain seam without a late-class key — use SendLate so merged delivery order is byte-identical (DESIGN.md §14), or annotate the deliberate exception`,
		`shardbad/shardbad.go:33: [shardsafe] write to package-level var hits from domain-reachable code (shardbad.tickCB) — per-run state must be run-owned for shard parity (DESIGN.md §14); path: shardbad.tickCB`,
		`shardbad/shardbad.go:43: [shardsafe] write to package-level var deliveries from domain-reachable code (shardbad.bump) — per-run state must be run-owned for shard parity (DESIGN.md §14); path: shardbad.chainCB -> shardbad.bump`,
		`shardbad/shardbad.go:49: [shardsafe] Engine.AtCall called from domain-reachable code (shardbad.escapeCB) bypasses Link delivery across the shard seam — schedule on the owning Domain or send over a Link (DESIGN.md §14); path: shardbad.escapeCB`,
		`shardbad/shardbad.go:57: [shardsafe] serial-only internal/obs symbol Active called from domain-reachable code (shardbad.traceCB) — tracing is rejected under Domains > 0, so annotate the dead nil-guarded site or move the call hub-side (DESIGN.md §14); path: shardbad.traceCB`,
		`shardbad/shardbad.go:77: [shardsafe] write to package-level var boots from domain-reachable code (shardbad.bootCB) — per-run state must be run-owned for shard parity (DESIGN.md §14); path: shardbad.bootCB`,
		`suppress/suppress.go:17: [lint] unused suppression: no invgate finding here — remove the //lint:ignore or restore the violation it documented`,
	}
	res := fixtureRun(t)
	var got []string
	for _, f := range res.Findings {
		got = append(got, f.String())
	}
	if len(got) != len(want) {
		t.Fatalf("finding count = %d, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

// TestFixtureOneDiagnosticPerCase asserts the acceptance cases each
// yield exactly one diagnostic: an unregistered stats key, a time.Now in
// internal/figures, an unguarded inv.Failf, a closure allocated inside a
// registered callback, an interface-seam shardsafe write, a fail
// function taken as a value, and a stale suppression.
func TestFixtureOneDiagnosticPerCase(t *testing.T) {
	res := fixtureRun(t)
	cases := []struct {
		name  string
		match func(f Finding) bool
	}{
		{"unregistered key", func(f Finding) bool {
			return f.Pass == "statskey" && strings.Contains(f.Msg, `"fixture/unregistered"`)
		}},
		{"time.Now in figures", func(f Finding) bool {
			return f.Pass == "detlint" && f.File == "internal/figures/figures.go" && strings.Contains(f.Msg, "time.Now")
		}},
		{"unguarded inv.Failf", func(f Finding) bool {
			return f.Pass == "invgate" && strings.Contains(f.Msg, "inv.Failf") && f.Line == 27
		}},
		{"unguarded recorder-method Failf", func(f Finding) bool {
			return f.Pass == "invgate" && strings.Contains(f.Msg, "inv.Failf") && f.Line == 64
		}},
		{"bare Failf behind an unguarded caller", func(f Finding) bool {
			return f.Pass == "invgate" && f.File == "invflow/invflow.go" && f.Line == 33
		}},
		{"inv.Failf taken as a value", func(f Finding) bool {
			return f.Pass == "invgate" && f.File == "invflow/invflow.go" && f.Line == 39
		}},
		{"closure allocated inside a registered callback", func(f Finding) bool {
			return f.Pass == "allocpin" && f.File == "allocbad/allocbad.go" && f.Line == 67
		}},
		{"interface-seam registration roots the callback", func(f Finding) bool {
			return f.Pass == "shardsafe" && f.File == "shardbad/shardbad.go" && f.Line == 77
		}},
		{"ordinary Send across the seam", func(f Finding) bool {
			return f.Pass == "shardsafe" && f.File == "shardbad/shardbad.go" && f.Line == 25
		}},
		{"stale suppression audited", func(f Finding) bool {
			return f.Pass == "lint" && f.File == "suppress/suppress.go" && strings.Contains(f.Msg, "unused suppression")
		}},
	}
	for _, c := range cases {
		n := 0
		for _, f := range res.Findings {
			if c.match(f) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: %d diagnostics, want exactly 1", c.name, n)
		}
	}
	// The interprocedural negative the old intraprocedural invgate could
	// not accept: checkDeep's bare Failf at invflow/invflow.go:14 is
	// guarded by its only caller and must stay silent.
	for _, f := range res.Findings {
		if f.File == "invflow/invflow.go" && f.Line == 14 {
			t.Errorf("guarded-caller negative flagged: %s", f.String())
		}
	}
	// Sanctioned-form packages must stay finding-free.
	for _, f := range res.Findings {
		if strings.HasPrefix(f.File, "shardgood/") || strings.HasPrefix(f.File, "allocgood/") || strings.HasPrefix(f.File, "cycle/") {
			t.Errorf("negative package leaked finding: %s", f.String())
		}
	}
}

// TestFixturePatterns checks package-pattern selection: linting only
// ./bad must drop the figures findings and keep the bad ones.
func TestFixturePatterns(t *testing.T) {
	res := fixtureRun(t, "./bad")
	if len(res.Findings) == 0 {
		t.Fatal("no findings for ./bad")
	}
	for _, f := range res.Findings {
		if !strings.HasPrefix(f.File, "bad/") {
			t.Errorf("pattern ./bad leaked finding in %s", f.File)
		}
	}
	if res = fixtureRun(t, "./internal/..."); len(res.Findings) != 5 {
		t.Errorf("./internal/... yielded %d findings, want the 5 figures ones", len(res.Findings))
	}
}

// TestFixtureKeyIndex checks the registry/reference index: referenced
// keys index their use sites, and the deliberately unreferenced
// fixture/orphan key indexes nothing.
func TestFixtureKeyIndex(t *testing.T) {
	res := fixtureRun(t)
	wantKeys := []string{"fixture/good", "fixture/ignored", "fixture/orphan", "fixture/table"}
	if len(res.Keys) != len(wantKeys) {
		t.Fatalf("Keys = %v, want %v", res.Keys, wantKeys)
	}
	for i := range wantKeys {
		if res.Keys[i] != wantKeys[i] {
			t.Fatalf("Keys = %v, want %v", res.Keys, wantKeys)
		}
	}
	if len(res.KeyIndex["fixture/good"]) == 0 {
		t.Error("fixture/good has no references despite direct use in good/good.go")
	}
	if len(res.KeyIndex["fixture/table"]) == 0 {
		t.Error("fixture/table has no references despite the keyTable use")
	}
	if refs := res.KeyIndex["fixture/orphan"]; len(refs) != 0 {
		t.Errorf("fixture/orphan has %d references, want 0 (the registry itself must not count)", len(refs))
	}
}
