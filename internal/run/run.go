// Package run is the scenario layer of the evaluation pipeline: it splits
// "regenerate the paper's figures" into a *plan* phase that declares every
// simulation as data and an *execute* phase that runs the deduplicated set
// across a worker pool, optionally backed by a persistent on-disk result
// cache.
//
// A Scenario canonically describes one simulation — mode (functional or
// timing) × benchmark × resolved configuration × seed × reference budget ×
// workload scale — and is identified by a content-addressed key derived
// from the provenance config hash (internal/prov.ScenarioKey). Two call
// sites that describe the same simulation share one run by construction;
// there is no hand-written memo-key vocabulary to keep collision-free.
//
// Outcomes are plain data (a stats snapshot plus, for timing runs, the
// tsim result summary), so they serialize to JSON for the cache and every
// consumer reads live and cached results identically.
package run

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/fsim"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// Mode selects which simulator a scenario runs.
type Mode string

// The two simulators (DESIGN.md §2: Pintool-style counting vs gem5-style
// timing).
const (
	Functional Mode = "functional"
	Timing     Mode = "timing"
)

// Scenario canonically describes one simulation. The configuration is
// stored fully resolved (system selection and any sweep mutation already
// applied), so the scenario is pure data: hashable, comparable and
// executable without callbacks.
type Scenario struct {
	Mode      Mode
	Benchmark string
	Config    config.Config
	Seed      uint64
	Refs      int64
	Warmup    int64
	// Cores is the simulated core count; 0 uses the configuration default.
	Cores int
	Scale workload.Scale
	// Trace attaches a stats-sinking tracer (internal/obs) to timing runs,
	// so the outcome's snapshot carries the per-segment latency histograms
	// and request-mix counters. Tracing perturbs no timing, but it does
	// change the recorded statistics, so it is part of the key.
	Trace bool
	// Label is a human-readable tag for progress logs (e.g.
	// "canneal emcc/ch8"); it does not contribute to the key.
	Label string
}

// Key is the scenario's content-addressed identity: the provenance config
// hash of the resolved configuration plus the run framing. Everything that
// determines the outcome is in the key; nothing else is.
func (s *Scenario) Key() string {
	return prov.ScenarioKey(&s.Config, map[string]string{
		"mode":      string(s.Mode),
		"benchmark": s.Benchmark,
		"seed":      fmt.Sprint(s.Seed),
		"refs":      fmt.Sprint(s.Refs),
		"warmup":    fmt.Sprint(s.Warmup),
		"cores":     fmt.Sprint(s.Cores),
		"scale":     fmt.Sprintf("%+v", s.Scale),
		"trace":     fmt.Sprint(s.Trace),
	})
}

// Outcome is what a scenario produces: the stats snapshot and, for timing
// runs, the tsim result summary. Both parts are plain data and round-trip
// through JSON unchanged — the cache and all consumers rely on that.
type Outcome struct {
	Stats  stats.Snapshot `json:"stats"`
	Timing *tsim.Result   `json:"timing,omitempty"`
}

// NewFunctional builds (but does not run) the scenario's functional
// simulator instance.
func (s *Scenario) NewFunctional() (*fsim.Sim, error) {
	if s.Mode != Functional {
		return nil, fmt.Errorf("run: NewFunctional on %s scenario", s.Mode)
	}
	cfg := s.Config
	return fsim.New(&cfg, fsim.Options{
		Benchmark: s.Benchmark, Seed: s.Seed, Refs: s.Refs, Warmup: s.Warmup,
		Cores: s.Cores, Scale: s.Scale,
	})
}

// NewTiming builds (but does not run) the scenario's timing simulator
// instance, for callers that need to attach instrumentation (cmd/trace)
// before running.
func (s *Scenario) NewTiming() (*tsim.Sim, error) {
	if s.Mode != Timing {
		return nil, fmt.Errorf("run: NewTiming on %s scenario", s.Mode)
	}
	cfg := s.Config
	if s.Trace {
		// Declare the tracer Execute will attach, so a Domains > 0
		// scenario fails config validation here rather than at attach.
		cfg.Tracing = true
	}
	return tsim.New(&cfg, tsim.Options{
		Benchmark: s.Benchmark, Seed: s.Seed, Refs: s.Refs, Warmup: s.Warmup,
		Cores: s.Cores, Scale: s.Scale,
	})
}

// Execute runs the scenario to completion and returns its outcome. Each
// invocation owns its simulator and stats.Set outright, so concurrent
// Execute calls on distinct Scenario values never share state.
func (s *Scenario) Execute() (*Outcome, error) {
	switch s.Mode {
	case Functional:
		f, err := s.NewFunctional()
		if err != nil {
			return nil, err
		}
		f.Run()
		return &Outcome{Stats: f.Stats().Snapshot()}, nil
	case Timing:
		ts, err := s.NewTiming()
		if err != nil {
			return nil, err
		}
		if s.Trace {
			// Sink the tracer into the run's own stats set so the outcome
			// snapshot carries the obs histograms alongside everything else.
			if err := ts.SetTracer(obs.New(obs.Options{Stats: ts.Stats()})); err != nil {
				return nil, err
			}
		}
		res := ts.Run()
		return &Outcome{Stats: ts.Stats().Snapshot(), Timing: &res}, nil
	}
	return nil, fmt.Errorf("run: unknown mode %q", s.Mode)
}

// Plan is an ordered, key-deduplicated scenario set. The zero value is not
// usable; call NewPlan.
type Plan struct {
	order []*Scenario
	index map[string]*Scenario
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{index: make(map[string]*Scenario)} }

// Add declares a scenario, deduplicating by key, and returns the key. The
// first declaration wins; insertion order is the serial execution order.
func (p *Plan) Add(s Scenario) string {
	key := s.Key()
	if _, ok := p.index[key]; !ok {
		sc := s
		p.index[key] = &sc
		p.order = append(p.order, &sc)
	}
	return key
}

// Len reports the number of unique scenarios planned.
func (p *Plan) Len() int { return len(p.order) }

// Scenarios lists the unique scenarios in declaration order.
func (p *Plan) Scenarios() []*Scenario { return p.order }
