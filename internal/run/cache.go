package run

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/prov"
)

// cacheSchema versions the on-disk envelope; bumping it orphans (never
// corrupts) old entries. Schema 2: snapshots may carry histogram cells
// (stats.Snapshot.Hists), and traced scenarios key on the Trace flag.
const cacheSchema = 2

// Cache is a persistent scenario-outcome store: one JSON file per outcome
// under <dir>/<code-identity>/<scenario-key>.json. The scenario key covers
// everything that determines the outcome (resolved config, mode,
// benchmark, seed, budgets, scale); the code-identity subdirectory pins
// the source revision, so a rebuilt binary never reads results a different
// simulator produced. Unreadable or mismatched entries are cache misses,
// never errors.
type Cache struct {
	dir string
}

// envelope is the on-disk record.
type envelope struct {
	Schema  int      `json:"schema"`
	Outcome *Outcome `json:"outcome"`
}

// OpenCache opens (creating as needed) the cache rooted at dir, scoped to
// the running binary's code identity.
func OpenCache(dir string) (*Cache, error) {
	sub := filepath.Join(dir, prov.CodeIdentity())
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("run: open cache: %w", err)
	}
	return &Cache{dir: sub}, nil
}

// Dir reports the resolved (code-identity-scoped) cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the outcome stored under key, reporting ok=false on any miss:
// absent, unreadable, or written by a different schema.
func (c *Cache) Get(key string) (*Outcome, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Schema != cacheSchema || env.Outcome == nil {
		return nil, false
	}
	return env.Outcome, true
}

// Put stores the outcome under key. The write goes through a temporary
// file and an atomic rename, so concurrent writers and readers (parallel
// workers, a second report process) never observe a torn entry.
func (c *Cache) Put(key string, o *Outcome) error {
	b, err := json.MarshalIndent(envelope{Schema: cacheSchema, Outcome: o}, "", "  ")
	if err != nil {
		return fmt.Errorf("run: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("run: cache put: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("run: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("run: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("run: cache put: %w", err)
	}
	return nil
}
