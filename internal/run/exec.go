package run

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Options tunes plan execution.
type Options struct {
	// Workers is the worker-pool width. 0 means GOMAXPROCS; 1 executes
	// serially in plan declaration order (the historical lazy order).
	Workers int
	// Cache, when non-nil, serves outcomes whose key+code-identity file
	// exists and persists every outcome executed here.
	Cache *Cache
	// Log, when non-nil, receives one progress line per scenario. Writes
	// are serialised under a mutex, so any io.Writer is safe.
	Log io.Writer
}

// Report summarises one Execute call.
type Report struct {
	// Executed counts simulations actually run.
	Executed int
	// Cached counts outcomes served from the persistent cache.
	Cached int
}

// Resolve returns the scenario's outcome: served from the cache when
// possible, executed (and cached) otherwise. The bool reports whether a
// simulation actually ran.
func Resolve(s *Scenario, c *Cache) (*Outcome, bool, error) {
	key := s.Key()
	if c != nil {
		if o, ok := c.Get(key); ok {
			return o, false, nil
		}
	}
	o, err := s.Execute()
	if err != nil {
		return nil, true, fmt.Errorf("run: %s %s: %w", s.Mode, s.Label, err)
	}
	if c != nil {
		if err := c.Put(key, o); err != nil {
			return nil, true, err
		}
	}
	return o, true, nil
}

// Execute runs every scenario of the plan and returns the outcomes keyed
// by scenario key. Scenarios are dispatched to the pool in declaration
// order and each owns its simulator and stats.Set, so the outcome map —
// and every table built from it — is identical at any worker count; only
// wall-clock time and progress-line interleaving change. The first error
// aborts dispatch of unstarted scenarios and is returned after in-flight
// ones drain.
func Execute(p *Plan, opt Options) (map[string]*Outcome, Report, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scenarios := p.Scenarios()
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	var (
		mu    sync.Mutex // guards rep, firstErr and opt.Log
		rep   Report
		first error
	)
	logf := func(format string, args ...interface{}) {
		if opt.Log == nil {
			return
		}
		fmt.Fprintf(opt.Log, format+"\n", args...)
	}

	outs := make([]*Outcome, len(scenarios))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s := scenarios[i]
				key := s.Key()
				var o *Outcome
				if opt.Cache != nil {
					if c, ok := opt.Cache.Get(key); ok {
						o = c
						mu.Lock()
						rep.Cached++
						logf("%-10s %-32s (cached)", s.Mode, s.Label)
						mu.Unlock()
					}
				}
				if o == nil {
					mu.Lock()
					rep.Executed++
					logf("%-10s %-32s (%s refs)", s.Mode, s.Label, refsLabel(s.Refs))
					mu.Unlock()
					var err error
					o, err = s.Execute()
					if err == nil && opt.Cache != nil {
						err = opt.Cache.Put(key, o)
					}
					if err != nil {
						mu.Lock()
						if first == nil {
							first = fmt.Errorf("run: %s %s: %w", s.Mode, s.Label, err)
						}
						mu.Unlock()
						continue
					}
				}
				outs[i] = o
			}
		}()
	}
dispatch:
	for i := range scenarios {
		mu.Lock()
		failed := first != nil
		mu.Unlock()
		if failed {
			break dispatch
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if first != nil {
		return nil, rep, first
	}

	out := make(map[string]*Outcome, len(scenarios))
	for i, s := range scenarios {
		out[s.Key()] = outs[i]
	}
	return out, rep, nil
}

// refsLabel renders a reference budget compactly (2.0M, 250k, 900).
func refsLabel(refs int64) string {
	switch {
	case refs >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(refs)/1e6)
	case refs >= 1_000:
		return fmt.Sprintf("%dk", refs/1_000)
	}
	return fmt.Sprint(refs)
}
