package run

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// miniature returns a scenario cheap enough for unit tests.
func miniature(mode Mode, bench string, mutate func(*config.Config)) Scenario {
	cfg := config.Default()
	cfg.Counter = config.CtrMorphable
	if mutate != nil {
		mutate(&cfg)
	}
	return Scenario{
		Mode: mode, Benchmark: bench, Config: cfg,
		Seed: 1, Refs: 20_000, Warmup: 10_000,
		Scale: workload.TestScale(), Label: bench,
	}
}

func TestScenarioKeyIgnoresLabel(t *testing.T) {
	a := miniature(Functional, "canneal", nil)
	b := a
	b.Label = "something else entirely"
	if a.Key() != b.Key() {
		t.Fatal("label leaked into the scenario key")
	}
	c := a
	c.Seed = 2
	if a.Key() == c.Key() {
		t.Fatal("seed change did not change the key")
	}
	d := miniature(Functional, "canneal", func(cfg *config.Config) { cfg.Channels = 8 })
	if a.Key() == d.Key() {
		t.Fatal("config mutation did not change the key")
	}
	e := a
	e.Mode = Timing
	if a.Key() == e.Key() {
		t.Fatal("mode change did not change the key")
	}
	f := a
	f.Trace = true
	if a.Key() == f.Key() {
		t.Fatal("trace flag did not change the key")
	}
}

func TestPlanDeduplicates(t *testing.T) {
	p := NewPlan()
	k1 := p.Add(miniature(Functional, "canneal", nil))
	k2 := p.Add(miniature(Functional, "canneal", nil))
	k3 := p.Add(miniature(Functional, "mcf", nil))
	if k1 != k2 {
		t.Fatal("identical scenarios got different keys")
	}
	if k1 == k3 {
		t.Fatal("distinct scenarios share a key")
	}
	if p.Len() != 2 {
		t.Fatalf("plan size = %d, want 2", p.Len())
	}
	if got := p.Scenarios(); got[0].Key() != k1 || got[1].Key() != k3 {
		t.Fatal("declaration order lost")
	}
}

// TestExecuteParallelMatchesSerial pins the core determinism claim: the
// outcome map is identical at any worker count.
func TestExecuteParallelMatchesSerial(t *testing.T) {
	build := func() *Plan {
		p := NewPlan()
		p.Add(miniature(Functional, "canneal", nil))
		p.Add(miniature(Functional, "mcf", nil))
		p.Add(miniature(Timing, "canneal", nil))
		p.Add(miniature(Timing, "canneal", func(c *config.Config) { c.Channels = 2 }))
		return p
	}
	serial, repS, err := Execute(build(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, repP, err := Execute(build(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if repS.Executed != 4 || repP.Executed != 4 {
		t.Fatalf("executed %d / %d, want 4 / 4", repS.Executed, repP.Executed)
	}
	if len(serial) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial), len(par))
	}
	for k, a := range serial {
		b := par[k]
		if b == nil {
			t.Fatalf("parallel run missing outcome %s", k)
		}
		aj, err := a.Stats.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.Stats.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Errorf("outcome %s stats differ between serial and parallel", k)
		}
		if !reflect.DeepEqual(a.Timing, b.Timing) {
			t.Errorf("outcome %s timing differs between serial and parallel", k)
		}
	}
}

func TestExecuteServesFromCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Plan {
		p := NewPlan()
		p.Add(miniature(Functional, "canneal", nil))
		p.Add(miniature(Timing, "mcf", nil))
		return p
	}
	first, rep, err := Execute(build(), Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 2 || rep.Cached != 0 {
		t.Fatalf("first run: executed=%d cached=%d, want 2/0", rep.Executed, rep.Cached)
	}
	var log bytes.Buffer
	second, rep, err := Execute(build(), Options{Workers: 2, Cache: cache, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 || rep.Cached != 2 {
		t.Fatalf("second run: executed=%d cached=%d, want 0/2", rep.Executed, rep.Cached)
	}
	if !strings.Contains(log.String(), "(cached)") {
		t.Fatalf("cache hits not logged: %q", log.String())
	}
	for k, a := range first {
		b := second[k]
		if b == nil {
			t.Fatalf("cached run missing outcome %s", k)
		}
		aj, _ := a.Stats.StableJSON()
		bj, _ := b.Stats.StableJSON()
		if !bytes.Equal(aj, bj) {
			t.Errorf("outcome %s changed across the cache round trip", k)
		}
		if (a.Timing == nil) != (b.Timing == nil) {
			t.Fatalf("outcome %s timing presence changed", k)
		}
		if a.Timing != nil && !reflect.DeepEqual(*a.Timing, *b.Timing) {
			t.Errorf("outcome %s timing changed across the cache round trip:\n%+v\nvs\n%+v", k, *a.Timing, *b.Timing)
		}
	}
}

func TestCacheRejectsCorruptAndForeignEntries(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := miniature(Functional, "canneal", nil)
	key := s.Key()
	// Corrupt JSON is a miss.
	if err := os.WriteFile(filepath.Join(cache.Dir(), key+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	// Wrong schema is a miss.
	if err := os.WriteFile(filepath.Join(cache.Dir(), key+".json"), []byte(`{"schema":99,"outcome":{"stats":{"counters":{},"accumulators":{}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("foreign-schema entry served")
	}
	// A real Put repairs it.
	o, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(key, o); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); !ok {
		t.Fatal("valid entry missed")
	}
}

func TestResolveExecutesThenHits(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := miniature(Timing, "canneal", nil)
	_, executed, err := Resolve(&s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("first Resolve did not execute")
	}
	o, executed, err := Resolve(&s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if executed {
		t.Fatal("second Resolve re-executed")
	}
	if o.Timing == nil || o.Timing.SimulatedTime <= 0 {
		t.Fatalf("cached timing outcome degenerate: %+v", o.Timing)
	}
}

func TestExecuteSurfacesErrors(t *testing.T) {
	p := NewPlan()
	s := miniature(Functional, "no-such-benchmark", nil)
	p.Add(s)
	if _, _, err := Execute(p, Options{Workers: 2}); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
	bad := miniature(Timing, "canneal", func(c *config.Config) { c.MemoryBytes = -1 })
	p2 := NewPlan()
	p2.Add(bad)
	if _, _, err := Execute(p2, Options{Workers: 1}); err == nil {
		t.Fatal("invalid config did not error")
	}
}

// TestTracedScenarioCarriesHistograms pins the Trace plumbing end to end: a
// traced timing scenario's outcome snapshot holds the obs latency
// histograms, they survive the cache round trip, and the untraced twin
// (a distinct key) carries none.
func TestTracedScenarioCarriesHistograms(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := miniature(Timing, "canneal", nil)
	s.Trace = true
	o, executed, err := Resolve(&s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("first Resolve did not execute")
	}
	h := o.Stats.Hist(stats.ObsReqLatencyHist)
	if h.Count == 0 {
		t.Fatal("traced outcome has an empty request-latency histogram")
	}
	cached, executed, err := Resolve(&s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if executed {
		t.Fatal("second Resolve re-executed")
	}
	ch := cached.Stats.Hist(stats.ObsReqLatencyHist)
	if ch.Count != h.Count || ch.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatalf("histogram changed across the cache round trip: %+v vs %+v", ch, h)
	}
	plain := miniature(Timing, "canneal", nil)
	po, err := plain.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if n := po.Stats.Hist(stats.ObsReqLatencyHist).Count; n != 0 {
		t.Fatalf("untraced outcome carries %d request-latency samples", n)
	}
}
