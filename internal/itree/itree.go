// Package itree implements the integrity tree protecting counter blocks
// (Sec. II "Counter Blocks"). Each counter or tree block stored in DRAM
// carries its own MAC, computed with the *parent's* counter for that block;
// parents form a tree whose root counter never leaves the chip. The tree is
// functional: Verify really recomputes MACs, and tampering with either a
// stored MAC or counter state is detected.
package itree

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/crypto"
	"repro/internal/ctr"
	"repro/internal/inv"
)

// Tree ties an address space, a counter organisation and a crypto engine
// into a verifiable metadata hierarchy.
type Tree struct {
	space *addr.Space
	org   ctr.Organisation
	ser   ctr.Serializer
	eng   *crypto.Engine

	// macs holds the stored ("in DRAM") MAC of each metadata block that
	// has ever been written back. Blocks never written back verify
	// against the all-zero initial state.
	macs map[uint64]uint64

	// rec is the owning run's invariant recorder (never nil; defaults to
	// the process-wide recorder until SetRecorder rebinds it).
	rec *inv.Recorder
}

// New builds a tree. The organisation must implement ctr.Serializer (all
// shipped organisations do).
func New(space *addr.Space, org ctr.Organisation, eng *crypto.Engine) *Tree {
	ser, ok := org.(ctr.Serializer)
	if !ok {
		panic(fmt.Sprintf("itree: organisation %s does not serialize", org.Name()))
	}
	return &Tree{space: space, org: org, ser: ser, eng: eng, macs: make(map[uint64]uint64), rec: inv.Default()}
}

// SetRecorder binds the owning run's invariant recorder (nil rebinds the
// default). Call at construction time, before any traffic.
func (t *Tree) SetRecorder(r *inv.Recorder) { t.rec = inv.Or(r) }

// Space exposes the address map (for geometry queries).
func (t *Tree) Space() *addr.Space { return t.space }

// Org exposes the counter organisation.
func (t *Tree) Org() ctr.Organisation { return t.org }

// childSlot locates a block inside its parent: parent block index and the
// child offset within it. ok is false for the root.
func (t *Tree) childSlot(block uint64) (parent uint64, off int, ok bool) {
	parent, ok = t.space.ParentOf(block)
	if !ok {
		return 0, 0, false
	}
	first, _ := t.space.CoveredRange(parent)
	return parent, int(block - first), true
}

// rootKey is the synthetic counter-block index holding the tree root's
// on-chip counter. It can never collide with a real block index.
const rootKey = ^uint64(0)

// CounterOf reports the current write counter protecting `block` (data or
// metadata). The root returns its on-chip counter, which is tracked under a
// reserved key so it cannot collide with the counters the root block itself
// stores for its children.
func (t *Tree) CounterOf(block uint64) uint64 {
	parent, off, ok := t.childSlot(block)
	if !ok {
		return t.org.Counter(rootKey, 0)
	}
	return t.org.Counter(parent, off)
}

// IncrementCounterOf advances the write counter protecting `block` and
// returns any overflow (page re-encryption) consequence. For the root the
// on-chip counter advances overflow-free.
func (t *Tree) IncrementCounterOf(block uint64) ctr.Overflow {
	check := t.rec.On()
	var before uint64
	if check {
		before = t.CounterOf(block)
	}
	var ov ctr.Overflow
	parent, off, ok := t.childSlot(block)
	if !ok {
		ov = t.org.Increment(rootKey, 0, t.space.Level(block)+1)
	} else {
		ov = t.org.Increment(parent, off, t.space.Level(parent))
	}
	// Freshness rests on write counters strictly increasing — a counter
	// that repeats a value reopens the replay window, so overflow/rebase
	// handling must never move one backwards.
	if check {
		if after := t.CounterOf(block); after <= before {
			t.rec.Failf("itree", "counter of block %#x did not advance: %#x -> %#x (%s)", block, before, after, t.org.Name())
		}
	}
	return ov
}

// WriteBack simulates writing metadata block `block` to DRAM: its counter
// (held by the parent) advances, and a fresh MAC over its serialized
// content is stored. It returns the overflow consequence of the counter
// increment, which the memory controller turns into re-encryption traffic.
func (t *Tree) WriteBack(block uint64) ctr.Overflow {
	if t.space.Level(block) < 0 {
		panic("itree: WriteBack is for metadata blocks; data blocks go through the secure-memory store")
	}
	ov := t.IncrementCounterOf(block)
	t.macs[block] = t.macOf(block)
	return ov
}

// WriteBackPath writes back `block` and every ancestor up to the root, in
// leaf-to-root order, returning all overflow consequences. This is the
// write-through discipline the functional secure-memory store uses: after
// it, every stored MAC is consistent with current counter state, so Verify
// reflects only genuine tampering.
func (t *Tree) WriteBackPath(block uint64) []ctr.Overflow {
	var ovs []ctr.Overflow
	cur := block
	for {
		if ov := t.WriteBack(cur); ov.Happened {
			ovs = append(ovs, ov)
		}
		p, more := t.space.ParentOf(cur)
		if !more {
			return ovs
		}
		cur = p
	}
}

// Verify checks metadata block `block` against its stored MAC under the
// current parent counter. Blocks never written back verify if their state
// is still the initial zero state.
func (t *Tree) Verify(block uint64) bool {
	stored, ok := t.macs[block]
	if !ok {
		// Initial state: valid only while the content is untouched,
		// i.e. its MAC equals the MAC of the zero image at counter 0.
		return t.macOf(block) == t.zeroMAC(block)
	}
	return stored == t.macOf(block)
}

// VerifyPath verifies `block` and every ancestor up to the root, returning
// the first failing block, or ok=true when the whole path validates.
func (t *Tree) VerifyPath(block uint64) (bad uint64, ok bool) {
	cur := block
	for {
		if !t.Verify(cur) {
			return cur, false
		}
		p, more := t.space.ParentOf(cur)
		if !more {
			return 0, true
		}
		cur = p
	}
}

// TamperMAC corrupts the stored MAC of a metadata block (attack model:
// flipping bits on the DRAM bus / in DRAM).
func (t *Tree) TamperMAC(block uint64) {
	t.macs[block] = t.macOf(block) ^ 0x1
}

func (t *Tree) macOf(block uint64) uint64 {
	var img [ctr.SerializedBytes]byte
	t.ser.Serialize(block, &img)
	return t.eng.MAC(img[:], addr.AddrOf(block), t.CounterOf(block))
}

func (t *Tree) zeroMAC(block uint64) uint64 {
	var img [ctr.SerializedBytes]byte
	return t.eng.MAC(img[:], addr.AddrOf(block), 0)
}
