package itree

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ctr"
)

func testTree(t *testing.T) (*Tree, *addr.Space) {
	t.Helper()
	org := ctr.New(config.CtrMorphable)
	space := addr.NewSpace(4<<20, org.Coverage())
	eng := crypto.NewEngine([]byte("itree test key!!"))
	return New(space, org, eng), space
}

func TestFreshTreeVerifies(t *testing.T) {
	tr, space := testTree(t)
	ctrBlk := space.DataBlocks() // first counter block
	if !tr.Verify(ctrBlk) {
		t.Fatal("untouched metadata block fails verification")
	}
	if bad, ok := tr.VerifyPath(ctrBlk); !ok {
		t.Fatalf("fresh path fails at %#x", bad)
	}
}

func TestWriteBackKeepsVerifiable(t *testing.T) {
	tr, space := testTree(t)
	dataBlk := uint64(5)
	parent, _ := space.ParentOf(dataBlk)
	tr.IncrementCounterOf(dataBlk)
	// Content changed but not written back: the stored (initial) MAC no
	// longer matches.
	if tr.Verify(parent) {
		t.Fatal("modified-but-unwritten block verified against stale MAC")
	}
	tr.WriteBackPath(parent)
	if bad, ok := tr.VerifyPath(parent); !ok {
		t.Fatalf("path fails at %#x after WriteBackPath", bad)
	}
}

func TestTamperMACDetected(t *testing.T) {
	tr, space := testTree(t)
	parent, _ := space.ParentOf(0)
	tr.IncrementCounterOf(0)
	tr.WriteBackPath(parent)
	tr.TamperMAC(parent)
	if tr.Verify(parent) {
		t.Fatal("tampered MAC verified")
	}
	if bad, ok := tr.VerifyPath(parent); ok || bad != parent {
		t.Fatalf("VerifyPath returned (%#x, %v), want (%#x, false)", bad, ok, parent)
	}
}

func TestCounterTamperDetectedViaParent(t *testing.T) {
	tr, space := testTree(t)
	parent, _ := space.ParentOf(0)
	tr.IncrementCounterOf(0)
	tr.WriteBackPath(parent)
	// Attacker replays an old counter state: bump the counter without
	// re-MACing (simulates DRAM content change).
	tr.IncrementCounterOf(0)
	if tr.Verify(parent) {
		t.Fatal("stale MAC accepted modified counter block")
	}
}

func TestRootCounterAdvances(t *testing.T) {
	tr, space := testTree(t)
	// The root is the last block in the space.
	root := space.TotalBlocks() - 1
	if _, ok := space.ParentOf(root); ok {
		t.Fatal("root has a parent?")
	}
	before := tr.CounterOf(root)
	tr.WriteBack(root)
	if tr.CounterOf(root) <= before {
		t.Fatal("root counter did not advance")
	}
	// The root's own counter must not collide with its children's
	// counters (regression: rootKey separation).
	first, _ := space.CoveredRange(root)
	if tr.CounterOf(first) != 0 {
		t.Fatal("root counter collided with child counter state")
	}
}

func TestWriteBackPathReportsOverflows(t *testing.T) {
	org := ctr.New(config.CtrSC64)
	space := addr.NewSpace(1<<20, org.Coverage())
	eng := crypto.NewEngine([]byte("itree test key!!"))
	tr := New(space, org, eng)
	parent, _ := space.ParentOf(0)
	// 7-bit minors: flood one leaf counter with writebacks until its
	// own counter (held by the parent's parent) overflows.
	sawOverflow := false
	for i := 0; i < 200; i++ {
		if ovs := tr.WriteBackPath(parent); len(ovs) > 0 {
			sawOverflow = true
			break
		}
	}
	if !sawOverflow {
		t.Fatal("200 writebacks of one counter block never overflowed a 7-bit minor")
	}
}

func TestWriteBackDataBlockPanics(t *testing.T) {
	tr, _ := testTree(t)
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBack of a data block did not panic")
		}
	}()
	tr.WriteBack(0)
}
