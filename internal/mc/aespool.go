// Package mc implements the memory-controller side of the secure-memory
// engine: AES unit pools (latency + bandwidth servers), the split-counter
// overflow engine with the Sec. V throttling rules, and the metadata home
// that owns counter state, the MC's private counter cache, and counter
// verification/invalidation.
package mc

import (
	"repro/internal/inv"
	"repro/internal/sim"
)

// AESPool models a group of AES units as a bandwidth-limited server: ops
// issue at a fixed rate (the pool's aggregate bandwidth) and each op
// completes a fixed latency after it issues (Sec. V: 14 ns latency,
// 2.6 G ops/s peak for the whole processor; EMCC moves a fraction to L2s).
// Clock is the scheduling context a pool reads time from: the serial
// *sim.Engine or, under the sharded engine, the *sim.Domain whose tile the
// pool lives on (EMCC's L2 pools are clocked by their core domains).
type Clock interface {
	Now() sim.Time
	Recorder() *inv.Recorder
}

type AESPool struct {
	eng      Clock
	rec      *inv.Recorder
	interval sim.Time // time between op issues = 1/bandwidth
	latency  sim.Time
	nextFree sim.Time // next issue slot for latency-critical (read) ops
	// lowNextFree is the issue horizon for background (write/overflow)
	// ops: encryption for writebacks is never on a read's critical path,
	// so reads preempt it rather than queueing behind write-drain bursts.
	lowNextFree sim.Time

	// Reserved counts total ops ever reserved (stats).
	Reserved int64
}

// NewAESPool builds a pool with the given ops/second bandwidth.
func NewAESPool(eng Clock, opsPerSec float64, latency sim.Time) *AESPool {
	if opsPerSec <= 0 {
		panic("mc: AES pool bandwidth must be positive")
	}
	return &AESPool{
		eng:      eng,
		rec:      eng.Recorder(),
		interval: sim.Time(float64(sim.Second)/opsPerSec + 0.5),
		latency:  latency,
	}
}

// QueueDelay reports how long a newly arriving op would wait before
// issuing — the signal EMCC's adaptive-offload decision uses (Sec. IV-D).
func (p *AESPool) QueueDelay() sim.Time {
	d := p.nextFree - p.eng.Now()
	if d < 0 {
		return 0
	}
	return d
}

// Reserve books n latency-critical AES operations (decryption and
// verification of reads) starting no earlier than `at` and reports when the
// last result is available. Read ops preempt background encryption work.
func (p *AESPool) Reserve(n int, at sim.Time) sim.Time {
	if n <= 0 {
		return at
	}
	start := at
	if now := p.eng.Now(); start < now {
		start = now
	}
	if start < p.nextFree {
		start = p.nextFree
	}
	last := start + sim.Time(n-1)*p.interval
	if p.rec.On() && last+p.interval < p.nextFree {
		p.rec.Failf("mc", "aes pool critical horizon moved backwards: %d ps -> %d ps", p.nextFree, last+p.interval)
	}
	p.nextFree = last + p.interval
	// Preempted background work resumes after the critical ops.
	if p.lowNextFree < p.nextFree {
		p.lowNextFree = p.nextFree
	}
	p.Reserved += int64(n)
	if p.rec.On() {
		p.checkUtilisation()
	}
	return last + p.latency
}

// ReserveLow books n background AES operations (writeback encryption,
// overflow re-encryption). They consume bandwidth after every pending
// critical op and never delay subsequent Reserve calls.
func (p *AESPool) ReserveLow(n int, at sim.Time) sim.Time {
	if n <= 0 {
		return at
	}
	start := at
	if now := p.eng.Now(); start < now {
		start = now
	}
	if start < p.lowNextFree {
		start = p.lowNextFree
	}
	last := start + sim.Time(n-1)*p.interval
	if p.rec.On() && last+p.interval < p.lowNextFree {
		p.rec.Failf("mc", "aes pool background horizon moved backwards: %d ps -> %d ps", p.lowNextFree, last+p.interval)
	}
	p.lowNextFree = last + p.interval
	p.Reserved += int64(n)
	if p.rec.On() {
		p.checkUtilisation()
	}
	return last + p.latency
}

// Latency reports the per-op latency (used by timeline tooling).
func (p *AESPool) Latency() sim.Time { return p.latency }

// Horizon reports the time by which every reserved op will have issued:
// the later of the critical and background issue horizons.
func (p *AESPool) Horizon() sim.Time {
	if p.lowNextFree > p.nextFree {
		return p.lowNextFree
	}
	return p.nextFree
}

// Utilisation reports the fraction of the pool's issue bandwidth consumed
// over [0, Horizon]. A bandwidth server can never exceed 1.0: every
// reservation of n ops advances a horizon by at least n*interval, so
// Reserved*interval ≤ Horizon always — the verification harness asserts it.
func (p *AESPool) Utilisation() float64 {
	h := p.Horizon()
	if h <= 0 {
		return 0
	}
	return float64(p.Reserved) * float64(p.interval) / float64(h)
}

// checkUtilisation asserts the bandwidth bound in exact integer arithmetic.
func (p *AESPool) checkUtilisation() {
	rec := p.rec
	if !rec.On() {
		return
	}
	if p.Reserved*int64(p.interval) > int64(p.Horizon()) {
		rec.Failf("mc", "aes pool over-committed: %d ops * %d ps/op > horizon %d ps (utilisation %.3f)",
			p.Reserved, p.interval, p.Horizon(), p.Utilisation())
	}
}
