package mc

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ctr"
	"repro/internal/inv"
	"repro/internal/itree"
)

// Home is the memory controller's metadata authority, shared by the
// functional (Pintool-style) and timing (gem5-style) simulators. It owns
// the counter organisation, the integrity-tree geometry/state, and the MC's
// private counter/metadata cache (128 KB, 32-way, Table I).
type Home struct {
	Space *addr.Space
	Org   ctr.Organisation
	Tree  *itree.Tree
	Meta  *cache.Cache // MC's private counter cache (counter + tree blocks)
}

// NewHome builds the metadata home for a protected space of dataBytes under
// the configured counter design.
func NewHome(cfg *config.Config, dataBytes int64) *Home {
	org := ctr.New(cfg.Counter)
	space := addr.NewSpace(dataBytes, org.Coverage())
	// The timing layer never calls MAC functions; a fixed key keeps Home
	// deterministic and cheap to build.
	eng := crypto.NewEngine([]byte("emcc-timing-key!"))
	meta := cache.New("mc-ctr", cfg.CtrCacheBytes, cfg.CtrCacheWays)
	// Level-0 counter blocks vastly outnumber tree nodes; capping their
	// share keeps upper tree levels resident so verification walks hit
	// on-chip (real designs dedicate tree-cache capacity for the same
	// reason).
	meta.SetCounterCap(cfg.CtrCacheBytes * 3 / 4)
	return &Home{
		Space: space,
		Org:   org,
		Tree:  itree.New(space, org, eng),
		Meta:  meta,
	}
}

// SetRecorder binds the owning run's invariant recorder to the home's
// metadata cache and integrity tree (nil rebinds the default). Call at
// construction time, before any traffic.
func (h *Home) SetRecorder(r *inv.Recorder) {
	h.Meta.SetRecorder(r)
	h.Tree.SetRecorder(r)
}

// CounterBlockOf reports the counter block protecting a data block.
func (h *Home) CounterBlockOf(dataBlock uint64) uint64 {
	return h.Space.CounterBlockOf(dataBlock)
}

// LookupMeta probes the MC's metadata cache (updating LRU).
func (h *Home) LookupMeta(block uint64) bool { return h.Meta.Lookup(block) }

// InsertMeta fills a metadata block into the MC's cache, returning the
// displaced victim if any. Dirty victims must be spilled by the caller
// (to LLC when counters are cached there, else to DRAM).
func (h *Home) InsertMeta(block uint64, dirty bool) (cache.Victim, bool) {
	return h.Meta.Insert(block, dirty, h.Space.Kind(block))
}

// MarkMetaDirty marks a resident metadata block dirty; reports residency.
func (h *Home) MarkMetaDirty(block uint64) bool { return h.Meta.MarkDirty(block) }

// IncrementCounterOf advances the write counter protecting `block` (data or
// metadata), returning the overflow consequence. The caller is responsible
// for having the owning counter block on-chip first.
func (h *Home) IncrementCounterOf(block uint64) ctr.Overflow {
	return h.Tree.IncrementCounterOf(block)
}

// CounterOf reports the current counter protecting `block`.
func (h *Home) CounterOf(block uint64) uint64 { return h.Tree.CounterOf(block) }

// MetaFetchChain lists the metadata blocks that must be obtained to verify
// a DRAM-fetched block: starting at `block`'s parent, ascending until a
// block already resident in the MC's metadata cache (exclusive) or the
// root. An empty chain means the parent is already cached (common case).
// The chain is ordered nearest-ancestor first.
func (h *Home) MetaFetchChain(block uint64) []uint64 {
	var chain []uint64
	cur := block
	for {
		p, ok := h.Space.ParentOf(cur)
		if !ok {
			return chain // reached the root: it is always on-chip
		}
		if h.Meta.Peek(p) {
			return chain
		}
		chain = append(chain, p)
		cur = p
	}
}
