package mc

import (
	"repro/internal/inv"
	"repro/internal/sim"
	"repro/internal/stats"
)

// IssueFunc injects one 64 B overflow request toward DRAM. It reports false
// when the target queue is full (the engine retries later). `done` fires
// when the access completes, with the completion time — matching
// dram.Request.Done so implementations can hand the callback straight to
// the device without an adapter closure.
type IssueFunc func(block uint64, write bool, level int, done func(at sim.Time)) bool

// OverflowEngine paces split-counter overflow re-encryption per Sec. V: at
// most `maxLive` overflows proceed concurrently (a writeback that would
// start a third blocks the MC's intake), and the background work never
// holds more than `maxSlots` read/write-queue slots at a time. Each block
// of an overflow is read, re-encrypted, and written back; the slot taken by
// the read is held until the matching write completes.
type OverflowEngine struct {
	eng      *sim.Engine
	st       *stats.Set
	rec      *inv.Recorder
	issue    IssueFunc
	maxLive  int
	maxSlots int

	live     []*overflowJob
	waiting  []*overflowJob
	inFlight int
}

type overflowJob struct {
	next  uint64 // next block to read
	end   uint64
	level int
	done  uint64 // blocks fully rewritten
	total uint64
}

// NewOverflowEngine builds the engine.
func NewOverflowEngine(eng *sim.Engine, st *stats.Set, maxLive, maxSlots int, issue IssueFunc) *OverflowEngine {
	if maxLive <= 0 || maxSlots <= 0 {
		panic("mc: overflow engine limits must be positive")
	}
	return &OverflowEngine{eng: eng, st: st, rec: eng.Recorder(), issue: issue, maxLive: maxLive, maxSlots: maxSlots}
}

// Start begins re-encryption of n blocks at `first` for an overflow at the
// given metadata level. Beyond maxLive concurrent jobs the work queues and
// Blocked() turns true until a live job retires.
func (e *OverflowEngine) Start(first, n uint64, level int) {
	job := &overflowJob{next: first, end: first + n, level: level, total: n}
	e.st.Inc(stats.OverflowEvents)
	e.st.Add(stats.OverflowBlocks, int64(n))
	if len(e.live) >= e.maxLive {
		e.waiting = append(e.waiting, job)
		e.st.Inc(stats.OverflowBlockedEvents)
		return
	}
	e.live = append(e.live, job)
	e.Pump()
}

// Blocked reports whether an overflow beyond maxLive is pending; the MC
// rejects incoming LLC requests while true (Sec. V).
func (e *OverflowEngine) Blocked() bool { return len(e.waiting) > 0 }

// Idle reports whether no overflow work remains (used by drain logic).
func (e *OverflowEngine) Idle() bool {
	return len(e.live) == 0 && len(e.waiting) == 0 && e.inFlight == 0
}

// Pump issues overflow reads while slot budget remains.
func (e *OverflowEngine) Pump() {
	for e.inFlight < e.maxSlots {
		job := e.nextJob()
		if job == nil {
			return
		}
		blk := job.next
		if !e.issue(blk, false, job.level, func(sim.Time) { e.readDone(job, blk) }) {
			// Prebound retry: the pump re-arms itself without building a
			// method-value closure each time the queues run hot.
			e.eng.AfterCall(sim.NS(100), overflowPumpCB, e)
			return
		}
		job.next++
		e.inFlight++
	}
	if rec := e.rec; rec.On() {
		if e.inFlight > e.maxSlots {
			rec.Failf("mc", "overflow engine holds %d queue slots, cap %d", e.inFlight, e.maxSlots)
		}
		if len(e.live) > e.maxLive {
			rec.Failf("mc", "overflow engine runs %d concurrent jobs, cap %d", len(e.live), e.maxLive)
		}
	}
}

// readDone chains the write half for a re-encrypted block, keeping the
// read's slot held until the write completes.
func (e *OverflowEngine) readDone(job *overflowJob, blk uint64) {
	if !e.issue(blk, true, job.level, func(sim.Time) { e.writeDone(job) }) {
		e.retry(func() { e.readDone(job, blk) })
		return
	}
}

func (e *OverflowEngine) writeDone(job *overflowJob) {
	e.inFlight--
	job.done++
	if rec := e.rec; rec.On() {
		if e.inFlight < 0 {
			rec.Failf("mc", "overflow engine slot count went negative: %d", e.inFlight)
		}
		if job.done > job.total {
			rec.Failf("mc", "overflow job rewrote %d blocks of %d planned", job.done, job.total)
		}
	}
	if job.done == job.total {
		e.finish(job)
	}
	e.Pump()
}

// finish retires a job and promotes a waiting one, unblocking the MC.
func (e *OverflowEngine) finish(job *overflowJob) {
	for i, j := range e.live {
		if j == job {
			e.live = append(e.live[:i], e.live[i+1:]...)
			break
		}
	}
	if len(e.waiting) > 0 && len(e.live) < e.maxLive {
		e.live = append(e.live, e.waiting[0])
		e.waiting = e.waiting[1:]
	}
}

func (e *OverflowEngine) nextJob() *overflowJob {
	for _, j := range e.live {
		if j.next < j.end {
			return j
		}
	}
	return nil
}

func (e *OverflowEngine) retry(fn func()) {
	e.eng.After(sim.NS(100), fn)
}

// overflowPumpCB is the prebound form of OverflowEngine.Pump.
func overflowPumpCB(x any) { x.(*OverflowEngine).Pump() }
