package mc

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestAESPoolLatencyOnly(t *testing.T) {
	eng := sim.New()
	p := NewAESPool(eng, 1e9, sim.NS(14)) // 1 op/ns
	done := p.Reserve(1, 0)
	if done != sim.NS(14) {
		t.Fatalf("single op done at %v ns, want 14", done.Nanoseconds())
	}
}

func TestAESPoolBandwidthSpacing(t *testing.T) {
	eng := sim.New()
	p := NewAESPool(eng, 1e9, sim.NS(14))
	// 5 ops issue 1 ns apart: last issues at t=4, done at 18.
	done := p.Reserve(5, 0)
	if done != sim.NS(18) {
		t.Fatalf("5 ops done at %v ns, want 18", done.Nanoseconds())
	}
	// The next reservation queues behind all 5.
	if d := p.QueueDelay(); d != sim.NS(5) {
		t.Fatalf("queue delay = %v ns, want 5", d.Nanoseconds())
	}
	done2 := p.Reserve(1, 0)
	if done2 != sim.NS(19) {
		t.Fatalf("queued op done at %v ns, want 19", done2.Nanoseconds())
	}
}

func TestAESPoolLowPriorityNeverDelaysHigh(t *testing.T) {
	eng := sim.New()
	p := NewAESPool(eng, 1e9, sim.NS(14))
	// A large background burst (write drain) ...
	p.ReserveLow(100, 0)
	// ... must not delay a critical read reservation.
	if d := p.QueueDelay(); d != 0 {
		t.Fatalf("high-priority queue delay = %v after low burst, want 0", d)
	}
	done := p.Reserve(1, 0)
	if done != sim.NS(14) {
		t.Fatalf("read op done at %v ns behind write burst, want 14", done.Nanoseconds())
	}
	// But background work queues behind critical work.
	p.Reserve(10, 0)
	lowDone := p.ReserveLow(1, 0)
	if lowDone <= sim.NS(14) {
		t.Fatalf("low op finished at %v ns, should queue behind high ops", lowDone.Nanoseconds())
	}
}

func TestAESPoolRespectsStartTime(t *testing.T) {
	eng := sim.New()
	p := NewAESPool(eng, 1e9, sim.NS(14))
	done := p.Reserve(1, sim.NS(100))
	if done != sim.NS(114) {
		t.Fatalf("op with future start done at %v, want 114", done.Nanoseconds())
	}
}

func TestAESPoolZeroOps(t *testing.T) {
	eng := sim.New()
	p := NewAESPool(eng, 1e9, sim.NS(14))
	if got := p.Reserve(0, sim.NS(5)); got != sim.NS(5) {
		t.Fatalf("zero ops should be free, got %v", got)
	}
}

func TestAESPoolInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	NewAESPool(sim.New(), 0, sim.NS(14))
}

func TestHomeGeometry(t *testing.T) {
	cfg := config.Default()
	h := NewHome(&cfg, 64<<20)
	if h.Space.DataBlocks() != 64<<20/64 {
		t.Fatal("space sized wrong")
	}
	cb := h.CounterBlockOf(0)
	if h.Space.Kind(cb) == 0 { // KindData == 0
		t.Fatal("counter block classified as data")
	}
	// Fresh home: nothing cached, full chain to fetch.
	chain := h.MetaFetchChain(0)
	if len(chain) != h.Space.Levels() {
		t.Fatalf("fresh fetch chain %d levels, want %d", len(chain), h.Space.Levels())
	}
	// Cache the parent: chain shrinks to empty for the counter block.
	h.InsertMeta(cb, false)
	if got := h.MetaFetchChain(0); len(got) != 0 {
		t.Fatalf("chain after caching parent = %v, want empty", got)
	}
}

func TestHomeIncrementAndDirty(t *testing.T) {
	cfg := config.Default()
	h := NewHome(&cfg, 16<<20)
	cb := h.CounterBlockOf(42)
	h.InsertMeta(cb, false)
	before := h.CounterOf(42)
	ov := h.IncrementCounterOf(42)
	if ov.Happened {
		t.Fatal("first increment overflowed")
	}
	if h.CounterOf(42) <= before {
		t.Fatal("counter did not advance")
	}
	if !h.MarkMetaDirty(cb) {
		t.Fatal("counter block not resident")
	}
}

func TestOverflowEnginePacing(t *testing.T) {
	eng := sim.New()
	st := stats.NewSet()
	inFlight, maxInFlight := 0, 0
	completed := 0
	var ovf *OverflowEngine
	issue := func(block uint64, write bool, level int, done func(at sim.Time)) bool {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		eng.After(sim.NS(30), func() {
			inFlight--
			if write {
				completed++
			}
			if done != nil {
				done(eng.Now())
			}
		})
		return true
	}
	ovf = NewOverflowEngine(eng, st, 2, 8, issue)
	eng.At(0, func() { ovf.Start(0, 64, 0) })
	eng.Run()
	if completed != 64 {
		t.Fatalf("re-encrypted %d blocks, want 64", completed)
	}
	if maxInFlight > 8 {
		t.Fatalf("held %d queue slots, cap is 8", maxInFlight)
	}
	if !ovf.Idle() {
		t.Fatal("engine not idle after completion")
	}
	if st.Counter("overflow/blocks") != 64 {
		t.Fatal("overflow stats missing")
	}
}

func TestOverflowEngineBlocksThird(t *testing.T) {
	eng := sim.New()
	st := stats.NewSet()
	issue := func(block uint64, write bool, level int, done func(at sim.Time)) bool {
		eng.After(sim.NS(30), func() {
			if done != nil {
				done(eng.Now())
			}
		})
		return true
	}
	ovf := NewOverflowEngine(eng, st, 2, 8, issue)
	eng.At(0, func() {
		ovf.Start(0, 64, 0)
		ovf.Start(100, 64, 0)
		if ovf.Blocked() {
			t.Error("blocked with only two overflows")
		}
		ovf.Start(200, 64, 0)
		if !ovf.Blocked() {
			t.Error("third overflow did not block the MC")
		}
	})
	eng.Run()
	if ovf.Blocked() || !ovf.Idle() {
		t.Fatal("engine did not drain")
	}
	if st.Counter("overflow/blocked-events") != 1 {
		t.Fatal("blocked event not counted")
	}
}

func TestOverflowEngineRetriesOnFullQueue(t *testing.T) {
	eng := sim.New()
	st := stats.NewSet()
	rejections := 3
	completed := 0
	issue := func(block uint64, write bool, level int, done func(at sim.Time)) bool {
		if rejections > 0 {
			rejections--
			return false
		}
		eng.After(sim.NS(10), func() {
			if write {
				completed++
			}
			if done != nil {
				done(eng.Now())
			}
		})
		return true
	}
	ovf := NewOverflowEngine(eng, st, 2, 8, issue)
	eng.At(0, func() { ovf.Start(0, 8, 0) })
	eng.Run()
	if completed != 8 {
		t.Fatalf("completed %d blocks despite retries, want 8", completed)
	}
	_ = ovf
}

func TestMetaFetchChainMultiLevel(t *testing.T) {
	cfg := config.Default()
	// Large space: several tree levels (morphable coverage 128:
	// 1 GiB data -> 131072 counters -> 1024 L1 -> 8 L2 -> 1 root).
	h := NewHome(&cfg, 1<<30)
	if h.Space.Levels() < 4 {
		t.Fatalf("levels = %d, want >= 4", h.Space.Levels())
	}
	cb := h.CounterBlockOf(0)
	chain := h.MetaFetchChain(cb)
	// Chain from a counter block excludes the block itself; fresh cache
	// means everything up to the root (root itself is always "on-chip",
	// the chain stops before needing its parent).
	if len(chain) != h.Space.Levels()-1 {
		t.Fatalf("chain = %d entries, want %d", len(chain), h.Space.Levels()-1)
	}
	// Caching a middle ancestor truncates the chain there.
	h.InsertMeta(chain[1], false)
	if got := h.MetaFetchChain(cb); len(got) != 1 {
		t.Fatalf("chain after caching ancestor = %d, want 1", len(got))
	}
}

func TestAESPoolReservedCount(t *testing.T) {
	p := NewAESPool(sim.New(), 1e9, sim.NS(14))
	p.Reserve(5, 0)
	p.ReserveLow(8, 0)
	if p.Reserved != 13 {
		t.Fatalf("reserved = %d, want 13", p.Reserved)
	}
	if p.Latency() != sim.NS(14) {
		t.Fatal("latency accessor wrong")
	}
}
