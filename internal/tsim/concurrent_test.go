package tsim

import (
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/inv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildRec constructs one simulation bound to its own invariant recorder;
// the caller decides on which goroutine Run executes.
func buildRec(t *testing.T, mutate func(*config.Config), rec *inv.Recorder) *Sim {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Seed: 3, Refs: 30_000, Warmup: 10_000,
		Scale: workload.TestScale(), Recorder: rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// brokenEMCC passes config.Validate but trips emcc.NewPolicyRec's gated
// check, guaranteeing at least one violation lands on the run's recorder.
func brokenEMCC(c *config.Config) {
	c.EMCC = true
	c.EMCCLookupDelay = -sim.NS(1)
}

// TestConcurrentRunsIsolateViolations runs two full tsim scenarios
// concurrently in one process with invariants enabled on both: a clean one
// and one with a deliberately broken EMCC policy. The broken run's
// violations must land only in its own recorder — the clean run's recorder
// and the process-wide default stay empty — and the clean run's stats must
// be byte-identical to the same scenario run serially. Run under -race this
// also proves two engine instances share no mutable state.
func TestConcurrentRunsIsolateViolations(t *testing.T) {
	ref := buildRec(t, nil, nil)
	ref.Run()
	serial, err := ref.Stats().Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}

	cleanRec := inv.NewRecorder()
	cleanRec.Enable(true)
	brokenRec := inv.NewRecorder()
	brokenRec.Enable(true)

	cleanSim := buildRec(t, nil, cleanRec)
	brokenSim := buildRec(t, brokenEMCC, brokenRec)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		cleanSim.Run()
	}()
	go func() {
		defer wg.Done()
		brokenSim.Run()
	}()
	wg.Wait()

	if n := brokenRec.Count(); n == 0 {
		t.Fatal("broken-EMCC run recorded no violations")
	}
	vs := brokenRec.Violations()
	if len(vs) == 0 || vs[0].Component != "emcc" {
		t.Fatalf("broken run's first violation = %v, want component emcc", vs)
	}
	if n := cleanRec.Count(); n != 0 {
		t.Fatalf("clean run's recorder absorbed %d violations from the broken run; first: %v",
			n, cleanRec.Violations()[0])
	}
	if n := inv.Count(); n != 0 {
		t.Fatalf("process-wide default recorder absorbed %d violations", n)
	}
	got, err := cleanSim.Stats().Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(serial) {
		t.Fatal("clean run's stats diverged from the serial reference under concurrency")
	}
}
