package tsim

import (
	"fmt"
	"runtime"

	"repro/internal/inv"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file builds the run's execution topology: which entity runs on
// which scheduling context, and the seams between them.
//
// The partition follows the machine's geometry (Sec. III / Fig 4). With
// Domains = D > 0 the run is cut into:
//
//   - the hub (the serial engine): memory controller, overflow engine,
//     DRAM enqueue side — and the cores + L2s unless ShardCores;
//   - D slice-group domains: LLC slice j lives in group j mod D;
//   - one domain per core + its private L2 when ShardCores;
//   - one domain per DRAM channel (dram.Shard, since PR 8).
//
// Every link's lookahead is derived from the NoC: the minimum one-way mesh
// latency between any tile of the source group and any tile of the
// destination group. Each modeled message between two entities takes at
// least oneway(srcTile, dstTile) >= that minimum, so the conservative
// synchronizer never sees a violating send.
//
// Parity: the serial engine (Domains = 0) and the sharded engine at any D
// and worker count produce byte-identical runs. The recipe (DESIGN.md
// §14): every seam message is a late-class keyed event in BOTH engines,
// with a key unique to its directed entity pair — so same-timestamp
// ordering is fixed by (key, per-key source order) everywhere, and keys
// never depend on D.

// sched is the scheduling context an entity runs on: the serial engine
// (which is also the hub of a sharded run) or the entity's own domain.
// *sim.Engine and *sim.Domain both satisfy it with identical semantics.
type sched interface {
	Now() sim.Time
	At(t sim.Time, fn func())
	AtCall(t sim.Time, fn func(any), arg any)
	AfterCall(d sim.Time, fn func(any), arg any)
	AtCallLate(t sim.Time, key int32, fn func(any), arg any)
	Recorder() *inv.Recorder
}

// seamKeyBase starts the tsim seam key space above the DRAM engine's
// late-class keys (channel finish/kick keys are < 2*channels).
const seamKeyBase = 1024

// port is one directed seam between two entities. send delivers a
// late-class event with the port's key: a local AtCallLate when source and
// destination share a scheduling context, a Link send when they do not.
// The key is the same either way — that is what makes the serial and
// sharded schedules byte-identical.
type port struct {
	key  int32
	dst  sched     // destination context when local (nil iff link is set)
	link *sim.Link // cross-domain channel (nil when local)
}

// send schedules fn(arg) at the destination at absolute time at. Local
// sends clamp to the destination clock (which equals the sender's clock)
// exactly like Sim.atCall; cross-domain sends must already satisfy the
// link's lookahead, which every modeled NoC delay does by construction.
func (p *port) send(at sim.Time, fn func(any), arg any) {
	if p.link != nil {
		p.link.SendLate(at, p.key, fn, arg)
		return
	}
	if now := p.dst.Now(); at < now {
		at = now
	}
	p.dst.AtCallLate(at, p.key, fn, arg)
}

// domPair indexes the link table by (source, destination) domain; nil is
// the hub.
type domPair [2]*sim.Domain

// sliceDom reports the domain LLC slice j runs in (nil = hub/serial).
func (s *Sim) sliceDom(j int) *sim.Domain {
	if len(s.sliceDoms) == 0 {
		return nil
	}
	return s.sliceDoms[j%len(s.sliceDoms)]
}

// coreDom reports the domain core c and its L2 run in (nil = hub/serial).
func (s *Sim) coreDom(c int) *sim.Domain {
	if len(s.coreDoms) == 0 {
		return nil
	}
	return s.coreDoms[c]
}

// domES maps a domain to its scheduling context (nil -> the hub engine).
func (s *Sim) domES(d *sim.Domain) sched {
	if d == nil {
		return s.eng
	}
	return d
}

// buildTopology cuts the run into domains and wires the links. Called
// before any entity is built so constructors can bind their context; a
// serial run (Domains = 0) builds nothing.
func (s *Sim) buildTopology() {
	D := s.cfg.Domains
	if D <= 0 {
		return
	}
	C := s.opt.Cores
	// One worker per domain (slices, optional cores, DRAM channels) plus
	// the hub, capped by the host. The schedule is byte-identical at any
	// worker count.
	workers := 1 + D + minInt(D, s.cfg.Channels)
	if s.cfg.ShardCores {
		workers += C
	}
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	s.shard = sim.NewShard(s.eng, workers)
	s.linkTab = make(map[domPair]*sim.Link)

	for g := 0; g < D; g++ {
		s.sliceDoms = append(s.sliceDoms, s.shard.AddDomain(fmt.Sprintf("slice%d", g)))
		set := stats.NewSet()
		s.sliceSets = append(s.sliceSets, set)
		s.domSets = append(s.domSets, set)
	}
	if s.cfg.ShardCores {
		for c := 0; c < C; c++ {
			s.coreDoms = append(s.coreDoms, s.shard.AddDomain(fmt.Sprintf("core%d", c)))
			set := stats.NewSet()
			s.coreSets = append(s.coreSets, set)
			s.domSets = append(s.domSets, set)
		}
	}

	// Tile sets per domain, for NoC-derived lookahead. The hub holds the
	// MC tiles, plus every core tile while the cores stay on the hub.
	hubTiles := make([]noc.NodeID, 0, s.mesh.MCs()+C)
	for i := 0; i < s.mesh.MCs(); i++ {
		hubTiles = append(hubTiles, s.mesh.MCTile(i))
	}
	if !s.cfg.ShardCores {
		for c := 0; c < C; c++ {
			hubTiles = append(hubTiles, s.mesh.CoreTile(c))
		}
	}
	groupTiles := make([][]noc.NodeID, D)
	for j := 0; j < s.mesh.CoreTiles(); j++ {
		groupTiles[j%D] = append(groupTiles[j%D], s.mesh.CoreTile(j))
	}

	hub := s.shard.Hub()
	connect := func(a, b *sim.Domain, at, bt []noc.NodeID) {
		ad, bd := a, b
		if a == hub {
			ad = nil
		}
		if b == hub {
			bd = nil
		}
		s.linkTab[domPair{ad, bd}] = s.shard.Connect(a, b, s.mesh.MinOneWay(at, bt))
	}
	for g := 0; g < D; g++ {
		connect(hub, s.sliceDoms[g], hubTiles, groupTiles[g])
		connect(s.sliceDoms[g], hub, groupTiles[g], hubTiles)
	}
	if s.cfg.ShardCores {
		for c := 0; c < C; c++ {
			ct := []noc.NodeID{s.mesh.CoreTile(c)}
			for g := 0; g < D; g++ {
				connect(s.coreDoms[c], s.sliceDoms[g], ct, groupTiles[g])
				connect(s.sliceDoms[g], s.coreDoms[c], groupTiles[g], ct)
			}
			// Responses and counter invalidations flow MC -> core; no
			// modeled message flows core -> MC directly (everything
			// routes through a slice), so no return link exists.
			connect(hub, s.coreDoms[c], hubTiles, ct)
		}
	}
	// DRAM channels become their own domains behind the MC (PR 8).
	s.dram.Shard(s.shard, D)
	s.shard.Finalize()
}

// seamPort builds the directed seam src -> dst. Entities in the same
// context (always, on the serial engine) get a local port; otherwise the
// link wired by buildTopology carries the traffic.
func (s *Sim) seamPort(src, dst *sim.Domain, dstES sched, key int32) port {
	if s.shard == nil || src == dst {
		return port{key: key, dst: dstES}
	}
	l := s.linkTab[domPair{src, dst}]
	if l == nil {
		panic(fmt.Sprintf("tsim: no seam link for key %d", key))
	}
	return port{key: key, link: l}
}

// wirePorts builds every entity's seam ports. Key layout (C = cores,
// S = slices, B = seamKeyBase) — unique per directed entity pair, and
// independent of Domains so the serial and sharded schedules agree:
//
//	l2 c    -> slice j : B + c*S + j
//	slice j -> core c  : B + C*S + j*C + c
//	slice j -> hub     : B + 2*C*S + j
//	hub     -> slice j : B + 2*C*S + S + j
//	hub     -> core c  : B + 2*C*S + 2*S + c
func (s *Sim) wirePorts() {
	C, S := s.opt.Cores, len(s.slices)
	for _, l := range s.l2s {
		l.toSlice = make([]port, S)
		for j, g := range s.slices {
			l.toSlice[j] = s.seamPort(l.dom, g.dom, g.es, int32(seamKeyBase+l.id*S+j))
		}
	}
	for j, g := range s.slices {
		g.toCore = make([]port, C)
		for c := 0; c < C; c++ {
			g.toCore[c] = s.seamPort(g.dom, s.l2s[c].dom, s.l2s[c].es, int32(seamKeyBase+C*S+j*C+c))
		}
		g.toHub = s.seamPort(g.dom, nil, s.eng, int32(seamKeyBase+2*C*S+j))
	}
	s.mc.toSlice = make([]port, S)
	for j, g := range s.slices {
		s.mc.toSlice[j] = s.seamPort(nil, g.dom, g.es, int32(seamKeyBase+2*C*S+S+j))
	}
	s.mc.toCore = make([]port, C)
	for c := 0; c < C; c++ {
		s.mc.toCore[c] = s.seamPort(nil, s.l2s[c].dom, s.l2s[c].es, int32(seamKeyBase+2*C*S+2*S+c))
	}
}

// coreStats reports the stats shard core c (and its L2) writes to: the
// run's set on the serial engine and on the hub, the core domain's shard
// under ShardCores. Shards merge into the run's set after the run, in
// canonical order — every accumulated value is an integer (counts or
// picoseconds), so the merged totals are exact and order-insensitive.
func (s *Sim) coreStats(c int) *stats.Set {
	if len(s.coreSets) == 0 {
		return s.st
	}
	return s.coreSets[c]
}

// sliceStats reports the stats shard LLC slice j writes to.
func (s *Sim) sliceStats(j int) *stats.Set {
	if len(s.sliceSets) == 0 {
		return s.st
	}
	return s.sliceSets[j%len(s.sliceSets)]
}

// sliceFor maps a block to its home LLC slice.
func (s *Sim) sliceFor(block uint64) *llcSlice { return s.slices[s.mesh.SliceIndexOf(block)] }

// llcPeek probes the sliced LLC without touching LRU state (XPT's oracle;
// serial engine only — Validate rejects XPT with Domains > 0).
func (s *Sim) llcPeek(block uint64) bool { return s.sliceFor(block).c.Peek(block) }

// u64box carries a packed seam payload. Interface-boxing a uint64
// allocates, so the serial engine (whose steady state is pinned
// allocation-free) recycles boxes through a freelist — safe because one
// goroutine runs everything. Sharded runs allocate one box per message:
// the freelist would be shared across domains, and the pins cover the
// serial engine only.
type u64box struct {
	v    uint64
	next *u64box
}

// box wraps a packed payload for a seam send.
func (s *Sim) box(v uint64) *u64box {
	if s.shard == nil && s.boxFree != nil {
		b := s.boxFree
		s.boxFree, b.next = b.next, nil
		b.v = v
		return b
	}
	//lint:ignore allocpin sharded-engine fallback: the freelist serves every serial-engine box; Domains > 0 allocates per message, outside the serial-only 0-alloc pins
	return &u64box{v: v}
}

// unbox reads a seam payload and retires its box.
func (s *Sim) unbox(a any) uint64 {
	b := a.(*u64box)
	v := b.v
	if s.shard == nil {
		b.next = s.boxFree
		s.boxFree = b
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
