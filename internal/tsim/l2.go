package tsim

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/emcc"
	"repro/internal/mc"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// readReq tracks one L2 miss through the hierarchy, including the EMCC
// cryptography state of Sec. IV: where the counter was found, whether the
// offload decision bit is set, and how the response (plaintext from LLC,
// tagged-verified from MC, or ciphertext + MAC⊕dot to finish at L2) lands.
type readReq struct {
	block   uint64
	isStore bool
	l2      *l2Ctl
	missAt  sim.Time // L2 miss detection time (Fig 17 latency origin)
	tr      *obs.Req // trace context; nil when untraced (prefetches, tracing off)

	offload   bool // decision bit: AES queue pressure at miss time
	completed bool
	mcStarted bool // dedupe XPT + LLC-forwarded arrivals at the MC
	llcMissed bool // the data access missed in LLC (Fig 11 accounting)

	// L2-side cryptography state (EMCC).
	ctrKnown   bool
	ctrReady   sim.Time // when the counter is usable at L2
	aesStarted bool
	aesKnown   bool
	aesDone    sim.Time
	cipherHere bool // untagged ciphertext response arrived at L2
	cipherAt   sim.Time
}

// l2Ctl is the per-core L2 cache controller. Under EMCC it also hosts a
// share of the AES units and the counter-side logic.
type l2Ctl struct {
	s    *Sim
	id   int
	tile noc.NodeID
	c    *cache.Cache
	lat  sim.Time
	aes  *mc.AESPool // nil unless EMCC moves AES bandwidth here
	pend map[uint64]*l2Mshr
	// monitor, when non-nil, is the Sec. IV-F intensity monitor that
	// dynamically turns EMCC off for non-memory-intensive phases.
	monitor *emcc.IntensityMonitor
	// pf, when non-nil, is the Table I constant-stride prefetcher.
	pf *prefetch.Prefetcher
}

type l2Mshr struct {
	req     *readReq
	waiters []func(at sim.Time)
}

func newL2Ctl(s *Sim, id int) *l2Ctl {
	l := &l2Ctl{
		s:    s,
		id:   id,
		tile: s.mesh.CoreTile(id),
		c:    cache.New(fmt.Sprintf("l2.%d", id), s.cfg.L2Bytes, s.cfg.L2Ways),
		lat:  s.cfg.L2Latency,
		pend: make(map[uint64]*l2Mshr),
	}
	if s.cfg.EMCC && s.cfg.EMCCAESFraction > 0 {
		perL2 := s.cfg.AESPeakOpsPerSec * s.cfg.EMCCAESFraction / float64(s.opt.Cores)
		l.aes = mc.NewAESPool(s.eng, perL2, s.cfg.AESLatency)
		l.c.SetCounterCap(s.cfg.EMCCL2CounterBytes)
	}
	if s.cfg.EMCC && s.cfg.EMCCDynamicOff {
		l.monitor = emcc.NewIntensityMonitor()
	}
	if s.cfg.PrefetchL2Degree > 0 {
		l.pf = prefetch.New(s.cfg.PrefetchTable, s.cfg.PrefetchL2Degree)
	}
	return l
}

// read serves an L1 miss (load or store fill). done fires when the block is
// decrypted, verified and resident in L2. tr is the request's trace
// context (nil when untraced).
func (l *l2Ctl) read(block uint64, isStore bool, tr *obs.Req, done func(at sim.Time)) {
	t := l.s.eng.Now()
	if l.monitor != nil {
		l.monitor.OnRequest()
	}
	if l.c.Lookup(block) {
		tr.AddSpan(obs.SegL2Lookup, t, t+l.lat)
		done(t + l.lat)
		return
	}
	if m := l.pend[block]; m != nil {
		// The merged request rides the primary miss: it keeps its own L1
		// span and total latency, but the segment breakdown belongs to
		// the miss that launched the path.
		tr.MarkMerged()
		m.waiters = append(m.waiters, done)
		return
	}
	tM := t + l.lat
	tr.AddSpan(obs.SegL2Lookup, t, tM)
	req := &readReq{block: block, isStore: isStore, l2: l, missAt: tM, tr: tr}
	l.pend[block] = &l2Mshr{req: req, waiters: []func(at sim.Time){done}}
	l.s.st.Inc(stats.TsimL2DataMiss)
	l.s.at(tM, func() { l.missPath(req) })
	// Demand misses train the stride prefetcher; candidates fetch in the
	// background through the same secure-read machinery.
	if l.pf != nil {
		for _, cand := range l.pf.Observe(block) {
			l.prefetchInto(cand)
		}
	}
}

// prefetchInto launches a background fill. It does not train the
// prefetcher (no runaway chains) and nobody waits on it.
func (l *l2Ctl) prefetchInto(block uint64) {
	if l.c.Peek(block) || l.pend[block] != nil {
		return
	}
	t := l.s.eng.Now()
	tM := t + l.lat
	req := &readReq{block: block, isStore: false, l2: l, missAt: tM}
	l.pend[block] = &l2Mshr{req: req}
	l.s.st.Inc(stats.TsimL2Prefetch)
	l.s.at(tM, func() { l.missPath(req) })
}

// missPath launches the parallel data and (under EMCC) counter requests.
func (l *l2Ctl) missPath(req *readReq) {
	s := l.s
	tM := s.eng.Now()

	emccOn := s.cfg.EMCC && s.secure() && (l.monitor == nil || l.monitor.Enabled())
	if emccOn {
		// Adaptive offload decision (Sec. IV-D): the bit travels with
		// the miss request.
		if l.aes == nil || s.pol.ShouldOffload(l.aes.QueueDelay()) {
			req.offload = true
			req.tr.MarkOffload()
			s.st.Inc(stats.EmccOffloadQueue)
		}
		// Serial counter lookup in L2 during spare cycles ('J').
		s.at(tM+s.pol.LookupDelay, func() { l.counterProbe(req) })
	} else if s.cfg.EMCC && s.secure() {
		// Dynamic EMCC-off (Sec. IV-F): all cryptography at the MC.
		req.offload = true
		s.st.Inc(stats.EmccDynamicOffMiss)
	}

	// Data request to the block's LLC slice.
	slice := s.mesh.SliceOf(req.block)
	req.tr.AddSpan(obs.SegNoCReq, tM, tM+s.oneway(l.tile, slice))
	s.at(tM+s.oneway(l.tile, slice), func() { s.llc.dataAccess(req, slice) })

	// XPT LLC-miss prediction: forward the miss straight to the MC in
	// parallel (idealised: only when the block really misses in LLC).
	if s.cfg.XPT && !s.llc.c.Peek(req.block) {
		mcTile := s.mesh.MCTile(s.mesh.MCOf(req.block))
		s.at(tM+s.oneway(l.tile, mcTile), func() { s.mc.dataRead(req, false) })
	}
}

// counterProbe is the Sec. IV-C serial counter lookup in L2, followed by a
// speculative parallel fetch from LLC on miss.
func (l *l2Ctl) counterProbe(req *readReq) {
	s := l.s
	if req.completed {
		return
	}
	t := s.eng.Now()
	// The probe span covers the serial-lookup wait ('J') plus the lookup.
	req.tr.AddSpan(obs.SegCtrProbeL2, req.missAt, t)
	cb := s.mc.home.CounterBlockOf(req.block)
	if l.c.Lookup(cb) {
		s.st.Inc(stats.EmccL2CtrHit)
		req.ctrKnown = true
		req.ctrReady = t + s.mc.decodeLat
		req.tr.MarkCtr(obs.CtrAtL2)
		req.tr.AddSpan(obs.SegCtrFetch, t, req.ctrReady)
		l.maybeStartAES(req)
		return
	}
	s.st.Inc(stats.EmccL2CtrMiss)
	s.st.Inc(stats.EmccSpecFetch)
	req.tr.Begin(obs.SegCtrFetch, t)
	slice := s.mesh.SliceOf(cb)
	s.at(t+s.oneway(l.tile, slice), func() { s.llc.counterAccessFromL2(req, cb, slice) })
}

// counterArrived delivers a verified counter block to L2 (from LLC or,
// after an on-chip miss, from the MC).
func (l *l2Ctl) counterArrived(req *readReq, cb uint64) {
	s := l.s
	t := s.eng.Now()
	l.insertCounter(cb)
	if req.llcMissed {
		// The fetch that triggered this counter already proved it
		// useful: its own data access missed in LLC (Fig 11).
		l.c.MarkUsed(cb)
	}
	if req.completed || req.ctrKnown {
		return
	}
	req.ctrKnown = true
	req.ctrReady = t + s.mc.decodeLat
	req.tr.Commit(obs.SegCtrFetch, req.ctrReady)
	l.maybeStartAES(req)
}

// insertCounter caches a counter block in L2 under the 32 KB cap with the
// Fig 11 useless-fetch accounting.
func (l *l2Ctl) insertCounter(cb uint64) {
	l.s.st.Inc(stats.EmccCtrInserted)
	v, ok := l.c.Insert(cb, false, addr.KindCounter)
	if !ok {
		return
	}
	if v.Kind == addr.KindCounter {
		if !v.WasUsed {
			l.s.st.Inc(stats.EmccUseless)
		}
		return
	}
	l.spillVictim(v)
}

// maybeStartAES arms the gated AES start of Sec. IV-D: no earlier than the
// counter is decoded, and no earlier than one LLC-hit latency after the
// miss (so LLC hits never waste AES bandwidth at L2).
func (l *l2Ctl) maybeStartAES(req *readReq) {
	s := l.s
	if req.aesStarted || req.completed || req.offload || l.aes == nil {
		return
	}
	req.aesStarted = true
	start := req.ctrReady
	if gate := req.missAt + s.pol.LLCHitWait; gate > start {
		start = gate
	}
	s.at(start, func() {
		if req.completed {
			req.aesStarted = false // never reserved; nothing wasted
			return
		}
		req.aesKnown = true
		req.aesDone = l.aes.Reserve(emcc.AESOpsPerRead, s.eng.Now())
		issue := req.aesDone - l.aes.Latency()
		req.tr.AddSpan(obs.SegAESQueue, s.eng.Now(), issue)
		req.tr.AddSpan(obs.SegAESCompute, issue, req.aesDone)
		l.maybeFinishCipher(req)
	})
}

// completePlain finishes a request whose data came decrypted: an LLC hit
// (on-chip data is plaintext) or a tagged-verified MC response.
func (l *l2Ctl) completePlain(req *readReq, fromMC bool) {
	if req.completed {
		return
	}
	if fromMC {
		l.s.st.Inc(stats.EmccDecryptAtMC)
		if l.monitor != nil {
			l.monitor.OnDRAMFill()
		}
	}
	l.finish(req, l.s.eng.Now())
}

// cipherArrived handles an untagged MC response: ciphertext plus
// MAC⊕dot-product, to be finished with the locally computed AES results.
func (l *l2Ctl) cipherArrived(req *readReq) {
	req.cipherHere = true
	req.cipherAt = l.s.eng.Now()
	if l.monitor != nil {
		l.monitor.OnDRAMFill()
	}
	l.maybeFinishCipher(req)
}

// maybeFinishCipher completes the read once both the ciphertext and the
// local AES results are available (the 1 ns XOR + compare is the only
// data-dependent work, Sec. II).
func (l *l2Ctl) maybeFinishCipher(req *readReq) {
	if req.completed || !req.cipherHere || !req.aesKnown {
		return
	}
	at := req.cipherAt
	if req.aesDone > at {
		at = req.aesDone
	}
	l.s.st.Observe(stats.TsimCryptoExposureL2NS, (at - req.cipherAt).Nanoseconds())
	req.tr.MarkDecrypt(obs.DecAtL2, req.cipherAt, at)
	at += sim.NS(1)
	l.s.st.Inc(stats.EmccDecryptAtL2)
	l.s.at(at, func() { l.finish(req, at) })
}

// finish inserts the block, wakes waiters and retires the MSHR.
func (l *l2Ctl) finish(req *readReq, at sim.Time) {
	if req.completed {
		return
	}
	req.completed = true
	l.fill(req.block, false, at)
	m := l.pend[req.block]
	delete(l.pend, req.block)
	if m == nil {
		return
	}
	if !req.isStore && len(m.waiters) > 0 {
		l.s.st.Observe(stats.TsimL2ReadMissLatencyNS, (at - req.missAt).Nanoseconds())
	}
	for _, w := range m.waiters {
		w(at)
	}
}

// fill inserts a data block into L2, spilling the victim into the LLC.
func (l *l2Ctl) fill(block uint64, dirty bool, at sim.Time) {
	v, ok := l.c.Insert(block, dirty, addr.KindData)
	if !ok {
		return
	}
	l.spillVictim(v)
}

// spillVictim routes an evicted L2 line: counters just account uselessness
// (the LLC keeps its own copy path), data goes to the LLC victim cache.
func (l *l2Ctl) spillVictim(v cache.Victim) {
	if v.Kind == addr.KindCounter {
		if !v.WasUsed {
			l.s.st.Inc(stats.EmccUseless)
		}
		return
	}
	l.s.llc.insert(v.Block, v.Dirty, v.Kind)
}

// invalidateCounter handles an MC counter-update invalidation (Fig 23).
func (l *l2Ctl) invalidateCounter(cb uint64) {
	if v, ok := l.c.Invalidate(cb); ok {
		l.s.st.Inc(stats.EmccInvalidations)
		if !v.WasUsed {
			l.s.st.Inc(stats.EmccUseless)
		}
	}
}
