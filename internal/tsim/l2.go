package tsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/emcc"
	"repro/internal/mc"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// waiter is anything blocked on an L2 read: the L2 calls complete exactly
// once, when the block is decrypted, verified and resident. Using an
// interface instead of a `func(at)` keeps the handoff allocation-free —
// the caller passes a pooled struct it already owns (e.g. coreMiss).
type waiter interface {
	complete(at sim.Time)
}

// readReq tracks one L2 miss through the hierarchy, including the EMCC
// cryptography state of Sec. IV: where the counter was found, whether the
// offload decision bit is set, and how the response (plaintext from LLC,
// tagged-verified from MC, or ciphertext + MAC⊕dot to finish at L2) lands.
// It doubles as the L2 MSHR entry: waiters holds every merged requester.
//
// readReqs are pooled per-l2Ctl. Every scheduled event or registry entry
// that references the request counts as one hold (schedReq / holdReq);
// release drops a hold, and the request returns to the freelist only once
// it has completed and the last hold is gone — so stale events (which
// no-op on the completed flag) can never observe a recycled request.
//
// Under the sharded engine the request travels between domains (L2, home
// slice, MC hub) as a shared token. The fields split by owner: holds and
// completed are atomic (every side reads them; slice and hub callbacks
// always schedule their successor hold before releasing their own, so the
// hold count only ever reaches zero at an L2-side event and the freelist
// stays single-domain); llcMissed and the crypto state belong to the L2;
// mcStarted belongs to the hub; offload is written at the L2 strictly
// before the request is first sent away. Everything else is immutable
// in flight.
type readReq struct {
	block   uint64
	isStore bool
	l2      *l2Ctl
	missAt  sim.Time // L2 miss detection time (Fig 17 latency origin)
	tr      *obs.Req // trace context; nil when untraced (prefetches, tracing off)

	waiters []waiter // requesters woken at finish; empty for prefetches
	holds   int32    // outstanding event/registry references (atomic)
	free    *readReq // freelist link

	// ctrMissDone resumes a counter miss that went MC-side for a verified
	// copy (ctrMissFetchDone). Bound once when the pooled request is first
	// allocated — it captures only the request, whose identity survives
	// reuse — and preserved across resets, keeping the path allocation-free.
	ctrMissDone func(at sim.Time)

	offload   bool   // decision bit: AES queue pressure at miss time
	completed uint32 // atomic; see done()
	mcStarted bool   // dedupe XPT + LLC-forwarded arrivals at the MC (hub-only)
	llcMissed bool   // the data access missed in LLC (Fig 11; L2-only, set by the miss note)

	// L2-side cryptography state (EMCC).
	ctrKnown   bool
	ctrReady   sim.Time // when the counter is usable at L2
	aesStarted bool
	aesKnown   bool
	aesDone    sim.Time
	cipherHere bool // untagged ciphertext response arrived at L2
	cipherAt   sim.Time
	finishAt   sim.Time // scheduled completion time (cipher-finish path)
}

// holdReq takes one reference for an event or registry entry about to be
// created; every hold is balanced by exactly one release.
func (r *readReq) holdReq() { atomic.AddInt32(&r.holds, 1) }

// done reports whether the request has completed (atomically: the MC's
// stale-arrival guards read it from the hub).
func (r *readReq) done() bool { return atomic.LoadUint32(&r.completed) != 0 }

// release drops one hold; the last release after completion recycles the
// request (always at an L2-side event — see the readReq doc comment).
func (r *readReq) release() {
	n := atomic.AddInt32(&r.holds, -1)
	if rec := r.l2.s.ivr; rec.On() && n < 0 {
		rec.Failf("tsim", "readReq for block %#x over-released", r.block)
	}
	if n == 0 && r.done() {
		r.l2.putReq(r)
	}
}

// l2Ctl is the per-core L2 cache controller. Under EMCC it also hosts a
// share of the AES units and the counter-side logic. It shares a
// scheduling context with its core: the serial engine, or the core's own
// domain under ShardCores.
type l2Ctl struct {
	s    *Sim
	id   int
	tile noc.NodeID
	dom  *sim.Domain // nil on the serial engine / hub
	es   sched
	st   *stats.Set
	c    *cache.Cache
	lat  sim.Time
	aes  *mc.AESPool // nil unless EMCC moves AES bandwidth here
	pend map[uint64]*readReq
	// freeReq is the readReq freelist; see the readReq doc comment.
	freeReq *readReq
	// monitor, when non-nil, is the Sec. IV-F intensity monitor that
	// dynamically turns EMCC off for non-memory-intensive phases.
	monitor *emcc.IntensityMonitor
	// pf, when non-nil, is the Table I constant-stride prefetcher.
	pf *prefetch.Prefetcher

	toSlice []port // per-slice request/spill seams
	// invCtrCB handles an MC counter-invalidation message (boxed block).
	invCtrCB func(any)

	// Cached stats cells (bound after warmup reset; see Sim.bindHot).
	cDataMiss *int64
	cPrefetch *int64
	aMissLat  *stats.Accumulator
}

func newL2Ctl(s *Sim, id int) *l2Ctl {
	d := s.coreDom(id)
	l := &l2Ctl{
		s:    s,
		id:   id,
		tile: s.mesh.CoreTile(id),
		dom:  d,
		es:   s.domES(d),
		st:   s.coreStats(id),
		c:    cache.New(fmt.Sprintf("l2.%d", id), s.cfg.L2Bytes, s.cfg.L2Ways),
		lat:  s.cfg.L2Latency,
		pend: make(map[uint64]*readReq),
	}
	l.c.SetRecorder(s.ivr)
	if s.cfg.EMCC && s.cfg.EMCCAESFraction > 0 {
		perL2 := s.cfg.AESPeakOpsPerSec * s.cfg.EMCCAESFraction / float64(s.opt.Cores)
		l.aes = mc.NewAESPool(l.es, perL2, s.cfg.AESLatency)
		l.c.SetCounterCap(s.cfg.EMCCL2CounterBytes)
	}
	if s.cfg.EMCC && s.cfg.EMCCDynamicOff {
		l.monitor = emcc.NewIntensityMonitor()
	}
	if s.cfg.PrefetchL2Degree > 0 {
		l.pf = prefetch.New(s.cfg.PrefetchTable, s.cfg.PrefetchL2Degree)
	}
	l.invCtrCB = func(a any) { l.invalidateCounter(s.unbox(a)) }
	return l
}

func (l *l2Ctl) bindHot() {
	l.cDataMiss = l.st.CounterRef(stats.TsimL2DataMiss)
	l.cPrefetch = l.st.CounterRef(stats.TsimL2Prefetch)
	l.aMissLat = l.st.AccumRef(stats.TsimL2ReadMissLatencyPS)
}

// atCall schedules a local event at the later of t and the local now.
func (l *l2Ctl) atCall(t sim.Time, fn func(any), arg any) {
	if now := l.es.Now(); t < now {
		t = now
	}
	l.es.AtCall(t, fn, arg)
}

// schedReq schedules a local request-carrying event, taking the hold that
// the callback's trailing release balances (see readReq).
func (l *l2Ctl) schedReq(t sim.Time, fn func(any), req *readReq) {
	req.holdReq()
	l.atCall(t, fn, req)
}

func (l *l2Ctl) getReq() *readReq {
	r := l.freeReq
	if r == nil {
		r = &readReq{l2: l}
		// Bound once per pooled request: the continuation captures only
		// the request, whose identity survives reuse.
		r.ctrMissDone = func(at sim.Time) { ctrMissFetchDone(r, at) }
		return r
	}
	l.freeReq = r.free
	w := r.waiters[:0]
	*r = readReq{l2: l, waiters: w, ctrMissDone: r.ctrMissDone}
	return r
}

func (l *l2Ctl) putReq(r *readReq) {
	for i := range r.waiters {
		r.waiters[i] = nil
	}
	r.waiters = r.waiters[:0]
	r.tr = nil
	r.free = l.freeReq
	l.freeReq = r
}

// ---- Prebound event callbacks (see sim.AtCall) ----
//
// Each callback re-derives any routing values (counter block, home slice,
// MC tile) from the request: those are pure functions of the address, so
// recomputing them at fire time is exact. Every callback ends by releasing
// the hold its schedReq (or the sender's explicit holdReq) took.

func missPathCB(x any) {
	req := x.(*readReq)
	req.l2.missPath(req)
	req.release()
}

func counterProbeCB(x any) {
	req := x.(*readReq)
	req.l2.counterProbe(req)
	req.release()
}

func llcDataAccessCB(x any) {
	req := x.(*readReq)
	req.l2.s.sliceFor(req.block).dataAccess(req)
	req.release()
}

func mcDataReadSpecCB(x any) {
	req := x.(*readReq)
	req.l2.s.mc.dataRead(req, false)
	req.release()
}

func mcDataReadConfCB(x any) {
	req := x.(*readReq)
	req.l2.s.mc.dataRead(req, true)
	req.release()
}

func llcCounterAccessCB(x any) {
	req := x.(*readReq)
	s := req.l2.s
	cb := s.mc.home.CounterBlockOf(req.block)
	s.sliceFor(cb).counterAccessFromL2(req, cb)
	req.release()
}

func counterArrivedCB(x any) {
	req := x.(*readReq)
	req.l2.counterArrived(req, req.l2.s.mc.home.CounterBlockOf(req.block))
	req.release()
}

func counterMissCB(x any) {
	req := x.(*readReq)
	req.l2.s.mc.counterMissFromL2(req, req.l2.s.mc.home.CounterBlockOf(req.block))
	req.release()
}

func llcMissNoteCB(x any) {
	req := x.(*readReq)
	req.l2.missNote(req)
	req.release()
}

func aesStartCB(x any) {
	req := x.(*readReq)
	req.l2.aesStart(req)
	req.release()
}

func finishCipherCB(x any) {
	req := x.(*readReq)
	req.l2.finish(req, req.finishAt)
	req.release()
}

func completePlainLocalCB(x any) {
	req := x.(*readReq)
	req.l2.completePlain(req, false)
	req.release()
}

func completePlainMCCB(x any) {
	req := x.(*readReq)
	req.l2.completePlain(req, true)
	req.release()
}

func cipherArrivedCB(x any) {
	req := x.(*readReq)
	req.l2.cipherArrived(req)
	req.release()
}

func bipbipArrivedCB(x any) {
	req := x.(*readReq)
	req.l2.bipbipArrived(req)
	req.release()
}

// read serves an L1 miss (load or store fill). w.complete fires when the
// block is decrypted, verified and resident in L2. tr is the request's
// trace context (nil when untraced).
func (l *l2Ctl) read(block uint64, isStore bool, tr *obs.Req, w waiter) {
	t := l.es.Now()
	if l.monitor != nil {
		l.monitor.OnRequest()
	}
	if l.c.Lookup(block) {
		tr.AddSpan(obs.SegL2Lookup, t, t+l.lat)
		w.complete(t + l.lat)
		return
	}
	if r := l.pend[block]; r != nil {
		// The merged request rides the primary miss: it keeps its own L1
		// span and total latency, but the segment breakdown belongs to
		// the miss that launched the path.
		tr.MarkMerged()
		r.waiters = append(r.waiters, w)
		return
	}
	tM := t + l.lat
	tr.AddSpan(obs.SegL2Lookup, t, tM)
	req := l.getReq()
	req.block, req.isStore, req.missAt, req.tr = block, isStore, tM, tr
	req.waiters = append(req.waiters, w)
	req.holdReq() // MSHR registration; released in finish
	l.pend[block] = req
	*l.cDataMiss++
	l.schedReq(tM, missPathCB, req)
	// Demand misses train the stride prefetcher; candidates fetch in the
	// background through the same secure-read machinery.
	if l.pf != nil {
		for _, cand := range l.pf.Observe(block) {
			l.prefetchInto(cand)
		}
	}
}

// prefetchInto launches a background fill. It does not train the
// prefetcher (no runaway chains) and nobody waits on it.
func (l *l2Ctl) prefetchInto(block uint64) {
	if l.c.Peek(block) || l.pend[block] != nil {
		return
	}
	t := l.es.Now()
	tM := t + l.lat
	req := l.getReq()
	req.block, req.missAt = block, tM
	req.holdReq() // MSHR registration; released in finish
	l.pend[block] = req
	*l.cPrefetch++
	l.schedReq(tM, missPathCB, req)
}

// missPath launches the parallel data and (under EMCC) counter requests.
func (l *l2Ctl) missPath(req *readReq) {
	s := l.s
	tM := l.es.Now()

	emccOn := s.cfg.EMCC && s.secure() && (l.monitor == nil || l.monitor.Enabled())
	if emccOn {
		// Adaptive offload decision (Sec. IV-D): the bit travels with
		// the miss request.
		if l.aes == nil || s.pol.ShouldOffload(l.aes.QueueDelay()) {
			req.offload = true
			req.tr.MarkOffload()
			l.st.Inc(stats.EmccOffloadQueue)
		}
		// Serial counter lookup in L2 during spare cycles ('J').
		l.schedReq(tM+s.pol.LookupDelay, counterProbeCB, req)
	} else if s.cfg.EMCC && s.secure() {
		// Dynamic EMCC-off (Sec. IV-F): all cryptography at the MC.
		req.offload = true
		l.st.Inc(stats.EmccDynamicOffMiss)
	}

	// Data request to the block's home LLC slice.
	j := s.mesh.SliceIndexOf(req.block)
	slice := s.slices[j].tile
	req.tr.AddSpan(obs.SegNoCReq, tM, tM+s.oneway(l.tile, slice))
	req.holdReq()
	l.toSlice[j].send(tM+s.oneway(l.tile, slice), llcDataAccessCB, req)

	// XPT LLC-miss prediction: forward the miss straight to the MC in
	// parallel (idealised: only when the block really misses in LLC).
	// Serial engine only — Validate rejects XPT with Domains > 0.
	if s.cfg.XPT && !s.llcPeek(req.block) {
		mcTile := s.mesh.MCTile(s.mesh.MCOf(req.block))
		l.schedReq(tM+s.oneway(l.tile, mcTile), mcDataReadSpecCB, req)
	}
}

// counterProbe is the Sec. IV-C serial counter lookup in L2, followed by a
// speculative parallel fetch from LLC on miss.
func (l *l2Ctl) counterProbe(req *readReq) {
	s := l.s
	if req.done() {
		return
	}
	t := l.es.Now()
	// The probe span covers the serial-lookup wait ('J') plus the lookup.
	req.tr.AddSpan(obs.SegCtrProbeL2, req.missAt, t)
	cb := s.mc.home.CounterBlockOf(req.block)
	if l.c.Lookup(cb) {
		l.st.Inc(stats.EmccL2CtrHit)
		req.ctrKnown = true
		req.ctrReady = t + s.mc.decodeLat
		req.tr.MarkCtr(obs.CtrAtL2)
		req.tr.AddSpan(obs.SegCtrFetch, t, req.ctrReady)
		l.maybeStartAES(req)
		return
	}
	l.st.Inc(stats.EmccL2CtrMiss)
	l.st.Inc(stats.EmccSpecFetch)
	req.tr.Begin(obs.SegCtrFetch, t)
	j := s.mesh.SliceIndexOf(cb)
	req.holdReq()
	l.toSlice[j].send(t+s.oneway(l.tile, s.slices[j].tile), llcCounterAccessCB, req)
}

// counterArrived delivers a verified counter block to L2 (from LLC or,
// after an on-chip miss, from the MC).
func (l *l2Ctl) counterArrived(req *readReq, cb uint64) {
	s := l.s
	t := l.es.Now()
	l.insertCounter(cb)
	if req.llcMissed {
		// The fetch that triggered this counter already proved it
		// useful: its own data access missed in LLC (Fig 11).
		l.c.MarkUsed(cb)
	}
	if req.done() || req.ctrKnown {
		return
	}
	req.ctrKnown = true
	req.ctrReady = t + s.mc.decodeLat
	req.tr.Commit(obs.SegCtrFetch, req.ctrReady)
	l.maybeStartAES(req)
}

// missNote records that the request's data access missed in LLC: the home
// slice sends it alongside the MC forward, so the llcMissed bit and the
// Fig 11 used-counter mark are written where they are read — at the L2.
func (l *l2Ctl) missNote(req *readReq) {
	req.llcMissed = true
	l.c.MarkUsed(l.s.mc.home.CounterBlockOf(req.block))
}

// insertCounter caches a counter block in L2 under the 32 KB cap with the
// Fig 11 useless-fetch accounting.
func (l *l2Ctl) insertCounter(cb uint64) {
	l.st.Inc(stats.EmccCtrInserted)
	v, ok := l.c.Insert(cb, false, addr.KindCounter)
	if !ok {
		return
	}
	if v.Kind == addr.KindCounter {
		if !v.WasUsed {
			l.st.Inc(stats.EmccUseless)
		}
		return
	}
	l.spillVictim(v)
}

// maybeStartAES arms the gated AES start of Sec. IV-D: no earlier than the
// counter is decoded, and no earlier than one LLC-hit latency after the
// miss (so LLC hits never waste AES bandwidth at L2).
func (l *l2Ctl) maybeStartAES(req *readReq) {
	s := l.s
	if req.aesStarted || req.done() || req.offload || l.aes == nil {
		return
	}
	req.aesStarted = true
	start := req.ctrReady
	if gate := req.missAt + s.pol.LLCHitWait; gate > start {
		start = gate
	}
	l.schedReq(start, aesStartCB, req)
}

// aesStart reserves local AES bandwidth at the gated start time.
func (l *l2Ctl) aesStart(req *readReq) {
	if req.done() {
		req.aesStarted = false // never reserved; nothing wasted
		return
	}
	req.aesKnown = true
	req.aesDone = l.aes.Reserve(emcc.AESOpsPerRead, l.es.Now())
	issue := req.aesDone - l.aes.Latency()
	req.tr.AddSpan(obs.SegAESQueue, l.es.Now(), issue)
	req.tr.AddSpan(obs.SegAESCompute, issue, req.aesDone)
	l.maybeFinishCipher(req)
}

// completePlain finishes a request whose data came decrypted: an LLC hit
// (on-chip data is plaintext) or a tagged-verified MC response.
func (l *l2Ctl) completePlain(req *readReq, fromMC bool) {
	if req.done() {
		return
	}
	if fromMC {
		l.st.Inc(stats.EmccDecryptAtMC)
		if l.monitor != nil {
			l.monitor.OnDRAMFill()
		}
	}
	l.finish(req, l.es.Now())
}

// cipherArrived handles an untagged MC response: ciphertext plus
// MAC⊕dot-product, to be finished with the locally computed AES results.
func (l *l2Ctl) cipherArrived(req *readReq) {
	req.cipherHere = true
	req.cipherAt = l.es.Now()
	if l.monitor != nil {
		l.monitor.OnDRAMFill()
	}
	l.maybeFinishCipher(req)
}

// maybeFinishCipher completes the read once both the ciphertext and the
// local AES results are available (the 1 ns XOR + compare is the only
// data-dependent work, Sec. II).
func (l *l2Ctl) maybeFinishCipher(req *readReq) {
	if req.done() || !req.cipherHere || !req.aesKnown {
		return
	}
	at := req.cipherAt
	if req.aesDone > at {
		at = req.aesDone
	}
	l.st.Observe(stats.TsimCryptoExposureL2PS, float64(at-req.cipherAt))
	req.tr.MarkDecrypt(obs.DecAtL2, req.cipherAt, at)
	at += sim.NS(1)
	l.st.Inc(stats.EmccDecryptAtL2)
	req.finishAt = at
	l.schedReq(at, finishCipherCB, req)
}

// bipbipArrived handles a ciphertext response under CtrBipBip: the cache
// controller's tweakable cipher decrypts the block in a fixed BipBipLatency.
// With no counter to pre-resolve and no OTP to precompute, the full cipher
// pass sits on the critical path — the design's bet is that the pass is
// short enough not to matter.
func (l *l2Ctl) bipbipArrived(req *readReq) {
	if req.done() {
		return
	}
	at := l.es.Now()
	done := at + l.s.mc.bipbipLat
	l.st.Inc(stats.BipBipDecryptOps)
	l.st.Observe(stats.TsimCryptoExposureL2PS, float64(done-at))
	req.tr.MarkDecrypt(obs.DecAtL2, at, done)
	req.tr.AddSpan(obs.SegBipBipCipher, at, done)
	req.finishAt = done
	l.schedReq(done, finishCipherCB, req)
}

// finish inserts the block, wakes waiters and retires the MSHR.
func (l *l2Ctl) finish(req *readReq, at sim.Time) {
	if req.done() {
		return
	}
	atomic.StoreUint32(&req.completed, 1)
	l.fill(req.block, false, at)
	if l.pend[req.block] == req {
		delete(l.pend, req.block)
	}
	if !req.isStore && len(req.waiters) > 0 {
		l.aMissLat.Observe(float64(at - req.missAt))
	}
	for _, w := range req.waiters {
		w.complete(at)
	}
	req.release() // the MSHR registration hold
}

// fill inserts a data block into L2, spilling the victim into the LLC.
func (l *l2Ctl) fill(block uint64, dirty bool, at sim.Time) {
	v, ok := l.c.Insert(block, dirty, addr.KindData)
	if !ok {
		return
	}
	l.spillVictim(v)
}

// spillVictim routes an evicted L2 line: counters just account uselessness
// (the LLC keeps its own copy path), data travels to its home slice as a
// packed victim message (block<<1|dirty) — synchronously during warmup.
func (l *l2Ctl) spillVictim(v cache.Victim) {
	if v.Kind == addr.KindCounter {
		if !v.WasUsed {
			l.st.Inc(stats.EmccUseless)
		}
		return
	}
	s := l.s
	j := s.mesh.SliceIndexOf(v.Block)
	if s.warming {
		s.slices[j].insert(v.Block, v.Dirty, v.Kind)
		return
	}
	p := v.Block << 1
	if v.Dirty {
		p |= 1
	}
	g := s.slices[j]
	//lint:ignore allocpin sharded-engine path: box falls back to a per-message allocation only when Domains > 0, outside the serial-only 0-alloc pins
	l.toSlice[j].send(l.es.Now()+s.oneway(l.tile, g.tile), g.insertDataCB, s.box(p))
}

// invalidateCounter handles an MC counter-update invalidation (Fig 23).
func (l *l2Ctl) invalidateCounter(cb uint64) {
	if v, ok := l.c.Invalidate(cb); ok {
		l.st.Inc(stats.EmccInvalidations)
		if !v.WasUsed {
			l.st.Inc(stats.EmccUseless)
		}
	}
}
