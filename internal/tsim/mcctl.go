package tsim

import (
	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/emcc"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// mcCtl is the timing model of the secure memory controller: the private
// counter/metadata cache, counter verification walks, AES pools,
// decryption/verification orchestration, writeback counter updates with
// invalidation, and the split-counter overflow engine. A single logical
// authority serves both MC tiles (DESIGN.md simplification).
type mcCtl struct {
	s    *Sim
	home *mc.Home
	aes  *mc.AESPool
	ovf  *mc.OverflowEngine

	ctrCacheLat sim.Time
	decodeLat   sim.Time

	// Counter-free direct-cipher state (cached at construction so the hot
	// paths never re-derive them).
	bipbipLat sim.Time // CtrBipBip: fixed cipher latency charged at L2
	insramOps int      // CtrInSRAM: 16 B lanes per block reserved per access

	pendData map[uint64]*mcDataPending
	pendMeta map[uint64]*metaFetch

	toSlice []port // metadata probes and inserts to the home slices
	toCore  []port // data responses, counter deliveries, invalidations

	// Prebound handlers for packed-payload messages arriving at the hub
	// (bound once in newMCCtl).
	freePend  *mcDataPending // mcDataPending pool (hub-owned)
	freeCont  *metaCont      // metadata-continuation pool (hub-owned)
	freeFetch *metaFetch     // metaFetch pool (hub-owned)

	wbDataCB        func(any) // boxed victim block from a slice (data)
	wbMetaCB        func(any) // boxed victim block from a slice (metadata)
	metaProbeDoneCB func(any) // packed mb<<1|hit probe reply from a slice
}

// mcDataPending is the MC-side MSHR for one data block read.
type mcDataPending struct {
	block      uint64
	reqs       []*readReq
	needCrypto bool // MC decrypts/verifies (baseline, offload, on-chip counter miss)
	confirmed  bool // a confirmed LLC miss arrived (not just an XPT prediction)
	ctrStarted bool
	aesKnown   bool
	aesDone    sim.Time
	dataHere   bool
	dataAt     sim.Time
	responded  bool

	// fillDone and ctrDone are the entry's DRAM-fill and counter-path
	// completion callbacks, bound once when the entry is first allocated:
	// each captures the entry itself, so pooled reuse (the entry's
	// identity never changes) keeps the data read path allocation-free.
	fillDone func(at sim.Time)
	ctrDone  func(at sim.Time)
	next     *mcDataPending // freelist link
}

// obs reports the MSHR entry's trace context: the first traced requester.
// MC-side work (DRAM fill, counter walk, AES) is attributed to it; merged
// requesters keep only their own end-to-end latency.
func (p *mcDataPending) obs() *obs.Req {
	for _, r := range p.reqs {
		if r.tr != nil {
			return r.tr
		}
	}
	return nil
}

// getPending takes an MSHR entry from the pool, reset for req's block.
func (m *mcCtl) getPending(req *readReq) *mcDataPending {
	p := m.freePend
	if p == nil {
		p = &mcDataPending{}
		p.fillDone = func(at sim.Time) {
			p.dataHere, p.dataAt = true, at
			m.maybeRespond(p)
		}
		p.ctrDone = func(at sim.Time) {
			ready := at + m.decodeLat
			ob := p.obs()
			ob.Commit(obs.SegCtrFetch, ready)
			p.aesDone = m.aes.Reserve(emcc.AESOpsPerRead, ready)
			issue := p.aesDone - m.aes.Latency()
			ob.AddSpan(obs.SegAESQueue, ready, issue)
			ob.AddSpan(obs.SegAESCompute, issue, p.aesDone)
			p.aesKnown = true
			m.maybeRespond(p)
		}
	} else {
		m.freePend = p.next
	}
	*p = mcDataPending{block: req.block, reqs: append(p.reqs[:0], req), fillDone: p.fillDone, ctrDone: p.ctrDone}
	return p
}

// putPending retires a responded MSHR entry. Called only after the
// response loop: nothing schedules the entry's fillDone or holds the
// entry past its response, so reuse is safe.
func (m *mcCtl) putPending(p *mcDataPending) {
	for i := range p.reqs {
		p.reqs[i] = nil
	}
	p.next = m.freePend
	m.freePend = p
}

// metaCont is one pooled continuation in the metadata machinery. The
// whole counter path runs hub-side in both engines, so a plain freelist
// keeps it allocation-free. The func(at) bodies are bound once per entry
// (each captures only the entry) and read the argument fields set at
// checkout, replacing the per-call closures the hot write path used to
// allocate.
type metaCont struct {
	m      *mcCtl
	block  uint64            // bump: block whose counter advances; fetch/defer: the metadata block
	isData bool              // bump: data access (EMCC invalidation broadcast)
	at     sim.Time          // verify: DRAM arrival; deferred waiter: wake time
	done   func(at sim.Time) // deferred hit-path waiter
	next   *metaCont

	bumpDone   func(at sim.Time) // bumpCounter's counter-advance body
	fetchDone  func(at sim.Time) // fetchMetaFromDRAM's DRAM completion
	verifyDone func(at sim.Time) // parent-verification completion
}

func (m *mcCtl) getCont() *metaCont {
	c := m.freeCont
	if c == nil {
		c = &metaCont{m: m}
		c.bumpDone = func(at sim.Time) { c.runBump(at) }
		c.fetchDone = func(at sim.Time) { c.runFetch(at) }
		c.verifyDone = func(at sim.Time) { c.runVerify(at) }
		return c
	}
	m.freeCont = c.next
	return c
}

func (m *mcCtl) putCont(c *metaCont) {
	c.done = nil
	c.next = m.freeCont
	m.freeCont = c
}

// metaContCallCB fires a deferred counter-cache-hit waiter (fetchMeta).
func metaContCallCB(a any) {
	c := a.(*metaCont)
	done, at := c.done, c.at
	c.m.putCont(c)
	done(at)
}

// metaContDRAMCB starts the DRAM fetch after a counter-cache (and, when
// skipped, LLC) miss resolved at the cache lookup latency (fetchMeta).
func metaContDRAMCB(a any) {
	c := a.(*metaCont)
	m, mb := c.m, c.block
	m.putCont(c)
	m.fetchMetaFromDRAM(mb)
}

// runFetch resumes fetchMetaFromDRAM once the metadata burst arrives:
// tree roots verify against on-chip state, inner nodes against their
// (recursively fetched) parent.
func (c *metaCont) runFetch(at sim.Time) {
	m, mb := c.m, c.block
	parent, ok := m.home.Space.ParentOf(mb)
	if !ok {
		m.putCont(c)
		m.insertMeta(mb)
		m.completeMeta(mb, at)
		return
	}
	c.at = at // keep the entry: it becomes the verification continuation
	m.fetchMeta(parent, false, c.verifyDone)
}

// runVerify completes an inner metadata block once its parent is usable.
func (c *metaCont) runVerify(pAt sim.Time) {
	m, mb, at := c.m, c.block, c.at
	m.putCont(c)
	start := at
	if pAt > start {
		start = pAt
	}
	verified := m.aes.Reserve(1, start) + sim.NS(1)
	m.insertMeta(mb)
	m.completeMeta(mb, verified)
}

// runBump advances block's counter once its parent metadata is verified
// (bumpCounter's continuation).
func (c *metaCont) runBump(sim.Time) {
	m, block, isData := c.m, c.block, c.isData
	m.putCont(c)
	parent, _ := m.home.Space.ParentOf(block)
	ov := m.home.IncrementCounterOf(block)
	m.home.MarkMetaDirty(parent)
	if m.s.cfg.EMCC && isData {
		m.invalidateL2Counters(parent)
	}
	if !ov.Happened {
		return
	}
	first, n := m.home.Space.CoveredRange(parent)
	m.ovf.Start(first, n, ov.Level)
	if m.s.cfg.EMCC && ov.Level == 0 {
		m.invalidateL2Counters(parent)
	}
}

func (m *mcCtl) getFetch() *metaFetch {
	f := m.freeFetch
	if f == nil {
		return &metaFetch{}
	}
	m.freeFetch = f.next
	return f
}

type metaFetch struct {
	waiters []func(at sim.Time)
	next    *metaFetch // freelist link
}

func newMCCtl(s *Sim, dataBytes int64) *mcCtl {
	m := &mcCtl{
		s:           s,
		ctrCacheLat: s.cfg.CtrCacheLatency,
		pendData:    make(map[uint64]*mcDataPending),
		pendMeta:    make(map[uint64]*metaFetch),
	}
	m.wbDataCB = m.handleWBData
	m.wbMetaCB = m.handleWBMeta
	m.metaProbeDoneCB = m.handleMetaProbeDone
	if !s.secure() {
		return m
	}
	switch s.cfg.Counter {
	case config.CtrBipBip:
		// Counter-free cipher in the cache controller: no metadata home,
		// no MC AES pool, no overflow engine. Decryption is charged at L2
		// on fill (see l2Ctl.bipbipArrived); encryption on writeback is
		// dedicated pipeline hardware, so only the op count is recorded.
		m.bipbipLat = s.cfg.BipBipLatency
		return m
	case config.CtrInSRAM:
		// Direct in-SRAM AES at the MC: the pool's latency and bandwidth
		// derive from the SRAM geometry instead of the fixed AESLatency.
		// No metadata home or overflow engine either.
		m.insramOps = int(s.cfg.BlockSize / 16)
		if m.insramOps < 1 {
			m.insramOps = 1
		}
		m.aes = mc.NewAESPool(s.eng, config.InSRAMAESOpsPerSec(s.cfg), config.InSRAMAESLatency(s.cfg))
		return m
	}
	m.home = mc.NewHome(s.cfg, dataBytes)
	m.home.SetRecorder(s.ivr)
	m.decodeLat = m.home.Org.DecodeLatency()
	mcShare := 1.0
	if s.cfg.EMCC {
		mcShare = 1 - s.cfg.EMCCAESFraction
		if mcShare <= 0 {
			mcShare = 0.05 // the MC always keeps enough for counter verification
		}
	}
	m.aes = mc.NewAESPool(s.eng, s.cfg.AESPeakOpsPerSec*mcShare, s.cfg.AESLatency)
	m.ovf = mc.NewOverflowEngine(s.eng, s.st, s.cfg.OverflowMaxLive, s.cfg.OverflowSlots, m.issueOverflow)
	return m
}

// handleWBData unboxes a dirty data-victim writeback arriving over a
// slice's toHub link.
func (m *mcCtl) handleWBData(a any) { m.writebackData(m.s.unbox(a)) }

// handleWBMeta unboxes a dirty metadata-victim writeback arriving over a
// slice's toHub link.
func (m *mcCtl) handleWBMeta(a any) { m.writebackMeta(m.s.unbox(a)) }

// handleMetaProbeDone unboxes a home slice's counter-probe verdict
// (mb<<1|hit) arriving over its toHub link.
func (m *mcCtl) handleMetaProbeDone(a any) { m.metaProbeDone(m.s.unbox(a)) }

// ---- Data read path ----

// dataRead receives a data miss request. confirmed=false marks an XPT
// prediction: the DRAM data access starts speculatively, but the MC's
// counter/cryptography path — which has verification side effects — only
// starts once the confirmed LLC miss arrives (Fig 14b: under XPT the
// baseline's counter access in LLC still follows the data's LLC lookup).
func (m *mcCtl) dataRead(req *readReq, confirmed bool) {
	if req.done() {
		return
	}
	if req.mcStarted {
		if confirmed {
			if p := m.pendData[req.block]; p != nil && !p.responded {
				m.confirm(p)
			}
		}
		return
	}
	// Sec. V: the MC rejects incoming LLC requests while a third
	// overflow is outstanding.
	if m.ovf != nil && m.ovf.Blocked() {
		m.s.st.Inc(stats.TsimMCRejectedWhileBlocked)
		req.tr.Begin(obs.SegMCQueue, m.s.eng.Now())
		retry := mcDataReadSpecCB
		if confirmed {
			retry = mcDataReadConfCB
		}
		m.s.schedReq(m.s.eng.Now()+sim.NS(200), retry, req)
		return
	}
	req.mcStarted = true

	if p := m.pendData[req.block]; p != nil && !p.responded {
		req.holdReq() // MSHR membership; the hold rides into the response event
		p.reqs = append(p.reqs, req)
		if m.reqNeedsMCCrypto(req) && !p.needCrypto {
			p.needCrypto = true
		}
		if confirmed {
			m.confirm(p)
		} else if p.confirmed && p.needCrypto {
			m.startCounterPath(p)
		}
		return
	}
	req.holdReq() // MSHR membership; the hold rides into the response event
	p := m.getPending(req)
	p.needCrypto = m.reqNeedsMCCrypto(req)
	m.pendData[req.block] = p
	// One fill per MSHR entry: internal/check's conservation rule compares
	// this against the DRAM model's issued data reads after drain.
	m.s.st.Inc(stats.TsimMCDataFill)
	m.enqueueDRAM(req.block, false, dram.TrafficData, req.tr, p.fillDone)
	if confirmed {
		m.confirm(p)
	}
}

// confirm marks the miss as real, releasing the counter path and any
// response that was held for confirmation.
func (m *mcCtl) confirm(p *mcDataPending) {
	p.confirmed = true
	if p.needCrypto {
		m.startCounterPath(p)
	}
	m.maybeRespond(p)
}

// reqNeedsMCCrypto decides whether the MC must run the counter-mode
// decrypt/verify path for this read: always for counter-backed designs
// outside EMCC; under EMCC only when the miss request carries the offload
// bit (counter-miss upgrades arrive via counterMissFromL2). The counter-free
// designs never take it — CtrInSRAM's direct cipher is charged in
// maybeRespond and CtrBipBip decrypts at L2.
func (m *mcCtl) reqNeedsMCCrypto(req *readReq) bool {
	if !m.s.counters() {
		return false
	}
	if !m.s.cfg.EMCC {
		return true
	}
	return req.offload
}

// startCounterPath resolves the data block's counter at the MC and books
// the AES work for decryption + verification.
func (m *mcCtl) startCounterPath(p *mcDataPending) {
	if p.ctrStarted {
		return
	}
	p.ctrStarted = true
	cb := m.home.CounterBlockOf(p.block)
	ob := p.obs()
	ob.MarkCtr(obs.CtrAtMC)
	ob.Begin(obs.SegCtrFetch, m.s.eng.Now())
	m.fetchMeta(cb, false, p.ctrDone)
}

// maybeRespond sends the data response once its conditions are met.
func (m *mcCtl) maybeRespond(p *mcDataPending) {
	if p.responded || !p.dataHere {
		return
	}
	if p.needCrypto && !p.aesKnown {
		return
	}
	if m.s.secure() && !p.confirmed && !p.needCrypto {
		// An EMCC untagged response may only answer a confirmed miss;
		// a speculative read that beat the LLC lookup waits for it.
		return
	}
	// Conservation: one MSHR entry ⇔ one DRAM fill ⇔ one response. A
	// pending entry that lost its registration (or its requesters) would
	// mean a fill was issued twice or a response answers nobody.
	if rec := m.s.ivr; rec.On() {
		if m.pendData[p.block] != p {
			rec.Failf("mc", "data fill for block %#x responds without an owning MSHR entry", p.block)
		}
		if len(p.reqs) == 0 {
			rec.Failf("mc", "data fill for block %#x completes with no waiting requests", p.block)
		}
	}
	p.responded = true
	delete(m.pendData, p.block)

	var leave sim.Time
	tagged := false
	bipbip := false
	switch {
	case !m.s.secure():
		leave = p.dataAt
	case p.needCrypto:
		// Decrypt + verify at MC: XOR and dot product after AES.
		leave = p.dataAt
		if p.aesDone > leave {
			leave = p.aesDone
		}
		m.s.st.Observe(stats.TsimCryptoExposureMCPS, (leave - p.dataAt).Nanoseconds())
		for _, r := range p.reqs {
			r.tr.MarkDecrypt(obs.DecAtMC, p.dataAt, leave)
		}
		leave += sim.NS(1)
		tagged = true
	case m.s.cfg.Counter == config.CtrInSRAM:
		// Direct in-SRAM AES: unlike counter-mode OTPs, the cipher can
		// only start once the ciphertext is on-chip, so the whole pass
		// (queue + geometry-derived compute) is exposed by construction.
		leave = m.aes.Reserve(m.insramOps, p.dataAt)
		m.s.st.Inc(stats.InSRAMDecryptOps)
		m.s.st.Observe(stats.TsimCryptoExposureMCPS, (leave - p.dataAt).Nanoseconds())
		for _, r := range p.reqs {
			r.tr.MarkDecrypt(obs.DecAtMC, p.dataAt, leave)
			r.tr.AddSpan(obs.SegInSRAMCipher, p.dataAt, leave)
		}
		leave += sim.NS(1)
		tagged = true
	case m.s.cfg.Counter == config.CtrBipBip:
		// Ciphertext is forwarded as-is; the cache controller's tweakable
		// cipher decrypts on arrival at L2 (bipbipArrived).
		leave = p.dataAt + sim.NS(1)
		bipbip = true
	default:
		// EMCC untagged response: compute the ciphertext dot product
		// and embed MAC⊕dot (Sec. IV-D).
		leave = p.dataAt + sim.NS(1)
	}
	// Each request's MSHR-membership hold transfers to its response
	// arrival event, whose callback releases it.
	arrival := cipherArrivedCB
	switch {
	case !m.s.secure():
		arrival = completePlainLocalCB
	case tagged:
		arrival = completePlainMCCB
	case bipbip:
		arrival = bipbipArrivedCB
	}
	mcTile := m.s.mesh.MCTile(m.s.mesh.MCOf(p.block))
	slice := m.s.sliceFor(p.block).tile
	for _, r := range p.reqs {
		arr := leave + m.s.oneway(mcTile, slice) + m.s.oneway(slice, r.l2.tile)
		r.tr.AddSpan(obs.SegNoCResp, leave, arr)
		m.toCore[r.l2.id].send(arr, arrival, r)
	}
	m.putPending(p)
}

// counterMissFromL2 handles an EMCC counter request that missed on-chip
// (L2 and LLC): the MC takes over cryptography for the data access when it
// still can, and in any case resolves, verifies and distributes the
// counter block to the LLC and the requesting L2 (Sec. IV-D).
func (m *mcCtl) counterMissFromL2(req *readReq, cb uint64) {
	m.s.st.Inc(stats.TsimCtrMissOnchip)
	req.tr.MarkCtr(obs.CtrAtMC)
	if p := m.pendData[req.block]; p != nil && !p.responded && !p.needCrypto {
		// The counter request is real (not speculative): the MC can
		// take the cryptography over right away.
		p.needCrypto = true
		m.startCounterPath(p)
	}
	// The request already missed in LLC on its way here; go straight to
	// the counter cache and DRAM. The metadata fetch's continuation keeps
	// a reference to req across an unbounded wait, so it takes a hold.
	req.holdReq()
	m.fetchMeta(cb, true, req.ctrMissDone)
}

// ctrMissFetchDone resumes a counterMissFromL2 request once the MC holds
// a verified counter: the copy travels MC -> home slice (cached there)
// and on to the requesting L2. Bound once per pooled readReq.
func ctrMissFetchDone(req *readReq, at sim.Time) {
	m := req.l2.s.mc
	cb := m.home.CounterBlockOf(req.block)
	mcTile := m.s.mesh.MCTile(m.s.mesh.MCOf(cb))
	j := m.s.mesh.SliceIndexOf(cb)
	g := m.s.slices[j]
	insAt := at + m.s.oneway(mcTile, g.tile)
	m.toSlice[j].send(insAt, g.insertMetaCB, m.s.box(cb<<8|uint64(addr.KindCounter)<<1))
	req.holdReq()
	m.toCore[req.l2.id].send(insAt+m.s.oneway(g.tile, req.l2.tile), counterArrivedCB, req)
	req.release()
}

// ---- Metadata fetch (counter cache -> LLC -> DRAM + verification) ----

// fetchMeta obtains a verified metadata block at the MC, calling done with
// the time it becomes usable. Concurrent fetches of one block merge.
// skipLLC is set when the caller already observed an LLC miss for mb.
func (m *mcCtl) fetchMeta(mb uint64, skipLLC bool, done func(at sim.Time)) {
	t := m.s.eng.Now()
	if m.home.LookupMeta(mb) {
		at := t + m.ctrCacheLat
		c := m.getCont()
		c.done, c.at = done, at
		m.s.atCall(at, metaContCallCB, c)
		return
	}
	if f := m.pendMeta[mb]; f != nil {
		f.waiters = append(f.waiters, done)
		return
	}
	f := m.getFetch()
	f.waiters = append(f.waiters, done)
	m.pendMeta[mb] = f
	missAt := t + m.ctrCacheLat
	if m.s.cfg.CountersInLLC && !skipLLC {
		mcTile := m.s.mesh.MCTile(m.s.mesh.MCOf(mb))
		j := m.s.mesh.SliceIndexOf(mb)
		g := m.s.slices[j]
		m.toSlice[j].send(missAt+m.s.oneway(mcTile, g.tile), g.metaProbeCB, m.s.box(mb))
		return
	}
	c := m.getCont()
	c.block = mb
	m.s.atCall(missAt, metaContDRAMCB, c)
}

// metaProbeDone resumes a metadata fetch with the home slice's probe
// verdict (packed mb<<1|hit; see llcSlice.handleMetaProbe): a hit fills
// the MC's cache and wakes the waiters, a miss falls through to DRAM.
func (m *mcCtl) metaProbeDone(p uint64) {
	mb, hit := p>>1, p&1 != 0
	if hit {
		m.insertMeta(mb)
		m.completeMeta(mb, m.s.eng.Now())
		return
	}
	m.fetchMetaFromDRAM(mb)
}

// fetchMetaFromDRAM reads a metadata block from memory and verifies it
// against its parent (fetched recursively) before use.
func (m *mcCtl) fetchMetaFromDRAM(mb uint64) {
	c := m.getCont()
	c.block = mb
	m.enqueueDRAM(mb, false, dram.TrafficCounter, nil, c.fetchDone)
}

// insertMeta fills the MC's metadata cache. Every displaced metadata block
// — clean or dirty — spills into the LLC (second-level counter cache).
func (m *mcCtl) insertMeta(mb uint64) {
	v, ok := m.home.InsertMeta(mb, false)
	if ok {
		m.spillMeta(v.Block, v.Dirty)
	}
}

// completeMeta wakes every waiter of a finished metadata fetch.
func (m *mcCtl) completeMeta(mb uint64, at sim.Time) {
	f := m.pendMeta[mb]
	if f == nil {
		return
	}
	delete(m.pendMeta, mb)
	for _, w := range f.waiters {
		w(at)
	}
	for i := range f.waiters {
		f.waiters[i] = nil
	}
	f.waiters = f.waiters[:0]
	f.next = m.freeFetch
	m.freeFetch = f
}

// spillMeta routes metadata leaving the MC's cache: into the LLC when
// counters live there, else straight to DRAM when dirty.
func (m *mcCtl) spillMeta(mb uint64, dirty bool) {
	if m.s.cfg.CountersInLLC {
		kind := m.home.Space.Kind(mb)
		if m.s.warming {
			m.s.sliceFor(mb).insert(mb, dirty, kind)
			return
		}
		mcTile := m.s.mesh.MCTile(m.s.mesh.MCOf(mb))
		j := m.s.mesh.SliceIndexOf(mb)
		g := m.s.slices[j]
		p := mb<<8 | uint64(kind)<<1
		if dirty {
			p |= 1
		}
		m.toSlice[j].send(m.s.eng.Now()+m.s.oneway(mcTile, g.tile), g.insertMetaCB, m.s.box(p))
		return
	}
	if dirty {
		m.writebackMeta(mb)
	}
}

// ---- Writebacks ----

// writebackData handles a dirty data block arriving from the LLC: encrypt
// (AES bandwidth), update its counter, invalidate EMCC L2 copies, write.
func (m *mcCtl) writebackData(block uint64) {
	if m.s.warming {
		// Counter-free designs have no counter values to warm.
		if m.s.counters() {
			m.s.warmBump(block)
			if m.s.cfg.EMCC {
				for _, l2 := range m.s.l2s {
					l2.invalidateCounter(m.home.CounterBlockOf(block))
				}
			}
		}
		return
	}
	switch {
	case m.s.counters():
		m.aes.ReserveLow(emcc.AESOpsPerWrite, m.s.eng.Now())
		m.bumpCounter(block, true)
	case m.s.cfg.Counter == config.CtrBipBip:
		// Dedicated cipher pipeline in the controller: off the critical
		// path, no shared pool to queue on, no counter to advance.
		m.s.st.Inc(stats.BipBipEncryptOps)
	case m.s.cfg.Counter == config.CtrInSRAM:
		// Background-priority encryption on the in-SRAM arrays.
		m.aes.ReserveLow(m.insramOps, m.s.eng.Now())
		m.s.st.Inc(stats.InSRAMEncryptOps)
	}
	m.enqueueDRAM(block, true, dram.TrafficData, nil, nil)
}

// writebackMeta handles a dirty metadata block reaching DRAM.
func (m *mcCtl) writebackMeta(mb uint64) {
	if m.s.warming {
		m.s.warmBump(mb)
		return
	}
	m.enqueueDRAM(mb, true, dram.TrafficCounter, nil, nil)
	m.bumpCounter(mb, false)
}

// bumpCounter advances the write counter protecting `block`, handling
// overflow and EMCC invalidation. The owning counter block is fetched to
// the MC first (bandwidth on the writeback path).
func (m *mcCtl) bumpCounter(block uint64, isData bool) {
	parent, ok := m.home.Space.ParentOf(block)
	if !ok {
		return // root counter lives on-chip
	}
	c := m.getCont()
	c.block, c.isData = block, isData
	m.fetchMeta(parent, false, c.bumpDone)
}

// invalidateL2Counters broadcasts a counter-block invalidation to every L2
// (the Home-Agent-style circuit of Sec. IV-C).
func (m *mcCtl) invalidateL2Counters(cb uint64) {
	now := m.s.eng.Now()
	mcTile := m.s.mesh.MCTile(m.s.mesh.MCOf(cb))
	for c, l2 := range m.s.l2s {
		m.toCore[c].send(now+m.s.oneway(mcTile, l2.tile), l2.invCtrCB, m.s.box(cb))
	}
}

// ---- DRAM plumbing ----

// enqueueDRAM submits a request, retrying while the target queue is full.
// ob, when non-nil, is the traced request the access serves: queue-full
// retry time is attributed to SegMCQueue and the DRAM model attributes
// queue/service time itself.
func (m *mcCtl) enqueueDRAM(block uint64, write bool, kind dram.TrafficKind, ob *obs.Req, done func(at sim.Time)) {
	m.enqueueReq(m.s.dram.NewRequest(block, write, kind, done, ob))
}

// enqueueReq pushes one pooled request, re-using the same request across
// queue-full retries.
func (m *mcCtl) enqueueReq(r *dram.Request) {
	if !m.s.dram.Enqueue(r) {
		m.s.st.Inc(stats.TsimDRAMQueueFullRetry)
		r.Obs.Begin(obs.SegMCQueue, m.s.eng.Now())
		m.s.eng.After(sim.NS(100), func() { m.enqueueReq(r) })
		return
	}
	r.Obs.Commit(obs.SegMCQueue, m.s.eng.Now())
}

// issueOverflow injects one overflow re-encryption access, charging the AES
// work for re-encrypting a block (decrypt 5 + encrypt 8) on its read.
func (m *mcCtl) issueOverflow(block uint64, write bool, level int, done func(at sim.Time)) bool {
	kind := dram.TrafficOverflowL0
	if level > 0 {
		kind = dram.TrafficOverflowHi
	}
	r := m.s.dram.NewRequest(block, write, kind, done, nil)
	if !m.s.dram.Enqueue(r) {
		m.s.dram.Recycle(r)
		return false
	}
	if !write {
		m.aes.ReserveLow(emcc.AESOpsPerRead+emcc.AESOpsPerWrite, m.s.eng.Now())
	}
	return true
}
