package tsim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// oneShot is a generator issuing a single cold load then idling on an
// L1-resident address, so exactly one request traverses the hierarchy.
type oneShot struct {
	target uint64
	n      int
}

func (g *oneShot) Name() string     { return "oneshot" }
func (g *oneShot) Footprint() int64 { return 1 << 20 }
func (g *oneShot) Next() workload.Access {
	g.n++
	if g.n == 1 {
		return workload.Access{Addr: g.target, NonMem: 0}
	}
	return workload.Access{Addr: g.target, NonMem: 0} // L1 hit afterwards
}

// TestSingleColdMissLatencyNonSecure hand-computes the latency of one cold
// load through L1 -> L2 -> LLC(miss) -> MC -> DRAM and back, and checks the
// simulator reproduces it exactly. Any double-charged or dropped latency
// component in the request path breaks this test.
func TestSingleColdMissLatencyNonSecure(t *testing.T) {
	cfg := config.Default()
	cfg.Counter = config.CtrNone
	cfg.CountersInLLC = false
	cfg.Cores = 1

	const target = uint64(0x40000)
	gens := []workload.Generator{&oneShot{target: target}}
	s, err := New(&cfg, Options{
		Cores: 1, Refs: 2, Generators: gens, DataBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	block := addr.BlockOf(target)
	coreTile := s.mesh.CoreTile(0)
	slice := s.mesh.SliceOf(block)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(block))

	want := cfg.L1Latency + // L1 lookup (miss)
		cfg.L2Latency + // L2 lookup (miss)
		s.mesh.OneWay(coreTile, slice) + // request to home slice
		cfg.L3TagLatency + // LLC tag (miss)
		s.mesh.OneWay(slice, mcTile) + // forward to MC
		cfg.TRCD + cfg.TCL + cfg.BurstLatency + // cold DRAM access
		s.mesh.OneWay(mcTile, slice) + // response via the slice
		s.mesh.OneWay(slice, coreTile) // back to L2

	got := s.st.Accum("tsim/l2-read-miss-latency-ps").Mean() / 1000
	// The recorded latency runs from L2-miss detection (L1+L2 already
	// paid) to data at L2.
	wantRecorded := (want - cfg.L1Latency - cfg.L2Latency).Nanoseconds()
	if got != wantRecorded {
		t.Fatalf("cold miss latency = %.3f ns, hand-computed %.3f ns", got, wantRecorded)
	}
}

// nonSecureColdMiss reproduces TestSingleColdMissLatencyNonSecure's hand
// computation: the recorded L2-miss latency (L1+L2 lookup already paid) of
// one cold load in a machine with the given config's NoC/DRAM timings.
func nonSecureColdMiss(s *Sim, target uint64) sim.Time {
	cfg := s.cfg
	block := addr.BlockOf(target)
	coreTile := s.mesh.CoreTile(0)
	slice := s.mesh.SliceOf(block)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(block))
	return s.mesh.OneWay(coreTile, slice) +
		cfg.L3TagLatency +
		s.mesh.OneWay(slice, mcTile) +
		cfg.TRCD + cfg.TCL + cfg.BurstLatency +
		s.mesh.OneWay(mcTile, slice) +
		s.mesh.OneWay(slice, coreTile)
}

// TestSingleColdMissLatencyBipBip: the counter-free tweakable cipher adds
// exactly the MC forward tick plus the fixed cipher latency at L2 —
// nothing else. No counter fetch, no AES queue, no tree walk.
func TestSingleColdMissLatencyBipBip(t *testing.T) {
	cfg := config.Default()
	cfg.Counter = config.CtrBipBip
	cfg.CountersInLLC = false
	cfg.Cores = 1

	const target = uint64(0x40000)
	s, err := New(&cfg, Options{
		Cores: 1, Refs: 2, Generators: []workload.Generator{&oneShot{target: target}}, DataBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	want := (nonSecureColdMiss(s, target) +
		sim.NS(1) + // MC response tick (ciphertext forwarded as-is)
		cfg.BipBipLatency). // tweakable cipher at the cache controller
		Nanoseconds()
	got := s.st.Accum("tsim/l2-read-miss-latency-ps").Mean() / 1000
	if got != want {
		t.Fatalf("bipbip cold miss = %.3f ns, hand-computed %.3f ns", got, want)
	}
}

// TestSingleColdMissLatencyInSRAM: the direct cipher cannot start before
// the ciphertext arrives, so a cold miss pays the full in-SRAM pass: the
// pool serialises the block's four 16 B lanes at the geometry-derived op
// interval, then one wave latency, then the response tick.
func TestSingleColdMissLatencyInSRAM(t *testing.T) {
	cfg := config.Default()
	cfg.Counter = config.CtrInSRAM
	cfg.CountersInLLC = false
	cfg.Cores = 1

	const target = uint64(0x40000)
	s, err := New(&cfg, Options{
		Cores: 1, Refs: 2, Generators: []workload.Generator{&oneShot{target: target}}, DataBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	// AESPool.Reserve(n, at) on an idle pool: last op issues at
	// at + (n-1)*interval and completes after the pool latency.
	lanes := int64(cfg.BlockSize / 16)
	interval := sim.Time(float64(sim.Second)/config.InSRAMAESOpsPerSec(&cfg) + 0.5)
	want := (nonSecureColdMiss(s, target) +
		sim.Time(lanes-1)*interval + // lane serialisation on the SRAM arrays
		config.InSRAMAESLatency(&cfg) + // one full AES pass
		sim.NS(1)). // MC response tick
		Nanoseconds()
	got := s.st.Accum("tsim/l2-read-miss-latency-ps").Mean() / 1000
	if got != want {
		t.Fatalf("insram cold miss = %.3f ns, hand-computed %.3f ns", got, want)
	}
}

// TestSingleColdMissLatencyMorphable extends the hand computation with the
// secure path: the counter also misses everywhere, so the response waits
// for the serial counter chain (MC cache -> LLC -> DRAM -> verify -> AES).
func TestSingleColdMissLatencyMorphable(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 1

	const target = uint64(0x40000)
	gens := []workload.Generator{&oneShot{target: target}}
	s, err := New(&cfg, Options{
		Cores: 1, Refs: 2, Generators: gens, DataBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	block := addr.BlockOf(target)
	coreTile := s.mesh.CoreTile(0)
	slice := s.mesh.SliceOf(block)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(block))
	// Request reaches the MC (confirmed miss).
	atMC := cfg.L2Latency +
		s.mesh.OneWay(coreTile, slice) +
		cfg.L3TagLatency +
		s.mesh.OneWay(slice, mcTile)

	// The multi-level verification recursion is involved; assert bounds
	// rather than equality: the secure read must finish after the
	// counter's own cold DRAM access plus decode and AES, and stay below
	// an absurd ceiling.
	ctr := atMC + cfg.CtrCacheLatency
	lowerBound := (ctr + cfg.TRCD + cfg.TCL + cfg.BurstLatency + cfg.CtrDecodeLatency + cfg.AESLatency - cfg.L2Latency).Nanoseconds()

	got := s.st.Accum("tsim/l2-read-miss-latency-ps").Mean() / 1000
	if got < lowerBound {
		t.Fatalf("secure cold miss %.1f ns below structural lower bound %.1f ns", got, lowerBound)
	}
	if got > 4*lowerBound {
		t.Fatalf("secure cold miss %.1f ns absurdly above lower bound %.1f ns", got, lowerBound)
	}
	// And it must exceed the non-secure path for the same address.
	nsCfg := config.Default()
	nsCfg.Counter = config.CtrNone
	nsCfg.CountersInLLC = false
	nsCfg.Cores = 1
	ns, err := New(&nsCfg, Options{
		Cores: 1, Refs: 2, Generators: []workload.Generator{&oneShot{target: target}}, DataBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ns.Run()
	if got <= ns.st.Accum("tsim/l2-read-miss-latency-ps").Mean()/1000 {
		t.Fatal("secure cold miss not slower than non-secure")
	}
}
