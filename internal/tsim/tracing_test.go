package tsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tracedRun executes one traced tsim run and returns its stats set, the
// tracer and the Chrome stream (nil writer when buf is nil).
func tracedRun(t *testing.T, mutate func(*config.Config), scale workload.Scale, refs int64, buf *bytes.Buffer) (*stats.Set, *obs.Tracer) {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(&cfg, Options{Benchmark: "canneal", Seed: 3, Refs: refs, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.Options{
		Stats:        s.Stats(),
		SamplePeriod: sim.Microsecond,
		Meta:         map[string]string{"test": "tracing"},
	}
	if buf != nil {
		o.Writer = buf
	}
	tr := obs.New(o)
	if err := s.SetTracer(tr); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return s.Stats(), tr
}

// TestTracedRunAttributesLatency sanity-checks the end-to-end wiring: every
// L1 miss is traced, segment attribution lands in the stats sink, and the
// slowest-request table is populated and sorted.
func TestTracedRunAttributesLatency(t *testing.T) {
	st, tr := tracedRun(t, func(c *config.Config) { c.EMCC = true }, workload.TestScale(), 60_000, nil)
	if st.Counter("obs/req-traced") == 0 {
		t.Fatal("no requests traced")
	}
	for _, seg := range []string{"l1", "l2-lookup", "dram-service", "ctr-probe-l2", "aes-compute"} {
		if st.Accum("obs/seg/"+seg+"-ns").Count == 0 {
			t.Errorf("segment %s never attributed", seg)
		}
	}
	if st.Accum("obs/sample/mshr-outstanding").Count == 0 {
		t.Error("periodic sampler never fired")
	}
	top := tr.TopRequests()
	if len(top) == 0 {
		t.Fatal("empty top-N table")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Latency() > top[i-1].Latency() {
			t.Fatalf("top-N not sorted: #%d %v > #%d %v", i, top[i].Latency(), i-1, top[i-1].Latency())
		}
	}
	// Spans must lie within the request's lifetime.
	for _, r := range top {
		for _, sp := range r.Spans {
			if sp.Start < r.Start || sp.End > r.End {
				t.Fatalf("request %d: span %s [%v,%v] outside lifetime [%v,%v]",
					r.ID, sp.Seg, sp.Start, sp.End, r.Start, r.End)
			}
		}
	}
}

// TestTraceChromeDeterminism is the tracing contract of DESIGN.md §8: the
// same seed produces a byte-identical Chrome stream (fixed metadata), so
// traces are diffable artifacts.
func TestTraceChromeDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	tracedRun(t, func(c *config.Config) { c.EMCC = true }, workload.TestScale(), 20_000, &a)
	tracedRun(t, func(c *config.Config) { c.EMCC = true }, workload.TestScale(), 20_000, &b)
	if a.Len() == 0 {
		t.Fatal("empty trace stream")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different trace streams (%d vs %d bytes)", a.Len(), b.Len())
	}
	var envelope struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &envelope); err != nil {
		t.Fatalf("trace stream is not valid JSON: %v", err)
	}
	if len(envelope.TraceEvents) == 0 {
		t.Fatal("trace stream has no events")
	}
}

// TestExposedDecryptEMCCBeatsMorphable is the paper's central claim read
// off the tracer: on the same seed, EMCC leaves fewer decrypt/verify
// nanoseconds exposed on the critical path than the Morphable baseline,
// and hides more behind the data block's journey. The default scale makes
// the MC counter cache actually miss — at the miniature test scale it
// covers the whole footprint and the baseline has nothing left to hide.
func TestExposedDecryptEMCCBeatsMorphable(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale run")
	}
	scale := workload.DefaultScale()
	stE, _ := tracedRun(t, func(c *config.Config) { c.EMCC = true }, scale, 60_000, nil)
	stM, _ := tracedRun(t, nil, scale, 60_000, nil)
	expE := stE.Accum("obs/exposed-decrypt-ns")
	expM := stM.Accum("obs/exposed-decrypt-ns")
	if expE.Count == 0 || expM.Count == 0 {
		t.Fatalf("missing exposure samples: emcc n=%d morphable n=%d", expE.Count, expM.Count)
	}
	if expE.Mean() >= expM.Mean() {
		t.Fatalf("EMCC mean exposed decrypt %.2f ns not below morphable %.2f ns", expE.Mean(), expM.Mean())
	}
	ovE := stE.Accum("obs/overlapped-decrypt-ns").Mean()
	ovM := stM.Accum("obs/overlapped-decrypt-ns").Mean()
	if ovE <= ovM {
		t.Fatalf("EMCC mean overlapped decrypt %.2f ns not above morphable %.2f ns", ovE, ovM)
	}
	t.Logf("exposed: emcc %.2f ns < morphable %.2f ns; overlapped: emcc %.2f ns > morphable %.2f ns",
		expE.Mean(), expM.Mean(), ovE, ovM)
}
