// Package tsim is the timing simulator — the equivalent of the paper's
// gem5 methodology (Sec. V): an event-driven model of 4 OoO cores, a
// non-inclusive L1/L2/LLC hierarchy on a 6x5 mesh NoC, a secure memory
// controller with counter cache, AES pools, integrity-tree walks and
// split-counter overflow handling, and a DDR4 timing model. It produces the
// performance figures (15-22) and the latency timelines.
//
// Deliberate simplifications (documented in DESIGN.md): a single logical
// metadata authority shared by both MC tiles; idealised XPT (the LLC-miss
// prediction is an oracle, so mispredictions cost no DRAM bandwidth); MESI
// coherence between cores is not modelled beyond EMCC's counter
// invalidations (workloads are multi-programmed or share read-mostly data).
package tsim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/emcc"
	"repro/internal/inv"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options selects workload and run length.
type Options struct {
	Benchmark string
	Cores     int
	Seed      uint64
	// Refs is the total number of memory references replayed across all
	// cores (the run ends when every core consumed its share and the
	// machine drained).
	Refs int64
	// Warmup references are replayed functionally (no timing) before the
	// detailed phase, warming caches and counter values (Sec. V).
	Warmup int64
	Scale  workload.Scale
	// Generators, when non-nil, replaces the synthetic benchmark with
	// caller-provided streams (e.g. a recorded trace, internal/trace);
	// DataBytes must then bound every address they emit.
	Generators []workload.Generator
	DataBytes  int64
	// Recorder, when non-nil, receives this run's invariant violations
	// instead of the process-wide default recorder — concurrent runs in one
	// process each keep their own ledger.
	Recorder *inv.Recorder
}

// Result summarises a timing run.
type Result struct {
	// SimulatedTime is when the last core retired its last instruction.
	SimulatedTime sim.Time
	// Instructions counts all retired instructions (memory + non-memory).
	Instructions int64
	// IPC is Instructions per core cycle, summed over cores.
	IPC float64
	// L2MissLatencyNS is the mean latency of L2 data read misses
	// (Fig 17).
	L2MissLatencyNS float64
	// BusyFraction is the DRAM bus utilisation split by traffic kind
	// (Fig 15).
	BusyFraction map[dram.TrafficKind]float64
	// DecryptAtL2Frac is the fraction of DRAM data reads decrypted and
	// verified at L2 (Fig 19; zero for non-EMCC systems).
	DecryptAtL2Frac float64
}

// Sim is one timing-simulation instance.
type Sim struct {
	cfg     *config.Config
	opt     Options
	eng     *sim.Engine
	shard   *sim.Shard // non-nil when cfg.Domains > 0: eng is the hub
	boxFree *u64box    // serial-engine freelist for packed seam payloads
	st      *stats.Set
	mesh    *noc.Mesh
	dram    *dram.DRAM
	mc      *mcCtl
	slices  []*llcSlice
	l2s     []*l2Ctl
	cpus    []*core
	pol     emcc.Policy
	ivr     *inv.Recorder // this run's invariant recorder (never nil)
	trc     *obs.Tracer   // nil = tracing disabled (the common case)

	// Sharded-engine topology (empty on the serial engine; see topo.go).
	sliceDoms []*sim.Domain
	coreDoms  []*sim.Domain
	linkTab   map[domPair]*sim.Link
	// Per-domain stats shards in canonical merge order (slice groups,
	// then cores); merged into st at the end of Run.
	domSets   []*stats.Set
	sliceSets []*stats.Set
	coreSets  []*stats.Set

	rec       *metrics.Recorder // nil = flight recording disabled
	recPeriod sim.Time

	warming bool // functional warmup in progress: no timing, no traffic
}

// New builds a timing simulation.
func New(cfg *config.Config, opt Options) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Cores == 0 {
		opt.Cores = cfg.Cores
	}
	if opt.Scale == (workload.Scale{}) {
		opt.Scale = workload.DefaultScale()
	}
	gens := opt.Generators
	dataBytes := opt.DataBytes
	if gens == nil {
		var err error
		gens, err = workload.NewSet(opt.Benchmark, opt.Cores, opt.Seed, opt.Scale)
		if err != nil {
			return nil, err
		}
		dataBytes, err = workload.SpaceBytes(opt.Benchmark, opt.Cores, opt.Scale)
		if err != nil {
			return nil, err
		}
	} else {
		if len(gens) != opt.Cores {
			return nil, fmt.Errorf("%s: %d generators for %d cores", "sim", len(gens), opt.Cores)
		}
		if dataBytes <= 0 {
			return nil, fmt.Errorf("sim: DataBytes required with custom generators")
		}
	}

	s := &Sim{
		cfg:  cfg,
		opt:  opt,
		eng:  sim.New(),
		st:   stats.NewSet(),
		mesh: noc.New(cfg.MeshCols, cfg.MeshRows, cfg.NoCHopLatency, cfg.NoCBaseOneWay),
		ivr:  inv.Or(opt.Recorder),
	}
	// Bind the run's recorder to the engine before any component grabs it:
	// every eng.Recorder() call below must see this run's ledger.
	s.eng.SetRecorder(s.ivr)
	s.pol = emcc.NewPolicyRec(cfg, s.mesh, s.ivr)
	s.dram = dram.New(s.eng, s.st, cfg)
	// Cut the run into domains (slice groups, optional per-core domains,
	// DRAM channels) before any entity binds its scheduling context.
	s.buildTopology()
	s.buildSlices()
	s.mc = newMCCtl(s, dataBytes)
	perCore := opt.Refs / int64(opt.Cores)
	for c := 0; c < opt.Cores; c++ {
		l2 := newL2Ctl(s, c)
		s.l2s = append(s.l2s, l2)
		s.cpus = append(s.cpus, newCore(s, c, gens[c], perCore))
	}
	s.wirePorts()
	s.bindHot()
	return s, nil
}

// bindHot (re-)binds the cached stats cells the hot paths bump directly.
// Called at construction (warmup's functional helpers share some keys) and
// again after warm's stats Reset, which invalidates every cell.
func (s *Sim) bindHot() {
	for _, c := range s.cpus {
		c.bindHot()
	}
	for _, l2 := range s.l2s {
		l2.bindHot()
	}
}

// Stats exposes collected metrics.
func (s *Sim) Stats() *stats.Set { return s.st }

// SetTracer attaches a per-request tracer (internal/obs). Call before Run;
// a nil tracer (the default) keeps every instrumentation site on its
// single-branch fast path. Warmup references are never traced.
//
// Tracing is a serial-engine tool: trace spans and the periodic sampler
// read state that lives in other domains mid-run, and the sharded engine
// has no safe point for that. Declaring config.Tracing surfaces the
// conflict at Validate time; attaching a tracer to a sharded simulator
// anyway is reported here as an error.
func (s *Sim) SetTracer(t *obs.Tracer) error {
	if s.shard != nil && t != nil {
		return fmt.Errorf("tsim: tracing requires the serial engine — set Domains = 0 (got %d) or drop the tracer", s.cfg.Domains)
	}
	s.trc = t
	for _, l2 := range s.l2s {
		if l2.monitor != nil {
			id := l2.id
			l2.monitor.OnTransition = func(enabled bool) {
				name := "emcc-off"
				if enabled {
					name = "emcc-on"
				}
				s.trc.Instant(name, id, s.eng.Now())
			}
		}
	}
	return nil
}

// SetFlightRecorder attaches an interval flight recorder that samples the
// run's stats set every period of simulated time. Call before Run. The
// first interval starts at the measurement boundary (warmup traffic is
// functional and records nothing), so the recorded series shows cache
// warm-up and phase changes from the first measured event on. The series
// is a pure function of the scenario: byte-identical across reruns and
// across concurrent runs at any parallelism.
//
// The recorder samples the shared stats set every interval; when sharded,
// DRAM metrics accumulate in per-channel domain shards that only merge
// after the run, so mid-run samples would be silently wrong (and racy).
// Declaring config.FlightRecorder surfaces the conflict at Validate time;
// attaching a recorder to a sharded simulator anyway is an error.
func (s *Sim) SetFlightRecorder(rec *metrics.Recorder, period sim.Time) error {
	if s.shard != nil && rec != nil {
		return fmt.Errorf("tsim: the flight recorder requires the serial engine — set Domains = 0 (got %d) or drop the recorder", s.cfg.Domains)
	}
	s.rec = rec
	s.recPeriod = period
	return nil
}

// Engine exposes the event engine (timeline tooling uses it).
func (s *Sim) Engine() *sim.Engine { return s.eng }

// SetShardWorkers overrides the sharded engine's worker-goroutine count
// (a no-op on the serial engine). The schedule is byte-identical at any
// worker count — the verification harness exercises exactly that claim.
// Call before Run.
func (s *Sim) SetShardWorkers(n int) {
	if s.shard != nil && n > 0 {
		s.shard.Workers = n
	}
}

// Run warms the machine, executes the workload to completion and
// summarises.
func (s *Sim) Run() Result {
	s.warm(s.opt.Warmup)
	// warm resets the stats set at the measurement boundary, which strands
	// every cached cell; re-bind before any timed event fires.
	s.bindHot()
	for _, c := range s.cpus {
		c.start()
	}
	if period := s.trc.SamplePeriod(); period > 0 {
		s.eng.Every(period, s.samplePoint)
	}
	if s.rec != nil && s.recPeriod > 0 {
		// Bound after the warm Reset like every other cell. The tick
		// counters land in the same stats set the recorder samples, so
		// each interval carries its own flight/intervals delta — harmless,
		// deterministic, and it makes recorder liveness visible in dumps.
		intervals := s.st.CounterRef(stats.FlightIntervals)
		dropped := s.st.CounterRef(stats.FlightDropped)
		rec := s.rec
		s.eng.Every(s.recPeriod, func(now sim.Time) {
			*intervals++
			if rec.Record(int64(now)) {
				*dropped++
			}
		})
	}
	// Hard ceiling guards against modelling bugs hanging the run.
	const maxSteps = 2_000_000_000
	if s.shard != nil {
		s.shard.MaxSteps = maxSteps
		s.shard.Run()
		// Fold every per-domain stats shard into the run's set in
		// canonical order (slice groups, cores, then DRAM channels)
		// before anything below reads it. Every accumulated value is an
		// integer count or an integer number of picoseconds, so the
		// merged totals are exact regardless of merge order.
		for _, ds := range s.domSets {
			s.st.Merge(ds)
		}
		s.dram.MergeShardStats()
	} else {
		for s.eng.Pending() > 0 {
			if s.eng.Steps() > maxSteps {
				panic(fmt.Sprintf("tsim: exceeded %d events — likely a stall bug", int64(maxSteps)))
			}
			s.eng.RunFor(sim.Millisecond)
		}
	}

	var res Result
	var lastRetire sim.Time
	for _, c := range s.cpus {
		if c.refsLeft > 0 || c.outstanding > 0 || c.stashed {
			panic(fmt.Sprintf("tsim: core %d stuck at drain (refsLeft=%d outstanding=%d stashed=%v) — lost completion",
				c.id, c.refsLeft, c.outstanding, c.stashed))
		}
		res.Instructions += c.instrs
		if c.lastRetire > lastRetire {
			lastRetire = c.lastRetire
		}
	}
	res.SimulatedTime = lastRetire
	if res.SimulatedTime > 0 {
		cycles := float64(res.SimulatedTime) / float64(s.cfg.CoreCycle())
		res.IPC = float64(res.Instructions) / cycles
	}
	res.L2MissLatencyNS = s.st.Accum(stats.TsimL2ReadMissLatencyPS).Mean() / 1000
	res.BusyFraction = s.dram.BusyFraction(0, res.SimulatedTime)
	atL2 := s.st.Counter(stats.EmccDecryptAtL2)
	atMC := s.st.Counter(stats.EmccDecryptAtMC)
	if atL2+atMC > 0 {
		res.DecryptAtL2Frac = float64(atL2) / float64(atL2+atMC)
	}
	return res
}

// samplePoint records one time-series sample of the machine's occupancy
// gauges: outstanding misses (MSHR occupancy), DRAM queue depths, and
// AES-pool utilisation at the MC and (under EMCC) the L2 pools.
func (s *Sim) samplePoint(now sim.Time) {
	outstanding := 0
	for _, c := range s.cpus {
		outstanding += c.outstanding
	}
	s.trc.Sample("mshr-outstanding", now, float64(outstanding))
	reads, writes := s.dram.QueueDepths()
	s.trc.Sample("dram-read-queue", now, float64(reads))
	s.trc.Sample("dram-write-queue", now, float64(writes))
	if s.mc.aes != nil {
		s.trc.Sample("aes-mc-util", now, s.mc.aes.Utilisation())
	}
	var l2Util float64
	var l2Pools int
	for _, l2 := range s.l2s {
		if l2.aes != nil {
			l2Util += l2.aes.Utilisation()
			l2Pools++
		}
	}
	if l2Pools > 0 {
		s.trc.Sample("aes-l2-util", now, l2Util/float64(l2Pools))
	}
}

// at schedules fn at the later of t and now (events cannot be scheduled in
// the past; component handoffs routinely compute times at or before now).
func (s *Sim) at(t sim.Time, fn func()) {
	if now := s.eng.Now(); t < now {
		t = now
	}
	s.eng.At(t, fn)
}

// atCall is the allocation-free sibling of at for prebound callbacks.
func (s *Sim) atCall(t sim.Time, fn func(any), arg any) {
	if now := s.eng.Now(); t < now {
		t = now
	}
	s.eng.AtCall(t, fn, arg)
}

// schedReq schedules a request-carrying event, taking the hold that the
// callback's trailing release balances (see readReq).
func (s *Sim) schedReq(t sim.Time, fn func(any), req *readReq) {
	req.holdReq()
	s.atCall(t, fn, req)
}

// secure reports whether any secure-memory design is active (counter-backed
// or counter-free direct cipher).
func (s *Sim) secure() bool { return s.cfg.Counter != config.CtrNone }

// counters reports whether the active design maintains counter metadata —
// the machinery (counter caches, tree walks, overflow engine, warm counter
// placement) the counter-free designs must never touch.
func (s *Sim) counters() bool { return s.cfg.Counter.HasCounters() }

// Convenience latencies.
func (s *Sim) oneway(a, b noc.NodeID) sim.Time { return s.mesh.OneWay(a, b) }
