package tsim

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// core is a window-limited out-of-order core model (Table I: 4-wide,
// 192-entry ROB). It captures the properties the evaluation depends on:
//
//   - memory-level parallelism bounded by the ROB: an outstanding load
//     permits up to ROBEntries younger instructions (including other
//     loads) to dispatch before the front end stalls;
//   - in-order retirement: the run's span ends at the last retirement;
//   - dependent loads (pointer chases) issue only after their predecessor
//     returns;
//   - L1 MSHRs cap outstanding misses;
//   - stores retire through a write buffer and never stall the core, but
//     their fills consume MSHRs and memory bandwidth.
type core struct {
	s     *Sim
	id    int
	tile  noc.NodeID
	es    sched // shared with the core's L2 (see topo.go)
	st    *stats.Set
	gen   workload.Generator
	l1    *cache.Cache
	l1Lat sim.Time

	refsLeft int64
	instrs   int64 // retired instructions (memory + non-memory)
	stash    workload.Access
	stashed  bool

	clock       sim.Time // front-end dispatch clock
	outstanding int      // misses in flight (loads + store fills)
	inflight    []int64  // instruction indices of in-flight loads, oldest first
	lastMemDone sim.Time
	lastMemPend bool  // the most recently issued memory access is in flight
	lastMemIdx  int64 // its instruction index
	lastRetire  sim.Time
	waiting     bool
	done        bool

	cycle      sim.Time
	issueWidth int64

	// freeMiss is the coreMiss freelist: one entry per L1 miss rides the
	// hierarchy and returns here on completion, so steady-state misses
	// allocate nothing.
	freeMiss *coreMiss

	// Cached stats cells (bound after warmup reset; see Sim.bindHot).
	cLoad, cStore *int64
}

// coreMiss carries one L1 miss (load or store fill) through the L2. It is
// the scheduling argument for the L1->L2 handoff event and the waiter the
// L2 completes, replacing the two closures the old path allocated per
// miss.
type coreMiss struct {
	c     *core
	block uint64
	idx   int64 // instruction index (loads)
	store bool
	tr    *obs.Req
	next  *coreMiss // freelist link
}

func newCore(s *Sim, id int, gen workload.Generator, refs int64) *core {
	c := &core{
		s:          s,
		id:         id,
		tile:       s.mesh.CoreTile(id),
		es:         s.domES(s.coreDom(id)),
		st:         s.coreStats(id),
		gen:        gen,
		l1:         cache.New("l1", s.cfg.L1Bytes, s.cfg.L1Ways),
		l1Lat:      s.cfg.L1Latency,
		refsLeft:   refs,
		cycle:      s.cfg.CoreCycle(),
		issueWidth: int64(s.cfg.IssueWidth),
	}
	c.l1.SetRecorder(s.ivr)
	return c
}

func (c *core) bindHot() {
	c.cLoad = c.st.CounterRef(stats.TsimLoad)
	c.cStore = c.st.CounterRef(stats.TsimStore)
}

func (c *core) getMiss() *coreMiss {
	m := c.freeMiss
	if m == nil {
		return &coreMiss{c: c}
	}
	c.freeMiss = m.next
	m.next = nil
	return m
}

func (c *core) putMiss(m *coreMiss) {
	m.tr = nil
	m.next = c.freeMiss
	c.freeMiss = m
}

// coreStep re-enters the dispatch loop; the prebound form of c.step.
func coreStep(x any) { x.(*core).step() }

// coreMissEnter hands a stashed L1 miss to the core's L2 at the time the
// L1 lookup completes.
func coreMissEnter(x any) {
	m := x.(*coreMiss)
	m.c.s.l2s[m.c.id].read(m.block, m.store, m.tr, m)
}

// complete implements waiter: the block is decrypted, verified and
// resident in L2.
func (m *coreMiss) complete(at sim.Time) {
	c := m.c
	m.tr.Finish(at)
	if m.store {
		c.outstanding--
		c.fillL1(m.block, true)
		c.resume()
	} else {
		c.loadDone(m.idx, m.block, at)
	}
	c.putMiss(m)
}

func (c *core) start() { c.es.AtCall(0, coreStep, c) }

// step dispatches instructions until a structural stall (ROB, MSHR,
// dependence) or the end of the stream. It re-arms from completion events.
func (c *core) step() {
	c.waiting = false
	for {
		if !c.stashed {
			if c.refsLeft <= 0 {
				c.done = true
				return
			}
			c.stash = c.gen.Next()
			c.refsLeft--
			c.stashed = true
		}
		a := c.stash
		// Structural gates; any stall keeps the access stashed and
		// waits for a completion to re-arm the loop.
		if c.outstanding >= c.s.cfg.L1MSHRs {
			c.waiting = true
			return
		}
		nextInstr := c.instrs + int64(a.NonMem) + 1
		if len(c.inflight) > 0 && nextInstr-c.inflight[0] >= int64(c.s.cfg.ROBEntries) {
			c.waiting = true
			return
		}
		if a.Dep && c.lastMemPend {
			c.waiting = true
			return
		}

		// Commit dispatch. The memory instruction occupies a dispatch
		// slot alongside its non-memory batch.
		c.stashed = false
		batchCycles := (int64(a.NonMem) + 1 + c.issueWidth - 1) / c.issueWidth
		c.clock += sim.Time(batchCycles) * c.cycle
		c.instrs = nextInstr
		if a.Dep && c.lastMemDone > c.clock {
			c.clock = c.lastMemDone
		}
		c.issueMem(a)
	}
}

// issueMem sends one memory access into the hierarchy at the front-end
// clock. It never blocks.
func (c *core) issueMem(a workload.Access) {
	block := addr.BlockOf(a.Addr)
	t := c.clock
	if now := c.es.Now(); t < now {
		t = now
		c.clock = t
	}
	idx := c.instrs

	if a.Write {
		*c.cStore++
		done := t + c.l1Lat
		c.retireAt(done)
		c.lastMemDone, c.lastMemPend, c.lastMemIdx = done, false, idx
		if c.l1.Lookup(block) {
			c.l1.MarkDirty(block)
			return
		}
		// Store miss: fetch for ownership in the background.
		c.outstanding++
		rt := c.s.trc.StartReq(c.id, block, true, t)
		rt.AddSpan(obs.SegL1, t, done)
		m := c.getMiss()
		m.block, m.idx, m.store, m.tr = block, idx, true, rt
		c.atCall(done, coreMissEnter, m)
		return
	}

	*c.cLoad++
	if c.l1.Lookup(block) {
		done := t + c.l1Lat
		c.retireAt(done)
		c.lastMemDone, c.lastMemPend, c.lastMemIdx = done, false, idx
		return
	}
	// L1 load miss.
	c.outstanding++
	c.inflight = append(c.inflight, idx)
	c.lastMemPend, c.lastMemIdx = true, idx
	rt := c.s.trc.StartReq(c.id, block, false, t)
	rt.AddSpan(obs.SegL1, t, t+c.l1Lat)
	m := c.getMiss()
	m.block, m.idx, m.store, m.tr = block, idx, false, rt
	c.atCall(t+c.l1Lat, coreMissEnter, m)
}

// loadDone retires a returning load and releases stalled dispatch.
func (c *core) loadDone(instrIdx int64, block uint64, at sim.Time) {
	c.outstanding--
	c.fillL1(block, false)
	c.retireAt(at)
	for i := range c.inflight {
		if c.inflight[i] == instrIdx {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			break
		}
	}
	if c.lastMemPend && instrIdx == c.lastMemIdx {
		c.lastMemPend = false
	}
	if c.lastMemDone < at {
		c.lastMemDone = at
	}
	c.resume()
}

func (c *core) resume() {
	if c.waiting {
		c.waiting = false
		c.es.AfterCall(0, coreStep, c)
	}
}

// atCall schedules a local event at the later of t and the local now.
func (c *core) atCall(t sim.Time, fn func(any), arg any) {
	if now := c.es.Now(); t < now {
		t = now
	}
	c.es.AtCall(t, fn, arg)
}

// retireAt records an in-order retirement bound.
func (c *core) retireAt(t sim.Time) {
	if t > c.lastRetire {
		c.lastRetire = t
	}
}

// fillL1 inserts into L1, folding dirty victims into L2's functional state
// (L1 writeback timing is absorbed into L2 latency).
func (c *core) fillL1(block uint64, dirty bool) {
	v, ok := c.l1.Insert(block, dirty, addr.KindData)
	if ok && v.Dirty {
		l2 := c.s.l2s[c.id]
		if !l2.c.MarkDirty(v.Block) {
			l2.fill(v.Block, true, c.es.Now())
		}
	}
}
