package tsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// shardSnap runs one canneal scenario and returns its stats snapshot.
func shardSnap(t *testing.T, mutate func(*config.Config), workers int) []byte {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Seed: 7, Refs: 30_000, Warmup: 10_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if workers > 0 && s.shard != nil {
		s.shard.Workers = workers
	}
	s.Run()
	b, err := s.Stats().Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardMatchesSerial is the parity pillar in miniature: the sharded
// engine must produce byte-identical stats to the serial engine for the
// same scenario, at one and several domains, with single- and multi-
// channel DRAM.
func TestShardMatchesSerial(t *testing.T) {
	cases := []struct {
		name     string
		channels int
		domains  int
	}{
		{"1ch-1dom", 1, 1},
		{"4ch-2dom", 4, 2},
		{"4ch-4dom", 4, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serial := shardSnap(t, func(cfg *config.Config) {
				cfg.Channels = c.channels
			}, 0)
			sharded := shardSnap(t, func(cfg *config.Config) {
				cfg.Channels = c.channels
				cfg.Domains = c.domains
			}, 0)
			if string(serial) != string(sharded) {
				t.Errorf("sharded run (%d domains) diverged from the serial engine", c.domains)
			}
		})
	}
}

// TestShardWorkerCountParity pins the determinism guarantee the barrier
// design provides by construction: at a fixed domain count, the worker
// count must not influence a single byte of the result.
func TestShardWorkerCountParity(t *testing.T) {
	mutate := func(cfg *config.Config) {
		cfg.Channels = 4
		cfg.Domains = 4
	}
	one := shardSnap(t, mutate, 1)
	many := shardSnap(t, mutate, 5)
	if string(one) != string(many) {
		t.Error("worker count changed the sharded run's results")
	}
}
