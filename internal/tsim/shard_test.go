package tsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// shardSnap runs one canneal scenario and returns its stats snapshot.
func shardSnap(t *testing.T, mutate func(*config.Config), workers int) []byte {
	return shardSnapBench(t, "canneal", mutate, workers)
}

// shardSnapBench is shardSnap for an arbitrary benchmark name (including
// "+"-separated co-run mixes).
func shardSnapBench(t *testing.T, bench string, mutate func(*config.Config), workers int) []byte {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(&cfg, Options{
		Benchmark: bench, Seed: 7, Refs: 30_000, Warmup: 10_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if workers > 0 && s.shard != nil {
		s.shard.Workers = workers
	}
	s.Run()
	b, err := s.Stats().Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardMatchesSerial is the parity pillar in miniature: the sharded
// engine must produce byte-identical stats to the serial engine for the
// same scenario, at one and several domains, with single- and multi-
// channel DRAM.
func TestShardMatchesSerial(t *testing.T) {
	cases := []struct {
		name     string
		channels int
		domains  int
		cores    bool
	}{
		{"1ch-1dom", 1, 1, false},
		{"4ch-2dom", 4, 2, false},
		{"4ch-4dom", 4, 4, false},
		{"1ch-1dom-cores", 1, 1, true},
		{"4ch-4dom-cores", 4, 4, true},
		{"4ch-8dom-cores", 4, 8, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serial := shardSnap(t, func(cfg *config.Config) {
				cfg.Channels = c.channels
			}, 0)
			sharded := shardSnap(t, func(cfg *config.Config) {
				cfg.Channels = c.channels
				cfg.Domains = c.domains
				cfg.ShardCores = c.cores
			}, 0)
			if string(serial) != string(sharded) {
				t.Errorf("sharded run (%d domains) diverged from the serial engine", c.domains)
			}
		})
	}
}

// TestShardCoRunMatchesSerial runs the BENCH_10 scenario shape — a 4-core
// mcf+canneal co-run, each core replaying its own stream into the shared
// sliced LLC — on the widest topology cut and requires byte-identical
// stats to the serial engine. Cross-core slice contention exercises seams
// a single-stream replay cannot: distinct L2 domains racing for one home
// slice at the same timestamp.
func TestShardCoRunMatchesSerial(t *testing.T) {
	serial := shardSnapBench(t, "mcf+canneal", func(cfg *config.Config) {
		cfg.Channels = 4
	}, 0)
	sharded := shardSnapBench(t, "mcf+canneal", func(cfg *config.Config) {
		cfg.Channels = 4
		cfg.Domains = 8
		cfg.ShardCores = true
	}, 3)
	if string(serial) != string(sharded) {
		t.Error("sharded co-run diverged from the serial engine")
	}
}

// TestShardWorkerCountParity pins the determinism guarantee the barrier
// design provides by construction: at a fixed domain count, the worker
// count must not influence a single byte of the result.
func TestShardWorkerCountParity(t *testing.T) {
	mutate := func(cfg *config.Config) {
		cfg.Channels = 4
		cfg.Domains = 4
	}
	one := shardSnap(t, mutate, 1)
	many := shardSnap(t, mutate, 5)
	if string(one) != string(many) {
		t.Error("worker count changed the sharded run's results")
	}
}

// TestShardedRejectsSerialOnlyInstrumentation: tracing and the flight
// recorder read cross-domain state mid-run, so both the config layer and
// the attach points reject them under sharding — with errors, not panics
// — while nil detach calls stay fine.
func TestShardedRejectsSerialOnlyInstrumentation(t *testing.T) {
	sharded := func(mutate func(*config.Config)) (*Sim, error) {
		cfg := config.Default()
		cfg.Domains = 2
		if mutate != nil {
			mutate(&cfg)
		}
		return New(&cfg, Options{
			Benchmark: "canneal", Seed: 7, Refs: 1_000,
			Scale: workload.TestScale(),
		})
	}

	// Declared at configuration time, the conflict is a config error.
	if _, err := sharded(func(c *config.Config) { c.Tracing = true }); err == nil {
		t.Error("New accepted Domains > 0 with Tracing")
	}
	if _, err := sharded(func(c *config.Config) { c.FlightRecorder = true }); err == nil {
		t.Error("New accepted Domains > 0 with FlightRecorder")
	}

	// Attached directly to a sharded simulator, both setters refuse.
	s, err := sharded(nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.SetTracer(obs.New(obs.Options{Stats: s.Stats()})); err == nil {
		t.Error("SetTracer accepted a tracer on the sharded engine")
	}
	rec := metrics.NewRecorder(s.Stats(), 16)
	if err := s.SetFlightRecorder(rec, 5*sim.Microsecond); err == nil {
		t.Error("SetFlightRecorder accepted a recorder on the sharded engine")
	}
	// Nil detaches are no-ops on any engine.
	if err := s.SetTracer(nil); err != nil {
		t.Errorf("SetTracer(nil): %v", err)
	}
	if err := s.SetFlightRecorder(nil, 0); err != nil {
		t.Errorf("SetFlightRecorder(nil): %v", err)
	}
	// The rejected instrumentation must not have perturbed the run:
	// sharded results stay byte-identical to the serial engine.
	s.Run()
	got, err := s.Stats().Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	serial := func() []byte {
		cfg := config.Default()
		s2, err := New(&cfg, Options{
			Benchmark: "canneal", Seed: 7, Refs: 1_000,
			Scale: workload.TestScale(),
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s2.Run()
		b, err := s2.Stats().Snapshot().StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	if string(got) != string(serial) {
		t.Error("sharded run with rejected instrumentation diverged from the serial engine")
	}
}
