package tsim

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// flightRun executes one fixed scenario with a flight recorder attached
// and returns the CSV and JSON dumps.
func flightRun(t *testing.T, capacity int) (*metrics.Recorder, []byte, []byte) {
	t.Helper()
	cfg := config.Default()
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Cores: 2, Seed: 9, Refs: 20_000, Warmup: 5_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(s.Stats(), capacity)
	if err := s.SetFlightRecorder(rec, 5*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	var csv, js bytes.Buffer
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return rec, csv.Bytes(), js.Bytes()
}

// TestFlightRecorderDeterminism is the flight-recorder golden property:
// the interval series is byte-identical across reruns at a fixed seed and
// across concurrent executions (each Sim owns its engine and stats set,
// which is exactly why run.Execute is byte-identical at any -j).
func TestFlightRecorderDeterminism(t *testing.T) {
	rec, csv0, js0 := flightRun(t, 1<<14)
	if len(rec.Intervals()) < 3 {
		t.Fatalf("only %d intervals recorded — period too coarse for the scenario", len(rec.Intervals()))
	}
	if rec.Dropped() != 0 {
		t.Fatalf("%d intervals dropped with a large ring", rec.Dropped())
	}
	// The series must actually carry signal: at least one interval with a
	// counter delta and one with a histogram delta (dram qdelay).
	var sawCounter, sawHist bool
	for _, iv := range rec.Intervals() {
		sawCounter = sawCounter || len(iv.Counters) > 0
		sawHist = sawHist || len(iv.Hists) > 0
	}
	if !sawCounter || !sawHist {
		t.Fatalf("flight series empty: counters=%v hists=%v", sawCounter, sawHist)
	}

	// Rerun serially and 4× concurrently; every dump must be byte-equal.
	const workers = 4
	csvs := make([][]byte, workers)
	jss := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, csvs[w], jss[w] = flightRun(t, 1<<14)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if !bytes.Equal(csv0, csvs[w]) {
			t.Fatalf("concurrent run %d produced a different CSV series", w)
		}
		if !bytes.Equal(js0, jss[w]) {
			t.Fatalf("concurrent run %d produced a different JSON series", w)
		}
	}
}

// TestFlightRecorderBoundedRing drives the same scenario into a tiny ring:
// old intervals fall out, the drop counter in the stats set agrees with
// the recorder, and the retained window is the run's tail.
func TestFlightRecorderBoundedRing(t *testing.T) {
	big, _, _ := flightRun(t, 1<<14)
	total := len(big.Intervals())
	if total < 8 {
		t.Skipf("scenario too short for ring test: %d intervals", total)
	}
	const capacity = 4
	cfg := config.Default()
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Cores: 2, Seed: 9, Refs: 20_000, Warmup: 5_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(s.Stats(), capacity)
	if err := s.SetFlightRecorder(rec, 5*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	ivs := rec.Intervals()
	if len(ivs) != capacity {
		t.Fatalf("ring holds %d intervals, want %d", len(ivs), capacity)
	}
	if want := int64(total - capacity); rec.Dropped() != want {
		t.Fatalf("dropped = %d, want %d", rec.Dropped(), want)
	}
	// The survivors are the newest intervals, in order.
	if ivs[0].Index != int64(total-capacity) || ivs[capacity-1].Index != int64(total-1) {
		t.Fatalf("survivor window %d..%d, want %d..%d",
			ivs[0].Index, ivs[capacity-1].Index, total-capacity, total-1)
	}
	// And the stats set saw the same counts through the wired counters.
	if got := s.Stats().Counter(stats.FlightIntervals); got != int64(total) {
		t.Fatalf("flight/intervals = %d, want %d", got, total)
	}
	if got := s.Stats().Counter(stats.FlightDropped); got != rec.Dropped() {
		t.Fatalf("flight/dropped = %d, recorder says %d", got, rec.Dropped())
	}
}
