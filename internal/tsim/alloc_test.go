package tsim

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The allocation-free steady-state contract: once caches are warm and the
// request pools have reached their high-water mark, dispatching events
// through the prebound-callback machinery allocates nothing. The
// counter-free designs ride that machinery (pooled readReq, prebound
// bipbipArrivedCB/completePlainMCCB chains), so they must keep both pins.

// steadyStateAllocs reaches steady state (warmup + 1 ms of timed
// execution on a cache-resident working set) and measures allocations per
// 10 µs event window.
func steadyStateAllocs(t *testing.T, mutate func(*config.Config)) float64 {
	t.Helper()
	cfg := config.Default()
	mutate(&cfg)
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Cores: 2, Seed: 3, Refs: 50_000_000, Warmup: 200_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.warm(s.opt.Warmup)
	s.bindHot()
	for _, c := range s.cpus {
		c.start()
	}
	s.eng.RunFor(sim.Millisecond)
	return testing.AllocsPerRun(50, func() { s.eng.RunFor(sim.Microsecond * 10) })
}

// TestCounterFreeSteadyStateZeroAllocs pins AllocsPerRun == 0 for the new
// designs' steady-state event loop, alongside the non-secure control.
func TestCounterFreeSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"non-secure", func(c *config.Config) { c.Counter = config.CtrNone; c.CountersInLLC = false }},
		{"bipbip", bipbipCfg},
		{"insram", insramCfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if allocs := steadyStateAllocs(t, tc.mutate); allocs != 0 {
				t.Fatalf("steady-state loop allocated %.1f times per window, want 0", allocs)
			}
		})
	}
}

// runMallocs counts every heap allocation of one complete timed run
// (construction excluded). Mallocs is an exact counter, and the simulator
// is deterministic, so the numbers are stable run to run.
func runMallocs(t *testing.T, mutate func(*config.Config)) uint64 {
	t.Helper()
	cfg := config.Default()
	mutate(&cfg)
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Cores: 2, Seed: 3, Refs: 200_000, Warmup: 100_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	s.Run()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestCounterFreeModesAddNoAllocsOverBaseline: under a working set that
// misses continuously (small LLC, so the cipher paths fire on every fill
// and writeback), the counter-free designs may not allocate beyond the
// non-secure baseline plus a small slack for extra in-flight events —
// their entire per-access machinery is prebound and pooled. Morphable's
// counter walk roughly doubles the baseline's count on this shape, so the
// bound genuinely separates the designs.
func TestCounterFreeModesAddNoAllocsOverBaseline(t *testing.T) {
	ns := runMallocs(t, func(c *config.Config) { c.Counter = config.CtrNone; c.CountersInLLC = false; smallLLC(c) })
	// 2% relative plus a small absolute term: with pooled requests and
	// seam payloads the whole-run counts are a few hundred, and the cipher
	// designs' longer fill latency legitimately grows the freelist
	// high-water marks by a handful of entries.
	allow := ns + ns/50 + 16
	for _, tc := range []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"bipbip", func(c *config.Config) { bipbipCfg(c); smallLLC(c) }},
		{"insram", func(c *config.Config) { insramCfg(c); smallLLC(c) }},
	} {
		got := runMallocs(t, tc.mutate)
		if got > allow {
			t.Errorf("%s run allocated %d times vs non-secure %d (allowed %d)", tc.name, got, ns, allow)
		}
	}
}

// TestTracedWithHistogramsSteadyStateZeroAllocs pins the traced hot path:
// with a stats-only tracer attached — per-request Req contexts, segment
// accumulators AND the per-segment latency histograms all live — the
// steady-state event loop still allocates nothing. Pooled Reqs (freelist +
// reused Spans backing arrays), the preallocated top-N table and bound
// histogram cells are what make this hold.
func TestTracedWithHistogramsSteadyStateZeroAllocs(t *testing.T) {
	cfg := config.Default() // emcc default: both lanes active
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Cores: 2, Seed: 3, Refs: 50_000_000, Warmup: 200_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetTracer(obs.New(obs.Options{Stats: s.Stats()})); err != nil {
		t.Fatal(err)
	}
	s.warm(s.opt.Warmup)
	s.bindHot()
	for _, c := range s.cpus {
		c.start()
	}
	// Long ramp so the Req pool and every Spans backing array reach their
	// high-water mark before measuring.
	s.eng.RunFor(sim.Millisecond)
	if allocs := testing.AllocsPerRun(50, func() { s.eng.RunFor(sim.Microsecond * 10) }); allocs != 0 {
		t.Fatalf("traced steady-state loop allocated %.1f times per window, want 0", allocs)
	}
	if s.Stats().Hist(stats.ObsReqLatencyHist).Count() == 0 {
		t.Fatal("latency histogram recorded nothing — the pin proved the wrong path")
	}
}
