package tsim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(t *testing.T, mutate func(*config.Config), bench string, refs, warm int64) (*Sim, Result) {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(&cfg, Options{
		Benchmark: bench, Seed: 3, Refs: refs, Warmup: warm,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, s.Run()
}

func TestNonSecureRunCompletes(t *testing.T) {
	s, res := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 100_000, 200_000)
	if res.SimulatedTime <= 0 || res.Instructions <= 0 || res.IPC <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// IPC is aggregated across cores.
	if res.IPC > float64(s.cfg.IssueWidth*s.opt.Cores) {
		t.Fatalf("aggregate IPC %.2f exceeds machine width", res.IPC)
	}
	if s.st.Counter("dram/access/counter/read") != 0 {
		t.Fatal("non-secure run generated counter traffic")
	}
}

func bipbipCfg(c *config.Config) {
	c.Counter = config.CtrBipBip
	c.CountersInLLC = false
}

func insramCfg(c *config.Config) {
	c.Counter = config.CtrInSRAM
	c.CountersInLLC = false
}

// smallLLC shrinks the LLC so the working set spills and dirty blocks
// reach DRAM — the writeback/encrypt path is dead code otherwise at test
// scale.
func smallLLC(c *config.Config) { c.L3Bytes = 256 << 10 }

// TestBipBipRunIsCounterFree pins the tentpole claim: CtrBipBip generates
// zero counter traffic anywhere (DRAM, LLC lookups, on-chip misses), zero
// MC AES pool pressure, and still pays a cipher on every DRAM fill.
func TestBipBipRunIsCounterFree(t *testing.T) {
	s, res := run(t, func(c *config.Config) { bipbipCfg(c); smallLLC(c) },
		"canneal", 100_000, 200_000)
	if res.SimulatedTime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	for _, key := range []string{
		stats.DramAccessCtrRead, stats.DramAccessCtrWrite,
		stats.DramAccessOvfL0Read, stats.DramAccessOvfHiRead,
		stats.TsimCtrLLCLookup, stats.TsimCtrMissOnchip,
		stats.OverflowEvents,
	} {
		if n := s.st.Counter(key); n != 0 {
			t.Errorf("counter-free design produced %s = %d", key, n)
		}
	}
	if s.mc.aes != nil {
		t.Fatal("bipbip built an MC AES pool")
	}
	if s.mc.home != nil {
		t.Fatal("bipbip built a metadata home")
	}
	dec := s.st.Counter(stats.BipBipDecryptOps)
	if dec == 0 {
		t.Fatal("no bipbip decrypt ops recorded")
	}
	if dec != s.st.Counter(stats.TsimMCDataFill) {
		t.Fatalf("decrypt ops %d != data fills %d", dec, s.st.Counter(stats.TsimMCDataFill))
	}
	enc := s.st.Counter(stats.BipBipEncryptOps)
	if enc == 0 {
		t.Fatal("no bipbip encrypt ops despite writebacks")
	}
	if writes := s.st.Counter(stats.DramAccessDataWrite); enc != writes {
		t.Fatalf("encrypt ops %d != data writebacks %d", enc, writes)
	}
	// The cipher is charged at the cache controller (L2 side), never at
	// the MC: the MC exposure accumulator must stay empty.
	if n := s.st.Accum(stats.TsimCryptoExposureMCPS).Count; n != 0 {
		t.Fatalf("bipbip recorded %d MC crypto exposures", n)
	}
	if s.st.Accum(stats.TsimCryptoExposureL2PS).Count == 0 {
		t.Fatal("bipbip never recorded L2 cipher exposure")
	}
}

// TestInSRAMRunUsesGeometryPool: CtrInSRAM is also counter-free, but its
// cipher runs at the MC on a pool whose latency derives from SRAM geometry.
func TestInSRAMRunUsesGeometryPool(t *testing.T) {
	s, res := run(t, func(c *config.Config) { insramCfg(c); smallLLC(c) },
		"canneal", 100_000, 200_000)
	if res.SimulatedTime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if s.st.Counter(stats.DramAccessCtrRead) != 0 || s.st.Counter(stats.TsimCtrLLCLookup) != 0 {
		t.Fatal("counter-free design produced counter traffic")
	}
	if s.mc.home != nil {
		t.Fatal("insram built a metadata home")
	}
	if s.mc.aes == nil {
		t.Fatal("insram did not build its geometry AES pool")
	}
	if got, want := s.mc.aes.Latency(), config.InSRAMAESLatency(s.cfg); got != want {
		t.Fatalf("pool latency %v, want geometry-derived %v", got, want)
	}
	dec := s.st.Counter(stats.InSRAMDecryptOps)
	if dec == 0 || dec != s.st.Counter(stats.TsimMCDataFill) {
		t.Fatalf("decrypt ops %d vs data fills %d", dec, s.st.Counter(stats.TsimMCDataFill))
	}
	enc := s.st.Counter(stats.InSRAMEncryptOps)
	if writes := s.st.Counter(stats.DramAccessDataWrite); enc == 0 || enc != writes {
		t.Fatalf("encrypt ops %d vs data writebacks %d", enc, writes)
	}
	// Exposure is at the MC (the cipher cannot start before the
	// ciphertext arrives), never at L2.
	if s.st.Accum(stats.TsimCryptoExposureMCPS).Count == 0 {
		t.Fatal("insram never recorded MC cipher exposure")
	}
	if n := s.st.Accum(stats.TsimCryptoExposureL2PS).Count; n != 0 {
		t.Fatalf("insram recorded %d L2 crypto exposures", n)
	}
}

// TestCounterFreeDesignsSlowerThanNonSecure: both new designs still pay
// their cipher on the critical path, so they cannot beat the non-secure
// baseline (determinism makes the comparison exact, not statistical).
func TestCounterFreeDesignsSlowerThanNonSecure(t *testing.T) {
	_, ns := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 100_000, 200_000)
	_, bb := run(t, bipbipCfg, "canneal", 100_000, 200_000)
	_, is := run(t, insramCfg, "canneal", 100_000, 200_000)
	if bb.SimulatedTime < ns.SimulatedTime {
		t.Fatalf("bipbip (%v) faster than non-secure (%v)", bb.SimulatedTime, ns.SimulatedTime)
	}
	if is.SimulatedTime < ns.SimulatedTime {
		t.Fatalf("insram (%v) faster than non-secure (%v)", is.SimulatedTime, ns.SimulatedTime)
	}
}

func TestSecureSystemsAreSlower(t *testing.T) {
	_, ns := run(t, func(c *config.Config) {
		c.Counter = config.CtrNone
		c.CountersInLLC = false
	}, "canneal", 100_000, 200_000)
	_, mo := run(t, nil, "canneal", 100_000, 200_000)
	if mo.SimulatedTime < ns.SimulatedTime {
		t.Fatalf("morphable (%v) faster than non-secure (%v)", mo.SimulatedTime, ns.SimulatedTime)
	}
	if mo.L2MissLatencyNS < ns.L2MissLatencyNS {
		t.Fatalf("morphable miss latency (%v) below non-secure (%v)", mo.L2MissLatencyNS, ns.L2MissLatencyNS)
	}
}

func TestEMCCRunExercisesAllPaths(t *testing.T) {
	s, res := run(t, func(c *config.Config) { c.EMCC = true }, "canneal", 150_000, 300_000)
	st := s.Stats()
	probes := st.Counter(stats.EmccL2CtrHit) + st.Counter(stats.EmccL2CtrMiss)
	if probes != st.Counter("tsim/l2-data-miss") {
		t.Fatalf("counter probes %d != L2 data misses %d", probes, st.Counter("tsim/l2-data-miss"))
	}
	if st.Counter(stats.EmccDecryptAtL2) == 0 {
		t.Fatal("EMCC never decrypted at L2")
	}
	if res.DecryptAtL2Frac <= 0 || res.DecryptAtL2Frac > 1 {
		t.Fatalf("decrypt-at-L2 fraction = %v", res.DecryptAtL2Frac)
	}
}

func TestDeterminism(t *testing.T) {
	_, a := run(t, func(c *config.Config) { c.EMCC = true }, "pageRank", 80_000, 150_000)
	_, b := run(t, func(c *config.Config) { c.EMCC = true }, "pageRank", 80_000, 150_000)
	if a.SimulatedTime != b.SimulatedTime || a.Instructions != b.Instructions {
		t.Fatalf("identical configs diverged: %v/%v vs %v/%v",
			a.SimulatedTime, a.Instructions, b.SimulatedTime, b.Instructions)
	}
}

func TestXPTSpeedsUpMisses(t *testing.T) {
	_, off := run(t, nil, "canneal", 100_000, 200_000)
	_, on := run(t, func(c *config.Config) { c.XPT = true }, "canneal", 100_000, 200_000)
	if on.L2MissLatencyNS >= off.L2MissLatencyNS {
		t.Fatalf("XPT did not reduce L2 miss latency: %.1f vs %.1f",
			on.L2MissLatencyNS, off.L2MissLatencyNS)
	}
}

func TestSC64GeneratesOverflowTraffic(t *testing.T) {
	s, _ := run(t, func(c *config.Config) { c.Counter = config.CtrSC64 }, "canneal", 150_000, 400_000)
	if s.st.Counter("overflow/events") == 0 {
		t.Skip("no overflow at this scale; acceptable but unusual")
	}
	if s.st.Counter("dram/access/overflow-l0/read") == 0 {
		t.Fatal("overflow happened but produced no DRAM traffic")
	}
}

func TestMoreChannelsReduceQueuing(t *testing.T) {
	_, ch1 := run(t, nil, "mcf", 100_000, 200_000)
	_, ch8 := run(t, func(c *config.Config) { c.Channels = 8 }, "mcf", 100_000, 200_000)
	if ch8.SimulatedTime > ch1.SimulatedTime {
		t.Fatalf("8 channels slower than 1: %v vs %v", ch8.SimulatedTime, ch1.SimulatedTime)
	}
}

func TestBandwidthFractionsSane(t *testing.T) {
	_, res := run(t, nil, "mcf", 100_000, 200_000)
	var total float64
	for _, v := range res.BusyFraction {
		if v < 0 {
			t.Fatalf("negative utilisation: %+v", res.BusyFraction)
		}
		total += v
	}
	if total > 1.01 {
		t.Fatalf("total utilisation %v exceeds 100%%", total)
	}
}

func TestWarmupReducesColdMisses(t *testing.T) {
	cold, warm := int64(0), int64(0)
	{
		s, _ := run(t, nil, "omnetpp", 100_000, 0)
		cold = s.st.Counter("tsim/llc-data-miss")
	}
	{
		s, _ := run(t, nil, "omnetpp", 100_000, 400_000)
		warm = s.st.Counter("tsim/llc-data-miss")
	}
	if warm >= cold {
		t.Fatalf("warmup did not reduce misses: cold=%d warm=%d", cold, warm)
	}
}

func TestEveryPrimaryBenchmarkRuns(t *testing.T) {
	for _, b := range workload.PrimaryNames() {
		b := b
		t.Run(b, func(t *testing.T) {
			_, res := run(t, func(c *config.Config) { c.EMCC = true }, b, 40_000, 80_000)
			if res.SimulatedTime <= 0 {
				t.Fatalf("%s produced no simulated time", b)
			}
		})
	}
}

func TestDynamicOffOnCacheResidentWorkload(t *testing.T) {
	// exchange2_s is cache-resident (512 KB footprint): after its cold
	// start, the Sec. IV-F monitor should observe almost no DRAM fills
	// and turn EMCC off.
	cfg := config.Default()
	cfg.EMCC = true
	cfg.EMCCDynamicOff = true
	s, err := New(&cfg, Options{
		Benchmark: "exchange2_s", Seed: 3, Refs: 600_000, Warmup: 400_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	off := 0
	for _, l2 := range s.l2s {
		if l2.monitor == nil {
			t.Fatal("monitor not installed")
		}
		if !l2.monitor.Enabled() {
			off++
		}
	}
	if off == 0 {
		t.Fatal("intensity monitor never turned EMCC off on a cache-resident app")
	}
}

func TestAblationFlagsChangeBehaviour(t *testing.T) {
	base := func(c *config.Config) { c.EMCC = true }
	_, a := run(t, base, "canneal", 80_000, 200_000)
	_, b := run(t, func(c *config.Config) { base(c); c.EMCCDisableAESGate = true }, "canneal", 80_000, 200_000)
	// The ablation must at least produce a different schedule.
	if a.SimulatedTime == b.SimulatedTime {
		t.Skip("gate ablation produced identical timing at this scale")
	}
}

func TestPrefetcherHelpsStreamingWorkload(t *testing.T) {
	// streamcluster is stream-dominated: a degree-2 stride prefetcher
	// should cut its L2 read-miss latency or total time.
	_, off := run(t, nil, "streamcluster", 120_000, 200_000)
	s, on := run(t, func(c *config.Config) { c.PrefetchL2Degree = 2 }, "streamcluster", 120_000, 200_000)
	if s.st.Counter("tsim/l2-prefetch") == 0 {
		t.Fatal("prefetcher never issued")
	}
	if on.SimulatedTime > off.SimulatedTime*105/100 {
		t.Fatalf("prefetching slowed streaming run: %v vs %v", on.SimulatedTime, off.SimulatedTime)
	}
}

func TestCustomGeneratorsDriveTiming(t *testing.T) {
	gens, err := workload.NewSet("canneal", 4, 5, workload.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	space, _ := workload.SpaceBytes("canneal", 4, workload.TestScale())
	cfg := config.Default()
	s, err := New(&cfg, Options{
		Cores: 4, Refs: 40_000, Generators: gens, DataBytes: space,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.SimulatedTime <= 0 {
		t.Fatal("custom-generator run produced no time")
	}
}

func TestCustomGeneratorsValidated(t *testing.T) {
	gens, _ := workload.NewSet("canneal", 2, 5, workload.TestScale())
	cfg := config.Default()
	if _, err := New(&cfg, Options{Cores: 4, Refs: 1, Generators: gens, DataBytes: 1 << 20}); err == nil {
		t.Fatal("generator/core mismatch accepted")
	}
	gens4, _ := workload.NewSet("canneal", 4, 5, workload.TestScale())
	if _, err := New(&cfg, Options{Cores: 4, Refs: 1, Generators: gens4}); err == nil {
		t.Fatal("missing DataBytes accepted")
	}
}

func TestWarmupFillsEMCCCounters(t *testing.T) {
	cfg := config.Default()
	cfg.EMCC = true
	s, err := New(&cfg, Options{
		Benchmark: "canneal", Seed: 3, Refs: 4, Warmup: 400_000,
		Scale: workload.TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.warm(s.opt.Warmup)
	// The warm replay must have populated counters in at least one L2
	// and metadata in the MC's cache.
	total := 0
	for _, l2 := range s.l2s {
		total += l2.c.KindCount(1) + l2.c.KindCount(2) // counter + tree kinds
	}
	if total == 0 {
		t.Fatal("warmup left no counters in any L2")
	}
	if s.mc.home.Meta.Occupancy() == 0 {
		t.Fatal("warmup left the MC metadata cache empty")
	}
}
