package tsim

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// llcCtl models the sliced last-level cache. State is one functional cache
// (the slices are a latency construct: each block's home slice tile
// determines its NoC distances); a miss pays only the tag lookup while a
// hit pays tag + data, the 'L' effect of Fig 13.
type llcCtl struct {
	s          *Sim
	c          *cache.Cache
	tagLat     sim.Time
	dataLat    sim.Time
	payloadPen sim.Time // 'M' of Fig 13: transmitting counter payloads
}

func newLLCCtl(s *Sim) *llcCtl {
	g := &llcCtl{
		s:          s,
		c:          cache.New("llc", s.cfg.L3Bytes, s.cfg.L3Ways),
		tagLat:     s.cfg.L3TagLatency,
		dataLat:    s.cfg.L3DataLatency,
		payloadPen: sim.NS(1),
	}
	g.c.SetRecorder(s.ivr)
	return g
}

// dataAccess serves an L2 data miss arriving at its home slice.
func (g *llcCtl) dataAccess(req *readReq, slice noc.NodeID) {
	s := g.s
	t := s.eng.Now()
	s.st.Inc(stats.TsimLLCDataAccess)
	if g.c.Lookup(req.block) {
		// On-chip data is already decrypted and verified.
		req.tr.AddSpan(obs.SegLLCProbe, t, t+g.tagLat+g.dataLat)
		arr := t + g.tagLat + g.dataLat + s.oneway(slice, req.l2.tile)
		req.tr.AddSpan(obs.SegNoCResp, t+g.tagLat+g.dataLat, arr)
		s.schedReq(arr, completePlainLocalCB, req)
		return
	}
	s.st.Inc(stats.TsimLLCDataMiss)
	req.llcMissed = true
	req.tr.MarkLLCMiss()
	req.tr.AddSpan(obs.SegLLCProbe, t, t+g.tagLat)
	if s.cfg.EMCC && s.secure() {
		// This LLC miss proves the L2's counter copy useful (Fig 11).
		req.l2.c.MarkUsed(s.mc.home.CounterBlockOf(req.block))
	}
	mcTile := s.mesh.MCTile(s.mesh.MCOf(req.block))
	req.tr.AddSpan(obs.SegNoCToMC, t+g.tagLat, t+g.tagLat+s.oneway(slice, mcTile))
	s.schedReq(t+g.tagLat+s.oneway(slice, mcTile), mcDataReadConfCB, req)
}

// counterAccessFromL2 serves EMCC's speculative parallel counter fetch.
// Beyond the aggregate tsim/ctr-llc-* counters (shared with the MC path
// below), the probe keeps its own tsim/ctr-spec-llc-* classification: fsim's
// speculative probe is the only LLC counter access its EMCC model performs,
// so the differential harness compares it against this split, not the
// aggregate.
func (g *llcCtl) counterAccessFromL2(req *readReq, cb uint64, slice noc.NodeID) {
	s := g.s
	t := s.eng.Now()
	s.st.Inc(stats.TsimCtrLLCLookup)
	s.st.Inc(stats.TsimCtrSpecLLCLookup)
	if g.c.Lookup(cb) {
		s.st.Inc(stats.TsimCtrLLCHit)
		s.st.Inc(stats.TsimCtrSpecLLCHit)
		req.tr.MarkCtr(obs.CtrAtLLC)
		arr := t + g.tagLat + g.dataLat + g.payloadPen + s.oneway(slice, req.l2.tile)
		s.schedReq(arr, counterArrivedCB, req)
		return
	}
	s.st.Inc(stats.TsimCtrLLCMiss)
	s.st.Inc(stats.TsimCtrSpecLLCMiss)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(cb))
	s.schedReq(t+g.tagLat+s.oneway(slice, mcTile), counterMissCB, req)
}

// metaAccessFromMC serves the baseline MC counter path: the MC, having
// missed its private counter cache, probes the LLC (serially after the data
// miss, Sec. III-B).
func (g *llcCtl) metaAccessFromMC(mb uint64, mcTile noc.NodeID, done func(hit bool, at sim.Time)) {
	s := g.s
	t := s.eng.Now()
	s.st.Inc(stats.TsimCtrLLCLookup)
	slice := s.mesh.SliceOf(mb)
	if g.c.Lookup(mb) {
		s.st.Inc(stats.TsimCtrLLCHit)
		arr := t + g.tagLat + g.dataLat + g.payloadPen + s.oneway(slice, mcTile)
		s.at(arr, func() { done(true, arr) })
		return
	}
	s.st.Inc(stats.TsimCtrLLCMiss)
	arr := t + g.tagLat + s.oneway(slice, mcTile)
	s.at(arr, func() { done(false, arr) })
}

// insert places a block in the LLC (L2 victims, counter copies), routing
// displaced dirty blocks to the MC for writeback.
func (g *llcCtl) insert(block uint64, dirty bool, kind addr.Kind) {
	v, ok := g.c.Insert(block, dirty, kind)
	if !ok || !v.Dirty {
		return
	}
	if v.Kind == addr.KindData {
		g.s.mc.writebackData(v.Block)
		return
	}
	g.s.mc.writebackMeta(v.Block)
}
