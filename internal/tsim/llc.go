package tsim

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// llcSlice is one LLC slice: a real tag-store shard on its own mesh tile,
// holding its share of the total sets (cache.SplitSets — the same split
// fsim uses, so the functional and timing LLC contents stay comparable).
// Under the sharded engine slice j executes in domain j mod Domains; on
// the serial engine all slices share the engine, but the message seams are
// identical (see topo.go). A miss pays only the tag lookup while a hit
// pays tag + data, the 'L' effect of Fig 13.
type llcSlice struct {
	s    *Sim
	idx  int
	tile noc.NodeID
	dom  *sim.Domain // nil on the serial engine / hub
	es   sched
	st   *stats.Set
	c    *cache.Cache

	tagLat     sim.Time
	dataLat    sim.Time
	payloadPen sim.Time // 'M' of Fig 13: transmitting counter payloads

	toCore []port // responses, counter deliveries, miss notes
	toHub  port   // LLC misses, counter misses, victim writebacks, probe replies

	// Prebound handlers for packed-payload messages arriving at this
	// slice (bound once at construction; see the handle* methods).
	insertDataCB func(any)
	insertMetaCB func(any)
	metaProbeCB  func(any)
}

// buildSlices constructs every LLC slice. The slice count is the mesh's
// core-tile count — a property of the geometry, never of Domains, so a
// sharded run models exactly the machine the serial run does.
func (s *Sim) buildSlices() {
	n := s.mesh.CoreTiles()
	totalSets := uint64(s.cfg.L3Bytes/addr.BlockBytes) / uint64(s.cfg.L3Ways)
	split := cache.SplitSets(totalSets, n)
	s.slices = make([]*llcSlice, n)
	for j := 0; j < n; j++ {
		d := s.sliceDom(j)
		g := &llcSlice{
			s:          s,
			idx:        j,
			tile:       s.mesh.CoreTile(j),
			dom:        d,
			es:         s.domES(d),
			st:         s.sliceStats(j),
			c:          cache.NewSets(fmt.Sprintf("llc.%d", j), split[j], s.cfg.L3Ways),
			tagLat:     s.cfg.L3TagLatency,
			dataLat:    s.cfg.L3DataLatency,
			payloadPen: sim.NS(1),
		}
		g.c.SetRecorder(s.ivr)
		g.insertDataCB = g.handleInsertData
		g.insertMetaCB = g.handleInsertMeta
		g.metaProbeCB = g.handleMetaProbe
		s.slices[j] = g
	}
}

// dataAccess serves an L2 data miss arriving at its home slice.
func (g *llcSlice) dataAccess(req *readReq) {
	s := g.s
	t := g.es.Now()
	g.st.Inc(stats.TsimLLCDataAccess)
	if g.c.Lookup(req.block) {
		// On-chip data is already decrypted and verified.
		req.tr.AddSpan(obs.SegLLCProbe, t, t+g.tagLat+g.dataLat)
		arr := t + g.tagLat + g.dataLat + s.oneway(g.tile, req.l2.tile)
		req.tr.AddSpan(obs.SegNoCResp, t+g.tagLat+g.dataLat, arr)
		req.holdReq()
		g.toCore[req.l2.id].send(arr, completePlainLocalCB, req)
		return
	}
	g.st.Inc(stats.TsimLLCDataMiss)
	req.tr.MarkLLCMiss()
	req.tr.AddSpan(obs.SegLLCProbe, t, t+g.tagLat)
	if s.cfg.EMCC && s.secure() {
		// Tell the requesting L2 its data access missed here: the miss
		// note marks the L2's counter copy useful (Fig 11) and sets the
		// request's llcMissed bit — state only the owning L2 may touch.
		req.holdReq()
		g.toCore[req.l2.id].send(t+g.tagLat+s.oneway(g.tile, req.l2.tile), llcMissNoteCB, req)
	}
	mcTile := s.mesh.MCTile(s.mesh.MCOf(req.block))
	req.tr.AddSpan(obs.SegNoCToMC, t+g.tagLat, t+g.tagLat+s.oneway(g.tile, mcTile))
	req.holdReq()
	g.toHub.send(t+g.tagLat+s.oneway(g.tile, mcTile), mcDataReadConfCB, req)
}

// counterAccessFromL2 serves EMCC's speculative parallel counter fetch.
// Beyond the aggregate tsim/ctr-llc-* counters (shared with the MC path
// below), the probe keeps its own tsim/ctr-spec-llc-* classification: fsim's
// speculative probe is the only LLC counter access its EMCC model performs,
// so the differential harness compares it against this split, not the
// aggregate.
func (g *llcSlice) counterAccessFromL2(req *readReq, cb uint64) {
	s := g.s
	t := g.es.Now()
	g.st.Inc(stats.TsimCtrLLCLookup)
	g.st.Inc(stats.TsimCtrSpecLLCLookup)
	if g.c.Lookup(cb) {
		g.st.Inc(stats.TsimCtrLLCHit)
		g.st.Inc(stats.TsimCtrSpecLLCHit)
		req.tr.MarkCtr(obs.CtrAtLLC)
		arr := t + g.tagLat + g.dataLat + g.payloadPen + s.oneway(g.tile, req.l2.tile)
		req.holdReq()
		g.toCore[req.l2.id].send(arr, counterArrivedCB, req)
		return
	}
	g.st.Inc(stats.TsimCtrLLCMiss)
	g.st.Inc(stats.TsimCtrSpecLLCMiss)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(cb))
	req.holdReq()
	g.toHub.send(t+g.tagLat+s.oneway(g.tile, mcTile), counterMissCB, req)
}

// handleMetaProbe serves the baseline MC counter path: the MC, having
// missed its private counter cache, probes the home slice (serially after
// the data miss, Sec. III-B) and the slice replies with a packed
// mb<<1|hit verdict (mcCtl.metaProbeDone).
func (g *llcSlice) handleMetaProbe(a any) {
	s := g.s
	mb := s.unbox(a)
	t := g.es.Now()
	g.st.Inc(stats.TsimCtrLLCLookup)
	mcTile := s.mesh.MCTile(s.mesh.MCOf(mb))
	if g.c.Lookup(mb) {
		g.st.Inc(stats.TsimCtrLLCHit)
		arr := t + g.tagLat + g.dataLat + g.payloadPen + s.oneway(g.tile, mcTile)
		g.toHub.send(arr, s.mc.metaProbeDoneCB, s.box(mb<<1|1))
		return
	}
	g.st.Inc(stats.TsimCtrLLCMiss)
	g.toHub.send(t+g.tagLat+s.oneway(g.tile, mcTile), s.mc.metaProbeDoneCB, s.box(mb<<1))
}

// handleInsertData unpacks an L2 data-victim spill (block<<1|dirty).
func (g *llcSlice) handleInsertData(a any) {
	p := g.s.unbox(a)
	g.insert(p>>1, p&1 != 0, addr.KindData)
}

// handleInsertMeta unpacks a metadata insert from the MC
// (block<<8 | kind<<1 | dirty).
func (g *llcSlice) handleInsertMeta(a any) {
	p := g.s.unbox(a)
	g.insert(p>>8, p&1 != 0, addr.Kind(p>>1&0x7f))
}

// insert places a block in the slice (L2 victims, counter copies). A
// displaced dirty block travels to the MC as a writeback message — except
// during functional warmup, when the whole path runs synchronously.
func (g *llcSlice) insert(block uint64, dirty bool, kind addr.Kind) {
	v, ok := g.c.Insert(block, dirty, kind)
	if !ok || !v.Dirty {
		return
	}
	s := g.s
	if s.warming {
		if v.Kind == addr.KindData {
			s.mc.writebackData(v.Block)
		} else {
			s.mc.writebackMeta(v.Block)
		}
		return
	}
	cb := s.mc.wbDataCB
	if v.Kind != addr.KindData {
		cb = s.mc.wbMetaCB
	}
	mcTile := s.mesh.MCTile(s.mesh.MCOf(v.Block))
	//lint:ignore allocpin sharded-engine path: box falls back to a per-message allocation only when Domains > 0, outside the serial-only 0-alloc pins
	g.toHub.send(g.es.Now()+s.oneway(g.tile, mcTile), cb, s.box(v.Block))
}
