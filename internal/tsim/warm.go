package tsim

import (
	"repro/internal/addr"
	"repro/internal/workload"
)

// Functional warmup: before detailed simulation starts, the caches, the
// MC's metadata cache and — crucially — the counter values are warmed by
// replaying references without timing, the equivalent of gem5's atomic-mode
// warmup the paper uses ("warm up the counter values for 25 billion
// instructions", Sec. V). Statistics are reset afterwards.

// warm replays refs references functionally.
func (s *Sim) warm(refs int64) {
	if refs <= 0 {
		return
	}
	s.warming = true
	perCore := refs / int64(len(s.cpus))
	for i := int64(0); i < perCore; i++ {
		for c := range s.cpus {
			s.warmAccess(c, s.cpus[c].gen.Next())
		}
	}
	s.warming = false
	// The measurement boundary: reset the run's set and every per-domain
	// shard (warm traffic bumps entity-local counters like EmccUseless).
	s.st.Reset()
	for _, ds := range s.domSets {
		ds.Reset()
	}
}

// warmAccess mirrors the timed read/write path against the same functional
// structures, minus all latency.
func (s *Sim) warmAccess(c int, a workload.Access) {
	block := addr.BlockOf(a.Addr)
	cpu := s.cpus[c]
	l2 := s.l2s[c]
	if cpu.l1.Lookup(block) {
		if a.Write {
			cpu.l1.MarkDirty(block)
		}
		return
	}
	if l2.c.Lookup(block) {
		cpu.fillL1(block, a.Write)
		return
	}
	// L2 miss: EMCC counter-side warm.
	if s.cfg.EMCC && s.secure() {
		s.warmCounterProbe(l2, block)
	}
	if s.sliceFor(block).c.Lookup(block) {
		l2.fill(block, false, 0)
		cpu.fillL1(block, a.Write)
		return
	}
	// DRAM fill; counter placement warms like the baseline path. The
	// counter-free designs have no metadata to place.
	if s.counters() {
		cb := s.mc.home.CounterBlockOf(block)
		if s.cfg.EMCC {
			l2.c.MarkUsed(cb)
		} else {
			s.warmMeta(cb)
		}
	}
	l2.fill(block, false, 0)
	cpu.fillL1(block, a.Write)
}

// warmCounterProbe mirrors l2Ctl.counterProbe functionally.
func (s *Sim) warmCounterProbe(l2 *l2Ctl, dataBlock uint64) {
	cb := s.mc.home.CounterBlockOf(dataBlock)
	if l2.c.Lookup(cb) {
		return
	}
	if !s.sliceFor(cb).c.Lookup(cb) {
		s.warmMeta(cb)
		s.sliceFor(cb).insert(cb, false, addr.KindCounter)
	}
	l2.insertCounter(cb)
}

// warmMeta mirrors mcCtl.fetchMeta functionally.
func (s *Sim) warmMeta(mb uint64) {
	if s.mc.home.Meta.Lookup(mb) {
		return
	}
	if s.cfg.CountersInLLC && s.sliceFor(mb).c.Lookup(mb) {
		s.mc.insertMeta(mb)
		return
	}
	if p, ok := s.mc.home.Space.ParentOf(mb); ok {
		s.warmMeta(p)
	}
	s.mc.insertMeta(mb)
}

// warmBump advances a counter during warmup (writebacks reached DRAM
// functionally): values warm, traffic is not modelled.
func (s *Sim) warmBump(block uint64) {
	parent, ok := s.mc.home.Space.ParentOf(block)
	if !ok {
		return
	}
	s.warmMeta(parent)
	s.mc.home.IncrementCounterOf(block)
	s.mc.home.MarkMetaDirty(parent)
}
