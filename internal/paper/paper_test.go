package paper

import (
	"strings"
	"testing"
)

func TestExpectationsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Expectations() {
		if !strings.HasPrefix(e.Figure, "fig") {
			t.Errorf("bad figure id %q", e.Figure)
		}
		if e.Metric == "" || e.Source == "" {
			t.Errorf("%s: metric/source missing", e.Figure)
		}
		if e.Unit != "%" && e.Unit != "ns" {
			t.Errorf("%s: unknown unit %q", e.Figure, e.Unit)
		}
		if e.Tolerance < 0 {
			t.Errorf("%s: negative tolerance", e.Figure)
		}
		if e.Tolerance == 0 && e.Direction == "" {
			t.Errorf("%s (%s): neither tolerance nor direction — unverifiable", e.Figure, e.Metric)
		}
		key := e.Figure + "/" + e.Metric
		if seen[key] {
			t.Errorf("duplicate expectation %s", key)
		}
		seen[key] = true
	}
}

func TestHeadlineClaimsPresent(t *testing.T) {
	// The claims every reader of the paper remembers must be encoded.
	want := map[string]float64{
		"fig16": 7,    // +7% mean
		"fig11": 3.2,  // useless 3.2%
		"fig23": 1.7,  // invalidations 1.7%
		"fig19": 76.3, // decrypt-at-L2 76.3%
	}
	got := map[string]bool{}
	for _, e := range Expectations() {
		if v, ok := want[e.Figure]; ok && e.Value == v {
			got[e.Figure] = true
		}
	}
	for f := range want {
		if !got[f] {
			t.Errorf("headline claim for %s missing", f)
		}
	}
}

func TestByFigureGroups(t *testing.T) {
	m := ByFigure()
	if len(m["fig16"]) != 2 {
		t.Fatalf("fig16 expectations = %d, want 2 (mean + canneal)", len(m["fig16"]))
	}
	total := 0
	for _, es := range m {
		total += len(es)
	}
	if total != len(Expectations()) {
		t.Fatal("grouping lost expectations")
	}
}
