// Package paper records the numbers the paper reports for every
// reproduced table and figure, as machine-readable expectations. The
// report generator (cmd/report) compares regenerated results against them
// and classifies each experiment as matching in magnitude, matching in
// shape, or deviating — turning EXPERIMENTS.md into a regression check.
package paper

// Expectation is one quantitative claim from the paper about a figure.
type Expectation struct {
	Figure string // "fig16"
	Metric string // short label, e.g. "mean EMCC gain over Morphable"
	// Value is the paper's reported number (percent values as percent,
	// nanoseconds as ns).
	Value float64
	Unit  string
	// Tolerance is the band (same unit) within which the reproduction
	// counts as matching in magnitude; outside it, direction/shape
	// checks still apply.
	Tolerance float64
	// Direction, when non-empty, is a shape claim that must hold even if
	// the magnitude differs: "higher-than-zero", "increases", "decreases".
	Direction string
	// Source quotes where the paper states it.
	Source string
}

// Expectations lists every claim checked by the report.
func Expectations() []Expectation {
	return []Expectation{
		{
			Figure: "fig2", Metric: "mean total traffic overhead w/o counters in LLC",
			Value: 105, Unit: "%", Tolerance: 40,
			Source: "Sec. III: 'caching counters in LLC reduces total DRAM traffic overhead from 105% down to 59%'",
		},
		{
			Figure: "fig2", Metric: "mean total traffic overhead w/ counters in LLC",
			Value: 59, Unit: "%", Tolerance: 30, Direction: "decreases",
			Source: "Sec. III, Fig 2",
		},
		{
			Figure: "fig3", Metric: "mean LLC hit latency",
			Value: 23, Unit: "ns", Tolerance: 1.5,
			Source: "Sec. III-A: 'It is 23ns, on average'",
		},
		{
			Figure: "fig5", Metric: "added latency of caching counters in LLC (counter miss)",
			Value: 19, Unit: "ns", Tolerance: 2,
			Source: "Sec. III-B: 'increases Secure Memory Access Latency by 19ns Direct LLC Latency'",
		},
		{
			Figure: "fig6", Metric: "mean MC counter-cache hit rate",
			Value: 65, Unit: "%", Tolerance: 15,
			Source: "Fig 6: 65% MC hit / 15% LLC hit / 19% LLC miss",
		},
		{
			Figure: "fig6", Metric: "mean LLC counter miss rate",
			Value: 19, Unit: "%", Tolerance: 10, Direction: "higher-than-zero",
			Source: "Sec. III-B: '19% of normal block misses in LLC also suffer from counter misses'",
		},
		{
			Figure: "fig7", Metric: "mean LLC counter miss rate at 12MB/core",
			Value: 14, Unit: "%", Tolerance: 10, Direction: "decreases",
			Source: "Sec. III-B: 'only reduces from 19% down to 14%'",
		},
		{
			Figure: "fig8", Metric: "added latency of counter hit in LLC vs MC",
			Value: 8, Unit: "ns", Tolerance: 2,
			Source: "Fig 8: 'Overhead (8ns)'",
		},
		{
			Figure: "fig10", Metric: "EMCC earlier response under counter miss in LLC",
			Value: 16, Unit: "ns", Tolerance: 6, Direction: "higher-than-zero",
			Source: "Fig 10: 'EMCC can respond ... 16ns earlier than the baseline'",
		},
		{
			Figure: "fig11", Metric: "mean useless counter accesses / L2 misses",
			Value: 3.2, Unit: "%", Tolerance: 5,
			Source: "Sec. IV-C: 'It is only 3.2% on average'",
		},
		{
			Figure: "fig12", Metric: "EMCC total counter accesses to LLC / L2 misses",
			Value: 35.6, Unit: "%", Tolerance: 15,
			Source: "Sec. IV-C: 'it is 35.6%, on average'",
		},
		{
			Figure: "fig14", Metric: "EMCC earlier response under XPT",
			Value: 22, Unit: "ns", Tolerance: 6, Direction: "higher-than-zero",
			Source: "Fig 14: 'EMCC can respond ... 22ns earlier'",
		},
		{
			Figure: "fig16", Metric: "mean EMCC improvement over Morphable",
			Value: 7, Unit: "%", Tolerance: 5, Direction: "higher-than-zero",
			Source: "Abstract/Sec. VI: 'improves performance ... by 7%, on average'",
		},
		{
			Figure: "fig16", Metric: "canneal EMCC improvement (maximum)",
			Value: 12.5, Unit: "%", Tolerance: 10, Direction: "higher-than-zero",
			Source: "Sec. VI: 'Canneal gets the most benefit - 12.5%'",
		},
		{
			Figure: "fig17", Metric: "mean L2 miss latency saving of EMCC",
			Value: 5, Unit: "ns", Tolerance: 4, Direction: "higher-than-zero",
			Source: "Sec. VI: 'EMCC saves, on average, 5ns on L2 data miss latency'",
		},
		{
			Figure: "fig18", Metric: "mean improvement at 25ns AES",
			Value: 9, Unit: "%", Tolerance: 7, Direction: "increases",
			Source: "Sec. VI-A: 'increases to 9% when AES latency increases to 25ns'",
		},
		{
			Figure: "fig19", Metric: "mean DRAM reads decrypted at L2 (50% AES moved)",
			Value: 76.3, Unit: "%", Tolerance: 25,
			Source: "Sec. VI-B: 'decrypts and verifies 76.3% of DRAM data accesses at L2'",
		},
		{
			Figure: "fig20", Metric: "benefit change from 128KB to 512KB counter cache",
			Value: 1, Unit: "%", Tolerance: 2, Direction: "decreases",
			Source: "Sec. VI-C: 'the decrease in benefit is less than 1%'",
		},
		{
			Figure: "fig21", Metric: "benefit under 8 channels vs 1",
			Value: 0, Unit: "%", Tolerance: 0, Direction: "increases",
			Source: "Sec. VI-D: 'the performance benefit ... increases under eight channels'",
		},
		{
			Figure: "fig22", Metric: "writes queue longer than reads",
			Value: 0, Unit: "ns", Tolerance: 0, Direction: "higher-than-zero",
			Source: "Fig 22: 'writebacks ... experience higher queuing delay than reads'",
		},
		{
			Figure: "fig23", Metric: "mean counter invalidations / insertions",
			Value: 1.7, Unit: "%", Tolerance: 8,
			Source: "Sec. VI-E: 'only 1.7% of counter blocks inserted into L2 are invalidated'",
		},
		{
			Figure: "fig24", Metric: "mean useless counter accesses (regular set)",
			Value: 1, Unit: "%", Tolerance: 3,
			Source: "Sec. VI-F: 'only 1% useless counter accesses in LLC, on average'",
		},
	}
}

// ByFigure groups expectations by figure id.
func ByFigure() map[string][]Expectation {
	out := make(map[string][]Expectation)
	for _, e := range Expectations() {
		out[e.Figure] = append(out[e.Figure], e)
	}
	return out
}
