package secmem

import (
	"encoding/binary"

	"repro/internal/crypto"
)

// directCipher is the functional model shared by the counter-free designs
// (CtrBipBip, CtrInSRAM): an XEX-style tweakable block cipher over the
// 16 B AES primitive. Each 16 B lane of a 64 B block is whitened with an
// encrypted tweak derived from its byte address and lane index, so equal
// plaintext at different addresses (or different lanes) produces different
// ciphertext without any per-block counter state. There is no MAC and no
// integrity tree: tampering garbles plaintext but is not detected.
type directCipher struct {
	data  *crypto.AES // bulk cipher
	tweak *crypto.AES // tweak generator (independent derived key)
}

// newDirectCipher derives the two XEX keys from one 16-byte master key:
// the bulk key is the master key itself; the tweak key is the master
// cipher's encryption of a fixed domain-separation constant.
func newDirectCipher(key []byte) *directCipher {
	data := crypto.NewAES(key)
	var derived [16]byte
	data.Encrypt(derived[:], []byte("emcc/xex-tweak-k"))
	return &directCipher{data: data, tweak: crypto.NewAES(derived[:])}
}

// tweakOf computes the encrypted whitening value for one lane.
func (d *directCipher) tweakOf(byteAddr uint64, lane int, t *[16]byte) {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[0:8], byteAddr)
	binary.LittleEndian.PutUint64(in[8:16], uint64(lane))
	d.tweak.Encrypt(t[:], in[:])
}

// encrypt maps a 64 B plaintext block to ciphertext: per lane,
// C = E(P xor T) xor T.
func (d *directCipher) encrypt(dst, src []byte, byteAddr uint64) {
	var t, buf [16]byte
	for lane := 0; lane < crypto.BlockBytes/16; lane++ {
		d.tweakOf(byteAddr, lane, &t)
		off := lane * 16
		for i := 0; i < 16; i++ {
			buf[i] = src[off+i] ^ t[i]
		}
		d.data.Encrypt(dst[off:off+16], buf[:])
		for i := 0; i < 16; i++ {
			dst[off+i] ^= t[i]
		}
	}
}

// decrypt inverts encrypt: P = D(C xor T) xor T.
func (d *directCipher) decrypt(dst, src []byte, byteAddr uint64) {
	var t, buf [16]byte
	for lane := 0; lane < crypto.BlockBytes/16; lane++ {
		d.tweakOf(byteAddr, lane, &t)
		off := lane * 16
		for i := 0; i < 16; i++ {
			buf[i] = src[off+i] ^ t[i]
		}
		d.data.Decrypt(dst[off:off+16], buf[:])
		for i := 0; i < 16; i++ {
			dst[off+i] ^= t[i]
		}
	}
}
