// Package secmem is the functional secure-memory model: a simulated DRAM
// image in which data blocks are stored as counter-mode ciphertext with
// co-located MACs (Sec. II), counters are organised per internal/ctr, and
// counter blocks are protected by an integrity tree (internal/itree).
//
// It exists to prove the cryptographic dataflow end to end — that
// decrypt(encrypt(x)) == x, that any tampering with ciphertext, MACs or
// counters is detected, and that the MAC⊕dot-product embedding EMCC relies
// on (Sec. IV-D) verifies the same blocks a full MAC check would.
package secmem

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ctr"
	"repro/internal/itree"
)

// ErrTampered is returned by Read when verification fails.
var ErrTampered = errors.New("secmem: integrity verification failed")

// block is one data block's DRAM image: ciphertext plus its MAC (the MAC is
// co-located with data and ECC in the same DRAM access, Sec. V). counter
// records which counter value the ciphertext was produced under, which the
// overflow re-encryption path needs after a rebase wipes the minors.
type block struct {
	ciphertext [crypto.BlockBytes]byte
	mac        uint64
	counter    uint64
}

// Memory is a functional secure memory.
type Memory struct {
	space *addr.Space
	org   ctr.Organisation
	eng   *crypto.Engine
	tree  *itree.Tree
	data  map[uint64]*block // data block index -> DRAM image
	// direct, when non-nil, replaces the counter-mode machinery with a
	// per-block tweakable cipher (CtrBipBip / CtrInSRAM): no counters,
	// no MACs, no tree — confidentiality only.
	direct *directCipher
}

// New builds a functional secure memory over dataBytes of protected space
// using the given counter design and a 16-byte master key.
func New(dataBytes int64, design config.CounterDesign, key []byte) (*Memory, error) {
	if design == config.CtrNone {
		return nil, fmt.Errorf("secmem: %v has no cryptography to model", design)
	}
	if !design.HasCounters() {
		// Counter-free direct-cipher designs: a data-only address space
		// and an XEX tweakable cipher keyed off the same master key.
		return &Memory{
			space:  addr.NewSpace(dataBytes, 0),
			direct: newDirectCipher(key),
			data:   make(map[uint64]*block),
		}, nil
	}
	org := ctr.New(design)
	space := addr.NewSpace(dataBytes, org.Coverage())
	eng := crypto.NewEngine(key)
	return &Memory{
		space: space,
		org:   org,
		eng:   eng,
		tree:  itree.New(space, org, eng),
		data:  make(map[uint64]*block),
	}, nil
}

// Space exposes the address map.
func (m *Memory) Space() *addr.Space { return m.space }

// Tree exposes the integrity tree (tests tamper with it directly).
func (m *Memory) Tree() *itree.Tree { return m.tree }

// dataBlockOf validates and converts a byte address.
func (m *Memory) dataBlockOf(byteAddr uint64) (uint64, error) {
	if byteAddr%crypto.BlockBytes != 0 {
		return 0, fmt.Errorf("secmem: address %#x not block-aligned", byteAddr)
	}
	blk := addr.BlockOf(byteAddr)
	if blk >= m.space.DataBlocks() {
		return 0, fmt.Errorf("secmem: address %#x beyond protected region", byteAddr)
	}
	return blk, nil
}

// Write encrypts a 64-byte plaintext block and stores ciphertext + MAC,
// advancing the block's write counter first (a fresh OTP per write, Sec.
// II). Counter metadata is written back write-through so the tree stays
// verifiable.
func (m *Memory) Write(byteAddr uint64, plaintext []byte) ([]ctr.Overflow, error) {
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return nil, err
	}
	if len(plaintext) != crypto.BlockBytes {
		return nil, fmt.Errorf("secmem: plaintext must be %d bytes, got %d", crypto.BlockBytes, len(plaintext))
	}
	if m.direct != nil {
		b := m.data[blk]
		if b == nil {
			b = &block{}
			m.data[blk] = b
		}
		m.direct.encrypt(b.ciphertext[:], plaintext, byteAddr)
		return nil, nil
	}
	var ovs []ctr.Overflow
	if ov := m.tree.IncrementCounterOf(blk); ov.Happened {
		ovs = append(ovs, ov)
		// Rebase re-encrypts every block the counter block covers
		// under its fresh counters.
		m.reencryptCovered(blk)
	}
	b := m.data[blk]
	if b == nil {
		b = &block{}
		m.data[blk] = b
	}
	counter := m.tree.CounterOf(blk)
	m.eng.Encrypt(b.ciphertext[:], plaintext, byteAddr, counter)
	b.mac = m.eng.MAC(b.ciphertext[:], byteAddr, counter)
	b.counter = counter
	// Keep metadata MACs consistent (write-through tree).
	parent, _ := m.space.ParentOf(blk)
	ovs = append(ovs, m.tree.WriteBackPath(parent)...)
	return ovs, nil
}

// reencryptCovered re-encrypts every already-written sibling of blk under
// its post-rebase counter, as a real MC does during split-counter overflow
// (Sec. V). Counter-mode decryption needs the counter value used at
// encryption time, which a rebase erases from the organisation — hence each
// stored block remembers its own encryption counter.
func (m *Memory) reencryptCovered(dataBlk uint64) {
	ctrBlk := m.space.CounterBlockOf(dataBlk)
	first, n := m.space.CoveredRange(ctrBlk)
	for i := uint64(0); i < n; i++ {
		sib := first + i
		b := m.data[sib]
		if b == nil {
			continue
		}
		a := addr.AddrOf(sib)
		var plain [crypto.BlockBytes]byte
		m.eng.Decrypt(plain[:], b.ciphertext[:], a, b.counter)
		newCtr := m.tree.CounterOf(sib)
		m.eng.Encrypt(b.ciphertext[:], plain[:], a, newCtr)
		b.mac = m.eng.MAC(b.ciphertext[:], a, newCtr)
		b.counter = newCtr
	}
}

// Read decrypts and verifies a block, returning its plaintext. Unwritten
// blocks read as zeros. Verification failure returns ErrTampered wrapped
// with the failing address.
func (m *Memory) Read(byteAddr uint64) ([]byte, error) {
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return nil, err
	}
	b := m.data[blk]
	if b == nil {
		return make([]byte, crypto.BlockBytes), nil
	}
	if m.direct != nil {
		// Direct-cipher designs carry no MAC: decryption always
		// "succeeds"; tampered ciphertext yields garbled plaintext
		// instead of ErrTampered (the confidentiality-only trade-off).
		plain := make([]byte, crypto.BlockBytes)
		m.direct.decrypt(plain, b.ciphertext[:], byteAddr)
		return plain, nil
	}
	// Verify the counter path first (MC verifies counter blocks before
	// handing counters to anyone, Sec. IV-C).
	parent, _ := m.space.ParentOf(blk)
	if bad, ok := m.tree.VerifyPath(parent); !ok {
		return nil, fmt.Errorf("%w: metadata block %#x", ErrTampered, addr.AddrOf(bad))
	}
	counter := m.tree.CounterOf(blk)
	if !m.eng.Verify(b.ciphertext[:], byteAddr, counter, b.mac) {
		return nil, fmt.Errorf("%w: data block %#x", ErrTampered, byteAddr)
	}
	plain := make([]byte, crypto.BlockBytes)
	m.eng.Decrypt(plain, b.ciphertext[:], byteAddr, counter)
	return plain, nil
}

// ReadViaEmbedded performs the EMCC-split read of Sec. IV-D: the "MC half"
// produces ciphertext plus MAC⊕dotProduct, and the "L2 half" verifies that
// embedded value against its locally computed counter-only AES result and
// then decrypts. It must accept and reject exactly the same blocks as Read.
func (m *Memory) ReadViaEmbedded(byteAddr uint64) ([]byte, error) {
	if m.direct != nil {
		return nil, fmt.Errorf("secmem: embedded split read needs counter-mode cryptography")
	}
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return nil, err
	}
	b := m.data[blk]
	if b == nil {
		return make([]byte, crypto.BlockBytes), nil
	}
	parent, _ := m.space.ParentOf(blk)
	if bad, ok := m.tree.VerifyPath(parent); !ok {
		return nil, fmt.Errorf("%w: metadata block %#x", ErrTampered, addr.AddrOf(bad))
	}
	// MC side: no counter needed, only ciphertext and its stored MAC.
	embedded := m.eng.EmbeddedCheck(b.ciphertext[:], b.mac)
	// L2 side: locally cached counter + AES.
	counter := m.tree.CounterOf(blk)
	if !m.eng.VerifyEmbedded(embedded, byteAddr, counter) {
		return nil, fmt.Errorf("%w: data block %#x (embedded check)", ErrTampered, byteAddr)
	}
	plain := make([]byte, crypto.BlockBytes)
	m.eng.Decrypt(plain, b.ciphertext[:], byteAddr, counter)
	return plain, nil
}

// TamperData flips a bit in a block's stored ciphertext (bus/DRAM attack).
func (m *Memory) TamperData(byteAddr uint64) error {
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return err
	}
	b := m.data[blk]
	if b == nil {
		return fmt.Errorf("secmem: block %#x never written; nothing to tamper", byteAddr)
	}
	b.ciphertext[0] ^= 0x01
	return nil
}

// TamperMAC flips a bit in a block's stored MAC.
func (m *Memory) TamperMAC(byteAddr uint64) error {
	if m.direct != nil {
		return fmt.Errorf("secmem: direct-cipher designs store no MAC")
	}
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return err
	}
	b := m.data[blk]
	if b == nil {
		return fmt.Errorf("secmem: block %#x never written; nothing to tamper", byteAddr)
	}
	b.mac ^= 0x1
	return nil
}

// ReplayOld simulates a replay attack: it re-encrypts the block's current
// plaintext under a *stale* counter (current-1) with a matching stale MAC,
// the classic attack that per-write counters plus the tree defeat.
func (m *Memory) ReplayOld(byteAddr uint64) error {
	if m.direct != nil {
		return fmt.Errorf("secmem: direct-cipher designs have no counters to replay against")
	}
	blk, err := m.dataBlockOf(byteAddr)
	if err != nil {
		return err
	}
	b := m.data[blk]
	if b == nil {
		return fmt.Errorf("secmem: block %#x never written; nothing to replay", byteAddr)
	}
	cur := m.tree.CounterOf(blk)
	if cur == 0 {
		return fmt.Errorf("secmem: block %#x has counter 0; no older version exists", byteAddr)
	}
	var plain [crypto.BlockBytes]byte
	m.eng.Decrypt(plain[:], b.ciphertext[:], byteAddr, cur)
	stale := cur - 1
	m.eng.Encrypt(b.ciphertext[:], plain[:], byteAddr, stale)
	b.mac = m.eng.MAC(b.ciphertext[:], byteAddr, stale)
	return nil
}
