package secmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/crypto"
)

func testMem(t *testing.T, d config.CounterDesign) *Memory {
	t.Helper()
	m, err := New(1<<20, d, []byte("secmem test key!"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func designs() []config.CounterDesign {
	return []config.CounterDesign{config.CtrMono, config.CtrSC64, config.CtrMorphable}
}

func TestRoundTripAllDesigns(t *testing.T) {
	for _, d := range designs() {
		m := testMem(t, d)
		plain := bytes.Repeat([]byte{0x5a}, crypto.BlockBytes)
		if _, err := m.Write(0x1000, plain); err != nil {
			t.Fatalf("%v: write: %v", d, err)
		}
		got, err := m.Read(0x1000)
		if err != nil {
			t.Fatalf("%v: read: %v", d, err)
		}
		if !bytes.Equal(got, plain) {
			t.Fatalf("%v: round trip mismatch", d)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	got, err := m.Read(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, crypto.BlockBytes)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestRewriteUsesFreshCounter(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	a := bytes.Repeat([]byte{1}, 64)
	b := bytes.Repeat([]byte{2}, 64)
	m.Write(0x40, a)
	c1 := m.Tree().CounterOf(1)
	m.Write(0x40, b)
	c2 := m.Tree().CounterOf(1)
	if c2 <= c1 {
		t.Fatalf("counter did not advance on rewrite: %d -> %d", c1, c2)
	}
	got, err := m.Read(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("rewrite lost data")
	}
}

func TestTamperDataDetected(t *testing.T) {
	for _, d := range designs() {
		m := testMem(t, d)
		m.Write(0x40, bytes.Repeat([]byte{7}, 64))
		m.TamperData(0x40)
		if _, err := m.Read(0x40); !errors.Is(err, ErrTampered) {
			t.Fatalf("%v: tamper not detected: %v", d, err)
		}
	}
}

func TestTamperMACDetected(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	m.Write(0x40, bytes.Repeat([]byte{7}, 64))
	m.TamperMAC(0x40)
	if _, err := m.Read(0x40); !errors.Is(err, ErrTampered) {
		t.Fatalf("MAC tamper not detected: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	m.Write(0x40, bytes.Repeat([]byte{1}, 64))
	m.Write(0x40, bytes.Repeat([]byte{2}, 64))
	if err := m.ReplayOld(0x40); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(0x40); !errors.Is(err, ErrTampered) {
		t.Fatalf("replay not detected: %v", err)
	}
}

func TestCounterBlockTamperDetected(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	m.Write(0x40, bytes.Repeat([]byte{7}, 64))
	parent, _ := m.Space().ParentOf(1)
	m.Tree().TamperMAC(parent)
	if _, err := m.Read(0x40); !errors.Is(err, ErrTampered) {
		t.Fatalf("counter-block tamper not detected: %v", err)
	}
}

// TestEmbeddedSplitEquivalence: the EMCC read path (Sec. IV-D) must agree
// with the conventional read path on both good and tampered blocks.
func TestEmbeddedSplitEquivalence(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	f := func(content [64]byte, blkSeed uint16, tamper bool) bool {
		a := (uint64(blkSeed) % m.Space().DataBlocks()) << 6
		if _, err := m.Write(a, content[:]); err != nil {
			return false
		}
		if tamper {
			m.TamperData(a)
		}
		_, err1 := m.Read(a)
		_, err2 := m.ReadViaEmbedded(a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if tamper {
			// Heal for subsequent iterations.
			if _, err := m.Write(a, content[:]); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowReencryptionPreservesData: hammering one SC-64 counter past
// its 7-bit minor forces a rebase that must transparently re-encrypt every
// written sibling.
func TestOverflowReencryptionPreservesData(t *testing.T) {
	m := testMem(t, config.CtrSC64)
	// Write two blocks covered by the same counter block.
	a := bytes.Repeat([]byte{0xaa}, 64)
	b := bytes.Repeat([]byte{0xbb}, 64)
	m.Write(0x0, a)
	m.Write(0x40, b)
	sawOverflow := false
	for i := 0; i < 200; i++ {
		ovs, err := m.Write(0x0, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(ovs) > 0 {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Fatal("no overflow after 200 writes of a 7-bit minor")
	}
	got, err := m.Read(0x40)
	if err != nil {
		t.Fatalf("sibling unreadable after rebase: %v", err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("sibling data corrupted by overflow re-encryption")
	}
}

func TestAddressValidation(t *testing.T) {
	m := testMem(t, config.CtrMorphable)
	if _, err := m.Read(0x41); err == nil {
		t.Fatal("unaligned read accepted")
	}
	if _, err := m.Write(1<<21, make([]byte, 64)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := m.Write(0x40, make([]byte, 63)); err == nil {
		t.Fatal("short plaintext accepted")
	}
	if err := m.TamperData(0x4000); err == nil {
		t.Fatal("tampering an unwritten block should report an error")
	}
}

func TestNonSecureDesignRejected(t *testing.T) {
	if _, err := New(1<<20, config.CtrNone, []byte("secmem test key!")); err == nil {
		t.Fatal("CtrNone accepted")
	}
}

func directDesigns() []config.CounterDesign {
	return []config.CounterDesign{config.CtrBipBip, config.CtrInSRAM}
}

func TestDirectCipherRoundTrip(t *testing.T) {
	for _, d := range directDesigns() {
		m := testMem(t, d)
		plain := bytes.Repeat([]byte{0x5a}, crypto.BlockBytes)
		if _, err := m.Write(0x1000, plain); err != nil {
			t.Fatalf("%v: write: %v", d, err)
		}
		got, err := m.Read(0x1000)
		if err != nil {
			t.Fatalf("%v: read: %v", d, err)
		}
		if !bytes.Equal(got, plain) {
			t.Fatalf("%v: round trip mismatch", d)
		}
		// Unwritten blocks still read as zeros.
		zero, err := m.Read(0x2000)
		if err != nil || !bytes.Equal(zero, make([]byte, crypto.BlockBytes)) {
			t.Fatalf("%v: unwritten block not zero (%v)", d, err)
		}
	}
}

// TestDirectCipherTweaksByAddress: the XEX tweak must separate equal
// plaintext across addresses and actually hide the plaintext.
func TestDirectCipherTweaksByAddress(t *testing.T) {
	m := testMem(t, config.CtrBipBip)
	plain := bytes.Repeat([]byte{0x77}, crypto.BlockBytes)
	m.Write(0x40, plain)
	m.Write(0x80, plain)
	a := m.data[1].ciphertext
	b := m.data[2].ciphertext
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("equal plaintext at distinct addresses produced equal ciphertext")
	}
	if bytes.Equal(a[:], plain) {
		t.Fatal("ciphertext equals plaintext")
	}
	// Lanes within one block must also diverge (per-lane tweak).
	if bytes.Equal(a[0:16], a[16:32]) {
		t.Fatal("equal plaintext lanes within a block produced equal ciphertext lanes")
	}
}

// TestDirectCipherTamperGarbles pins the documented trade-off: counter-free
// designs are confidentiality-only, so tampering is NOT detected — the read
// succeeds but yields garbled plaintext.
func TestDirectCipherTamperGarbles(t *testing.T) {
	for _, d := range directDesigns() {
		m := testMem(t, d)
		plain := bytes.Repeat([]byte{7}, crypto.BlockBytes)
		m.Write(0x40, plain)
		if err := m.TamperData(0x40); err != nil {
			t.Fatal(err)
		}
		got, err := m.Read(0x40)
		if err != nil {
			t.Fatalf("%v: tampered read errored (%v); direct designs cannot detect", d, err)
		}
		if bytes.Equal(got, plain) {
			t.Fatalf("%v: tampered ciphertext decrypted to the original plaintext", d)
		}
	}
}

// TestDirectCipherHasNoCounterMachinery: the counter-only operations must
// refuse rather than touch nil organisation/tree state.
func TestDirectCipherHasNoCounterMachinery(t *testing.T) {
	m := testMem(t, config.CtrInSRAM)
	m.Write(0x40, bytes.Repeat([]byte{1}, crypto.BlockBytes))
	if err := m.TamperMAC(0x40); err == nil {
		t.Fatal("TamperMAC succeeded without a MAC")
	}
	if err := m.ReplayOld(0x40); err == nil {
		t.Fatal("ReplayOld succeeded without counters")
	}
	if _, err := m.ReadViaEmbedded(0x40); err == nil {
		t.Fatal("embedded split read succeeded without counter-mode crypto")
	}
	if m.Tree() != nil {
		t.Fatal("direct-cipher memory built an integrity tree")
	}
}
