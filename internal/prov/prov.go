// Package prov stamps simulation outputs with run provenance: enough
// context to answer, months later, "what exactly produced this file?" —
// the configuration (hashed), the workload seed, the toolchain and the
// source revision. Every cmd tool attaches a manifest to its stats
// snapshot and sidecar files; golden tests mask the volatile fields so
// the stamp never breaks byte-stable comparisons.
package prov

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
)

// Volatile names the manifest keys that change from run to run or machine
// to machine. Masked replaces them; everything else is deterministic for a
// fixed configuration and binary.
var Volatile = []string{"wall-time", "go-version", "vcs"}

// Manifest builds the provenance map for one run. extra carries the
// tool-specific fields (tool name, benchmark, seed, refs, output path)
// and wins on key collision, though the stock keys below are reserved
// names no tool should repurpose.
func Manifest(cfg *config.Config, extra map[string]string) map[string]string {
	m := map[string]string{
		"config-hash": ConfigHash(cfg),
		"system":      cfg.SystemName(),
		"go-version":  runtime.Version(),
		"vcs":         vcsDescribe(),
		//lint:ignore detlint wall-time is a deliberately volatile provenance field; consumers exclude it from comparisons
		"wall-time": time.Now().UTC().Format(time.RFC3339),
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}

// ConfigHash fingerprints every field of the configuration. Two runs with
// the same hash replayed the same microarchitecture; the full config can
// always be reconstructed from the tool flags also present in the manifest.
func ConfigHash(cfg *config.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *cfg)))
	return hex.EncodeToString(sum[:8])
}

// ScenarioKey fingerprints one simulation scenario: the resolved
// configuration plus the run framing (mode, benchmark, seed, reference
// budgets, workload scale — whatever else determines the outcome). It is
// the content-addressed identity the scenario runner (internal/run)
// memoises and caches under: two scenarios with equal keys replay the same
// simulation regardless of which code path declared them, so there is no
// hand-written memo-key vocabulary to keep unique.
func ScenarioKey(cfg *config.Config, framing map[string]string) string {
	keys := make([]string, 0, len(framing))
	for k := range framing {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	h.Write([]byte(ConfigHash(cfg)))
	for _, k := range keys {
		fmt.Fprintf(h, "|%s=%s", k, framing[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// CodeIdentity names the source revision baked into the running binary
// ("<rev12>", "<rev12>-dirty" or "unknown"). It is the second half of a
// persistent result-cache key: a cached outcome is only reused by the code
// revision that produced it. Dirty builds share one identity per base
// revision, so a result cache must be discarded while iterating
// uncommitted simulator changes.
func CodeIdentity() string { return vcsDescribe() }

// vcsDescribe reports the source revision baked into the binary by the go
// tool ("<rev12>" or "<rev12>-dirty"), or "unknown" for test binaries and
// builds outside a repository.
func vcsDescribe() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// Masked returns a copy with the volatile keys replaced by "-", for golden
// files and determinism tests that compare manifests byte-for-byte.
func Masked(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, k := range Volatile {
		if _, ok := out[k]; ok {
			out[k] = "-"
		}
	}
	return out
}

// Line renders the manifest as one sorted "k=v k=v …" line for log headers
// and text dumps.
func Line(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, " ")
}

// JSON renders the manifest as indented JSON (keys sorted by
// encoding/json), trailing newline included — the sidecar file format.
func JSON(m map[string]string) ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
