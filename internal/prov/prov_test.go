package prov

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
)

func TestManifestAndMasking(t *testing.T) {
	cfg := config.Default()
	m := Manifest(&cfg, map[string]string{"tool": "test", "seed": "7"})
	for _, k := range []string{"config-hash", "system", "go-version", "vcs", "wall-time", "tool", "seed"} {
		if m[k] == "" {
			t.Errorf("manifest missing %q: %v", k, m)
		}
	}
	masked := Masked(m)
	for _, k := range Volatile {
		if masked[k] != "-" {
			t.Errorf("masked[%q] = %q, want -", k, masked[k])
		}
	}
	if m["wall-time"] == "-" {
		t.Error("Masked mutated the original manifest")
	}
	if masked["config-hash"] != m["config-hash"] || masked["seed"] != "7" {
		t.Error("Masked touched non-volatile keys")
	}
}

func TestConfigHashSensitivity(t *testing.T) {
	a := config.Default()
	b := config.Default()
	if ConfigHash(&a) != ConfigHash(&b) {
		t.Fatal("equal configs hash differently")
	}
	b.L3Bytes *= 2
	if ConfigHash(&a) == ConfigHash(&b) {
		t.Fatal("different configs hash equal")
	}
}

func TestScenarioKeySensitivity(t *testing.T) {
	cfg := config.Default()
	framing := map[string]string{"mode": "timing", "benchmark": "canneal", "seed": "1"}
	base := ScenarioKey(&cfg, framing)
	if base != ScenarioKey(&cfg, framing) {
		t.Fatal("equal scenarios hash differently")
	}
	// Framing map order must not matter.
	reordered := map[string]string{"seed": "1", "benchmark": "canneal", "mode": "timing"}
	if base != ScenarioKey(&cfg, reordered) {
		t.Fatal("framing map order changed the key")
	}
	// Any framing change changes the key.
	for k, v := range map[string]string{"mode": "functional", "benchmark": "mcf", "seed": "2"} {
		m := map[string]string{"mode": "timing", "benchmark": "canneal", "seed": "1"}
		m[k] = v
		if ScenarioKey(&cfg, m) == base {
			t.Errorf("changing framing %q did not change the key", k)
		}
	}
	// Any config change changes the key.
	mut := config.Default()
	mut.Channels = 8
	if ScenarioKey(&mut, framing) == base {
		t.Fatal("config mutation did not change the key")
	}
}

func TestCodeIdentityNonEmpty(t *testing.T) {
	if CodeIdentity() == "" {
		t.Fatal("empty code identity")
	}
}

func TestLineSortedAndStable(t *testing.T) {
	m := map[string]string{"b": "2", "a": "1", "c": "3"}
	if got := Line(m); got != "a=1 b=2 c=3" {
		t.Fatalf("Line = %q", got)
	}
}

func TestJSONShape(t *testing.T) {
	b, err := JSON(map[string]string{"x": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("JSON output not newline-terminated")
	}
	var back map[string]string
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["x"] != "y" {
		t.Fatalf("round trip lost data: %v", back)
	}
}
