package sim

// This file is the engine's event queue: a monomorphic four-ary min-heap
// ordered by (time, priority class, key, seq) operating directly on an
// []event. It replaces the original container/heap binary heap, which paid
// an interface-boxing allocation on every Push(x interface{}) plus dynamic
// dispatch for every Less/Swap. The four-ary layout was chosen by
// benchmark (see DESIGN.md §11 and BENCH_5.json): sift-down does ~half the
// levels of a binary heap, the four children share a cache line pair, and
// the monomorphic sift loops inline — together better than 2x on the
// engine tick benchmark.
//
// The order is total and strict, so pop order does not depend on heap
// shape. Ordinary events (pri 0, key 0) pop in exactly the old heap's
// order: FIFO among equal timestamps, carried by seq alone — the parity
// test in queue_test.go pins this against a container/heap reference.
// Late-class events (AtCallLate) sort after them; see the event type.

// event is one scheduled callback. Exactly one of fn and call is set: fn
// is the At/After closure form; call+arg is the allocation-free prebound
// form (AtCall/AfterCall) — with a package-level (or otherwise prebound)
// func and a pointer-typed arg, scheduling allocates nothing.
//
// pri and key exist for the sharded engine's equivalence guarantee.
// Ordinary events carry pri 0 / key 0 and order exactly as before — by
// (at, seq). Late-class events (pri 1, scheduled with AtCallLate) sort
// after every ordinary event at the same timestamp, ordered among
// themselves by an explicit caller-chosen key instead of scheduling
// history. Cross-domain effects use the late class in both the serial
// and the sharded engine, which makes their position in the global order
// a pure function of (time, key) — the property that lets a barrier-
// synchronized run reproduce the serial run byte-for-byte.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run in schedule order
	pri  uint8  // 0 ordinary, 1 late (end of timestamp)
	key  int32  // tie-break among late events at one timestamp
	fn   func()
	call func(any)
	arg  any
}

// before reports whether a orders strictly before b. (at, pri, key, seq)
// is a total strict order: seq is unique per engine, so two distinct
// events never compare equal and pop order is independent of heap shape.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// arity is the heap's branching factor. Children of node i live at
// arity*i+1 .. arity*i+arity; the parent of node i is (i-1)/arity.
const arity = 4

// eventQueue is the min-heap. The zero value is an empty queue. The
// backing slice grows to the simulation's high-water mark and is then
// reused forever: push/pop are allocation-free in steady state.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// peek returns the minimum event without removing it. The pointer is only
// valid until the next push or pop. Callers must check len() > 0 first.
func (q *eventQueue) peek() *event { return &q.ev[0] }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Inlined sift-up with a moving hole: the new event is only written
	// once, at its final position.
	ev := q.ev
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) / arity
		if !e.before(&ev[p]) {
			break
		}
		ev[i] = ev[p]
		i = p
	}
	ev[i] = e
}

func (q *eventQueue) pop() event {
	ev := q.ev
	top := ev[0]
	n := len(ev) - 1
	e := ev[n]
	// Zero the vacated tail slot so the backing array does not retain the
	// callback and argument past the event's execution.
	ev[n] = event{}
	q.ev = ev[:n]
	if n > 0 {
		// Inlined sift-down of the former tail element from the root.
		ev = q.ev
		i := 0
		for {
			first := arity*i + 1
			if first >= n {
				break
			}
			m := first
			last := first + arity
			if last > n {
				last = n
			}
			for c := first + 1; c < last; c++ {
				if ev[c].before(&ev[m]) {
					m = c
				}
			}
			if !ev[m].before(&e) {
				break
			}
			ev[i] = ev[m]
			i = m
		}
		ev[i] = e
	}
	return top
}
