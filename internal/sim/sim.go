// Package sim provides the discrete-event simulation engine that drives
// every timing model in this repository.
//
// The engine keeps a monotonically increasing clock in integer picoseconds
// and a binary heap of pending events. Components schedule closures with
// At/After; Run drains the heap in timestamp order (FIFO among equal
// timestamps, which keeps simulations deterministic).
package sim

import (
	"container/heap"

	"repro/internal/inv"
)

// Time is a simulated timestamp or duration in picoseconds. Integer
// picoseconds keep all of Table I's latencies (down to 13.75 ns) exact and
// make every run bit-reproducible.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// NS converts a floating-point nanosecond quantity (how the paper states
// latencies, e.g. 13.75 ns) to Time, rounding to the nearest picosecond.
func NS(ns float64) Time {
	if ns >= 0 {
		return Time(ns*1000 + 0.5)
	}
	return -Time(-ns*1000 + 0.5)
}

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / 1000 }

type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have executed; useful as a progress and
// runaway-simulation guard in tests.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality, which is always a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Every invokes fn(now) each period, starting one period from now, for as
// long as other work remains scheduled. The tick re-arms only when the heap
// still holds at least one other event after it pops, so a periodic sampler
// never keeps Run from terminating once the simulation proper has drained.
func (e *Engine) Every(period Time, fn func(now Time)) {
	if period <= 0 {
		panic("sim: Every needs a positive period")
	}
	var tick func()
	tick = func() {
		fn(e.now)
		if len(e.events) > 0 {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d picoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	if inv.On() && ev.at < e.now {
		inv.Failf("sim", "clock moved backwards: event at %d ps popped at now=%d ps", ev.at, e.now)
	}
	e.now = ev.at
	e.steps++
	ev.fn()
}
