// Package sim provides the discrete-event simulation engine that drives
// every timing model in this repository.
//
// The engine keeps a monotonically increasing clock in integer picoseconds
// and a four-ary min-heap of pending events (queue.go). Components
// schedule closures with At/After, or — on hot paths — prebound callbacks
// with AtCall/AfterCall, which allocate nothing in steady state. Run
// drains the heap in timestamp order (FIFO among equal timestamps, which
// keeps simulations deterministic).
package sim

import (
	"repro/internal/inv"
)

// Time is a simulated timestamp or duration in picoseconds. Integer
// picoseconds keep all of Table I's latencies (down to 13.75 ns) exact and
// make every run bit-reproducible.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// NS converts a floating-point nanosecond quantity (how the paper states
// latencies, e.g. 13.75 ns) to Time, rounding to the nearest picosecond.
func NS(ns float64) Time {
	if ns >= 0 {
		return Time(ns*1000 + 0.5)
	}
	return -Time(-ns*1000 + 0.5)
}

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / 1000 }

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	now   Time
	seq   uint64
	q     eventQueue
	steps uint64
	// ticks counts currently-scheduled Every events, so tickers judge
	// liveness against real work instead of each other (see Every).
	ticks int
	// rec is the run's invariant recorder. The engine is the entity that
	// owns a run, so it owns the recorder binding: components capture
	// Recorder() at construction and every violation of this run lands
	// here, isolated from concurrent runs in the same process.
	rec *inv.Recorder
}

// New returns a fresh engine with the clock at zero, bound to the default
// invariant recorder (SetRecorder rebinds for isolated runs).
func New() *Engine { return &Engine{rec: inv.Default()} }

// SetRecorder binds the run's invariant recorder. Call before constructing
// components: they capture the binding at build time. A nil r rebinds the
// process-wide default recorder.
func (e *Engine) SetRecorder(r *inv.Recorder) { e.rec = inv.Or(r) }

// Recorder reports the run's invariant recorder (never nil; a zero-value
// Engine reports the default recorder).
func (e *Engine) Recorder() *inv.Recorder { return inv.Or(e.rec) }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have executed; useful as a progress and
// runaway-simulation guard in tests.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return e.q.len() }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality, which is always a modelling bug.
//
// The closure form allocates (the closure itself); recurring events on hot
// paths should use AtCall/AfterCall with a prebound callback instead.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, fn: fn})
}

// AtCall schedules fn(arg) to run at absolute time t. With fn a
// package-level function (or any func value that outlives the schedule)
// and arg a pointer, the call allocates nothing: the event is written
// directly into the queue's backing array and the pointer rides in the
// interface word. This is the steady-state form for the simulators'
// recurring events (core issue ticks, cache wakeups, DRAM scheduling).
// Scheduling in the past panics, as with At.
func (e *Engine) AtCall(t Time, fn func(any), arg any) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, call: fn, arg: arg})
}

// AtCallLate schedules fn(arg) in the late class at absolute time t: it
// runs after every ordinary event with the same timestamp, ordered among
// same-time late events by key (then schedule order). Component seams
// that must see a timestamp's complete state — the DRAM scheduler pass,
// cross-domain completions — use this in both the serial and sharded
// engines, so their global position depends only on (t, key), not on
// when they happened to be scheduled. Scheduling in the past panics.
func (e *Engine) AtCallLate(t Time, key int32, fn func(any), arg any) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, pri: 1, key: key, call: fn, arg: arg})
}

// After schedules fn to run d picoseconds from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AfterCall schedules fn(arg) to run d picoseconds from now; the
// allocation-free companion of After (see AtCall). Negative delays panic.
func (e *Engine) AfterCall(d Time, fn func(any), arg any) { e.AtCall(e.now+d, fn, arg) }

// Every invokes fn(now) each period, starting one period from now, for as
// long as other work remains scheduled. Liveness is judged against
// non-ticker events only: the engine counts how many Every ticks are
// currently scheduled, and a tick re-arms only when something beyond the
// other tickers is still pending. That makes any number of coexisting
// periodic samplers (the obs time-series sampler, the flight recorder)
// terminate together once the simulation proper drains — with the old
// Pending() > 0 rule, two tickers would keep each other alive forever.
func (e *Engine) Every(period Time, fn func(now Time)) {
	if period <= 0 {
		panic("sim: Every needs a positive period")
	}
	var tick func()
	tick = func() {
		e.ticks--
		fn(e.now)
		if e.Pending() > e.ticks {
			e.ticks++
			e.After(period, tick)
		}
	}
	e.ticks++
	e.After(period, tick)
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.q.len() > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for e.q.len() > 0 && e.peek().at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d picoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// peek is the single seam through which the run loops inspect the next
// event; the queue implementation can change behind it. Callers must
// check Pending() > 0 first.
func (e *Engine) peek() *event { return e.q.peek() }

func (e *Engine) step() {
	ev := e.q.pop()
	if rec := e.rec; rec != nil && rec.On() && ev.at < e.now {
		rec.Failf("sim", "clock moved backwards: event at %d ps popped at now=%d ps", ev.at, e.now)
	}
	e.now = ev.at
	e.steps++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.call(ev.arg)
	}
}
