package sim

import (
	"testing"
	"time"
)

func TestNSConversion(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{13.75, 13750},
		{0.0005, 1}, // rounds to nearest picosecond
		{-2, -2000},
	}
	for _, c := range cases {
		if got := NS(c.ns); got != c.want {
			t.Errorf("NS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestNanoseconds(t *testing.T) {
	if got := Time(13750).Nanoseconds(); got != 13.75 {
		t.Errorf("Nanoseconds() = %v, want 13.75", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 300 {
		t.Errorf("clock = %d, want 300", e.Now())
	}
}

func TestEqualTimestampsRunFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(10, chain)
		}
	}
	e.After(10, chain)
	e.Run()
	if count != 5 {
		t.Fatalf("chained %d events, want 5", count)
	}
	if e.Now() != 50 {
		t.Errorf("clock = %d, want 50", e.Now())
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("clock = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events after drain, want 3", ran)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := New()
	e.RunFor(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	e.RunFor(50)
	if e.Now() != 150 {
		t.Fatalf("clock = %d, want 150", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestStepsCountsExecutedEvents(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("steps = %d, want 7", e.Steps())
	}
}

// TestEveryStopsWhenWorkDrains proves a periodic sampler cannot keep Run
// alive: once the simulation's own events are exhausted, the tick sees an
// empty heap and does not re-arm.
func TestEveryStopsWhenWorkDrains(t *testing.T) {
	e := New()
	var ticks []Time
	e.Every(10, func(now Time) { ticks = append(ticks, now) })
	e.At(35, func() {})
	e.Run()
	// Ticks at 10, 20, 30; the tick at 40 fires (the 35-event was pending
	// when the 30-tick re-armed) and finds nothing left, so no 50-tick.
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left pending", e.Pending())
	}
}

// TestCoexistingTickersTerminate is the two-sampler regression: multiple
// Every loops must judge liveness against real work, not each other. With
// the naive Pending() > 0 re-arm rule, any two tickers keep the engine
// alive forever once the simulation drains.
func TestCoexistingTickersTerminate(t *testing.T) {
	e := New()
	var a, b, c int
	e.Every(10, func(Time) { a++ })
	e.Every(7, func(Time) { b++ })
	e.Every(25, func(Time) { c++ })
	e.At(60, func() {})
	done := make(chan struct{})
	go func() {
		e.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("three tickers kept each other alive past the last real event")
	}
	if a == 0 || b == 0 || c == 0 {
		t.Fatalf("ticker starved: %d/%d/%d ticks", a, b, c)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left pending", e.Pending())
	}
	// Every ticker ran while real work existed: at least floor(60/period).
	if a < 6 || b < 8 || c < 2 {
		t.Fatalf("tickers stopped early: %d/%d/%d ticks", a, b, c)
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func(Time) {})
}
