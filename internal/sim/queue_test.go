package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---- container/heap reference (the pre-overhaul scheduler) ----
//
// legacyHeap replicates the original binary-heap scheduler exactly: the
// same (at, seq) Less and the container/heap sift algorithms. The parity
// tests below drive it and the four-ary queue with identical schedules
// and require identical pop orders.

type legacyEvent struct {
	at  Time
	seq uint64
	id  int
}

type legacyHeap []legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x interface{}) { *h = append(*h, x.(legacyEvent)) }
func (h *legacyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestQueueParityWithLegacyHeap drives randomized interleavings of pushes
// and pops through the four-ary queue and the container/heap reference
// and requires byte-identical pop sequences — the determinism guarantee
// the scheduler swap must preserve.
func TestQueueParityWithLegacyHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var ref legacyHeap
		var seq uint64
		id := 0
		for op := 0; op < 4000; op++ {
			if q.len() == 0 || rng.Intn(3) != 0 {
				// Push with a small time range so equal timestamps are
				// common and the seq tie-break is exercised hard.
				at := Time(rng.Intn(50))
				seq++
				id++
				capturedID := id
				q.push(event{at: at, seq: seq, fn: func() { _ = capturedID }, arg: capturedID})
				heap.Push(&ref, legacyEvent{at: at, seq: seq, id: capturedID})
			} else {
				got := q.pop()
				want := heap.Pop(&ref).(legacyEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("seed %d op %d: popped (at=%d seq=%d), reference popped (at=%d seq=%d)",
						seed, op, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(&ref).(legacyEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: popped (at=%d seq=%d), reference popped (at=%d seq=%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("seed %d: reference has %d events left after queue drained", seed, ref.Len())
		}
	}
}

// TestQueueFIFOAmongEqualTimestamps is the direct property: across
// randomized insert/pop interleavings, events sharing a timestamp pop in
// insertion order.
func TestQueueFIFOAmongEqualTimestamps(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var seq uint64
		lastSeqAt := map[Time]uint64{}
		var lastTime Time
		first := true
		for op := 0; op < 3000; op++ {
			if q.len() == 0 || rng.Intn(3) != 0 {
				// Engine contract: never schedule before the clock. A
				// tiny offset range forces heavy timestamp ties.
				at := lastTime + Time(rng.Intn(8))
				seq++
				q.push(event{at: at, seq: seq})
			} else {
				e := q.pop()
				if !first && e.at < lastTime {
					t.Fatalf("seed %d: time went backwards: %d after %d", seed, e.at, lastTime)
				}
				if prev, ok := lastSeqAt[e.at]; ok && e.seq <= prev {
					t.Fatalf("seed %d: tie-break not FIFO at t=%d: seq %d popped after %d", seed, e.at, e.seq, prev)
				}
				if e.at != lastTime {
					// A new timestamp opens a fresh FIFO window; older
					// windows can never be revisited.
					delete(lastSeqAt, lastTime)
				}
				lastSeqAt[e.at] = e.seq
				lastTime, first = e.at, false
			}
		}
	}
}

// TestEngineParityOldVsNew runs a randomized self-scheduling workload on
// the new engine and on a reference engine built over container/heap, and
// requires identical execution traces (time and event identity at every
// step). Events re-schedule follow-ups from inside callbacks, so the
// parity covers the engine loop, not just the queue.
func TestEngineParityOldVsNew(t *testing.T) {
	type rec struct {
		at Time
		id int
	}
	run := func(seed int64, useLegacy bool) []rec {
		var trace []rec
		rng := rand.New(rand.NewSource(seed))
		if useLegacy {
			var h legacyHeap
			var seq uint64
			now := Time(0)
			id := 0
			schedule := func(at Time) {
				seq++
				id++
				heap.Push(&h, legacyEvent{at: at, seq: seq, id: id})
			}
			for i := 0; i < 30; i++ {
				schedule(Time(rng.Intn(20)))
			}
			for h.Len() > 0 {
				e := heap.Pop(&h).(legacyEvent)
				now = e.at
				trace = append(trace, rec{e.at, e.id})
				if len(trace) < 3000 {
					for n := rng.Intn(3); n > 0; n-- {
						schedule(now + Time(rng.Intn(10)))
					}
				}
			}
			return trace
		}
		e := New()
		id := 0
		var schedule func(at Time)
		schedule = func(at Time) {
			id++
			capturedID := id
			e.At(at, func() {
				trace = append(trace, rec{e.Now(), capturedID})
				if len(trace) < 3000 {
					for n := rng.Intn(3); n > 0; n-- {
						schedule(e.Now() + Time(rng.Intn(10)))
					}
				}
			})
		}
		for i := 0; i < 30; i++ {
			schedule(Time(rng.Intn(20)))
		}
		e.Run()
		return trace
	}
	for seed := int64(1); seed <= 10; seed++ {
		oldTrace := run(seed, true)
		newTrace := run(seed, false)
		if len(oldTrace) != len(newTrace) {
			t.Fatalf("seed %d: %d events on legacy, %d on new", seed, len(oldTrace), len(newTrace))
		}
		for i := range oldTrace {
			if oldTrace[i] != newTrace[i] {
				t.Fatalf("seed %d step %d: legacy ran (at=%d id=%d), new ran (at=%d id=%d)",
					seed, i, oldTrace[i].at, oldTrace[i].id, newTrace[i].at, newTrace[i].id)
			}
		}
	}
}

// tickState is the prebound-callback workload for the allocation tests.
type tickState struct {
	eng  *Engine
	n    int
	left int
}

func tickCB(x any) {
	s := x.(*tickState)
	s.n++
	if s.left > 0 {
		s.left--
		s.eng.AfterCall(100, tickCB, s)
	}
}

// TestAtCallZeroAllocsSteadyState pins the tentpole invariant: a
// steady-state scheduled event through the prebound API — schedule, pop,
// dispatch — allocates nothing once the queue's backing array has reached
// its high-water mark.
func TestAtCallZeroAllocsSteadyState(t *testing.T) {
	e := New()
	s := &tickState{eng: e}
	// Warm the queue's backing array past any growth.
	for i := 0; i < 256; i++ {
		e.AtCall(e.Now()+Time(i), tickCB, s)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AtCall(e.Now()+10, tickCB, s)
		e.RunFor(10)
	})
	if allocs != 0 {
		t.Fatalf("steady-state AtCall event allocated %.1f times, want 0", allocs)
	}
}

// TestSelfReschedulingTickZeroAllocs covers the recurring-event shape the
// simulators use (an event that re-arms itself from inside its callback):
// the whole chain must be allocation-free.
func TestSelfReschedulingTickZeroAllocs(t *testing.T) {
	e := New()
	s := &tickState{eng: e}
	s.left = 64
	e.AfterCall(100, tickCB, s)
	e.Run() // warm
	allocs := testing.AllocsPerRun(100, func() {
		s.left = 50
		e.AfterCall(100, tickCB, s)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("self-rescheduling tick chain allocated %.1f times per run, want 0", allocs)
	}
}

// TestAtCallRejectsPast mirrors the At contract for the prebound form.
func TestAtCallRejectsPast(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("AtCall in the past did not panic")
			}
		}()
		e.AtCall(50, tickCB, nil)
	})
	e.Run()
}

// TestPopReleasesReferences checks the queue zeroes vacated slots so the
// backing array does not pin callbacks or args after execution.
func TestPopReleasesReferences(t *testing.T) {
	var q eventQueue
	q.push(event{at: 1, seq: 1, call: tickCB, arg: &tickState{}})
	q.push(event{at: 2, seq: 2, call: tickCB, arg: &tickState{}})
	q.pop()
	q.pop()
	tail := q.ev[:2]
	for i, e := range tail {
		if e.call != nil || e.arg != nil || e.fn != nil {
			t.Fatalf("slot %d retains references after pop: %+v", i, e)
		}
	}
}

// ---- Benchmarks: the numbers recorded in BENCH_5.json ----

// BenchmarkEngineTickPrebound is the post-overhaul hot path: a
// self-rescheduling prebound tick. Compare against
// BenchmarkEngineTickClosure and the legacy container/heap numbers in
// BENCH_5.json.
func BenchmarkEngineTickPrebound(b *testing.B) {
	b.ReportAllocs()
	e := New()
	s := &tickState{eng: e, left: b.N}
	e.AfterCall(100, tickCB, s)
	e.Run()
}

// BenchmarkEngineTickClosure is the convenience-API equivalent, paying one
// closure allocation per event.
func BenchmarkEngineTickClosure(b *testing.B) {
	b.ReportAllocs()
	e := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	e.Run()
}

// BenchmarkEngineMixedQueue stresses the heap itself: a rolling window of
// 1024 pending events with randomized offsets, so every push sifts
// against a realistically full queue.
func BenchmarkEngineMixedQueue(b *testing.B) {
	b.ReportAllocs()
	e := New()
	s := &tickState{eng: e}
	r := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1024; i++ {
		r = r*6364136223846793005 + 1
		e.AtCall(Time(r%4096), tickCB, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = r*6364136223846793005 + 1
		e.AtCall(e.Now()+Time(r%4096)+1, tickCB, s)
		e.step()
	}
}
