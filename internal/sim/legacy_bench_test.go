package sim

import (
	"container/heap"
	"testing"
)

// legacyEngine replicates the pre-overhaul scheduler (container/heap over
// interface{}-boxed events with closure callbacks) so the overhaul's
// speedup is measurable inside one binary. cmd/bench records both sides
// into BENCH_5.json.

// legacyEv is the original event shape: timestamp, tie-break, closure.
type legacyEv struct {
	at  Time
	seq uint64
	fn  func()
}

type legacyHeapFn []legacyEv

func (h legacyHeapFn) Len() int { return len(h) }
func (h legacyHeapFn) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeapFn) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeapFn) Push(x interface{}) { *h = append(*h, x.(legacyEv)) }
func (h *legacyHeapFn) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type legacyEngine struct {
	now    Time
	seq    uint64
	events legacyHeapFn
}

func (e *legacyEngine) At(t Time, fn func()) {
	e.seq++
	heap.Push(&e.events, legacyEv{at: t, seq: e.seq, fn: fn})
}

func (e *legacyEngine) step() {
	ev := heap.Pop(&e.events).(legacyEv)
	e.now = ev.at
	ev.fn()
}

func (e *legacyEngine) run() {
	for len(e.events) > 0 {
		e.step()
	}
}

// BenchmarkLegacyEngineTick is the pre-overhaul self-rescheduling tick.
func BenchmarkLegacyEngineTick(b *testing.B) {
	b.ReportAllocs()
	e := &legacyEngine{}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.At(e.now+100, tick)
		}
	}
	e.At(100, tick)
	e.run()
}

// BenchmarkLegacyEngineMixedQueue is the pre-overhaul equivalent of
// BenchmarkEngineMixedQueue: a rolling 1024-deep queue.
func BenchmarkLegacyEngineMixedQueue(b *testing.B) {
	b.ReportAllocs()
	e := &legacyEngine{}
	fn := func() {}
	r := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1024; i++ {
		r = r*6364136223846793005 + 1
		e.At(Time(r%4096), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = r*6364136223846793005 + 1
		e.At(e.now+Time(r%4096)+1, fn)
		e.step()
	}
}
