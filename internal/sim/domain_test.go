package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/inv"
)

// ---- Cross-domain ordering property ----

// traceEntry is one observed callback execution: local time plus the
// message's identity.
type traceEntry struct {
	at Time
	id int
}

// runPingScenario builds a hub + 3-domain shard, drives a randomized
// ping-pong workload across it, and returns each domain's execution trace.
// Everything about the scenario is a pure function of seed, so two calls
// with equal seeds must produce identical traces — at any worker count.
func runPingScenario(t *testing.T, seed int64, workers int) [][]traceEntry {
	t.Helper()
	const domains = 3
	hub := New()
	sh := NewShard(hub, workers)
	var doms []*Domain
	var toDom, toHub []*Link
	for i := 0; i < domains; i++ {
		d := sh.AddDomain("d")
		doms = append(doms, d)
		toDom = append(toDom, sh.Connect(sh.Hub(), d, Time(10+i)))
		toHub = append(toHub, sh.Connect(d, sh.Hub(), Time(5+i)))
	}
	sh.Finalize()

	traces := make([][]traceEntry, domains+1)
	rng := rand.New(rand.NewSource(seed))
	var bounce func(dom int, id, hops int) func(any)
	bounce = func(dom int, id, hops int) func(any) {
		return func(any) {
			d := doms[dom]
			traces[dom+1] = append(traces[dom+1], traceEntry{d.Now(), id})
			// Reply to the hub; the hub decides whether to bounce again.
			at := d.Now() + toHub[dom].Latency()
			toHub[dom].Send(at, func(any) {
				traces[0] = append(traces[0], traceEntry{sh.Hub().Now(), id})
				if hops > 0 {
					next := (dom + id + hops) % domains
					nat := sh.Hub().Now() + toDom[next].Latency() + Time(hops%7)
					toDom[next].Send(nat, bounce(next, id, hops-1), nil)
				}
			}, nil)
		}
	}
	for id := 0; id < 40; id++ {
		dom := rng.Intn(domains)
		at := Time(rng.Intn(50))
		hops := 2 + rng.Intn(5)
		id := id
		sh.Hub().At(at, func() {
			sat := sh.Hub().Now() + toDom[dom].Latency()
			toDom[dom].Send(sat, bounce(dom, id, hops), nil)
		})
	}
	sh.Run()
	if sh.Pending() != 0 {
		t.Fatalf("shard did not drain: %d events pending", sh.Pending())
	}
	return traces
}

// TestShardOrderingReproducible is the ordering property: every domain's
// execution sequence — (local time, message id) at every step — is a pure
// function of the scenario. Reruns and different worker counts must match
// entry for entry.
func TestShardOrderingReproducible(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := runPingScenario(t, seed, 1)
		for _, workers := range []int{1, 2, 4} {
			got := runPingScenario(t, seed, workers)
			if len(got) != len(base) {
				t.Fatalf("seed %d workers %d: %d traces, want %d", seed, workers, len(got), len(base))
			}
			for d := range base {
				if len(got[d]) != len(base[d]) {
					t.Fatalf("seed %d workers %d domain %d: %d entries, want %d",
						seed, workers, d, len(got[d]), len(base[d]))
				}
				for i := range base[d] {
					if got[d][i] != base[d][i] {
						t.Fatalf("seed %d workers %d domain %d step %d: ran (at=%d id=%d), want (at=%d id=%d)",
							seed, workers, d, i, got[d][i].at, got[d][i].id, base[d][i].at, base[d][i].id)
					}
				}
			}
		}
	}
}

// TestShardTimeNeverRegresses checks the causal guarantee behind the
// bounds: within every domain the observed execution times are
// non-decreasing — no barrier delivery ever lands behind a local clock.
func TestShardTimeNeverRegresses(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, workers := range []int{1, 4} {
			for d, tr := range runPingScenario(t, seed, workers) {
				for i := 1; i < len(tr); i++ {
					if tr[i].at < tr[i-1].at {
						t.Fatalf("seed %d workers %d domain %d: time regressed %d -> %d",
							seed, workers, d, tr[i-1].at, tr[i].at)
					}
				}
			}
		}
	}
}

// ---- Lookahead violation detection ----

// TestShardLookaheadViolationCaught proves a send below the link's declared
// latency is not silently reordered: it lands on the run's invariant
// recorder and the message is clamped to the earliest legal time.
func TestShardLookaheadViolationCaught(t *testing.T) {
	rec := inv.NewRecorder()
	rec.Enable(true)
	hub := New()
	hub.SetRecorder(rec)
	sh := NewShard(hub, 1)
	d := sh.AddDomain("dram0")
	to := sh.Connect(sh.Hub(), d, 100)
	sh.Finalize()

	var ranAt Time = -1
	sh.Hub().At(50, func() {
		// Contract requires at >= 50+100; this send undercuts the lookahead.
		to.Send(60, func(any) { ranAt = d.Now() }, nil)
	})
	sh.Run()

	if n := rec.Count(); n == 0 {
		t.Fatal("lookahead-violating send recorded no invariant violation")
	} else if msg := rec.Violations()[0].Message; !strings.Contains(msg, "lookahead") {
		t.Fatalf("violation %q does not name the lookahead contract", msg)
	}
	if ranAt != 150 {
		t.Fatalf("violating send ran at %d ps, want clamped to 150 ps", ranAt)
	}
}

// TestShardZeroLatencyCycleRejected: Finalize must refuse a topology in
// which a round could exist where no domain may move.
func TestShardZeroLatencyCycleRejected(t *testing.T) {
	hub := New()
	sh := NewShard(hub, 1)
	d := sh.AddDomain("d")
	sh.Connect(sh.Hub(), d, 0)
	sh.Connect(d, sh.Hub(), 0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("zero-latency cycle passed Finalize")
		}
	}()
	sh.Finalize()
}

// ---- Drain, restart and progress accounting ----

// TestShardRunTwiceDrains checks Run is restartable: seeding more work
// after a drain and running again executes it, with Steps and Rounds
// accumulating monotonically.
func TestShardRunTwiceDrains(t *testing.T) {
	hub := New()
	sh := NewShard(hub, 2)
	d := sh.AddDomain("d")
	to := sh.Connect(sh.Hub(), d, 10)
	back := sh.Connect(d, sh.Hub(), 10)
	sh.Finalize()

	ran := 0
	seed := func() {
		sh.Hub().At(sh.Hub().Now(), func() {
			to.Send(sh.Hub().Now()+10, func(any) {
				back.Send(d.Now()+10, func(any) { ran++ }, nil)
			}, nil)
		})
	}
	seed()
	sh.Run()
	if ran != 1 || sh.Pending() != 0 {
		t.Fatalf("first drain: ran=%d pending=%d", ran, sh.Pending())
	}
	steps, rounds := sh.Steps(), sh.Rounds()
	seed()
	sh.Run()
	if ran != 2 || sh.Pending() != 0 {
		t.Fatalf("second drain: ran=%d pending=%d", ran, sh.Pending())
	}
	if sh.Steps() <= steps || sh.Rounds() <= rounds {
		t.Fatalf("progress counters did not advance: steps %d->%d rounds %d->%d",
			steps, sh.Steps(), rounds, sh.Rounds())
	}
}

// ---- Steady-state allocation pin ----

// pongState is the prebound ping-pong workload for the allocation pin.
type pongState struct {
	sh     *Shard
	d      *Domain
	to     *Link
	back   *Link
	bounce int
}

func domPingCB(x any) {
	s := x.(*pongState)
	s.back.SendLate(s.d.Now()+s.back.Latency(), 0, hubPongCB, s)
}

func hubPongCB(x any) {
	s := x.(*pongState)
	if s.bounce > 0 {
		s.bounce--
		s.to.Send(s.sh.Hub().Now()+s.to.Latency(), domPingCB, s)
	}
}

// BenchmarkShardRoundTrip prices one barrier round trip at Workers = 1 —
// send, bound computation, delivery, late-class reply — against which the
// tsim domain-scaling numbers in BENCH_8.json are read: the barrier
// overhead a domain must amortise with parallel work.
func BenchmarkShardRoundTrip(b *testing.B) {
	b.ReportAllocs()
	hub := New()
	sh := NewShard(hub, 1)
	d := sh.AddDomain("d")
	s := &pongState{sh: sh, d: d}
	s.to = sh.Connect(sh.Hub(), d, 10)
	s.back = sh.Connect(d, sh.Hub(), 10)
	sh.Finalize()
	s.bounce = b.N
	s.to.Send(sh.Hub().Now()+s.to.Latency(), domPingCB, s)
	sh.Run()
}

// TestShardSteadyStateZeroAllocs pins the sharded engine's hot path: once
// the link buffers and queues have reached their high-water marks, a full
// round trip — send, barrier delivery, late-class reply, hub dispatch —
// allocates nothing at Workers = 1. (With workers the channel handshakes
// are per-Run, not per-round, and are pinned separately by the parity
// tests running millions of events.)
func TestShardSteadyStateZeroAllocs(t *testing.T) {
	hub := New()
	sh := NewShard(hub, 1)
	d := sh.AddDomain("d")
	s := &pongState{sh: sh, d: d}
	s.to = sh.Connect(sh.Hub(), d, 10)
	s.back = sh.Connect(d, sh.Hub(), 10)
	sh.Finalize()

	run := func(bounces int) {
		s.bounce = bounces
		s.to.Send(sh.Hub().Now()+s.to.Latency(), domPingCB, s)
		sh.Run()
	}
	run(64) // warm queues and buffers past any growth
	allocs := testing.AllocsPerRun(100, func() { run(50) })
	if allocs != 0 {
		t.Fatalf("steady-state shard round trip allocated %.1f times per run, want 0", allocs)
	}
}
