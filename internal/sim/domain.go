// Conservative parallel simulation: a Shard partitions one run into
// Domains — each with its own event queue and local clock — connected by
// typed, timestamped message Links with a fixed minimum latency
// (lookahead). Execution proceeds in barrier rounds:
//
//  1. The coordinator computes a safe bound per domain from the earliest
//     pending event of every other domain plus the all-pairs minimum link
//     latency between them (the static window).
//  2. Domains execute in parallel, each strictly below its bound. A send
//     during the round additionally lowers the sender's own bound to the
//     delivery time plus the minimum return-path latency (the feedback
//     window), so a domain can run far ahead while it is not interacting.
//  3. At the barrier the coordinator delivers all buffered messages in
//     (link rank, send order) — a pure function of simulation state, so
//     the delivery sequence, and therefore the whole run, is identical at
//     any worker count.
//
// Every directed cycle of links must have positive total latency
// (Finalize checks this); that guarantees some domain can always make
// progress, so rounds never deadlock.
package sim

import "repro/internal/inv"

// infTime is the "no constraint" sentinel for bounds and distances. It is
// far below the int64 overflow line so adding a handful of link latencies
// to it stays positive.
const infTime Time = 1 << 62

// message is one buffered cross-domain event: deliver fn(arg) at absolute
// time at in the destination domain, in the ordinary (pri 0) or late
// (pri 1, keyed) class — mirroring AtCall vs AtCallLate.
type message struct {
	at   Time
	pri  uint8
	key  int32
	call func(any)
	arg  any
}

// Domain is one partition of a sharded run. It wraps a private Engine
// (queue, clock, sequence counter) bound to the run's invariant recorder.
// Components inside a domain schedule local work with Now/AtCall exactly
// as against an Engine; cross-domain effects must go through a Link.
type Domain struct {
	sh   *Shard
	id   int
	name string
	e    *Engine
	out  []*Link

	// feedback is the dynamic bound contributed by this round's own
	// sends: the earliest time a reply could come back. Reset to infTime
	// at each round start, lowered by Link.Send, read by execBound.
	feedback Time
	// ran counts events executed this round (written by the domain's
	// worker, read by the coordinator after the barrier).
	ran uint64
}

// Now reports the domain's local clock.
func (d *Domain) Now() Time { return d.e.now }

// Recorder reports the run's invariant recorder (shared with the hub).
func (d *Domain) Recorder() *inv.Recorder { return d.e.Recorder() }

// Pending reports the domain's scheduled-but-unexecuted event count.
func (d *Domain) Pending() int { return d.e.q.len() }

// At schedules fn at absolute local time t (panics on the past, like
// Engine.At).
func (d *Domain) At(t Time, fn func()) { d.e.At(t, fn) }

// AtCall schedules fn(arg) at absolute local time t — the allocation-free
// hot-path form, identical to Engine.AtCall.
func (d *Domain) AtCall(t Time, fn func(any), arg any) { d.e.AtCall(t, fn, arg) }

// AfterCall schedules fn(arg) d picoseconds from the local now.
func (d *Domain) AfterCall(dt Time, fn func(any), arg any) { d.e.AfterCall(dt, fn, arg) }

// AtCallLate schedules fn(arg) in the late class (see Engine.AtCallLate).
func (d *Domain) AtCallLate(t Time, key int32, fn func(any), arg any) {
	d.e.AtCallLate(t, key, fn, arg)
}

// execBound runs local events with timestamps strictly below the round's
// bound: the minimum of the coordinator's static window and the domain's
// own send feedback. Strictness matters — an event at exactly the bound
// could still be influenced by a message arriving at that time.
func (d *Domain) execBound(static Time) uint64 {
	e := d.e
	var n uint64
	for e.q.len() > 0 {
		bound := static
		if d.feedback < bound {
			bound = d.feedback
		}
		if e.peek().at >= bound {
			break
		}
		e.step()
		n++
	}
	return n
}

// deliverAt injects a barrier-delivered message into the local queue. A
// delivery behind the local clock means a lookahead violation slipped
// through; it is recorded as an invariant violation and clamped to now —
// never silently reordered before already-executed work.
func (d *Domain) deliverAt(t Time, pri uint8, key int32, call func(any), arg any) {
	e := d.e
	if t < e.now {
		if rec := e.rec; rec.On() {
			rec.Failf("sim", "domain %q: message delivery at %d ps behind local clock %d ps (lookahead violation); clamped",
				d.name, t, e.now)
		}
		t = e.now
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, pri: pri, key: key, call: call, arg: arg})
}

// Link is a directed, fixed-minimum-latency message channel between two
// domains. Sends buffer during a round; the coordinator delivers all
// buffers at the barrier in (link rank, send order).
type Link struct {
	src, dst *Domain
	latency  Time
	rank     int
	// back is the minimum return-path latency dst→src (set by Finalize;
	// infTime when the destination can never influence the sender).
	back Time
	buf  []message
}

// Send schedules fn(arg) in the destination domain at absolute time at,
// in the ordinary event class. The contract is at >= src.Now() + latency:
// the link's declared latency is the lookahead the synchronizer relies
// on. A violating send is recorded on the run's invariant recorder and
// clamped up to the earliest legal time, keeping the run deterministic
// rather than corrupting it.
func (l *Link) Send(at Time, fn func(any), arg any) { l.send(at, 0, 0, fn, arg) }

// SendLate schedules fn(arg) in the destination's late class with the
// given tie key (see Engine.AtCallLate): at the destination it runs after
// every ordinary event with the same timestamp, ordered among same-time
// late events by key. Same lookahead contract as Send.
func (l *Link) SendLate(at Time, key int32, fn func(any), arg any) { l.send(at, 1, key, fn, arg) }

func (l *Link) send(at Time, pri uint8, key int32, fn func(any), arg any) {
	src := l.src
	if min := src.e.now + l.latency; at < min {
		if rec := src.e.rec; rec.On() {
			rec.Failf("sim", "link %q→%q: send for %d ps violates lookahead %d ps at now %d ps; clamped",
				src.name, l.dst.name, at, l.latency, src.e.now)
		}
		at = min
	}
	l.buf = append(l.buf, message{at: at, pri: pri, key: key, call: fn, arg: arg})
	if l.back < infTime {
		if fb := at + l.back; fb < src.feedback {
			src.feedback = fb
		}
	}
}

// Latency reports the link's declared minimum latency.
func (l *Link) Latency() Time { return l.latency }

// Shard coordinates a set of lookahead-synchronized domains. Domain 0 is
// the hub: the pre-existing serial Engine that owns the run (and its
// invariant recorder). Build with NewShard, partition with AddDomain,
// wire with Connect, seal with Finalize, then Run drains every domain.
type Shard struct {
	doms  []*Domain
	links []*Link
	dist  [][]Time
	final bool

	// Workers is the parallelism degree for round execution (domains are
	// statically striped across workers; the coordinator goroutine takes
	// stripe 0). Values below 1 run single-threaded. The schedule is
	// byte-identical at any worker count.
	Workers int
	// MaxSteps, when positive, bounds total executed events across all
	// domains; exceeding it panics (runaway-simulation guard).
	MaxSteps uint64

	rounds uint64
	bounds []Time
}

// NewShard wraps hub — the engine that owns the run — as domain 0 of a
// new shard. The hub's recorder binding is inherited by every domain
// added afterwards, so all violations of the run land in one ledger.
func NewShard(hub *Engine, workers int) *Shard {
	s := &Shard{Workers: workers}
	s.doms = append(s.doms, &Domain{sh: s, id: 0, name: "hub", e: hub})
	return s
}

// Hub reports the hub domain (the wrapped serial engine).
func (s *Shard) Hub() *Domain { return s.doms[0] }

// AddDomain creates a new empty domain sharing the run's recorder.
func (s *Shard) AddDomain(name string) *Domain {
	if s.final {
		panic("sim: AddDomain after Finalize")
	}
	d := &Domain{sh: s, id: len(s.doms), name: name, e: &Engine{rec: s.doms[0].e.rec}}
	s.doms = append(s.doms, d)
	return d
}

// Connect adds a directed link src→dst with the given minimum latency.
// Link creation order fixes barrier delivery order (rank).
func (s *Shard) Connect(src, dst *Domain, latency Time) *Link {
	if s.final {
		panic("sim: Connect after Finalize")
	}
	if latency < 0 {
		panic("sim: negative link latency")
	}
	if src.sh != s || dst.sh != nil && dst.sh != s {
		panic("sim: Connect across shards")
	}
	l := &Link{src: src, dst: dst, latency: latency, rank: len(s.links), back: infTime}
	s.links = append(s.links, l)
	src.out = append(src.out, l)
	return l
}

// Finalize seals the topology: it computes the all-pairs minimum-latency
// closure over the link graph (Floyd–Warshall), caches each link's
// return-path latency for the feedback window, and rejects any directed
// cycle with zero total latency — such a cycle would admit rounds in
// which no domain may move.
func (s *Shard) Finalize() {
	if s.final {
		panic("sim: Finalize twice")
	}
	n := len(s.doms)
	dist := make([][]Time, n)
	for i := range dist {
		dist[i] = make([]Time, n)
		for j := range dist[i] {
			dist[i][j] = infTime
		}
	}
	for _, l := range s.links {
		if lat := l.latency; lat < dist[l.src.id][l.dst.id] {
			dist[l.src.id][l.dst.id] = lat
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] >= infTime {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] >= infTime {
					continue
				}
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] <= 0 {
			panic("sim: domain link graph has a zero-latency cycle through " + s.doms[i].name)
		}
	}
	for _, l := range s.links {
		l.back = dist[l.dst.id][l.src.id]
	}
	s.dist = dist
	s.bounds = make([]Time, n)
	s.final = true
}

// Pending reports scheduled-but-unexecuted events across all domains.
// Between rounds every link buffer is empty, so this is the full count.
func (s *Shard) Pending() int {
	total := 0
	for _, d := range s.doms {
		total += d.e.q.len()
	}
	return total
}

// Steps reports executed events across all domains.
func (s *Shard) Steps() uint64 {
	var total uint64
	for _, d := range s.doms {
		total += d.e.steps
	}
	return total
}

// Rounds reports completed barrier rounds.
func (s *Shard) Rounds() uint64 { return s.rounds }

// staticBound computes the round's safe window for d: the earliest moment
// any other seeded domain could influence it. Its own pending events do
// not constrain it — self-influence goes through a send and is handled by
// the feedback window at runtime.
func (s *Shard) staticBound(d *Domain) Time {
	bound := infTime
	row := s.dist
	for _, o := range s.doms {
		if o == d || o.e.q.len() == 0 {
			continue
		}
		if lat := row[o.id][d.id]; lat < infTime {
			if w := o.e.peek().at + lat; w < bound {
				bound = w
			}
		}
	}
	return bound
}

// deliverAll drains every link buffer into its destination queue in
// (link rank, send order), assigning destination-local sequence numbers
// as it goes. Reports whether anything moved.
func (s *Shard) deliverAll() bool {
	moved := false
	for _, l := range s.links {
		if len(l.buf) == 0 {
			continue
		}
		moved = true
		for i := range l.buf {
			m := &l.buf[i]
			l.dst.deliverAt(m.at, m.pri, m.key, m.call, m.arg)
			l.buf[i] = message{}
		}
		l.buf = l.buf[:0]
	}
	return moved
}

// Run executes barrier rounds until every domain's queue is empty and no
// message is buffered. It may be called repeatedly; each call drains
// whatever has been seeded since (events or pre-Run sends alike). With
// Workers > 1 it spawns that many round workers for the duration of the
// call; execution is nonetheless byte-identical to Workers = 1. The serial
// path is allocation-free in steady state — the worker machinery lives in
// runParallel so nothing here escapes.
func (s *Shard) Run() {
	if !s.final {
		panic("sim: Shard.Run before Finalize")
	}
	nw := s.Workers
	if nw < 1 {
		nw = 1
	}
	if nw > len(s.doms) {
		nw = len(s.doms)
	}
	if nw > 1 {
		s.runParallel(nw)
		return
	}
	for s.beginRound() {
		for i, d := range s.doms {
			d.ran = d.execBound(s.bounds[i])
		}
		s.endRound()
	}
}

// runParallel is Run's multi-worker body: nw-1 spawned workers plus the
// coordinator each execute a static stripe of domains every round.
func (s *Shard) runParallel(nw int) {
	start := make([]chan struct{}, nw-1)
	done := make(chan struct{}, nw-1)
	for w := range start {
		ch := make(chan struct{}, 1)
		start[w] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				for i := w + 1; i < len(s.doms); i += nw {
					d := s.doms[i]
					d.ran = d.execBound(s.bounds[i])
				}
				done <- struct{}{}
			}
		}(w, ch)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()
	for s.beginRound() {
		for _, ch := range start {
			ch <- struct{}{}
		}
		// The coordinator takes stripe 0, which includes the hub — the
		// heaviest domain runs without a handoff.
		for i := 0; i < len(s.doms); i += nw {
			d := s.doms[i]
			d.ran = d.execBound(s.bounds[i])
		}
		for range start {
			<-done
		}
		s.endRound()
	}
}

// beginRound prepares the next round: per-domain static bounds, feedback
// and progress reset. It reports false once the shard is fully drained —
// no pending events and nothing buffered on any link (messages sent before
// Run get delivered here, so a pre-seeded shard still makes progress).
func (s *Shard) beginRound() bool {
	if s.Pending() == 0 && !s.deliverAll() {
		return false
	}
	for i, d := range s.doms {
		s.bounds[i] = s.staticBound(d)
		d.feedback = infTime
		d.ran = 0
	}
	return true
}

// endRound runs the barrier: deliver every buffered message, then enforce
// progress (a round with no work and no traffic means the topology
// deadlocked, which Finalize should have made impossible) and the step
// ceiling.
func (s *Shard) endRound() {
	var executed uint64
	for _, d := range s.doms {
		executed += d.ran
	}
	moved := s.deliverAll()
	s.rounds++
	if executed == 0 && !moved {
		panic("sim: shard deadlock: no events executable and no messages in flight")
	}
	if s.MaxSteps > 0 && s.Steps() > s.MaxSteps {
		panic("sim: shard exceeded MaxSteps (runaway simulation)")
	}
}
