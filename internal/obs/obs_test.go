package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// synthetic drives a fixed three-request scenario through tr: an EMCC-style
// LLC-missing load with overlapping crypto lane, a plain LLC hit, and a
// store — enough to touch both lanes, all markers, and the sampler.
func synthetic(tr *Tracer) {
	ns := func(n int64) sim.Time { return sim.Time(n) * sim.Nanosecond }

	r1 := tr.StartReq(0, 0x1000, false, ns(0))
	r1.AddSpan(SegL1, ns(0), ns(1))
	r1.AddSpan(SegL2Lookup, ns(1), ns(3))
	r1.AddSpan(SegNoCReq, ns(3), ns(10))
	r1.AddSpan(SegLLCProbe, ns(10), ns(14))
	r1.MarkLLCMiss()
	r1.AddSpan(SegNoCToMC, ns(14), ns(20))
	r1.AddSpan(SegDRAMQueue, ns(20), ns(35))
	r1.AddSpan(SegDRAMService, ns(35), ns(70))
	// Crypto lane, overlapping the data path.
	r1.AddSpan(SegCtrProbeL2, ns(3), ns(6))
	r1.MarkCtr(CtrAtLLC)
	r1.AddSpan(SegCtrFetch, ns(6), ns(30))
	r1.AddSpan(SegAESQueue, ns(30), ns(32))
	r1.AddSpan(SegAESCompute, ns(32), ns(72))
	r1.AddSpan(SegNoCResp, ns(70), ns(78))
	r1.MarkDecrypt(DecAtL2, ns(78), ns(80))
	r1.Finish(ns(80))

	r2 := tr.StartReq(1, 0x2040, false, ns(5))
	r2.AddSpan(SegL1, ns(5), ns(6))
	r2.AddSpan(SegL2Lookup, ns(6), ns(8))
	r2.AddSpan(SegNoCReq, ns(8), ns(15))
	r2.AddSpan(SegLLCProbe, ns(15), ns(21))
	r2.AddSpan(SegNoCResp, ns(21), ns(28))
	r2.Finish(ns(28))

	r3 := tr.StartReq(0, 0x3080, true, ns(12))
	r3.AddSpan(SegL1, ns(12), ns(13))
	r3.MarkMerged()
	r3.Finish(ns(40))

	tr.Sample("mshr", ns(50), 3)
	tr.Sample("mshr", ns(100), 1)
	tr.Instant("emcc-off", 0, ns(60))
}

func TestAggregation(t *testing.T) {
	st := stats.NewSet()
	tr := New(Options{Stats: st, TopN: 2})
	synthetic(tr)

	if got := st.Counter("obs/req-traced"); got != 3 {
		t.Fatalf("req-traced = %d, want 3", got)
	}
	if got := st.Counter("obs/req-llc-miss"); got != 1 {
		t.Fatalf("req-llc-miss = %d, want 1", got)
	}
	if got := st.Counter("obs/ctr-src/llc"); got != 1 {
		t.Fatalf("ctr-src/llc = %d, want 1", got)
	}
	if got := st.Accum("obs/exposed-decrypt-ns"); got.Count != 1 || got.Sum != 2 {
		t.Fatalf("exposed-decrypt = %+v, want one 2 ns sample", got)
	}
	// Crypto lane work: probe 3 + fetch 24 + aesq 2 + aes 40 = 69 ns,
	// exposed 2 ns → overlapped 67 ns.
	if got := st.Accum("obs/overlapped-decrypt-ns"); got.Count != 1 || got.Sum != 67 {
		t.Fatalf("overlapped-decrypt = %+v, want one 67 ns sample", got)
	}
	if got := st.Accum("obs/seg/dram-service-ns"); got.Count != 1 || got.Sum != 35 {
		t.Fatalf("dram-service = %+v, want one 35 ns sample", got)
	}

	top := tr.TopRequests()
	if len(top) != 2 || top[0].Block != 0x1000 || top[1].Block != 0x3080 {
		t.Fatalf("topN wrong: %+v", top)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	r := tr.StartReq(0, 1, false, 0)
	if r != nil {
		t.Fatal("nil tracer returned non-nil req")
	}
	// All annotations must be no-ops on nil.
	r.AddSpan(SegL1, 0, 10)
	r.Begin(SegMCQueue, 0)
	r.Commit(SegMCQueue, 5)
	r.MarkLLCMiss()
	r.MarkOffload()
	r.MarkMerged()
	r.MarkCtr(CtrAtL2)
	r.MarkDecrypt(DecAtMC, 0, 1)
	r.Finish(10)
	tr.Sample("x", 0, 1)
	tr.Instant("x", 0, 0)
	tr.Flow(0, 1, false, false, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() || tr.SamplePeriod() != 0 || tr.Traced() != 0 || tr.TopRequests() != nil {
		t.Fatal("nil tracer not inert")
	}
}

// TestNilSafeSetMatchesMethods cross-checks the tracerNilSafe declaration
// the obsnil lint pass reads: every listed name must be a real *Tracer
// method (a typo'd entry would allow-list nothing), and every exported
// *Tracer method must be listed — TestNilSafety above proves each one
// no-ops on a nil receiver, so an unlisted newcomer either gets a nil
// guard and an entry here, or stays unexported.
func TestNilSafeSetMatchesMethods(t *testing.T) {
	typ := reflect.TypeOf((*Tracer)(nil))
	methods := make(map[string]bool, typ.NumMethod())
	for i := 0; i < typ.NumMethod(); i++ {
		methods[typ.Method(i).Name] = true
	}
	for name := range tracerNilSafe {
		if !methods[name] {
			t.Errorf("tracerNilSafe lists %q, which is not a method of *Tracer", name)
		}
	}
	for name := range methods {
		if !tracerNilSafe[name] {
			t.Errorf("exported method (*Tracer).%s is not in tracerNilSafe; add a nil guard and list it, or unexport it", name)
		}
	}
}

func TestBeginCommit(t *testing.T) {
	tr := New(Options{})
	r := tr.StartReq(0, 1, false, 0)
	r.Begin(SegMCQueue, 10)
	r.Begin(SegMCQueue, 20) // retry re-entry: earlier start wins
	r.Commit(SegMCQueue, 50)
	r.Commit(SegMCQueue, 60) // double commit: no-op
	if got := r.SegTotal(SegMCQueue); got != 40 {
		t.Fatalf("mc-queue total = %d, want 40", got)
	}
	if len(r.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(r.Spans))
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{Sample: 3})
	var traced int
	for i := 0; i < 9; i++ {
		if r := tr.StartReq(0, uint64(i), false, 0); r != nil {
			traced++
			r.Finish(10)
		}
	}
	if traced != 3 || tr.Traced() != 3 {
		t.Fatalf("sampled %d of 9 with Sample=3, want 3", traced)
	}
}

// TestChromeGolden pins the streamed trace byte-for-byte for the synthetic
// workload: the stream must be deterministic and stay parseable JSON with
// the documented shape.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf, Meta: map[string]string{"bench": "synthetic", "seed": "1"}})
	synthetic(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Must parse as the documented envelope.
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
		TraceEvents     []map[string]any  `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || doc.OtherData["bench"] != "synthetic" {
		t.Fatalf("envelope wrong: %+v", doc)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["X"] == 0 || phases["C"] != 2 || phases["M"] == 0 || phases["i"] != 1 {
		t.Fatalf("event mix wrong: %v", phases)
	}

	path := filepath.Join("testdata", "synthetic.trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace stream drifted from golden (run with -update if intended)\ngot:\n%s", buf.String())
	}
}

// TestChromeDeterminism double-checks byte-identical output across runs.
func TestChromeDeterminism(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := New(Options{Writer: &buf, Meta: map[string]string{"seed": "1"}})
		synthetic(tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two identical synthetic runs produced different traces")
	}
}

// TestLaneReuse proves lane slots are recycled deterministically: two
// sequential requests on one core share lane 0, concurrent ones split.
// TestFinishClampsSpeculativeTails pins the lifetime-clamping contract:
// crypto-lane work recorded with a completion beyond the request's finish
// (a speculative AES reservation whose data was served on-chip) is clamped
// to the lifetime, and annotations arriving after Finish are dropped.
func TestFinishClampsSpeculativeTails(t *testing.T) {
	st := stats.NewSet()
	tr := New(Options{Stats: st})
	r := tr.StartReq(0, 0x40, false, 100)
	r.AddSpan(SegL1, 100, 102)
	r.AddSpan(SegAESCompute, 150, 400) // reserved past the eventual finish
	r.AddSpan(SegCtrFetch, 300, 350)   // starts after the finish entirely
	r.Finish(200)
	if got := r.SegTotal(SegAESCompute); got != 50 {
		t.Errorf("AES span not clamped to lifetime: %d ps attributed, want 50", got)
	}
	if got := r.SegTotal(SegCtrFetch); got != 0 {
		t.Errorf("post-finish-start span kept: %d ps", got)
	}
	r.AddSpan(SegNoCResp, 150, 160)
	r.MarkDecrypt(DecAtL2, 150, 190)
	r.MarkCtr(CtrAtMC)
	if r.SegTotal(SegNoCResp) != 0 || r.Decrypt != DecNone || r.CtrSrc != CtrUnknown {
		t.Error("annotations after Finish were not ignored")
	}
	if r.Latency() != 100 {
		t.Errorf("latency %d, want 100", r.Latency())
	}
}

func TestLaneReuse(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf})
	a := tr.StartReq(0, 1, false, 0)
	b := tr.StartReq(0, 2, false, 0)
	if a.lane != 0 || b.lane != 1 {
		t.Fatalf("concurrent lanes = %d,%d, want 0,1", a.lane, b.lane)
	}
	a.Finish(10)
	c := tr.StartReq(0, 3, false, 20)
	if c.lane != 0 {
		t.Fatalf("freed lane not reused: got %d, want 0", c.lane)
	}
	b.Finish(30)
	c.Finish(30)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReportOutput smoke-tests the text renderers on the synthetic run.
func TestReportOutput(t *testing.T) {
	st := stats.NewSet()
	tr := New(Options{Stats: st})
	synthetic(tr)
	var b bytes.Buffer
	WriteSummary(&b, st)
	WriteTopRequests(&b, tr.TopRequests())
	out := b.String()
	for _, want := range []string{"traced requests: 3", "dram-service", "exposed", "top 3 slowest"} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHistAggregation(t *testing.T) {
	st := stats.NewSet()
	tr := New(Options{Stats: st, TopN: 2})
	synthetic(tr)

	// Request latencies: 80, 23, 28 ns → the hist sees integer ns.
	lh := st.Hist(stats.ObsReqLatencyHist)
	if lh.Count() != 3 || lh.Max() != 80 {
		t.Fatalf("latency hist n=%d max=%d, want 3/80", lh.Count(), lh.Max())
	}
	if lh.Quantile(1) != 80 {
		t.Fatalf("latency p100 = %d, want 80", lh.Quantile(1))
	}
	// Per-segment hist mirrors the accumulator counts.
	sh := st.Hist(SegHistKey(SegDRAMService))
	if sh.Count() != 1 || sh.Max() != 35 {
		t.Fatalf("dram-service hist n=%d max=%d, want 1/35", sh.Count(), sh.Max())
	}
	// Exposed-decrypt hist: one 2 ns sample.
	eh := st.Hist(stats.ObsExposedDecryptHist)
	if eh.Count() != 1 || eh.Max() != 2 {
		t.Fatalf("exposed hist n=%d max=%d, want 1/2", eh.Count(), eh.Max())
	}
	// Quantiles of the latency hist are monotone and within range.
	if p50, p99 := lh.Quantile(0.5), lh.Quantile(0.99); p50 > p99 || p99 > lh.Max() {
		t.Fatalf("latency quantiles out of order: p50=%d p99=%d max=%d", p50, p99, lh.Max())
	}
}

func TestReqPoolingPreservesTopN(t *testing.T) {
	st := stats.NewSet()
	tr := New(Options{Stats: st, TopN: 3})
	ns := func(n int64) sim.Time { return sim.Time(n) * sim.Nanosecond }
	// 50 requests with latency i ns; pooled Reqs are reused heavily but
	// the retained top-3 must keep their own state intact.
	for i := int64(1); i <= 50; i++ {
		r := tr.StartReq(int(i%4), uint64(i)<<6, false, ns(0))
		r.AddSpan(SegL1, ns(0), ns(i))
		r.Finish(ns(i))
	}
	top := tr.TopRequests()
	if len(top) != 3 {
		t.Fatalf("top has %d entries, want 3", len(top))
	}
	for j, wantNS := range []int64{50, 49, 48} {
		if got := int64(top[j].Latency()) / 1000; got != wantNS {
			t.Fatalf("top[%d] latency %d ns, want %d", j, got, wantNS)
		}
		if len(top[j].Spans) != 1 || top[j].Spans[0].Seg != SegL1 {
			t.Fatalf("top[%d] spans corrupted by pooling: %+v", j, top[j].Spans)
		}
	}
	// The freelist actually recycles: run the same workload again on the
	// same tracer and confirm no unbounded growth of live requests (a
	// proxy: pool head is non-nil after the churn above).
	if tr.freeReq == nil {
		t.Fatal("freelist empty after 47 evictions")
	}
}
