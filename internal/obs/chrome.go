package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// chromeWriter streams Chrome/Perfetto trace_event JSON. Events are
// emitted as each request retires, so memory stays bounded no matter how
// long the run is; only the per-core lane-name metadata (a handful of
// entries) is retained.
//
// Layout: each simulated core is a Chrome "process"; each in-flight
// request occupies a lane of two "threads" — a data-path thread and a
// crypto-path thread — so the EMCC overlap between the block's journey and
// its counter/AES work is directly visible as parallel bars. Time-series
// samples land on a dedicated sampler process as counter ("C") events.
//
// Timestamps: trace_event "ts"/"dur" are microseconds; simulated time is
// picoseconds, so values are written with 6 decimal places, which is exact
// (1 ps = 1e-6 µs) and keeps the stream byte-deterministic.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	named map[string]bool // emitted thread/process metadata, keyed pid/tid
	err   error
}

const (
	samplerPID = 0 // counter track; cores are pid 1+core
	flowPID    = 9999
)

func newChromeWriter(w io.Writer, meta map[string]string) *chromeWriter {
	cw := &chromeWriter{w: bufio.NewWriterSize(w, 64<<10), first: true, named: make(map[string]bool)}
	cw.header(meta)
	return cw
}

func (c *chromeWriter) header(meta map[string]string) {
	c.raw(`{"displayTimeUnit":"ns","otherData":{`)
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			c.raw(",")
		}
		c.raw(fmt.Sprintf("%s:%s", strconv.Quote(k), strconv.Quote(meta[k])))
	}
	c.raw(`},"traceEvents":[`)
}

func (c *chromeWriter) raw(s string) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.WriteString(s)
}

// event writes one comma-separated JSON object into traceEvents.
func (c *chromeWriter) event(s string) {
	if c.first {
		c.first = false
	} else {
		c.raw(",")
	}
	c.raw("\n")
	c.raw(s)
}

// usec renders a picosecond Time as a microsecond JSON number, exactly.
func usec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%06d", neg, t/sim.Microsecond, t%sim.Microsecond)
}

// nsec renders a picosecond Time as a nanosecond JSON number, exactly.
func nsec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, t/sim.Nanosecond, t%sim.Nanosecond)
}

// ensureNamed lazily emits process/thread metadata the first time a track
// is used, so only touched tracks appear and the stream stays append-only.
func (c *chromeWriter) ensureNamed(pid, tid int, pname, tname string) {
	pk := "p" + strconv.Itoa(pid)
	if !c.named[pk] {
		c.named[pk] = true
		c.event(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`, pid, strconv.Quote(pname)))
	}
	if tid < 0 {
		return
	}
	tk := pk + "t" + strconv.Itoa(tid)
	if !c.named[tk] {
		c.named[tk] = true
		c.event(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, pid, tid, strconv.Quote(tname)))
	}
}

// writeReq streams all spans of one finished request as "X" complete
// events: data-lane spans on tid 2*lane+1, crypto-lane spans on 2*lane+2.
func (c *chromeWriter) writeReq(r *Req) {
	pid := 1 + r.Core
	dataTid := 2*r.lane + 1
	cryptoTid := 2*r.lane + 2
	pname := fmt.Sprintf("core %d", r.Core)
	c.ensureNamed(pid, dataTid, pname, fmt.Sprintf("req lane %d data", r.lane))

	kind := "load"
	if r.Store {
		kind = "store"
	}
	// One umbrella span naming the request, then each attributed segment.
	c.event(fmt.Sprintf(
		`{"name":"%s 0x%x","cat":"req","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"id":%d,"llc-miss":%t,"offload":%t,"merged":%t,"ctr":%q,"decrypt":%q,"exposed-ns":%s}}`,
		kind, r.Block, usec(r.Start), usec(r.End-r.Start), pid, dataTid,
		r.ID, r.LLCMiss, r.Offload, r.Merged, r.CtrSrc.String(), r.Decrypt.String(), nsec(r.Exposed)))
	for _, sp := range r.Spans {
		tid := dataTid
		if sp.Seg.cryptoLane() {
			tid = cryptoTid
			c.ensureNamed(pid, cryptoTid, pname, fmt.Sprintf("req lane %d crypto", r.lane))
		}
		c.event(fmt.Sprintf(`{"name":%s,"cat":"seg","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"id":%d}}`,
			strconv.Quote(sp.Seg.String()), usec(sp.Start), usec(sp.End-sp.Start), pid, tid, r.ID))
	}
}

// writeCounter streams one time-series sample as a "C" counter event.
func (c *chromeWriter) writeCounter(name string, at sim.Time, v float64) {
	c.ensureNamed(samplerPID, -1, "samplers", "")
	c.event(fmt.Sprintf(`{"name":%s,"ph":"C","ts":%s,"pid":%d,"args":{"value":%s}}`,
		strconv.Quote(name), usec(at), samplerPID, strconv.FormatFloat(v, 'g', -1, 64)))
}

// writeInstant streams a named instantaneous event on a core's track.
func (c *chromeWriter) writeInstant(name string, core int, at sim.Time) {
	pid := 1 + core
	c.ensureNamed(pid, 0, fmt.Sprintf("core %d", core), "events")
	c.event(fmt.Sprintf(`{"name":%s,"ph":"i","s":"p","ts":%s,"pid":%d,"tid":0}`,
		strconv.Quote(name), usec(at), pid))
}

// writeFlow streams one fsim miss classification; fsim is untimed, so the
// reference sequence number stands in for the timestamp (1 ref = 1 µs).
func (c *chromeWriter) writeFlow(core int, block uint64, write, llcMiss bool, seq int64) {
	c.ensureNamed(flowPID, core, "fsim misses", fmt.Sprintf("core %d", core))
	kind := "load"
	if write {
		kind = "store"
	}
	c.event(fmt.Sprintf(`{"name":"%s 0x%x","cat":"fsim","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"llc-miss":%t}}`,
		kind, block, seq, flowPID, core, llcMiss))
}

func (c *chromeWriter) close() error {
	c.raw("\n]}\n")
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}
