package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// WriteSummary renders the per-segment attribution aggregated in st (by a
// tracer whose Stats sink was st) as a human-readable table: sample count,
// mean and max per segment, the decrypt overlap split, and the request-mix
// counters. It is the text half of cmd/trace's output.
func WriteSummary(w io.Writer, st *stats.Set) {
	fmt.Fprintf(w, "traced requests: %d (%d stores, %d MSHR-merged, %d LLC misses, %d offloaded)\n",
		st.Counter(stats.ObsReqTraced), st.Counter(stats.ObsReqStore),
		st.Counter(stats.ObsReqMerged), st.Counter(stats.ObsReqLLCMiss),
		st.Counter(stats.ObsReqOffload))
	lat := st.Accum(stats.ObsReqLatencyNS)
	if lat.Count > 0 {
		fmt.Fprintf(w, "request latency: mean %.1f ns  min %.1f  max %.1f\n", lat.Mean(), lat.Min, lat.Max)
	}
	if lh := st.Hist(stats.ObsReqLatencyHist); lh.Count() > 0 {
		fmt.Fprintf(w, "request latency: p50 %d ns  p95 %d  p99 %d\n",
			lh.Quantile(0.50), lh.Quantile(0.95), lh.Quantile(0.99))
	}

	fmt.Fprintf(w, "\n%-16s %10s %12s %8s %8s %8s %12s\n",
		"segment", "spans", "mean ns", "p50", "p95", "p99", "max ns")
	for _, seg := range Segments() {
		a := st.Accum(segKeys[seg]) //lint:dynamic-key per-segment family obs/seg/<name>-ns
		if a.Count == 0 {
			continue
		}
		h := st.Hist(segHistKeys[seg]) //lint:dynamic-key per-segment family obs/hist/seg/<name>-ns
		fmt.Fprintf(w, "%-16s %10d %12.2f %8d %8d %8d %12.2f\n",
			seg.String(), a.Count, a.Mean(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), a.Max)
	}

	exp := st.Accum(stats.ObsExposedDecryptNS)
	over := st.Accum(stats.ObsOverlappedDecryptNS)
	if exp.Count > 0 {
		fmt.Fprintf(w, "\ndecrypt overlap (per decrypted fill):\n")
		fmt.Fprintf(w, "  exposed    mean %8.2f ns  (n=%d)\n", exp.Mean(), exp.Count)
		fmt.Fprintf(w, "  overlapped mean %8.2f ns  (n=%d)\n", over.Mean(), over.Count)
		fmt.Fprintf(w, "  decrypt-at: l2=%d mc=%d   ctr-src: l2=%d llc=%d mc=%d\n",
			st.Counter(stats.ObsDecryptAtL2), st.Counter(stats.ObsDecryptAtMC),
			st.Counter(stats.ObsCtrSrcL2), st.Counter(stats.ObsCtrSrcLLC), st.Counter(stats.ObsCtrSrcMC))
	}
}

// WriteTopRequests renders the tracer's slowest-requests table with
// per-segment attribution, longest first.
func WriteTopRequests(w io.Writer, reqs []*Req) {
	if len(reqs) == 0 {
		return
	}
	fmt.Fprintf(w, "top %d slowest requests:\n", len(reqs))
	for i, r := range reqs {
		kind := "load"
		if r.Store {
			kind = "store"
		}
		flags := ""
		if r.LLCMiss {
			flags += " llc-miss"
		}
		if r.Offload {
			flags += " offload"
		}
		if r.Merged {
			flags += " merged"
		}
		fmt.Fprintf(w, "#%-3d %-5s core %d block 0x%010x  %9.1f ns%s\n",
			i+1, kind, r.Core, r.Block, r.Latency().Nanoseconds(), flags)
		for _, part := range segBreakdown(r) {
			fmt.Fprintf(w, "      %-16s %9.1f ns\n", part.name, part.ns)
		}
		if r.Decrypt != DecNone {
			fmt.Fprintf(w, "      decrypt@%-8s %9.1f ns exposed\n", r.Decrypt, r.Exposed.Nanoseconds())
		}
	}
}

type segPart struct {
	name string
	ns   float64
}

// segBreakdown collapses a request's spans into per-segment totals, in
// pipeline order, dropping empty segments.
func segBreakdown(r *Req) []segPart {
	var parts []segPart
	for _, seg := range Segments() {
		if d := r.SegTotal(seg); d > 0 {
			parts = append(parts, segPart{seg.String(), d.Nanoseconds()})
		}
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].ns > parts[j].ns })
	return parts
}
