// Package obs is the per-request critical-path tracing subsystem. The
// timing simulator threads one *Req context through every memory request
// that misses L1; components (core, L2, LLC, MC, DRAM, AES pools) annotate
// segment boundaries on it, and the tracer attributes the request's total
// latency to pipeline segments — including the cycles where decryption was
// *exposed* on the critical path versus hidden behind the data block's
// DRAM→MC→LLC→L2 journey, the paper's central latency-overlap argument.
//
// Two sinks run behind one tracer:
//
//   - an in-memory aggregator feeding per-segment stats.Set accumulators
//     ("obs/seg/<name>-ns", stats.ObsExposedDecryptNS, …) plus a bounded
//     top-N slowest-request table, and
//   - an optional streaming Chrome/Perfetto trace_event JSON writer
//     (chrome.go) with bounded memory: events leave the process as each
//     request retires.
//
// Tracing is zero-overhead when disabled: every method is safe on a nil
// *Tracer / nil *Req receiver, so instrumentation sites cost one
// predictable nil check and no allocation — the same discipline as
// internal/inv's atomic gate. Enabled runs are deterministic: the same
// seed produces a byte-identical trace stream.
package obs

import (
	"io"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Segment labels one pipeline stage of a memory request. The data-path
// segments (L1 … NoCResp) are sequential along the block's journey; the
// crypto-path segments (CtrProbeL2 … Exposed) run on a parallel lane that
// overlaps the data path under EMCC — the Chrome writer renders the two
// lanes as separate threads so the overlap is visible.
type Segment uint8

// The segment taxonomy (see DESIGN.md §8).
const (
	// SegL1 is L1 lookup plus miss handling before the request reaches L2.
	SegL1 Segment = iota
	// SegL2Lookup is the L2 tag lookup ending at miss detection.
	SegL2Lookup
	// SegNoCReq is the L2→LLC-slice request traversal.
	SegNoCReq
	// SegLLCProbe is the LLC slice access (tag only on miss, tag+data on hit).
	SegLLCProbe
	// SegNoCToMC is the LLC→MC (or L2→MC under XPT) traversal.
	SegNoCToMC
	// SegMCQueue is time spent waiting at the MC before the DRAM enqueue
	// succeeds (overflow blocking, full queues).
	SegMCQueue
	// SegDRAMQueue is the DRAM channel queue delay (enqueue→issue).
	SegDRAMQueue
	// SegDRAMService is the bank access plus data-bus burst (issue→pins).
	SegDRAMService
	// SegNoCResp is the response traversal back to the requesting L2.
	SegNoCResp
	// SegCtrProbeL2 is EMCC's serial counter lookup in L2 spare cycles.
	SegCtrProbeL2
	// SegCtrFetch is the counter resolution wait: LLC speculative fetch,
	// or the MC's counter-cache/LLC/DRAM walk with verification, ending
	// when the counter is decoded and usable.
	SegCtrFetch
	// SegAESQueue is the AES pool queue delay before the OTP ops issue.
	SegAESQueue
	// SegAESCompute is the AES computation itself.
	SegAESCompute
	// SegExposed is the decrypt/verify time left on the critical path
	// after the ciphertext arrived — the cycles EMCC exists to hide.
	SegExposed
	// SegBipBipCipher is the fixed tweakable-cipher latency charged at the
	// cache controller under CtrBipBip (counter-free, always exposed).
	SegBipBipCipher
	// SegInSRAMCipher is the in-SRAM AES pass at the MC under CtrInSRAM:
	// queue plus geometry-derived compute, starting at ciphertext arrival.
	SegInSRAMCipher
	numSegments
)

var segNames = [numSegments]string{
	"l1", "l2-lookup", "noc-req", "llc-probe", "noc-to-mc", "mc-queue",
	"dram-queue", "dram-service", "noc-resp", "ctr-probe-l2", "ctr-fetch",
	"aes-queue", "aes-compute", "exposed-decrypt", "bipbip-cipher",
	"insram-cipher",
}

// segKeys holds the per-segment accumulator names ("obs/seg/<name>-ns"),
// a dynamic key family that stays out of the central registry: the
// segment taxonomy is this package's own vocabulary and the only readers
// (report.go) index the same table.
var segKeys = func() (k [numSegments]string) {
	for i, n := range segNames {
		k[i] = "obs/seg/" + n + "-ns"
	}
	return
}()

// SegStatKey reports the stats accumulator name a segment aggregates
// under ("obs/seg/<name>-ns") — internal/check reads the per-segment
// accounting through it to prove the counter lane stays silent for the
// counter-free designs.
func SegStatKey(s Segment) string { return segKeys[s] }

// segHistKeys holds the per-segment latency-histogram names
// ("obs/hist/seg/<name>-ns"), the distribution companion of segKeys and
// the same kind of dynamic family: out of the central registry, indexed
// only through this table.
var segHistKeys = func() (k [numSegments]string) {
	for i, n := range segNames {
		k[i] = "obs/hist/seg/" + n + "-ns"
	}
	return
}()

// SegHistKey reports the latency-histogram name a segment records into
// ("obs/hist/seg/<name>-ns") — the figures/report layers read per-segment
// p50/p95/p99 through it.
func SegHistKey(s Segment) string { return segHistKeys[s] }

// ctrSrcKeys and decryptKeys map the enum classifications to their
// registered aggregate keys. CtrUnknown/DecNone never reach the sink:
// aggregate() guards on them.
var (
	ctrSrcKeys  = [...]string{CtrAtL2: stats.ObsCtrSrcL2, CtrAtLLC: stats.ObsCtrSrcLLC, CtrAtMC: stats.ObsCtrSrcMC}
	decryptKeys = [...]string{DecAtL2: stats.ObsDecryptAtL2, DecAtMC: stats.ObsDecryptAtMC}
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	if int(s) < len(segNames) {
		return segNames[s]
	}
	return "segment?"
}

// cryptoLane reports whether the segment belongs to the counter/crypto
// lane (rendered as its own thread, overlapping the data lane).
func (s Segment) cryptoLane() bool { return s >= SegCtrProbeL2 }

// Segments enumerates the full taxonomy in pipeline order (report tooling).
func Segments() []Segment {
	out := make([]Segment, numSegments)
	for i := range out {
		out[i] = Segment(i)
	}
	return out
}

// Span is one attributed interval of a request's lifetime.
type Span struct {
	Seg        Segment
	Start, End sim.Time
}

// CtrSource classifies where a request's counter was found.
type CtrSource uint8

// Counter sources, in increasing distance from the core.
const (
	CtrUnknown CtrSource = iota
	CtrAtL2
	CtrAtLLC
	CtrAtMC
)

// String implements fmt.Stringer.
func (c CtrSource) String() string {
	switch c {
	case CtrAtL2:
		return "l2"
	case CtrAtLLC:
		return "llc"
	case CtrAtMC:
		return "mc"
	}
	return "-"
}

// DecryptSite classifies where a DRAM fill was decrypted and verified.
type DecryptSite uint8

// Decrypt sites.
const (
	DecNone DecryptSite = iota
	DecAtL2
	DecAtMC
)

// String implements fmt.Stringer.
func (d DecryptSite) String() string {
	switch d {
	case DecAtL2:
		return "l2"
	case DecAtMC:
		return "mc"
	}
	return "-"
}

// noOpen marks a segment with no span currently open.
const noOpen = sim.Time(-1)

// Req is one traced memory request. All methods are nil-safe so the
// disabled-tracer path costs a single branch per call site.
type Req struct {
	t *Tracer

	// ID is the per-tracer request sequence number (1-based).
	ID    uint64
	Core  int
	Block uint64
	Store bool

	Start, End sim.Time
	Spans      []Span

	// Flags describing the path the request took.
	LLCMiss bool
	Offload bool
	Merged  bool
	CtrSrc  CtrSource
	Decrypt DecryptSite
	// Exposed is the decrypt/verify latency left on the critical path
	// after the ciphertext was available (SegExposed duration).
	Exposed sim.Time

	open [numSegments]sim.Time
	lane int  // chrome lane slot, -1 when no chrome sink
	done bool // Finish ran; late annotations are ignored

	// nextFree links retired requests into the tracer's freelist so the
	// steady-state traced hot path allocates nothing (the Spans backing
	// array is reused too). Only requests retained in the top-N table
	// stay out of the pool.
	nextFree *Req
}

// Span records a closed interval attributed to seg. Zero- or negative-
// length spans are dropped: they carry no latency and would only bloat the
// trace stream.
func (r *Req) AddSpan(seg Segment, start, end sim.Time) {
	if r == nil || r.done || end <= start {
		return
	}
	r.Spans = append(r.Spans, Span{Seg: seg, Start: start, End: end})
}

// Begin opens a span of seg at time at. If a span of the same segment is
// already open the earlier start wins (retry loops re-enter their site).
func (r *Req) Begin(seg Segment, at sim.Time) {
	if r == nil || r.done || r.open[seg] != noOpen {
		return
	}
	r.open[seg] = at
}

// Commit closes the open span of seg at time at. Without a matching Begin
// it is a no-op.
func (r *Req) Commit(seg Segment, at sim.Time) {
	if r == nil || r.done || r.open[seg] == noOpen {
		return
	}
	r.AddSpan(seg, r.open[seg], at)
	r.open[seg] = noOpen
}

// MarkLLCMiss flags that the data access missed in LLC.
func (r *Req) MarkLLCMiss() {
	if r != nil {
		r.LLCMiss = true
	}
}

// MarkOffload flags that the miss carried the adaptive-offload bit.
func (r *Req) MarkOffload() {
	if r != nil {
		r.Offload = true
	}
}

// MarkMerged flags an MSHR-merged request (it rode another miss's path; it
// carries only its L1 span and total latency).
func (r *Req) MarkMerged() {
	if r != nil {
		r.Merged = true
	}
}

// MarkCtr records where the counter was found.
func (r *Req) MarkCtr(src CtrSource) {
	if r != nil && !r.done && r.CtrSrc == CtrUnknown {
		r.CtrSrc = src
	}
}

// MarkDecrypt records where the fill was decrypted and how many
// picoseconds of crypto were exposed on the critical path, and attributes
// the exposed interval [cipherAt, done].
func (r *Req) MarkDecrypt(site DecryptSite, cipherAt, done sim.Time) {
	if r == nil || r.done {
		return
	}
	r.Decrypt = site
	r.Exposed = done - cipherAt
	r.AddSpan(SegExposed, cipherAt, done)
}

// Latency reports the request's total traced latency.
func (r *Req) Latency() sim.Time { return r.End - r.Start }

// SegTotal sums the closed spans attributed to seg.
func (r *Req) SegTotal(seg Segment) sim.Time {
	var d sim.Time
	for _, sp := range r.Spans {
		if sp.Seg == seg {
			d += sp.End - sp.Start
		}
	}
	return d
}

// cryptoDur sums the counter/crypto-lane work excluding the exposed span
// (which is the part of that work that was NOT hidden).
func (r *Req) cryptoDur() sim.Time {
	var d sim.Time
	for _, sp := range r.Spans {
		if sp.Seg.cryptoLane() && sp.Seg != SegExposed {
			d += sp.End - sp.Start
		}
	}
	return d
}

// Finish closes the request at time at, feeds the aggregate sink, streams
// the Chrome events and releases the lane. Safe on nil. Spans are clamped
// to the request's lifetime first: speculative crypto work (an EMCC
// counter fetch or AES keystream reserved with a future completion) can
// outlive the request when its data was served on-chip — that tail is
// prefetch for later misses, not this request's critical path. Further
// annotations after Finish are ignored for the same reason.
func (r *Req) Finish(at sim.Time) {
	if r == nil || r.done {
		return
	}
	r.done = true
	r.End = at
	kept := r.Spans[:0]
	for _, sp := range r.Spans {
		if sp.Start >= at {
			continue
		}
		if sp.End > at {
			sp.End = at
		}
		kept = append(kept, sp)
	}
	r.Spans = kept
	r.t.endReq(r)
}

// Options configures a Tracer. The zero value aggregates into nothing; set
// Stats and/or Writer to attach sinks.
type Options struct {
	// Stats receives the aggregate per-segment metrics. May be nil.
	Stats *stats.Set
	// Writer receives the streaming Chrome trace_event JSON. May be nil.
	Writer io.Writer
	// Sample traces every Nth started request (default 1 = all). Sampling
	// is deterministic: it counts request starts, not wall time.
	Sample uint64
	// TopN bounds the slowest-requests table (default 10).
	TopN int
	// SamplePeriod enables periodic time-series sampling (queue depths,
	// MSHR occupancy, AES utilisation) at this simulated interval when
	// positive.
	SamplePeriod sim.Time
	// Meta is written into the Chrome file's otherData block (run
	// provenance). Keys are emitted sorted, so fixed metadata keeps the
	// stream deterministic.
	Meta map[string]string
}

// tracerNilSafe is the documented nil-safe method set of *Tracer: the
// methods instrumentation sites may call directly on a possibly-nil
// tracer. The obsnil pass (cmd/lint) reads this declaration and flags any
// *Tracer method call outside this package whose method is not listed, so
// adding an exported Tracer method means either guarding its receiver
// against nil and listing it here, or accepting that external callers
// must prove the tracer non-nil. obs_test.go exercises each listed method
// on a nil receiver.
var tracerNilSafe = map[string]bool{
	"Enabled":      true,
	"SamplePeriod": true,
	"StartReq":     true,
	"TopRequests":  true,
	"Traced":       true,
	"Sample":       true,
	"Instant":      true,
	"Flow":         true,
	"Close":        true,
}

// Tracer owns the sinks and hands out request contexts. All methods are
// nil-safe; a nil *Tracer is the disabled state.
type Tracer struct {
	st     *stats.Set
	cw     *chromeWriter
	sample uint64
	period sim.Time

	started uint64 // requests seen (sampling counter)
	traced  uint64 // requests actually traced

	topN int
	top  []*Req // sorted by latency, longest first

	lanes laneAlloc

	// freeReq heads the retired-request pool (see Req.nextFree).
	freeReq *Req

	// hists caches the latency-histogram cells of the stats sink. Binding
	// is lazy — at the first aggregate — because the owning simulation may
	// Reset its stats set at the warmup boundary (tsim does) and warmup is
	// never traced, so first-aggregate is always on the measured side.
	hists struct {
		bound   bool
		seg     [numSegments]*metrics.Hist
		latency *metrics.Hist
		exposed *metrics.Hist
	}
}

// New builds a tracer. Returns a ready tracer even with no sinks (the
// aggregate counters on Summary still work).
func New(o Options) *Tracer {
	if o.Sample == 0 {
		o.Sample = 1
	}
	if o.TopN == 0 {
		o.TopN = 10
	}
	t := &Tracer{st: o.Stats, sample: o.Sample, period: o.SamplePeriod, topN: o.TopN}
	// One spare slot so keepTopN's insert-then-truncate never reallocates.
	t.top = make([]*Req, 0, o.TopN+1)
	if o.Writer != nil {
		t.cw = newChromeWriter(o.Writer, o.Meta)
	}
	return t
}

// Enabled reports whether t is non-nil (instrumentation convenience).
func (t *Tracer) Enabled() bool { return t != nil }

// SamplePeriod reports the configured time-series sampling interval
// (zero = off, or tracer disabled).
func (t *Tracer) SamplePeriod() sim.Time {
	if t == nil {
		return 0
	}
	return t.period
}

// StartReq begins tracing one memory request at time at. Returns nil when
// the tracer is disabled or the request is sampled out; every downstream
// annotation is nil-safe, so callers never branch again.
func (t *Tracer) StartReq(core int, block uint64, store bool, at sim.Time) *Req {
	if t == nil {
		return nil
	}
	t.started++
	if t.started%t.sample != 0 {
		return nil
	}
	t.traced++
	r := t.freeReq
	if r == nil {
		r = &Req{}
	} else {
		t.freeReq = r.nextFree
	}
	*r = Req{t: t, ID: t.traced, Core: core, Block: block, Store: store, Start: at, lane: -1, Spans: r.Spans[:0]}
	for i := range r.open {
		r.open[i] = noOpen
	}
	if t.cw != nil {
		r.lane = t.lanes.acquire(core)
	}
	return r
}

// endReq is the single drain point: aggregate, stream, retire the lane,
// and recycle the request unless the top-N table retains it (in which
// case whatever it evicted is recycled instead).
func (t *Tracer) endReq(r *Req) {
	if t == nil {
		return
	}
	if t.st != nil {
		t.aggregate(r)
	}
	if t.cw != nil {
		t.cw.writeReq(r)
		t.lanes.release(r.Core, r.lane)
	}
	evicted, kept := t.keepTopN(r)
	if !kept {
		t.recycle(r)
	} else if evicted != nil {
		t.recycle(evicted)
	}
}

// recycle returns a retired request to the freelist.
func (t *Tracer) recycle(r *Req) {
	r.nextFree = t.freeReq
	t.freeReq = r
}

// bindHists binds the latency-histogram cells (called lazily from
// aggregate; see the field comment for why binding waits).
func (t *Tracer) bindHists() {
	st := t.st
	for i := range segHistKeys {
		t.hists.seg[i] = st.HistRef(segHistKeys[i]) //lint:dynamic-key per-segment family obs/hist/seg/<name>-ns
	}
	t.hists.latency = st.HistRef(stats.ObsReqLatencyHist)
	t.hists.exposed = st.HistRef(stats.ObsExposedDecryptHist)
	t.hists.bound = true
}

// aggregate feeds the stats sink with this request's attribution.
func (t *Tracer) aggregate(r *Req) {
	st := t.st
	if !t.hists.bound {
		t.bindHists()
	}
	st.Inc(stats.ObsReqTraced)
	if r.Store {
		st.Inc(stats.ObsReqStore)
	}
	if r.Merged {
		st.Inc(stats.ObsReqMerged)
	}
	if r.LLCMiss {
		st.Inc(stats.ObsReqLLCMiss)
	}
	if r.Offload {
		st.Inc(stats.ObsReqOffload)
	}
	st.Observe(stats.ObsReqLatencyNS, r.Latency().Nanoseconds())
	t.hists.latency.Observe(int64(r.Latency()) / 1000)
	for _, sp := range r.Spans {
		st.Observe(segKeys[sp.Seg], (sp.End - sp.Start).Nanoseconds()) //lint:dynamic-key per-segment family obs/seg/<name>-ns
		t.hists.seg[sp.Seg].Observe(int64(sp.End-sp.Start) / 1000)
	}
	if r.CtrSrc != CtrUnknown {
		st.Inc(ctrSrcKeys[r.CtrSrc]) //lint:dynamic-key selected from the registered ctrSrcKeys table
	}
	if r.Decrypt != DecNone {
		st.Inc(decryptKeys[r.Decrypt]) //lint:dynamic-key selected from the registered decryptKeys table
		st.Observe(stats.ObsExposedDecryptNS, r.Exposed.Nanoseconds())
		t.hists.exposed.Observe(int64(r.Exposed) / 1000)
		// Overlapped = crypto-lane work that did NOT extend the critical
		// path: counter resolution + AES minus what stayed exposed.
		over := r.cryptoDur() - r.Exposed
		if over < 0 {
			over = 0
		}
		st.Observe(stats.ObsOverlappedDecryptNS, over.Nanoseconds())
	}
}

// keepTopN maintains the bounded slowest-requests table. It reports
// whether r was retained, and the request it displaced (if any) so the
// caller can recycle exactly the one reference that fell out of the
// table.
func (t *Tracer) keepTopN(r *Req) (evicted *Req, kept bool) {
	if t.topN <= 0 {
		return nil, false
	}
	lat := r.Latency()
	if len(t.top) == t.topN && lat <= t.top[len(t.top)-1].Latency() {
		return nil, false
	}
	// Insert in descending-latency order (stable on ties by ID: earlier
	// request wins, keeping the table deterministic).
	i := len(t.top)
	for i > 0 {
		p := t.top[i-1]
		if p.Latency() > lat || (p.Latency() == lat && p.ID < r.ID) {
			break
		}
		i--
	}
	t.top = append(t.top, nil)
	copy(t.top[i+1:], t.top[i:])
	t.top[i] = r
	if len(t.top) > t.topN {
		evicted = t.top[len(t.top)-1]
		t.top = t.top[:t.topN]
	}
	return evicted, true
}

// TopRequests returns the slowest traced requests, longest first.
func (t *Tracer) TopRequests() []*Req {
	if t == nil {
		return nil
	}
	return append([]*Req(nil), t.top...)
}

// Traced reports how many requests were traced (after sampling).
func (t *Tracer) Traced() uint64 {
	if t == nil {
		return 0
	}
	return t.traced
}

// Sample records one time-series sample: a named instantaneous gauge
// (queue depth, occupancy, utilisation). Values land in the stats sink as
// "obs/sample/<name>" accumulators and in the Chrome stream as counter
// ("C") events plotted over simulated time.
func (t *Tracer) Sample(name string, at sim.Time, v float64) {
	if t == nil {
		return
	}
	if t.st != nil {
		t.st.Observe("obs/sample/"+name, v) //lint:dynamic-key caller-named gauge family obs/sample/<name>
	}
	if t.cw != nil {
		t.cw.writeCounter(name, at, v)
	}
}

// Instant records a named instantaneous event on a core's track (phase
// transitions, invalidations) and counts it in the stats sink.
func (t *Tracer) Instant(name string, core int, at sim.Time) {
	if t == nil {
		return
	}
	if t.st != nil {
		t.st.Inc("obs/event/" + name) //lint:dynamic-key caller-named event family obs/event/<name>
	}
	if t.cw != nil {
		t.cw.writeInstant(name, core, at)
	}
}

// Flow records one functional-simulator miss classification: fsim has no
// clock, so seq (the reference index) stands in for time and the event
// carries only the path the miss took.
func (t *Tracer) Flow(core int, block uint64, write, llcMiss bool, seq int64) {
	if t == nil {
		return
	}
	if t.st != nil {
		t.st.Inc(stats.ObsFlowL2Miss)
		if llcMiss {
			t.st.Inc(stats.ObsFlowLLCMiss)
		}
	}
	if t.cw != nil {
		t.cw.writeFlow(core, block, write, llcMiss, seq)
	}
}

// Close flushes and finalises the Chrome stream (no-op without one).
func (t *Tracer) Close() error {
	if t == nil || t.cw == nil {
		return nil
	}
	return t.cw.close()
}

// laneAlloc hands out per-core lane slots so concurrent requests of one
// core render on distinct Chrome thread pairs. Slots are reused in lowest-
// free order, which is deterministic.
type laneAlloc struct {
	used map[int][]bool // core -> slot occupancy
}

func (l *laneAlloc) acquire(core int) int {
	if l.used == nil {
		l.used = make(map[int][]bool)
	}
	slots := l.used[core]
	for i, inUse := range slots {
		if !inUse {
			slots[i] = true
			return i
		}
	}
	l.used[core] = append(slots, true)
	return len(slots)
}

func (l *laneAlloc) release(core, slot int) {
	if slot < 0 || l.used == nil {
		return
	}
	if slots := l.used[core]; slot < len(slots) {
		slots[slot] = false
	}
}
