package check

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/inv"
	"repro/internal/sim"
)

// quickOpt keeps the harness tests fast; the full budget runs in cmd/check.
var quickOpt = Options{Refs: 20_000}

// TestDifferentialPasses is the pillar's happy path: identical configs
// through both simulators, plus secmem agreement.
func TestDifferentialPasses(t *testing.T) {
	requireAllPass(t, Differential(quickOpt))
}

// TestDifferentialDetectsMismatchedConfigs proves the pillar can fail:
// replaying the same trace through a secure fsim and a non-secure tsim must
// trip the counter-traffic rules (the non-secure machine performs no
// counter reads at all).
func TestDifferentialDetectsMismatchedConfigs(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	secure := config.Default()
	broken := config.Default()
	broken.Counter = config.CtrNone
	broken.CountersInLLC = false
	rs := CompareTraceRun("morphable", &secure, &broken, tr, opt)
	if failedNamed(rs, "morphable/dram-counter-read") == 0 {
		t.Fatalf("secure-vs-non-secure replay not detected:\n%s", render(rs))
	}
}

// TestMetamorphicPasses covers the analytic grid and the tsim properties.
func TestMetamorphicPasses(t *testing.T) {
	requireAllPass(t, Metamorphic(quickOpt))
}

// TestTimelineDetectsBrokenEMCC proves the timeline property can fail: a
// config whose serial lookup delay J dwarfs every other latency makes EMCC
// lose its own analytic timelines, and timelineEMCCLoss must say so.
func TestTimelineDetectsBrokenEMCC(t *testing.T) {
	cfg := config.Default()
	cfg.EMCCLookupDelay = sim.NS(500)
	loss := timelineEMCCLoss(&cfg)
	if loss == "" {
		t.Fatal("J=500 ns config not flagged: EMCC cannot win with a 500 ns serial lookup")
	}
	if !strings.Contains(loss, "emcc") {
		t.Fatalf("loss description %q does not name the losing side", loss)
	}
}

// TestMonotonicityDetectsRegression proves the runtime-monotonicity
// assertion fails on a decreasing series.
func TestMonotonicityDetectsRegression(t *testing.T) {
	r := assertNonDecreasing("demo", "fabricated", []sim.Time{100, 90})
	if r.Pass {
		t.Fatal("decreasing runtime series not flagged")
	}
}

// TestBipBipInvarianceDetectsLiveKnob proves the knob-invariance check can
// fail: the cipher latency is the one knob CtrBipBip genuinely depends on,
// so perturbing it must break byte-identity.
func TestBipBipInvarianceDetectsLiveKnob(t *testing.T) {
	r := bipbipInvarianceOver(quickOpt, []knobPerturbation{
		{"bipbip-latency-2x", func(c *config.Config) { c.BipBipLatency *= 2 }},
	})
	if r.Pass {
		t.Fatalf("doubling the bipbip cipher latency not detected: %s", r.Detail)
	}
}

// TestInvariantsPass runs both simulators under the recorder over every
// system and requires zero violations plus exact conservation.
func TestInvariantsPass(t *testing.T) {
	requireAllPass(t, Invariants(quickOpt))
}

// TestInvariantDetectsBrokenConfig proves the pillar can fail: a negative
// EMCC lookup delay passes config.Validate (which doesn't model policy
// sanity) but trips emcc.NewPolicy's gated check when tsim builds the
// policy under the recorder.
func TestInvariantDetectsBrokenConfig(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.EMCC = true
	cfg.EMCCLookupDelay = -sim.NS(1)
	rs := InvariantRun("broken-emcc", &cfg, tr, opt)
	if failedNamed(rs, "broken-emcc/tsim-violations") == 0 {
		t.Fatalf("negative EMCCLookupDelay not recorded as a violation:\n%s", render(rs))
	}
}

// TestShardParityPasses runs the serial-vs-sharded engine comparison over
// the full system grid and requires byte-identical snapshots everywhere.
func TestShardParityPasses(t *testing.T) {
	requireAllPass(t, ShardParity(quickOpt))
}

// TestShardParityDetectsDivergence proves the pillar can fail: a sharded
// run under a genuinely different DRAM timing cannot produce the serial
// run's snapshot, and the byte comparison must say so.
func TestShardParityDetectsDivergence(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	serial := config.Default()
	serial.Channels = 4
	broken := serial
	broken.Domains = 4
	broken.TCL *= 2
	rs := CompareShardRun("broken-tcl", &serial, &broken, tr, opt)
	if failedNamed(rs, "broken-tcl") == 0 {
		t.Fatalf("sharded run with doubled tCL not detected:\n%s", render(rs))
	}
}

// TestConservationDetectsImbalance proves the conservation assertion fails
// on unequal pairs.
func TestConservationDetectsImbalance(t *testing.T) {
	if conserve("demo", "fabricated", 1, 2).Pass {
		t.Fatal("1 != 2 not flagged")
	}
}

// TestRunAggregates checks Run wires all three pillars together and that
// Failed counts correctly on the all-green suite.
func TestRunAggregates(t *testing.T) {
	rs := Run(quickOpt)
	pillars := map[Pillar]bool{}
	for _, r := range rs {
		pillars[r.Pillar] = true
	}
	for _, p := range []Pillar{PillarDifferential, PillarMetamorphic, PillarInvariant, PillarShardParity} {
		if !pillars[p] {
			t.Fatalf("pillar %s missing from Run output", p)
		}
	}
	if n := Failed(rs); n != 0 {
		t.Fatalf("%d checks failed:\n%s", n, render(rs))
	}
}

func requireAllPass(t *testing.T, rs []Result) {
	t.Helper()
	if Failed(rs) > 0 {
		t.Fatalf("failures:\n%s", render(rs))
	}
	if len(rs) == 0 {
		t.Fatal("no results produced")
	}
}

func failedNamed(rs []Result, name string) int {
	n := 0
	for _, r := range rs {
		if !r.Pass && r.Name == name {
			n++
		}
	}
	return n
}

func render(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMain leaves the recorder disabled no matter how a test exits, so
// other packages' tests in the same binary are unaffected.
func TestMain(m *testing.M) {
	defer inv.Enable(false)
	m.Run()
}
