package check

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// Determinism: the same configuration and seed must produce byte-identical
// statistics on repeated runs. Both simulators are built on deterministic
// structures (FIFO tie-break event heap, slice-based caches), so any
// divergence here means hidden map-iteration or scheduling nondeterminism
// crept in — which would silently break every golden and differential test.

func stableJSON(t *testing.T, st *stats.Set) []byte {
	t.Helper()
	b, err := st.Snapshot().StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFsimDeterminism(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, system := range diffSystems {
		t.Run(system, func(t *testing.T) {
			cfg, err := systemConfig(system)
			if err != nil {
				t.Fatal(err)
			}
			var runs [2][]byte
			for i := range runs {
				st, err := runFsim(&cfg, tr, opt, nil)
				if err != nil {
					t.Fatal(err)
				}
				runs[i] = stableJSON(t, st)
			}
			if !bytes.Equal(runs[0], runs[1]) {
				t.Errorf("fsim %s: two identical runs produced different stats", system)
			}
		})
	}
}

func TestTsimDeterminism(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, system := range diffSystems {
		t.Run(system, func(t *testing.T) {
			cfg, err := systemConfig(system)
			if err != nil {
				t.Fatal(err)
			}
			var runs [2][]byte
			for i := range runs {
				st, err := runTsim(&cfg, tr, opt, nil)
				if err != nil {
					t.Fatal(err)
				}
				runs[i] = stableJSON(t, st)
			}
			if !bytes.Equal(runs[0], runs[1]) {
				t.Errorf("tsim %s: two identical runs produced different stats", system)
			}
		})
	}
}

// TestTraceRecordDeterminism: recording the same workload twice must give
// identical traces (the differential pillar depends on it).
func TestTraceRecordDeterminism(t *testing.T) {
	opt := quickOpt.withDefaults()
	a, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores != b.Cores || a.Footprint != b.Footprint || len(a.PerCore) != len(b.PerCore) {
		t.Fatalf("trace shape differs: %+v vs %+v", a, b)
	}
	for c := range a.PerCore {
		if len(a.PerCore[c]) != len(b.PerCore[c]) {
			t.Fatalf("core %d: %d vs %d accesses", c, len(a.PerCore[c]), len(b.PerCore[c]))
		}
		for i := range a.PerCore[c] {
			if a.PerCore[c][i] != b.PerCore[c][i] {
				t.Fatalf("core %d access %d differs", c, i)
			}
		}
	}
}
