package check

import (
	"repro/internal/config"
	"repro/internal/fsim"
	"repro/internal/inv"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tsim"
)

// Invariants runs both simulators over every system with a per-run
// inv.Recorder enabled and requires zero violations, then applies post-run
// conservation rules: every reference replayed is accounted for, and every
// DRAM data fill that was requested happened exactly once.
func Invariants(opt Options) []Result {
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return []Result{failf(PillarInvariant, "record-trace", "%v", err)}
	}
	var out []Result
	for _, unit := range invariantUnits(tr, opt) {
		out = append(out, unit()...)
	}
	return out
}

// invariantUnits builds one independent unit per system. Each unit owns its
// simulators, stats.Sets and inv.Recorders outright, so the units are safe
// to fan out across goroutines alongside the other pillars' units.
func invariantUnits(tr *trace.Trace, opt Options) []func() []Result {
	var units []func() []Result
	for _, system := range diffSystems {
		system := system
		units = append(units, func() []Result {
			cfg, err := systemConfig(system)
			if err != nil {
				return []Result{failf(PillarInvariant, system, "%v", err)}
			}
			return InvariantRun(system, &cfg, tr, opt)
		})
	}
	return units
}

// InvariantRun executes one configuration through fsim and tsim, each under
// its own freshly enabled invariant recorder, and reports violations plus
// conservation results.
func InvariantRun(system string, cfg *config.Config, tr *trace.Trace, opt Options) []Result {
	opt = opt.withDefaults()
	name := func(rule string) string { return system + "/" + rule }
	// Both simulators replay refs/cores references on each core.
	expectRefs := (opt.Refs / int64(tr.Cores)) * int64(tr.Cores)

	var out []Result

	// fsim under its own recorder.
	frec := inv.NewRecorder()
	frec.Enable(true)
	fst, err := runFsim(cfg, tr, opt, frec)
	out = append(out, violationResult(name("fsim-violations"), frec))
	if err != nil {
		return append(out, failf(PillarInvariant, name("fsim"), "%v", err))
	}
	out = append(out, conserve(name("fsim-refs"), "replayed refs",
		fst.Counter(stats.FsimDataRead)+fst.Counter(stats.FsimDataWrite), expectRefs))
	out = append(out, conserve(name("fsim-fills"), "DRAM data reads vs LLC data misses",
		fst.Counter(stats.FsimDRAMDataRead), fst.Counter(stats.FsimLLCDataMiss)))

	// tsim under its own recorder.
	trec := inv.NewRecorder()
	trec.Enable(true)
	tst, err := runTsim(cfg, tr, opt, trec)
	out = append(out, violationResult(name("tsim-violations"), trec))
	if err != nil {
		return append(out, failf(PillarInvariant, name("tsim"), "%v", err))
	}
	out = append(out, conserve(name("tsim-refs"), "replayed refs",
		tst.Counter(stats.TsimLoad)+tst.Counter(stats.TsimStore), expectRefs))
	out = append(out, conserve(name("tsim-fills"), "MSHR data fills vs DRAM data reads",
		tst.Counter(stats.TsimMCDataFill), tst.Counter(stats.DramAccessDataRead)))
	return out
}

func runFsim(cfg *config.Config, tr *trace.Trace, opt Options, rec *inv.Recorder) (*stats.Set, error) {
	gens, err := tr.Generators()
	if err != nil {
		return nil, err
	}
	s, err := fsim.New(cfg, fsim.Options{
		Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		Recorder: rec,
	})
	if err != nil {
		return nil, err
	}
	s.Run()
	return s.Stats(), nil
}

func runTsim(cfg *config.Config, tr *trace.Trace, opt Options, rec *inv.Recorder) (*stats.Set, error) {
	gens, err := tr.Generators()
	if err != nil {
		return nil, err
	}
	s, err := tsim.New(cfg, tsim.Options{
		Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		Recorder: rec,
	})
	if err != nil {
		return nil, err
	}
	s.Run()
	return s.Stats(), nil
}

// violationResult converts one run's recorder state into a Result.
func violationResult(name string, rec *inv.Recorder) Result {
	if n := rec.Count(); n > 0 {
		vs := rec.Violations()
		first := vs[0]
		return failf(PillarInvariant, name, "%d violation(s); first: [%s] %s", n, first.Component, first.Message)
	}
	return passf(PillarInvariant, name, "0 violations recorded")
}

// conserve asserts exact equality of a conservation pair.
func conserve(name, what string, got, want int64) Result {
	if got != want {
		return failf(PillarInvariant, name, "%s: %d != %d", what, got, want)
	}
	return passf(PillarInvariant, name, "%s: %d == %d", what, got, want)
}
