package check

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// Golden stats snapshots guard cmd/report's inputs: the figure harness
// reads these counters, so an unnoticed shift here becomes an unnoticed
// shift in every reproduced figure. Counters must match the snapshot within
// a small tolerance (exact is intentional overkill while both simulators
// are deterministic; the slack leaves room for benign modelling tweaks,
// which must land with a -update of the goldens and a CHANGES.md note).

const (
	goldenRelTol = 0.05
	goldenAbsTol = 8
)

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

func checkGoldenCounters(t *testing.T, name string, st *stats.Set) {
	t.Helper()
	snap := st.Snapshot()
	path := goldenPath(name)
	if *updateGolden {
		b, err := snap.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	var want stats.Snapshot
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for k, wv := range want.Counters {
		gv, ok := snap.Counters[k]
		if !ok {
			t.Errorf("counter %q vanished (golden %d)", k, wv)
			continue
		}
		if !withinTol(gv, wv) {
			t.Errorf("counter %q = %d, golden %d (tol %.0f%% / %d)", k, gv, wv, goldenRelTol*100, int(goldenAbsTol))
		}
	}
	for k := range snap.Counters {
		if _, ok := want.Counters[k]; !ok {
			t.Errorf("new counter %q not in golden (run with -update)", k)
		}
	}
}

func withinTol(got, want int64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	larger := got
	if want > larger {
		larger = want
	}
	allow := int64(goldenRelTol * float64(larger))
	if allow < goldenAbsTol {
		allow = goldenAbsTol
	}
	return diff <= allow
}

func TestGoldenStats(t *testing.T) {
	opt := quickOpt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, system := range diffSystems {
		cfg, err := systemConfig(system)
		if err != nil {
			t.Fatal(err)
		}
		t.Run("fsim-"+system, func(t *testing.T) {
			st, err := runFsim(&cfg, tr, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkGoldenCounters(t, "fsim-"+system, st)
		})
		t.Run("tsim-"+system, func(t *testing.T) {
			st, err := runTsim(&cfg, tr, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkGoldenCounters(t, "tsim-"+system, st)
		})
	}
}
