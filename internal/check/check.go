// Package check is the verification harness that cross-validates the
// repository's three independent models of secure memory:
//
//   - differential tests replay one recorded trace through the functional
//     simulator (fsim) and the timing simulator (tsim) and require their
//     trace-driven classification counts to agree, and drive the functional
//     secure memory (secmem) and the timing layer's metadata authority
//     (mc.Home) with identical write sequences and require their counter
//     state to agree exactly;
//   - metamorphic properties perturb configurations and require the
//     responses to move the right way (more AES latency can't speed the
//     machine up, more DRAM channels can't add queuing delay, EMCC can't
//     lose its own analytic timelines);
//   - invariant runs execute both simulators with internal/inv enabled and
//     require zero recorded violations plus post-run conservation between
//     requested and performed DRAM fills;
//   - shard-parity runs replay one trace on the serial event engine and on
//     the domain-sharded engine (sim.Shard) across the differential config
//     grid and require byte-identical stats snapshots at any domain and
//     worker count.
//
// cmd/check runs everything and prints a report; `go test ./internal/check`
// runs the same pillars plus deliberately-broken inputs proving each pillar
// can fail.
package check

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Pillar labels which verification family a result belongs to.
type Pillar string

// The four pillars.
const (
	PillarDifferential Pillar = "differential"
	PillarMetamorphic  Pillar = "metamorphic"
	PillarInvariant    Pillar = "invariant"
	PillarShardParity  Pillar = "shard-parity"
)

// Result is one named check's outcome.
type Result struct {
	Pillar Pillar
	Name   string
	Pass   bool
	Detail string
}

// String renders one report line.
func (r Result) String() string {
	mark := "PASS"
	if !r.Pass {
		mark = "FAIL"
	}
	return fmt.Sprintf("%-4s [%-12s] %-52s %s", mark, r.Pillar, r.Name, r.Detail)
}

// Options tunes how much work the suite does.
type Options struct {
	// Seed drives trace recording and workload generation.
	Seed uint64
	// Refs is the total memory references per simulated run.
	Refs int64
	// Benchmark is the synthetic workload the differential trace records.
	Benchmark string
	// Cores is the simulated core count (cache pressure scales with it).
	Cores int
	// Quick halves the reference budget (cmd/check -quick).
	Quick bool
	// Parallel is the number of independent check units Run executes
	// concurrently (0 or 1 = serial). Every unit owns its simulators and
	// stats.Sets outright, so parallelism never changes any result — only
	// the wall-clock time (closes the ROADMAP fan-out item).
	Parallel int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 12
	}
	if o.Refs == 0 {
		o.Refs = 60_000
	}
	if o.Benchmark == "" {
		o.Benchmark = "canneal"
	}
	if o.Cores == 0 {
		o.Cores = 2
	}
	if o.Quick {
		o.Refs /= 2
	}
	return o
}

// Run executes every pillar and returns all results. Every unit —
// differential, metamorphic and invariant alike — is independent: each
// builds its own simulators, stats.Sets and inv.Recorders over a shared
// read-only trace, so all of them fan out across opt.Parallel goroutines.
// (The invariant pillar used to be pinned serial when internal/inv's
// recorder was process-global; per-run recorders removed that restriction.)
// Results land in fixed slots, so the report order — and with deterministic
// simulators, every byte of it — is identical at any parallelism.
func Run(opt Options) []Result {
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return []Result{failf(PillarDifferential, "record-trace", "%v", err)}
	}
	units := append(diffUnits(tr, opt), metamorphicUnits(opt)...)
	units = append(units, invariantUnits(tr, opt)...)
	units = append(units, shardParityUnits(tr, opt)...)
	slots := make([][]Result, len(units))
	workers := opt.Parallel
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, unit := range units {
		i, unit := i, unit
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			slots[i] = unit()
		}()
	}
	wg.Wait()
	var out []Result
	for _, rs := range slots {
		out = append(out, rs...)
	}
	return out
}

// Failed counts failing results.
func Failed(rs []Result) int {
	n := 0
	for _, r := range rs {
		if !r.Pass {
			n++
		}
	}
	return n
}

// recordTrace captures the differential input: a seeded synthetic workload
// serialized through internal/trace, so both simulators replay the exact
// same reference stream (and the trace codec itself is exercised).
func recordTrace(opt Options) (*trace.Trace, error) {
	var buf bytes.Buffer
	sc := workload.TestScale()
	if _, err := trace.Record(&buf, opt.Benchmark, opt.Cores, opt.Seed, opt.Refs, sc); err != nil {
		return nil, err
	}
	return trace.Read(&buf)
}

// pass/fail helpers.
func passf(p Pillar, name, format string, args ...interface{}) Result {
	return Result{Pillar: p, Name: name, Pass: true, Detail: fmt.Sprintf(format, args...)}
}

func failf(p Pillar, name, format string, args ...interface{}) Result {
	return Result{Pillar: p, Name: name, Pass: false, Detail: fmt.Sprintf(format, args...)}
}
