package check

import (
	"repro/internal/fsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// counterFreeAcceptance is the acceptance check for the counter-free
// designs (CtrBipBip, CtrInSRAM): a full traced tsim run plus an fsim run
// must show exactly zero counter traffic — no LLC counter lookups, no
// on-chip counter misses, no counter/overflow DRAM accesses — and the obs
// per-request accounting must show a completely silent counter lane
// (no ctr-probe, no ctr-fetch, no counter-AES queue/compute spans, no
// counter-source classification) while the design's own cipher segment is
// the only crypto-lane work and lands at the right site (L2 for BipBip,
// MC for in-SRAM AES).
func counterFreeAcceptance(system string, opt Options) []Result {
	opt = opt.withDefaults()
	name := func(rule string) string { return system + "-counter-free/" + rule }
	cfg, err := systemConfig(system)
	if err != nil {
		return []Result{failf(PillarDifferential, name("config"), "%v", err)}
	}

	obsSt := stats.NewSet()
	trc := obs.New(obs.Options{Stats: obsSt, Sample: 1})
	ts, err := tsim.New(&cfg, tsim.Options{
		Benchmark: opt.Benchmark, Cores: opt.Cores, Seed: opt.Seed,
		Refs: opt.Refs, Warmup: opt.Refs, Scale: workload.TestScale(),
	})
	if err != nil {
		return []Result{failf(PillarDifferential, name("tsim"), "%v", err)}
	}
	if err := ts.SetTracer(trc); err != nil {
		return []Result{failf(PillarDifferential, name("tsim"), "%v", err)}
	}
	ts.Run()

	fs, err := fsim.New(&cfg, fsim.Options{
		Benchmark: opt.Benchmark, Cores: opt.Cores, Seed: opt.Seed,
		Refs: opt.Refs, Scale: workload.TestScale(),
	})
	if err != nil {
		return []Result{failf(PillarDifferential, name("fsim"), "%v", err)}
	}
	fs.Run()

	var out []Result

	// 1. Zero counter traffic in both simulators' aggregate statistics.
	zeroKeys := []struct {
		st  *stats.Set
		key string
	}{
		{ts.Stats(), stats.TsimCtrLLCLookup},
		{ts.Stats(), stats.TsimCtrMissOnchip},
		{ts.Stats(), stats.DramAccessCtrRead},
		{ts.Stats(), stats.DramAccessCtrWrite},
		{ts.Stats(), stats.DramAccessOvfL0Read},
		{ts.Stats(), stats.DramAccessOvfHiRead},
		{ts.Stats(), stats.OverflowEvents},
		{fs.Stats(), stats.FsimCtrLLCLookup},
		{fs.Stats(), stats.FsimDRAMCtrRead},
	}
	bad := 0
	for _, z := range zeroKeys {
		//lint:dynamic-key table rows hold registry constants
		if n := z.st.Counter(z.key); n != 0 {
			out = append(out, failf(PillarDifferential, name("zero-ctr-traffic"), "%s = %d, want 0", z.key, n))
			bad++
		}
	}
	if bad == 0 {
		out = append(out, passf(PillarDifferential, name("zero-ctr-traffic"), "all %d counter/overflow traffic metrics are zero", len(zeroKeys)))
	}

	// 2. The obs counter lane is silent: no request spent any time on
	// counter probes, counter fetches, or the counter-mode AES pool.
	silentSegs := []obs.Segment{obs.SegCtrProbeL2, obs.SegCtrFetch, obs.SegAESQueue, obs.SegAESCompute}
	bad = 0
	for _, seg := range silentSegs {
		//lint:dynamic-key per-segment family obs/seg/<name>-ns
		if n := obsSt.Accum(obs.SegStatKey(seg)).Count; n != 0 {
			out = append(out, failf(PillarDifferential, name("obs-ctr-silent"), "%s has %d spans, want 0", obs.SegStatKey(seg), n))
			bad++
		}
	}
	for _, key := range []string{stats.ObsCtrSrcL2, stats.ObsCtrSrcLLC, stats.ObsCtrSrcMC} {
		//lint:dynamic-key loop over registry constants
		if n := obsSt.Counter(key); n != 0 {
			out = append(out, failf(PillarDifferential, name("obs-ctr-silent"), "%s = %d, want 0", key, n))
			bad++
		}
	}
	if bad == 0 {
		out = append(out, passf(PillarDifferential, name("obs-ctr-silent"), "no traced request carried counter-lane work"))
	}

	// 3. The design's own cipher is visible, at the right site only.
	ownSeg, otherSeg := obs.SegInSRAMCipher, obs.SegBipBipCipher
	ownSite, otherSite := stats.ObsDecryptAtMC, stats.ObsDecryptAtL2
	if system == "bipbip" {
		ownSeg, otherSeg = otherSeg, ownSeg
		ownSite, otherSite = otherSite, ownSite
	}
	//lint:dynamic-key per-segment family obs/seg/<name>-ns
	ownSpans := obsSt.Accum(obs.SegStatKey(ownSeg)).Count
	//lint:dynamic-key per-segment family obs/seg/<name>-ns
	otherSpans := obsSt.Accum(obs.SegStatKey(otherSeg)).Count
	//lint:dynamic-key site selected above from registry constants
	ownDec, otherDec := obsSt.Counter(ownSite), obsSt.Counter(otherSite)
	switch {
	case ownSpans == 0 || ownDec == 0:
		out = append(out, failf(PillarDifferential, name("cipher-site"), "cipher invisible: %d %s spans, %d decrypts at own site", ownSpans, obs.SegStatKey(ownSeg), ownDec))
	case otherSpans != 0 || otherDec != 0:
		out = append(out, failf(PillarDifferential, name("cipher-site"), "cipher leaked to the other design's site: %d spans, %d decrypts", otherSpans, otherDec))
	default:
		out = append(out, passf(PillarDifferential, name("cipher-site"), "%d cipher spans, %d decrypts, all at the design's own site", ownSpans, ownDec))
	}
	return out
}
