package check

import (
	"bytes"
	"fmt"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/tsim"
)

// shardGrid is the engine-partitioning grid every differential system is
// checked under. The first three rows shard the LLC slice groups (plus
// the DRAM channels behind them): single-channel one-domain, channels
// sharing a domain, one domain per channel. The cores rows additionally
// re-home every core+L2 tile into its own domain (ShardCores) — the
// widest topology cut, where every seam of topo.go carries traffic.
var shardGrid = []struct {
	channels, domains int
	cores             bool
}{
	{1, 1, false},
	{4, 2, false},
	{4, 4, false},
	{4, 4, true},
	{4, 8, true},
}

// shardParityUnits builds the shard-parity pillar: for every system of the
// differential grid and every partitioning in shardGrid, replay the shared
// trace on the serial engine and on the domain-sharded engine and require
// byte-identical stats snapshots. One representative additionally re-runs
// the sharded engine at a different worker count — the schedule must be a
// pure function of the partitioning, never of the host parallelism.
func shardParityUnits(tr *trace.Trace, opt Options) []func() []Result {
	var units []func() []Result
	for _, system := range diffSystems {
		for _, g := range shardGrid {
			system, g := system, g
			units = append(units, func() []Result {
				cfg, err := systemConfig(system)
				if err != nil {
					return []Result{failf(PillarShardParity, system, "%v", err)}
				}
				cfg.Channels = g.channels
				sharded := cfg
				sharded.Domains = g.domains
				sharded.ShardCores = g.cores
				name := fmt.Sprintf("%s/%dch-%ddom", system, g.channels, g.domains)
				if g.cores {
					name += "-cores"
				}
				// Two cells double as worker-count probes, re-running the
				// sharded engine at 1/2/4 workers: 1 serializes every
				// barrier round, 2 and 4 split the domains differently, and
				// none of them may change a byte. The widest cut probes on
				// every system; morphable keeps its historical slice-cut
				// probe so both cut shapes are covered.
				var workers []int
				if g.cores && g.domains == 8 {
					workers = []int{1, 2, 4}
				} else if system == "morphable" && !g.cores && g.channels == 4 && g.domains == 4 {
					workers = []int{1}
				}
				return CompareShardRun(name, &cfg, &sharded, tr, opt, workers...)
			})
		}
	}
	return units
}

// ShardParity runs the shard-parity pillar standalone (cmd/check and tests;
// Run fans the same units out with the other pillars).
func ShardParity(opt Options) []Result {
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return []Result{failf(PillarShardParity, "record-trace", "%v", err)}
	}
	var out []Result
	for _, unit := range shardParityUnits(tr, opt) {
		out = append(out, unit()...)
	}
	return out
}

// CompareShardRun replays tr through tsim under cfgSerial (which must keep
// Domains = 0) and under cfgSharded and requires the two stats snapshots to
// agree byte for byte. The sharded run is additionally repeated at each
// positive altWorkers count and held to the same standard. The configs
// normally differ only in the partition; tests pass genuinely different
// ones to prove the comparison detects divergence.
func CompareShardRun(name string, cfgSerial, cfgSharded *config.Config, tr *trace.Trace, opt Options, altWorkers ...int) []Result {
	opt = opt.withDefaults()
	serial, err := shardSnapshot(cfgSerial, tr, opt, 0)
	if err != nil {
		return []Result{failf(PillarShardParity, name, "serial run: %v", err)}
	}
	sharded, err := shardSnapshot(cfgSharded, tr, opt, 0)
	if err != nil {
		return []Result{failf(PillarShardParity, name, "sharded run: %v", err)}
	}
	if !bytes.Equal(serial, sharded) {
		return []Result{failf(PillarShardParity, name,
			"sharded snapshot diverged from serial (%d vs %d bytes)", len(sharded), len(serial))}
	}
	out := []Result{passf(PillarShardParity, name,
		"serial and sharded snapshots byte-identical (%d bytes)", len(serial))}
	for _, w := range altWorkers {
		if w <= 0 {
			continue
		}
		alt, err := shardSnapshot(cfgSharded, tr, opt, w)
		if err != nil {
			return append(out, failf(PillarShardParity, fmt.Sprintf("%s/workers-%d", name, w), "run: %v", err))
		}
		if !bytes.Equal(serial, alt) {
			return append(out, failf(PillarShardParity, fmt.Sprintf("%s/workers-%d", name, w),
				"worker count %d changed the sharded snapshot", w))
		}
		out = append(out, passf(PillarShardParity, fmt.Sprintf("%s/workers-%d", name, w),
			"byte-identical again at %d worker(s)", w))
	}
	return out
}

// shardSnapshot replays tr through one tsim instance and returns its stable
// stats snapshot.
func shardSnapshot(cfg *config.Config, tr *trace.Trace, opt Options, workers int) ([]byte, error) {
	gens, err := tr.Generators()
	if err != nil {
		return nil, err
	}
	s, err := tsim.New(cfg, tsim.Options{
		Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
	})
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		s.SetShardWorkers(workers)
	}
	s.Run()
	return s.Stats().Snapshot().StableJSON()
}
