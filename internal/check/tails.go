package check

import (
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// ExposedDecryptTail reads the paper's central claim off the tail of the
// distribution rather than the mean: at the reference scale — where the MC
// counter cache actually misses — EMCC's p99 exposed decrypt/verify time
// must be strictly below the Morphable baseline's. The mean version lives
// in tsim's tests; the tail version matters because eager decryption is a
// latency-hiding technique, and hiding that only helped the median would
// be a much weaker result than the paper claims. Runs at DefaultScale on
// purpose: the miniature test scale lets the counter cache cover the whole
// footprint, leaving the baseline nothing to hide (see tsim/tracing_test).
func ExposedDecryptTail(opt Options) Result {
	const name = "tsim-exposed-decrypt-p99"
	opt = opt.withDefaults()

	p99 := func(system string) (int64, int64, error) {
		cfg, err := systemConfig(system)
		if err != nil {
			return 0, 0, err
		}
		obsSt := stats.NewSet()
		trc := obs.New(obs.Options{Stats: obsSt, Sample: 1})
		ts, err := tsim.New(&cfg, tsim.Options{
			Benchmark: opt.Benchmark, Cores: opt.Cores, Seed: opt.Seed,
			Refs: opt.Refs, Warmup: opt.Refs, Scale: workload.DefaultScale(),
		})
		if err != nil {
			return 0, 0, err
		}
		if err := ts.SetTracer(trc); err != nil {
			return 0, 0, err
		}
		ts.Run()
		h := obsSt.Hist(stats.ObsExposedDecryptHist)
		return h.Quantile(0.99), h.Count(), nil
	}

	emcc, nE, err := p99("emcc")
	if err != nil {
		return failf(PillarMetamorphic, name, "emcc: %v", err)
	}
	morph, nM, err := p99("morphable")
	if err != nil {
		return failf(PillarMetamorphic, name, "morphable: %v", err)
	}
	if nE == 0 || nM == 0 {
		return failf(PillarMetamorphic, name, "missing exposure samples: emcc n=%d morphable n=%d", nE, nM)
	}
	if emcc >= morph {
		return failf(PillarMetamorphic, name,
			"emcc p99 exposed decrypt %d ns not below morphable %d ns (n=%d/%d)", emcc, morph, nE, nM)
	}
	return passf(PillarMetamorphic, name,
		"emcc p99 exposed decrypt %d ns < morphable %d ns (n=%d/%d)", emcc, morph, nE, nM)
}
