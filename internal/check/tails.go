package check

import (
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// ExposedDecryptTail reads the paper's central claim off the tail of the
// distribution rather than the mean: at the reference scale — where the MC
// counter cache actually misses — EMCC's p99 exposed decrypt/verify time
// must not exceed the Morphable baseline's — and a p99 tie (both tails in
// one log-bucket at reduced budgets) falls back to the exact-sum mean,
// which must be strictly below. The mean version lives in tsim's tests;
// the tail version matters because eager decryption is a latency-hiding
// technique, and hiding that only helped the median would be a much
// weaker result than the paper claims. Runs at DefaultScale on purpose:
// the miniature test scale lets the counter cache cover the whole
// footprint, leaving the baseline nothing to hide (see tsim/tracing_test).
func ExposedDecryptTail(opt Options) Result {
	const name = "tsim-exposed-decrypt-p99"
	opt = opt.withDefaults()

	tail := func(system string) (p99 int64, mean float64, n int64, err error) {
		cfg, err := systemConfig(system)
		if err != nil {
			return 0, 0, 0, err
		}
		obsSt := stats.NewSet()
		trc := obs.New(obs.Options{Stats: obsSt, Sample: 1})
		ts, err := tsim.New(&cfg, tsim.Options{
			Benchmark: opt.Benchmark, Cores: opt.Cores, Seed: opt.Seed,
			Refs: opt.Refs, Warmup: opt.Refs, Scale: workload.DefaultScale(),
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := ts.SetTracer(trc); err != nil {
			return 0, 0, 0, err
		}
		ts.Run()
		h := obsSt.Hist(stats.ObsExposedDecryptHist)
		return h.Quantile(0.99), h.Mean(), h.Count(), nil
	}

	emcc, meanE, nE, err := tail("emcc")
	if err != nil {
		return failf(PillarMetamorphic, name, "emcc: %v", err)
	}
	morph, meanM, nM, err := tail("morphable")
	if err != nil {
		return failf(PillarMetamorphic, name, "morphable: %v", err)
	}
	if nE == 0 || nM == 0 {
		return failf(PillarMetamorphic, name, "missing exposure samples: emcc n=%d morphable n=%d", nE, nM)
	}
	if emcc > morph {
		return failf(PillarMetamorphic, name,
			"emcc p99 exposed decrypt %d ns above morphable %d ns (n=%d/%d)", emcc, morph, nE, nM)
	}
	// A p99 tie means both tails land in one histogram bucket — a
	// resolution artifact at reduced (-quick) budgets, not a verdict. The
	// exact-sum mean breaks it: EMCC must still hide strictly more.
	if emcc == morph && meanE >= meanM {
		return failf(PillarMetamorphic, name,
			"emcc p99 ties morphable at %d ns and mean %.2f ns not below %.2f ns (n=%d/%d)",
			emcc, meanE, meanM, nE, nM)
	}
	return passf(PillarMetamorphic, name,
		"emcc p99 exposed decrypt %d ns <= morphable %d ns, mean %.2f < %.2f ns (n=%d/%d)",
		emcc, morph, meanE, meanM, nE, nM)
}
