package check

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// TestParallelRunMatchesSerial is the -parallel flag's contract: fanning
// the independent units across goroutines changes wall-clock time only.
// Both simulators are deterministic, so the reports must match to the byte
// — any divergence means a unit shared mutable state it shouldn't have.
func TestParallelRunMatchesSerial(t *testing.T) {
	opt := Options{Refs: 8_000}
	serial := Run(opt)
	opt.Parallel = 4
	par := Run(opt)
	if len(serial) != len(par) {
		t.Fatalf("serial produced %d results, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].String() != par[i].String() {
			t.Errorf("result %d diverged:\n  serial:   %s\n  parallel: %s", i, serial[i], par[i])
		}
	}
}

// TestTracingWithParallelCheckRace runs a fully traced EMCC tsim
// simulation concurrently with a parallel check suite. It asserts nothing
// beyond completion: its job is to put the tracer's hot paths and the
// fanned-out check units in front of the race detector together
// (`go test -race ./internal/check`).
func TestTracingWithParallelCheckRace(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rs := Run(Options{Refs: 6_000, Parallel: 4})
		if len(rs) == 0 {
			t.Error("parallel check produced no results")
		}
	}()
	go func() {
		defer wg.Done()
		cfg := config.Default()
		cfg.EMCC = true
		var buf bytes.Buffer
		st := stats.NewSet()
		tr := obs.New(obs.Options{
			Stats:        st,
			Writer:       &buf,
			Sample:       4,
			TopN:         8,
			SamplePeriod: sim.Microsecond,
		})
		s, err := tsim.New(&cfg, tsim.Options{
			Benchmark: "canneal", Refs: 10_000, Seed: 3, Scale: workload.TestScale(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.SetTracer(tr); err != nil {
			t.Error(err)
			return
		}
		s.Run()
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
		if st.Counter("obs/req-traced") == 0 {
			t.Error("traced run recorded no requests")
		}
	}()
	wg.Wait()
}
