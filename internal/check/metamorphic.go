package check

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tsim"
)

// Metamorphic checks that perturbing configurations moves responses the
// right way: analytic timelines first (cheap, exhaustive over a parameter
// grid), then real tsim runs (expensive, a handful of points).
func Metamorphic(opt Options) []Result {
	opt = opt.withDefaults()
	var out []Result
	for _, unit := range metamorphicUnits(opt) {
		out = append(out, unit()...)
	}
	return out
}

// metamorphicUnits splits the pillar into independent tasks for parallel
// Run. AESMonotonicity and ChannelQueueing each record their own trace, so
// the units share no state at all.
func metamorphicUnits(opt Options) []func() []Result {
	return []func() []Result{
		func() []Result { return TimelineProperties() },
		func() []Result { return []Result{AESMonotonicity(opt)} },
		func() []Result { return []Result{ChannelQueueing(opt)} },
		func() []Result { return []Result{ChannelQueueingDominance(opt)} },
		func() []Result { return InSRAMBankMonotonicity(opt) },
		func() []Result { return []Result{BipBipKnobInvariance(opt)} },
		func() []Result { return []Result{ExposedDecryptTail(opt)} },
	}
}

// InSRAMBankMonotonicity checks the Sealer-style geometry model both ways:
// analytically, InSRAMAESLatency must be non-increasing and the provisioned
// bandwidth strictly increasing in the bank count over a wide range; and in
// the machine, tsim's simulated runtime must not increase when the in-SRAM
// design gets more AES banks (more arrays can only help).
func InSRAMBankMonotonicity(opt Options) []Result {
	const nameLat = "insram-geometry-monotone"
	const nameRun = "tsim-insram-banks-monotone"
	opt = opt.withDefaults()

	prevLat := sim.Time(0)
	prevBW := 0.0
	for i, banks := range []int{1, 2, 3, 4, 8, 16, 64, 256} {
		cfg := config.Default()
		cfg.Counter = config.CtrInSRAM
		cfg.CountersInLLC = false
		cfg.InSRAMBanks = banks
		lat := config.InSRAMAESLatency(&cfg)
		bw := config.InSRAMAESOpsPerSec(&cfg)
		if i > 0 && lat > prevLat {
			return []Result{failf(PillarMetamorphic, nameLat,
				"latency rose to %v at %d banks (was %v)", lat, banks, prevLat)}
		}
		if i > 0 && bw <= prevBW {
			return []Result{failf(PillarMetamorphic, nameLat,
				"bandwidth did not grow at %d banks: %.3g ≤ %.3g ops/s", banks, bw, prevBW)}
		}
		prevLat, prevBW = lat, bw
	}
	out := []Result{passf(PillarMetamorphic, nameLat,
		"latency non-increasing and bandwidth strictly increasing over 1…256 banks")}

	// Machine-level: fewer banks = slower cipher, so runtime ordered by
	// decreasing bank count must be non-decreasing.
	banksDesc := []int{64, 4, 1}
	times, err := tsimRuntimes(opt, func(cfg *config.Config, i int) {
		cfg.Counter = config.CtrInSRAM
		cfg.CountersInLLC = false
		cfg.InSRAMBanks = banksDesc[i]
	}, len(banksDesc))
	if err != nil {
		return append(out, failf(PillarMetamorphic, nameRun, "%v", err))
	}
	return append(out, assertNonDecreasing(nameRun, "in-SRAM banks 64→4→1", times))
}

// BipBipKnobInvariance pins CtrBipBip's independence from the counter-mode
// machinery: the knobs that tune it — counter-cache size, the EMCC AES
// split, the counter-mode AES latency — must be dead under the counter-free
// design. Not merely "similar results": the perturbed runs must be
// byte-identical in every recorded statistic and finish at the same tick.
func BipBipKnobInvariance(opt Options) Result {
	return bipbipInvarianceOver(opt, []knobPerturbation{
		{"ctr-cache-4x", func(c *config.Config) { c.CtrCacheBytes = 512 << 10 }},
		{"emcc-aes-frac-0.8", func(c *config.Config) { c.EMCCAESFraction = 0.8 }},
		{"aes-latency-2x", func(c *config.Config) { c.AESLatency *= 2 }},
	})
}

// knobPerturbation is one labelled config mutation for the invariance check.
type knobPerturbation struct {
	label  string
	mutate func(*config.Config)
}

// bipbipInvarianceOver runs the invariance comparison against an arbitrary
// perturbation list; tests pass a knob that genuinely matters (the cipher
// latency itself) to prove divergence is detected.
func bipbipInvarianceOver(opt Options, perturbations []knobPerturbation) Result {
	const name = "tsim-bipbip-knob-invariance"
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return failf(PillarMetamorphic, name, "%v", err)
	}
	perturb := append([]knobPerturbation{{"baseline", func(*config.Config) {}}}, perturbations...)
	var baseDump string
	var baseTime sim.Time
	for i, p := range perturb {
		cfg := config.Default()
		cfg.Counter = config.CtrBipBip
		cfg.CountersInLLC = false
		p.mutate(&cfg)
		gens, err := tr.Generators()
		if err != nil {
			return failf(PillarMetamorphic, name, "%v", err)
		}
		s, err := tsim.New(&cfg, tsim.Options{
			Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			return failf(PillarMetamorphic, name, "%s: %v", p.label, err)
		}
		res := s.Run()
		dump := s.Stats().Dump()
		if i == 0 {
			baseDump, baseTime = dump, res.SimulatedTime
			continue
		}
		if res.SimulatedTime != baseTime {
			return failf(PillarMetamorphic, name,
				"%s changed the runtime: %v vs baseline %v — a counter-mode knob leaked into the counter-free design", p.label, res.SimulatedTime, baseTime)
		}
		if dump != baseDump {
			return failf(PillarMetamorphic, name,
				"%s changed recorded statistics — a counter-mode knob leaked into the counter-free design", p.label)
		}
	}
	return passf(PillarMetamorphic, name,
		"%d counter-mode knob perturbations leave bipbip byte-identical", len(perturb)-1)
}

// TimelineProperties sweeps the analytic decrypt-timeline model (Figs 9/10)
// over a grid of latency configurations and asserts two properties at every
// point:
//
//  1. EMCC never loses to the baseline by more than the final xor step on
//     any timeline (counter hit row-hit / row-miss, counter miss). The xor
//     slack is inherent: when a timeline is fully data-bound, EMCC's
//     keystream is ready early but the xor still serialises after the
//     ciphertext arrives, exactly as in the baseline.
//  2. Raising AES latency alone never shortens any endpoint.
func TimelineProperties() []Result {
	aesGrid := []float64{7, 14, 28, 56}
	hopGrid := []float64{0.5, 1, 2}
	tclGrid := []float64{10, 13.75, 20}
	ctrGrid := []float64{1, 3, 6}
	jGrid := []float64{0, 1, 2}

	points := 0
	// prevByKey remembers the previous (smaller-AES) endpoints at the same
	// non-AES coordinates for the monotonicity property.
	prevByKey := make(map[string][3]timelineEndpoint)

	for _, hop := range hopGrid {
		for _, tcl := range tclGrid {
			for _, ctrLat := range ctrGrid {
				for _, j := range jGrid {
					key := fmt.Sprintf("%v/%v/%v/%v", hop, tcl, ctrLat, j)
					for _, aes := range aesGrid {
						cfg := config.Default()
						cfg.AESLatency = sim.NS(aes)
						cfg.NoCHopLatency = sim.NS(hop)
						cfg.TCL = sim.NS(tcl)
						cfg.TRCD = sim.NS(tcl)
						cfg.CtrCacheLatency = sim.NS(ctrLat)
						cfg.EMCCLookupDelay = sim.NS(j)

						if loss := timelineEMCCLoss(&cfg); loss != "" {
							return []Result{failf(PillarMetamorphic, "timeline-emcc-wins",
								"at aes=%vns hop=%vns tcl=%vns ctr=%vns j=%vns: %s",
								aes, hop, tcl, ctrLat, j, loss)}
						}
						eps := timelineEndpoints(&cfg)
						if prev, ok := prevByKey[key]; ok {
							for i, ep := range eps {
								if ep.base < prev[i].base || ep.emcc < prev[i].emcc {
									return []Result{failf(PillarMetamorphic, "timeline-aes-monotone",
										"%s at hop=%vns tcl=%vns ctr=%vns j=%vns: raising AES to %vns shortened a timeline (baseline %v→%v, emcc %v→%v)",
										ep.label, hop, tcl, ctrLat, j, aes, prev[i].base, ep.base, prev[i].emcc, ep.emcc)}
								}
							}
						}
						points += len(eps)
						prevByKey[key] = eps
					}
				}
			}
		}
	}
	return []Result{
		passf(PillarMetamorphic, "timeline-emcc-wins", "emcc ≤ baseline + xor-slack at all %d grid endpoints", points),
		passf(PillarMetamorphic, "timeline-aes-monotone", "endpoints non-decreasing in AES latency across the grid"),
	}
}

// timelineEndpoint is one analytic decrypt-timeline endpoint pair.
type timelineEndpoint struct {
	label      string
	base, emcc sim.Time
}

// timelineEndpoints evaluates the three Fig 9/10 regimes under cfg.
func timelineEndpoints(cfg *config.Config) [3]timelineEndpoint {
	m := figures.NewTimelineModel(cfg)
	var eps [3]timelineEndpoint
	eps[0].label = "ctr-hit/row-hit"
	eps[0].base, eps[0].emcc = m.CounterHitLLC(true)
	eps[1].label = "ctr-hit/row-miss"
	eps[1].base, eps[1].emcc = m.CounterHitLLC(false)
	eps[2].label = "ctr-miss"
	eps[2].base, eps[2].emcc = m.CounterMissLLC()
	return eps
}

// timelineEMCCLoss reports a description of the first analytic endpoint at
// which EMCC loses to the baseline by more than the inherent xor slack
// under cfg, or "" if EMCC wins everywhere.
func timelineEMCCLoss(cfg *config.Config) string {
	slack := figures.NewTimelineModel(cfg).Slack()
	for _, ep := range timelineEndpoints(cfg) {
		if ep.emcc > ep.base+slack {
			return fmt.Sprintf("%s: emcc %v > baseline %v + slack %v", ep.label, ep.emcc, ep.base, slack)
		}
	}
	return ""
}

// AESMonotonicity runs tsim at increasing AES latencies on the same trace
// and requires simulated runtime never to decrease: a slower decrypt engine
// cannot speed the machine up.
func AESMonotonicity(opt Options) Result {
	opt = opt.withDefaults()
	times, err := tsimRuntimes(opt, func(cfg *config.Config, i int) {
		ns := 7 << uint(i) // 7, 14, 28 ns
		cfg.AESLatency = sim.NS(float64(ns))
	}, 3)
	if err != nil {
		return failf(PillarMetamorphic, "tsim-aes-monotone", "%v", err)
	}
	return assertNonDecreasing("tsim-aes-monotone", "AES latency 7→14→28 ns", times)
}

// tsimRuntimes runs n tsim configurations derived from the default by
// mutate(cfg, i) over one shared trace and returns the simulated runtimes.
func tsimRuntimes(opt Options, mutate func(*config.Config, int), n int) ([]sim.Time, error) {
	tr, err := recordTrace(opt)
	if err != nil {
		return nil, err
	}
	times := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		cfg := config.Default()
		mutate(&cfg, i)
		gens, err := tr.Generators()
		if err != nil {
			return nil, err
		}
		s, err := tsim.New(&cfg, tsim.Options{
			Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			return nil, err
		}
		times[i] = s.Run().SimulatedTime
	}
	return times, nil
}

func assertNonDecreasing(name, what string, times []sim.Time) Result {
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return failf(PillarMetamorphic, name, "%s: runtime decreased %v → %v at step %d", what, times[i-1], times[i], i)
		}
	}
	return passf(PillarMetamorphic, name, "%s: runtimes %v non-decreasing", what, times)
}

// ChannelQueueing runs tsim at 1 and 4 DRAM channels and requires the mean
// data-read queuing delay not to increase: more parallel channels can only
// relieve queue pressure. The property only binds when queues actually
// form — at light load, channel interleaving perturbs row-buffer locality
// by more than the (near-zero) queuing delay it relieves — so this check
// raises core count and reference budget until the single-channel
// configuration is queue-bound. A small absolute slack absorbs FR-FCFS
// discreteness on top of that.
func ChannelQueueing(opt Options) Result {
	opt = opt.withDefaults()
	if opt.Cores < 4 {
		opt.Cores = 4
	}
	if opt.Refs < 120_000 {
		opt.Refs = 120_000
	}
	tr, err := recordTrace(opt)
	if err != nil {
		return failf(PillarMetamorphic, "tsim-channel-qdelay", "%v", err)
	}
	delays := make([]float64, 2)
	for i, channels := range []int{1, 4} {
		cfg := config.Default()
		cfg.Channels = channels
		gens, err := tr.Generators()
		if err != nil {
			return failf(PillarMetamorphic, "tsim-channel-qdelay", "%v", err)
		}
		s, err := tsim.New(&cfg, tsim.Options{
			Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			return failf(PillarMetamorphic, "tsim-channel-qdelay", "%v", err)
		}
		s.Run()
		delays[i] = s.Stats().Accum(stats.DramQDelayDataRead).Mean()
	}
	const slackNS = 0.5
	if delays[1] > delays[0]+slackNS {
		return failf(PillarMetamorphic, "tsim-channel-qdelay",
			"mean data-read qdelay rose from %.3f ns (1 ch) to %.3f ns (4 ch)", delays[0], delays[1])
	}
	return passf(PillarMetamorphic, "tsim-channel-qdelay",
		"mean data-read qdelay %.3f ns (1 ch) → %.3f ns (4 ch)", delays[0], delays[1])
}

// ChannelQueueingDominance strengthens ChannelQueueing from a mean
// comparison to first-order stochastic dominance over the per-request
// data-read queuing-delay distribution: at every histogram bucket boundary
// the 4-channel CDF must sit at or above the 1-channel CDF (minus a small
// probability-mass slack for FR-FCFS reordering discreteness). Unlike the
// mean property, dominance binds at any load — at light load both CDFs
// saturate near 1 immediately and the comparison is trivially tight, while
// a mean of near-zero delays could hide a heavy tail.
func ChannelQueueingDominance(opt Options) Result {
	const name = "tsim-channel-qdelay-dominance"
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return failf(PillarMetamorphic, name, "%v", err)
	}
	cdfs := make([][]float64, 2)
	totals := make([]int64, 2)
	for i, channels := range []int{1, 4} {
		cfg := config.Default()
		cfg.Channels = channels
		gens, err := tr.Generators()
		if err != nil {
			return failf(PillarMetamorphic, name, "%v", err)
		}
		s, err := tsim.New(&cfg, tsim.Options{
			Cores: tr.Cores, Refs: opt.Refs, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			return failf(PillarMetamorphic, name, "%v", err)
		}
		s.Run()
		h := s.Stats().Hist(stats.DramQDelayDataRead)
		totals[i] = h.Count()
		cdfs[i] = histCDF(h)
	}
	if totals[0] == 0 || totals[1] == 0 {
		return failf(PillarMetamorphic, name,
			"no data-read qdelay samples recorded (%d @ 1 ch, %d @ 4 ch)", totals[0], totals[1])
	}
	// P(delay rounds below the first boundary) at light load is ~1 for both
	// configurations; slack only matters when queues actually form.
	const slack = 0.01
	for i := range cdfs[0] {
		if cdfs[1][i] < cdfs[0][i]-slack {
			return failf(PillarMetamorphic, name,
				"4-channel qdelay CDF falls below 1-channel at %d ns: P(≤)=%.4f vs %.4f (n=%d/%d)",
				metrics.BucketUpper(i), cdfs[1][i], cdfs[0][i], totals[1], totals[0])
		}
	}
	return passf(PillarMetamorphic, name,
		"4-channel data-read qdelay CDF dominates 1-channel at all %d bucket boundaries (n=%d/%d)",
		len(cdfs[0]), totals[1], totals[0])
}

// histCDF returns P(sample < bucket upper bound) at every boundary of the
// shared internal/metrics log-bucket geometry. Dominance is preserved
// under any monotone bucketing, so re-routing the qdelay histograms from
// the old 64×5 ns linear arrays onto the shared geometry keeps the
// property's meaning; only the boundary set the CDF is evaluated at
// changed (negative delays cannot occur, so there is no underflow mass).
func histCDF(h *metrics.Hist) []float64 {
	out := make([]float64, metrics.NumBuckets)
	var cum int64
	for i := range out {
		cum += h.Bucket(i)
		out[i] = float64(cum) / float64(h.Count())
	}
	return out
}
