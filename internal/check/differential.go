package check

import (
	"bytes"
	"fmt"

	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/fsim"
	"repro/internal/mc"
	"repro/internal/secmem"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tsim"
)

// systems under differential test, keyed the way Fig 16's legend names them.
var diffSystems = []string{"non-secure", "morphable", "emcc", "bipbip", "insram"}

// systemConfig builds the configuration for one named system.
func systemConfig(name string) (config.Config, error) {
	cfg := config.Default()
	switch name {
	case "non-secure":
		cfg.Counter = config.CtrNone
		cfg.CountersInLLC = false
	case "morphable":
		// the default: morphable counters cached in LLC
	case "emcc":
		cfg.EMCC = true
	case "bipbip":
		cfg.Counter = config.CtrBipBip
		cfg.CountersInLLC = false
	case "insram":
		cfg.Counter = config.CtrInSRAM
		cfg.CountersInLLC = false
	default:
		return cfg, fmt.Errorf("check: unknown system %q", name)
	}
	return cfg, nil
}

// diffRule compares one fsim metric against one tsim metric. relTol is the
// allowed relative divergence (0 means exact); absTol is an absolute floor
// on the allowance so tiny counts don't fail on off-by-a-few. Rules with
// nonzero tolerance cover classifications that timing legitimately perturbs:
// overlapping misses (MSHR merges), FR-FCFS reordering and MLP change LRU
// ages, so eviction-driven counts drift between a sequential and a timed
// replay of one trace (see ROADMAP "Open items").
type diffRule struct {
	name   string
	f, t   string
	relTol float64
	absTol int64
}

// rulesFor reports the comparison rules that apply to a system.
func rulesFor(system string) []diffRule {
	rules := []diffRule{
		// Trace-driven totals: both simulators replay the identical
		// stream, so these cannot legitimately diverge.
		{name: "loads", f: stats.FsimDataRead, t: stats.TsimLoad},
		{name: "stores", f: stats.FsimDataWrite, t: stats.TsimStore},
		// Hierarchy classification: timing-induced LRU drift allowed.
		{name: "l2-data-miss", f: stats.FsimL2DataMiss, t: stats.TsimL2DataMiss, relTol: 0.02, absTol: 16},
		{name: "llc-data-access", f: stats.FsimLLCDataAccess, t: stats.TsimLLCDataAccess, relTol: 0.02, absTol: 16},
		{name: "llc-data-miss", f: stats.FsimLLCDataMiss, t: stats.TsimLLCDataMiss, relTol: 0.03, absTol: 16},
		{name: "dram-data-read", f: stats.FsimDRAMDataRead, t: stats.DramAccessDataRead, relTol: 0.03, absTol: 16},
		{name: "dram-data-write", f: stats.FsimDRAMDataWrite, t: stats.DramAccessDataWrite, relTol: 0.10, absTol: 32},
	}
	switch system {
	case "non-secure":
	case "bipbip", "insram":
		// Counter-free direct-cipher designs. Counter traffic must be
		// exactly zero on both sides — no tolerance: a single counter
		// access would mean the design regrew metadata machinery. The
		// cipher op counts ride one-to-one on DRAM data transfers, so
		// they inherit the data-traffic tolerances.
		dec, enc := stats.BipBipDecryptOps, stats.BipBipEncryptOps
		if system == "insram" {
			dec, enc = stats.InSRAMDecryptOps, stats.InSRAMEncryptOps
		}
		rules = append(rules,
			diffRule{name: "ctr-llc-lookup-zero", f: stats.FsimCtrLLCLookup, t: stats.TsimCtrLLCLookup},
			diffRule{name: "dram-counter-read-zero", f: stats.FsimDRAMCtrRead, t: stats.DramAccessCtrRead},
			diffRule{name: "decrypt-ops", f: dec, t: dec, relTol: 0.03, absTol: 16},
			diffRule{name: "encrypt-ops", f: enc, t: enc, relTol: 0.10, absTol: 32},
		)
	case "emcc":
		// EMCC classifies counters at L2, via metric names shared by
		// both simulators. The LLC-side split is comparable too since
		// fsim's speculative probe classifies ctr-llc-hit/miss exactly
		// like tsim's counterAccessFromL2 (closes the ROADMAP item).
		// The comparison targets tsim's ctr-spec-llc-* split rather
		// than the aggregate tsim/ctr-llc-* counters: tsim's MC
		// re-probes the LLC for offloaded requests and recursive tree
		// verification (metaAccessFromMC), probes fsim's untimed EMCC
		// model never repeats (fetchMeta with skipLLC), so only the
		// speculative-probe subset is structurally shared. The lookup
		// tolerance is slightly wider because fsim folds its few
		// secondary fetchMeta probes (recursion parents, writeback
		// counter bumps) into the same lookup counter.
		rules = append(rules,
			diffRule{name: "l2-ctr-hit", f: stats.EmccL2CtrHit, t: stats.EmccL2CtrHit, relTol: 0.05, absTol: 32},
			diffRule{name: "l2-ctr-miss", f: stats.EmccL2CtrMiss, t: stats.EmccL2CtrMiss, relTol: 0.05, absTol: 32},
			diffRule{name: "l2-ctr-fetch", f: stats.EmccSpecFetch, t: stats.EmccSpecFetch, relTol: 0.05, absTol: 32},
			diffRule{name: "ctr-llc-lookup", f: stats.FsimCtrLLCLookup, t: stats.TsimCtrSpecLLCLookup, relTol: 0.10, absTol: 48},
			diffRule{name: "ctr-llc-hit", f: stats.FsimCtrLLCHit, t: stats.TsimCtrSpecLLCHit, relTol: 0.05, absTol: 48},
			diffRule{name: "ctr-llc-miss", f: stats.FsimCtrLLCMiss, t: stats.TsimCtrSpecLLCMiss, relTol: 0.05, absTol: 48},
			diffRule{name: "dram-counter-read", f: stats.FsimDRAMCtrRead, t: stats.DramAccessCtrRead, relTol: 0.10, absTol: 32},
		)
	default:
		// Counter placement classification (Figs 6/7) and metadata
		// traffic: these ride on eviction state, so wider tolerances.
		rules = append(rules,
			diffRule{name: "ctr-llc-lookup", f: stats.FsimCtrLLCLookup, t: stats.TsimCtrLLCLookup, relTol: 0.10, absTol: 32},
			diffRule{name: "ctr-llc-hit", f: stats.FsimCtrLLCHit, t: stats.TsimCtrLLCHit, relTol: 0.10, absTol: 32},
			diffRule{name: "ctr-llc-miss", f: stats.FsimCtrLLCMiss, t: stats.TsimCtrLLCMiss, relTol: 0.10, absTol: 32},
			diffRule{name: "dram-counter-read", f: stats.FsimDRAMCtrRead, t: stats.DramAccessCtrRead, relTol: 0.10, absTol: 32},
		)
	}
	return rules
}

// Differential runs the fsim-vs-tsim trace replay for every system plus the
// secmem-vs-timing-layer agreement checks.
func Differential(opt Options) []Result {
	opt = opt.withDefaults()
	tr, err := recordTrace(opt)
	if err != nil {
		return []Result{failf(PillarDifferential, "record-trace", "%v", err)}
	}
	var out []Result
	for _, unit := range diffUnits(tr, opt) {
		out = append(out, unit()...)
	}
	return out
}

// diffUnits splits the differential pillar into independent tasks over one
// shared recorded trace (tr is only read — Generators copies no state out
// of it), so Run can fan them across goroutines. Each unit builds its own
// simulators and stats.Sets; nothing is shared but tr.
func diffUnits(tr *trace.Trace, opt Options) []func() []Result {
	var units []func() []Result
	for _, system := range diffSystems {
		system := system
		units = append(units, func() []Result {
			cfg, err := systemConfig(system)
			if err != nil {
				return []Result{failf(PillarDifferential, system, "%v", err)}
			}
			return CompareTraceRun(system, &cfg, &cfg, tr, opt)
		})
	}
	for _, design := range []config.CounterDesign{config.CtrMono, config.CtrSC64, config.CtrMorphable} {
		design := design
		units = append(units, func() []Result { return secmemAgreementFor(design, opt) })
	}
	for _, system := range []string{"bipbip", "insram"} {
		system := system
		units = append(units, func() []Result { return counterFreeAcceptance(system, opt) })
	}
	return units
}

// CompareTraceRun replays tr through fsim under cfgF and tsim under cfgT
// and applies cfgF's system's comparison rules. The two configs are
// normally identical; tests pass different ones to prove divergence is
// detected.
func CompareTraceRun(system string, cfgF, cfgT *config.Config, tr *trace.Trace, opt Options) []Result {
	opt = opt.withDefaults()
	prefix := func(rule string) string { return system + "/" + rule }

	gensF, err := tr.Generators()
	if err != nil {
		return []Result{failf(PillarDifferential, prefix("generators"), "%v", err)}
	}
	gensT, err := tr.Generators()
	if err != nil {
		return []Result{failf(PillarDifferential, prefix("generators"), "%v", err)}
	}
	fs, err := fsim.New(cfgF, fsim.Options{
		Cores: tr.Cores, Refs: opt.Refs, Generators: gensF, DataBytes: tr.Footprint,
	})
	if err != nil {
		return []Result{failf(PillarDifferential, prefix("fsim"), "%v", err)}
	}
	fs.Run()
	ts, err := tsim.New(cfgT, tsim.Options{
		Cores: tr.Cores, Refs: opt.Refs, Generators: gensT, DataBytes: tr.Footprint,
	})
	if err != nil {
		return []Result{failf(PillarDifferential, prefix("tsim"), "%v", err)}
	}
	ts.Run()

	var out []Result
	for _, r := range rulesFor(system) {
		out = append(out, compareCounters(prefix(r.name), fs.Stats(), ts.Stats(), r))
	}
	return out
}

// compareCounters applies one rule to two stat sets.
func compareCounters(name string, fst, tst *stats.Set, r diffRule) Result {
	//lint:dynamic-key rule-table fields hold registry constants (see diffRules)
	fv, tv := fst.Counter(r.f), tst.Counter(r.t)
	diff := fv - tv
	if diff < 0 {
		diff = -diff
	}
	larger := fv
	if tv > larger {
		larger = tv
	}
	allow := int64(r.relTol * float64(larger))
	if allow < r.absTol {
		allow = r.absTol
	}
	if r.relTol == 0 && r.absTol == 0 {
		allow = 0
	}
	if diff > allow {
		return failf(PillarDifferential, name, "fsim %s=%d vs tsim %s=%d: |Δ|=%d > allowed %d", r.f, fv, r.t, tv, diff, allow)
	}
	return passf(PillarDifferential, name, "fsim=%d tsim=%d |Δ|=%d (≤%d)", fv, tv, diff, allow)
}

// SecmemAgreement drives the functional secure memory and the timing
// layer's metadata authority (mc.Home) with the identical update sequence
// and requires exact agreement of counter state and overflow behaviour,
// plus functional decrypt/verify correctness on both read paths.
func SecmemAgreement(opt Options) []Result {
	opt = opt.withDefaults()
	var out []Result
	for _, design := range []config.CounterDesign{config.CtrMono, config.CtrSC64, config.CtrMorphable} {
		out = append(out, secmemAgreementFor(design, opt)...)
	}
	return out
}

func secmemAgreementFor(design config.CounterDesign, opt Options) []Result {
	name := func(rule string) string { return "secmem-" + design.String() + "/" + rule }
	const dataBytes = 1 << 20
	mem, err := secmem.New(dataBytes, design, []byte("check-master-key"))
	if err != nil {
		return []Result{failf(PillarDifferential, name("new"), "%v", err)}
	}
	cfg := config.Default()
	cfg.Counter = design
	home := mc.NewHome(&cfg, dataBytes)

	// Identical deterministic write sequence on both sides. The working
	// set is small so counters climb and (for split designs) overflow.
	writes := opt.Refs / 8
	if writes > 20_000 {
		writes = 20_000
	}
	rng := opt.Seed*2654435761 + 1
	blocks := mem.Space().DataBlocks()
	hot := blocks / 64
	if hot == 0 {
		hot = 1
	}
	var memOv, homeOv int
	var plain [crypto.BlockBytes]byte
	var lastAddr uint64
	for i := int64(0); i < writes; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		blk := (rng >> 17) % hot
		byteAddr := blk * crypto.BlockBytes
		lastAddr = byteAddr
		for j := range plain {
			plain[j] = byte(rng >> uint(j%8*8))
		}
		ovs, err := mem.Write(byteAddr, plain[:])
		if err != nil {
			return []Result{failf(PillarDifferential, name("write"), "write %d: %v", i, err)}
		}
		for _, ov := range ovs {
			if ov.Happened {
				memOv++
			}
		}
		// Mirror on the timing-layer authority: same data-counter
		// increment, same write-through metadata path.
		if ov := home.IncrementCounterOf(blk); ov.Happened {
			homeOv++
		}
		parent, _ := home.Space.ParentOf(blk)
		for _, ov := range home.Tree.WriteBackPath(parent) {
			if ov.Happened {
				homeOv++
			}
		}
	}

	var out []Result
	// 1. Exact counter-state agreement across the protected space.
	mismatch := int64(0)
	var firstBad uint64
	for blk := uint64(0); blk < hot; blk++ {
		if mem.Tree().CounterOf(blk) != home.CounterOf(blk) {
			if mismatch == 0 {
				firstBad = blk
			}
			mismatch++
		}
	}
	if mismatch > 0 {
		out = append(out, failf(PillarDifferential, name("counters"),
			"%d of %d data counters disagree (first: block %#x: secmem=%#x home=%#x)",
			mismatch, hot, firstBad, mem.Tree().CounterOf(firstBad), home.CounterOf(firstBad)))
	} else {
		out = append(out, passf(PillarDifferential, name("counters"), "%d data counters agree exactly after %d writes", hot, writes))
	}
	// 2. Exact overflow agreement (same organisation, same increments).
	if memOv != homeOv {
		out = append(out, failf(PillarDifferential, name("overflows"), "secmem saw %d overflows, timing layer %d", memOv, homeOv))
	} else {
		out = append(out, passf(PillarDifferential, name("overflows"), "both sides saw %d overflows", memOv))
	}
	// 3. Both read paths accept and return the last written plaintext.
	got, err := mem.Read(lastAddr)
	if err != nil || !bytes.Equal(got, plain[:]) {
		out = append(out, failf(PillarDifferential, name("read"), "Read(%#x): err=%v match=%v", lastAddr, err, bytes.Equal(got, plain[:])))
	} else if got2, err2 := mem.ReadViaEmbedded(lastAddr); err2 != nil || !bytes.Equal(got2, plain[:]) {
		out = append(out, failf(PillarDifferential, name("read"), "ReadViaEmbedded(%#x): err=%v match=%v", lastAddr, err2, bytes.Equal(got2, plain[:])))
	} else {
		out = append(out, passf(PillarDifferential, name("read"), "Read and ReadViaEmbedded both return the written plaintext"))
	}
	// 4. Both read paths reject the same attacks.
	out = append(out, secmemAttackAgreement(name("attacks"), mem, lastAddr))
	return out
}

// secmemAttackAgreement tampers with one block three ways and requires the
// full-MAC and embedded-MAC paths to reject identically (Sec. IV-D's
// correctness claim), then that recovery restores acceptance.
func secmemAttackAgreement(name string, mem *secmem.Memory, byteAddr uint64) Result {
	type attack struct {
		label string
		do    func() error
		undo  func() error
	}
	attacks := []attack{
		{"tamper-data", func() error { return mem.TamperData(byteAddr) }, func() error { return mem.TamperData(byteAddr) }},
		{"tamper-mac", func() error { return mem.TamperMAC(byteAddr) }, func() error { return mem.TamperMAC(byteAddr) }},
	}
	for _, a := range attacks {
		if err := a.do(); err != nil {
			return failf(PillarDifferential, name, "%s: %v", a.label, err)
		}
		_, errFull := mem.Read(byteAddr)
		_, errEmb := mem.ReadViaEmbedded(byteAddr)
		if errFull == nil || errEmb == nil {
			return failf(PillarDifferential, name, "%s: full-MAC rejected=%v embedded rejected=%v — both must reject", a.label, errFull != nil, errEmb != nil)
		}
		if err := a.undo(); err != nil {
			return failf(PillarDifferential, name, "%s undo: %v", a.label, err)
		}
		if _, err := mem.Read(byteAddr); err != nil {
			return failf(PillarDifferential, name, "%s: read still rejected after undo: %v", a.label, err)
		}
	}
	// Replay is destructive (re-encrypts under a stale counter), so last.
	if err := mem.ReplayOld(byteAddr); err != nil {
		return failf(PillarDifferential, name, "replay-old: %v", err)
	}
	_, errFull := mem.Read(byteAddr)
	_, errEmb := mem.ReadViaEmbedded(byteAddr)
	if errFull == nil || errEmb == nil {
		return failf(PillarDifferential, name, "replay-old: full-MAC rejected=%v embedded rejected=%v — both must reject", errFull != nil, errEmb != nil)
	}
	return passf(PillarDifferential, name, "tamper-data, tamper-mac, replay-old all rejected by both read paths")
}
