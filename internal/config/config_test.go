package config

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name string
		ok   bool
	}{
		{"4 cores", c.Cores == 4},
		{"3.2 GHz", c.CoreClockGHz == 3.2},
		{"192-entry ROB", c.ROBEntries == 192},
		{"4-wide", c.IssueWidth == 4},
		{"1 MB L2", c.L2Bytes == 1<<20},
		{"8 MB L3", c.L3Bytes == 8<<20},
		{"128 KB counter cache", c.CtrCacheBytes == 128<<10},
		{"32-way counter cache", c.CtrCacheWays == 32},
		{"3 ns counter cache", c.CtrCacheLatency == sim.NS(3)},
		{"3 ns morphable decode", c.CtrDecodeLatency == sim.NS(3)},
		{"14 ns AES", c.AESLatency == sim.NS(14)},
		{"morphable default", c.Counter == CtrMorphable},
		{"counters in LLC", c.CountersInLLC},
		{"1 channel", c.Channels == 1},
		{"8 ranks", c.Ranks == 8},
		{"13.75 ns tCL", c.TCL == sim.NS(13.75)},
		{"350 ns tRFC", c.TRFC == sim.NS(350)},
		{"256-entry queues", c.ReadQueueCap == 256 && c.WriteQueueCap == 256},
		{"128 GB memory", c.MemoryBytes == 128<<30},
		{"<=2 overflows", c.OverflowMaxLive == 2},
		{"<=8 overflow slots", c.OverflowSlots == 8},
		{"32 KB EMCC counter cap", c.EMCCL2CounterBytes == 32<<10},
		{"half the AES units move", c.EMCCAESFraction == 0.5},
	}
	for _, chk := range checks {
		if !chk.ok {
			t.Errorf("Table I mismatch: %s", chk.name)
		}
	}
}

func TestCoreCycle(t *testing.T) {
	c := Default()
	// 3.2 GHz -> 312.5 ps, rounded to 313 ps.
	if got := c.CoreCycle(); got < 312 || got > 313 {
		t.Fatalf("core cycle = %d ps", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.BlockSize = 48 },
		func(c *Config) { c.L2Bytes = 0 },
		func(c *Config) { c.Channels = 3 },
		func(c *Config) { c.EMCC = true; c.CountersInLLC = false },
		func(c *Config) { c.EMCC = true; c.Counter = CtrNone },
		func(c *Config) { c.EMCCAESFraction = 1.5 },
		func(c *Config) { c.MemoryBytes = 0 },
	}
	for i, mut := range cases {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCoverage(t *testing.T) {
	if CtrMono.Coverage() != 8 || CtrSC64.Coverage() != 64 || CtrMorphable.Coverage() != 128 {
		t.Fatal("coverage values drifted from the paper")
	}
	if CtrNone.Coverage() != 0 {
		t.Fatal("non-secure coverage should be 0")
	}
}

func TestSystemNames(t *testing.T) {
	c := Default()
	if c.SystemName() != "morphable" {
		t.Fatalf("name = %q", c.SystemName())
	}
	c.EMCC = true
	if !strings.HasPrefix(c.SystemName(), "emcc") {
		t.Fatalf("name = %q", c.SystemName())
	}
	c = Default()
	c.Counter = CtrNone
	if c.SystemName() != "non-secure" {
		t.Fatalf("name = %q", c.SystemName())
	}
}
