package config

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name string
		ok   bool
	}{
		{"4 cores", c.Cores == 4},
		{"3.2 GHz", c.CoreClockGHz == 3.2},
		{"192-entry ROB", c.ROBEntries == 192},
		{"4-wide", c.IssueWidth == 4},
		{"1 MB L2", c.L2Bytes == 1<<20},
		{"8 MB L3", c.L3Bytes == 8<<20},
		{"128 KB counter cache", c.CtrCacheBytes == 128<<10},
		{"32-way counter cache", c.CtrCacheWays == 32},
		{"3 ns counter cache", c.CtrCacheLatency == sim.NS(3)},
		{"3 ns morphable decode", c.CtrDecodeLatency == sim.NS(3)},
		{"14 ns AES", c.AESLatency == sim.NS(14)},
		{"morphable default", c.Counter == CtrMorphable},
		{"counters in LLC", c.CountersInLLC},
		{"1 channel", c.Channels == 1},
		{"8 ranks", c.Ranks == 8},
		{"13.75 ns tCL", c.TCL == sim.NS(13.75)},
		{"350 ns tRFC", c.TRFC == sim.NS(350)},
		{"256-entry queues", c.ReadQueueCap == 256 && c.WriteQueueCap == 256},
		{"128 GB memory", c.MemoryBytes == 128<<30},
		{"<=2 overflows", c.OverflowMaxLive == 2},
		{"<=8 overflow slots", c.OverflowSlots == 8},
		{"32 KB EMCC counter cap", c.EMCCL2CounterBytes == 32<<10},
		{"half the AES units move", c.EMCCAESFraction == 0.5},
		{"3 ns BipBip cipher", c.BipBipLatency == sim.NS(3)},
		{"64 in-SRAM AES banks", c.InSRAMBanks == 64},
	}
	for _, chk := range checks {
		if !chk.ok {
			t.Errorf("Table I mismatch: %s", chk.name)
		}
	}
}

func TestCoreCycle(t *testing.T) {
	c := Default()
	// 3.2 GHz -> 312.5 ps, rounded to 313 ps.
	if got := c.CoreCycle(); got < 312 || got > 313 {
		t.Fatalf("core cycle = %d ps", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.BlockSize = 48 },
		func(c *Config) { c.L2Bytes = 0 },
		func(c *Config) { c.Channels = 3 },
		func(c *Config) { c.EMCC = true; c.CountersInLLC = false },
		func(c *Config) { c.EMCC = true; c.Counter = CtrNone },
		func(c *Config) { c.EMCCAESFraction = 1.5 },
		func(c *Config) { c.MemoryBytes = 0 },
		// Counter-free designs have no counter blocks for the LLC to cache.
		func(c *Config) { c.Counter = CtrBipBip },
		func(c *Config) { c.Counter = CtrInSRAM },
		// EMCC offloads counter cryptography; meaningless without counters.
		func(c *Config) { c.Counter = CtrBipBip; c.CountersInLLC = false; c.EMCC = true },
		func(c *Config) { c.Counter = CtrInSRAM; c.CountersInLLC = false; c.EMCC = true },
		func(c *Config) { c.Counter = CtrInSRAM; c.CountersInLLC = false; c.InSRAMBanks = 0 },
		func(c *Config) { c.Counter = CtrBipBip; c.CountersInLLC = false; c.BipBipLatency = -sim.NS(1) },
		// Tracing and the flight recorder are serial-engine only.
		func(c *Config) { c.Domains = 2; c.Tracing = true },
		func(c *Config) { c.Domains = 2; c.FlightRecorder = true },
		// The sharded engine needs positive lookahead inputs...
		func(c *Config) { c.Domains = 2; c.BurstLatency = 0 },
		func(c *Config) { c.Domains = 2; c.BurstLatency = -sim.NS(1) },
		func(c *Config) { c.Domains = 2; c.NoCBaseOneWay = 0 },
		// ...a cut no wider than the mesh's slice count (28 on the
		// default 6x5 mesh with two MC tiles)...
		func(c *Config) { c.Domains = 29 },
		// ...core domains only on top of slice domains, and no XPT (the
		// idealised predictor peeks across the cut).
		func(c *Config) { c.ShardCores = true },
		func(c *Config) { c.Domains = 2; c.XPT = true },
	}
	for i, mut := range cases {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCoverage(t *testing.T) {
	if CtrMono.Coverage() != 8 || CtrSC64.Coverage() != 64 || CtrMorphable.Coverage() != 128 {
		t.Fatal("coverage values drifted from the paper")
	}
	if CtrNone.Coverage() != 0 {
		t.Fatal("non-secure coverage should be 0")
	}
	// Counter-free designs cover no data blocks with counter blocks.
	if CtrBipBip.Coverage() != 0 || CtrInSRAM.Coverage() != 0 {
		t.Fatal("counter-free designs must report zero coverage")
	}
}

func TestCounterDesignStrings(t *testing.T) {
	want := map[CounterDesign]string{
		CtrNone:      "non-secure",
		CtrMono:      "mono",
		CtrSC64:      "sc64",
		CtrMorphable: "morphable",
		CtrBipBip:    "bipbip",
		CtrInSRAM:    "insram",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
}

func TestHasCounters(t *testing.T) {
	want := map[CounterDesign]bool{
		CtrNone:      false,
		CtrMono:      true,
		CtrSC64:      true,
		CtrMorphable: true,
		CtrBipBip:    false,
		CtrInSRAM:    false,
	}
	for d, hc := range want {
		if d.HasCounters() != hc {
			t.Errorf("%v.HasCounters() = %v, want %v", d, d.HasCounters(), hc)
		}
	}
	// HasCounters must agree with Coverage: counters exist iff they cover
	// data blocks.
	for d := CtrNone; d <= CtrInSRAM; d++ {
		if d.HasCounters() != (d.Coverage() > 0) {
			t.Errorf("%v: HasCounters/Coverage disagree", d)
		}
	}
}

func TestApplySystemNewModes(t *testing.T) {
	for _, name := range []string{"bipbip", "insram", "bipbip+nollc", "insram+nollc"} {
		c := Default()
		if err := ApplySystem(&c, name); err != nil {
			t.Fatalf("ApplySystem(%q): %v", name, err)
		}
		if c.CountersInLLC {
			t.Errorf("%q left CountersInLLC on for a counter-free design", name)
		}
		if c.EMCC {
			t.Errorf("%q left EMCC on", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("ApplySystem(%q) produced invalid config: %v", name, err)
		}
		base := strings.TrimSuffix(name, "+nollc")
		if c.Counter.String() != base || c.SystemName() != base {
			t.Errorf("%q round-trips to %q / %q", name, c.Counter, c.SystemName())
		}
	}
}

func TestInSRAMAESLatencyGeometry(t *testing.T) {
	// One 64 B block is BlockSize/16 = 4 AES lanes; B banks process them
	// in ceil(4/B) waves of 10 rounds x 2 ns.
	want := map[int]sim.Time{
		1:  sim.NS(80), // 4 waves
		2:  sim.NS(40), // 2 waves
		4:  sim.NS(20), // 1 wave
		8:  sim.NS(20),
		64: sim.NS(20),
	}
	c := Default()
	c.Counter = CtrInSRAM
	c.CountersInLLC = false
	for banks, lat := range want {
		c.InSRAMBanks = banks
		if got := InSRAMAESLatency(&c); got != lat {
			t.Errorf("banks=%d: latency %v, want %v", banks, got, lat)
		}
	}
	// Monotone non-increasing in bank count, and bandwidth strictly
	// increasing with provisioned arrays.
	prev := sim.Time(1 << 62)
	prevBW := 0.0
	for _, banks := range []int{1, 2, 3, 4, 8, 16, 64, 256} {
		c.InSRAMBanks = banks
		lat := InSRAMAESLatency(&c)
		if lat > prev {
			t.Errorf("latency increased at banks=%d: %v > %v", banks, lat, prev)
		}
		prev = lat
		bw := InSRAMAESOpsPerSec(&c)
		if bw <= prevBW {
			t.Errorf("bandwidth not increasing at banks=%d: %g <= %g", banks, bw, prevBW)
		}
		prevBW = bw
	}
	// Default geometry: 64 banks at 20 ns/op wave -> 3.2e9 ops/s.
	c.InSRAMBanks = Default().InSRAMBanks
	if bw := InSRAMAESOpsPerSec(&c); bw != 3.2e9 {
		t.Errorf("default in-SRAM bandwidth = %g ops/s, want 3.2e9", bw)
	}
}

// FuzzApplySystem: any system name either parses into a Validate-clean
// configuration whose SystemName round-trips, or is rejected — never a
// panic, never an invalid config.
func FuzzApplySystem(f *testing.F) {
	for _, seed := range []string{
		"non-secure", "nonsecure", "none", "mono", "sc64", "morphable",
		"emcc", "bipbip", "insram",
		"mono+nollc", "bipbip+nollc", "insram+nollc", "emcc+nollc",
		"", "bogus", "+nollc",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		c := Default()
		if err := ApplySystem(&c, name); err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ApplySystem(%q) accepted but invalid: %v", name, err)
		}
		got := c.SystemName()
		base := strings.TrimSuffix(name, "+nollc")
		switch base {
		case "nonsecure", "none":
			base = "non-secure"
		case "emcc":
			base = "emcc+morphable"
		}
		if got != base {
			t.Fatalf("ApplySystem(%q) -> SystemName %q, want %q", name, got, base)
		}
	})
}

func TestSystemNames(t *testing.T) {
	c := Default()
	if c.SystemName() != "morphable" {
		t.Fatalf("name = %q", c.SystemName())
	}
	c.EMCC = true
	if !strings.HasPrefix(c.SystemName(), "emcc") {
		t.Fatalf("name = %q", c.SystemName())
	}
	c = Default()
	c.Counter = CtrNone
	if c.SystemName() != "non-secure" {
		t.Fatalf("name = %q", c.SystemName())
	}
}
