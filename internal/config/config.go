// Package config holds the simulated microarchitecture parameters. The
// defaults reproduce Table I of the paper; experiment presets perturb
// individual fields (AES latency, counter-cache size, channel count, …).
package config

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/sim"
)

// CounterDesign selects the counter organisation used by the secure-memory
// engine.
type CounterDesign int

const (
	// CtrNone disables memory encryption/verification entirely (the
	// "non-secure" baseline of Fig 16).
	CtrNone CounterDesign = iota
	// CtrMono is the classic design: eight 56-bit counters per 64 B
	// counter block (one counter block covers 512 B of data).
	CtrMono
	// CtrSC64 is the split-counter design of Yan et al. [ISCA'06]: one
	// major counter plus 64 7-bit minor counters per block (covers 4 KB).
	CtrSC64
	// CtrMorphable is Morphable Counters [MICRO'18]: 128 minor counters
	// per block in a morphing format (covers 8 KB).
	CtrMorphable
	// CtrBipBip is BipBipCache [Hibler et al.]: a low-latency tweakable
	// block cipher in the cache controller. Data blocks are encrypted
	// directly under an address tweak — no counters, no counter cache,
	// no MC AES pool; decryption is a fixed BipBipLatency charged at L2
	// on fill, encryption is charged on writeback. Confidentiality-only.
	CtrBipBip
	// CtrInSRAM is Sealer/CryptoSRAM-style in-SRAM AES [Zhang et al.]:
	// data blocks are encrypted directly (no counters) by AES arrays
	// embedded in MC-side SRAM. Latency and bandwidth derive from the
	// SRAM geometry (InSRAMBanks) via InSRAMAESLatency, replacing the
	// fixed AESLatency unit. Confidentiality-only.
	CtrInSRAM
)

// String implements fmt.Stringer.
func (d CounterDesign) String() string {
	switch d {
	case CtrNone:
		return "non-secure"
	case CtrMono:
		return "mono"
	case CtrSC64:
		return "sc64"
	case CtrMorphable:
		return "morphable"
	case CtrBipBip:
		return "bipbip"
	case CtrInSRAM:
		return "insram"
	}
	return fmt.Sprintf("CounterDesign(%d)", int(d))
}

// HasCounters reports whether the design maintains per-block counter
// metadata (counter caches, integrity tree, overflow handling). The
// counter-free direct-cipher designs (CtrBipBip, CtrInSRAM) and the
// non-secure baseline do not.
func (d CounterDesign) HasCounters() bool {
	switch d {
	case CtrMono, CtrSC64, CtrMorphable:
		return true
	}
	return false
}

// Coverage reports how many 64 B data blocks one 64 B counter block covers.
func (d CounterDesign) Coverage() int {
	switch d {
	case CtrMono:
		return 8
	case CtrSC64:
		return 64
	case CtrMorphable:
		return 128
	}
	return 0
}

// Config is the full simulated-system configuration (Table I plus the
// EMCC-specific knobs of Sections IV and V).
type Config struct {
	// --- CPU (Table I) ---
	Cores         int      // simulated cores
	CoreClockGHz  float64  // 3.2 GHz
	ROBEntries    int      // 192-entry ROB
	IssueWidth    int      // 4-wide OoO
	L1MSHRs       int      // outstanding misses per core
	CommitLatency sim.Time // fixed pipeline depth charged per instruction

	// --- Cache hierarchy (Table I; latencies are additive) ---
	L1Bytes   int64
	L1Ways    int
	L1Latency sim.Time // 2 ns
	L2Bytes   int64
	L2Ways    int
	L2Latency sim.Time // 4 ns
	L3Bytes   int64    // total across slices
	L3Ways    int
	// L3TagLatency and L3DataLatency are the slice SRAM components: a
	// miss pays only the tag lookup, a hit pays tag + data (the 'L'
	// effect of Fig 13). Table I's additive 17 ns L3 latency emerges as
	// mean NoC round trip (~13 ns) + tag + data.
	L3TagLatency  sim.Time
	L3DataLatency sim.Time
	BlockSize     int64 // 64 B everywhere

	// --- NoC (Sec. III-A geometry; calibrated to Fig 3) ---
	MeshCols      int      // 6
	MeshRows      int      // 5
	NoCHopLatency sim.Time // per-hop link+router latency
	NoCBaseOneWay sim.Time // injection/ejection fixed cost per traversal

	// --- Secure memory engine ---
	Counter          CounterDesign
	CtrCacheBytes    int64    // MC's private counter/metadata cache (128 KB)
	CtrCacheWays     int      // 32-way
	CtrCacheLatency  sim.Time // 3 ns
	CtrDecodeLatency sim.Time // Morphable decode, 3 ns
	AESLatency       sim.Time // 14 ns (AES-128)
	// AESPeakOpsPerSec is the total AES bandwidth provisioned for the
	// whole processor (Sec. V arithmetic: 2.6e9 ops/s at DDR4-3200).
	AESPeakOpsPerSec float64
	// CountersInLLC lets LLC act as a second-level counter cache
	// (prior-work baseline). EMCC implies CountersInLLC.
	CountersInLLC bool
	// BipBipLatency is the fixed tweakable-cipher latency charged per
	// block in the cache controller under CtrBipBip (the cipher is
	// engineered for single-digit-ns decryption; 3 ns default).
	BipBipLatency sim.Time
	// InSRAMBanks is the number of SRAM arrays provisioned with in-situ
	// AES logic under CtrInSRAM. Latency and aggregate bandwidth derive
	// from it via InSRAMAESLatency / InSRAMAESOpsPerSec.
	InSRAMBanks int

	// --- EMCC (the contribution; Sec. IV) ---
	EMCC bool
	// EMCCL2CounterBytes caps how much of L2 counters may occupy (32 KB
	// in the paper, "to ensure the benefit does not come from caching
	// more counters").
	EMCCL2CounterBytes int64
	// EMCCAESFraction is the fraction of total AES bandwidth moved from
	// MC to the L2s (0.5 in the paper; swept in Fig 19).
	EMCCAESFraction float64
	// EMCCLookupDelay is 'J' in Fig 10: the delay of the serial counter
	// lookup in L2 during spare cycles after a data miss.
	EMCCLookupDelay sim.Time
	// EMCCDynamicOff enables the Sec. IV-F intensity monitor: L2s turn
	// EMCC off (offloading all cryptography to the MC) while the
	// application is not memory-intensive.
	EMCCDynamicOff bool
	// EMCCDisableAESGate removes the wait-one-LLC-hit gate before
	// starting AES at L2 (ablation: LLC hits then waste AES bandwidth).
	EMCCDisableAESGate bool
	// EMCCDisableOffload removes the adaptive offload decision
	// (ablation: L2 AES queues grow unboundedly under miss bursts).
	EMCCDisableOffload bool
	// XPT enables LLC-miss prediction (Intel XPT-style): L2 misses are
	// forwarded to the MC in parallel with the LLC lookup. The paper's
	// primary timelines (Figs 5, 8, 10, 13) route requests through the
	// LLC serially; XPT appears in the Fig 14 scenario only, so it
	// defaults to off here and is enabled for that experiment.
	XPT bool

	// --- Prefetch (Table I: constant-stride, L1 degree 1, L2 degree 2) ---
	// PrefetchL2Degree > 0 enables the L2 stream prefetcher in the timing
	// simulator. Off by default: the synthetic workloads' spatial-
	// locality parameters are calibrated against the paper's measured
	// hit rates with prefetching already reflected; enabling it on top is
	// available as an ablation (cmd/figures -fig ablation).
	PrefetchL2Degree int
	PrefetchTable    int

	// --- DRAM (Table I) ---
	Channels        int
	Ranks           int
	BanksPerRank    int
	TCL, TRCD, TRP  sim.Time // 13.75 ns each
	TRFC            sim.Time // 350 ns
	TREFI           sim.Time // refresh interval
	BurstLatency    sim.Time // 64 B transfer at 3.2 GT/s x 8 B
	RowTimeout      sim.Time // 500 ns open-page timeout policy
	ReadQueueCap    int      // 256 entries
	WriteQueueCap   int      // 256 entries
	WriteDrainHigh  float64  // start draining writes above this fill
	WriteDrainLow   float64  // stop draining below this fill
	FRFCFSCap       int      // max consecutive row hits before oldest-first
	RowBytes        int64    // DRAM row (page) size per bank
	MemoryBytes     int64    // simulated physical data capacity
	OverflowMaxLive int      // <=2 outstanding split-counter overflows
	OverflowSlots   int      // <=8 read/write-queue slots for overflow work

	// --- Engine sharding (infrastructure, not a modelled parameter) ---
	// Domains > 0 runs the timing simulator on the lookahead-synchronized
	// sharded event engine with a topology-aware cut: the LLC slices are
	// partitioned round-robin into that many slice-group domains, the DRAM
	// channels into up to that many channel domains (clamped to Channels),
	// and everything else (MC, metadata home, DRAM queues — plus cores and
	// L2s unless ShardCores) stays on the hub engine. Link lookahead is
	// derived from the mesh geometry (noc.Mesh.OneWay between member
	// tiles), so Domains is bounded by the slice count of the configured
	// mesh. 0 — the default — is the serial single-queue engine. Results
	// are deterministic either way and byte-identical across worker counts
	// at a fixed cut; tracing, the flight recorder and XPT (whose
	// idealised predictor peeks at LLC state across the cut) require the
	// serial engine.
	Domains int
	// ShardCores additionally re-homes each core+L2 tile into its own
	// domain (requires Domains > 0), widening the parallel cut to the full
	// mesh: core domains, slice-group domains, hub, channel domains.
	ShardCores bool
	// Tracing declares that the run will attach a per-request tracer
	// (internal/obs). Trace spans and the periodic sampler read state
	// owned by other domains mid-run, so tracing is serial-engine only:
	// Validate rejects Tracing with Domains > 0, turning the conflict
	// into a configuration error instead of a mid-setup failure.
	Tracing bool
	// FlightRecorder declares that the run will attach an interval flight
	// recorder (metrics.Recorder). The recorder samples the shared stats
	// set every period; under sharding, DRAM metrics accumulate in
	// per-channel domain shards that only merge after the run, so mid-run
	// samples would be silently wrong. Validate rejects it with
	// Domains > 0 for the same reason as Tracing.
	FlightRecorder bool
}

// Default returns the Table I configuration with Morphable Counters and
// counters cached in LLC (the paper's primary baseline). Enable EMCC on top
// with cfg.EMCC = true.
func Default() Config {
	return Config{
		Cores:         4,
		CoreClockGHz:  3.2,
		ROBEntries:    192,
		IssueWidth:    4,
		L1MSHRs:       6,
		CommitLatency: sim.NS(1),

		L1Bytes:       64 << 10,
		L1Ways:        8,
		L1Latency:     sim.NS(2),
		L2Bytes:       1 << 20,
		L2Ways:        8,
		L2Latency:     sim.NS(4),
		L3Bytes:       8 << 20,
		L3Ways:        16,
		L3TagLatency:  sim.NS(2),
		L3DataLatency: sim.NS(2),
		BlockSize:     64,

		MeshCols:      6,
		MeshRows:      5,
		NoCHopLatency: sim.NS(1.0),
		NoCBaseOneWay: sim.NS(3.0),

		Counter:          CtrMorphable,
		CtrCacheBytes:    128 << 10,
		CtrCacheWays:     32,
		CtrCacheLatency:  sim.NS(3),
		CtrDecodeLatency: sim.NS(3),
		AESLatency:       sim.NS(14),
		AESPeakOpsPerSec: 2.6e9,
		CountersInLLC:    true,
		BipBipLatency:    sim.NS(3),
		InSRAMBanks:      64,

		EMCC:               false,
		EMCCL2CounterBytes: 32 << 10,
		EMCCAESFraction:    0.5,
		EMCCLookupDelay:    sim.NS(1),
		XPT:                false,

		PrefetchL2Degree: 0,
		PrefetchTable:    64,

		Channels:        1,
		Ranks:           8,
		BanksPerRank:    16,
		TCL:             sim.NS(13.75),
		TRCD:            sim.NS(13.75),
		TRP:             sim.NS(13.75),
		TRFC:            sim.NS(350),
		TREFI:           sim.NS(7800),
		BurstLatency:    sim.NS(2.5),
		RowTimeout:      sim.NS(500),
		ReadQueueCap:    256,
		WriteQueueCap:   256,
		WriteDrainHigh:  0.7,
		WriteDrainLow:   0.3,
		FRFCFSCap:       16,
		RowBytes:        8 << 10,
		MemoryBytes:     128 << 30,
		OverflowMaxLive: 2,
		OverflowSlots:   8,
	}
}

// Validate reports a descriptive error for inconsistent configurations.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("config: BlockSize must be a power of two, got %d", c.BlockSize)
	case c.L1Bytes <= 0 || c.L2Bytes <= 0 || c.L3Bytes <= 0:
		return fmt.Errorf("config: cache sizes must be positive")
	case c.Channels <= 0 || c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("config: Channels must be a positive power of two, got %d", c.Channels)
	case c.EMCC && !c.CountersInLLC:
		return fmt.Errorf("config: EMCC requires CountersInLLC")
	case c.EMCC && !c.Counter.HasCounters():
		return fmt.Errorf("config: EMCC requires a counter-backed design, got %s", c.Counter)
	case !c.Counter.HasCounters() && c.CountersInLLC:
		return fmt.Errorf("config: CountersInLLC set but %s has no counters to cache", c.Counter)
	case c.Counter == CtrBipBip && c.BipBipLatency < 0:
		return fmt.Errorf("config: BipBipLatency must be non-negative, got %v", c.BipBipLatency)
	case c.Counter == CtrInSRAM && c.InSRAMBanks <= 0:
		return fmt.Errorf("config: CtrInSRAM needs InSRAMBanks > 0, got %d", c.InSRAMBanks)
	case c.EMCCAESFraction < 0 || c.EMCCAESFraction > 1:
		return fmt.Errorf("config: EMCCAESFraction must be in [0,1], got %g", c.EMCCAESFraction)
	case c.MemoryBytes <= 0:
		return fmt.Errorf("config: MemoryBytes must be positive")
	case c.MeshCols < 2 || c.MeshRows < 2:
		return fmt.Errorf("config: mesh must be at least 2x2, got %dx%d", c.MeshCols, c.MeshRows)
	case c.Domains < 0:
		return fmt.Errorf("config: Domains must be non-negative, got %d", c.Domains)
	case c.Domains > 0 && c.BurstLatency <= 0:
		return fmt.Errorf("config: Domains > 0 needs a positive BurstLatency for lookahead, got %v", c.BurstLatency)
	case c.Domains > 0 && c.NoCBaseOneWay <= 0:
		return fmt.Errorf("config: Domains > 0 needs a positive NoCBaseOneWay — the mesh-derived link distances must be positive for lookahead, got %v", c.NoCBaseOneWay)
	case c.Domains > meshSlices(c):
		// The domain cut is over tiles now, not DRAM channels: slice-group
		// domains beyond the mesh's slice count would be empty.
		return fmt.Errorf("config: Domains (%d) exceeds the %dx%d mesh's %d LLC slices", c.Domains, c.MeshCols, c.MeshRows, meshSlices(c))
	case c.ShardCores && c.Domains <= 0:
		return fmt.Errorf("config: ShardCores requires Domains > 0")
	case c.Domains > 0 && c.XPT:
		return fmt.Errorf("config: XPT requires the serial engine — the idealised predictor peeks at LLC state across the domain cut; set Domains = 0 (got %d) or drop XPT", c.Domains)
	case c.Domains > 0 && c.Tracing:
		return fmt.Errorf("config: tracing requires the serial engine — trace spans read cross-domain state mid-run; set Domains = 0 (got %d) or drop Tracing", c.Domains)
	case c.Domains > 0 && c.FlightRecorder:
		return fmt.Errorf("config: the flight recorder requires the serial engine — mid-run samples of domain-sharded DRAM metrics would be silently wrong; set Domains = 0 (got %d) or drop FlightRecorder", c.Domains)
	}
	return nil
}

// meshSlices reports how many LLC slices the configured mesh carries (its
// core tiles) — the topology-derived upper bound for Domains.
func meshSlices(c *Config) int {
	return noc.New(c.MeshCols, c.MeshRows, c.NoCHopLatency, c.NoCBaseOneWay).CoreTiles()
}

// In-SRAM AES geometry (CtrInSRAM). One AES array handles a 16 B lane per
// pass; a pass is the full 10-round AES-128 schedule at insramRoundNS per
// round. A 64 B block therefore splits into BlockSize/16 lanes that
// InSRAMBanks arrays process in ceil(lanes/banks) waves — latency falls
// with bank count until one wave covers the whole block, and aggregate
// bandwidth grows linearly with the provisioned arrays.
const (
	insramRounds  = 10
	insramRoundNS = 2
)

// InSRAMAESLatency derives the per-block cipher latency from the SRAM
// geometry. It replaces the fixed AESLatency unit under CtrInSRAM.
func InSRAMAESLatency(c *Config) sim.Time {
	lanes := int(c.BlockSize / 16)
	if lanes < 1 {
		lanes = 1
	}
	waves := (lanes + c.InSRAMBanks - 1) / c.InSRAMBanks
	return sim.Time(waves) * insramRounds * insramRoundNS * sim.Nanosecond
}

// InSRAMAESOpsPerSec is the aggregate 16 B-lane throughput of the
// provisioned arrays: each bank completes one lane per full AES pass.
func InSRAMAESOpsPerSec(c *Config) float64 {
	passSeconds := float64(insramRounds*insramRoundNS) * 1e-9
	return float64(c.InSRAMBanks) / passSeconds
}

// CoreCycle reports one core clock period.
func (c *Config) CoreCycle() sim.Time {
	return sim.Time(float64(sim.Nanosecond)/c.CoreClockGHz + 0.5)
}

// SystemName labels the configuration the way Fig 16's legend does.
func (c *Config) SystemName() string {
	if c.Counter == CtrNone {
		return "non-secure"
	}
	name := c.Counter.String()
	if c.EMCC {
		name = "emcc+" + name
	}
	return name
}

// ApplySystem configures the secure-memory design from its figure-legend
// name (the -system flag vocabulary shared by cmd/emccsim, cmd/trace and
// cmd/check). The "+nollc" suffix disables caching counters in LLC (the
// Fig 2 "W/o" configuration).
func ApplySystem(cfg *Config, name string) error {
	base := strings.TrimSuffix(name, "+nollc")
	switch base {
	case "non-secure", "nonsecure", "none":
		cfg.Counter = CtrNone
		cfg.CountersInLLC = false
		cfg.EMCC = false
	case "mono":
		cfg.Counter = CtrMono
	case "sc64":
		cfg.Counter = CtrSC64
	case "morphable":
		cfg.Counter = CtrMorphable
	case "emcc":
		cfg.Counter = CtrMorphable
		cfg.EMCC = true
	case "bipbip":
		cfg.Counter = CtrBipBip
		cfg.CountersInLLC = false
		cfg.EMCC = false
	case "insram":
		cfg.Counter = CtrInSRAM
		cfg.CountersInLLC = false
		cfg.EMCC = false
	default:
		return fmt.Errorf("unknown system %q", name)
	}
	if strings.HasSuffix(name, "+nollc") {
		cfg.CountersInLLC = false
		if cfg.EMCC {
			return fmt.Errorf("emcc requires counters in LLC")
		}
	}
	return nil
}
