package inv

import (
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	Enable(false)
	Reset()
	if On() {
		t.Fatal("recorder on without Enable")
	}
}

func TestEnableRecordsAndResets(t *testing.T) {
	Enable(true)
	defer Enable(false)
	Failf("demo", "value %d out of range", 7)
	Check(false, "demo", "check form")
	Check(true, "demo", "must not record")
	if Count() != 2 {
		t.Fatalf("Count = %d, want 2", Count())
	}
	vs := Violations()
	if len(vs) != 2 || vs[0].Component != "demo" || vs[0].Message != "value 7 out of range" {
		t.Fatalf("violations = %v", vs)
	}
	if got := vs[0].String(); got != "demo: value 7 out of range" {
		t.Fatalf("String = %q", got)
	}
	// Re-enabling starts a clean slate.
	Enable(true)
	if Count() != 0 || len(Violations()) != 0 {
		t.Fatal("Enable(true) did not reset")
	}
}

func TestRecordingCap(t *testing.T) {
	Enable(true)
	defer Enable(false)
	for i := 0; i < maxRecorded+10; i++ {
		Failf("cap", "violation %d", i)
	}
	if n := len(Violations()); n != maxRecorded {
		t.Fatalf("stored %d violations, cap is %d", n, maxRecorded)
	}
	if Count() != int64(maxRecorded+10) {
		t.Fatalf("Count = %d, want %d", Count(), maxRecorded+10)
	}
}

// TestRecorderIsolation proves independent recorders never share state:
// failures on one are invisible to the others and to the package default.
func TestRecorderIsolation(t *testing.T) {
	Reset()
	a, b := NewRecorder(), NewRecorder()
	a.Enable(true)
	b.Enable(true)
	a.Failf("iso", "a only")
	if b.Count() != 0 || Count() != 0 {
		t.Fatalf("violation leaked: b=%d default=%d", b.Count(), Count())
	}
	if a.Count() != 1 {
		t.Fatalf("a.Count = %d, want 1", a.Count())
	}
	if Or(nil) != Default() {
		t.Fatal("Or(nil) is not the default recorder")
	}
	if Or(a) != a {
		t.Fatal("Or(a) is not its argument")
	}
}

// TestConcurrentFailf exercises the recorder from many goroutines under
// -race: Failf and Violations must be safe to interleave.
func TestConcurrentFailf(t *testing.T) {
	Enable(true)
	defer Enable(false)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Failf("race", "g%d-%d", g, i)
				_ = Violations()
				_ = On()
			}
		}(g)
	}
	wg.Wait()
	if Count() != 800 {
		t.Fatalf("Count = %d, want 800", Count())
	}
}
