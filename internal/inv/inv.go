// Package inv is the runtime invariant-checking facility shared by the
// simulator components (sim, dram, cache, mc, itree, emcc). Checks are
// gated on an atomic flag so production runs pay one predictable branch
// per check site and zero allocation; verification runs (cmd/check,
// go test ./internal/check) enable the flag and collect violations instead
// of crashing mid-simulation, so one broken invariant cannot mask the rest.
//
// State lives in a Recorder, owned by whatever owns a run: the engine-scoped
// binding (sim.Engine carries one, components capture it at construction)
// keeps concurrent in-process runs fully isolated — each run's violations
// land only in its own Recorder. The package-level functions delegate to a
// process-wide default Recorder, so leaf sites that predate the refactor
// (and ad-hoc tools) remain valid; anything that can run concurrently must
// use a per-run Recorder instead.
//
// Usage at a check site, method form (preferred — r is the run's recorder,
// captured from the engine at construction):
//
//	if r.On() && start < enqueued {
//		r.Failf("dram", "request issued %d ps before enqueue", enqueued-start)
//	}
//
// The condition and the Failf arguments are only evaluated when checking is
// enabled, keeping the disabled path free of fmt traffic. The invgate lint
// pass (internal/analysis) enforces the discipline for both the method and
// the package-level form.
package inv

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Violation is one recorded invariant failure.
type Violation struct {
	// Component labels the subsystem that detected the failure
	// ("sim", "dram", "cache", "mc", "itree", "emcc", ...).
	Component string
	// Message describes the violated invariant.
	Message string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Component + ": " + v.Message }

// maxRecorded caps stored violations; beyond it only the total count grows
// (a systematically broken invariant would otherwise flood memory).
const maxRecorded = 256

// Recorder holds the invariant-checking state for one run. The zero value
// is ready to use (checking disabled, nothing recorded). A Recorder is safe
// for concurrent use: the sharded engine's domains share their run's
// recorder across worker goroutines.
type Recorder struct {
	enabled atomic.Bool
	total   atomic.Int64

	mu   sync.Mutex
	vios []Violation
}

// NewRecorder returns a fresh, disabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// std is the process-wide default recorder the package-level functions
// delegate to.
var std = NewRecorder()

// Default returns the process-wide default recorder — the one the
// package-level Enable/On/Failf operate on.
func Default() *Recorder { return std }

// Or returns r, or the default recorder when r is nil. Constructors use it
// to normalise an optional recorder argument so check sites never need a
// nil test.
func Or(r *Recorder) *Recorder {
	if r == nil {
		return std
	}
	return r
}

// Enable switches invariant checking on or off. Enabling also clears any
// previously recorded violations so a run starts from a clean slate.
func (r *Recorder) Enable(on bool) {
	if on {
		r.Reset()
	}
	r.enabled.Store(on)
}

// On reports whether invariant checking is active. Check sites call this
// first so the disabled path costs one atomic load.
func (r *Recorder) On() bool { return r.enabled.Load() }

// Failf records an invariant violation. It never panics: simulation
// continues so a single failure cannot hide later, independent ones.
func (r *Recorder) Failf(component, format string, args ...interface{}) {
	r.total.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.vios) < maxRecorded {
		r.vios = append(r.vios, Violation{Component: component, Message: fmt.Sprintf(format, args...)})
	}
}

// Fail records an invariant violation with a fixed message. Like Failf it
// never panics; use it when there is nothing to format.
func (r *Recorder) Fail(component, message string) {
	r.total.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.vios) < maxRecorded {
		r.vios = append(r.vios, Violation{Component: component, Message: message})
	}
}

// Check records a violation when cond is false. Prefer the `if r.On()`
// form at hot sites; Check is for cold paths where brevity wins.
func (r *Recorder) Check(cond bool, component, format string, args ...interface{}) {
	if !cond {
		r.Failf(component, format, args...)
	}
}

// Violations returns a copy of the recorded violations (at most the first
// maxRecorded; Count reports the true total).
func (r *Recorder) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Violation(nil), r.vios...)
}

// Count reports the total number of violations since the last Reset,
// including any dropped beyond the recording cap.
func (r *Recorder) Count() int64 { return r.total.Load() }

// Reset clears recorded violations and the counter.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.vios = nil
	r.mu.Unlock()
	r.total.Store(0)
}

// Enable switches the default recorder's checking on or off.
func Enable(on bool) { std.Enable(on) }

// On reports whether the default recorder's checking is active.
func On() bool { return std.On() }

// Failf records an invariant violation on the default recorder.
func Failf(component, format string, args ...interface{}) { std.Failf(component, format, args...) }

// Fail records a fixed-message violation on the default recorder.
func Fail(component, message string) { std.Fail(component, message) }

// Check records a violation on the default recorder when cond is false.
func Check(cond bool, component, format string, args ...interface{}) {
	std.Check(cond, component, format, args...)
}

// Violations returns the default recorder's recorded violations.
func Violations() []Violation { return std.Violations() }

// Count reports the default recorder's total violation count.
func Count() int64 { return std.Count() }

// Reset clears the default recorder.
func Reset() { std.Reset() }
