// Package inv is the runtime invariant-checking facility shared by the
// simulator components (sim, dram, cache, mc, itree, emcc). Checks are
// gated on a single atomic flag so production runs pay one predictable
// branch per check site and zero allocation; verification runs (cmd/check,
// go test ./internal/check) enable the flag and collect violations instead
// of crashing mid-simulation, so one broken invariant cannot mask the rest.
//
// Usage at a check site:
//
//	if inv.On() && start < enqueued {
//		inv.Failf("dram", "request issued %d ps before enqueue", enqueued-start)
//	}
//
// The condition and the Failf arguments are only evaluated when checking is
// enabled, keeping the disabled path free of fmt traffic.
package inv

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Violation is one recorded invariant failure.
type Violation struct {
	// Component labels the subsystem that detected the failure
	// ("sim", "dram", "cache", "mc", "itree", "emcc", ...).
	Component string
	// Message describes the violated invariant.
	Message string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Component + ": " + v.Message }

// maxRecorded caps stored violations; beyond it only the total count grows
// (a systematically broken invariant would otherwise flood memory).
const maxRecorded = 256

var (
	enabled atomic.Bool
	total   atomic.Int64

	mu   sync.Mutex
	vios []Violation
)

// Enable switches invariant checking on or off. Enabling also clears any
// previously recorded violations so a run starts from a clean slate.
func Enable(on bool) {
	if on {
		Reset()
	}
	enabled.Store(on)
}

// On reports whether invariant checking is active. Check sites call this
// first so the disabled path costs one atomic load.
func On() bool { return enabled.Load() }

// Failf records an invariant violation. It never panics: simulation
// continues so a single failure cannot hide later, independent ones.
func Failf(component, format string, args ...interface{}) {
	total.Add(1)
	mu.Lock()
	defer mu.Unlock()
	if len(vios) < maxRecorded {
		vios = append(vios, Violation{Component: component, Message: fmt.Sprintf(format, args...)})
	}
}

// Fail records an invariant violation with a fixed message. Like Failf it
// never panics; use it when there is nothing to format.
func Fail(component, message string) {
	total.Add(1)
	mu.Lock()
	defer mu.Unlock()
	if len(vios) < maxRecorded {
		vios = append(vios, Violation{Component: component, Message: message})
	}
}

// Check records a violation when cond is false. Prefer the `if inv.On()`
// form at hot sites; Check is for cold paths where brevity wins.
func Check(cond bool, component, format string, args ...interface{}) {
	if !cond {
		Failf(component, format, args...)
	}
}

// Violations returns a copy of the recorded violations (at most the first
// maxRecorded; Count reports the true total).
func Violations() []Violation {
	mu.Lock()
	defer mu.Unlock()
	return append([]Violation(nil), vios...)
}

// Count reports the total number of violations since the last Reset,
// including any dropped beyond the recording cap.
func Count() int64 { return total.Load() }

// Reset clears recorded violations and the counter.
func Reset() {
	mu.Lock()
	vios = nil
	mu.Unlock()
	total.Store(0)
}
