package prefetch

import "testing"

func TestNoPrefetchBeforeConfirmation(t *testing.T) {
	p := New(64, 2)
	if got := p.Observe(100); got != nil {
		t.Fatalf("first touch prefetched %v", got)
	}
	if got := p.Observe(101); got != nil {
		t.Fatalf("one delta prefetched %v (needs two-delta confirmation)", got)
	}
}

func TestUnitStrideConfirmedDegree2(t *testing.T) {
	p := New(64, 2)
	p.Observe(100)
	p.Observe(101)
	got := p.Observe(102)
	if len(got) != 2 || got[0] != 103 || got[1] != 104 {
		t.Fatalf("prefetch = %v, want [103 104]", got)
	}
	if p.Issued != 2 {
		t.Fatalf("issued = %d", p.Issued)
	}
}

func TestLargerStride(t *testing.T) {
	p := New(64, 1)
	p.Observe(10)
	p.Observe(13)
	got := p.Observe(16)
	if len(got) != 1 || got[0] != 19 {
		t.Fatalf("prefetch = %v, want [19]", got)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(64, 1)
	p.Observe(50)
	p.Observe(48)
	got := p.Observe(46)
	if len(got) != 1 || got[0] != 44 {
		t.Fatalf("prefetch = %v, want [44]", got)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New(64, 1)
	p.Observe(100)
	p.Observe(101)
	p.Observe(102) // confirmed
	if got := p.Observe(110); got != nil {
		t.Fatalf("stride break still prefetched %v", got)
	}
	p.Observe(118)
	if got := p.Observe(126); len(got) != 1 || got[0] != 134 {
		t.Fatalf("new stride not re-confirmed: %v", got)
	}
}

func TestRandomAccessesStayQuiet(t *testing.T) {
	p := New(256, 2)
	r := uint64(12345)
	issued := 0
	for i := 0; i < 10000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		if p.Observe(r%(1<<30)) != nil {
			issued++
		}
	}
	if issued > 100 {
		t.Fatalf("random stream triggered %d prefetches", issued)
	}
}

func TestRegionChangeResets(t *testing.T) {
	p := New(64, 1)
	p.Observe(0)
	p.Observe(1)
	p.Observe(2) // confirmed in region 0
	// A far region mapping to the same table entry must not inherit the
	// stride. 64 entries * 64-block regions: region 64 aliases region 0.
	alias := uint64(64 * 64)
	if got := p.Observe(alias); got != nil {
		t.Fatalf("aliased region prefetched %v", got)
	}
}

func TestRepeatedBlockNoPrefetch(t *testing.T) {
	p := New(64, 1)
	p.Observe(7)
	p.Observe(7)
	if got := p.Observe(7); got != nil {
		t.Fatalf("zero stride prefetched %v", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size table did not panic")
		}
	}()
	New(0, 1)
}
