// Package prefetch implements the constant-stride prefetcher of Table I
// ("Degree of constant stride prefetcher — L1: 1, L2: 2"). Without program
// counters (the workloads are address traces), the detector is
// region-based: a table tracks the last block and stride observed within
// each aligned region, and issues `degree` prefetch candidates once the
// same stride repeats (two-delta confirmation), the standard stream-table
// design.
package prefetch

// entry is one region's detector state.
type entry struct {
	region    uint64
	lastBlock uint64
	stride    int64
	confirmed bool
	valid     bool
	lastUse   uint64
}

// Prefetcher is a direct-mapped stream table. Not safe for concurrent use.
type Prefetcher struct {
	entries []entry
	degree  int
	// regionShift aligns detector regions (default 4 KB = 64 blocks).
	regionShift uint
	stamp       uint64
	out         []uint64 // reused result buffer

	// Issued counts prefetch candidates emitted (stats).
	Issued int64
}

// New builds a prefetcher with `tableSize` region entries issuing `degree`
// blocks ahead on a confirmed stride.
func New(tableSize, degree int) *Prefetcher {
	if tableSize <= 0 || degree <= 0 {
		panic("prefetch: table size and degree must be positive")
	}
	return &Prefetcher{
		entries:     make([]entry, tableSize),
		degree:      degree,
		regionShift: 6, // 64 blocks = 4 KB regions
	}
}

// Degree reports the configured prefetch degree.
func (p *Prefetcher) Degree() int { return p.degree }

// Observe feeds one demand-accessed block index and returns the blocks to
// prefetch (nil when no stride is confirmed). The returned slice is only
// valid until the next call.
func (p *Prefetcher) Observe(block uint64) []uint64 {
	region := block >> p.regionShift
	idx := int(region % uint64(len(p.entries)))
	e := &p.entries[idx]
	p.stamp++
	e.lastUse = p.stamp

	if !e.valid || e.region != region {
		*e = entry{region: region, lastBlock: block, valid: true, lastUse: p.stamp}
		return nil
	}
	stride := int64(block) - int64(e.lastBlock)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		e.confirmed = true
	} else {
		e.stride = stride
		e.confirmed = false
	}
	e.lastBlock = block
	if !e.confirmed {
		return nil
	}
	p.out = p.out[:0]
	next := int64(block)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		p.out = append(p.out, uint64(next))
	}
	p.Issued += int64(len(p.out))
	return p.out
}
