package noc

import (
	"testing"

	"repro/internal/sim"
)

func paperMesh() *Mesh { return New(6, 5, sim.NS(1.0), sim.NS(3.0)) }

func TestGeometry(t *testing.T) {
	m := paperMesh()
	if m.Tiles() != 30 {
		t.Fatalf("tiles = %d, want 30", m.Tiles())
	}
	if m.CoreTiles() != 28 {
		t.Fatalf("core tiles = %d, want 28 (Fig 4)", m.CoreTiles())
	}
	if m.MCs() != 2 {
		t.Fatalf("MCs = %d, want 2", m.MCs())
	}
}

func TestMCTilesAreNotCoreTiles(t *testing.T) {
	m := paperMesh()
	mcs := map[NodeID]bool{m.MCTile(0): true, m.MCTile(1): true}
	if len(mcs) != 2 {
		t.Fatal("both MCs map to one tile")
	}
	for c := 0; c < m.CoreTiles(); c++ {
		if mcs[m.CoreTile(c)] {
			t.Fatalf("core %d shares a tile with an MC", c)
		}
	}
}

func TestLatencySymmetricAndTriangular(t *testing.T) {
	m := paperMesh()
	a, b, c := m.CoreTile(0), m.CoreTile(13), m.CoreTile(27)
	if m.OneWay(a, b) != m.OneWay(b, a) {
		t.Fatal("one-way latency not symmetric")
	}
	if m.OneWay(a, a) != sim.NS(3.0) {
		t.Fatalf("self latency = %v, want base cost", m.OneWay(a, a))
	}
	if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
		t.Fatal("hop counts violate the triangle inequality")
	}
	if m.RoundTrip(a, b) != 2*m.OneWay(a, b) {
		t.Fatal("round trip != 2x one way")
	}
}

// TestMeanOneWayNearPaper: the paper measures ~7.5 ns mean one-way tile
// latency; the calibrated mesh should be within a nanosecond.
func TestMeanOneWayNearPaper(t *testing.T) {
	m := paperMesh()
	mean := m.MeanOneWay(m.CoreTile(0)).Nanoseconds()
	if mean < 5.5 || mean > 8.5 {
		t.Fatalf("mean one-way = %.2f ns, want ~6.5-7.5", mean)
	}
}

// TestLLCHitLatencyNearPaper: L1+L2 (6 ns) + RTT + tag+data (4 ns) should
// average ~23 ns (Fig 3).
func TestLLCHitLatencyNearPaper(t *testing.T) {
	m := paperMesh()
	var sum float64
	n := 0
	for c := 0; c < m.CoreTiles(); c++ {
		for s := 0; s < m.CoreTiles(); s++ {
			sum += (sim.NS(10) + m.RoundTrip(m.CoreTile(c), m.CoreTile(s))).Nanoseconds()
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 21 || mean > 25 {
		t.Fatalf("mean LLC hit latency = %.2f ns, want ~23", mean)
	}
}

func TestSliceMappingDeterministicAndSpread(t *testing.T) {
	m := paperMesh()
	seen := map[NodeID]int{}
	for b := uint64(0); b < 10000; b++ {
		s1, s2 := m.SliceOf(b), m.SliceOf(b)
		if s1 != s2 {
			t.Fatal("slice mapping not deterministic")
		}
		seen[s1]++
	}
	if len(seen) != m.CoreTiles() {
		t.Fatalf("blocks map to %d slices, want %d", len(seen), m.CoreTiles())
	}
	for s, n := range seen {
		if n < 10000/m.CoreTiles()/3 {
			t.Fatalf("slice %d badly underloaded: %d", int(s), n)
		}
	}
}

func TestMCOfInterleaves(t *testing.T) {
	m := paperMesh()
	counts := [2]int{}
	for b := uint64(0); b < 1000; b++ {
		mc := m.MCOf(b)
		if mc != 0 && mc != 1 {
			t.Fatalf("MCOf = %d", mc)
		}
		counts[mc]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("MC interleave broken: %v", counts)
	}
}

func TestRouteTraceContiguous(t *testing.T) {
	m := paperMesh()
	route := m.RouteTrace(0, 0xbeef)
	if len(route) < 2 {
		t.Fatal("route too short")
	}
	for i := 1; i < len(route); i++ {
		if m.Hops(route[i-1], route[i]) > 1 {
			t.Fatalf("route hop %d -> %d is not adjacent", int(route[i-1]), int(route[i]))
		}
	}
	if route[len(route)-1] != m.MCTile(m.MCOf(0xbeef)) {
		t.Fatal("route does not end at the home MC")
	}
}

func TestTooSmallMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1x1 mesh did not panic")
		}
	}()
	New(1, 1, 1, 1)
}
