package noc

import (
	"testing"

	"repro/internal/sim"
)

func paperMesh() *Mesh { return New(6, 5, sim.NS(1.0), sim.NS(3.0)) }

func TestGeometry(t *testing.T) {
	m := paperMesh()
	if m.Tiles() != 30 {
		t.Fatalf("tiles = %d, want 30", m.Tiles())
	}
	if m.CoreTiles() != 28 {
		t.Fatalf("core tiles = %d, want 28 (Fig 4)", m.CoreTiles())
	}
	if m.MCs() != 2 {
		t.Fatalf("MCs = %d, want 2", m.MCs())
	}
}

func TestMCTilesAreNotCoreTiles(t *testing.T) {
	m := paperMesh()
	mcs := map[NodeID]bool{m.MCTile(0): true, m.MCTile(1): true}
	if len(mcs) != 2 {
		t.Fatal("both MCs map to one tile")
	}
	for c := 0; c < m.CoreTiles(); c++ {
		if mcs[m.CoreTile(c)] {
			t.Fatalf("core %d shares a tile with an MC", c)
		}
	}
}

func TestLatencySymmetricAndTriangular(t *testing.T) {
	m := paperMesh()
	a, b, c := m.CoreTile(0), m.CoreTile(13), m.CoreTile(27)
	if m.OneWay(a, b) != m.OneWay(b, a) {
		t.Fatal("one-way latency not symmetric")
	}
	if m.OneWay(a, a) != sim.NS(3.0) {
		t.Fatalf("self latency = %v, want base cost", m.OneWay(a, a))
	}
	if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
		t.Fatal("hop counts violate the triangle inequality")
	}
	if m.RoundTrip(a, b) != 2*m.OneWay(a, b) {
		t.Fatal("round trip != 2x one way")
	}
}

// TestMeanOneWayNearPaper: the paper measures ~7.5 ns mean one-way tile
// latency; the calibrated mesh should be within a nanosecond.
func TestMeanOneWayNearPaper(t *testing.T) {
	m := paperMesh()
	mean := m.MeanOneWay(m.CoreTile(0)).Nanoseconds()
	if mean < 5.5 || mean > 8.5 {
		t.Fatalf("mean one-way = %.2f ns, want ~6.5-7.5", mean)
	}
}

// TestLLCHitLatencyNearPaper: L1+L2 (6 ns) + RTT + tag+data (4 ns) should
// average ~23 ns (Fig 3).
func TestLLCHitLatencyNearPaper(t *testing.T) {
	m := paperMesh()
	var sum float64
	n := 0
	for c := 0; c < m.CoreTiles(); c++ {
		for s := 0; s < m.CoreTiles(); s++ {
			sum += (sim.NS(10) + m.RoundTrip(m.CoreTile(c), m.CoreTile(s))).Nanoseconds()
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 21 || mean > 25 {
		t.Fatalf("mean LLC hit latency = %.2f ns, want ~23", mean)
	}
}

func TestSliceMappingDeterministicAndSpread(t *testing.T) {
	m := paperMesh()
	seen := map[NodeID]int{}
	for b := uint64(0); b < 10000; b++ {
		s1, s2 := m.SliceOf(b), m.SliceOf(b)
		if s1 != s2 {
			t.Fatal("slice mapping not deterministic")
		}
		seen[s1]++
	}
	if len(seen) != m.CoreTiles() {
		t.Fatalf("blocks map to %d slices, want %d", len(seen), m.CoreTiles())
	}
	for s, n := range seen {
		if n < 10000/m.CoreTiles()/3 {
			t.Fatalf("slice %d badly underloaded: %d", int(s), n)
		}
	}
}

func TestMCOfInterleaves(t *testing.T) {
	m := paperMesh()
	counts := [2]int{}
	for b := uint64(0); b < 1000; b++ {
		mc := m.MCOf(b)
		if mc != 0 && mc != 1 {
			t.Fatalf("MCOf = %d", mc)
		}
		counts[mc]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("MC interleave broken: %v", counts)
	}
}

func TestRouteTraceContiguous(t *testing.T) {
	m := paperMesh()
	route := m.RouteTrace(0, 0xbeef)
	if len(route) < 2 {
		t.Fatal("route too short")
	}
	for i := 1; i < len(route); i++ {
		if m.Hops(route[i-1], route[i]) > 1 {
			t.Fatalf("route hop %d -> %d is not adjacent", int(route[i-1]), int(route[i]))
		}
	}
	if route[len(route)-1] != m.MCTile(m.MCOf(0xbeef)) {
		t.Fatal("route does not end at the home MC")
	}
}

func TestTooSmallMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1x1 mesh did not panic")
		}
	}()
	New(1, 1, 1, 1)
}

// Non-square geometries (cols != rows in both orientations, including the
// degenerate two-row and two-column shapes). The routing and placement
// invariants below must hold regardless of aspect ratio — the sharded
// engine derives its lookahead from these distances, so an asymmetry or an
// off-mesh route on a skinny mesh would silently corrupt the domain cut.
var nonSquareMeshes = []struct{ cols, rows int }{
	{8, 3}, {3, 8}, {7, 2}, {2, 7}, {9, 4},
}

func TestNonSquareHopsAndLatencySymmetric(t *testing.T) {
	for _, g := range nonSquareMeshes {
		m := New(g.cols, g.rows, sim.NS(1.0), sim.NS(3.0))
		n := NodeID(m.Tiles())
		for a := NodeID(0); a < n; a++ {
			for b := a; b < n; b++ {
				if m.Hops(a, b) != m.Hops(b, a) {
					t.Fatalf("%dx%d: Hops(%d,%d) != Hops(%d,%d)", g.cols, g.rows, a, b, b, a)
				}
				if m.OneWay(a, b) != m.OneWay(b, a) {
					t.Fatalf("%dx%d: OneWay not symmetric for (%d,%d)", g.cols, g.rows, a, b)
				}
				want := sim.NS(3.0) + sim.Time(m.Hops(a, b))*sim.NS(1.0)
				if m.OneWay(a, b) != want {
					t.Fatalf("%dx%d: OneWay(%d,%d) = %v, want base+hops = %v",
						g.cols, g.rows, a, b, m.OneWay(a, b), want)
				}
			}
			// Hops is the Manhattan metric, so the farthest tile is a
			// corner: no distance may exceed the mesh diameter.
			for b := NodeID(0); b < n; b++ {
				if d := m.Hops(a, b); d > (g.cols-1)+(g.rows-1) {
					t.Fatalf("%dx%d: Hops(%d,%d) = %d exceeds diameter", g.cols, g.rows, a, b, d)
				}
			}
		}
	}
}

// TestNonSquareXYRoutesValid walks every pair's XY route step list: each
// step moves exactly one hop, stays on the mesh, moves X before Y, and the
// step count equals the Manhattan distance.
func TestNonSquareXYRoutesValid(t *testing.T) {
	for _, g := range nonSquareMeshes {
		m := New(g.cols, g.rows, sim.NS(1.0), sim.NS(3.0))
		n := NodeID(m.Tiles())
		for a := NodeID(0); a < n; a++ {
			for b := NodeID(0); b < n; b++ {
				steps := m.xySteps(a, b)
				if len(steps) != m.Hops(a, b) {
					t.Fatalf("%dx%d: route %d->%d has %d steps, want %d hops",
						g.cols, g.rows, a, b, len(steps), m.Hops(a, b))
				}
				cur := a
				yPhase := false
				for _, s := range steps {
					if s < 0 || int(s) >= m.Tiles() {
						t.Fatalf("%dx%d: route %d->%d leaves the mesh at %d", g.cols, g.rows, a, b, s)
					}
					if m.Hops(cur, s) != 1 {
						t.Fatalf("%dx%d: route %d->%d jumps %d hops at %d",
							g.cols, g.rows, a, b, m.Hops(cur, s), s)
					}
					_, cy := m.xy(cur)
					_, sy := m.xy(s)
					if cy != sy {
						yPhase = true
					} else if yPhase {
						t.Fatalf("%dx%d: route %d->%d moves X after Y at %d (not XY routing)",
							g.cols, g.rows, a, b, s)
					}
					cur = s
				}
				if cur != b {
					t.Fatalf("%dx%d: route %d->%d ends at %d", g.cols, g.rows, a, b, cur)
				}
			}
		}
	}
}

func TestNonSquareMCPlacement(t *testing.T) {
	for _, g := range nonSquareMeshes {
		m := New(g.cols, g.rows, sim.NS(1.0), sim.NS(3.0))
		if m.MCs() != 2 {
			t.Fatalf("%dx%d: MCs = %d, want 2", g.cols, g.rows, m.MCs())
		}
		mc0, mc1 := m.MCTile(0), m.MCTile(1)
		if mc0 == mc1 {
			t.Fatalf("%dx%d: both MCs on tile %d", g.cols, g.rows, mc0)
		}
		for i, mc := range []NodeID{mc0, mc1} {
			if mc < 0 || int(mc) >= m.Tiles() {
				t.Fatalf("%dx%d: MC %d off-mesh at %d", g.cols, g.rows, i, mc)
			}
		}
		// Fig 4 rule, clamped for short meshes: MC0 on the left edge, MC1
		// on the right edge.
		if x, _ := m.xy(mc0); x != 0 {
			t.Fatalf("%dx%d: MC0 at column %d, want left edge", g.cols, g.rows, x)
		}
		if x, _ := m.xy(mc1); x != g.cols-1 {
			t.Fatalf("%dx%d: MC1 at column %d, want right edge", g.cols, g.rows, x)
		}
		if m.CoreTiles() != g.cols*g.rows-2 {
			t.Fatalf("%dx%d: core tiles = %d, want %d", g.cols, g.rows, m.CoreTiles(), g.cols*g.rows-2)
		}
		for c := 0; c < m.CoreTiles(); c++ {
			tile := m.CoreTile(c)
			if tile == mc0 || tile == mc1 {
				t.Fatalf("%dx%d: core %d shares tile %d with an MC", g.cols, g.rows, c, tile)
			}
		}
		// Slice hashing and MC interleave stay in range on the skinny
		// geometry.
		for block := uint64(0); block < 1000; block++ {
			if j := m.SliceIndexOf(block); j < 0 || j >= m.CoreTiles() {
				t.Fatalf("%dx%d: slice index %d out of range", g.cols, g.rows, j)
			}
			if mc := m.MCOf(block); mc != 0 && mc != 1 {
				t.Fatalf("%dx%d: MCOf = %d", g.cols, g.rows, mc)
			}
		}
	}
}
