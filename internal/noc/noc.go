// Package noc models the on-chip network of Sec. III: a 6x5 mesh of tiles
// (Fig 4) where 28 tiles hold a core + L2 + LLC slice and two tiles hold
// memory controllers. Requests route X-then-Y; latency is a fixed
// injection/ejection cost plus a per-hop cost. Calibrated against the
// paper's real-system numbers: ~23 ns mean LLC hit latency from L1 (Fig 3),
// ~19 ns Direct LLC Latency, ~7.5 ns mean one-way tile-to-tile latency.
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a mesh tile.
type NodeID int

// Mesh is the network geometry plus latency parameters.
type Mesh struct {
	cols, rows int
	hop        sim.Time // per-hop link+router latency
	base       sim.Time // fixed injection+ejection cost per traversal

	coreTiles []NodeID // tiles hosting core+L2+LLC slice, in core order
	mcTiles   []NodeID // tiles hosting memory controllers
	isMC      []bool
}

// New builds a cols x rows mesh with two MC tiles placed as in Fig 4: the
// left edge of row 1 and the right edge of row 3 (clamped for small
// meshes). All remaining tiles are core tiles.
func New(cols, rows int, hop, base sim.Time) *Mesh {
	if cols < 2 || rows < 2 {
		panic(fmt.Sprintf("noc: mesh must be at least 2x2, got %dx%d", cols, rows))
	}
	m := &Mesh{cols: cols, rows: rows, hop: hop, base: base, isMC: make([]bool, cols*rows)}
	mc1 := NodeID(min(1, rows-1)*cols + 0)
	mc2 := NodeID(min(3, rows-1)*cols + (cols - 1))
	if mc2 == mc1 {
		mc2 = NodeID(cols - 1)
	}
	m.mcTiles = []NodeID{mc1, mc2}
	m.isMC[mc1], m.isMC[mc2] = true, true
	for t := NodeID(0); t < NodeID(cols*rows); t++ {
		if !m.isMC[t] {
			m.coreTiles = append(m.coreTiles, t)
		}
	}
	return m
}

// Tiles reports total tile count.
func (m *Mesh) Tiles() int { return m.cols * m.rows }

// CoreTiles reports the number of core/L2/slice tiles.
func (m *Mesh) CoreTiles() int { return len(m.coreTiles) }

// MCs reports the number of memory-controller tiles.
func (m *Mesh) MCs() int { return len(m.mcTiles) }

// CoreTile maps a core index to its tile.
func (m *Mesh) CoreTile(core int) NodeID { return m.coreTiles[core%len(m.coreTiles)] }

// MCTile maps a memory-controller index to its tile.
func (m *Mesh) MCTile(mc int) NodeID { return m.mcTiles[mc%len(m.mcTiles)] }

// SliceOf maps a block address to the LLC slice tile that caches it, using
// a static hash over the block index like the mapping function of Fig 4.
func (m *Mesh) SliceOf(block uint64) NodeID {
	// Fibonacci hashing spreads consecutive blocks across slices while
	// staying deterministic.
	h := block * 0x9e3779b97f4a7c15
	return m.coreTiles[h%uint64(len(m.coreTiles))]
}

// SliceIndexOf reports the slice's index in core-tile order.
func (m *Mesh) SliceIndexOf(block uint64) int {
	h := block * 0x9e3779b97f4a7c15
	return int(h % uint64(len(m.coreTiles)))
}

// MCOf maps a block address to its home memory controller, interleaved at
// block granularity across the MC tiles.
func (m *Mesh) MCOf(block uint64) int {
	return int((block >> 1) % uint64(len(m.mcTiles)))
}

func (m *Mesh) xy(t NodeID) (x, y int) { return int(t) % m.cols, int(t) / m.cols }

// Hops reports the Manhattan distance between two tiles (XY routing).
func (m *Mesh) Hops(a, b NodeID) int {
	ax, ay := m.xy(a)
	bx, by := m.xy(b)
	return abs(ax-bx) + abs(ay-by)
}

// OneWay reports the latency of one message traversal a -> b.
func (m *Mesh) OneWay(a, b NodeID) sim.Time {
	return m.base + sim.Time(m.Hops(a, b))*m.hop
}

// RoundTrip reports a -> b -> a latency.
func (m *Mesh) RoundTrip(a, b NodeID) sim.Time { return 2 * m.OneWay(a, b) }

// MinOneWay reports the smallest one-way latency from any tile in src to
// any tile in dst: the conservative static lookahead between two tile
// groups — every message between members takes at least this long, so the
// sharded engine may use it as a link distance.
func (m *Mesh) MinOneWay(src, dst []NodeID) sim.Time {
	best := sim.Time(1 << 62)
	for _, a := range src {
		for _, b := range dst {
			if d := m.OneWay(a, b); d < best {
				best = d
			}
		}
	}
	return best
}

// MeanOneWay reports the average one-way latency from a given tile to all
// core tiles (used to calibrate against the paper's 7.5 ns figure).
func (m *Mesh) MeanOneWay(from NodeID) sim.Time {
	var sum sim.Time
	for _, t := range m.coreTiles {
		sum += m.OneWay(from, t)
	}
	return sum / sim.Time(len(m.coreTiles))
}

// RouteTrace renders the Fig 4 example: the tiles a request visits from a
// core's L2 to the home slice of a block and (on LLC miss) on to the MC.
func (m *Mesh) RouteTrace(core int, block uint64) []NodeID {
	src := m.CoreTile(core)
	slice := m.SliceOf(block)
	mc := m.MCTile(m.MCOf(block))
	route := []NodeID{src}
	route = append(route, m.xySteps(src, slice)...)
	route = append(route, m.xySteps(slice, mc)...)
	return route
}

func (m *Mesh) xySteps(a, b NodeID) []NodeID {
	var steps []NodeID
	ax, ay := m.xy(a)
	bx, by := m.xy(b)
	for ax != bx {
		if ax < bx {
			ax++
		} else {
			ax--
		}
		steps = append(steps, NodeID(ay*m.cols+ax))
	}
	for ay != by {
		if ay < by {
			ay++
		} else {
			ay--
		}
		steps = append(steps, NodeID(ay*m.cols+ax))
	}
	return steps
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
