// Quickstart: run one benchmark under the non-secure, Morphable and EMCC
// systems and compare performance — the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const bench = "canneal"
	fmt.Printf("quickstart: %s, 3 systems, miniature scale\n", bench)
	fmt.Printf("(at this toy scale counters stay MC-resident, so EMCC has little\n")
	fmt.Printf(" to hide — run examples/graphanalytics or cmd/figures for the\n")
	fmt.Printf(" paper-scale comparison)\n\n")

	var baseline float64
	for _, system := range []string{"non-secure", "morphable", "emcc"} {
		cfg := emccsim.DefaultConfig()
		switch system {
		case "non-secure":
			cfg.Counter = emccsim.CtrNone
			cfg.CountersInLLC = false
		case "morphable":
			cfg.Counter = emccsim.CtrMorphable
		case "emcc":
			cfg.Counter = emccsim.CtrMorphable
			cfg.EMCC = true
		}
		s, err := emccsim.NewTiming(&cfg, emccsim.TimingOptions{
			Benchmark: bench,
			Refs:      200_000,
			Warmup:    600_000,
			Scale:     emccsim.TestScale(),
		})
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		res := s.Run()
		ms := res.SimulatedTime.Nanoseconds() / 1e6
		if system == "non-secure" {
			baseline = ms
		}
		fmt.Printf("%-12s %8.3f ms simulated   IPC %.2f   L2 miss %.1f ns   perf %.1f%%\n",
			system, ms, res.IPC, res.L2MissLatencyNS, 100*baseline/ms)
	}
}
