// Tracereplay: pin an experiment's exact input by recording a trace, then
// replay the identical reference stream under two secure-memory designs.
// Because both replays consume byte-identical inputs, any difference in the
// statistics is attributable to the architecture alone — the workflow the
// paper's Pintool studies rely on.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	const bench = "BFS"
	scale := emccsim.TestScale()

	// Record once.
	var buf bytes.Buffer
	n, err := trace.Record(&buf, bench, 4, 42, 400_000, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d refs of %s (%.1f KB, %.2f B/ref)\n\n",
		n, bench, float64(buf.Len())/1e3, float64(buf.Len())/float64(n))

	// Replay under two designs from the same bytes.
	for _, system := range []string{"morphable", "emcc"} {
		tr, err := trace.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		gens, err := tr.Generators()
		if err != nil {
			log.Fatal(err)
		}
		cfg := emccsim.DefaultConfig()
		cfg.EMCC = system == "emcc"
		s, err := emccsim.NewFunctional(&cfg, emccsim.FunctionalOptions{
			Cores: tr.Cores, Refs: n,
			Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.Run()
		st := s.Stats()
		fmt.Printf("%-10s L2 misses %7d   DRAM data reads %7d   DRAM counter reads %6d\n",
			system,
			st.Counter(stats.FsimL2DataMiss),
			st.Counter(stats.FsimDRAMDataRead),
			st.Counter(stats.FsimDRAMCtrRead))
	}
	fmt.Println("\nidentical inputs -> the counter-traffic difference is the architecture's")
}
