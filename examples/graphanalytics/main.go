// Graphanalytics: the motivating scenario of the paper's introduction — a
// graph-analytics kernel (pageRank over an RMAT power-law graph) whose
// irregular gathers defeat the MC's counter cache. The example runs the
// functional simulator to show the counter-locality breakdown (the Fig 6
// characterisation) and the timing simulator to compare Morphable vs EMCC.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	const bench = "pageRank"
	// Mid-scale graph: big enough that the gather footprint overwhelms
	// the 128 KB counter cache (the regime the paper targets), small
	// enough to run in well under a minute.
	scale := emccsim.DefaultScale()
	scale.GraphVertices = 1 << 20
	scale.GraphAvgDegree = 8

	// Part 1: where do pageRank's counter accesses land? (Fig 6 style)
	cfg := emccsim.DefaultConfig()
	fs, err := emccsim.NewFunctional(&cfg, emccsim.FunctionalOptions{
		Benchmark: bench, Refs: 3_000_000, Warmup: 2_000_000, Scale: scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs.Run()
	st := fs.Stats()
	reads := st.Counter(stats.FsimDRAMDataRead)
	fmt.Printf("%s counter placement per DRAM data read (%d reads):\n", bench, reads)
	for _, m := range []struct{ label, metric string }{
		{"MC counter-cache hit", stats.FsimCtrMCHit},
		{"LLC counter hit", stats.FsimCtrLLCHit},
		{"LLC counter miss", stats.FsimCtrLLCMiss},
	} {
		//lint:dynamic-key table rows hold registry constants
		fmt.Printf("  %-22s %5.1f%%\n", m.label, 100*float64(st.Counter(m.metric))/float64(reads))
	}

	// Part 2: does EMCC help? (Fig 16 style)
	fmt.Printf("\ntiming comparison:\n")
	var morphable float64
	for _, system := range []string{"morphable", "emcc"} {
		c := emccsim.DefaultConfig()
		c.EMCC = system == "emcc"
		ts, err := emccsim.NewTiming(&c, emccsim.TimingOptions{
			Benchmark: bench, Refs: 400_000, Warmup: 2_000_000, Scale: scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := ts.Run()
		ms := res.SimulatedTime.Nanoseconds() / 1e6
		if system == "morphable" {
			morphable = ms
		}
		fmt.Printf("  %-10s %8.3f ms   L2 miss %.1f ns", system, ms, res.L2MissLatencyNS)
		if system == "emcc" {
			fmt.Printf("   speedup over morphable: %+.1f%%", 100*(morphable/ms-1))
		}
		fmt.Println()
	}
}
