// Tamperdetect: exercise the functional secure-memory model end to end —
// write plaintext, read it back decrypted, then mount the three classic
// physical attacks (ciphertext tampering, MAC tampering, replay of a stale
// version) and show each one is detected. Also demonstrates the EMCC-split
// verification of Sec. IV-D: the MC embeds MAC⊕dot-product in the response
// and the L2 verifies with only its locally computed AES result.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	mem, err := emccsim.NewSecureMemory(1<<20, emccsim.CtrMorphable, []byte("an example key!!"))
	if err != nil {
		log.Fatal(err)
	}

	const addr = 0x4c0 // any 64 B-aligned address in the protected region
	plain := bytes.Repeat([]byte("secret! "), 8)

	// Write + read round trip.
	if _, err := mem.Write(addr, plain); err != nil {
		log.Fatal(err)
	}
	got, err := mem.Read(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip:        %q... ok=%v\n", got[:16], bytes.Equal(got, plain))

	// EMCC-split verification accepts the same block.
	got, err = mem.ReadViaEmbedded(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emcc-split read:   %q... ok=%v\n", got[:16], bytes.Equal(got, plain))

	// Attack 1: flip a ciphertext bit on the "bus".
	must(mem.TamperData(addr))
	expectTampered(mem, addr, "ciphertext tamper")
	must2(mem.Write(addr, plain)) // heal

	// Attack 2: corrupt the stored MAC.
	must(mem.TamperMAC(addr))
	expectTampered(mem, addr, "MAC tamper")
	must2(mem.Write(addr, plain))

	// Attack 3: replay a consistent-but-stale (ciphertext, MAC) pair.
	must2(mem.Write(addr, bytes.Repeat([]byte("newdata!"), 8)))
	must(mem.ReplayOld(addr))
	expectTampered(mem, addr, "replay attack")
	must2(mem.Write(addr, plain))

	// Attack 4: tamper with a counter block's stored MAC in "DRAM".
	parent, _ := mem.Space().ParentOf(uint64(addr) >> 6)
	mem.Tree().TamperMAC(parent)
	expectTampered(mem, addr, "counter-block tamper")
}

func expectTampered(mem *emccsim.SecureMemory, addr uint64, what string) {
	if _, err := mem.Read(addr); errors.Is(err, emccsim.ErrTampered) {
		fmt.Printf("%-18s detected (%v)\n", what+":", err)
		return
	}
	log.Fatalf("%s was NOT detected", what)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2(_ interface{}, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
