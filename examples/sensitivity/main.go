// Sensitivity: sweep the AES latency (the Fig 18 experiment) on one
// benchmark. The EMCC benefit should grow with AES latency, because the
// baseline keeps counter-mode AES on the critical path of secure memory
// accesses while EMCC overlaps it with the data's journey to L2.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
)

func main() {
	const bench = "canneal"
	// Mid-scale: canneal's working set must dwarf the counter cache for
	// the sensitivity to show (the paper's Fig 18 regime).
	scale := emccsim.DefaultScale()
	scale.IrregularBytes = 160 << 20

	fmt.Printf("AES-latency sensitivity on %s (Fig 18 style)\n\n", bench)
	fmt.Printf("%-8s %-14s %-14s %s\n", "AES", "morphable", "emcc", "emcc benefit")
	for _, aesNS := range []float64{14, 20, 25} {
		times := map[string]float64{}
		for _, system := range []string{"morphable", "emcc"} {
			cfg := emccsim.DefaultConfig()
			cfg.EMCC = system == "emcc"
			cfg.AESLatency = sim.NS(aesNS)
			s, err := emccsim.NewTiming(&cfg, emccsim.TimingOptions{
				Benchmark: bench, Refs: 400_000, Warmup: 2_000_000, Scale: scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[system] = s.Run().SimulatedTime.Nanoseconds()
		}
		fmt.Printf("%-8s %10.3f ms %10.3f ms   %+.1f%%\n",
			fmt.Sprintf("%.0f ns", aesNS),
			times["morphable"]/1e6, times["emcc"]/1e6,
			100*(times["morphable"]/times["emcc"]-1))
	}
}
