package emccsim

// One benchmark per table/figure of the paper (DESIGN.md's per-experiment
// index), plus micro-benchmarks of the core substrates. The figure
// benchmarks share one memoised harness: the first benchmark that needs a
// given simulation pays for it, later ones reuse it — so `go test -bench=.`
// regenerates the full evaluation exactly once.
//
// Figure benchmarks run the harness in Quick mode (smaller traces); use
// cmd/figures without -quick for the full-size regeneration recorded in
// EXPERIMENTS.md.

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/dram"
	"repro/internal/figures"
	"repro/internal/fsim"
	"repro/internal/mc"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tsim"
	"repro/internal/workload"

	iaddr "repro/internal/addr"
)

var (
	harnessOnce sync.Once
	harness     *figures.Harness
)

func sharedHarness() *figures.Harness {
	harnessOnce.Do(func() { harness = figures.NewHarness(true) })
	return harness
}

// meanPct extracts a percentage cell from a table's "mean" row.
func meanPct(t *figures.Table, col int) float64 {
	for _, r := range t.Rows {
		if r[0] == "mean" && col < len(r) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(r[col], "%"), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

func benchFigure(b *testing.B, id string, metric string, col int) {
	h := sharedHarness()
	var tab *figures.Table
	for i := 0; i < b.N; i++ {
		var ok bool
		tab, ok = h.ByID(id)
		if !ok {
			b.Fatalf("unknown figure %s", id)
		}
	}
	if tab == nil || len(tab.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	if metric != "" {
		b.ReportMetric(meanPct(tab, col), metric)
	}
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

// ---- One benchmark per table/figure ----

func BenchmarkTable1Config(b *testing.B)                { benchFigure(b, "table1", "", 0) }
func BenchmarkFig02TrafficOverhead(b *testing.B)        { benchFigure(b, "fig2", "mean-with-llc-%", 6) }
func BenchmarkFig03LLCLatencyDistribution(b *testing.B) { benchFigure(b, "fig3", "", 0) }
func BenchmarkFig04NoCRoute(b *testing.B)               { benchFigure(b, "fig4", "", 0) }
func BenchmarkFig05TimelineCounterMiss(b *testing.B)    { benchFigure(b, "fig5", "", 0) }
func BenchmarkFig06CounterHitMiss2MB(b *testing.B)      { benchFigure(b, "fig6", "mean-llc-miss-%", 3) }
func BenchmarkFig07CounterHitMiss12MB(b *testing.B)     { benchFigure(b, "fig7", "mean-llc-miss-%", 3) }
func BenchmarkFig08TimelineCounterHit(b *testing.B)     { benchFigure(b, "fig8", "", 0) }
func BenchmarkFig10TimelineEMCCMiss(b *testing.B)       { benchFigure(b, "fig10", "", 0) }
func BenchmarkFig11UselessCounterAccesses(b *testing.B) {
	benchFigure(b, "fig11", "mean-useless-%", 1)
}
func BenchmarkFig12TotalCounterAccesses(b *testing.B)  { benchFigure(b, "fig12", "mean-emcc-%", 2) }
func BenchmarkFig13TimelineCounterHitLLC(b *testing.B) { benchFigure(b, "fig13", "", 0) }
func BenchmarkFig14TimelineXPT(b *testing.B)           { benchFigure(b, "fig14", "", 0) }
func BenchmarkFig15BandwidthBreakdown(b *testing.B)    { benchFigure(b, "fig15", "", 0) }
func BenchmarkFig16Performance(b *testing.B) {
	benchFigure(b, "fig16", "mean-emcc-gain-%", 4)
}
func BenchmarkFig17L2MissLatency(b *testing.B) { benchFigure(b, "fig17", "", 0) }
func BenchmarkFig18AESLatencySensitivity(b *testing.B) {
	benchFigure(b, "fig18", "mean-gain-at-25ns-%", 3)
}
func BenchmarkFig19AESBandwidthSensitivity(b *testing.B) {
	benchFigure(b, "fig19", "mean-at-l2-at-50pct-%", 3)
}
func BenchmarkFig20CounterCacheSensitivity(b *testing.B) {
	benchFigure(b, "fig20", "mean-gain-at-512k-%", 3)
}
func BenchmarkFig21ChannelSensitivity(b *testing.B) {
	benchFigure(b, "fig21", "mean-gain-8ch-%", 2)
}
func BenchmarkFig22QueuingDelay(b *testing.B)   { benchFigure(b, "fig22", "", 0) }
func BenchmarkFig23Invalidations(b *testing.B)  { benchFigure(b, "fig23", "mean-inval-%", 1) }
func BenchmarkFig24UselessRegular(b *testing.B) { benchFigure(b, "fig24", "mean-useless-%", 1) }

// BenchmarkAblations regenerates the design-choice ablation table (AES
// gating, adaptive offload, dynamic EMCC-off).
func BenchmarkAblations(b *testing.B) { benchFigure(b, "ablation", "", 0) }

// ---- Micro-benchmarks of the substrates ----

func BenchmarkAES128Encrypt(b *testing.B) {
	a := crypto.NewAES([]byte("0123456789abcdef"))
	var in, out [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		a.Encrypt(out[:], in[:])
	}
}

func BenchmarkGF64Mul(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= crypto.GF64Mul(uint64(i)*0x9e3779b9, 0xfeedface)
	}
	_ = acc
}

func BenchmarkBlockMAC(b *testing.B) {
	e := crypto.NewEngine([]byte("benchmark key!!!"))
	block := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		e.MAC(block, uint64(i)<<6, uint64(i))
	}
}

func BenchmarkBlockEncrypt(b *testing.B) {
	e := crypto.NewEngine([]byte("benchmark key!!!"))
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		e.Encrypt(buf, buf, uint64(i)<<6, uint64(i))
	}
}

func BenchmarkCacheLookupInsert(b *testing.B) {
	c := cache.New("bench", 1<<20, 8)
	for i := 0; i < b.N; i++ {
		blk := uint64(i) % 32768
		if !c.Lookup(blk) {
			c.Insert(blk, i&1 == 0, iaddr.KindData)
		}
	}
}

func BenchmarkEventEngine(b *testing.B) {
	eng := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(100, tick)
		}
	}
	eng.After(100, tick)
	eng.Run()
}

func BenchmarkDRAMRandomReads(b *testing.B) {
	eng := sim.New()
	st := stats.NewSet()
	cfg := config.Default()
	d := dram.New(eng, st, &cfg)
	r := uint64(12345)
	done := 0
	var issue func()
	issue = func() {
		r = r*6364136223846793005 + 1
		d.Enqueue(&dram.Request{Block: r % (1 << 24), Kind: dram.TrafficData, Done: func(sim.Time) {
			done++
			if done < b.N {
				issue()
			}
		}})
	}
	eng.At(0, issue)
	eng.Run()
}

func BenchmarkAESPoolReserve(b *testing.B) {
	eng := sim.New()
	p := mc.NewAESPool(eng, 2.6e9, sim.NS(14))
	for i := 0; i < b.N; i++ {
		p.Reserve(5, sim.Time(i)*1000)
	}
}

func BenchmarkNoCLatency(b *testing.B) {
	m := noc.New(6, 5, sim.NS(1), sim.NS(3))
	var acc sim.Time
	for i := 0; i < b.N; i++ {
		acc += m.OneWay(m.CoreTile(i%28), m.SliceOf(uint64(i)))
	}
	_ = acc
}

func BenchmarkWorkloadCanneal(b *testing.B) {
	gens, err := workload.NewSet("canneal", 1, 1, workload.TestScale())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gens[0].Next()
	}
}

func BenchmarkWorkloadPageRank(b *testing.B) {
	gens, err := workload.NewSet("pageRank", 1, 1, workload.TestScale())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gens[0].Next()
	}
}

func BenchmarkFunctionalSimThroughput(b *testing.B) {
	cfg := config.Default()
	s, err := fsim.New(&cfg, fsim.Options{
		Benchmark: "canneal", Seed: 1, Refs: int64(b.N) + 1, Scale: workload.TestScale(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimingSimThroughput measures the disabled-tracer path: no
// tracer is attached, so every obs call site reduces to a nil check. The
// tracing PR's acceptance bar is that this stays within 1% of the
// pre-instrumentation number; BenchmarkTimingSimTraced below prices the
// enabled path for comparison.
func BenchmarkTimingSimThroughput(b *testing.B) {
	cfg := config.Default()
	cfg.EMCC = true
	refs := int64(b.N)
	if refs < 4 {
		refs = 4
	}
	s, err := tsim.New(&cfg, tsim.Options{
		Benchmark: "canneal", Seed: 1, Refs: refs, Scale: workload.TestScale(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// benchShardedTsim runs the end-to-end timing simulation on a 4-channel
// memory system with the DRAM channels sharded into the given number of
// lookahead-synchronized domains (0 = the serial engine).
func benchShardedTsim(b *testing.B, domains int) {
	cfg := config.Default()
	cfg.EMCC = true
	cfg.Channels = 4
	cfg.Domains = domains
	refs := int64(b.N)
	if refs < 4 {
		refs = 4
	}
	s, err := tsim.New(&cfg, tsim.Options{
		Benchmark: "canneal", Seed: 1, Refs: refs, Scale: workload.TestScale(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimingSimSharded is the domain-scaling suite recorded in
// BENCH_8.json: the serial engine against 1, 2 and 4 DRAM domains on an
// otherwise identical 4-channel machine. Every variant produces
// byte-identical stats (the shard-parity check pillar), so the comparison
// prices pure engine overhead/benefit.
func BenchmarkTimingSimSharded(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchShardedTsim(b, 0) })
	for _, d := range []int{1, 2, 4} {
		d := d
		// '=' rather than '-' in the sub-name: cmd/bench strips a trailing
		// -GOMAXPROCS segment from reported names.
		b.Run("domains="+strconv.Itoa(d), func(b *testing.B) { benchShardedTsim(b, d) })
	}
}

// BenchmarkTimingSimTraced is the same run with full tracing into the
// aggregate sink (no Chrome writer): the cost of attributing every request.
func BenchmarkTimingSimTraced(b *testing.B) {
	cfg := config.Default()
	cfg.EMCC = true
	refs := int64(b.N)
	if refs < 4 {
		refs = 4
	}
	s, err := tsim.New(&cfg, tsim.Options{
		Benchmark: "canneal", Seed: 1, Refs: refs, Scale: workload.TestScale(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SetTracer(obs.New(obs.Options{Stats: s.Stats()})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// benchCoRunTsim runs the multi-core co-run frontend: four cores each
// replay their own workload stream ("mcf+canneal" alternates mcf and
// canneal across cores at stacked, disjoint address regions) into the
// shared sliced LLC on a 4-channel memory system, with the topology cut
// into the given number of slice-group domains (0 = serial engine) and,
// optionally, per-core L2 domains on top.
func benchCoRunTsim(b *testing.B, domains int, shardCores bool) {
	cfg := config.Default()
	cfg.EMCC = true
	cfg.Channels = 4
	cfg.Domains = domains
	cfg.ShardCores = shardCores
	refs := int64(b.N)
	if refs < 4 {
		refs = 4
	}
	s, err := tsim.New(&cfg, tsim.Options{
		Benchmark: "mcf+canneal", Seed: 1, Refs: refs, Scale: workload.TestScale(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimingSimCoRun is the topology-sharding suite recorded in
// BENCH_10.json: the 4-core mcf+canneal co-run on the serial engine, on a
// slice-sharded cut, and on the widest cut (8 slice-group domains plus a
// domain per core+L2 tile). Byte-identical results across all variants —
// the shard-parity pillar covers this grid — so the ratios price the
// engine alone. Wall-clock speedup from the cut scales with the CPUs the
// host grants the process; the artifact records runtime.NumCPU alongside.
func BenchmarkTimingSimCoRun(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCoRunTsim(b, 0, false) })
	b.Run("domains=4", func(b *testing.B) { benchCoRunTsim(b, 4, false) })
	b.Run("domains=8+cores", func(b *testing.B) { benchCoRunTsim(b, 8, true) })
}
