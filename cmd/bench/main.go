// Command bench runs the performance-critical benchmarks — the event-engine
// micro-benchmarks (prebound vs closure vs the retired container/heap
// baseline), the telemetry hot path (histogram record/merge/quantile and
// the flight-recorder interval snapshot), the DRAM channel loop, and the
// tsim end-to-end throughput, serial and domain-sharded — and emits one
// machine-readable JSON artifact. BENCH_5.json in the repo root records the
// PR 5 engine-rewrite numbers, BENCH_7.json the PR 7 telemetry numbers and
// BENCH_8.json the PR 8 domain-scaling numbers; CI regenerates the artifact
// on every push and uploads it for trend inspection.
//
// Usage:
//
//	go run ./cmd/bench                 # JSON to stdout
//	go run ./cmd/bench -out BENCH.json -count 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// suites lists the packages and benchmark selections that feed the
// artifact. The sim suite carries the legacy baseline pair, so the derived
// speedups can be computed from one run.
var suites = []struct {
	pkg     string
	pattern string
}{
	{"./internal/sim", "^(BenchmarkEngineTickPrebound|BenchmarkEngineTickClosure|BenchmarkEngineMixedQueue|BenchmarkLegacyEngineTick|BenchmarkLegacyEngineMixedQueue|BenchmarkShardRoundTrip)$"},
	{"./internal/metrics", "^(BenchmarkHistObserve|BenchmarkHistMerge|BenchmarkHistQuantile|BenchmarkFlightRecord)$"},
	{"./internal/stats", "^BenchmarkFlightRecordSet$"},
	{".", "^(BenchmarkEventEngine|BenchmarkDRAMRandomReads|BenchmarkTimingSimThroughput|BenchmarkTimingSimSharded)$"},
}

type benchResult struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type artifact struct {
	Tool       string        `json:"tool"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Count      int           `json:"count"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Derived holds ratios the acceptance criteria gate on: the engine
	// tick and mixed-queue speedups over the container/heap baseline.
	Derived map[string]float64 `json:"derived"`
}

func main() {
	out := flag.String("out", "", "write the JSON artifact here (default stdout)")
	count := flag.Int("count", 1, "benchmark repetitions (-count for go test; the artifact keeps every run)")
	flag.Parse()

	art := artifact{
		Tool:      "cmd/bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Derived:   map[string]float64{},
	}
	for _, s := range suites {
		res, err := runSuite(s.pkg, s.pattern, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.pkg, err)
			os.Exit(1)
		}
		art.Benchmarks = append(art.Benchmarks, res...)
	}
	derive(&art)

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// runSuite executes one `go test -bench` invocation and parses its
// standard output into results.
func runSuite(pkg, pattern string, count int) ([]benchResult, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench", pattern,
		"-benchmem", "-count", strconv.Itoa(count), pkg)
	outBuf, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test: %v\n%s", err, outBuf)
	}
	var res []benchResult
	for _, line := range strings.Split(string(outBuf), "\n") {
		r, ok := parseBenchLine(pkg, line)
		if ok {
			res = append(res, r)
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q\n%s", pattern, outBuf)
	}
	return res, nil
}

// parseBenchLine decodes one textual benchmark result, e.g.
//
//	BenchmarkEngineTickPrebound-8  18571428  63.03 ns/op  0 B/op  0 allocs/op
func parseBenchLine(pkg, line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Package: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return r, true
}

// derive computes the engine speedups over the retired container/heap
// baseline from whatever runs are present (means across -count repeats).
func derive(art *artifact) {
	mean := func(name string) float64 {
		var sum float64
		var n int
		for _, b := range art.Benchmarks {
			if b.Name == name {
				sum += b.NsPerOp
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if legacy, tick := mean("LegacyEngineTick"), mean("EngineTickPrebound"); legacy > 0 && tick > 0 {
		art.Derived["engine_tick_speedup_vs_container_heap"] = legacy / tick
	}
	if legacy, mixed := mean("LegacyEngineMixedQueue"), mean("EngineMixedQueue"); legacy > 0 && mixed > 0 {
		art.Derived["engine_mixed_speedup_vs_container_heap"] = legacy / mixed
	}
	// Domain scaling: sharded tsim throughput relative to the serial engine
	// on the identical 4-channel scenario (results are byte-identical, so
	// the ratio prices the engine alone).
	serial := mean("TimingSimSharded/serial")
	for _, d := range []string{"1", "2", "4"} {
		if sharded := mean("TimingSimSharded/domains=" + d); serial > 0 && sharded > 0 {
			art.Derived["tsim_"+d+"dom_speedup_vs_serial"] = serial / sharded
		}
	}
}
