// Command bench runs the performance-critical benchmarks — the event-engine
// micro-benchmarks (prebound vs closure vs the retired container/heap
// baseline), the telemetry hot path (histogram record/merge/quantile and
// the flight-recorder interval snapshot), the DRAM channel loop, and the
// tsim end-to-end throughput, serial and domain-sharded — and emits one
// machine-readable JSON artifact. BENCH_5.json in the repo root records the
// PR 5 engine-rewrite numbers, BENCH_7.json the PR 7 telemetry numbers,
// BENCH_8.json the PR 8 domain-scaling numbers and BENCH_10.json the
// topology-cut co-run numbers; CI regenerates the artifact on every push
// and uploads it for trend inspection.
//
// Each run also diffs itself against the newest committed BENCH_*.json
// (override with -baseline): the artifact's "deltas" list carries the
// per-benchmark ns/op ratio and allocation comparison, and
// -fail-alloc-regress turns allocation growth beyond a fraction into a
// non-zero exit for CI.
//
// Usage:
//
//	go run ./cmd/bench                 # JSON to stdout
//	go run ./cmd/bench -out BENCH.json -count 3
//	go run ./cmd/bench -fail-alloc-regress 0.10   # CI gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// suites lists the packages and benchmark selections that feed the
// artifact. The sim suite carries the legacy baseline pair, so the derived
// speedups can be computed from one run.
var suites = []struct {
	pkg     string
	pattern string
}{
	{"./internal/sim", "^(BenchmarkEngineTickPrebound|BenchmarkEngineTickClosure|BenchmarkEngineMixedQueue|BenchmarkLegacyEngineTick|BenchmarkLegacyEngineMixedQueue|BenchmarkShardRoundTrip)$"},
	{"./internal/metrics", "^(BenchmarkHistObserve|BenchmarkHistMerge|BenchmarkHistQuantile|BenchmarkFlightRecord)$"},
	{"./internal/stats", "^BenchmarkFlightRecordSet$"},
	{".", "^(BenchmarkEventEngine|BenchmarkDRAMRandomReads|BenchmarkTimingSimThroughput|BenchmarkTimingSimSharded|BenchmarkTimingSimCoRun)$"},
}

type benchResult struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type artifact struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU at measurement time. The domain-sharding
	// ratios are only comparable between artifacts recorded at the same
	// CPU count: at NumCPU=1 the barrier rounds cannot overlap, so the
	// sharded numbers price pure engine overhead.
	CPUs       int           `json:"cpus"`
	Count      int           `json:"count"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Derived holds ratios the acceptance criteria gate on: the engine
	// tick and mixed-queue speedups over the container/heap baseline.
	Derived map[string]float64 `json:"derived"`
	// Baseline is the prior artifact the deltas below compare against
	// (the newest BENCH_*.json found, or the -baseline flag), empty when
	// none was found.
	Baseline string `json:"baseline,omitempty"`
	// Deltas holds one entry per benchmark present in both artifacts:
	// the ns/op ratio against the baseline and whether the allocation
	// count regressed. CI gates on these via -fail-alloc-regress.
	Deltas []benchDelta `json:"deltas,omitempty"`
}

// benchDelta compares one benchmark (mean across -count repeats) against
// the same benchmark in the baseline artifact.
type benchDelta struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	// NsRatio is current/baseline: 1.10 means 10% slower than the
	// baseline artifact. Wall-clock is advisory (CI machines vary);
	// allocation counts are deterministic and gate hard.
	NsRatio         float64 `json:"ns_ratio"`
	BaseAllocsPerOp int64   `json:"base_allocs_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	// AllocRegressed marks an allocation-count increase beyond the
	// tolerance handed to computeDeltas (any increase from a 0-alloc
	// baseline always regresses — those are pinned paths).
	AllocRegressed bool `json:"alloc_regressed"`
}

func main() {
	out := flag.String("out", "", "write the JSON artifact here (default stdout)")
	count := flag.Int("count", 1, "benchmark repetitions (-count for go test; the artifact keeps every run)")
	baseline := flag.String("baseline", "",
		"prior artifact to diff against (default: newest BENCH_*.json in the repo root; 'none' disables)")
	failAlloc := flag.Float64("fail-alloc-regress", 0,
		"exit non-zero when any benchmark's allocs/op grew more than this fraction over the baseline (0 disables; CI uses 0.10)")
	flag.Parse()

	art := artifact{
		Tool:      "cmd/bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Count:     *count,
		Derived:   map[string]float64{},
	}
	for _, s := range suites {
		res, err := runSuite(s.pkg, s.pattern, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.pkg, err)
			os.Exit(1)
		}
		art.Benchmarks = append(art.Benchmarks, res...)
	}
	derive(&art)

	regressed, err := diffBaseline(&art, *baseline, *failAlloc)
	if err != nil {
		// A missing or malformed baseline must not sink a bench run —
		// the fresh numbers are still worth recording.
		fmt.Fprintf(os.Stderr, "bench: baseline diff skipped: %v\n", err)
	}

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "bench: allocation regression beyond %.0f%% vs %s in: %s\n",
			*failAlloc*100, art.Baseline, strings.Join(regressed, ", "))
		os.Exit(1)
	}
}

// diffBaseline locates the prior artifact, computes per-benchmark deltas
// into art, and returns the names whose allocation counts regressed beyond
// tol (empty when tol is 0 — deltas are then informational only).
func diffBaseline(art *artifact, path string, tol float64) ([]string, error) {
	if path == "none" {
		return nil, nil
	}
	if path == "" {
		var err error
		if path, err = newestArtifact("."); err != nil || path == "" {
			return nil, err
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base artifact
	if err := json.Unmarshal(buf, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	art.Baseline = path
	art.Deltas = computeDeltas(base.Benchmarks, art.Benchmarks, tol)
	var regressed []string
	if tol > 0 {
		for _, d := range art.Deltas {
			if d.AllocRegressed {
				regressed = append(regressed, d.Name)
			}
		}
	}
	return regressed, nil
}

// newestArtifact returns the BENCH_*.json with the highest PR number in
// dir, or "" when there is none.
func newestArtifact(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		numeral := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		n, err := strconv.Atoi(numeral)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	return best, nil
}

// computeDeltas joins two benchmark lists by name (means across repeats)
// and flags allocation regressions beyond tol. A benchmark only present on
// one side produces no delta: new benchmarks have no history, retired ones
// no current number.
func computeDeltas(base, cur []benchResult, tol float64) []benchDelta {
	type agg struct {
		ns     float64
		allocs int64
		n      int64
	}
	fold := func(list []benchResult) (map[string]*agg, []string) {
		m := map[string]*agg{}
		var order []string
		for _, b := range list {
			a := m[b.Name]
			if a == nil {
				a = &agg{}
				m[b.Name] = a
				order = append(order, b.Name)
			}
			a.ns += b.NsPerOp
			a.allocs += b.AllocsPerOp
			a.n++
		}
		return m, order
	}
	baseBy, _ := fold(base)
	curBy, order := fold(cur)
	var deltas []benchDelta
	for _, name := range order {
		b, c := baseBy[name], curBy[name]
		if b == nil {
			continue
		}
		d := benchDelta{
			Name:            name,
			BaseNsPerOp:     b.ns / float64(b.n),
			NsPerOp:         c.ns / float64(c.n),
			BaseAllocsPerOp: b.allocs / b.n,
			AllocsPerOp:     c.allocs / c.n,
		}
		if d.BaseNsPerOp > 0 {
			d.NsRatio = d.NsPerOp / d.BaseNsPerOp
		}
		// Deterministic pools make allocs/op exact: from a 0-alloc
		// baseline any allocation regresses; otherwise apply the
		// fractional tolerance.
		if d.BaseAllocsPerOp == 0 {
			d.AllocRegressed = d.AllocsPerOp > 0
		} else {
			d.AllocRegressed = float64(d.AllocsPerOp) > float64(d.BaseAllocsPerOp)*(1+tol)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// runSuite executes one `go test -bench` invocation and parses its
// standard output into results.
func runSuite(pkg, pattern string, count int) ([]benchResult, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench", pattern,
		"-benchmem", "-count", strconv.Itoa(count), pkg)
	outBuf, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test: %v\n%s", err, outBuf)
	}
	var res []benchResult
	for _, line := range strings.Split(string(outBuf), "\n") {
		r, ok := parseBenchLine(pkg, line)
		if ok {
			res = append(res, r)
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q\n%s", pattern, outBuf)
	}
	return res, nil
}

// parseBenchLine decodes one textual benchmark result, e.g.
//
//	BenchmarkEngineTickPrebound-8  18571428  63.03 ns/op  0 B/op  0 allocs/op
func parseBenchLine(pkg, line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Package: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return r, true
}

// derive computes the engine speedups over the retired container/heap
// baseline from whatever runs are present (means across -count repeats).
func derive(art *artifact) {
	mean := func(name string) float64 {
		var sum float64
		var n int
		for _, b := range art.Benchmarks {
			if b.Name == name {
				sum += b.NsPerOp
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if legacy, tick := mean("LegacyEngineTick"), mean("EngineTickPrebound"); legacy > 0 && tick > 0 {
		art.Derived["engine_tick_speedup_vs_container_heap"] = legacy / tick
	}
	if legacy, mixed := mean("LegacyEngineMixedQueue"), mean("EngineMixedQueue"); legacy > 0 && mixed > 0 {
		art.Derived["engine_mixed_speedup_vs_container_heap"] = legacy / mixed
	}
	// Domain scaling: sharded tsim throughput relative to the serial engine
	// on the identical 4-channel scenario (results are byte-identical, so
	// the ratio prices the engine alone).
	serial := mean("TimingSimSharded/serial")
	for _, d := range []string{"1", "2", "4"} {
		if sharded := mean("TimingSimSharded/domains=" + d); serial > 0 && sharded > 0 {
			art.Derived["tsim_"+d+"dom_speedup_vs_serial"] = serial / sharded
		}
	}
	// Topology cut on the 4-core co-run: slice-group domains alone, and the
	// widest cut with per-core L2 domains on top. Like the rows above, the
	// ratio only shows parallel speedup when the host grants multiple CPUs.
	if corun := mean("TimingSimCoRun/serial"); corun > 0 {
		if sliced := mean("TimingSimCoRun/domains=4"); sliced > 0 {
			art.Derived["tsim_corun_4dom_speedup_vs_serial"] = corun / sliced
		}
		if widest := mean("TimingSimCoRun/domains=8+cores"); widest > 0 {
			art.Derived["tsim_corun_8dom_cores_speedup_vs_serial"] = corun / widest
		}
	}
}
