package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("./internal/sim",
		"BenchmarkEngineTickPrebound-8  18571428  63.03 ns/op  5 B/op  2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "EngineTickPrebound" || r.Iterations != 18571428 ||
		r.NsPerOp != 63.03 || r.BytesPerOp != 5 || r.AllocsPerOp != 2 {
		t.Fatalf("parsed %+v", r)
	}
	// Sub-benchmark names keep their '=' segments; only the trailing
	// -GOMAXPROCS is stripped.
	r, ok = parseBenchLine(".", "BenchmarkTimingSimCoRun/domains=8+cores-4  100  2500 ns/op")
	if !ok || r.Name != "TimingSimCoRun/domains=8+cores" {
		t.Fatalf("sub-benchmark name parsed as %q", r.Name)
	}
	if _, ok := parseBenchLine(".", "ok  \trepro\t9.977s"); ok {
		t.Fatal("non-benchmark line parsed")
	}
}

func TestNewestArtifact(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_5.json", "BENCH_10.json", "BENCH_8.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric ordering, not lexical: 10 > 8, and the malformed suffix is
	// skipped.
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("newest = %q, want BENCH_10.json", got)
	}
	empty := t.TempDir()
	if got, err := newestArtifact(empty); err != nil || got != "" {
		t.Fatalf("empty dir: got %q, %v", got, err)
	}
}

func TestComputeDeltas(t *testing.T) {
	base := []benchResult{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "A", NsPerOp: 120, AllocsPerOp: 10}, // repeats are averaged
		{Name: "ZeroAlloc", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "Tolerated", NsPerOp: 10, AllocsPerOp: 100},
		{Name: "Retired", NsPerOp: 1, AllocsPerOp: 1},
	}
	cur := []benchResult{
		{Name: "A", NsPerOp: 220, AllocsPerOp: 10},
		{Name: "ZeroAlloc", NsPerOp: 50, AllocsPerOp: 1},
		{Name: "Tolerated", NsPerOp: 10, AllocsPerOp: 105},
		{Name: "Brand-new", NsPerOp: 7, AllocsPerOp: 0},
	}
	deltas := computeDeltas(base, cur, 0.10)
	byName := map[string]benchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas (%v), want 3: unmatched names must not join", len(deltas), byName)
	}
	a := byName["A"]
	if a.BaseNsPerOp != 110 || a.NsRatio != 2.0 || a.AllocRegressed {
		t.Fatalf("A delta %+v: want mean-110 baseline, ratio 2.0, no alloc regression", a)
	}
	// Any allocation on a 0-alloc pinned path regresses, tolerance or not.
	if !byName["ZeroAlloc"].AllocRegressed {
		t.Fatal("0-alloc baseline growing to 1 alloc/op must regress")
	}
	// 5% growth sits inside the 10% tolerance.
	if byName["Tolerated"].AllocRegressed {
		t.Fatal("5% allocation growth flagged despite 10% tolerance")
	}
}
