package main

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/paper"
)

func expectation(fig, metric string) paper.Expectation {
	for _, e := range paper.Expectations() {
		if e.Figure == fig && (metric == "" || e.Metric == metric) {
			return e
		}
	}
	panic("no expectation for " + fig)
}

func TestMeasureMeanCell(t *testing.T) {
	tab := &figures.Table{
		ID:     "fig11",
		Header: []string{"benchmark", "useless"},
		Rows:   [][]string{{"a", "1.0%"}, {"mean", "3.5%"}},
	}
	v, ok := Measure(tab, expectation("fig11", ""))
	if !ok || v != 3.5 {
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestMeasureNoteNumber(t *testing.T) {
	tab := &figures.Table{
		ID:    "fig5",
		Notes: []string{"overhead of caching counters in LLC: 19.0 ns (paper: 19 ns)"},
	}
	v, ok := Measure(tab, expectation("fig5", ""))
	if !ok || v != 19.0 {
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestMeasureFig17MeanSaving(t *testing.T) {
	tab := &figures.Table{
		ID:     "fig17",
		Header: []string{"benchmark", "non-secure", "sc64", "morphable", "emcc"},
		Rows: [][]string{
			{"a", "60", "80", "75", "70"},
			{"b", "60", "80", "85", "81"},
		},
	}
	v, ok := Measure(tab, expectation("fig17", ""))
	if !ok || v != 4.5 { // mean of (75-70) and (85-81)
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestMeasureFig21Delta(t *testing.T) {
	tab := &figures.Table{
		ID:     "fig21",
		Header: []string{"benchmark", "1-channel", "8-channel"},
		Rows:   [][]string{{"mean", "0.5%", "2.8%"}},
	}
	v, ok := Measure(tab, expectation("fig21", ""))
	if !ok || v < 2.29 || v > 2.31 {
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestMeasureFig22WriteMinusRead(t *testing.T) {
	tab := &figures.Table{
		ID:     "fig22",
		Header: []string{"channels", "ctr-read", "data-read", "ctr-write", "data-write"},
		Rows:   [][]string{{"1", "24", "25", "300", "390"}},
	}
	v, ok := Measure(tab, expectation("fig22", ""))
	if !ok || v != 365 {
		t.Fatalf("Measure = %v, %v", v, ok)
	}
}

func TestMeasureMissingTable(t *testing.T) {
	if _, ok := Measure(nil, expectation("fig11", "")); ok {
		t.Fatal("nil table measured")
	}
}

func TestEveryExpectationHasAMeasurePath(t *testing.T) {
	// Build minimal synthetic tables for every figure an expectation
	// references, and check Measure can extract something.
	synth := map[string]*figures.Table{
		"fig2":  {ID: "fig2", Rows: [][]string{{"mean", "", "", "60%", "", "", "16%"}}},
		"fig3":  {ID: "fig3", Rows: [][]string{{"mean", "23.0 ns"}}},
		"fig5":  {ID: "fig5", Notes: []string{"overhead of caching counters in LLC: 19.0 ns"}},
		"fig6":  {ID: "fig6", Rows: [][]string{{"mean", "65%", "15%", "19%"}}},
		"fig7":  {ID: "fig7", Rows: [][]string{{"mean", "67%", "18%", "14%"}}},
		"fig8":  {ID: "fig8", Notes: []string{"overhead of counter hit in LLC: 10.0 ns"}},
		"fig10": {ID: "fig10", Notes: []string{"EMCC responds 16.0 ns earlier"}},
		"fig11": {ID: "fig11", Rows: [][]string{{"mean", "3%"}}},
		"fig12": {ID: "fig12", Rows: [][]string{{"mean", "31%", "36%"}}},
		"fig14": {ID: "fig14", Notes: []string{"EMCC responds 22.0 ns earlier"}},
		"fig16": {ID: "fig16", Rows: [][]string{{"canneal", "70%", "78%", "80%", "2.0%"}, {"mean", "83%", "88%", "89%", "1.0%"}}},
		"fig17": {ID: "fig17", Rows: [][]string{{"a", "60", "80", "75", "70"}}},
		"fig18": {ID: "fig18", Rows: [][]string{{"mean", "1%", "2%", "5%"}}},
		"fig19": {ID: "fig19", Rows: [][]string{{"mean", "45%", "70%", "79%", "90%"}}},
		"fig20": {ID: "fig20", Rows: [][]string{{"mean", "1.0%", "0.5%", "0.3%"}}},
		"fig21": {ID: "fig21", Rows: [][]string{{"mean", "0.5%", "2.8%"}}},
		"fig22": {ID: "fig22", Rows: [][]string{{"1", "24", "25", "300", "390"}}},
		"fig23": {ID: "fig23", Rows: [][]string{{"mean", "2%"}}},
		"fig24": {ID: "fig24", Rows: [][]string{{"mean", "2%"}}},
	}
	for _, e := range paper.Expectations() {
		tab := synth[e.Figure]
		if tab == nil {
			t.Fatalf("no synthetic table for %s", e.Figure)
		}
		if _, ok := Measure(tab, e); !ok {
			t.Errorf("Measure failed for %s / %s", e.Figure, e.Metric)
		}
	}
}
