package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/figures"
)

var updateGolden = flag.Bool("update", false, "rewrite the schema golden")

// analyticIDs are the figures computed without simulation — cheap enough
// for a unit test. Simulation-backed figures appear in the verdict table as
// no-data rows, which still pins their claims and ordering.
var analyticIDs = []string{"table1", "fig3", "fig4", "fig5", "fig8", "fig10", "fig13", "fig14"}

// TestReportSchemaGolden pins cmd/report's output shape: the verdict
// table's columns, the paper expectations it renders (one row each, in
// order, with the paper-side values), and each analytic table's id, title,
// column headers and row labels. Measured values from simulation runs are
// deliberately NOT pinned here — the golden guards the schema, so report
// output stays machine-comparable across revisions; drifting measurements
// are the job of internal/check's golden stats.
func TestReportSchemaGolden(t *testing.T) {
	var tables []*figures.Table
	h := figures.NewHarness(true)
	for _, id := range analyticIDs {
		tab, ok := h.ByID(id)
		if !ok {
			t.Fatalf("analytic figure %s did not resolve", id)
		}
		tables = append(tables, tab)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "## verdict table schema\n")
	var verdicts bytes.Buffer
	writeVerdicts(&verdicts, tables)
	for _, line := range strings.Split(verdicts.String(), "\n") {
		if line == "" {
			continue
		}
		// Keep figure id, claim and paper value; blank the measured value
		// and verdict so analytic refinements don't churn the golden.
		cols := strings.Split(line, "|")
		if len(cols) >= 6 {
			cols[4] = " _ "
			cols[5] = " _ "
		}
		fmt.Fprintln(&b, strings.Join(cols, "|"))
	}
	fmt.Fprintf(&b, "\n## analytic table schema\n")
	for _, tab := range tables {
		fmt.Fprintf(&b, "== %s: %s\n", tab.ID, tab.Title)
		fmt.Fprintf(&b, "header: %s\n", strings.Join(tab.Header, " | "))
		var labels []string
		for _, r := range tab.Rows {
			labels = append(labels, r[0])
		}
		fmt.Fprintf(&b, "rows: %s\n", strings.Join(labels, ", "))
	}

	path := filepath.Join("testdata", "report_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("report schema changed; diff against %s:\n%s", path, diffLines(string(want), b.String()))
	}
}

// diffLines renders a minimal line diff for the failure message.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "-%s\n+%s\n", wl, gl)
		}
	}
	return b.String()
}
